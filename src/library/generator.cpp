#include "library/generator.hpp"

#include <algorithm>
#include <chrono>
#include <exception>
#include <map>
#include <mutex>
#include <optional>
#include <set>
#include <utility>

#include "analysis/dataflow.hpp"
#include "analysis/lint.hpp"
#include "common/thread_pool.hpp"
#include "library/cache.hpp"
#include "nn/eval.hpp"
#include "pruning/pruning.hpp"

namespace adapex {

void set_paper_sweeps(LibraryGenSpec& spec) {
  spec.prune_rates_pct.clear();
  for (int r = 0; r <= 85; r += 5) spec.prune_rates_pct.push_back(r);
  spec.conf_thresholds_pct.clear();
  for (int t = 0; t <= 100; t += 5) spec.conf_thresholds_pct.push_back(t);
}

namespace {

void progress(const LibraryGenSpec& spec, const std::string& msg) {
  if (spec.on_progress) spec.on_progress(msg);
}

/// Verifies a freshly-built base model against the spec's folding style
/// before any training epoch is spent on it. Every design-rule violation is
/// reported in one structured ConfigError (see analysis/lint.hpp).
void verify_base_design(BranchyModel& model, const LibraryGenSpec& spec,
                        const char* family) {
  auto sites = walk_compute_layers(model, spec.accel.in_channels,
                                   spec.accel.image_size);
  const FoldingConfig folding = styled_folding(sites, spec.folding_style);
  const analysis::LintReport report =
      analysis::lint_design(model, folding, spec.accel);
  if (report.has_errors()) {
    throw ConfigError(std::string(family) + " " + report.error_message());
  }
}

/// One (variant, prune-rate) task of the design-point sweep.
struct DesignPoint {
  ModelVariant variant = ModelVariant::kNoExit;
  int rate_pct = 0;
  std::uint64_t retrain_seed = 0;
};

/// Everything a design-point task produces. Tasks fill exactly their own
/// slot; the Library is assembled from the slots in sweep order after the
/// barrier, which is what makes the output independent of scheduling. A
/// point yields one styled accelerator plus, when reach regimes are
/// configured and the point has exits, one reach-aware accelerator per
/// regime (ids pre-assigned from the point's contiguous id block).
struct DesignPointResult {
  std::vector<AcceleratorRecord> accelerators;
  std::vector<LibraryEntry> entries;
  std::string progress_msg;
  /// Inference path that evaluated the point ("packed" / "float"),
  /// recorded into the GenerationReport. Not journaled: a replayed point
  /// evaluated nothing in this run.
  std::string eval_path;
};

/// Maps the spec's eval_path knob to the evaluate_exits mode. "auto" stays
/// kEnv so the ADAPEX_PACKED override keeps working under a generator run;
/// explicit spec values win over the environment (lint rule RQ2 warns on
/// the contradiction). Values are validated by require_valid_gen_spec
/// before the sweep starts.
PackedMode eval_mode_from_spec(const LibraryGenSpec& spec) {
  if (spec.eval_path == "float") return PackedMode::kOff;
  if (spec.eval_path == "packed") return PackedMode::kOn;
  return PackedMode::kEnv;
}

/// Serializes on_progress calls and releases per-design-point messages in
/// sweep order: a point's message is held until every earlier point has
/// reported, so the progress stream reads identically at any thread count.
class OrderedProgressSink {
 public:
  explicit OrderedProgressSink(const LibraryGenSpec& spec) : spec_(spec) {}

  void publish(std::size_t index, const std::string& msg) {
    if (!spec_.on_progress) return;
    std::lock_guard<std::mutex> lock(mutex_);
    buffered_[index] = msg;
    for (auto it = buffered_.begin();
         it != buffered_.end() && it->first == next_; it = buffered_.begin()) {
      spec_.on_progress(it->second);
      buffered_.erase(it);
      ++next_;
    }
  }

 private:
  const LibraryGenSpec& spec_;
  std::mutex mutex_;
  std::map<std::size_t, std::string> buffered_;
  std::size_t next_ = 0;
};

/// The design points in sweep order (the serial loop's iteration order),
/// with per-point retrain seeds derived via splitmix64 so that no two
/// (variant, rate) pairs can share a training stream. The old additive
/// `seed + 1000 + rate*3 + variant` scheme packed every stream into a tiny
/// window above the root seed, so two runs whose roots differ by a small
/// amount (15 reuses the grid's retrain streams shifted by one rate step;
/// ~1000 collides retrain streams with the other run's base-training
/// seeds seed+1 / seed+11) silently trained from identical streams. The
/// splitmix derivation keeps uniqueness a checkable property instead of an
/// arithmetic coincidence, so it is asserted here for the whole sweep.
std::vector<DesignPoint> enumerate_design_points(const LibraryGenSpec& spec) {
  std::vector<DesignPoint> points;
  std::set<std::uint64_t> seen;
  for (ModelVariant variant : spec.variants) {
    for (int rate_pct : spec.prune_rates_pct) {
      // pruned-exits and not-pruned-exits coincide at rate 0; emit once.
      if (variant == ModelVariant::kPrunedExits && rate_pct == 0) continue;
      DesignPoint p;
      p.variant = variant;
      p.rate_pct = rate_pct;
      p.retrain_seed =
          derive_seed(spec.seed, static_cast<std::uint64_t>(variant),
                      static_cast<std::uint64_t>(rate_pct));
      ADAPEX_CHECK(seen.insert(p.retrain_seed).second,
                   "retrain seed collision across the (variant, rate) sweep");
      points.push_back(p);
    }
  }
  return points;
}

std::size_t resolve_thread_count(const LibraryGenSpec& spec) {
  if (spec.num_threads > 0) return static_cast<std::size_t>(spec.num_threads);
  return ThreadPool::env_thread_count();
}

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// Clones the family base model, prunes, retrains, compiles, and evaluates
/// one design point. Touches only task-local state plus the const-shared
/// base models, dataset, and spec — safe to run concurrently.
DesignPointResult run_design_point(const LibraryGenSpec& spec,
                                   const SyntheticDataset& data,
                                   const BranchyModel& base,
                                   const DesignPoint& point,
                                   int accel_id_base) {
  DesignPointResult result;
  const bool has_exits = point.variant != ModelVariant::kNoExit;

  BranchyModel model = base.clone();
  auto sites = walk_compute_layers(model, spec.accel.in_channels,
                                   spec.accel.image_size);
  const FoldingConfig folding = styled_folding(sites, spec.folding_style);

  PruneOptions popts;
  popts.rate = point.rate_pct / 100.0;
  popts.prune_exits = point.variant == ModelVariant::kPrunedExits;
  popts.folding = folding;
  popts.in_channels = spec.accel.in_channels;
  popts.image_size = spec.accel.image_size;
  const PruneReport report = prune_model(model, popts);

  if (report.achieved_rate > 0.0) {
    TrainConfig rt = spec.retrain;
    rt.seed = point.retrain_seed;
    train_model(model, data.train, spec.dataset.flip_symmetry, rt);
  }

  // Serial eval (num_threads=1): run_design_point already executes inside a
  // design-point pool worker, and pool tasks must not spin up nested pools.
  // Evaluated once; all accelerators of this point share the model, so the
  // per-threshold exit statistics are identical across them.
  const PackedMode eval_mode = eval_mode_from_spec(spec);
  result.eval_path = resolved_eval_path(model, eval_mode);
  const ExitEvaluation eval = evaluate_exits(
      model, data.test, /*batch_size=*/32, /*num_threads=*/1, eval_mode);

  // Builds the record and Library rows of one synthesized accelerator,
  // runs the optional per-entry verification, and applies the mitigation
  // tax — identical to the pre-reach single-accelerator flow when called
  // once with the styled design.
  auto emit_accelerator = [&](const Accelerator& acc, int accel_id,
                              const char* folding_mode,
                              const std::vector<double>& regime) {
    AcceleratorRecord rec;
    rec.id = accel_id;
    rec.variant = point.variant;
    rec.prune_rate_pct = point.rate_pct;
    rec.resources = acc.total;
    rec.exit_overhead = acc.exit_overhead;
    // Reconfiguration time is modeled from the functional design; the
    // mitigation logic below adds a few percent of fabric that the
    // bitstream model deliberately ignores.
    rec.reconfig_ms = spec.reconfig.time_ms(acc);
    rec.folding_mode = folding_mode;
    rec.reach_regime = regime;

    // Soft-error mitigation overheads (finn/mitigation.hpp): extra fabric
    // on the accelerator record, and a throughput/power tax applied to
    // every Library row after it is built. Skipped entirely when no
    // mitigation is enabled, so mitigation-free libraries are
    // byte-identical.
    MitigationReport mitigation;
    if (spec.mitigation.any()) {
      mitigation =
          estimate_mitigation(acc, spec.mitigation, spec.mitigation_cost);
      rec.resources += mitigation.overhead;
      rec.mitigation = spec.mitigation;
      rec.mitigation_overhead = mitigation.overhead;
    }

    std::vector<LibraryEntry> entries;
    if (!has_exits) {
      const auto stats = apply_threshold(eval, 2.0);
      const auto perf = estimate_performance(acc, {1.0}, spec.power);
      LibraryEntry entry;
      entry.accel_id = accel_id;
      entry.variant = point.variant;
      entry.prune_rate_pct = point.rate_pct;
      entry.conf_threshold_pct = -1;
      entry.accuracy = stats.accuracy;
      entry.exit_fractions = {1.0};
      entry.ips = perf.ips;
      entry.latency_ms = perf.latency_ms;
      entry.peak_power_w = perf.peak_power_w;
      entry.energy_per_inf_j = perf.energy_per_inf_j;
      entries.push_back(entry);
    } else {
      for (int ct : spec.conf_thresholds_pct) {
        const auto stats = apply_threshold(eval, ct / 100.0);
        const auto perf =
            estimate_performance(acc, stats.exit_fraction, spec.power);
        LibraryEntry entry;
        entry.accel_id = accel_id;
        entry.variant = point.variant;
        entry.prune_rate_pct = point.rate_pct;
        entry.conf_threshold_pct = ct;
        entry.accuracy = stats.accuracy;
        entry.exit_fractions = stats.exit_fraction;
        entry.ips = perf.ips;
        entry.latency_ms = perf.latency_ms;
        entry.peak_power_w = perf.peak_power_w;
        entry.energy_per_inf_j = perf.energy_per_inf_j;
        entries.push_back(entry);
      }
    }
    // Dataflow verification runs on the untaxed rows: the mitigation
    // throughput factor below is a modeled derate the reach-scaled II
    // cannot see, so the agreement contract is checked where the models
    // coincide.
    if (spec.verify_dataflow) {
      for (const auto& entry : entries) {
        analysis::LintReport drift = analysis::lint_entry_reach(acc, entry);
        if (drift.has_errors()) {
          throw ConfigError(drift.error_message());
        }
        const analysis::CrossValidation cv =
            analysis::cross_validate(acc, entry.exit_fractions);
        if (!cv.passed) {
          throw ConfigError("dataflow cross-validation failed for " +
                            std::string(to_string(point.variant)) + " rate " +
                            std::to_string(point.rate_pct) + "% threshold " +
                            std::to_string(entry.conf_threshold_pct) + "%: " +
                            cv.summary() + "\n" + cv.lint.error_message());
        }
      }
    }

    if (spec.mitigation.any()) {
      // ECC read-modify-write narrows the effective memory bandwidth; the
      // mitigation fabric draws its own dynamic power.
      const double factor = mitigation.throughput_factor;
      const double mit_w = spec.power.module_peak_w(mitigation.overhead);
      for (auto& entry : entries) {
        entry.ips *= factor;
        entry.latency_ms /= factor;
        entry.peak_power_w += mit_w;
        entry.energy_per_inf_j =
            entry.energy_per_inf_j / factor + mit_w / std::max(entry.ips, 1e-9);
      }
    }
    result.accelerators.push_back(std::move(rec));
    for (auto& entry : entries) result.entries.push_back(std::move(entry));
  };

  const Accelerator acc = compile_accelerator(model, folding, spec.accel);
  emit_accelerator(acc, accel_id_base, "styled", {});

  // Reach-aware Pareto points: one extra accelerator per configured exit
  // regime, sharing the pruned model and its evaluation. Every point is
  // gated behind the dataflow verifier unconditionally — the optimizer can
  // never ship a config the static model rejects or the transaction-level
  // simulator disagrees with.
  if (has_exits && !spec.reach_regimes.empty()) {
    // The model was pruned above, so re-walk for current geometry; the
    // styled baseline folds index the same walk order (pruning preserves
    // the divisibility of the folds it was given).
    auto pruned_sites = walk_compute_layers(model, spec.accel.in_channels,
                                            spec.accel.image_size);
    ReachAwareOptions ra_opts;
    ra_opts.baseline = folding;
    ra_opts.cost = spec.accel.cost;
    for (const ExitSpec& e : spec.exits.exits) {
      ra_opts.exit_after_block.push_back(e.after_block);
    }
    ra_opts.fixed_overhead =
        acc.total -
        folding_site_resources(pruned_sites, folding, spec.accel.cost);
    for (std::size_t k = 0; k < spec.reach_regimes.size(); ++k) {
      const std::vector<double>& regime = spec.reach_regimes[k];
      ADAPEX_CHECK(static_cast<int>(regime.size()) == acc.num_exits + 1,
                   "reach regime arity must equal accelerator outputs");
      const FoldingConfig ra = reach_aware_folding(
          pruned_sites, regime, spec.reach_device.caps, ra_opts);
      const Accelerator acc_ra = compile_accelerator(model, ra, spec.accel);

      analysis::DataflowOptions dopts;
      dopts.device = spec.reach_device;
      const analysis::DataflowReport dataflow =
          analysis::analyze_dataflow(acc_ra, regime, dopts);
      if (dataflow.lint.has_errors()) {
        throw ConfigError(
            "reach-aware folding rejected by the dataflow verifier (" +
            std::string(to_string(point.variant)) + " rate " +
            std::to_string(point.rate_pct) + "%, regime " + std::to_string(k) +
            "): " + dataflow.lint.error_message());
      }
      analysis::CrossValidateOptions cv_opts;
      cv_opts.dataflow.device = spec.reach_device;
      const analysis::CrossValidation cv =
          analysis::cross_validate(acc_ra, regime, cv_opts);
      if (!cv.passed) {
        throw ConfigError("reach-aware cross-validation failed (" +
                          std::string(to_string(point.variant)) + " rate " +
                          std::to_string(point.rate_pct) + "%, regime " +
                          std::to_string(k) + "): " + cv.summary() + "\n" +
                          cv.lint.error_message());
      }
      // The optimizer never uses more fabric than the styled baseline, so
      // a fitting styled design must stay fitting.
      if (spec.reach_device.fits(acc.total) &&
          !spec.reach_device.fits(acc_ra.total)) {
        throw ConfigError("reach-aware folding exceeded the device budget (" +
                          std::string(to_string(point.variant)) + " rate " +
                          std::to_string(point.rate_pct) + "%, regime " +
                          std::to_string(k) + ")");
      }
      emit_accelerator(acc_ra, accel_id_base + 1 + static_cast<int>(k),
                       "reach", regime);
    }
  }

  result.progress_msg = std::string(to_string(point.variant)) + " rate " +
                        std::to_string(point.rate_pct) + "%: achieved " +
                        std::to_string(report.achieved_rate);
  return result;
}

/// Retry attempts retrain from a stream forked off the point's canonical
/// seed with this salt, so attempt k of point p can never collide with any
/// canonical (variant, rate) stream of the sweep.
constexpr std::uint64_t kRetrySalt = 0x7265747279ULL;  // "retry"

}  // namespace

Library generate_library(const LibraryGenSpec& spec) {
  const auto t_start = std::chrono::steady_clock::now();
  require_valid_gen_spec(spec);
  ADAPEX_CHECK(spec.cnv.num_classes == spec.dataset.num_classes,
               "CNV class count must match the dataset");
  ADAPEX_CHECK(!spec.prune_rates_pct.empty(), "no pruning rates configured");
  ADAPEX_CHECK(!spec.variants.empty(), "no model variants configured");

  GenerationReport scratch;
  GenerationReport& report = spec.report != nullptr ? *spec.report : scratch;
  report = GenerationReport{};

  // The journal is keyed by the artifact-cache key: a checkpoint can only
  // ever be replayed against the spec that produced it.
  GenerationJournal journal;
  if (!spec.journal_dir.empty()) {
    journal = GenerationJournal(
        spec.journal_dir, library_cache_key(spec), spec.checksum_mode,
        [&spec](const std::string& m) { progress(spec, m); });
  }

  const std::vector<DesignPoint> points = enumerate_design_points(spec);
  std::vector<DesignPointResult> results(points.size());
  std::vector<PointOutcome> outcomes(points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    outcomes[i].index = i;
    outcomes[i].variant = points[i].variant;
    outcomes[i].rate_pct = points[i].rate_pct;
  }
  std::vector<char> done(points.size(), 0);

  // Replay pass (serial, sweep order): every intact checkpoint whose
  // identity matches the canonical design point is restored verbatim.
  // Checkpoints written by a retried point carry a forked retrain seed, so
  // the identity check quarantines them and the point is recomputed from
  // its canonical stream — resumed output stays byte-identical to an
  // uninterrupted run.
  for (std::size_t i = 0; i < points.size(); ++i) {
    JournalPoint jp;
    if (!journal.load_point(i, points[i].variant, points[i].rate_pct,
                            points[i].retrain_seed, &jp)) {
      continue;
    }
    results[i].accelerators = std::move(jp.accelerators);
    results[i].entries = std::move(jp.entries);
    results[i].progress_msg = std::move(jp.progress_msg);
    done[i] = 1;
    outcomes[i].status = PointStatus::kReplayed;
    outcomes[i].attempts = 0;
    progress(spec, "journal: replayed " +
                       std::string(to_string(points[i].variant)) + " rate " +
                       std::to_string(points[i].rate_pct) + "%");
  }

  double journal_ref = 0.0;
  const bool have_meta = journal.load_meta(&journal_ref);

  // Base models are only (re)trained for the families that still have work:
  // the plain CNV also anchors the reference accuracy, so it is needed
  // whenever the meta checkpoint is missing. Each family trains from its
  // own independent RNG stream (seed / seed+1), so skipping one never
  // shifts the other — byte-identity survives partial replay.
  bool need_plain = !have_meta;
  bool need_ee = false;
  for (std::size_t i = 0; i < points.size(); ++i) {
    if (done[i]) continue;
    if (points[i].variant == ModelVariant::kNoExit) {
      need_plain = true;
    } else {
      need_ee = true;
    }
  }

  // Generated only when some family still trains or evaluates: a fully
  // replayed resume (all points + meta) touches neither the dataset nor
  // the RNG streams.
  std::optional<SyntheticDataset> data;
  if (need_plain || need_ee) data = make_synthetic(spec.dataset);

  Library lib;
  lib.dataset = spec.dataset.name;
  lib.static_power_w = spec.power.static_w;
  lib.mitigation = spec.mitigation;

  // Train each needed family once, serially: design points fork from these.
  BranchyModel base_plain;
  if (need_plain) {
    Rng init_rng(spec.seed);
    base_plain = build_cnv(spec.cnv, init_rng);
    verify_base_design(base_plain, spec, "no-exit CNV:");
    progress(spec, "training no-exit CNV (" +
                       std::to_string(spec.initial_train.epochs) + " epochs)");
    train_model(base_plain, data->train, spec.dataset.flip_symmetry,
                spec.initial_train);
  }

  BranchyModel base_ee;
  if (need_ee) {
    Rng ee_rng(spec.seed + 1);
    base_ee = build_cnv_with_exits(spec.cnv, spec.exits, ee_rng);
    verify_base_design(base_ee, spec, "early-exit CNV:");
    progress(spec, "training early-exit CNV (joint loss, " +
                       std::to_string(spec.initial_train.epochs) + " epochs)");
    train_model(base_ee, data->train, spec.dataset.flip_symmetry,
                spec.initial_train);
  }

  // Reference accuracy: unpruned no-exit model (journaled in meta.json so a
  // fully-replayed resume never retrains just to recompute one scalar).
  if (have_meta) {
    lib.reference_accuracy = journal_ref;
    progress(spec, "journal: replayed reference accuracy " +
                       std::to_string(journal_ref));
  } else {
    auto eval = evaluate_exits(base_plain, data->test, /*batch_size=*/32,
                               /*num_threads=*/0, eval_mode_from_spec(spec));
    lib.reference_accuracy = apply_threshold(eval, 2.0).accuracy;
    progress(spec, "reference accuracy (FINN, unpruned): " +
                       std::to_string(lib.reference_accuracy));
    journal.record_meta(lib.reference_accuracy);
  }

  // Pre-assign each design point a contiguous accelerator-id block (styled
  // first, then one id per reach regime for exit points), so ids are dense,
  // stable across thread counts, and reduce to 0..N-1 when no regimes are
  // configured.
  std::vector<int> id_base(points.size());
  {
    int next_id = 0;
    for (std::size_t i = 0; i < points.size(); ++i) {
      id_base[i] = next_id;
      const bool point_has_exits = points[i].variant != ModelVariant::kNoExit;
      next_id += 1 + static_cast<int>(point_has_exits
                                          ? spec.reach_regimes.size()
                                          : 0);
    }
  }

  // Runs one design point to its final outcome: attempt, retry on fresh
  // forked seed streams, then quarantine. Catches everything — a failing
  // point must never take down its worker or sibling points — and
  // checkpoints each success the moment it lands. Touches only slot i.
  auto attempt_point = [&](std::size_t i) {
    const DesignPoint& p = points[i];
    PointOutcome& out = outcomes[i];
    const auto t_point = std::chrono::steady_clock::now();
    std::string last_error;
    for (int attempt = 0; attempt <= spec.max_point_retries; ++attempt) {
      try {
        if (spec.point_fault_hook) spec.point_fault_hook(i, attempt);
        DesignPoint run = p;
        if (attempt > 0) {
          run.retrain_seed =
              derive_seed(p.retrain_seed, kRetrySalt,
                          static_cast<std::uint64_t>(attempt));
        }
        const BranchyModel& base =
            p.variant != ModelVariant::kNoExit ? base_ee : base_plain;
        results[i] = run_design_point(spec, *data, base, run, id_base[i]);
        out.status =
            attempt == 0 ? PointStatus::kComputed : PointStatus::kRetried;
        out.attempts = attempt + 1;
        out.error = last_error;
        out.eval_path = results[i].eval_path;
        if (journal.enabled()) {
          const auto t_ckpt = std::chrono::steady_clock::now();
          JournalPoint jp;
          jp.index = i;
          jp.variant = p.variant;
          jp.rate_pct = p.rate_pct;
          // The seed actually used: a retried point journals its fork, and
          // the replay identity check above makes the next resume recompute
          // it from the canonical stream instead of replaying the fork.
          jp.retrain_seed = run.retrain_seed;
          jp.accelerators = results[i].accelerators;
          jp.entries = results[i].entries;
          jp.progress_msg = results[i].progress_msg;
          journal.record_point(jp);
          out.checkpoint_s = seconds_since(t_ckpt);
        }
        out.wall_s = seconds_since(t_point);
        return;
      } catch (const std::exception& e) {
        last_error = e.what();
      } catch (...) {
        last_error = "unknown exception";
      }
    }
    out.status = PointStatus::kQuarantined;
    out.attempts = spec.max_point_retries + 1;
    out.error = last_error;
    out.wall_s = seconds_since(t_point);
    results[i] = DesignPointResult{};
    journal.record_failure(i, p.variant, p.rate_pct, out.attempts, last_error);
  };

  auto outcome_message = [&](std::size_t i) -> std::string {
    const PointOutcome& out = outcomes[i];
    if (out.status == PointStatus::kQuarantined) {
      return "design point " + std::to_string(i) + " (" +
             std::string(to_string(out.variant)) + " rate " +
             std::to_string(out.rate_pct) + "%) quarantined after " +
             std::to_string(out.attempts) + " attempts: " + out.error;
    }
    std::string msg = results[i].progress_msg;
    if (out.status == PointStatus::kRetried) {
      msg += " [retried x" + std::to_string(out.attempts - 1) + "]";
    }
    return msg;
  };

  // Fan the still-undone design points out over the pool. From here on the
  // base models, dataset, and spec are read-only shared state; each task
  // writes only its own pre-assigned slots, so assembling rows in sweep
  // order below yields the same bytes at any thread count. Only undone
  // indices are submitted (dense `todo` positions), so the ordered progress
  // sink never waits on a replayed point that will not report.
  std::vector<std::size_t> todo;
  for (std::size_t i = 0; i < points.size(); ++i) {
    if (!done[i]) todo.push_back(i);
  }
  const std::size_t num_threads = std::min(
      resolve_thread_count(spec), std::max<std::size_t>(todo.size(), 1));

  if (num_threads <= 1) {
    for (std::size_t i : todo) {
      attempt_point(i);
      progress(spec, outcome_message(i));
    }
  } else {
    progress(spec, "sweeping " + std::to_string(todo.size()) +
                       " design points on " + std::to_string(num_threads) +
                       " threads");
    OrderedProgressSink sink(spec);
    ThreadPool pool(num_threads);
    for (std::size_t t = 0; t < todo.size(); ++t) {
      pool.submit([&, t] {
        const std::size_t i = todo[t];
        attempt_point(i);  // never throws: failures quarantine in-slot
        sink.publish(t, outcome_message(i));
      });
    }
    // attempt_point contains every expected failure; the pool's capture
    // path is only a backstop (e.g. bad_alloc while recording an error).
    pool.wait();
  }

  // Flight record first — on a kFail throw below the caller's report still
  // explains exactly which points died and what succeeded before them.
  report.points = outcomes;
  for (const auto& o : outcomes) {
    report.compute_wall_s += o.wall_s;
    report.checkpoint_wall_s += o.checkpoint_s;
  }
  report.total_wall_s = seconds_since(t_start);

  std::vector<std::size_t> quarantined;
  for (std::size_t i = 0; i < points.size(); ++i) {
    if (outcomes[i].status == PointStatus::kQuarantined) {
      quarantined.push_back(i);
    }
  }
  if (!quarantined.empty()) {
    if (spec.partial_policy == PartialPolicy::kFail) {
      std::string msg = "library generation: " +
                        std::to_string(quarantined.size()) +
                        " design point(s) quarantined:";
      for (std::size_t i : quarantined) {
        msg += "\n  - " + std::string(to_string(points[i].variant)) +
               " rate " + std::to_string(points[i].rate_pct) + "% (after " +
               std::to_string(outcomes[i].attempts) +
               " attempts): " + outcomes[i].error;
      }
      throw ConfigError(msg);
    }
    report.partial = true;
    progress(spec, "emitting PARTIAL library: " +
                       std::to_string(quarantined.size()) +
                       " design point(s) quarantined");
  }

  for (auto& result : results) {
    for (auto& rec : result.accelerators) {
      lib.accelerators.push_back(std::move(rec));
    }
    for (auto& entry : result.entries) lib.entries.push_back(std::move(entry));
  }
  return lib;
}

}  // namespace adapex
