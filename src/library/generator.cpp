#include "library/generator.hpp"

#include <algorithm>

#include "analysis/lint.hpp"
#include "nn/eval.hpp"
#include "pruning/pruning.hpp"

namespace adapex {

void set_paper_sweeps(LibraryGenSpec& spec) {
  spec.prune_rates_pct.clear();
  for (int r = 0; r <= 85; r += 5) spec.prune_rates_pct.push_back(r);
  spec.conf_thresholds_pct.clear();
  for (int t = 0; t <= 100; t += 5) spec.conf_thresholds_pct.push_back(t);
}

namespace {

void progress(const LibraryGenSpec& spec, const std::string& msg) {
  if (spec.on_progress) spec.on_progress(msg);
}

/// Verifies a freshly-built base model against the spec's folding style
/// before any training epoch is spent on it. Every design-rule violation is
/// reported in one structured ConfigError (see analysis/lint.hpp).
void verify_base_design(BranchyModel& model, const LibraryGenSpec& spec,
                        const char* family) {
  auto sites = walk_compute_layers(model, spec.accel.in_channels,
                                   spec.accel.image_size);
  const FoldingConfig folding = styled_folding(sites, spec.folding_style);
  const analysis::LintReport report =
      analysis::lint_design(model, folding, spec.accel);
  if (report.has_errors()) {
    throw ConfigError(std::string(family) + " " + report.error_message());
  }
}

}  // namespace

Library generate_library(const LibraryGenSpec& spec) {
  ADAPEX_CHECK(spec.cnv.num_classes == spec.dataset.num_classes,
               "CNV class count must match the dataset");
  ADAPEX_CHECK(!spec.prune_rates_pct.empty(), "no pruning rates configured");
  ADAPEX_CHECK(!spec.variants.empty(), "no model variants configured");

  const SyntheticDataset data = make_synthetic(spec.dataset);
  Library lib;
  lib.dataset = spec.dataset.name;
  lib.static_power_w = spec.power.static_w;

  // Train each family once.
  Rng init_rng(spec.seed);
  BranchyModel base_plain = build_cnv(spec.cnv, init_rng);
  verify_base_design(base_plain, spec, "no-exit CNV:");
  progress(spec, "training no-exit CNV (" +
                     std::to_string(spec.initial_train.epochs) + " epochs)");
  train_model(base_plain, data.train, spec.dataset.flip_symmetry,
              spec.initial_train);

  const bool wants_exits =
      std::any_of(spec.variants.begin(), spec.variants.end(), [](ModelVariant v) {
        return v != ModelVariant::kNoExit;
      });
  BranchyModel base_ee;
  if (wants_exits) {
    Rng ee_rng(spec.seed + 1);
    base_ee = build_cnv_with_exits(spec.cnv, spec.exits, ee_rng);
    verify_base_design(base_ee, spec, "early-exit CNV:");
    progress(spec, "training early-exit CNV (joint loss, " +
                       std::to_string(spec.initial_train.epochs) + " epochs)");
    train_model(base_ee, data.train, spec.dataset.flip_symmetry,
                spec.initial_train);
  }

  // Reference accuracy: unpruned no-exit model.
  {
    auto eval = evaluate_exits(base_plain, data.test);
    lib.reference_accuracy = apply_threshold(eval, 2.0).accuracy;
    progress(spec, "reference accuracy (FINN, unpruned): " +
                       std::to_string(lib.reference_accuracy));
  }

  int next_accel_id = 0;
  for (ModelVariant variant : spec.variants) {
    const bool has_exits = variant != ModelVariant::kNoExit;
    BranchyModel& base = has_exits ? base_ee : base_plain;

    for (int rate_pct : spec.prune_rates_pct) {
      // pruned-exits and not-pruned-exits coincide at rate 0; emit once.
      if (variant == ModelVariant::kPrunedExits && rate_pct == 0) continue;

      BranchyModel model = base.clone();
      auto sites = walk_compute_layers(model, spec.accel.in_channels,
                                       spec.accel.image_size);
      const FoldingConfig folding = styled_folding(sites, spec.folding_style);

      PruneOptions popts;
      popts.rate = rate_pct / 100.0;
      popts.prune_exits = variant == ModelVariant::kPrunedExits;
      popts.folding = folding;
      popts.in_channels = spec.accel.in_channels;
      popts.image_size = spec.accel.image_size;
      const PruneReport report = prune_model(model, popts);

      if (report.achieved_rate > 0.0) {
        TrainConfig rt = spec.retrain;
        rt.seed = spec.seed + 1000 + static_cast<std::uint64_t>(rate_pct) * 3 +
                  static_cast<std::uint64_t>(variant);
        train_model(model, data.train, spec.dataset.flip_symmetry, rt);
      }

      const Accelerator acc = compile_accelerator(model, folding, spec.accel);
      AcceleratorRecord arec;
      arec.id = next_accel_id++;
      arec.variant = variant;
      arec.prune_rate_pct = rate_pct;
      arec.resources = acc.total;
      arec.exit_overhead = acc.exit_overhead;
      arec.reconfig_ms = spec.reconfig.time_ms(acc);
      lib.accelerators.push_back(arec);

      const ExitEvaluation eval = evaluate_exits(model, data.test);
      if (!has_exits) {
        const auto stats = apply_threshold(eval, 2.0);
        const auto perf = estimate_performance(acc, {1.0}, spec.power);
        LibraryEntry entry;
        entry.accel_id = arec.id;
        entry.variant = variant;
        entry.prune_rate_pct = rate_pct;
        entry.conf_threshold_pct = -1;
        entry.accuracy = stats.accuracy;
        entry.exit_fractions = {1.0};
        entry.ips = perf.ips;
        entry.latency_ms = perf.latency_ms;
        entry.peak_power_w = perf.peak_power_w;
        entry.energy_per_inf_j = perf.energy_per_inf_j;
        lib.entries.push_back(entry);
      } else {
        for (int ct : spec.conf_thresholds_pct) {
          const auto stats = apply_threshold(eval, ct / 100.0);
          const auto perf =
              estimate_performance(acc, stats.exit_fraction, spec.power);
          LibraryEntry entry;
          entry.accel_id = arec.id;
          entry.variant = variant;
          entry.prune_rate_pct = rate_pct;
          entry.conf_threshold_pct = ct;
          entry.accuracy = stats.accuracy;
          entry.exit_fractions = stats.exit_fraction;
          entry.ips = perf.ips;
          entry.latency_ms = perf.latency_ms;
          entry.peak_power_w = perf.peak_power_w;
          entry.energy_per_inf_j = perf.energy_per_inf_j;
          lib.entries.push_back(entry);
        }
      }
      progress(spec, std::string(to_string(variant)) + " rate " +
                         std::to_string(rate_pct) + "%: achieved " +
                         std::to_string(report.achieved_rate));
    }
  }
  return lib;
}

}  // namespace adapex
