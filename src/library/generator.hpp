// The AdaPEx Library Generator (design-time step, paper section IV-A).
//
// Pipeline per Figure 3: Early-Exit Training -> Dataflow-Aware Pruning (one
// pruned model per rate step) -> retraining -> CNN compilation & "HLS
// synthesis" (accelerator compile + analytical models) -> Library rows with
// accuracy and throughput per (model, confidence threshold).
//
// Three model families are generated: the plain CNV (for the FINN and
// PR-Only baselines) and the early-exit CNV with pruned and with not-pruned
// exit heads (the design decision Figure 5 ablates). The early-exit model is
// trained once with the BranchyNet joint loss and cloned before each
// pruning pass. Test-set evaluation runs once per pruned model; confidence
// thresholds are applied as post-processing (nn/eval.hpp).
//
// Parallelism and determinism: after the two base models are trained, every
// (variant, prune-rate) design point is an independent task — it clones the
// trained base, prunes, retrains, compiles, and evaluates entirely on
// task-local state — executed on a work-stealing pool
// (common/thread_pool.hpp). Retrain seeds are derived per design point with
// derive_seed(spec.seed, variant, rate) (common/rng.hpp) rather than from
// the loop schedule, results land in pre-assigned slots, and Library rows
// are assembled in sweep order after the barrier, so the generated Library
// is byte-identical for every thread count (ADAPEX_THREADS=1 reproduces the
// serial path exactly). Progress messages are buffered per design point and
// flushed in sweep order through a mutex-guarded sink.
//
// Crash safety and failure isolation (library/journal.hpp): with
// `journal_dir` set, every completed design point is checkpointed to disk
// the moment it finishes, and a rerun with the same spec replays intact
// checkpoints instead of recomputing them — the resumed Library is
// byte-identical to an uninterrupted run. A design point that throws is
// quarantined instead of aborting the sweep: it is retried up to
// `max_point_retries` times on a fresh derived seed stream, then either
// fails the run (PartialPolicy::kFail, after every other point finished)
// or is explicitly omitted from a partial Library
// (PartialPolicy::kEmitPartial). Per-point outcomes, retry/quarantine
// counts, and the checkpoint overhead land in an optional
// GenerationReport.

#pragma once

#include <functional>
#include <vector>

#include "analysis/device.hpp"
#include "data/dataset.hpp"
#include "finn/accelerator.hpp"
#include "finn/reconfig.hpp"
#include "library/journal.hpp"
#include "library/library.hpp"
#include "model/cnv.hpp"
#include "nn/trainer.hpp"

namespace adapex {

/// Everything the generator needs.
struct LibraryGenSpec {
  SyntheticSpec dataset;
  /// Must have num_classes == dataset.num_classes (checked).
  CnvConfig cnv;
  /// Exit locations/ops (the prune flag is driven per-variant).
  ExitsConfig exits;
  std::vector<ModelVariant> variants = {ModelVariant::kNoExit,
                                        ModelVariant::kPrunedExits,
                                        ModelVariant::kNotPrunedExits};
  /// Paper: 0..85% in 5% steps (18 models per family).
  std::vector<int> prune_rates_pct;
  /// Paper: 0..100% in 5% steps.
  std::vector<int> conf_thresholds_pct;
  TrainConfig initial_train;
  TrainConfig retrain;
  FoldingStyle folding_style;
  AcceleratorConfig accel;
  PowerModel power;
  ReconfigModel reconfig;
  /// Soft-error mitigations synthesized into every accelerator (all off by
  /// default: the paper's setup). When any mitigation is enabled, its
  /// resource and throughput overheads (finn/mitigation.hpp) are applied to
  /// the accelerator records and Library rows.
  SeuMitigation mitigation;
  MitigationCostModel mitigation_cost;
  /// Reach-aware folding regimes (ATHEENA-style heterogeneous folds): for
  /// every exit-fraction regime listed here, each early-exit design point
  /// additionally synthesizes an accelerator whose post-branch folds are
  /// shrunk to the regime's reach and whose freed fabric is reinvested in
  /// the full-traffic front end (hls/folding.hpp reach_aware_folding),
  /// emitted as extra Pareto rows. Every such accelerator is gated behind
  /// the dataflow verifier regardless of `verify_dataflow`: rules R8-R14
  /// must report no errors and cross_validate must agree on the regime, or
  /// generation throws. Each regime needs one fraction per output (exits
  /// then final). Empty (the default): the mode is off and the generated
  /// Library is byte-identical to previous schemas.
  std::vector<std::vector<double>> reach_regimes;
  /// Device whose resource caps bound reach-aware reallocation.
  analysis::DeviceProfile reach_device = analysis::DeviceProfile::zcu104();
  std::uint64_t seed = 7;
  /// Design-point parallelism: 0 resolves ADAPEX_THREADS (default:
  /// hardware_concurrency), 1 runs serially on the calling thread. The
  /// generated Library is byte-identical at every thread count, so this is
  /// deliberately NOT part of the artifact cache key.
  int num_threads = 0;
  /// Cross-validate every Library row against the dataflow verifier
  /// (analysis/dataflow.hpp): the entry's recorded throughput must match
  /// the reach-scaled static model (R12) and the static II/occupancy
  /// bounds must bracket the transaction-level simulator on the entry's
  /// exit distribution. Failures throw ConfigError. Off by default (it
  /// simulates two streams per row); like num_threads it does not change
  /// the generated Library, so it must never enter an artifact cache key.
  bool verify_dataflow = false;
  /// Which inference path evaluates each design point's test sweep (and
  /// the base model's reference accuracy): "auto" (default) defers to the
  /// ADAPEX_PACKED environment override, which itself defaults to taking
  /// the packed popcount path whenever the frozen W2A2 model is eligible
  /// (nn/quant.hpp); "float" forces the float layer graph; "packed" forces
  /// the packed path and fails generation when the model cannot freeze
  /// (rule RQ1). Values are validated by lint rule RQ2. Packed and float
  /// evaluation agree bitwise on every argmax/exit decision in practice, so
  /// the generated Library is byte-identical either way — like num_threads
  /// this deliberately never enters the artifact cache key. The path each
  /// point actually used is recorded in GenerationReport (eval_path per
  /// point).
  std::string eval_path = "auto";
  /// Crash-safe checkpointing: when non-empty, every completed design
  /// point is journaled under `<journal_dir>/<artifact cache key>` the
  /// moment it finishes (library/journal.hpp), and a rerun with the same
  /// spec verifies and replays finished checkpoints instead of recomputing
  /// them. Checkpoints are checksummed; a corrupt one is quarantined to
  /// `<file>.corrupt` and its point recomputed. The resumed Library is
  /// byte-identical to an uninterrupted run, so — like num_threads — this
  /// never enters the artifact cache key. Empty (default): no journal.
  std::string journal_dir;
  /// Retries per failing design point beyond the first attempt (rule RG2).
  /// Each retry retrains from a fresh splitmix64-derived seed stream so a
  /// transient numeric/environment failure gets new randomness; a point
  /// that only succeeds on a retry therefore carries non-canonical rows
  /// and its checkpoint is journaled under the seed it actually used (a
  /// later resume recomputes it from the canonical seed instead of
  /// replaying the fork).
  int max_point_retries = 0;
  /// What a design point that still fails after its retries does to the
  /// sweep (library/journal.hpp). kFail (default) throws one aggregated
  /// ConfigError after every other point finished — with a journal, all
  /// that finished work survives for the next attempt. kEmitPartial emits
  /// a Library missing the quarantined points, explicit in the report.
  PartialPolicy partial_policy = PartialPolicy::kFail;
  /// Content-checksum algorithm sealing journal checkpoints and the cached
  /// artifact: "fnv1a64" (default) or "crc32" (rule RG4).
  std::string checksum_mode = "fnv1a64";
  /// Optional flight recorder: when set, filled with per-point outcomes
  /// (computed/replayed/retried/quarantined, attempts, wall time) and the
  /// checkpoint-overhead share. Not part of the cache key.
  GenerationReport* report = nullptr;
  /// Test/chaos seam: invoked at the start of every design-point attempt
  /// with (sweep index, 0-based attempt). A throw from here is handled
  /// exactly like a point failure (retry, then quarantine) — the resume
  /// tests and `bench_00 --smoke` use it to induce deterministic
  /// mid-sweep failures. Not part of the cache key.
  std::function<void(std::size_t, int)> point_fault_hook;
  /// Progress sink (e.g. [](const std::string& s){ std::cerr << s << "\n"; }).
  /// May be called from worker threads, but calls are serialized under a
  /// mutex and design-point messages arrive in sweep order.
  std::function<void(const std::string&)> on_progress;
};

/// Fills prune_rates_pct / conf_thresholds_pct with the paper's sweeps.
void set_paper_sweeps(LibraryGenSpec& spec);

/// Runs the full design-time flow and returns the Library.
Library generate_library(const LibraryGenSpec& spec);

}  // namespace adapex
