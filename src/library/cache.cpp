#include "library/cache.hpp"

#include <cstdlib>
#include <filesystem>
#include <iomanip>
#include <limits>
#include <sstream>

#include "common/integrity.hpp"

namespace adapex {

namespace {

/// Bump whenever the key layout below changes, a generation-relevant field
/// starts/stops being hashed, or the artifact file format changes: every
/// cached artifact written under an older schema is then ignored rather
/// than silently reused. v4: artifacts are sealed checksummed envelopes
/// (common/integrity.hpp) instead of plain Library JSON.
constexpr int kCacheKeySchema = 4;

/// Streams every generation-relevant *value* into a readable key string.
/// Schema v1 hashed only the sizes of the sweeps and the variant count and
/// omitted folding_style/accel/power/reconfig/exits entirely, so changing a
/// sweep value or the device model silently returned a stale Library.
class KeyBuilder {
 public:
  KeyBuilder() {
    // Full round-trip precision so distinct doubles always hash apart.
    os_ << std::setprecision(std::numeric_limits<double>::max_digits10);
  }

  template <typename T>
  KeyBuilder& field(const char* name, const T& value) {
    os_ << name << "=" << value << ";";
    return *this;
  }

  template <typename T>
  KeyBuilder& list(const char* name, const std::vector<T>& values) {
    os_ << name << "=[";
    for (const T& v : values) os_ << v << ",";
    os_ << "];";
    return *this;
  }

  std::string str() const { return os_.str(); }

 private:
  std::ostringstream os_;
};

void add_train_config(KeyBuilder& key, const char* prefix,
                      const TrainConfig& t) {
  std::string p(prefix);
  key.field((p + ".epochs").c_str(), t.epochs)
      .field((p + ".batch_size").c_str(), t.batch_size)
      .field((p + ".lr").c_str(), t.lr)
      .field((p + ".momentum").c_str(), t.momentum)
      .field((p + ".weight_decay").c_str(), t.weight_decay)
      .field((p + ".lr_decay").c_str(), t.lr_decay)
      .field((p + ".lr_decay_epochs").c_str(), t.lr_decay_epochs)
      .list((p + ".exit_weights").c_str(), t.exit_weights)
      .field((p + ".augment").c_str(), t.augment)
      .field((p + ".seed").c_str(), t.seed);
}

}  // namespace

std::string library_cache_key(const LibraryGenSpec& spec) {
  KeyBuilder key;
  key.field("schema", kCacheKeySchema);

  key.field("ds.name", spec.dataset.name)
      .field("ds.classes", spec.dataset.num_classes)
      .field("ds.train", spec.dataset.train_size)
      .field("ds.test", spec.dataset.test_size)
      .field("ds.chw", spec.dataset.channels)
      .field("ds.h", spec.dataset.height)
      .field("ds.w", spec.dataset.width)
      .field("ds.noise_min", spec.dataset.noise_min)
      .field("ds.noise_max", spec.dataset.noise_max)
      .field("ds.easy", spec.dataset.easy_fraction)
      .field("ds.shift", spec.dataset.max_shift)
      .field("ds.flip", spec.dataset.flip_symmetry)
      .field("ds.seed", spec.dataset.seed);

  key.field("cnv.in", spec.cnv.in_channels)
      .field("cnv.img", spec.cnv.image_size)
      .list("cnv.conv", spec.cnv.conv_channels)
      .list("cnv.fc", spec.cnv.fc_features)
      .field("cnv.classes", spec.cnv.num_classes)
      .field("cnv.wbits", spec.cnv.weight_bits)
      .field("cnv.abits", spec.cnv.act_bits);

  key.field("exits.pruned", spec.exits.prune_exits);
  {
    std::ostringstream ex;
    for (const ExitSpec& e : spec.exits.exits) {
      ex << e.after_block << ":" << to_string(e.ops) << ",";
    }
    key.field("exits.list", ex.str());
  }

  {
    std::ostringstream vs;
    for (ModelVariant v : spec.variants) vs << to_string(v) << ",";
    key.field("variants", vs.str());
  }

  key.list("rates", spec.prune_rates_pct)
      .list("thresholds", spec.conf_thresholds_pct);

  add_train_config(key, "train", spec.initial_train);
  add_train_config(key, "retrain", spec.retrain);

  {
    std::ostringstream fs;
    for (const auto& [pe, simd] : spec.folding_style.conv_caps_per_block) {
      fs << pe << "/" << simd << ",";
    }
    fs << "fc" << spec.folding_style.fc_caps.first << "/"
       << spec.folding_style.fc_caps.second << ",exitconv"
       << spec.folding_style.exit_conv_caps.first << "/"
       << spec.folding_style.exit_conv_caps.second << ",exitfc"
       << spec.folding_style.exit_fc_caps.first << "/"
       << spec.folding_style.exit_fc_caps.second;
    key.field("folding", fs.str());
  }

  key.field("accel.fclk", spec.accel.fclk_mhz)
      .field("accel.in", spec.accel.in_channels)
      .field("accel.img", spec.accel.image_size)
      .field("accel.lut_mac", spec.accel.cost.lut_per_mac_base)
      .field("accel.lut_bitbit", spec.accel.cost.lut_per_mac_per_bitbit)
      .field("accel.ff_lut", spec.accel.cost.ff_per_lut)
      .field("accel.lut_pe", spec.accel.cost.lut_per_pe)
      .field("accel.bram_bits", spec.accel.cost.bram_bits)
      .field("accel.fifo", spec.accel.cost.fifo_depth);

  key.field("power.static", spec.power.static_w)
      .field("power.klut", spec.power.w_per_klut)
      .field("power.kff", spec.power.w_per_kff)
      .field("power.bram", spec.power.w_per_bram)
      .field("power.dsp", spec.power.w_per_dsp);

  key.field("reconfig.base", spec.reconfig.base_ms)
      .field("reconfig.lut", spec.reconfig.ms_per_100klut);

  // Mitigation fields enter the key only when a mitigation is enabled, so
  // mitigation-free keys (and their cached artifacts) are unaffected by
  // mitigation knobs within a schema.
  if (spec.mitigation.any()) {
    key.field("mit.ecc", spec.mitigation.ecc_weights)
        .field("mit.scrub", spec.mitigation.scrubbing)
        .field("mit.scrub_period", spec.mitigation.scrub_period_s)
        .field("mit.scrub_time", spec.mitigation.scrub_time_ms)
        .field("mit.tmr", spec.mitigation.tmr_exit_heads)
        .field("mit.ecc_bram_factor", spec.mitigation_cost.ecc_bram_factor)
        .field("mit.ecc_lut", spec.mitigation_cost.ecc_lut_per_bram)
        .field("mit.ecc_ff", spec.mitigation_cost.ecc_ff_per_bram)
        .field("mit.ecc_tput", spec.mitigation_cost.ecc_throughput_factor)
        .field("mit.scrub_lut", spec.mitigation_cost.scrub_lut)
        .field("mit.scrub_ff", spec.mitigation_cost.scrub_ff)
        .field("mit.scrub_bram", spec.mitigation_cost.scrub_bram)
        .field("mit.tmr_lut", spec.mitigation_cost.tmr_voter_lut)
        .field("mit.tmr_ff", spec.mitigation_cost.tmr_voter_ff);
  }

  // Reach-aware fields enter the key only when regimes are configured:
  // reach-free specs generate reach-free Libraries, so future reach knobs
  // (device caps, extra regimes) can never perturb their keys. The schema
  // bump to 3 above still retires every v2 artifact once, because v3
  // records may carry folding_mode/reach_regime fields v2 readers ignore.
  if (!spec.reach_regimes.empty()) {
    key.field("reach.device", spec.reach_device.name)
        .field("reach.lut", spec.reach_device.caps.lut)
        .field("reach.ff", spec.reach_device.caps.ff)
        .field("reach.bram", spec.reach_device.caps.bram)
        .field("reach.dsp", spec.reach_device.caps.dsp);
    for (std::size_t i = 0; i < spec.reach_regimes.size(); ++i) {
      key.list(("reach.regime" + std::to_string(i)).c_str(),
               spec.reach_regimes[i]);
    }
  }

  // NOTE: spec.num_threads, spec.on_progress, and spec.eval_path (with its
  // ADAPEX_PACKED override) are deliberately excluded — none affects the
  // generated bytes (see generator.hpp; packed and float evaluation agree
  // bitwise on every argmax/exit decision, verified in test_packed).
  key.field("seed", spec.seed);

  std::ostringstream out;
  out << spec.dataset.name << "_v" << kCacheKeySchema << "_" << std::hex
      << fnv1a64(key.str());
  return out.str();
}

Library generate_or_load_library(const LibraryGenSpec& spec,
                                 const std::string& dir) {
  std::filesystem::create_directories(dir);
  const std::string path =
      dir + "/library_" + library_cache_key(spec) + ".json";
  if (std::filesystem::exists(path)) {
    try {
      // Library::load verifies the sealed envelope's content checksum, so
      // a bit-flipped-but-parseable artifact lands in the catch below.
      return Library::load(path);
    } catch (const Error& e) {
      // Torn, truncated, or checksum-mismatched artifacts are quarantined
      // (evidence preserved at <path>.corrupt) and regenerated — never
      // served, never silently deleted.
      const std::string moved = quarantine_file(path);
      if (spec.on_progress) {
        spec.on_progress(std::string("cache: quarantining corrupt artifact ") +
                         path + " -> " + moved + " (" + e.what() + ")");
      }
    }
  }
  // A report is always attached (the caller's, else a local one): a
  // PartialPolicy::kEmitPartial run that quarantined points must not be
  // cached, or the incomplete Library would poison every future lookup of
  // this key.
  GenerationReport local_report;
  LibraryGenSpec gen_spec = spec;
  if (gen_spec.report == nullptr) gen_spec.report = &local_report;
  Library lib = generate_library(gen_spec);
  if (gen_spec.report->partial) {
    if (spec.on_progress) {
      spec.on_progress("cache: not caching partial library (" +
                       std::to_string(gen_spec.report->quarantined()) +
                       " design points quarantined)");
    }
    return lib;
  }
  // Sealed + atomic publish: the artifact carries a content checksum that
  // the next load verifies, and concurrent benches racing on the same key
  // each publish a complete file — the last writer wins with identical
  // bytes (generation is deterministic).
  atomic_write_file(
      path, seal_document("library", lib.to_json(), spec.checksum_mode));
  return lib;
}

std::string default_artifact_dir() {
  const char* env = std::getenv("ADAPEX_ARTIFACTS");
  return env ? env : "artifacts";
}

}  // namespace adapex
