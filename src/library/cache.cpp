#include "library/cache.hpp"

#include <cstdlib>
#include <filesystem>
#include <sstream>

namespace adapex {

std::string library_cache_key(const LibraryGenSpec& spec) {
  std::ostringstream key;
  key << spec.dataset.name << "_c" << spec.dataset.num_classes << "_n"
      << spec.dataset.train_size << "x" << spec.dataset.test_size << "_no"
      << spec.dataset.noise_min << "-" << spec.dataset.noise_max << "-"
      << spec.dataset.easy_fraction << "_sd" << spec.dataset.seed << "_w";
  for (int c : spec.cnv.conv_channels) key << c << ".";
  key << "_f";
  for (int f : spec.cnv.fc_features) key << f << ".";
  key << "_r" << spec.prune_rates_pct.size() << "_t"
      << spec.conf_thresholds_pct.size() << "_e" << spec.initial_train.epochs
      << "." << spec.retrain.epochs << "_v" << spec.variants.size() << "_s"
      << spec.seed;
  // FNV-1a over the readable key keeps filenames short and stable.
  const std::string readable = key.str();
  std::uint64_t h = 1469598103934665603ULL;
  for (char c : readable) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  std::ostringstream out;
  out << spec.dataset.name << "_" << std::hex << h;
  return out.str();
}

Library generate_or_load_library(const LibraryGenSpec& spec,
                                 const std::string& dir) {
  std::filesystem::create_directories(dir);
  const std::string path = dir + "/library_" + library_cache_key(spec) + ".json";
  if (std::filesystem::exists(path)) {
    return Library::load(path);
  }
  Library lib = generate_library(spec);
  lib.save(path);
  return lib;
}

std::string default_artifact_dir() {
  const char* env = std::getenv("ADAPEX_ARTIFACTS");
  return env ? env : "artifacts";
}

}  // namespace adapex
