// Per-design-point checkpoint journal for crash-safe library generation.
//
// Library generation retrains and compiles ~48 design points (~minutes even
// after the PR-5 kernels); before this journal existed a crash, OOM kill,
// or one throwing task at point 40 lost the whole run, because the Library
// artifact is only published atomically at the very end. The journal makes
// every completed (variant × rate) design point durable the moment it
// finishes:
//
//   <journal_dir>/<cache key>/
//     meta.json             reference accuracy (the one scalar computed
//                           outside the point sweep)
//     point_<i>.json        the i-th sweep point's LibraryEntry rows +
//                           accelerator records + progress message
//     point_<i>.error.json  quarantine record of a point that kept failing
//                           (error text + attempt count)
//
// The directory is keyed by the artifact-cache key (library/cache.hpp), so
// a journal can never be replayed against a different spec; each file is a
// sealed document (common/integrity.hpp) whose content checksum is verified
// on replay, published with the pid-salted tmp+rename idiom. On restart
// with the same spec, generate_library() replays intact finished points and
// recomputes only the missing (or corrupt — those are quarantined to
// `<file>.corrupt`) ones; because every point retrains from its own
// splitmix64-derived seed, the resumed Library is byte-identical to an
// uninterrupted run.
//
// GenerationReport is the sweep's flight record: per-point outcome
// (computed / replayed / retried / quarantined), attempts, wall time, and
// the checkpoint-overhead share. PartialPolicy decides what a still-failing
// point does to the sweep: fail it (default), or emit a partial Library
// whose missing points are explicit in the report.

#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "analysis/diagnostics.hpp"
#include "library/library.hpp"

namespace adapex {

struct LibraryGenSpec;

/// What a design point that still fails after its retries does to the run.
enum class PartialPolicy {
  kFail,         ///< The sweep throws (after every other point finished).
  kEmitPartial,  ///< Emit a Library missing the point; report it explicitly.
};

const char* to_string(PartialPolicy policy);

/// How one design point reached its final state.
enum class PointStatus {
  kComputed,     ///< Freshly computed on the first attempt.
  kReplayed,     ///< Restored from an intact journal checkpoint.
  kRetried,      ///< Computed after >= 1 failed attempt (fresh seed stream).
  kQuarantined,  ///< Still failing after all retries; excluded or fatal.
};

const char* to_string(PointStatus status);

/// One design point's outcome in the generation report.
struct PointOutcome {
  std::size_t index = 0;  ///< Sweep-order index.
  ModelVariant variant = ModelVariant::kNoExit;
  int rate_pct = 0;
  PointStatus status = PointStatus::kComputed;
  /// Attempts spent, including the successful one (1 for a clean point,
  /// 0 for a replayed one).
  int attempts = 1;
  /// Wall time of the point (compute + checkpoint publish; ~0 on replay).
  double wall_s = 0.0;
  /// Share of wall_s spent serializing + publishing the checkpoint.
  double checkpoint_s = 0.0;
  /// Last error text (set for retried and quarantined points).
  std::string error;
  /// Inference path that evaluated the point: "packed" or "float" (empty
  /// for replayed/quarantined points, which evaluated nothing this run).
  std::string eval_path;

  Json to_json() const;
};

/// Flight record of one generate_library() run.
struct GenerationReport {
  std::vector<PointOutcome> points;  ///< Sweep order.
  /// True when the emitted Library is missing quarantined points
  /// (PartialPolicy::kEmitPartial only).
  bool partial = false;
  double total_wall_s = 0.0;       ///< Whole generate_library() call.
  double compute_wall_s = 0.0;     ///< Sum of point wall_s (CPU-ish basis).
  double checkpoint_wall_s = 0.0;  ///< Sum of point checkpoint_s.

  std::size_t count(PointStatus status) const;
  std::size_t ok() const;  ///< computed + replayed + retried.
  std::size_t quarantined() const { return count(PointStatus::kQuarantined); }

  /// Journal overhead as a fraction of the summed per-point wall time
  /// (thread-count independent, unlike a wall-clock ratio). 0 when no
  /// point computed anything.
  double checkpoint_overhead() const;

  /// "12 points: 10 computed, 1 replayed, 1 retried, 0 quarantined; ..."
  std::string summary() const;

  Json to_json() const;
};

/// Everything one completed design point produced — the unit of journal
/// replay. Serialization round-trips bit-exactly (doubles print with
/// %.17g; the 64-bit retrain seed is stored as hex, not as a lossy JSON
/// double), which is what makes resumed libraries byte-identical.
struct JournalPoint {
  std::size_t index = 0;
  ModelVariant variant = ModelVariant::kNoExit;
  int rate_pct = 0;
  std::uint64_t retrain_seed = 0;
  std::vector<AcceleratorRecord> accelerators;
  std::vector<LibraryEntry> entries;
  std::string progress_msg;

  Json to_json() const;
  static JournalPoint from_json(const Json& j);
};

/// The on-disk checkpoint journal of one generation spec. Default
/// construction yields a disabled journal (every query misses, every
/// record is a no-op), so the generator can thread one object through
/// both the journaled and journal-free paths.
class GenerationJournal {
 public:
  GenerationJournal() = default;

  /// Opens (creating as needed) `<root>/<key>`. `log` receives one-line
  /// notes about replays and quarantines (may be null).
  GenerationJournal(const std::string& root, const std::string& key,
                    std::string checksum_mode,
                    std::function<void(const std::string&)> log = nullptr);

  bool enabled() const { return !dir_.empty(); }
  const std::string& dir() const { return dir_; }

  /// Replays the checkpoint of design point `index` when present, intact
  /// (checksum), and matching the expected identity (variant, rate, seed).
  /// A corrupt or mismatched checkpoint is quarantined to `<file>.corrupt`
  /// and reported through the log sink; the function then returns false so
  /// the caller recomputes the point.
  bool load_point(std::size_t index, ModelVariant variant, int rate_pct,
                  std::uint64_t retrain_seed, JournalPoint* out) const;

  /// Publishes a completed point's checkpoint (atomic tmp+rename) and
  /// clears any stale quarantine record of the same index.
  void record_point(const JournalPoint& point) const;

  /// Publishes a quarantine record for a point that exhausted its retries.
  void record_failure(std::size_t index, ModelVariant variant, int rate_pct,
                      int attempts, const std::string& error) const;

  /// Reference accuracy of the sweep's base model (meta.json). When both
  /// the meta and every point replay, generation skips base training
  /// entirely.
  bool load_meta(double* reference_accuracy) const;
  void record_meta(double reference_accuracy) const;

  std::string point_path(std::size_t index) const;
  std::string failure_path(std::size_t index) const;
  std::string meta_path() const;

 private:
  void note(const std::string& msg) const;

  std::string dir_;
  std::string checksum_mode_ = "fnv1a64";
  std::function<void(const std::string&)> log_;
};

/// Lint rules RG1-RG5 over the crash-safety knobs of a generation spec
/// (catalog in analysis/lint.hpp):
///   RG1 (error)   journal_dir exists as a non-directory, or cannot be
///                 created/written (probed with a temp file).
///   RG2 (error)   max_point_retries < 0; (warning) > 8 — that many
///                 retries of a deterministic failure only burn time and
///                 fork the seed stream further from the canonical run.
///   RG3 (warning) PartialPolicy::kEmitPartial together with
///                 verify_dataflow: a verifier-rejected point would be
///                 quarantined and silently missing instead of failing the
///                 run loudly.
///   RG4 (error)   checksum_mode is not one of fnv1a64 | crc32.
///   RG5 (warning) journal_dir is a relative path — resumability then
///                 depends on the working directory of the next run.
/// and the packed-inference rules RQ2-RQ3 (RQ1, the freeze-before-pack
/// precondition, is enforced at runtime by nn/quant.hpp freeze_packed):
///   RQ2 (error)   eval_path is not one of auto | float | packed;
///       (warning) an explicit spec eval_path contradicts a set
///                 ADAPEX_PACKED environment override (the spec wins).
///   RQ3 (error)   ADAPEX_PACKED is set to something other than 0|1|auto.
analysis::LintReport lint_gen_spec(const LibraryGenSpec& spec);

/// Throws a ConfigError aggregating every error-severity RG finding.
void require_valid_gen_spec(const LibraryGenSpec& spec);

}  // namespace adapex
