#include "library/library.hpp"

#include "common/integrity.hpp"

namespace adapex {

const char* to_string(ModelVariant v) {
  switch (v) {
    case ModelVariant::kNoExit: return "no_exit";
    case ModelVariant::kPrunedExits: return "pruned_exits";
    case ModelVariant::kNotPrunedExits: return "not_pruned_exits";
  }
  return "?";
}

ModelVariant model_variant_from_string(const std::string& s) {
  if (s == "no_exit") return ModelVariant::kNoExit;
  if (s == "pruned_exits") return ModelVariant::kPrunedExits;
  if (s == "not_pruned_exits") return ModelVariant::kNotPrunedExits;
  throw ParseError("unknown model variant: " + s);
}

namespace {

Json resources_to_json(const Resources& r) {
  Json j = Json::object();
  j["lut"] = static_cast<double>(r.lut);
  j["ff"] = static_cast<double>(r.ff);
  j["bram"] = static_cast<double>(r.bram);
  j["dsp"] = static_cast<double>(r.dsp);
  return j;
}

Resources resources_from_json(const Json& j) {
  Resources r;
  r.lut = j.at("lut").as_int();
  r.ff = j.at("ff").as_int();
  r.bram = j.at("bram").as_int();
  r.dsp = j.at("dsp").as_int();
  return r;
}

Json mitigation_to_json(const SeuMitigation& m) {
  Json j = Json::object();
  j["ecc_weights"] = m.ecc_weights;
  j["scrubbing"] = m.scrubbing;
  j["scrub_period_s"] = m.scrub_period_s;
  j["scrub_time_ms"] = m.scrub_time_ms;
  j["tmr_exit_heads"] = m.tmr_exit_heads;
  return j;
}

SeuMitigation mitigation_from_json(const Json& j) {
  SeuMitigation m;
  m.ecc_weights = j.at("ecc_weights").as_bool();
  m.scrubbing = j.at("scrubbing").as_bool();
  m.scrub_period_s = j.at("scrub_period_s").as_number();
  m.scrub_time_ms = j.at("scrub_time_ms").as_number();
  m.tmr_exit_heads = j.at("tmr_exit_heads").as_bool();
  return m;
}

}  // namespace

Json AcceleratorRecord::to_json() const {
  Json j = Json::object();
  j["id"] = id;
  j["variant"] = to_string(variant);
  j["prune_rate_pct"] = prune_rate_pct;
  j["resources"] = resources_to_json(resources);
  j["exit_overhead"] = resources_to_json(exit_overhead);
  j["reconfig_ms"] = reconfig_ms;
  if (mitigation.any()) {
    j["mitigation"] = mitigation_to_json(mitigation);
    j["mitigation_overhead"] = resources_to_json(mitigation_overhead);
  }
  if (folding_mode != "styled") {
    j["folding_mode"] = folding_mode;
    Json regime = Json::array();
    for (double f : reach_regime) regime.push_back(f);
    j["reach_regime"] = std::move(regime);
  }
  return j;
}

AcceleratorRecord AcceleratorRecord::from_json(const Json& j) {
  AcceleratorRecord r;
  r.id = static_cast<int>(j.at("id").as_int());
  r.variant = model_variant_from_string(j.at("variant").as_string());
  r.prune_rate_pct = static_cast<int>(j.at("prune_rate_pct").as_int());
  r.resources = resources_from_json(j.at("resources"));
  r.exit_overhead = resources_from_json(j.at("exit_overhead"));
  r.reconfig_ms = j.at("reconfig_ms").as_number();
  if (j.contains("mitigation")) {
    r.mitigation = mitigation_from_json(j.at("mitigation"));
    r.mitigation_overhead = resources_from_json(j.at("mitigation_overhead"));
  }
  if (j.contains("folding_mode")) {
    r.folding_mode = j.at("folding_mode").as_string();
    for (const auto& f : j.at("reach_regime").as_array()) {
      r.reach_regime.push_back(f.as_number());
    }
  }
  return r;
}

Json LibraryEntry::to_json() const {
  Json j = Json::object();
  j["accel_id"] = accel_id;
  j["variant"] = to_string(variant);
  j["prune_rate_pct"] = prune_rate_pct;
  j["conf_threshold_pct"] = conf_threshold_pct;
  j["accuracy"] = accuracy;
  Json fr = Json::array();
  for (double f : exit_fractions) fr.push_back(f);
  j["exit_fractions"] = std::move(fr);
  j["ips"] = ips;
  j["latency_ms"] = latency_ms;
  j["peak_power_w"] = peak_power_w;
  j["energy_per_inf_j"] = energy_per_inf_j;
  return j;
}

LibraryEntry LibraryEntry::from_json(const Json& j) {
  LibraryEntry e;
  e.accel_id = static_cast<int>(j.at("accel_id").as_int());
  e.variant = model_variant_from_string(j.at("variant").as_string());
  e.prune_rate_pct = static_cast<int>(j.at("prune_rate_pct").as_int());
  e.conf_threshold_pct = static_cast<int>(j.at("conf_threshold_pct").as_int());
  e.accuracy = j.at("accuracy").as_number();
  for (const auto& f : j.at("exit_fractions").as_array()) {
    e.exit_fractions.push_back(f.as_number());
  }
  e.ips = j.at("ips").as_number();
  e.latency_ms = j.at("latency_ms").as_number();
  e.peak_power_w = j.at("peak_power_w").as_number();
  e.energy_per_inf_j = j.at("energy_per_inf_j").as_number();
  return e;
}

const AcceleratorRecord& Library::accelerator(int id) const {
  for (const auto& a : accelerators) {
    if (a.id == id) return a;
  }
  throw Error("library has no accelerator with id " + std::to_string(id));
}

Json Library::to_json() const {
  Json j = Json::object();
  j["dataset"] = dataset;
  j["reference_accuracy"] = reference_accuracy;
  j["static_power_w"] = static_power_w;
  if (mitigation.any()) j["mitigation"] = mitigation_to_json(mitigation);
  Json accs = Json::array();
  for (const auto& a : accelerators) accs.push_back(a.to_json());
  j["accelerators"] = std::move(accs);
  Json ents = Json::array();
  for (const auto& e : entries) ents.push_back(e.to_json());
  j["entries"] = std::move(ents);
  return j;
}

Library Library::from_json(const Json& j) {
  Library lib;
  lib.dataset = j.at("dataset").as_string();
  lib.reference_accuracy = j.at("reference_accuracy").as_number();
  lib.static_power_w = j.at("static_power_w").as_number();
  if (j.contains("mitigation")) {
    lib.mitigation = mitigation_from_json(j.at("mitigation"));
  }
  for (const auto& a : j.at("accelerators").as_array()) {
    lib.accelerators.push_back(AcceleratorRecord::from_json(a));
  }
  for (const auto& e : j.at("entries").as_array()) {
    lib.entries.push_back(LibraryEntry::from_json(e));
  }
  return lib;
}

void Library::save(const std::string& path) const {
  write_file(path, to_json().dump(1));
}

Library Library::load(const std::string& path) {
  Json j = Json::parse(read_file(path));
  // Cache artifacts (schema v4+) are sealed envelopes whose content
  // checksum is verified here (common/integrity.hpp); plain documents
  // (Library::save output, older artifacts, hand-written fixtures) load
  // unchanged.
  if (is_sealed_document(j)) {
    return from_json(open_document(j, "library"));
  }
  return from_json(j);
}

}  // namespace adapex
