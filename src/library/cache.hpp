// Library artifact cache.
//
// Library generation trains ~50 models per dataset, which takes minutes;
// every bench that needs the same library shares the result through this
// disk cache. The cache key encodes the generation-relevant parts of the
// spec, so changing the scale, sweeps, or dataset regenerates.

#pragma once

#include <string>

#include "library/generator.hpp"

namespace adapex {

/// Deterministic cache key for a generation spec (dataset, scale knobs,
/// sweeps, seed — everything that affects the output).
std::string library_cache_key(const LibraryGenSpec& spec);

/// Loads the library from `<dir>/library_<key>.json` if present, else
/// generates and saves it. `dir` is created if missing.
Library generate_or_load_library(const LibraryGenSpec& spec,
                                 const std::string& dir);

/// Default artifact directory: $ADAPEX_ARTIFACTS or "artifacts".
std::string default_artifact_dir();

}  // namespace adapex
