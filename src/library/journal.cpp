#include "library/journal.hpp"

#include <unistd.h>

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <system_error>

#include "common/integrity.hpp"
#include "library/generator.hpp"

namespace adapex {

namespace {

constexpr const char* kPointKind = "journal-point";
constexpr const char* kFailureKind = "journal-failure";
constexpr const char* kMetaKind = "journal-meta";

std::string seed_to_hex(std::uint64_t seed) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%016" PRIx64, seed);
  return buf;
}

std::uint64_t seed_from_hex(const std::string& hex) {
  std::uint64_t seed = 0;
  if (hex.size() != 16 ||
      std::sscanf(hex.c_str(), "%16" SCNx64, &seed) != 1) {
    throw ParseError("journal: malformed retrain-seed hex '" + hex + "'");
  }
  return seed;
}

}  // namespace

const char* to_string(PartialPolicy policy) {
  switch (policy) {
    case PartialPolicy::kFail: return "fail";
    case PartialPolicy::kEmitPartial: return "emit_partial";
  }
  return "?";
}

const char* to_string(PointStatus status) {
  switch (status) {
    case PointStatus::kComputed: return "computed";
    case PointStatus::kReplayed: return "replayed";
    case PointStatus::kRetried: return "retried";
    case PointStatus::kQuarantined: return "quarantined";
  }
  return "?";
}

Json PointOutcome::to_json() const {
  Json j = Json::object();
  j["index"] = index;
  j["variant"] = adapex::to_string(variant);
  j["rate_pct"] = rate_pct;
  j["status"] = adapex::to_string(status);
  j["attempts"] = attempts;
  j["wall_s"] = wall_s;
  j["checkpoint_s"] = checkpoint_s;
  if (!error.empty()) j["error"] = error;
  if (!eval_path.empty()) j["eval_path"] = eval_path;
  return j;
}

std::size_t GenerationReport::count(PointStatus status) const {
  std::size_t n = 0;
  for (const auto& p : points) {
    if (p.status == status) ++n;
  }
  return n;
}

std::size_t GenerationReport::ok() const {
  return count(PointStatus::kComputed) + count(PointStatus::kReplayed) +
         count(PointStatus::kRetried);
}

double GenerationReport::checkpoint_overhead() const {
  if (compute_wall_s <= 0.0) return 0.0;
  return checkpoint_wall_s / compute_wall_s;
}

std::string GenerationReport::summary() const {
  std::string s = std::to_string(points.size()) + " points: " +
                  std::to_string(count(PointStatus::kComputed)) +
                  " computed, " + std::to_string(count(PointStatus::kReplayed)) +
                  " replayed, " + std::to_string(count(PointStatus::kRetried)) +
                  " retried, " + std::to_string(quarantined()) +
                  " quarantined";
  char buf[96];
  std::snprintf(buf, sizeof(buf), "; checkpoint overhead %.2f%%",
                100.0 * checkpoint_overhead());
  s += buf;
  if (partial) s += " (PARTIAL library)";
  return s;
}

Json GenerationReport::to_json() const {
  Json j = Json::object();
  j["partial"] = partial;
  j["total_wall_s"] = total_wall_s;
  j["compute_wall_s"] = compute_wall_s;
  j["checkpoint_wall_s"] = checkpoint_wall_s;
  j["checkpoint_overhead"] = checkpoint_overhead();
  Json pts = Json::array();
  for (const auto& p : points) pts.push_back(p.to_json());
  j["points"] = std::move(pts);
  return j;
}

Json JournalPoint::to_json() const {
  Json j = Json::object();
  j["index"] = index;
  j["variant"] = adapex::to_string(variant);
  j["rate_pct"] = rate_pct;
  j["retrain_seed"] = seed_to_hex(retrain_seed);
  Json accs = Json::array();
  for (const auto& a : accelerators) accs.push_back(a.to_json());
  j["accelerators"] = std::move(accs);
  Json ents = Json::array();
  for (const auto& e : entries) ents.push_back(e.to_json());
  j["entries"] = std::move(ents);
  j["progress_msg"] = progress_msg;
  return j;
}

JournalPoint JournalPoint::from_json(const Json& j) {
  JournalPoint p;
  p.index = static_cast<std::size_t>(j.at("index").as_int());
  p.variant = model_variant_from_string(j.at("variant").as_string());
  p.rate_pct = static_cast<int>(j.at("rate_pct").as_int());
  p.retrain_seed = seed_from_hex(j.at("retrain_seed").as_string());
  for (const auto& a : j.at("accelerators").as_array()) {
    p.accelerators.push_back(AcceleratorRecord::from_json(a));
  }
  for (const auto& e : j.at("entries").as_array()) {
    p.entries.push_back(LibraryEntry::from_json(e));
  }
  p.progress_msg = j.at("progress_msg").as_string();
  return p;
}

GenerationJournal::GenerationJournal(
    const std::string& root, const std::string& key, std::string checksum_mode,
    std::function<void(const std::string&)> log)
    : dir_(root + "/" + key),
      checksum_mode_(std::move(checksum_mode)),
      log_(std::move(log)) {
  std::filesystem::create_directories(dir_);
}

void GenerationJournal::note(const std::string& msg) const {
  if (log_) log_("journal: " + msg);
}

std::string GenerationJournal::point_path(std::size_t index) const {
  return dir_ + "/point_" + std::to_string(index) + ".json";
}

std::string GenerationJournal::failure_path(std::size_t index) const {
  return dir_ + "/point_" + std::to_string(index) + ".error.json";
}

std::string GenerationJournal::meta_path() const { return dir_ + "/meta.json"; }

bool GenerationJournal::load_point(std::size_t index, ModelVariant variant,
                                   int rate_pct, std::uint64_t retrain_seed,
                                   JournalPoint* out) const {
  if (!enabled()) return false;
  const std::string path = point_path(index);
  if (!std::filesystem::exists(path)) return false;
  try {
    JournalPoint p =
        JournalPoint::from_json(open_document_text(read_file(path), kPointKind));
    // The directory is keyed by the cache key, so a mismatch here means a
    // truncated key collision or manual tampering — never replay it.
    if (p.index != index || p.variant != variant || p.rate_pct != rate_pct ||
        p.retrain_seed != retrain_seed) {
      throw IntegrityError("checkpoint identity mismatch (expected " +
                           std::string(adapex::to_string(variant)) + " rate " +
                           std::to_string(rate_pct) + ")");
    }
    *out = std::move(p);
    return true;
  } catch (const Error& e) {
    const std::string moved = quarantine_file(path);
    note("discarding corrupt checkpoint " + path + " -> " + moved + " (" +
         e.what() + ")");
    return false;
  }
}

void GenerationJournal::record_point(const JournalPoint& point) const {
  if (!enabled()) return;
  atomic_write_file(point_path(point.index),
                    seal_document(kPointKind, point.to_json(), checksum_mode_));
  // A point that now succeeded (e.g. after a transient failure in an
  // earlier run) supersedes its stale quarantine record.
  std::error_code ec;
  std::filesystem::remove(failure_path(point.index), ec);
}

void GenerationJournal::record_failure(std::size_t index, ModelVariant variant,
                                       int rate_pct, int attempts,
                                       const std::string& error) const {
  if (!enabled()) return;
  Json j = Json::object();
  j["index"] = index;
  j["variant"] = adapex::to_string(variant);
  j["rate_pct"] = rate_pct;
  j["attempts"] = attempts;
  j["error"] = error;
  atomic_write_file(failure_path(index),
                    seal_document(kFailureKind, j, checksum_mode_));
}

bool GenerationJournal::load_meta(double* reference_accuracy) const {
  if (!enabled()) return false;
  const std::string path = meta_path();
  if (!std::filesystem::exists(path)) return false;
  try {
    const Json j = open_document_text(read_file(path), kMetaKind);
    *reference_accuracy = j.at("reference_accuracy").as_number();
    return true;
  } catch (const Error& e) {
    const std::string moved = quarantine_file(path);
    note("discarding corrupt meta " + path + " -> " + moved + " (" + e.what() +
         ")");
    return false;
  }
}

void GenerationJournal::record_meta(double reference_accuracy) const {
  if (!enabled()) return;
  Json j = Json::object();
  j["reference_accuracy"] = reference_accuracy;
  atomic_write_file(meta_path(), seal_document(kMetaKind, j, checksum_mode_));
}

analysis::LintReport lint_gen_spec(const LibraryGenSpec& spec) {
  analysis::LintReport report;

  // RG1: the journal directory must be creatable and writable; probed with
  // an actual temp file because access bits alone miss read-only mounts.
  if (!spec.journal_dir.empty()) {
    const std::filesystem::path dir(spec.journal_dir);
    std::error_code ec;
    if (std::filesystem::exists(dir, ec) &&
        !std::filesystem::is_directory(dir, ec)) {
      report.add("RG1", analysis::Severity::kError, "journal_dir",
                 "journal_dir '" + spec.journal_dir +
                     "' exists and is not a directory",
                 "point journal_dir at a (creatable) directory");
    } else {
      std::filesystem::create_directories(dir, ec);
      const std::string probe = (dir / (".rg1_probe." +
                                        std::to_string(::getpid())))
                                    .string();
      bool writable = !ec;
      if (writable) {
        try {
          write_file(probe, "probe");
          std::filesystem::remove(probe, ec);
        } catch (const Error&) {
          writable = false;
        }
      }
      if (!writable) {
        report.add("RG1", analysis::Severity::kError, "journal_dir",
                   "journal_dir '" + spec.journal_dir +
                       "' cannot be created or written",
                   "check permissions / choose a writable directory");
      }
    }

    // RG5: a relative journal path resumes only from the same CWD.
    if (dir.is_relative()) {
      report.add("RG5", analysis::Severity::kWarning, "journal_dir",
                 "journal_dir '" + spec.journal_dir +
                     "' is relative: resuming from another working "
                     "directory will silently start a fresh journal",
                 "use an absolute path");
    }
  }

  // RG2: retry-count bounds.
  if (spec.max_point_retries < 0) {
    report.add("RG2", analysis::Severity::kError, "max_point_retries",
               "max_point_retries must be >= 0, got " +
                   std::to_string(spec.max_point_retries),
               "0 disables retries");
  } else if (spec.max_point_retries > 8) {
    report.add("RG2", analysis::Severity::kWarning, "max_point_retries",
               std::to_string(spec.max_point_retries) +
                   " retries per point: deterministic failures will burn "
                   "that many full retrain passes, and every retry forks "
                   "the seed stream further from the canonical run",
               "keep retries <= 8");
  }

  // RG3: emitting partial libraries can mask verifier rejections.
  if (spec.partial_policy == PartialPolicy::kEmitPartial &&
      spec.verify_dataflow) {
    report.add("RG3", analysis::Severity::kWarning, "partial_policy",
               "emit_partial together with verify_dataflow: a point the "
               "dataflow verifier rejects is quarantined and silently "
               "missing from the Library instead of failing the run",
               "use PartialPolicy::kFail when verifying, or audit the "
               "GenerationReport for quarantined points");
  }

  // RG4: checksum-mode well-formedness.
  if (!checksum_mode_valid(spec.checksum_mode)) {
    report.add("RG4", analysis::Severity::kError, "checksum_mode",
               "unknown checksum_mode '" + spec.checksum_mode + "'",
               "use fnv1a64 or crc32");
  }

  // RQ2: eval-path well-formedness and spec/environment consistency. (RQ1,
  // the freeze-before-pack precondition, is enforced at runtime by
  // freeze_packed — eligibility depends on the trained model, which a spec
  // lint cannot see.)
  const bool eval_path_valid = spec.eval_path == "auto" ||
                               spec.eval_path == "float" ||
                               spec.eval_path == "packed";
  if (!eval_path_valid) {
    report.add("RQ2", analysis::Severity::kError, "eval_path",
               "unknown eval_path '" + spec.eval_path + "'",
               "use auto, float, or packed");
  }

  // RQ3: the ADAPEX_PACKED override must parse; an explicit spec path that
  // contradicts it is surfaced so nobody is surprised which path ran (the
  // spec wins over the environment).
  const char* env = std::getenv("ADAPEX_PACKED");
  if (env != nullptr && *env != '\0') {
    const std::string v(env);
    if (v != "0" && v != "1" && v != "auto") {
      report.add("RQ3", analysis::Severity::kError, "eval_path",
                 "ADAPEX_PACKED='" + v + "' is not a valid packed-path mode",
                 "use ADAPEX_PACKED=0, 1, or auto");
    } else if (eval_path_valid && spec.eval_path != "auto" &&
               ((spec.eval_path == "float" && v == "1") ||
                (spec.eval_path == "packed" && v == "0"))) {
      report.add("RQ2", analysis::Severity::kWarning, "eval_path",
                 "spec eval_path '" + spec.eval_path +
                     "' overrides the conflicting ADAPEX_PACKED=" + v +
                     " environment setting",
                 "drop one of the two overrides (spec wins)");
    }
  }

  return report;
}

void require_valid_gen_spec(const LibraryGenSpec& spec) {
  const analysis::LintReport report = lint_gen_spec(spec);
  if (report.has_errors()) {
    throw ConfigError("generation spec: " + report.error_message());
  }
}

}  // namespace adapex
