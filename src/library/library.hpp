// The AdaPEx Library: the design-time artifact the Runtime Manager searches.
//
// Each row ("entry") is one operating point: a pruned (or unpruned) model
// variant together with a confidence threshold, annotated with the metrics
// gathered at design time — accuracy on the test set under the early-exit
// decision rule, throughput (IPS), latency, power, and energy per inference
// from the synthesized accelerator's performance model. Entries referencing
// the same accelerator share a bitstream: switching between them at runtime
// is free (only the confidence threshold changes), while switching
// accelerators costs an FPGA reconfiguration.

#pragma once

#include <string>
#include <vector>

#include "common/json.hpp"
#include "finn/mitigation.hpp"
#include "hls/modules.hpp"

namespace adapex {

/// Model family variants in the library.
enum class ModelVariant {
  kNoExit,         ///< Plain CNV (FINN / PR-Only baselines).
  kPrunedExits,    ///< Early-exit CNV, exit convs pruned with the backbone.
  kNotPrunedExits, ///< Early-exit CNV, exit convs left intact.
};

const char* to_string(ModelVariant v);
ModelVariant model_variant_from_string(const std::string& s);

/// One synthesized accelerator (bitstream).
struct AcceleratorRecord {
  int id = 0;
  ModelVariant variant = ModelVariant::kNoExit;
  int prune_rate_pct = 0;
  Resources resources;
  /// Resource share of exit heads + branch modules.
  Resources exit_overhead;
  double reconfig_ms = 145.0;
  /// Soft-error mitigations synthesized into this bitstream and their
  /// resource cost (already included in `resources`). Serialized only when
  /// a mitigation is enabled, so mitigation-free libraries are unchanged.
  SeuMitigation mitigation;
  Resources mitigation_overhead;
  /// Folding mode the bitstream was generated with: "styled" (default) or
  /// "reach" — ATHEENA-style reach-aware folds optimized for the exit
  /// fractions in `reach_regime` (hls/folding.hpp reach_aware_folding).
  /// Serialized only for non-styled records, so existing libraries
  /// round-trip unchanged.
  std::string folding_mode = "styled";
  std::vector<double> reach_regime;

  Json to_json() const;
  static AcceleratorRecord from_json(const Json& j);
};

/// One operating point.
struct LibraryEntry {
  int accel_id = 0;
  ModelVariant variant = ModelVariant::kNoExit;
  int prune_rate_pct = 0;
  /// Confidence threshold in percent; -1 for no-exit models.
  int conf_threshold_pct = -1;

  double accuracy = 0.0;   ///< TOP-1 under the early-exit rule.
  std::vector<double> exit_fractions;  ///< Per output; {1} for no-exit.
  double ips = 0.0;
  double latency_ms = 0.0;
  double peak_power_w = 0.0;
  double energy_per_inf_j = 0.0;

  Json to_json() const;
  static LibraryEntry from_json(const Json& j);
};

/// The library for one dataset.
struct Library {
  std::string dataset;
  /// Test accuracy of the unpruned, no-exit model on FINN — the reference
  /// the user accuracy threshold is relative to.
  double reference_accuracy = 0.0;
  double static_power_w = 0.0;  ///< Board static power used at generation.
  /// Soft-error mitigations the whole library was generated with.
  SeuMitigation mitigation;
  std::vector<AcceleratorRecord> accelerators;
  std::vector<LibraryEntry> entries;

  const AcceleratorRecord& accelerator(int id) const;

  Json to_json() const;
  static Library from_json(const Json& j);

  void save(const std::string& path) const;
  static Library load(const std::string& path);
};

}  // namespace adapex
