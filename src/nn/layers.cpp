#include "nn/layers.hpp"

#include <cmath>
#include <utility>

#include "tensor/ops.hpp"

namespace adapex {

const char* to_string(LayerKind kind) {
  switch (kind) {
    case LayerKind::kConv: return "Conv";
    case LayerKind::kLinear: return "Linear";
    case LayerKind::kBatchNorm: return "BatchNorm";
    case LayerKind::kActQuant: return "ActQuant";
    case LayerKind::kMaxPool: return "MaxPool";
    case LayerKind::kFlatten: return "Flatten";
  }
  return "?";
}

// ---------------------------------------------------------------- QuantConv2d

QuantConv2d::QuantConv2d(int in_channels, int out_channels, int kernel,
                         int weight_bits, Rng& rng)
    : weight_bits_(weight_bits) {
  ADAPEX_CHECK(in_channels > 0 && out_channels > 0 && kernel > 0,
               "conv dimensions must be positive");
  weight_.value = Tensor({out_channels, in_channels, kernel, kernel});
  const float stddev =
      std::sqrt(2.0f / static_cast<float>(in_channels * kernel * kernel));
  weight_.value.randn_(rng, stddev);
  weight_.ensure_grad();
}

Tensor QuantConv2d::forward(const Tensor& input, bool train) {
  quantize_weight_per_channel(weight_.value, weight_bits_, cached_qweight_);
  if (train) cached_input_ = input;
  static const Tensor kNoBias;
  return ops::conv2d_forward(input, cached_qweight_, kNoBias, col_scratch_);
}

Tensor QuantConv2d::backward(const Tensor& grad_output) {
  ADAPEX_CHECK(!cached_input_.empty(), "backward before forward(train=true)");
  Tensor grad_input;
  Tensor no_bias_grad;
  weight_.ensure_grad();
  // STE: gradient w.r.t. the quantized weight is applied to the latent float
  // weight directly.
  ops::conv2d_backward(cached_input_, cached_qweight_, grad_output, grad_input,
                       weight_.grad, no_bias_grad, col_scratch_);
  return grad_input;
}

std::string QuantConv2d::name() const {
  return "QuantConv2d(" + std::to_string(in_channels()) + "->" +
         std::to_string(out_channels()) + ", k=" + std::to_string(kernel()) +
         ", w" + std::to_string(weight_bits_) + ")";
}

std::unique_ptr<Layer> QuantConv2d::clone() const {
  Rng dummy(0);
  auto copy = std::make_unique<QuantConv2d>(in_channels(), out_channels(),
                                            kernel(), weight_bits_, dummy);
  copy->weight_.value = weight_.value;
  copy->weight_.ensure_grad();
  return copy;
}

void QuantConv2d::set_weight(Tensor w) {
  ADAPEX_CHECK(w.ndim() == 4, "conv weight must be 4-D");
  weight_.value = std::move(w);
  weight_.grad = Tensor(weight_.value.shape());
}

// ---------------------------------------------------------------- QuantLinear

QuantLinear::QuantLinear(int in_features, int out_features, int weight_bits,
                         Rng& rng)
    : weight_bits_(weight_bits) {
  ADAPEX_CHECK(in_features > 0 && out_features > 0,
               "linear dimensions must be positive");
  weight_.value = Tensor({out_features, in_features});
  const float stddev = std::sqrt(2.0f / static_cast<float>(in_features));
  weight_.value.randn_(rng, stddev);
  weight_.ensure_grad();
}

Tensor QuantLinear::forward(const Tensor& input, bool train) {
  quantize_weight_per_channel(weight_.value, weight_bits_, cached_qweight_);
  if (train) cached_input_ = input;
  static const Tensor kNoBias;
  return ops::linear_forward(input, cached_qweight_, kNoBias);
}

Tensor QuantLinear::backward(const Tensor& grad_output) {
  ADAPEX_CHECK(!cached_input_.empty(), "backward before forward(train=true)");
  Tensor grad_input;
  Tensor no_bias_grad;
  weight_.ensure_grad();
  ops::linear_backward(cached_input_, cached_qweight_, grad_output, grad_input,
                       weight_.grad, no_bias_grad);
  return grad_input;
}

std::string QuantLinear::name() const {
  return "QuantLinear(" + std::to_string(in_features()) + "->" +
         std::to_string(out_features()) + ", w" + std::to_string(weight_bits_) +
         ")";
}

std::unique_ptr<Layer> QuantLinear::clone() const {
  Rng dummy(0);
  auto copy = std::make_unique<QuantLinear>(in_features(), out_features(),
                                            weight_bits_, dummy);
  copy->weight_.value = weight_.value;
  copy->weight_.ensure_grad();
  return copy;
}

void QuantLinear::set_weight(Tensor w) {
  ADAPEX_CHECK(w.ndim() == 2, "linear weight must be 2-D");
  weight_.value = std::move(w);
  weight_.grad = Tensor(weight_.value.shape());
}

// ------------------------------------------------------------------ BatchNorm

BatchNorm::BatchNorm(int channels) {
  ADAPEX_CHECK(channels > 0, "batchnorm channels must be positive");
  gamma_.value = Tensor({channels});
  gamma_.value.fill(1.0f);
  gamma_.ensure_grad();
  beta_.value = Tensor({channels});
  beta_.ensure_grad();
  running_mean_ = Tensor({channels});
  running_var_ = Tensor({channels});
  running_var_.fill(1.0f);
}

namespace {

// Unifies [N,C,H,W] and [N,C] handling: returns (N, C, spatial).
struct BnGeom {
  int n;
  int c;
  int spatial;
};

BnGeom bn_geom(const Tensor& t, int channels) {
  ADAPEX_CHECK(t.ndim() == 2 || t.ndim() == 4,
               "batchnorm input must be 2-D or 4-D");
  BnGeom g{t.dim(0), t.dim(1), 1};
  if (t.ndim() == 4) g.spatial = t.dim(2) * t.dim(3);
  ADAPEX_CHECK(g.c == channels, "batchnorm channel mismatch");
  return g;
}

}  // namespace

Tensor BatchNorm::forward(const Tensor& input, bool train) {
  const auto g = bn_geom(input, channels());
  const std::size_t plane = static_cast<std::size_t>(g.spatial);
  const std::size_t count = static_cast<std::size_t>(g.n) * plane;
  constexpr float kMomentum = 0.1f;
  constexpr float kEps = 1e-5f;

  Tensor out(input.shape());
  if (train) {
    cached_input_ = input;
    cached_xhat_ = Tensor(input.shape());
    cached_mean_.assign(static_cast<std::size_t>(g.c), 0.0f);
    cached_inv_std_.assign(static_cast<std::size_t>(g.c), 0.0f);
  }
  for (int c = 0; c < g.c; ++c) {
    float mean;
    float var;
    if (train) {
      double sum = 0.0, sq = 0.0;
      for (int n = 0; n < g.n; ++n) {
        const float* src = input.data() +
                           (static_cast<std::size_t>(n) * g.c + c) * plane;
        for (std::size_t i = 0; i < plane; ++i) {
          sum += src[i];
          sq += static_cast<double>(src[i]) * src[i];
        }
      }
      mean = static_cast<float>(sum / count);
      var = static_cast<float>(sq / count - static_cast<double>(mean) * mean);
      var = std::max(var, 0.0f);
      running_mean_[static_cast<std::size_t>(c)] =
          (1 - kMomentum) * running_mean_[static_cast<std::size_t>(c)] +
          kMomentum * mean;
      running_var_[static_cast<std::size_t>(c)] =
          (1 - kMomentum) * running_var_[static_cast<std::size_t>(c)] +
          kMomentum * var;
      cached_mean_[static_cast<std::size_t>(c)] = mean;
    } else {
      mean = running_mean_[static_cast<std::size_t>(c)];
      var = running_var_[static_cast<std::size_t>(c)];
    }
    const float inv_std = 1.0f / std::sqrt(var + kEps);
    if (train) cached_inv_std_[static_cast<std::size_t>(c)] = inv_std;
    const float gm = gamma_.value[static_cast<std::size_t>(c)];
    const float bt = beta_.value[static_cast<std::size_t>(c)];
    for (int n = 0; n < g.n; ++n) {
      const std::size_t base = (static_cast<std::size_t>(n) * g.c + c) * plane;
      for (std::size_t i = 0; i < plane; ++i) {
        const float xhat = (input[base + i] - mean) * inv_std;
        if (train) cached_xhat_[base + i] = xhat;
        out[base + i] = gm * xhat + bt;
      }
    }
  }
  return out;
}

Tensor BatchNorm::backward(const Tensor& grad_output) {
  ADAPEX_CHECK(!cached_input_.empty(), "backward before forward(train=true)");
  const auto g = bn_geom(cached_input_, channels());
  const std::size_t plane = static_cast<std::size_t>(g.spatial);
  const double count = static_cast<double>(g.n) * g.spatial;

  Tensor grad_input(cached_input_.shape());
  gamma_.ensure_grad();
  beta_.ensure_grad();
  for (int c = 0; c < g.c; ++c) {
    double sum_dy = 0.0, sum_dy_xhat = 0.0;
    for (int n = 0; n < g.n; ++n) {
      const std::size_t base = (static_cast<std::size_t>(n) * g.c + c) * plane;
      for (std::size_t i = 0; i < plane; ++i) {
        sum_dy += grad_output[base + i];
        sum_dy_xhat +=
            static_cast<double>(grad_output[base + i]) * cached_xhat_[base + i];
      }
    }
    gamma_.grad[static_cast<std::size_t>(c)] += static_cast<float>(sum_dy_xhat);
    beta_.grad[static_cast<std::size_t>(c)] += static_cast<float>(sum_dy);
    const float gm = gamma_.value[static_cast<std::size_t>(c)];
    const float inv_std = cached_inv_std_[static_cast<std::size_t>(c)];
    for (int n = 0; n < g.n; ++n) {
      const std::size_t base = (static_cast<std::size_t>(n) * g.c + c) * plane;
      for (std::size_t i = 0; i < plane; ++i) {
        const double dy = grad_output[base + i];
        const double xhat = cached_xhat_[base + i];
        grad_input[base + i] = static_cast<float>(
            gm * inv_std *
            (dy - sum_dy / count - xhat * sum_dy_xhat / count));
      }
    }
  }
  return grad_input;
}

std::string BatchNorm::name() const {
  return "BatchNorm(" + std::to_string(channels()) + ")";
}

std::unique_ptr<Layer> BatchNorm::clone() const {
  auto copy = std::make_unique<BatchNorm>(channels());
  copy->gamma_.value = gamma_.value;
  copy->beta_.value = beta_.value;
  copy->running_mean_ = running_mean_;
  copy->running_var_ = running_var_;
  copy->gamma_.ensure_grad();
  copy->beta_.ensure_grad();
  return copy;
}

void BatchNorm::set_state(Tensor gamma, Tensor beta, Tensor mean,
                          Tensor var) {
  const auto shape = std::vector<int>{channels()};
  ADAPEX_CHECK(gamma.shape() == shape && beta.shape() == shape &&
                   mean.shape() == shape && var.shape() == shape,
               "batchnorm state shape mismatch");
  gamma_.value = std::move(gamma);
  beta_.value = std::move(beta);
  running_mean_ = std::move(mean);
  running_var_ = std::move(var);
  gamma_.ensure_grad();
  beta_.ensure_grad();
}

void BatchNorm::slice_channels(const std::vector<int>& keep) {
  const int new_c = static_cast<int>(keep.size());
  ADAPEX_CHECK(new_c > 0 && new_c <= channels(), "invalid channel slice");
  Tensor gamma({new_c}), beta({new_c}), mean({new_c}), var({new_c});
  for (int i = 0; i < new_c; ++i) {
    const auto src = static_cast<std::size_t>(keep[static_cast<std::size_t>(i)]);
    ADAPEX_CHECK(static_cast<int>(src) < channels(), "slice index out of range");
    gamma[static_cast<std::size_t>(i)] = gamma_.value[src];
    beta[static_cast<std::size_t>(i)] = beta_.value[src];
    mean[static_cast<std::size_t>(i)] = running_mean_[src];
    var[static_cast<std::size_t>(i)] = running_var_[src];
  }
  gamma_.value = std::move(gamma);
  beta_.value = std::move(beta);
  running_mean_ = std::move(mean);
  running_var_ = std::move(var);
  gamma_.grad = Tensor(gamma_.value.shape());
  beta_.grad = Tensor(beta_.value.shape());
}

// ------------------------------------------------------------------- ActQuant

Tensor ActQuant::forward(const Tensor& input, bool train) {
  if (train) cached_input_ = input;
  return quantizer_.forward(input, train);
}

Tensor ActQuant::backward(const Tensor& grad_output) {
  ADAPEX_CHECK(!cached_input_.empty(), "backward before forward(train=true)");
  return quantizer_.backward(cached_input_, grad_output);
}

std::string ActQuant::name() const {
  return "ActQuant(a" + std::to_string(quantizer_.bits()) + ")";
}

std::unique_ptr<Layer> ActQuant::clone() const {
  auto copy = std::make_unique<ActQuant>(quantizer_.bits());
  copy->quantizer_ = quantizer_;
  return copy;
}

// ------------------------------------------------------------------ MaxPool2d

Tensor MaxPool2d::forward(const Tensor& input, bool train) {
  if (train) cached_input_ = input;
  return ops::maxpool_forward(input, kernel_, stride_, argmax_);
}

Tensor MaxPool2d::backward(const Tensor& grad_output) {
  ADAPEX_CHECK(!cached_input_.empty(), "backward before forward(train=true)");
  return ops::maxpool_backward(cached_input_, grad_output, kernel_, stride_,
                               argmax_);
}

std::string MaxPool2d::name() const {
  return "MaxPool2d(k=" + std::to_string(kernel_) +
         ", s=" + std::to_string(stride_) + ")";
}

std::unique_ptr<Layer> MaxPool2d::clone() const {
  return std::make_unique<MaxPool2d>(kernel_, stride_);
}

// -------------------------------------------------------------------- Flatten

Tensor Flatten::forward(const Tensor& input, bool train) {
  if (train) cached_shape_ = input.shape();
  const int batch = input.dim(0);
  const int features = static_cast<int>(input.numel()) / batch;
  return input.reshaped({batch, features});
}

Tensor Flatten::backward(const Tensor& grad_output) {
  ADAPEX_CHECK(!cached_shape_.empty(), "backward before forward(train=true)");
  return grad_output.reshaped(cached_shape_);
}

// ----------------------------------------------------------------- Sequential

Tensor Sequential::forward(const Tensor& input, bool train) {
  Tensor x = input;
  for (auto& layer : layers_) x = layer->forward(x, train);
  return x;
}

Tensor Sequential::backward(const Tensor& grad_output) {
  Tensor g = grad_output;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
    g = (*it)->backward(g);
  }
  return g;
}

std::vector<Param*> Sequential::params() {
  std::vector<Param*> all;
  for (auto& layer : layers_) {
    for (Param* p : layer->params()) all.push_back(p);
  }
  return all;
}

std::vector<const Param*> Sequential::params() const {
  std::vector<const Param*> all;
  for (const auto& layer : layers_) {
    for (const Param* p : std::as_const(*layer).params()) all.push_back(p);
  }
  return all;
}

std::unique_ptr<Layer> Sequential::clone() const {
  auto copy = std::make_unique<Sequential>();
  for (const auto& layer : layers_) copy->append(layer->clone());
  return copy;
}

}  // namespace adapex
