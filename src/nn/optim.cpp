#include "nn/optim.hpp"

namespace adapex {

Sgd::Sgd(std::vector<Param*> params, Options options)
    : params_(std::move(params)), options_(options) {
  velocity_.reserve(params_.size());
  for (Param* p : params_) {
    p->ensure_grad();
    velocity_.emplace_back(p->value.shape());
  }
}

void Sgd::step() {
  const float lr = static_cast<float>(options_.lr);
  const float mu = static_cast<float>(options_.momentum);
  const float wd = static_cast<float>(options_.weight_decay);
  for (std::size_t i = 0; i < params_.size(); ++i) {
    Param& p = *params_[i];
    Tensor& v = velocity_[i];
    for (std::size_t j = 0; j < p.value.numel(); ++j) {
      const float g = p.grad[j] + wd * p.value[j];
      v[j] = mu * v[j] + g;
      p.value[j] -= lr * v[j];
      p.grad[j] = 0.0f;
    }
  }
}

void Sgd::zero_grad() {
  for (Param* p : params_) p->grad.zero();
}

}  // namespace adapex
