// Fake quantization for quantization-aware training (QAT).
//
// Reproduces the Brevitas-style W2A2 scheme the paper trains CNV with:
//  - Weights: per-output-channel symmetric uniform quantization to
//    `bits` bits with a narrow range (for 2 bits: levels {-1, 0, +1} times a
//    per-channel scale equal to the channel's max |w|). The backward pass is
//    the straight-through estimator (STE): gradients flow to the latent
//    float weights unchanged.
//  - Activations: unsigned uniform quantization to `bits` bits after a
//    ReLU-style clamp, with a per-layer scale tracked as an exponential
//    moving average of the batch maximum during training and frozen at
//    evaluation. STE passes gradients inside the clamp range only.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "tensor/packed.hpp"
#include "tensor/tensor.hpp"

namespace adapex {

class BranchyModel;

/// Number of quantization levels on each side for signed narrow-range
/// quantization with `bits` bits (2 bits -> 1, i.e. levels {-1,0,1}).
int signed_qmax(int bits);

/// Quantizes `weight` ([F, ...] with per-row = per-output-channel scaling)
/// in place into `out`. Returns nothing; out is resized to weight's shape.
/// bits <= 0 disables quantization (float passthrough).
void quantize_weight_per_channel(const Tensor& weight, int bits, Tensor& out);

/// Activation quantizer with EMA-tracked scale.
class ActQuantizer {
 public:
  explicit ActQuantizer(int bits) : bits_(bits) {}

  int bits() const { return bits_; }
  float scale() const { return scale_; }
  /// Restores a scale captured from a trained quantizer (marks the EMA as
  /// initialized so evaluation uses it as-is).
  void set_scale(float s) {
    scale_ = s;
    initialized_ = true;
  }

  /// Forward: clamp to [0, scale] and quantize to `bits` unsigned levels.
  /// In training mode the scale EMA is updated from the batch max first.
  /// bits <= 0 disables quantization (plain ReLU behaviour retained by the
  /// caller). Stores the pre-quantization input reference range needed by
  /// backward (the caller keeps the input tensor).
  Tensor forward(const Tensor& input, bool train);

  /// Backward: STE within [0, scale].
  Tensor backward(const Tensor& input, const Tensor& grad_output) const;

 private:
  int bits_;
  float scale_ = 1.0f;
  bool initialized_ = false;
};

// ---------------------------------------------------------------------------
// Post-QAT freeze: exact integer extraction for the packed inference path.
//
// A trained W2A2 model's fake-quant layers only ever produce values of the
// form code * scale (ternary weight codes {-1,0,+1} times a per-channel
// alpha; activation codes {0..3} times scale/levels). freeze_packed walks a
// BranchyModel once, extracts those exact codes into bit-plane-packed
// operands (tensor/packed.hpp), and folds every per-channel float constant
// (alpha, the activation code scale, and the following BatchNorm's eval
// affine) into one per-row (A, B) pair applied in the popcount GEMM's fused
// epilogue: z = A*S + B, with S the exact integer code dot product.
//
// The first conv group is kept in float ("float front"): the network input
// is a float image, so the frozen model replays conv+BN+quantize exactly as
// the float path does and only enters the integer domain at the first
// activation codes — stage-one codes are bitwise identical by construction.
// Everything downstream is integer-exact in S; the only float arithmetic is
// the per-element epilogue, so packed logits track float logits to a tight
// tolerance and argmax/exit decisions agree bitwise in practice (the
// residual seam is a code/threshold landing within float-epsilon of a
// rounding boundary; see DESIGN.md "Packed integer inference").

/// One fused stage of a frozen model segment.
struct PackedStage {
  enum class Kind { kFloatFront, kConv, kLinear, kMaxPool, kFlatten };
  Kind kind = Kind::kFlatten;

  // kFloatFront — the first conv+BN+ActQuant group, replayed in float:
  Tensor qweight;  ///< [F,C,k,k] ternary float weights (as the float path
                   ///< quantizes them at eval).
  Tensor bn_gamma, bn_beta, bn_mean, bn_var;  ///< BatchNorm eval state.

  // kConv / kLinear — popcount GEMM over packed planes:
  packed::PackedWeights weights;
  int in_channels = 0;         ///< kConv: weight C (im2col geometry).
  int kernel = 0;              ///< kConv: weight k.
  std::vector<float> scale_a;  ///< Per-row folded A.
  std::vector<float> bias_b;   ///< Per-row folded B (empty for logits).
  bool logits = false;         ///< Classifier tail: emit float logits.

  // kFloatFront / kConv / kLinear with a consuming ActQuant:
  float act_scale = 1.0f;  ///< The ActQuant scale s.
  int act_levels = 3;      ///< (1 << act bits) - 1.

  // kMaxPool — order-preserving max over activation codes:
  int pool_kernel = 0;
  int pool_stride = 0;
};

/// An ordered run of stages (one backbone block or one exit head).
struct PackedSegment {
  std::vector<PackedStage> stages;
};

/// A frozen BranchyModel: backbone blocks plus exit heads, all reduced to
/// packed integer operands + folded epilogue constants.
struct PackedModel {
  struct Exit {
    int after_block = 0;
    PackedSegment head;
  };
  std::vector<PackedSegment> blocks;
  std::vector<Exit> exits;  ///< Sorted by after_block (BranchyModel order).

  std::size_t num_outputs() const { return exits.size() + 1; }
};

/// Reusable scratch for packed_forward (one per evaluation thread).
struct PackedScratch {
  packed::PackedActivations acts;
  std::vector<float> col;             ///< Float-front im2col scratch.
  std::vector<std::uint8_t> bufs[4];  ///< Backbone + head code ping-pongs.
};

/// Structural eligibility for freeze_packed: every compute layer is a 2-bit
/// Conv/Linear followed by BatchNorm+ActQuant (2-bit), except a bare Linear
/// classifier closing the final block and each exit head; MaxPool/Flatten
/// may appear between groups; the first compute layer overall is a conv
/// (float image input). When `reasons` is non-null every violation is
/// appended to it (the lint rule RQ1 precondition).
bool can_freeze(const BranchyModel& model,
                std::vector<std::string>* reasons = nullptr);

/// Freezes a trained W2A2 model into exact integer form. Throws ConfigError
/// aggregating every violation (rule RQ1: freeze-before-pack precondition)
/// when the model is not freezable.
PackedModel freeze_packed(const BranchyModel& model);

/// Runs the frozen model on a float image batch [N,C,H,W]; returns logits
/// per output, early exits first, final exit last — the same contract as
/// BranchyModel::forward(input, /*train=*/false).
std::vector<Tensor> packed_forward(const PackedModel& model,
                                   const Tensor& input, PackedScratch& scratch);

/// How evaluation picks between the float and packed inference paths.
enum class PackedMode {
  kOff,   ///< Always float.
  kOn,    ///< Always packed; error if the model cannot freeze.
  kAuto,  ///< Packed when the model is freezable, float otherwise.
  kEnv,   ///< Resolve from ADAPEX_PACKED (absent -> kAuto).
};

/// Parses ADAPEX_PACKED: "0" -> kOff, "1" -> kOn, "auto" or unset -> kAuto.
/// Any other value throws ConfigError (lint rule RQ3).
PackedMode packed_mode_from_env();

}  // namespace adapex
