// Fake quantization for quantization-aware training (QAT).
//
// Reproduces the Brevitas-style W2A2 scheme the paper trains CNV with:
//  - Weights: per-output-channel symmetric uniform quantization to
//    `bits` bits with a narrow range (for 2 bits: levels {-1, 0, +1} times a
//    per-channel scale equal to the channel's max |w|). The backward pass is
//    the straight-through estimator (STE): gradients flow to the latent
//    float weights unchanged.
//  - Activations: unsigned uniform quantization to `bits` bits after a
//    ReLU-style clamp, with a per-layer scale tracked as an exponential
//    moving average of the batch maximum during training and frozen at
//    evaluation. STE passes gradients inside the clamp range only.

#pragma once

#include "tensor/tensor.hpp"

namespace adapex {

/// Number of quantization levels on each side for signed narrow-range
/// quantization with `bits` bits (2 bits -> 1, i.e. levels {-1,0,1}).
int signed_qmax(int bits);

/// Quantizes `weight` ([F, ...] with per-row = per-output-channel scaling)
/// in place into `out`. Returns nothing; out is resized to weight's shape.
/// bits <= 0 disables quantization (float passthrough).
void quantize_weight_per_channel(const Tensor& weight, int bits, Tensor& out);

/// Activation quantizer with EMA-tracked scale.
class ActQuantizer {
 public:
  explicit ActQuantizer(int bits) : bits_(bits) {}

  int bits() const { return bits_; }
  float scale() const { return scale_; }
  /// Restores a scale captured from a trained quantizer (marks the EMA as
  /// initialized so evaluation uses it as-is).
  void set_scale(float s) {
    scale_ = s;
    initialized_ = true;
  }

  /// Forward: clamp to [0, scale] and quantize to `bits` unsigned levels.
  /// In training mode the scale EMA is updated from the batch max first.
  /// bits <= 0 disables quantization (plain ReLU behaviour retained by the
  /// caller). Stores the pre-quantization input reference range needed by
  /// backward (the caller keeps the input tensor).
  Tensor forward(const Tensor& input, bool train);

  /// Backward: STE within [0, scale].
  Tensor backward(const Tensor& input, const Tensor& grad_output) const;

 private:
  int bits_;
  float scale_ = 1.0f;
  bool initialized_ = false;
};

}  // namespace adapex
