#include "nn/trainer.hpp"

#include <algorithm>
#include <numeric>

#include "tensor/ops.hpp"

namespace adapex {

std::vector<double> resolve_exit_weights(const TrainConfig& config,
                                         std::size_t num_outputs) {
  if (!config.exit_weights.empty()) {
    ADAPEX_CHECK(config.exit_weights.size() == num_outputs,
                 "exit_weights arity must match model outputs");
    return config.exit_weights;
  }
  std::vector<double> w(num_outputs, 0.3);
  w.front() = 1.0;
  if (num_outputs == 1) w.front() = 1.0;
  return w;
}

std::vector<EpochStats> train_model(BranchyModel& model, const Dataset& train,
                                    bool flip_symmetry,
                                    const TrainConfig& config) {
  ADAPEX_CHECK(train.size() > 0, "empty training set");
  const auto weights = resolve_exit_weights(config, model.num_outputs());

  Sgd optimizer(model.params(),
                {config.lr, config.momentum, config.weight_decay});
  Rng rng(config.seed);
  std::vector<int> order(static_cast<std::size_t>(train.size()));
  std::iota(order.begin(), order.end(), 0);

  std::vector<EpochStats> history;
  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    if (epoch > 0 && config.lr_decay_epochs > 0 &&
        epoch % config.lr_decay_epochs == 0) {
      optimizer.set_lr(optimizer.lr() * config.lr_decay);
    }
    // Fisher–Yates shuffle with the deterministic generator.
    for (std::size_t i = order.size(); i > 1; --i) {
      std::swap(order[i - 1], order[rng.uniform_index(i)]);
    }
    EpochStats stats;
    int seen = 0, correct = 0;
    for (int start = 0; start < train.size(); start += config.batch_size) {
      const int end = std::min(start + config.batch_size, train.size());
      const int* idx = order.data() + start;
      const int count = end - start;
      Tensor batch = train.batch_images(idx, count);
      if (config.augment) {
        const int c = train.channels(), h = train.height(), w = train.width();
        const std::size_t per_img = static_cast<std::size_t>(c) * h * w;
        // Augment straight from the source image into the image's slot in
        // the batch buffer: same rng draws and same values as the old
        // copy-out/augment/copy-back, without two heap tensors per image.
        for (int i = 0; i < count; ++i) {
          augment_image_into(train.image(idx[i]).data(),
                             batch.data() + static_cast<std::size_t>(i) * per_img,
                             c, h, w, flip_symmetry, rng);
        }
      }
      const std::vector<int> labels = train.batch_labels(idx, count);

      auto logits = model.forward(batch, /*train=*/true);
      std::vector<Tensor> grads(logits.size());
      double joint = 0.0;
      for (std::size_t e = 0; e < logits.size(); ++e) {
        Tensor g;
        const double loss = ops::cross_entropy(logits[e], labels, g);
        joint += weights[e] * loss;
        g.scale_(static_cast<float>(weights[e]));
        grads[e] = std::move(g);
      }
      model.backward(grads);
      optimizer.step();

      stats.joint_loss += joint * static_cast<double>(count);
      const Tensor& final_logits = logits.back();
      for (int i = 0; i < count; ++i) {
        int best = 0;
        for (int k = 1; k < final_logits.dim(1); ++k) {
          if (final_logits.at2(i, k) > final_logits.at2(i, best)) {
            best = k;
          }
        }
        if (best == labels[static_cast<std::size_t>(i)]) ++correct;
        ++seen;
      }
    }
    stats.joint_loss /= train.size();
    stats.final_exit_accuracy =
        static_cast<double>(correct) / std::max(seen, 1);
    history.push_back(stats);
  }
  return history;
}

}  // namespace adapex
