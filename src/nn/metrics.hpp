// Classification metrics beyond TOP-1: confusion matrix, per-class
// accuracy, and confidence calibration.
//
// Calibration matters specifically for early exit: the runtime accepts an
// exit when its softmax confidence clears a threshold, which is only a
// sound decision rule if confidence tracks correctness. The expected
// calibration error (ECE) and reliability bins quantify that per exit —
// the analysis behind "using the softmax of the exit output vector is one
// popular way to measure the exit confidence" (paper section II).

#pragma once

#include <vector>

#include "nn/eval.hpp"

namespace adapex {

/// Square confusion matrix: rows = true class, cols = predicted.
struct ConfusionMatrix {
  int num_classes = 0;
  std::vector<long> counts;  ///< [true * num_classes + predicted]

  long at(int truth, int predicted) const {
    return counts[static_cast<std::size_t>(truth) * num_classes + predicted];
  }
  double accuracy() const;
  /// Per-class recall (diagonal / row sum); classes with no samples get 0.
  std::vector<double> per_class_recall() const;
};

/// Computes the confusion matrix of one model output over a test set.
/// `exit_index` selects the output (exits then final).
ConfusionMatrix confusion_matrix(BranchyModel& model, const Dataset& test,
                                 std::size_t exit_index, int batch_size = 32);

/// One reliability bin: samples whose confidence fell in
/// [lo, hi) with their mean confidence and empirical accuracy.
struct ReliabilityBin {
  double lo = 0.0;
  double hi = 0.0;
  long count = 0;
  double mean_confidence = 0.0;
  double accuracy = 0.0;
};

/// Calibration summary of one exit.
struct CalibrationReport {
  std::vector<ReliabilityBin> bins;
  /// Expected calibration error: sum over bins of
  /// (count/total) * |accuracy - mean confidence|.
  double ece = 0.0;
  /// Mean confidence on correct vs incorrect samples — the separation the
  /// threshold rule exploits.
  double mean_confidence_correct = 0.0;
  double mean_confidence_incorrect = 0.0;
};

/// Builds the calibration report for exit `exit_index` from recorded
/// per-sample confidences (see evaluate_exits).
CalibrationReport calibration_report(const ExitEvaluation& eval,
                                     std::size_t exit_index,
                                     int num_bins = 10);

}  // namespace adapex
