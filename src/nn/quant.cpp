#include "nn/quant.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "nn/branchy.hpp"
#include "tensor/ops.hpp"

namespace adapex {

int signed_qmax(int bits) {
  ADAPEX_CHECK(bits >= 2 && bits <= 8, "signed quantization needs 2..8 bits");
  return (1 << (bits - 1)) - 1;
}

namespace {

/// Ternary (TWN-style) quantization of one weight row, shared between the
/// fake-quant forward and freeze_packed so both see the same codes and
/// scale: threshold at 0.7 * mean|w| (the scale is the mean magnitude of
/// the survivors — far better conditioned for training than max-abs
/// scaling, which zeroes ~60% of a Gaussian weight tensor and over-weights
/// outliers). Fills `codes` with {-1, 0, +1} and returns the per-row alpha
/// (0 when the row dies, in which case every code is 0).
float ternary_row(const float* src, std::size_t n, std::int8_t* codes) {
  double mean_abs = 0.0;
  for (std::size_t i = 0; i < n; ++i) mean_abs += std::abs(src[i]);
  mean_abs /= static_cast<double>(n);
  const float delta = static_cast<float>(0.7 * mean_abs);
  if (delta < 1e-12f) {
    std::fill(codes, codes + n, std::int8_t{0});
    return 0.0f;
  }
  double alpha = 0.0;
  std::size_t survivors = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (std::abs(src[i]) > delta) {
      alpha += std::abs(src[i]);
      ++survivors;
      codes[i] = src[i] > 0 ? std::int8_t{1} : std::int8_t{-1};
    } else {
      codes[i] = 0;
    }
  }
  return survivors > 0 ? static_cast<float>(alpha / survivors) : 0.0f;
}

}  // namespace

void quantize_weight_per_channel(const Tensor& weight, int bits, Tensor& out) {
  out = Tensor(weight.shape());
  if (bits <= 0) {
    out = weight;
    return;
  }
  const int qmax = signed_qmax(bits);
  const int rows = weight.dim(0);
  const std::size_t per_row = weight.numel() / static_cast<std::size_t>(rows);
  std::vector<std::int8_t> codes(bits == 2 ? per_row : 0);
  for (int r = 0; r < rows; ++r) {
    const float* src = weight.data() + static_cast<std::size_t>(r) * per_row;
    float* dst = out.data() + static_cast<std::size_t>(r) * per_row;
    if (bits == 2) {
      const float a = ternary_row(src, per_row, codes.data());
      for (std::size_t i = 0; i < per_row; ++i) {
        dst[i] = codes[i] > 0 ? a : (codes[i] < 0 ? -a : 0.0f);
      }
      continue;
    }
    float maxabs = 0.0f;
    for (std::size_t i = 0; i < per_row; ++i) {
      maxabs = std::max(maxabs, std::abs(src[i]));
    }
    if (maxabs < 1e-12f) {
      std::fill(dst, dst + per_row, 0.0f);
      continue;
    }
    const float scale = maxabs / static_cast<float>(qmax);
    for (std::size_t i = 0; i < per_row; ++i) {
      const float q = std::round(src[i] / scale);
      dst[i] = scale * std::clamp(q, -static_cast<float>(qmax),
                                  static_cast<float>(qmax));
    }
  }
}

Tensor ActQuantizer::forward(const Tensor& input, bool train) {
  if (train || !initialized_) {
    float batch_max = 0.0f;
    for (std::size_t i = 0; i < input.numel(); ++i) {
      batch_max = std::max(batch_max, input[i]);
    }
    if (batch_max > 1e-12f) {
      constexpr float kMomentum = 0.1f;
      scale_ = initialized_ ? (1.0f - kMomentum) * scale_ + kMomentum * batch_max
                            : batch_max;
      initialized_ = true;
    }
  }
  Tensor out(input.shape());
  const float s = std::max(scale_, 1e-12f);
  if (bits_ <= 0) {
    // Quantization disabled: plain ReLU.
    for (std::size_t i = 0; i < input.numel(); ++i) {
      out[i] = std::max(input[i], 0.0f);
    }
    return out;
  }
  const float levels = static_cast<float>((1 << bits_) - 1);
  for (std::size_t i = 0; i < input.numel(); ++i) {
    const float clamped = std::clamp(input[i], 0.0f, s);
    out[i] = std::round(clamped / s * levels) / levels * s;
  }
  return out;
}

Tensor ActQuantizer::backward(const Tensor& input,
                              const Tensor& grad_output) const {
  Tensor grad(input.shape());
  const float s = std::max(scale_, 1e-12f);
  for (std::size_t i = 0; i < input.numel(); ++i) {
    const bool inside = input[i] > 0.0f && (bits_ <= 0 || input[i] < s);
    grad[i] = inside ? grad_output[i] : 0.0f;
  }
  return grad;
}

// ------------------------------------------------------------------- freeze

namespace {

// BatchNorm's eval epsilon (layers.cpp), duplicated here because the float
// front and the folded epilogue constants must use the exact same value.
constexpr float kBnEps = 1e-5f;

/// Walk state threaded through the backbone: whether the data has entered
/// the integer code domain yet, and the code scale (act scale / levels) the
/// next packed layer's weights must be folded with.
struct FreezeState {
  bool packed = false;
  float cs_in = 0.0f;
};

/// Extracts one conv/linear + BatchNorm + ActQuant group (or a bare
/// classifier linear) into a packed stage. `weight` is the latent float
/// tensor; rows = out channels, k = per-row reduction length.
void extract_packed_stage(const Tensor& weight, const BatchNorm* bn,
                          const ActQuant* act, const FreezeState& st,
                          PackedStage& stage) {
  const int rows = weight.dim(0);
  const std::size_t k = weight.numel() / static_cast<std::size_t>(rows);
  std::vector<std::int8_t> codes(static_cast<std::size_t>(rows) * k);
  std::vector<float> alpha(static_cast<std::size_t>(rows));
  for (int r = 0; r < rows; ++r) {
    alpha[static_cast<std::size_t>(r)] =
        ternary_row(weight.data() + static_cast<std::size_t>(r) * k, k,
                    codes.data() + static_cast<std::size_t>(r) * k);
  }
  packed::pack_weights(codes.data(), rows, static_cast<int>(k),
                       stage.weights);
  stage.scale_a.resize(static_cast<std::size_t>(rows));
  if (bn != nullptr) {
    // Fold alpha, the incoming code scale, and the BN eval affine into one
    // per-row (A, B): BN(x) = g*x + (beta - g*mean) with g = gamma*inv_std,
    // and x = alpha*cs_in*S, so z = (g*alpha*cs_in)*S + (beta - g*mean).
    stage.bias_b.resize(static_cast<std::size_t>(rows));
    for (int r = 0; r < rows; ++r) {
      const std::size_t i = static_cast<std::size_t>(r);
      const float inv_std = 1.0f / std::sqrt(bn->running_var()[i] + kBnEps);
      const float g = bn->gamma()[i] * inv_std;
      stage.scale_a[i] = g * alpha[i] * st.cs_in;
      stage.bias_b[i] = bn->beta()[i] - g * bn->running_mean()[i];
    }
    stage.act_scale = act->scale();
    stage.act_levels = (1 << act->bits()) - 1;
  } else {
    // Bare classifier: logits = alpha*cs_in*S per row, no shift.
    stage.logits = true;
    for (int r = 0; r < rows; ++r) {
      stage.scale_a[static_cast<std::size_t>(r)] =
          alpha[static_cast<std::size_t>(r)] * st.cs_in;
    }
  }
}

/// Freezes one Sequential (backbone block or exit head). `is_tail` marks a
/// segment that must end in a bare classifier Linear. Appends every
/// violation to `errors`; builds stages into `out` when non-null (errors
/// leave `out` partially built — callers discard it on failure).
void freeze_sequential(const Sequential& seq, const std::string& where,
                       bool is_tail, FreezeState& st,
                       std::vector<std::string>& errors, PackedSegment* out) {
  const auto fail = [&](std::size_t i, const std::string& msg) {
    errors.push_back(where + ", layer " + std::to_string(i) + " (" +
                     seq.layer(i).name() + "): " + msg);
  };
  bool produced_logits = false;
  std::size_t i = 0;
  while (i < seq.size()) {
    const Layer& layer = seq.layer(i);
    const auto* conv = dynamic_cast<const QuantConv2d*>(&layer);
    const auto* lin = dynamic_cast<const QuantLinear*>(&layer);
    if (conv != nullptr || lin != nullptr) {
      const int weight_bits = conv ? conv->weight_bits() : lin->weight_bits();
      const Tensor& weight =
          conv ? conv->weight().value : lin->weight().value;
      if (weight_bits != 2) {
        fail(i, "weight_bits=" + std::to_string(weight_bits) +
                    " (packed path needs W2)");
        return;
      }
      const auto* bn = i + 1 < seq.size()
                           ? dynamic_cast<const BatchNorm*>(&seq.layer(i + 1))
                           : nullptr;
      const auto* act = i + 2 < seq.size()
                            ? dynamic_cast<const ActQuant*>(&seq.layer(i + 2))
                            : nullptr;
      if (bn != nullptr && act != nullptr) {
        if (act->bits() != 2) {
          fail(i + 2, "activation bits=" + std::to_string(act->bits()) +
                          " (packed path needs A2)");
          return;
        }
        if (bn->channels() != weight.dim(0)) {
          fail(i + 1, "BatchNorm channels do not match the producer");
          return;
        }
        if (conv != nullptr && !st.packed) {
          // First compute group overall: the input is a float image, so
          // this group replays in float and emits the first codes.
          if (out != nullptr) {
            PackedStage stage;
            stage.kind = PackedStage::Kind::kFloatFront;
            quantize_weight_per_channel(weight, 2, stage.qweight);
            stage.bn_gamma = bn->gamma();
            stage.bn_beta = bn->beta();
            stage.bn_mean = bn->running_mean();
            stage.bn_var = bn->running_var();
            stage.act_scale = act->scale();
            stage.act_levels = (1 << act->bits()) - 1;
            out->stages.push_back(std::move(stage));
          }
        } else if (!st.packed) {
          fail(i, "the first compute layer must be a convolution on the "
                  "float input");
          return;
        } else if (out != nullptr) {
          PackedStage stage;
          stage.kind = conv != nullptr ? PackedStage::Kind::kConv
                                       : PackedStage::Kind::kLinear;
          if (conv != nullptr) {
            stage.in_channels = conv->in_channels();
            stage.kernel = conv->kernel();
          }
          extract_packed_stage(weight, bn, act, st, stage);
          out->stages.push_back(std::move(stage));
        }
        st.packed = true;
        st.cs_in = std::max(act->scale(), 1e-12f) /
                   static_cast<float>((1 << act->bits()) - 1);
        i += 3;
        continue;
      }
      if (lin != nullptr && is_tail && i + 1 == seq.size()) {
        if (!st.packed) {
          fail(i, "classifier before any quantized activation");
          return;
        }
        if (out != nullptr) {
          PackedStage stage;
          stage.kind = PackedStage::Kind::kLinear;
          extract_packed_stage(weight, nullptr, nullptr, st, stage);
          out->stages.push_back(std::move(stage));
        }
        produced_logits = true;
        i += 1;
        continue;
      }
      fail(i, is_tail ? "not followed by BatchNorm+ActQuant and not the "
                        "closing classifier"
                      : "not followed by BatchNorm+ActQuant");
      return;
    }
    if (const auto* pool = dynamic_cast<const MaxPool2d*>(&layer)) {
      if (!st.packed) {
        fail(i, "MaxPool before the first quantized activation");
        return;
      }
      if (out != nullptr) {
        PackedStage stage;
        stage.kind = PackedStage::Kind::kMaxPool;
        stage.pool_kernel = pool->kernel();
        stage.pool_stride = pool->stride();
        out->stages.push_back(std::move(stage));
      }
      i += 1;
      continue;
    }
    if (dynamic_cast<const Flatten*>(&layer) != nullptr) {
      if (out != nullptr) {
        PackedStage stage;
        stage.kind = PackedStage::Kind::kFlatten;
        out->stages.push_back(std::move(stage));
      }
      i += 1;
      continue;
    }
    fail(i, "unsupported layer for the packed path");
    return;
  }
  if (is_tail && !produced_logits) {
    errors.push_back(where + ": does not end in a classifier Linear");
  }
}

/// Shared walk behind can_freeze / freeze_packed.
void freeze_walk(const BranchyModel& model, std::vector<std::string>& errors,
                 PackedModel* out) {
  if (model.num_blocks() == 0) {
    errors.push_back("model has no blocks");
    return;
  }
  FreezeState st;
  std::size_t e = 0;
  for (std::size_t b = 0; b < model.num_blocks(); ++b) {
    const bool tail = b + 1 == model.num_blocks();
    PackedSegment seg;
    freeze_sequential(model.block(b), "block " + std::to_string(b), tail, st,
                      errors, out != nullptr ? &seg : nullptr);
    if (out != nullptr) out->blocks.push_back(std::move(seg));
    while (e < model.num_exits() &&
           model.exit(e).after_block == static_cast<int>(b)) {
      // Heads tap the block output codes: freeze them from a snapshot of
      // the walk state so the backbone's cs_in keeps flowing untouched.
      FreezeState hs = st;
      PackedModel::Exit frozen;
      frozen.after_block = model.exit(e).after_block;
      freeze_sequential(*model.exit(e).head, "exit " + std::to_string(e),
                        /*is_tail=*/true, hs, errors,
                        out != nullptr ? &frozen.head : nullptr);
      if (out != nullptr) out->exits.push_back(std::move(frozen));
      ++e;
    }
  }
}

}  // namespace

bool can_freeze(const BranchyModel& model, std::vector<std::string>* reasons) {
  std::vector<std::string> errors;
  freeze_walk(model, errors, nullptr);
  if (reasons != nullptr) {
    reasons->insert(reasons->end(), errors.begin(), errors.end());
  }
  return errors.empty();
}

PackedModel freeze_packed(const BranchyModel& model) {
  std::vector<std::string> errors;
  PackedModel out;
  freeze_walk(model, errors, &out);
  if (!errors.empty()) {
    std::string msg =
        "cannot freeze model for packed inference (rule RQ1): ";
    for (std::size_t i = 0; i < errors.size(); ++i) {
      if (i > 0) msg += "; ";
      msg += errors[i];
    }
    throw ConfigError(msg);
  }
  return out;
}

PackedMode packed_mode_from_env() {
  const char* env = std::getenv("ADAPEX_PACKED");
  if (env == nullptr || *env == '\0') return PackedMode::kAuto;
  const std::string v(env);
  if (v == "0") return PackedMode::kOff;
  if (v == "1") return PackedMode::kOn;
  if (v == "auto") return PackedMode::kAuto;
  throw ConfigError("ADAPEX_PACKED='" + v +
                    "' is not a valid packed-path mode (expected 0, 1, or "
                    "auto; rule RQ3)");
}

// ----------------------------------------------------------- packed forward

namespace {

/// Shape-tracking view over a code buffer (the buffers themselves are raw
/// byte pools; Flatten only rewrites the view).
struct CodeView {
  const std::uint8_t* data = nullptr;
  int n = 0, c = 0, h = 0, w = 0;
  std::size_t numel() const {
    return static_cast<std::size_t>(n) * c * h * w;
  }
};

/// Float front: conv + BN + ActQuant replayed exactly as the float path
/// runs them at eval, emitting the activation codes instead of the
/// dequantized values (same round, so the codes are bitwise identical to
/// what the float path's next layer would consume).
void run_float_front(const PackedStage& st, const Tensor& input,
                     std::vector<float>& col, std::vector<std::uint8_t>& buf,
                     CodeView& view) {
  static const Tensor kNoBias;
  const Tensor x = ops::conv2d_forward(input, st.qweight, kNoBias, col);
  const int n = x.dim(0);
  const int f = x.dim(1);
  const std::size_t plane =
      static_cast<std::size_t>(x.dim(2)) * static_cast<std::size_t>(x.dim(3));
  buf.resize(x.numel());
  const float s = std::max(st.act_scale, 1e-12f);
  const float levels = static_cast<float>(st.act_levels);
  for (int c = 0; c < f; ++c) {
    const std::size_t i = static_cast<std::size_t>(c);
    const float mean = st.bn_mean[i];
    const float inv_std = 1.0f / std::sqrt(st.bn_var[i] + kBnEps);
    const float gm = st.bn_gamma[i];
    const float bt = st.bn_beta[i];
    for (int b = 0; b < n; ++b) {
      const std::size_t base =
          (static_cast<std::size_t>(b) * f + static_cast<std::size_t>(c)) *
          plane;
      for (std::size_t p = 0; p < plane; ++p) {
        const float xhat = (x[base + p] - mean) * inv_std;
        const float v = gm * xhat + bt;
        const float clamped = std::clamp(v, 0.0f, s);
        const float q = clamped / s * levels;
        // Threshold counting IS lround(q) for q in [0, levels] (each j+0.5
        // is exactly representable) — same codes as ActQuantizer's round,
        // without a libm call per pixel, and the loop vectorizes.
        std::uint8_t code = 0;
        for (int l = 0; l < st.act_levels; ++l) {
          code = static_cast<std::uint8_t>(
              code + (q >= static_cast<float>(l) + 0.5f ? 1 : 0));
        }
        buf[base + p] = code;
      }
    }
  }
  view = {buf.data(), n, f, x.dim(2), x.dim(3)};
}

/// Order-preserving max pool over codes: the code -> value map is strictly
/// increasing, so the per-window max code selects exactly the element the
/// float path's maxpool_forward picks.
void run_code_maxpool(const PackedStage& st, const CodeView& in,
                      std::vector<std::uint8_t>& buf, CodeView& view) {
  const int oh = ops::out_dim(in.h, st.pool_kernel, st.pool_stride);
  const int ow = ops::out_dim(in.w, st.pool_kernel, st.pool_stride);
  buf.resize(static_cast<std::size_t>(in.n) * in.c * oh * ow);
  std::uint8_t* dst = buf.data();
  for (int b = 0; b < in.n; ++b) {
    for (int c = 0; c < in.c; ++c) {
      const std::uint8_t* plane =
          in.data +
          (static_cast<std::size_t>(b) * in.c + static_cast<std::size_t>(c)) *
              in.h * in.w;
      for (int y = 0; y < oh; ++y) {
        for (int x = 0; x < ow; ++x) {
          std::uint8_t best = 0;
          for (int ky = 0; ky < st.pool_kernel; ++ky) {
            const std::uint8_t* row =
                plane +
                static_cast<std::size_t>(y * st.pool_stride + ky) * in.w +
                x * st.pool_stride;
            for (int kx = 0; kx < st.pool_kernel; ++kx) {
              best = std::max(best, row[kx]);
            }
          }
          *dst++ = best;
        }
      }
    }
  }
  view = {buf.data(), in.n, in.c, oh, ow};
}

/// Runs one frozen segment. `float_in` feeds a leading float-front stage
/// (backbone block 0); otherwise `view` holds the input codes. Returns the
/// logits tensor when the segment ends in a classifier stage (empty
/// otherwise); `view` tracks the segment's code output.
Tensor run_segment(const PackedSegment& seg, const Tensor* float_in,
                   CodeView& view, std::vector<std::uint8_t>& alt0,
                   std::vector<std::uint8_t>& alt1, PackedScratch& sc) {
  // Alternate output buffers; never write the buffer `view` points into
  // (the backbone reuses the same pair across blocks).
  int flip = (view.data != nullptr && !alt0.empty() &&
              view.data >= alt0.data() && view.data < alt0.data() + alt0.size())
                 ? 1
                 : 0;
  const auto out_buf = [&]() -> std::vector<std::uint8_t>& {
    std::vector<std::uint8_t>& b = flip != 0 ? alt1 : alt0;
    flip ^= 1;
    return b;
  };
  Tensor logits;
  for (const PackedStage& st : seg.stages) {
    switch (st.kind) {
      case PackedStage::Kind::kFloatFront: {
        ADAPEX_CHECK(float_in != nullptr,
                     "packed_forward: float front without a float input");
        run_float_front(st, *float_in, sc.col, out_buf(), view);
        break;
      }
      case PackedStage::Kind::kConv: {
        const int oh = view.h - st.kernel + 1;
        const int ow = view.w - st.kernel + 1;
        const int pixels = oh * ow;
        const int rows = st.weights.rows;
        std::vector<std::uint8_t>& buf = out_buf();
        buf.resize(static_cast<std::size_t>(view.n) * rows * pixels);
        packed::Epilogue e;
        e.mode = packed::Epilogue::Mode::kQuantize;
        e.scale = st.scale_a.data();
        e.bias = st.bias_b.data();
        e.act_scale = std::max(st.act_scale, 1e-12f);
        e.act_levels = st.act_levels;
        e.row_stride = static_cast<std::size_t>(pixels);
        e.col_stride = 1;
        for (int b = 0; b < view.n; ++b) {
          packed::pack_activations_im2col(
              view.data + static_cast<std::size_t>(b) * view.c * view.h *
                              view.w,
              view.c, view.h, view.w, st.kernel, sc.acts);
          e.codes = buf.data() + static_cast<std::size_t>(b) * rows * pixels;
          packed::popcount_gemm(st.weights, sc.acts, e);
        }
        view = {buf.data(), view.n, rows, oh, ow};
        break;
      }
      case PackedStage::Kind::kLinear: {
        const int in_features = view.c * view.h * view.w;
        const int rows = st.weights.rows;
        packed::pack_activations(view.data, view.n, in_features, sc.acts);
        packed::Epilogue e;
        e.scale = st.scale_a.data();
        e.row_stride = 1;
        e.col_stride = static_cast<std::size_t>(rows);
        if (st.logits) {
          logits = Tensor({view.n, rows});
          e.mode = packed::Epilogue::Mode::kLogits;
          e.logits = logits.data();
          // The classifier is the last stage; `view` goes stale, which is
          // fine — the caller consumes the returned logits.
        } else {
          std::vector<std::uint8_t>& buf = out_buf();
          buf.resize(static_cast<std::size_t>(view.n) * rows);
          e.mode = packed::Epilogue::Mode::kQuantize;
          e.bias = st.bias_b.data();
          e.act_scale = std::max(st.act_scale, 1e-12f);
          e.act_levels = st.act_levels;
          e.codes = buf.data();
          view = {buf.data(), view.n, rows, 1, 1};
        }
        packed::popcount_gemm(st.weights, sc.acts, e);
        break;
      }
      case PackedStage::Kind::kMaxPool:
        run_code_maxpool(st, view, out_buf(), view);
        break;
      case PackedStage::Kind::kFlatten:
        view.c = view.c * view.h * view.w;
        view.h = 1;
        view.w = 1;
        break;
    }
  }
  return logits;
}

}  // namespace

std::vector<Tensor> packed_forward(const PackedModel& model,
                                   const Tensor& input,
                                   PackedScratch& scratch) {
  ADAPEX_CHECK(input.ndim() == 4, "packed_forward expects [N,C,H,W] input");
  ADAPEX_CHECK(!model.blocks.empty(), "packed_forward: empty model");
  std::vector<Tensor> outputs(model.num_outputs());
  CodeView view;
  std::size_t e = 0;
  Tensor final_logits;
  for (std::size_t b = 0; b < model.blocks.size(); ++b) {
    Tensor t = run_segment(model.blocks[b], b == 0 ? &input : nullptr, view,
                           scratch.bufs[0], scratch.bufs[1], scratch);
    if (b + 1 == model.blocks.size()) final_logits = std::move(t);
    while (e < model.exits.size() &&
           model.exits[e].after_block == static_cast<int>(b)) {
      CodeView head_view = view;
      outputs[e] = run_segment(model.exits[e].head, nullptr, head_view,
                               scratch.bufs[2], scratch.bufs[3], scratch);
      ADAPEX_CHECK(!outputs[e].empty(),
                   "packed_forward: exit head produced no logits");
      ++e;
    }
  }
  ADAPEX_CHECK(!final_logits.empty(),
               "packed_forward: final block produced no logits");
  outputs.back() = std::move(final_logits);
  return outputs;
}

}  // namespace adapex
