#include "nn/quant.hpp"

#include <algorithm>
#include <cmath>

namespace adapex {

int signed_qmax(int bits) {
  ADAPEX_CHECK(bits >= 2 && bits <= 8, "signed quantization needs 2..8 bits");
  return (1 << (bits - 1)) - 1;
}

void quantize_weight_per_channel(const Tensor& weight, int bits, Tensor& out) {
  out = Tensor(weight.shape());
  if (bits <= 0) {
    out = weight;
    return;
  }
  const int qmax = signed_qmax(bits);
  const int rows = weight.dim(0);
  const std::size_t per_row = weight.numel() / static_cast<std::size_t>(rows);
  for (int r = 0; r < rows; ++r) {
    const float* src = weight.data() + static_cast<std::size_t>(r) * per_row;
    float* dst = out.data() + static_cast<std::size_t>(r) * per_row;
    if (bits == 2) {
      // Ternary (TWN-style): threshold at 0.7 * mean|w|; the scale is the
      // mean magnitude of the surviving weights. Far better conditioned for
      // training than max-abs scaling, which zeroes ~60% of a Gaussian
      // weight tensor and over-weights outliers.
      double mean_abs = 0.0;
      for (std::size_t i = 0; i < per_row; ++i) mean_abs += std::abs(src[i]);
      mean_abs /= static_cast<double>(per_row);
      const float delta = static_cast<float>(0.7 * mean_abs);
      if (delta < 1e-12f) {
        std::fill(dst, dst + per_row, 0.0f);
        continue;
      }
      double alpha = 0.0;
      std::size_t survivors = 0;
      for (std::size_t i = 0; i < per_row; ++i) {
        if (std::abs(src[i]) > delta) {
          alpha += std::abs(src[i]);
          ++survivors;
        }
      }
      const float a = survivors > 0
                          ? static_cast<float>(alpha / survivors)
                          : 0.0f;
      for (std::size_t i = 0; i < per_row; ++i) {
        dst[i] = std::abs(src[i]) > delta ? (src[i] > 0 ? a : -a) : 0.0f;
      }
      continue;
    }
    float maxabs = 0.0f;
    for (std::size_t i = 0; i < per_row; ++i) {
      maxabs = std::max(maxabs, std::abs(src[i]));
    }
    if (maxabs < 1e-12f) {
      std::fill(dst, dst + per_row, 0.0f);
      continue;
    }
    const float scale = maxabs / static_cast<float>(qmax);
    for (std::size_t i = 0; i < per_row; ++i) {
      const float q = std::round(src[i] / scale);
      dst[i] = scale * std::clamp(q, -static_cast<float>(qmax),
                                  static_cast<float>(qmax));
    }
  }
}

Tensor ActQuantizer::forward(const Tensor& input, bool train) {
  if (train || !initialized_) {
    float batch_max = 0.0f;
    for (std::size_t i = 0; i < input.numel(); ++i) {
      batch_max = std::max(batch_max, input[i]);
    }
    if (batch_max > 1e-12f) {
      constexpr float kMomentum = 0.1f;
      scale_ = initialized_ ? (1.0f - kMomentum) * scale_ + kMomentum * batch_max
                            : batch_max;
      initialized_ = true;
    }
  }
  Tensor out(input.shape());
  const float s = std::max(scale_, 1e-12f);
  if (bits_ <= 0) {
    // Quantization disabled: plain ReLU.
    for (std::size_t i = 0; i < input.numel(); ++i) {
      out[i] = std::max(input[i], 0.0f);
    }
    return out;
  }
  const float levels = static_cast<float>((1 << bits_) - 1);
  for (std::size_t i = 0; i < input.numel(); ++i) {
    const float clamped = std::clamp(input[i], 0.0f, s);
    out[i] = std::round(clamped / s * levels) / levels * s;
  }
  return out;
}

Tensor ActQuantizer::backward(const Tensor& input,
                              const Tensor& grad_output) const {
  Tensor grad(input.shape());
  const float s = std::max(scale_, 1e-12f);
  for (std::size_t i = 0; i < input.numel(); ++i) {
    const bool inside = input[i] > 0.0f && (bits_ <= 0 || input[i] < s);
    grad[i] = inside ? grad_output[i] : 0.0f;
  }
  return grad;
}

}  // namespace adapex
