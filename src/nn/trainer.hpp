// Training loop for early-exit CNNs with the BranchyNet joint loss.
//
// J_loss = sum_n w_n * CE(logits_exit_n, y)  — all exits trained together
// (paper section IV-A1: first exit weighted 1.0, remaining 0.3; the "first"
// weight in the paper's convention applies to the earliest exit).

#pragma once

#include <vector>

#include "data/dataset.hpp"
#include "nn/branchy.hpp"
#include "nn/optim.hpp"

namespace adapex {

/// Training hyperparameters.
struct TrainConfig {
  int epochs = 10;
  int batch_size = 32;
  double lr = 1e-3;
  double momentum = 0.9;
  double weight_decay = 1e-4;
  /// Multiplies lr by `lr_decay` every `lr_decay_epochs` epochs.
  double lr_decay = 0.1;
  int lr_decay_epochs = 20;
  /// Loss weight per output. Must have one entry per model output (exits
  /// then final); empty means "1.0 for the earliest exit, 0.3 for the rest"
  /// per the paper, or just {1.0} for exit-less models.
  std::vector<double> exit_weights;
  bool augment = true;
  std::uint64_t seed = 99;
};

/// Per-epoch training record.
struct EpochStats {
  double joint_loss = 0.0;
  /// TOP-1 training accuracy of the final exit.
  double final_exit_accuracy = 0.0;
};

/// Resolves the effective per-output weights for a model.
std::vector<double> resolve_exit_weights(const TrainConfig& config,
                                         std::size_t num_outputs);

/// Trains `model` in place; returns one EpochStats per epoch.
///
/// Thread-safety contract (relied on by the parallel library generator):
/// the only state mutated is `model` and locals — `train` and `config` are
/// accessed read-only and all randomness comes from a private Rng seeded
/// with `config.seed`. Concurrent calls on *distinct* models sharing one
/// const Dataset are safe and bit-reproducible.
std::vector<EpochStats> train_model(BranchyModel& model, const Dataset& train,
                                    bool flip_symmetry,
                                    const TrainConfig& config);

}  // namespace adapex
