#include "nn/eval.hpp"

#include <algorithm>
#include <exception>
#include <mutex>
#include <numeric>

#include "common/thread_pool.hpp"
#include "tensor/ops.hpp"

namespace adapex {

namespace {

/// Runs batches [batch_begin, batch_end) of the fixed batch grid through
/// `forward` (a callable Tensor -> std::vector<Tensor> of per-exit logits)
/// and writes each sample's pre-sized result row in place. Batch boundaries
/// depend only on (test.size(), batch_size), so every sample is evaluated
/// inside the same batch — hence with bit-identical forward math — no
/// matter how batches are distributed over workers.
template <typename ForwardFn>
void evaluate_batches(ForwardFn&& forward, const Dataset& test, int batch_size,
                      int batch_begin, int batch_end, const int* order,
                      ExitEvaluation& eval) {
  for (int b = batch_begin; b < batch_end; ++b) {
    const int start = b * batch_size;
    const int end = std::min(start + batch_size, test.size());
    Tensor batch = test.batch_images(order + start, end - start);
    const std::vector<int> labels = test.batch_labels(order + start,
                                                      end - start);

    auto logits = forward(batch);
    for (std::size_t e = 0; e < logits.size(); ++e) {
      const Tensor probs = ops::softmax(logits[e]);
      for (int i = 0; i < end - start; ++i) {
        int best = 0;
        for (int k = 1; k < probs.dim(1); ++k) {
          if (probs.at2(i, k) > probs.at2(i, best)) best = k;
        }
        const auto s = static_cast<std::size_t>(start + i);
        eval.confidence[s][e] = probs.at2(i, best);
        eval.correct[s][e] =
            best == labels[static_cast<std::size_t>(i)] ? 1 : 0;
      }
    }
  }
}

/// Fans worker(begin_batch, end_batch) out over a thread pool in contiguous
/// chunks, rethrowing the first worker exception.
template <typename WorkerFn>
void parallel_batches(std::size_t threads, int num_batches,
                      WorkerFn&& worker) {
  ThreadPool pool(threads);
  std::mutex error_mutex;
  std::exception_ptr first_error;
  const int chunk = (num_batches + static_cast<int>(threads) - 1) /
                    static_cast<int>(threads);
  for (std::size_t t = 0; t < threads; ++t) {
    const int begin = static_cast<int>(t) * chunk;
    const int end = std::min(begin + chunk, num_batches);
    if (begin >= end) break;
    pool.submit([&worker, &error_mutex, &first_error, begin, end] {
      try {
        worker(begin, end);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
    });
  }
  pool.wait();
  if (first_error) std::rethrow_exception(first_error);
}

/// Resolves the effective path: kEnv reads ADAPEX_PACKED, kAuto probes
/// freezability, kOn lets freeze_packed raise the RQ1 error itself.
bool use_packed_path(const BranchyModel& model, PackedMode mode) {
  PackedMode m = mode == PackedMode::kEnv ? packed_mode_from_env() : mode;
  if (m == PackedMode::kOff) return false;
  if (m == PackedMode::kOn) return true;
  return can_freeze(model);
}

}  // namespace

const char* resolved_eval_path(const BranchyModel& model, PackedMode mode) {
  return use_packed_path(model, mode) ? "packed" : "float";
}

ExitEvaluation evaluate_exits(BranchyModel& model, const Dataset& test,
                              int batch_size, int num_threads,
                              PackedMode mode) {
  ADAPEX_CHECK(test.size() > 0, "empty test set");
  ADAPEX_CHECK(batch_size > 0, "batch size must be positive");
  const auto samples = static_cast<std::size_t>(test.size());
  const std::size_t exits = model.num_outputs();

  ExitEvaluation eval;
  // Pre-size every row once; the batch loops then write result slots in
  // place instead of resizing per (exit x sample).
  eval.confidence.assign(samples, std::vector<float>(exits, 0.0f));
  eval.correct.assign(samples, std::vector<std::uint8_t>(exits, 0));

  // One iota'd index buffer shared by every batch (test-set order), instead
  // of rebuilding an index vector element-by-element per batch.
  std::vector<int> order(samples);
  std::iota(order.begin(), order.end(), 0);

  const int num_batches = (test.size() + batch_size - 1) / batch_size;
  std::size_t threads = num_threads > 0
                            ? static_cast<std::size_t>(num_threads)
                            : ThreadPool::env_thread_count();
  threads = std::min(threads, static_cast<std::size_t>(num_batches));

  if (use_packed_path(model, mode)) {
    // Packed path: freeze once, share the frozen model const across
    // workers (packed_forward keeps all mutable state in the per-worker
    // scratch), so no clone is needed. Batch grid and result slots are the
    // same as the float path — byte-identical at any thread count.
    const PackedModel frozen = freeze_packed(model);
    if (threads <= 1) {
      PackedScratch scratch;
      evaluate_batches(
          [&frozen, &scratch](const Tensor& batch) {
            return packed_forward(frozen, batch, scratch);
          },
          test, batch_size, 0, num_batches, order.data(), eval);
      return eval;
    }
    parallel_batches(threads, num_batches, [&](int begin, int end) {
      PackedScratch scratch;
      evaluate_batches(
          [&frozen, &scratch](const Tensor& batch) {
            return packed_forward(frozen, batch, scratch);
          },
          test, batch_size, begin, end, order.data(), eval);
    });
    return eval;
  }

  if (threads <= 1) {
    evaluate_batches(
        [&model](const Tensor& batch) {
          return model.forward(batch, /*train=*/false);
        },
        test, batch_size, 0, num_batches, order.data(), eval);
    return eval;
  }

  // Deterministic parallelism: the batch grid is fixed by batch_size, each
  // worker takes a contiguous chunk of batches and writes disjoint
  // per-sample slots, and each worker clones the model once (forward mutates
  // layer caches even in eval mode). Results are byte-identical to the
  // serial path at any thread count.
  parallel_batches(threads, num_batches, [&](int begin, int end) {
    BranchyModel local = model.clone();
    evaluate_batches(
        [&local](const Tensor& batch) {
          return local.forward(batch, /*train=*/false);
        },
        test, batch_size, begin, end, order.data(), eval);
  });
  return eval;
}

EarlyExitStats apply_threshold(const ExitEvaluation& eval,
                               double confidence_threshold) {
  // Thresholds above 1.0 are allowed: no confidence can clear them, which
  // disables early exits entirely (the no-early-exit operating point).
  ADAPEX_CHECK(confidence_threshold >= 0.0,
               "confidence threshold must be non-negative");
  const std::size_t samples = eval.num_samples();
  const std::size_t exits = eval.num_exits();
  ADAPEX_CHECK(samples > 0 && exits > 0, "empty evaluation");

  EarlyExitStats stats;
  stats.exit_fraction.assign(exits, 0.0);
  stats.per_exit_accuracy.assign(exits, 0.0);
  std::size_t correct = 0;
  for (std::size_t s = 0; s < samples; ++s) {
    // First exit whose confidence clears the threshold; the final exit
    // always accepts.
    std::size_t taken = exits - 1;
    for (std::size_t e = 0; e + 1 < exits; ++e) {
      if (eval.confidence[s][e] >= confidence_threshold) {
        taken = e;
        break;
      }
    }
    stats.exit_fraction[taken] += 1.0;
    if (eval.correct[s][taken]) ++correct;
    for (std::size_t e = 0; e < exits; ++e) {
      stats.per_exit_accuracy[e] += eval.correct[s][e];
    }
  }
  for (double& f : stats.exit_fraction) f /= static_cast<double>(samples);
  for (double& a : stats.per_exit_accuracy) a /= static_cast<double>(samples);
  stats.accuracy = static_cast<double>(correct) / static_cast<double>(samples);
  return stats;
}

}  // namespace adapex
