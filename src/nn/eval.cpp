#include "nn/eval.hpp"

#include <algorithm>
#include <exception>
#include <mutex>
#include <numeric>

#include "common/thread_pool.hpp"
#include "tensor/ops.hpp"

namespace adapex {

namespace {

/// Runs batches [batch_begin, batch_end) of the fixed batch grid through
/// `model` and writes each sample's pre-sized result row in place. Batch
/// boundaries depend only on (test.size(), batch_size), so every sample is
/// evaluated inside the same batch — hence with bit-identical forward math —
/// no matter how batches are distributed over workers.
void evaluate_batches(BranchyModel& model, const Dataset& test, int batch_size,
                      int batch_begin, int batch_end, const int* order,
                      ExitEvaluation& eval) {
  for (int b = batch_begin; b < batch_end; ++b) {
    const int start = b * batch_size;
    const int end = std::min(start + batch_size, test.size());
    Tensor batch = test.batch_images(order + start, end - start);
    const std::vector<int> labels = test.batch_labels(order + start,
                                                      end - start);

    auto logits = model.forward(batch, /*train=*/false);
    for (std::size_t e = 0; e < logits.size(); ++e) {
      const Tensor probs = ops::softmax(logits[e]);
      for (int i = 0; i < end - start; ++i) {
        int best = 0;
        for (int k = 1; k < probs.dim(1); ++k) {
          if (probs.at2(i, k) > probs.at2(i, best)) best = k;
        }
        const auto s = static_cast<std::size_t>(start + i);
        eval.confidence[s][e] = probs.at2(i, best);
        eval.correct[s][e] =
            best == labels[static_cast<std::size_t>(i)] ? 1 : 0;
      }
    }
  }
}

}  // namespace

ExitEvaluation evaluate_exits(BranchyModel& model, const Dataset& test,
                              int batch_size, int num_threads) {
  ADAPEX_CHECK(test.size() > 0, "empty test set");
  ADAPEX_CHECK(batch_size > 0, "batch size must be positive");
  const auto samples = static_cast<std::size_t>(test.size());
  const std::size_t exits = model.num_outputs();

  ExitEvaluation eval;
  // Pre-size every row once; the batch loops then write result slots in
  // place instead of resizing per (exit x sample).
  eval.confidence.assign(samples, std::vector<float>(exits, 0.0f));
  eval.correct.assign(samples, std::vector<std::uint8_t>(exits, 0));

  // One iota'd index buffer shared by every batch (test-set order), instead
  // of rebuilding an index vector element-by-element per batch.
  std::vector<int> order(samples);
  std::iota(order.begin(), order.end(), 0);

  const int num_batches = (test.size() + batch_size - 1) / batch_size;
  std::size_t threads = num_threads > 0
                            ? static_cast<std::size_t>(num_threads)
                            : ThreadPool::env_thread_count();
  threads = std::min(threads, static_cast<std::size_t>(num_batches));

  if (threads <= 1) {
    evaluate_batches(model, test, batch_size, 0, num_batches, order.data(),
                     eval);
    return eval;
  }

  // Deterministic parallelism: the batch grid is fixed by batch_size, each
  // worker takes a contiguous chunk of batches and writes disjoint
  // per-sample slots, and each worker clones the model once (forward mutates
  // layer caches even in eval mode). Results are byte-identical to the
  // serial path at any thread count.
  ThreadPool pool(threads);
  std::mutex error_mutex;
  std::exception_ptr first_error;
  const int chunk = (num_batches + static_cast<int>(threads) - 1) /
                    static_cast<int>(threads);
  for (std::size_t t = 0; t < threads; ++t) {
    const int begin = static_cast<int>(t) * chunk;
    const int end = std::min(begin + chunk, num_batches);
    if (begin >= end) break;
    pool.submit([&, begin, end] {
      try {
        BranchyModel local = model.clone();
        evaluate_batches(local, test, batch_size, begin, end, order.data(),
                         eval);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
    });
  }
  pool.wait();
  if (first_error) std::rethrow_exception(first_error);
  return eval;
}

EarlyExitStats apply_threshold(const ExitEvaluation& eval,
                               double confidence_threshold) {
  // Thresholds above 1.0 are allowed: no confidence can clear them, which
  // disables early exits entirely (the no-early-exit operating point).
  ADAPEX_CHECK(confidence_threshold >= 0.0,
               "confidence threshold must be non-negative");
  const std::size_t samples = eval.num_samples();
  const std::size_t exits = eval.num_exits();
  ADAPEX_CHECK(samples > 0 && exits > 0, "empty evaluation");

  EarlyExitStats stats;
  stats.exit_fraction.assign(exits, 0.0);
  stats.per_exit_accuracy.assign(exits, 0.0);
  std::size_t correct = 0;
  for (std::size_t s = 0; s < samples; ++s) {
    // First exit whose confidence clears the threshold; the final exit
    // always accepts.
    std::size_t taken = exits - 1;
    for (std::size_t e = 0; e + 1 < exits; ++e) {
      if (eval.confidence[s][e] >= confidence_threshold) {
        taken = e;
        break;
      }
    }
    stats.exit_fraction[taken] += 1.0;
    if (eval.correct[s][taken]) ++correct;
    for (std::size_t e = 0; e < exits; ++e) {
      stats.per_exit_accuracy[e] += eval.correct[s][e];
    }
  }
  for (double& f : stats.exit_fraction) f /= static_cast<double>(samples);
  for (double& a : stats.per_exit_accuracy) a /= static_cast<double>(samples);
  stats.accuracy = static_cast<double>(correct) / static_cast<double>(samples);
  return stats;
}

}  // namespace adapex
