#include "nn/eval.hpp"

#include <algorithm>

#include "tensor/ops.hpp"

namespace adapex {

ExitEvaluation evaluate_exits(BranchyModel& model, const Dataset& test,
                              int batch_size) {
  ADAPEX_CHECK(test.size() > 0, "empty test set");
  ExitEvaluation eval;
  eval.confidence.resize(static_cast<std::size_t>(test.size()));
  eval.correct.resize(static_cast<std::size_t>(test.size()));

  for (int start = 0; start < test.size(); start += batch_size) {
    const int end = std::min(start + batch_size, test.size());
    std::vector<int> idx(static_cast<std::size_t>(end - start));
    for (int i = start; i < end; ++i) idx[static_cast<std::size_t>(i - start)] = i;
    Tensor batch = test.batch_images(idx);
    const std::vector<int> labels = test.batch_labels(idx);

    auto logits = model.forward(batch, /*train=*/false);
    for (std::size_t e = 0; e < logits.size(); ++e) {
      const Tensor probs = ops::softmax(logits[e]);
      for (int i = 0; i < end - start; ++i) {
        int best = 0;
        for (int k = 1; k < probs.dim(1); ++k) {
          if (probs.at2(i, k) > probs.at2(i, best)) best = k;
        }
        auto& conf_row = eval.confidence[static_cast<std::size_t>(start + i)];
        auto& corr_row = eval.correct[static_cast<std::size_t>(start + i)];
        conf_row.resize(logits.size());
        corr_row.resize(logits.size());
        conf_row[e] = probs.at2(i, best);
        corr_row[e] =
            best == labels[static_cast<std::size_t>(i)] ? 1 : 0;
      }
    }
  }
  return eval;
}

EarlyExitStats apply_threshold(const ExitEvaluation& eval,
                               double confidence_threshold) {
  // Thresholds above 1.0 are allowed: no confidence can clear them, which
  // disables early exits entirely (the no-early-exit operating point).
  ADAPEX_CHECK(confidence_threshold >= 0.0,
               "confidence threshold must be non-negative");
  const std::size_t samples = eval.num_samples();
  const std::size_t exits = eval.num_exits();
  ADAPEX_CHECK(samples > 0 && exits > 0, "empty evaluation");

  EarlyExitStats stats;
  stats.exit_fraction.assign(exits, 0.0);
  stats.per_exit_accuracy.assign(exits, 0.0);
  std::size_t correct = 0;
  for (std::size_t s = 0; s < samples; ++s) {
    // First exit whose confidence clears the threshold; the final exit
    // always accepts.
    std::size_t taken = exits - 1;
    for (std::size_t e = 0; e + 1 < exits; ++e) {
      if (eval.confidence[s][e] >= confidence_threshold) {
        taken = e;
        break;
      }
    }
    stats.exit_fraction[taken] += 1.0;
    if (eval.correct[s][taken]) ++correct;
    for (std::size_t e = 0; e < exits; ++e) {
      stats.per_exit_accuracy[e] += eval.correct[s][e];
    }
  }
  for (double& f : stats.exit_fraction) f /= static_cast<double>(samples);
  for (double& a : stats.per_exit_accuracy) a /= static_cast<double>(samples);
  stats.accuracy = static_cast<double>(correct) / static_cast<double>(samples);
  return stats;
}

}  // namespace adapex
