// Neural-network layers with explicit forward/backward passes.
//
// A layer caches whatever it needs during forward(train=true) so that a
// subsequent backward(grad) can produce the input gradient and accumulate
// parameter gradients. This layer graph is the training substrate standing
// in for Brevitas/PyTorch (see DESIGN.md, substitution table).
//
// Layers also expose structural metadata (LayerKind + channel/kernel
// geometry) consumed by the pruning pass and the FINN-style dataflow
// compiler, which walk trained models to perform filter surgery and
// hardware mapping.

#pragma once

#include <memory>
#include <string>
#include <vector>

#include "nn/quant.hpp"
#include "tensor/tensor.hpp"

namespace adapex {

/// A trainable parameter: value plus gradient accumulator.
struct Param {
  Tensor value;
  Tensor grad;

  void ensure_grad() {
    if (grad.shape() != value.shape()) grad = Tensor(value.shape());
  }
};

/// Structural classification of layers (used by pruning and hardware
/// mapping; mirrors the ONNX node kinds FINN consumes).
enum class LayerKind {
  kConv,
  kLinear,
  kBatchNorm,
  kActQuant,
  kMaxPool,
  kFlatten,
};

const char* to_string(LayerKind kind);

/// Base layer interface.
class Layer {
 public:
  virtual ~Layer() = default;

  /// Runs the layer. train=true caches activations for backward and updates
  /// any running statistics.
  virtual Tensor forward(const Tensor& input, bool train) = 0;

  /// Propagates gradients; accumulates into parameter .grad fields.
  /// Must be called after a forward(train=true).
  virtual Tensor backward(const Tensor& grad_output) = 0;

  /// Trainable parameters (empty for stateless layers).
  virtual std::vector<Param*> params() { return {}; }
  /// Read-only view of the trainable parameters (for inspection of models
  /// shared const across threads).
  virtual std::vector<const Param*> params() const { return {}; }

  virtual LayerKind kind() const = 0;
  virtual std::string name() const = 0;

  /// Deep copy (weights and running statistics included).
  virtual std::unique_ptr<Layer> clone() const = 0;
};

/// 2-D convolution (3x3 valid, stride 1) with optional weight quantization.
class QuantConv2d : public Layer {
 public:
  /// Creates a conv layer with weights initialized He-style from `rng`.
  /// weight_bits <= 0 disables quantization.
  QuantConv2d(int in_channels, int out_channels, int kernel, int weight_bits,
              Rng& rng);

  Tensor forward(const Tensor& input, bool train) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Param*> params() override { return {&weight_}; }
  std::vector<const Param*> params() const override { return {&weight_}; }
  LayerKind kind() const override { return LayerKind::kConv; }
  std::string name() const override;
  std::unique_ptr<Layer> clone() const override;

  int in_channels() const { return weight_.value.dim(1); }
  int out_channels() const { return weight_.value.dim(0); }
  int kernel() const { return weight_.value.dim(2); }
  int weight_bits() const { return weight_bits_; }

  Param& weight() { return weight_; }
  const Param& weight() const { return weight_; }

  /// Replaces the weight tensor (used by pruning surgery).
  void set_weight(Tensor w);

 private:
  Param weight_;  // [F, C, k, k]
  int weight_bits_;
  Tensor cached_input_;
  Tensor cached_qweight_;
  std::vector<float> col_scratch_;
};

/// Fully-connected layer with optional weight quantization.
class QuantLinear : public Layer {
 public:
  QuantLinear(int in_features, int out_features, int weight_bits, Rng& rng);

  Tensor forward(const Tensor& input, bool train) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Param*> params() override { return {&weight_}; }
  std::vector<const Param*> params() const override { return {&weight_}; }
  LayerKind kind() const override { return LayerKind::kLinear; }
  std::string name() const override;
  std::unique_ptr<Layer> clone() const override;

  int in_features() const { return weight_.value.dim(1); }
  int out_features() const { return weight_.value.dim(0); }
  int weight_bits() const { return weight_bits_; }

  Param& weight() { return weight_; }
  const Param& weight() const { return weight_; }
  void set_weight(Tensor w);

 private:
  Param weight_;  // [Out, In]
  int weight_bits_;
  Tensor cached_input_;
  Tensor cached_qweight_;
};

/// Batch normalization over the channel dimension. Handles both [N,C,H,W]
/// and [N,C] inputs (2-D inputs are treated as H=W=1).
class BatchNorm : public Layer {
 public:
  explicit BatchNorm(int channels);

  Tensor forward(const Tensor& input, bool train) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Param*> params() override { return {&gamma_, &beta_}; }
  std::vector<const Param*> params() const override {
    return {&gamma_, &beta_};
  }
  LayerKind kind() const override { return LayerKind::kBatchNorm; }
  std::string name() const override;
  std::unique_ptr<Layer> clone() const override;

  int channels() const { return gamma_.value.dim(0); }

  /// Pruning surgery: keep only the listed channels (ascending order).
  void slice_channels(const std::vector<int>& keep);

  // State access for serialization and streamlining.
  const Tensor& gamma() const { return gamma_.value; }
  const Tensor& beta() const { return beta_.value; }
  const Tensor& running_mean() const { return running_mean_; }
  const Tensor& running_var() const { return running_var_; }
  void set_state(Tensor gamma, Tensor beta, Tensor mean, Tensor var);

 private:
  Param gamma_;
  Param beta_;
  Tensor running_mean_;
  Tensor running_var_;
  // Cached values from the training forward pass.
  Tensor cached_input_;
  Tensor cached_xhat_;
  std::vector<float> cached_mean_;
  std::vector<float> cached_inv_std_;
};

/// Quantized activation (ReLU clamp + uniform quantization, STE backward).
class ActQuant : public Layer {
 public:
  explicit ActQuant(int bits) : quantizer_(bits) {}

  Tensor forward(const Tensor& input, bool train) override;
  Tensor backward(const Tensor& grad_output) override;
  LayerKind kind() const override { return LayerKind::kActQuant; }
  std::string name() const override;
  std::unique_ptr<Layer> clone() const override;

  int bits() const { return quantizer_.bits(); }
  float scale() const { return quantizer_.scale(); }
  void set_scale(float s) { quantizer_.set_scale(s); }

 private:
  ActQuantizer quantizer_;
  Tensor cached_input_;
};

/// Max pooling with square kernel and stride == kernel by default.
class MaxPool2d : public Layer {
 public:
  explicit MaxPool2d(int kernel, int stride = 0)
      : kernel_(kernel), stride_(stride > 0 ? stride : kernel) {}

  Tensor forward(const Tensor& input, bool train) override;
  Tensor backward(const Tensor& grad_output) override;
  LayerKind kind() const override { return LayerKind::kMaxPool; }
  std::string name() const override;
  std::unique_ptr<Layer> clone() const override;

  int kernel() const { return kernel_; }
  int stride() const { return stride_; }

 private:
  int kernel_;
  int stride_;
  Tensor cached_input_;
  std::vector<int> argmax_;
};

/// Flattens [N,C,H,W] to [N, C*H*W].
class Flatten : public Layer {
 public:
  Tensor forward(const Tensor& input, bool train) override;
  Tensor backward(const Tensor& grad_output) override;
  LayerKind kind() const override { return LayerKind::kFlatten; }
  std::string name() const override { return "Flatten"; }
  std::unique_ptr<Layer> clone() const override {
    return std::make_unique<Flatten>();
  }

 private:
  std::vector<int> cached_shape_;
};

/// An ordered container of layers with pass-through forward/backward.
class Sequential : public Layer {
 public:
  Sequential() = default;

  void append(std::unique_ptr<Layer> layer) {
    layers_.push_back(std::move(layer));
  }

  Tensor forward(const Tensor& input, bool train) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Param*> params() override;
  std::vector<const Param*> params() const override;
  LayerKind kind() const override { return LayerKind::kFlatten; }  // unused
  std::string name() const override { return "Sequential"; }
  std::unique_ptr<Layer> clone() const override;

  std::size_t size() const { return layers_.size(); }
  Layer& layer(std::size_t i) { return *layers_.at(i); }
  const Layer& layer(std::size_t i) const { return *layers_.at(i); }

  /// Replaces layer i (pruning surgery on BatchNorm/ActQuant rebuilds).
  void replace(std::size_t i, std::unique_ptr<Layer> layer) {
    layers_.at(i) = std::move(layer);
  }

 private:
  std::vector<std::unique_ptr<Layer>> layers_;
};

}  // namespace adapex
