#include "nn/metrics.hpp"

#include <algorithm>

#include "tensor/ops.hpp"

namespace adapex {

double ConfusionMatrix::accuracy() const {
  long correct = 0, total = 0;
  for (int t = 0; t < num_classes; ++t) {
    for (int p = 0; p < num_classes; ++p) {
      total += at(t, p);
      if (t == p) correct += at(t, p);
    }
  }
  return total > 0 ? static_cast<double>(correct) / total : 0.0;
}

std::vector<double> ConfusionMatrix::per_class_recall() const {
  std::vector<double> recall(static_cast<std::size_t>(num_classes), 0.0);
  for (int t = 0; t < num_classes; ++t) {
    long row = 0;
    for (int p = 0; p < num_classes; ++p) row += at(t, p);
    if (row > 0) {
      recall[static_cast<std::size_t>(t)] =
          static_cast<double>(at(t, t)) / row;
    }
  }
  return recall;
}

ConfusionMatrix confusion_matrix(BranchyModel& model, const Dataset& test,
                                 std::size_t exit_index, int batch_size) {
  ADAPEX_CHECK(exit_index < model.num_outputs(), "exit index out of range");
  ConfusionMatrix cm;
  cm.num_classes = test.num_classes();
  cm.counts.assign(
      static_cast<std::size_t>(cm.num_classes) * cm.num_classes, 0);
  for (int start = 0; start < test.size(); start += batch_size) {
    const int end = std::min(start + batch_size, test.size());
    std::vector<int> idx;
    for (int i = start; i < end; ++i) idx.push_back(i);
    Tensor batch = test.batch_images(idx);
    const auto labels = test.batch_labels(idx);
    auto logits = model.forward(batch, false);
    const Tensor& out = logits[exit_index];
    for (int i = 0; i < end - start; ++i) {
      int best = 0;
      for (int k = 1; k < out.dim(1); ++k) {
        if (out.at2(i, k) > out.at2(i, best)) best = k;
      }
      cm.counts[static_cast<std::size_t>(labels[static_cast<std::size_t>(i)]) *
                    cm.num_classes +
                best]++;
    }
  }
  return cm;
}

CalibrationReport calibration_report(const ExitEvaluation& eval,
                                     std::size_t exit_index, int num_bins) {
  ADAPEX_CHECK(num_bins >= 2, "need at least two bins");
  ADAPEX_CHECK(exit_index < eval.num_exits(), "exit index out of range");
  CalibrationReport report;
  report.bins.resize(static_cast<std::size_t>(num_bins));
  for (int b = 0; b < num_bins; ++b) {
    report.bins[static_cast<std::size_t>(b)].lo =
        static_cast<double>(b) / num_bins;
    report.bins[static_cast<std::size_t>(b)].hi =
        static_cast<double>(b + 1) / num_bins;
  }
  double conf_correct = 0.0, conf_incorrect = 0.0;
  long n_correct = 0, n_incorrect = 0;
  for (std::size_t s = 0; s < eval.num_samples(); ++s) {
    const double conf = eval.confidence[s][exit_index];
    const bool correct = eval.correct[s][exit_index] != 0;
    int b = std::min(static_cast<int>(conf * num_bins), num_bins - 1);
    auto& bin = report.bins[static_cast<std::size_t>(b)];
    bin.count++;
    bin.mean_confidence += conf;
    bin.accuracy += correct ? 1.0 : 0.0;
    if (correct) {
      conf_correct += conf;
      ++n_correct;
    } else {
      conf_incorrect += conf;
      ++n_incorrect;
    }
  }
  const double total = static_cast<double>(eval.num_samples());
  for (auto& bin : report.bins) {
    if (bin.count > 0) {
      bin.mean_confidence /= bin.count;
      bin.accuracy /= bin.count;
      report.ece +=
          (bin.count / total) * std::abs(bin.accuracy - bin.mean_confidence);
    }
  }
  report.mean_confidence_correct =
      n_correct > 0 ? conf_correct / n_correct : 0.0;
  report.mean_confidence_incorrect =
      n_incorrect > 0 ? conf_incorrect / n_incorrect : 0.0;
  return report;
}

}  // namespace adapex
