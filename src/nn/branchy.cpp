#include "nn/branchy.hpp"

#include <algorithm>
#include <utility>

namespace adapex {

void BranchyModel::add_block(std::unique_ptr<Sequential> block) {
  ADAPEX_CHECK(block != nullptr, "null block");
  blocks_.push_back(std::move(block));
}

void BranchyModel::add_exit(int after_block, std::unique_ptr<Sequential> head) {
  ADAPEX_CHECK(head != nullptr, "null exit head");
  ADAPEX_CHECK(after_block >= 0 &&
                   after_block + 1 < static_cast<int>(blocks_.size()),
               "exit must attach after an intermediate backbone block");
  exits_.push_back(ExitBranch{after_block, std::move(head)});
  std::stable_sort(exits_.begin(), exits_.end(),
                   [](const ExitBranch& a, const ExitBranch& b) {
                     return a.after_block < b.after_block;
                   });
}

std::vector<Tensor> BranchyModel::forward(const Tensor& input, bool train) {
  ADAPEX_CHECK(!blocks_.empty(), "model has no blocks");
  std::vector<Tensor> outputs(num_outputs());
  Tensor x = input;
  for (std::size_t b = 0; b < blocks_.size(); ++b) {
    x = blocks_[b]->forward(x, train);
    for (std::size_t e = 0; e < exits_.size(); ++e) {
      if (exits_[e].after_block == static_cast<int>(b)) {
        outputs[e] = exits_[e].head->forward(x, train);
      }
    }
  }
  outputs.back() = std::move(x);
  return outputs;
}

void BranchyModel::backward(const std::vector<Tensor>& grad_logits) {
  ADAPEX_CHECK(grad_logits.size() == num_outputs(),
               "gradient count must match output count");
  // Backpropagate each exit head first, collecting the gradient it injects
  // at its attachment point.
  std::vector<Tensor> exit_grad(exits_.size());
  for (std::size_t e = 0; e < exits_.size(); ++e) {
    exit_grad[e] = exits_[e].head->backward(grad_logits[e]);
  }
  // Walk the backbone in reverse, merging exit gradients at block outputs.
  Tensor g = grad_logits.back();
  for (int b = static_cast<int>(blocks_.size()) - 1; b >= 0; --b) {
    for (std::size_t e = 0; e < exits_.size(); ++e) {
      if (exits_[e].after_block == b) g.add_(exit_grad[e]);
    }
    g = blocks_[static_cast<std::size_t>(b)]->backward(g);
  }
}

std::vector<Param*> BranchyModel::params() {
  std::vector<Param*> all;
  for (auto& block : blocks_) {
    for (Param* p : block->params()) all.push_back(p);
  }
  for (auto& exit : exits_) {
    for (Param* p : exit.head->params()) all.push_back(p);
  }
  return all;
}

std::vector<const Param*> BranchyModel::params() const {
  std::vector<const Param*> all;
  for (const auto& block : blocks_) {
    for (const Param* p : std::as_const(*block).params()) all.push_back(p);
  }
  for (const auto& exit : exits_) {
    for (const Param* p : std::as_const(*exit.head).params()) all.push_back(p);
  }
  return all;
}

BranchyModel BranchyModel::clone() const {
  BranchyModel copy;
  for (const auto& block : blocks_) {
    auto cloned = block->clone();
    copy.blocks_.push_back(std::unique_ptr<Sequential>(
        static_cast<Sequential*>(cloned.release())));
  }
  for (const auto& exit : exits_) {
    auto cloned = exit.head->clone();
    copy.exits_.push_back(ExitBranch{
        exit.after_block, std::unique_ptr<Sequential>(static_cast<Sequential*>(
                              cloned.release()))});
  }
  return copy;
}

}  // namespace adapex
