// Stochastic gradient descent with momentum, weight decay, and step decay.
//
// Matches the paper's training recipe: learning rate 0.001 with decay 0.1,
// SGD over the BranchyNet joint loss.

#pragma once

#include <vector>

#include "nn/layers.hpp"

namespace adapex {

/// SGD with classical momentum and L2 weight decay.
class Sgd {
 public:
  struct Options {
    double lr = 1e-3;
    double momentum = 0.9;
    double weight_decay = 1e-4;
  };

  Sgd(std::vector<Param*> params, Options options);

  /// Applies one update using the accumulated gradients, then zeroes them.
  void step();

  /// Zeroes all gradients without updating.
  void zero_grad();

  double lr() const { return options_.lr; }
  void set_lr(double lr) { options_.lr = lr; }

 private:
  std::vector<Param*> params_;
  std::vector<Tensor> velocity_;
  Options options_;
};

}  // namespace adapex
