// BranchyModel: a CNN backbone with attached early-exit heads.
//
// Mirrors the BranchyNet-style topology the paper trains: the backbone is a
// sequence of blocks (the last block ends in the final classifier), and each
// early exit is a head (CONV + MaxPool + FC + FC in the paper's
// configuration) attached to the output of some backbone block. forward()
// returns one logit tensor per exit, early exits first, final exit last —
// the same ordering the joint loss and the runtime early-exit decision use.

#pragma once

#include <memory>
#include <vector>

#include "nn/layers.hpp"

namespace adapex {

/// An early-exit head attached after a backbone block.
struct ExitBranch {
  int after_block = 0;              ///< Index of the backbone block it taps.
  std::unique_ptr<Sequential> head; ///< Exit layers ending in class logits.
};

/// Backbone + early exits. Owns all layers.
class BranchyModel {
 public:
  BranchyModel() = default;
  BranchyModel(BranchyModel&&) = default;
  BranchyModel& operator=(BranchyModel&&) = default;

  /// Appends a backbone block.
  void add_block(std::unique_ptr<Sequential> block);

  /// Attaches an exit head after backbone block `after_block`. Exits must
  /// not attach after the final block (that is the final exit itself).
  void add_exit(int after_block, std::unique_ptr<Sequential> head);

  std::size_t num_blocks() const { return blocks_.size(); }
  std::size_t num_exits() const { return exits_.size(); }
  /// Number of forward outputs: early exits + the final exit.
  std::size_t num_outputs() const { return exits_.size() + 1; }

  Sequential& block(std::size_t i) { return *blocks_.at(i); }
  const Sequential& block(std::size_t i) const { return *blocks_.at(i); }
  ExitBranch& exit(std::size_t i) { return exits_.at(i); }
  const ExitBranch& exit(std::size_t i) const { return exits_.at(i); }

  /// Runs the model; returns logits per output (early exits in attachment
  /// order, then the final exit).
  std::vector<Tensor> forward(const Tensor& input, bool train);

  /// Backpropagates per-output logit gradients (same order as forward()).
  /// Parameter gradients accumulate into each layer's Param::grad.
  void backward(const std::vector<Tensor>& grad_logits);

  /// All trainable parameters (backbone + exits).
  std::vector<Param*> params();
  std::vector<const Param*> params() const;

  /// Deep copy.
  BranchyModel clone() const;

 private:
  std::vector<std::unique_ptr<Sequential>> blocks_;
  std::vector<ExitBranch> exits_;  // sorted by after_block ascending
};

}  // namespace adapex
