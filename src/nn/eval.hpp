// Early-exit evaluation.
//
// Evaluating a confidence-threshold sweep is done in two stages so a test
// set is run through the model exactly once per model:
//   1. evaluate_exits() records, for every test sample and every exit, the
//      softmax confidence (max class probability — the paper's confidence
//      measure) and whether that exit's prediction is correct.
//   2. apply_threshold() post-processes those records for any confidence
//      threshold: a sample takes the first exit whose confidence clears the
//      threshold (the final exit always accepts), exactly the runtime rule.

#pragma once

#include <cstdint>
#include <vector>

#include "data/dataset.hpp"
#include "nn/branchy.hpp"

namespace adapex {

/// Per-sample, per-exit evaluation records for one model on one test set.
struct ExitEvaluation {
  /// confidence[sample][exit]: max softmax probability at that exit.
  std::vector<std::vector<float>> confidence;
  /// correct[sample][exit]: 1 if that exit's argmax equals the label.
  std::vector<std::vector<std::uint8_t>> correct;

  std::size_t num_samples() const { return confidence.size(); }
  std::size_t num_exits() const {
    return confidence.empty() ? 0 : confidence.front().size();
  }
};

/// Early-exit statistics for one (model, confidence threshold) pair.
struct EarlyExitStats {
  /// TOP-1 accuracy under the early-exit decision rule.
  double accuracy = 0.0;
  /// Fraction of samples accepted at each exit (sums to 1; final exit last).
  std::vector<double> exit_fraction;
  /// Per-exit TOP-1 accuracy ignoring the decision rule (all samples).
  std::vector<double> per_exit_accuracy;
};

/// Runs the full test set through the model (eval mode) in batches.
///
/// Batches are distributed over `num_threads` workers (0 = ADAPEX_THREADS /
/// hardware concurrency; pass 1 for serial, e.g. from inside another thread
/// pool). The batch grid is fixed by batch_size and each worker clones the
/// model and fills disjoint per-sample slots, so results are byte-identical
/// at any thread count.
///
/// `mode` selects the inference path (nn/quant.hpp): kOff runs the float
/// layer graph; kOn freezes the model and runs the packed popcount path
/// (throws if the model is not freezable, rule RQ1); kAuto goes packed
/// exactly when the model is freezable; kEnv (default) resolves the
/// ADAPEX_PACKED environment override first (absent -> kAuto). The packed
/// path freezes once and shares the frozen model const across workers (its
/// forward is cache-free), so the thread-count byte-identity contract holds
/// on both paths.
ExitEvaluation evaluate_exits(BranchyModel& model, const Dataset& test,
                              int batch_size = 32, int num_threads = 0,
                              PackedMode mode = PackedMode::kEnv);

/// The inference path evaluate_exits would take for `model` under `mode`:
/// "packed" or "float" (recorded per design point in GenerationReport).
const char* resolved_eval_path(const BranchyModel& model,
                               PackedMode mode = PackedMode::kEnv);

/// Applies the early-exit rule for `confidence_threshold` in [0, 1].
EarlyExitStats apply_threshold(const ExitEvaluation& eval,
                               double confidence_threshold);

}  // namespace adapex
