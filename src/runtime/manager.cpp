#include "runtime/manager.hpp"

#include <algorithm>

namespace adapex {

const char* to_string(AdaptPolicy p) {
  switch (p) {
    case AdaptPolicy::kAdaPEx: return "AdaPEx";
    case AdaptPolicy::kPrOnly: return "PR-Only";
    case AdaptPolicy::kCtOnly: return "CT-Only";
    case AdaptPolicy::kStaticFinn: return "FINN";
  }
  return "?";
}

RuntimeManager::RuntimeManager(const Library& library, RuntimePolicy policy)
    : library_(&library), policy_(policy) {
  ADAPEX_CHECK(!library.entries.empty(), "empty library");
  for (std::size_t i = 0; i < library.entries.size(); ++i) {
    const LibraryEntry& e = library.entries[i];
    bool ok = false;
    switch (policy.policy) {
      case AdaptPolicy::kAdaPEx:
        // The full co-optimized space: every early-exit operating point
        // (both exit-pruning variants, all rates, all thresholds).
        ok = e.variant != ModelVariant::kNoExit;
        break;
      case AdaptPolicy::kPrOnly:
        ok = e.variant == ModelVariant::kNoExit;
        break;
      case AdaptPolicy::kCtOnly:
        ok = e.variant == ModelVariant::kNotPrunedExits &&
             e.prune_rate_pct == 0;
        break;
      case AdaptPolicy::kStaticFinn:
        ok = e.variant == ModelVariant::kNoExit && e.prune_rate_pct == 0;
        break;
    }
    if (ok) eligible_.push_back(static_cast<int>(i));
  }
  ADAPEX_CHECK(!eligible_.empty(),
               std::string("library has no entries for policy ") +
                   to_string(policy.policy));
  // Start from the most accurate eligible point (low workload assumption).
  select(0.0);
}

Decision RuntimeManager::select(double workload_ips) {
  const double min_accuracy =
      library_->reference_accuracy * (1.0 - policy_.max_accuracy_loss);

  // Paper rule: among entries above the accuracy threshold with sufficient
  // throughput, pick the most accurate (ties: least energy). If nothing
  // sustains the workload, fall back to the fastest accuracy-OK entry
  // (best effort); if nothing clears the accuracy bar at all, pick the most
  // accurate entry regardless.
  int best = -1;
  bool best_feasible = false;
  auto better = [&](const LibraryEntry& a, const LibraryEntry& b) {
    if (a.accuracy != b.accuracy) return a.accuracy > b.accuracy;
    return a.energy_per_inf_j < b.energy_per_inf_j;
  };
  for (int idx : eligible_) {
    const LibraryEntry& e = library_->entries[static_cast<std::size_t>(idx)];
    if (e.accuracy < min_accuracy) continue;
    const bool feasible = e.ips >= workload_ips * policy_.ips_headroom;
    if (best < 0) {
      best = idx;
      best_feasible = feasible;
      continue;
    }
    const LibraryEntry& b = library_->entries[static_cast<std::size_t>(best)];
    if (feasible && !best_feasible) {
      best = idx;
      best_feasible = true;
    } else if (feasible == best_feasible) {
      const bool prefer =
          feasible ? better(e, b)
                   // Best effort: maximize throughput, then accuracy.
                   : (e.ips != b.ips ? e.ips > b.ips : better(e, b));
      if (prefer) best = idx;
    }
  }
  if (best < 0) {
    // Nothing clears the accuracy bar: degrade gracefully to the most
    // accurate eligible entry.
    for (int idx : eligible_) {
      if (best < 0 ||
          better(library_->entries[static_cast<std::size_t>(idx)],
                 library_->entries[static_cast<std::size_t>(best)])) {
        best = idx;
      }
    }
  }

  Decision decision;
  decision.entry_index = best;
  const bool accel_changed =
      current_index_ < 0 ||
      library_->entries[static_cast<std::size_t>(best)].accel_id !=
          library_->entries[static_cast<std::size_t>(current_index_)].accel_id;
  decision.reconfigure = current_index_ >= 0 && accel_changed;
  if (decision.reconfigure) {
    decision.reconfig_ms =
        library_
            ->accelerator(
                library_->entries[static_cast<std::size_t>(best)].accel_id)
            .reconfig_ms;
  }
  current_index_ = best;
  return decision;
}

const LibraryEntry& RuntimeManager::current() const {
  ADAPEX_CHECK(current_index_ >= 0, "no operating point selected yet");
  return library_->entries[static_cast<std::size_t>(current_index_)];
}

}  // namespace adapex
