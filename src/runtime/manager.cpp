#include "runtime/manager.hpp"

#include <algorithm>
#include <cmath>

#include "common/rng.hpp"

namespace adapex {

namespace {

// Stream identifier for the backoff-jitter splitmix64 stream.
constexpr std::uint64_t kJitterStream = 0xB0FF;

}  // namespace

const char* to_string(AdaptPolicy p) {
  switch (p) {
    case AdaptPolicy::kAdaPEx: return "AdaPEx";
    case AdaptPolicy::kPrOnly: return "PR-Only";
    case AdaptPolicy::kCtOnly: return "CT-Only";
    case AdaptPolicy::kStaticFinn: return "FINN";
  }
  return "?";
}

const char* to_string(HealthState s) {
  switch (s) {
    case HealthState::kHealthy: return "healthy";
    case HealthState::kReconfigPending: return "reconfig-pending";
    case HealthState::kBackoff: return "backoff";
    case HealthState::kDegraded: return "degraded";
    case HealthState::kScrubbing: return "scrubbing";
    case HealthState::kReloadPending: return "reload-pending";
  }
  return "?";
}

const char* to_string(FailurePolicy p) {
  switch (p) {
    case FailurePolicy::kGracefulDegrade: return "graceful-degrade";
    case FailurePolicy::kBlockRetry: return "block-retry";
  }
  return "?";
}

analysis::LintReport lint_runtime_policy(const RuntimePolicy& policy) {
  analysis::LintReport report;
  auto bad = [&](const char* rule, const std::string& message,
                 const std::string& hint) {
    report.add(rule, analysis::Severity::kError, "runtime-policy", message,
               hint);
  };
  if (!(policy.max_accuracy_loss >= 0.0 && policy.max_accuracy_loss <= 1.0)) {
    bad("RP1",
        "max_accuracy_loss = " + std::to_string(policy.max_accuracy_loss) +
            " is outside [0, 1]",
        "express the accuracy budget as a fraction");
  }
  if (!(policy.ips_headroom > 0.0)) {
    bad("RP2",
        "ips_headroom = " + std::to_string(policy.ips_headroom) +
            " is not positive",
        "use a multiplier >= 1 to leave drain margin");
  }
  const BackoffPolicy& b = policy.backoff;
  if (!(b.initial_s > 0.0)) {
    bad("RP3", "backoff.initial_s = " + std::to_string(b.initial_s) +
                   " is not positive",
        "the first retry needs a positive delay");
  }
  if (!(b.multiplier >= 1.0)) {
    bad("RP4", "backoff.multiplier = " + std::to_string(b.multiplier) +
                   " is below 1",
        "exponential backoff must not shrink");
  }
  if (!(b.max_s >= b.initial_s)) {
    bad("RP5", "backoff.max_s = " + std::to_string(b.max_s) +
                   " is below backoff.initial_s",
        "the cap must cover the first delay");
  }
  if (!(b.jitter >= 0.0 && b.jitter < 1.0)) {
    bad("RP6", "backoff.jitter = " + std::to_string(b.jitter) +
                   " is outside [0, 1)",
        "jitter is a +- fraction of the delay");
  }
  if (b.degrade_after < 1) {
    bad("RP7", "backoff.degrade_after = " + std::to_string(b.degrade_after) +
                   " is below 1",
        "at least one failure must precede Degraded");
  }
  if (!(b.probe_cooldown_s >= 0.0)) {
    bad("RP8", "backoff.probe_cooldown_s = " +
                   std::to_string(b.probe_cooldown_s) + " is negative",
        "use a non-negative cooldown");
  }
  const DriftPolicy& dr = policy.drift;
  if (dr.window < 1 || dr.min_samples < 1 || dr.min_samples > dr.window) {
    bad("RP9",
        "drift.window = " + std::to_string(dr.window) +
            " / drift.min_samples = " + std::to_string(dr.min_samples) +
            " is not a valid detection window",
        "need window >= 1 and min_samples in [1, window]");
  }
  if (!(dr.accuracy_tolerance > 0.0 && dr.accuracy_tolerance <= 1.0)) {
    bad("RP10",
        "drift.accuracy_tolerance = " + std::to_string(dr.accuracy_tolerance) +
            " is outside (0, 1]",
        "a zero tolerance would fire on numerical noise");
  }
  if (!(dr.exit_rate_tolerance > 0.0 && dr.exit_rate_tolerance <= 1.0)) {
    bad("RP11",
        "drift.exit_rate_tolerance = " +
            std::to_string(dr.exit_rate_tolerance) + " is outside (0, 1]",
        "a zero tolerance would fire on numerical noise");
  }
  return report;
}

void require_valid_runtime_policy(const RuntimePolicy& policy) {
  const analysis::LintReport report = lint_runtime_policy(policy);
  if (report.has_errors()) throw ConfigError(report.error_message());
}

RuntimeManager::RuntimeManager(const Library& library, RuntimePolicy policy,
                               std::uint64_t seed)
    : library_(&library),
      policy_(policy),
      jitter_state_(derive_seed(seed, kJitterStream)) {
  require_valid_runtime_policy(policy);
  ADAPEX_CHECK(!library.entries.empty(), "empty library");
  for (std::size_t i = 0; i < library.entries.size(); ++i) {
    const LibraryEntry& e = library.entries[i];
    bool ok = false;
    switch (policy.policy) {
      case AdaptPolicy::kAdaPEx:
        // The full co-optimized space: every early-exit operating point
        // (both exit-pruning variants, all rates, all thresholds).
        ok = e.variant != ModelVariant::kNoExit;
        break;
      case AdaptPolicy::kPrOnly:
        ok = e.variant == ModelVariant::kNoExit;
        break;
      case AdaptPolicy::kCtOnly:
        ok = e.variant == ModelVariant::kNotPrunedExits &&
             e.prune_rate_pct == 0;
        break;
      case AdaptPolicy::kStaticFinn:
        ok = e.variant == ModelVariant::kNoExit && e.prune_rate_pct == 0;
        break;
    }
    if (ok) eligible_.push_back(static_cast<int>(i));
  }
  ADAPEX_CHECK(!eligible_.empty(),
               std::string("library has no entries for policy ") +
                   to_string(policy.policy));
}

int RuntimeManager::search(double workload_ips, bool restricted) const {
  const double min_accuracy =
      library_->reference_accuracy * (1.0 - policy_.max_accuracy_loss);
  // Degraded mode: only points on the loaded bitstream (free CT switches).
  const int active_accel =
      restricted
          ? library_->entries[static_cast<std::size_t>(current_index_)].accel_id
          : -1;
  auto allowed = [&](int idx) {
    return !restricted ||
           library_->entries[static_cast<std::size_t>(idx)].accel_id ==
               active_accel;
  };

  // Paper rule: among entries above the accuracy threshold with sufficient
  // throughput, pick the most accurate (ties: least energy). If nothing
  // sustains the workload, fall back to the fastest accuracy-OK entry
  // (best effort); if nothing clears the accuracy bar at all, pick the most
  // accurate entry regardless.
  int best = -1;
  bool best_feasible = false;
  auto better = [&](const LibraryEntry& a, const LibraryEntry& b) {
    if (a.accuracy != b.accuracy) return a.accuracy > b.accuracy;
    return a.energy_per_inf_j < b.energy_per_inf_j;
  };
  for (int idx : eligible_) {
    if (!allowed(idx)) continue;
    const LibraryEntry& e = library_->entries[static_cast<std::size_t>(idx)];
    if (e.accuracy < min_accuracy) continue;
    const bool feasible = e.ips >= workload_ips * policy_.ips_headroom;
    if (best < 0) {
      best = idx;
      best_feasible = feasible;
      continue;
    }
    const LibraryEntry& b = library_->entries[static_cast<std::size_t>(best)];
    if (feasible && !best_feasible) {
      best = idx;
      best_feasible = true;
    } else if (feasible == best_feasible) {
      const bool prefer =
          feasible ? better(e, b)
                   // Best effort: maximize throughput, then accuracy.
                   : (e.ips != b.ips ? e.ips > b.ips : better(e, b));
      if (prefer) best = idx;
    }
  }
  if (best < 0) {
    // Nothing clears the accuracy bar: degrade gracefully to the most
    // accurate allowed entry.
    for (int idx : eligible_) {
      if (!allowed(idx)) continue;
      if (best < 0 ||
          better(library_->entries[static_cast<std::size_t>(idx)],
                 library_->entries[static_cast<std::size_t>(best)])) {
        best = idx;
      }
    }
  }
  ADAPEX_ASSERT(best >= 0);
  return best;
}

Decision RuntimeManager::select(double workload_ips, double now_s) {
  // A caller that never reports outcomes (the pre-fault fire-and-forget
  // protocol) implies the previous switch — or reload — took effect.
  if (state_ == HealthState::kReconfigPending ||
      state_ == HealthState::kReloadPending) {
    state_ = HealthState::kHealthy;
    consecutive_failures_ = 0;
    loaded_index_ = current_index_;
    reload_needed_ = false;
  }

  const bool failing = state_ == HealthState::kBackoff ||
                       state_ == HealthState::kDegraded;
  // kBlockRetry never degrades: every opportunity is a retry window.
  const bool retry_window =
      failing && (policy_.backoff.on_failure == FailurePolicy::kBlockRetry ||
                  now_s + 1e-12 >= next_retry_s_);
  const bool restricted = failing && !retry_window;

  const int best = search(workload_ips, restricted);

  Decision d;
  d.attempted_index = best;
  d.degraded = restricted;

  const bool accel_changed =
      current_index_ < 0 ||
      library_->entries[static_cast<std::size_t>(best)].accel_id !=
          library_->entries[static_cast<std::size_t>(current_index_)].accel_id;
  d.reconfigure = current_index_ >= 0 && accel_changed;
  if (d.reconfigure) {
    d.reconfig_ms =
        library_
            ->accelerator(
                library_->entries[static_cast<std::size_t>(best)].accel_id)
            .reconfig_ms;
    d.retry = consecutive_failures_ > 0;
    loaded_index_ = current_index_;
    // Optimistic commit: complete_reconfig(false) rolls back to the loaded
    // bitstream; success (or silence) confirms it.
    current_index_ = best;
    pre_pending_state_ = state_;
    state_ = HealthState::kReconfigPending;
  } else {
    current_index_ = best;
    if (current_index_ >= 0 && loaded_index_ < 0) loaded_index_ = best;
    if (failing && retry_window) {
      if (reload_needed_) {
        // The search is content with the loaded accelerator, but a
        // drift-triggered reload is still owed: the bitstream must be
        // rewritten before the manager can heal. Retry the reload.
        d.reload = true;
        d.reconfigure = true;
        d.reconfig_ms =
            library_
                ->accelerator(library_
                                  ->entries[static_cast<std::size_t>(
                                      current_index_)]
                                  .accel_id)
                .reconfig_ms;
        d.retry = consecutive_failures_ > 0;
        loaded_index_ = current_index_;
        pre_pending_state_ = state_;
        state_ = HealthState::kReloadPending;
      } else {
        // The full search no longer wants another accelerator: the failed
        // switch became moot, so the manager is healthy again.
        state_ = HealthState::kHealthy;
        consecutive_failures_ = 0;
        next_retry_s_ = 0.0;
      }
    }
  }
  d.entry_index = current_index_;
  d.state = state_;
  return d;
}

void RuntimeManager::complete_reconfig(bool success, double now_s) {
  ADAPEX_CHECK(state_ == HealthState::kReconfigPending ||
                   state_ == HealthState::kReloadPending,
               "complete_reconfig without a pending reconfiguration");
  if (success) {
    state_ = HealthState::kHealthy;
    consecutive_failures_ = 0;
    next_retry_s_ = 0.0;
    loaded_index_ = current_index_;
    // Any bitstream rewrite — switch or reload — settles an owed reload.
    reload_needed_ = false;
    return;
  }
  // The bitstream never changed: roll back to the loaded operating point.
  current_index_ = loaded_index_;
  ++consecutive_failures_;
  const BackoffPolicy& b = policy_.backoff;
  if (b.on_failure == FailurePolicy::kBlockRetry) {
    state_ = HealthState::kBackoff;
    next_retry_s_ = now_s;  // retry at the next opportunity
    return;
  }
  if (consecutive_failures_ >= b.degrade_after) {
    state_ = HealthState::kDegraded;
    next_retry_s_ = now_s + b.probe_cooldown_s;
  } else {
    // Capped exponential delay with deterministic jitter in [1-j, 1+j].
    double delay = b.initial_s;
    for (int i = 1; i < consecutive_failures_; ++i) delay *= b.multiplier;
    delay = std::min(delay, b.max_s);
    const double u =
        static_cast<double>(splitmix64_next(jitter_state_) >> 11) * 0x1.0p-53;
    delay *= 1.0 + b.jitter * (2.0 * u - 1.0);
    state_ = HealthState::kBackoff;
    next_retry_s_ = now_s + delay;
  }
}

void RuntimeManager::force_probe() { next_retry_s_ = 0.0; }

void RuntimeManager::cancel_reconfig() {
  ADAPEX_CHECK(state_ == HealthState::kReconfigPending ||
                   state_ == HealthState::kReloadPending,
               "cancel_reconfig without a pending reconfiguration");
  // The load was never attempted: undo the optimistic commit and return to
  // the pre-proposal state. Failure counters, the retry schedule, and any
  // owed reload are untouched — this is a veto, not an outcome.
  current_index_ = loaded_index_;
  state_ = pre_pending_state_;
}

Decision RuntimeManager::report_drift(double now_s, bool scrub_available) {
  (void)now_s;  // kept for symmetry with select(); retries are time-gated
                // only once a reload attempt has actually failed.
  ADAPEX_CHECK(current_index_ >= 0,
               "report_drift before the first select() chose an operating "
               "point");
  Decision d;
  d.entry_index = current_index_;
  d.attempted_index = current_index_;
  d.state = state_;
  switch (state_) {
    case HealthState::kReconfigPending:
    case HealthState::kReloadPending:
      // An outcome is already owed; its rewrite will repair the drift.
      return d;
    case HealthState::kBackoff:
    case HealthState::kDegraded:
      // A retry is already scheduled. Make sure it rewrites the bitstream
      // even if the workload search heals ("moot") before it fires.
      reload_needed_ = true;
      return d;
    case HealthState::kHealthy:
      if (scrub_available) {
        // Cheapest repair first: an on-demand configuration scrub. If the
        // next observation window still drifts, the caller reports again
        // and kScrubbing escalates to a reload below.
        d.scrub = true;
        state_ = HealthState::kScrubbing;
        d.state = state_;
        return d;
      }
      break;
    case HealthState::kScrubbing:
      break;
  }
  // Scrub already tried (or no scrubber deployed): reload the active
  // accelerator's bitstream through the ordinary reconfiguration protocol.
  d.reload = true;
  d.reconfigure = true;
  d.reconfig_ms =
      library_
          ->accelerator(
              library_->entries[static_cast<std::size_t>(current_index_)]
                  .accel_id)
          .reconfig_ms;
  d.retry = consecutive_failures_ > 0;
  loaded_index_ = current_index_;
  reload_needed_ = true;
  pre_pending_state_ = state_;
  state_ = HealthState::kReloadPending;
  d.state = state_;
  return d;
}

void RuntimeManager::drift_cleared() {
  if (state_ == HealthState::kScrubbing) {
    state_ = HealthState::kHealthy;
    reload_needed_ = false;
  }
}

const LibraryEntry& RuntimeManager::current() const {
  ADAPEX_CHECK(current_index_ >= 0,
               "RuntimeManager::current() called before the first select() "
               "chose an operating point — call select(workload_ips) first");
  return library_->entries[static_cast<std::size_t>(current_index_)];
}

}  // namespace adapex
