// AdaPEx Runtime Manager (paper section IV-B).
//
// Runs alongside the FINN host code: whenever the workload monitor flags a
// change, it searches the Library for the operating point — a (pruning
// rate, confidence threshold) pair — that satisfies the user's accuracy
// threshold with sufficient throughput for the incoming request rate.
// Changing the confidence threshold is free; changing the pruning rate
// switches accelerators and costs an FPGA reconfiguration.
//
// The baselines of section V are expressed as restrictions of the search
// space: PR-Only sees only the no-exit models (adapts pruning only),
// CT-Only sees only the unpruned early-exit model (adapts the threshold
// only), and static FINN is pinned to the unpruned no-exit model.

#pragma once

#include <string>
#include <vector>

#include "library/library.hpp"

namespace adapex {

/// Adaptation policies evaluated in the paper.
enum class AdaptPolicy {
  kAdaPEx,     ///< Full search: pruning rate x confidence threshold.
  kPrOnly,     ///< Pruning rate only (single final exit).
  kCtOnly,     ///< Confidence threshold only (unpruned early-exit model).
  kStaticFinn, ///< No adaptation: original FINN accelerator.
};

const char* to_string(AdaptPolicy p);

/// Runtime configuration.
struct RuntimePolicy {
  AdaptPolicy policy = AdaptPolicy::kAdaPEx;
  /// Maximum tolerated accuracy loss relative to the library's reference
  /// accuracy (paper: 10%).
  double max_accuracy_loss = 0.10;
  /// Throughput safety margin: an entry is feasible when its IPS is at
  /// least `ips_headroom` times the measured workload, so the queue built
  /// up during a reconfiguration can drain afterwards.
  double ips_headroom = 1.10;
};

/// The manager's reaction to a workload sample.
struct Decision {
  int entry_index = -1;      ///< Into Library::entries.
  bool reconfigure = false;  ///< Accelerator (bitstream) changed.
  double reconfig_ms = 0.0;
};

/// Searches the library on workload changes and tracks the active point.
class RuntimeManager {
 public:
  RuntimeManager(const Library& library, RuntimePolicy policy);

  /// Re-evaluates the operating point for the measured workload (IPS).
  Decision select(double workload_ips);

  const LibraryEntry& current() const;
  const Library& library() const { return *library_; }

  /// Entry indices this policy may use (exposed for tests/benches).
  const std::vector<int>& eligible() const { return eligible_; }

 private:
  const Library* library_;
  RuntimePolicy policy_;
  std::vector<int> eligible_;
  int current_index_ = -1;
};

}  // namespace adapex
