// AdaPEx Runtime Manager (paper section IV-B).
//
// Runs alongside the FINN host code: whenever the workload monitor flags a
// change, it searches the Library for the operating point — a (pruning
// rate, confidence threshold) pair — that satisfies the user's accuracy
// threshold with sufficient throughput for the incoming request rate.
// Changing the confidence threshold is free; changing the pruning rate
// switches accelerators and costs an FPGA reconfiguration.
//
// The baselines of section V are expressed as restrictions of the search
// space: PR-Only sees only the no-exit models (adapts pruning only),
// CT-Only sees only the unpruned early-exit model (adapts the threshold
// only), and static FINN is pinned to the unpruned no-exit model.
//
// Beyond the paper's happy path, the manager is an explicit resilience
// state machine over reconfiguration outcomes:
//
//           select() proposes accel switch
//   Healthy ───────────────────────────────► ReconfigPending
//      ▲                                          │
//      │ complete_reconfig(success)               │ complete_reconfig(fail)
//      ◄──────────────────────────────────────────┤
//      │                                          ▼
//      │        retry fails `degrade_after` times
//      │   Backoff ───────────────────────────► Degraded
//      │      │  capped exponential backoff        │ cooldown-gated probes
//      └──────┴────────── probe succeeds ──────────┘
//
// While in Backoff/Degraded the manager does not block: it gracefully
// degrades to confidence-threshold-only adaptation on the currently loaded
// bitstream (the CT-Only search restricted to the active accelerator) and
// only re-proposes a reconfiguration when the backoff timer / probe
// cooldown expires. Backoff delays get deterministic jitter from a
// splitmix64-derived stream so retries desynchronize reproducibly.
//
// Soft-error recovery adds a second entry path into that machinery: when
// the drift detector (runtime/monitor.hpp) reports accuracy/confidence
// drift via report_drift(), the manager first orders an on-demand
// configuration scrub (kScrubbing) when a scrubber is deployed, and
// escalates to a full bitstream reload (kReloadPending — the same
// reconfiguration mechanics, targeting the already-active accelerator) if
// drift persists or no scrubber exists. A failed reload enters the
// ordinary Backoff/Degraded retry schedule, and the owed reload survives
// the "failure became moot" heal path until a bitstream rewrite succeeds.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/diagnostics.hpp"
#include "library/library.hpp"
#include "runtime/monitor.hpp"

namespace adapex {

/// Adaptation policies evaluated in the paper.
enum class AdaptPolicy {
  kAdaPEx,     ///< Full search: pruning rate x confidence threshold.
  kPrOnly,     ///< Pruning rate only (single final exit).
  kCtOnly,     ///< Confidence threshold only (unpruned early-exit model).
  kStaticFinn, ///< No adaptation: original FINN accelerator.
};

const char* to_string(AdaptPolicy p);

/// Resilience states of the manager (see the diagram above).
enum class HealthState {
  kHealthy,         ///< Last reconfiguration (if any) succeeded.
  kReconfigPending, ///< A proposed accelerator switch awaits its outcome.
  kBackoff,         ///< Recent failure; retrying with exponential backoff.
  kDegraded,        ///< Failure latched; cooldown-gated probes only.
  kScrubbing,       ///< Drift reported; an on-demand scrub is repairing.
  kReloadPending,   ///< A drift-triggered bitstream reload awaits its outcome.
};

const char* to_string(HealthState s);

/// What the manager does while a reconfiguration keeps failing.
enum class FailurePolicy {
  /// Serve on the loaded bitstream with CT-only adaptation between retries.
  kGracefulDegrade,
  /// No fallback: retry at every opportunity; the accelerator stays dark
  /// until a load succeeds (the happy-path assumption made explicit — used
  /// as the baseline in bench_robustness).
  kBlockRetry,
};

const char* to_string(FailurePolicy p);

/// Retry schedule for failed reconfigurations.
struct BackoffPolicy {
  FailurePolicy on_failure = FailurePolicy::kGracefulDegrade;
  double initial_s = 0.5;  ///< Delay after the first failure.
  double multiplier = 2.0; ///< Growth per consecutive failure.
  double max_s = 8.0;      ///< Delay cap.
  /// Deterministic jitter: each delay is scaled by 1 +- U(jitter).
  double jitter = 0.25;
  /// Consecutive failures that latch kDegraded.
  int degrade_after = 3;
  /// Minimum spacing of reconfiguration probes while kDegraded.
  double probe_cooldown_s = 5.0;
};

/// Runtime configuration.
struct RuntimePolicy {
  AdaptPolicy policy = AdaptPolicy::kAdaPEx;
  /// Maximum tolerated accuracy loss relative to the library's reference
  /// accuracy (paper: 10%).
  double max_accuracy_loss = 0.10;
  /// Throughput safety margin: an entry is feasible when its IPS is at
  /// least `ips_headroom` times the measured workload, so the queue built
  /// up during a reconfiguration can drain afterwards.
  double ips_headroom = 1.10;
  /// Self-healing behaviour on reconfiguration failure.
  BackoffPolicy backoff{};
  /// Soft-error drift detection thresholds (runtime/monitor.hpp).
  DriftPolicy drift{};
};

/// Validates a policy without throwing; one diagnostic per bad field.
analysis::LintReport lint_runtime_policy(const RuntimePolicy& policy);

/// Throws ConfigError listing every violation; no-op on a valid policy.
void require_valid_runtime_policy(const RuntimePolicy& policy);

/// The manager's reaction to a workload sample.
struct Decision {
  int entry_index = -1;      ///< Active entry after the decision.
  /// The entry the manager tried to move to. Equal to entry_index on
  /// success; on a failed reconfiguration it keeps naming the target so
  /// traces stay interpretable.
  int attempted_index = -1;
  bool reconfigure = false;  ///< Accelerator (bitstream) change proposed.
  double reconfig_ms = 0.0;
  /// True when this attempt is a retry of an earlier failed switch.
  bool retry = false;
  /// The search was restricted to the loaded bitstream (CT-only fallback).
  bool degraded = false;
  /// Drift recovery: run an on-demand configuration scrub now.
  bool scrub = false;
  /// Drift recovery: `reconfigure`/`reconfig_ms` describe a reload of the
  /// already-active accelerator's bitstream rather than a switch.
  bool reload = false;
  HealthState state = HealthState::kHealthy;  ///< State after the decision.
};

/// Searches the library on workload changes and tracks the active point.
class RuntimeManager {
 public:
  /// `seed` drives only the backoff jitter stream; two managers with the
  /// same seed produce identical retry schedules.
  RuntimeManager(const Library& library, RuntimePolicy policy,
                 std::uint64_t seed = 0);

  /// Re-evaluates the operating point for the measured workload (IPS).
  /// `now_s` is the caller's clock, used to gate retries; callers that
  /// never report failures (the paper's happy path) may omit it.
  Decision select(double workload_ips, double now_s = 0.0);

  /// Reports the outcome of the reconfiguration proposed by the last
  /// select(). On failure the active entry rolls back to the loaded
  /// bitstream and the retry schedule engages. A caller that never reports
  /// (fire-and-forget, the pre-fault behaviour) is treated as success on
  /// its next select().
  void complete_reconfig(bool success, double now_s);

  /// Clears any retry gate so the next select() may probe immediately
  /// (the edge watchdog's recovery hammer).
  void force_probe();

  /// Rolls back a reconfiguration proposed by the last select() /
  /// report_drift() that was never attempted — e.g. vetoed by a fleet
  /// orchestrator staggering loads. The active entry returns to the loaded
  /// bitstream and the health state to its pre-proposal value. Unlike
  /// complete_reconfig(false), no failure is recorded and no backoff
  /// engages: the proposal simply never happened, and a later select() may
  /// re-propose it.
  void cancel_reconfig();

  /// Reports accuracy/confidence drift on the served stream. When healthy
  /// and `scrub_available`, orders an on-demand configuration scrub
  /// (cheapest repair first); when drift persists through a scrub — or no
  /// scrubber is deployed — proposes a bitstream reload of the active
  /// accelerator through the normal reconfiguration protocol (report the
  /// outcome with complete_reconfig; failures back off as usual, and the
  /// owed reload is re-proposed at every retry window until a rewrite
  /// succeeds). While an outcome is already pending, or a retry is already
  /// scheduled, returns a no-op decision.
  Decision report_drift(double now_s, bool scrub_available);

  /// Reports a clean post-scrub observation window: the scrub repaired the
  /// drift, so kScrubbing returns to kHealthy. No-op in other states.
  void drift_cleared();

  /// Active operating point. Throws Error with a clear message when called
  /// before the first select() has chosen one.
  const LibraryEntry& current() const;
  bool has_selection() const { return current_index_ >= 0; }

  const Library& library() const { return *library_; }

  HealthState state() const { return state_; }
  int consecutive_failures() const { return consecutive_failures_; }
  /// Earliest time select() will re-propose a reconfiguration; 0 when no
  /// retry is pending.
  double next_retry_s() const { return next_retry_s_; }

  /// Entry indices this policy may use (exposed for tests/benches).
  const std::vector<int>& eligible() const { return eligible_; }

 private:
  int search(double workload_ips, bool restricted) const;

  const Library* library_;
  RuntimePolicy policy_;
  std::vector<int> eligible_;
  int current_index_ = -1;
  int loaded_index_ = -1;  ///< Entry on the loaded bitstream during pending.
  HealthState state_ = HealthState::kHealthy;
  /// State to restore if a pending proposal is cancelled unattempted.
  HealthState pre_pending_state_ = HealthState::kHealthy;
  int consecutive_failures_ = 0;
  double next_retry_s_ = 0.0;
  /// A drift-triggered reload is owed: kept across failed attempts (and the
  /// moot-heal path) until some bitstream rewrite succeeds.
  bool reload_needed_ = false;
  std::uint64_t jitter_state_;  ///< splitmix64 stream for backoff jitter.
};

}  // namespace adapex
