// Deterministic fault injection for the runtime layer.
//
// Edge deployments miss the happy path in ways the paper's Runtime Manager
// never sees: bitstream loads fail or run long, the accelerator wedges for a
// transient window, workload telemetry gets dropped or delayed. The
// FaultInjector models those events as independent Bernoulli processes, one
// per fault category, each driven by its own splitmix64-derived RNG stream
// seeded from the episode seed. Independent streams make experiments
// composable: raising the stall probability cannot perturb the sequence of
// reconfiguration-failure decisions, and an episode replays byte-identically
// for a fixed (spec, seed) pair. With every probability at zero the injector
// draws nothing and the simulation is exactly the fault-free one.

#pragma once

#include <cstdint>

#include "analysis/diagnostics.hpp"
#include "common/rng.hpp"
#include "finn/reconfig.hpp"

namespace adapex {

/// Fault probabilities and shapes for one episode. All probabilities are
/// per-opportunity: reconfiguration faults per attempt, the others per
/// manager sampling period.
struct FaultSpec {
  /// A reconfiguration attempt fails: the bitstream does not load, the dead
  /// time is still paid, and the previously loaded accelerator stays active.
  double reconfig_fail_prob = 0.0;
  /// A successful reconfiguration runs long by `reconfig_slow_factor`.
  double reconfig_slow_prob = 0.0;
  double reconfig_slow_factor = 4.0;
  /// Transient accelerator stall: serving stops for `stall_duration_s`.
  double stall_prob = 0.0;
  double stall_duration_s = 1.0;
  /// Monitor sample lost (the manager sees nothing this period).
  double monitor_drop_prob = 0.0;
  /// Monitor sample arrives one period late.
  double monitor_delay_prob = 0.0;

  /// True when any fault can actually fire.
  bool any() const {
    return reconfig_fail_prob > 0.0 || reconfig_slow_prob > 0.0 ||
           stall_prob > 0.0 || monitor_drop_prob > 0.0 ||
           monitor_delay_prob > 0.0;
  }
};

/// Validates the spec without throwing; one diagnostic per bad field (the
/// aggregated-report pattern of src/analysis).
analysis::LintReport lint_fault_spec(const FaultSpec& spec);

/// Throws ConfigError listing every violation; no-op on a valid spec.
void require_valid_fault_spec(const FaultSpec& spec);

/// Draws fault events for one episode. Each category owns an independent
/// RNG stream derived from the episode seed, so decisions in one category
/// are a pure function of (seed, opportunity ordinal) in that category.
class FaultInjector {
 public:
  FaultInjector(const FaultSpec& spec, std::uint64_t episode_seed);

  /// Resolves one reconfiguration attempt with nominal dead time
  /// `nominal_ms`. The dead time is paid whether or not the load succeeds;
  /// slow loads stretch it by the spec's factor.
  ReconfigOutcome attempt_reconfig(double nominal_ms);

  /// Does the accelerator stall for a transient window this period?
  bool draw_stall();

  /// Is this period's monitor sample dropped / delayed?
  bool draw_monitor_drop();
  bool draw_monitor_delay();

  const FaultSpec& spec() const { return spec_; }

 private:
  FaultSpec spec_;
  Rng reconfig_rng_;
  Rng stall_rng_;
  Rng drop_rng_;
  Rng delay_rng_;
};

}  // namespace adapex
