// Deterministic fault injection for the runtime layer.
//
// Edge deployments miss the happy path in ways the paper's Runtime Manager
// never sees: bitstream loads fail or run long, the accelerator wedges for a
// transient window, workload telemetry gets dropped or delayed. The
// FaultInjector models those events as independent Bernoulli processes, one
// per fault category, each driven by its own splitmix64-derived RNG stream
// seeded from the episode seed. Independent streams make experiments
// composable: raising the stall probability cannot perturb the sequence of
// reconfiguration-failure decisions, and an episode replays byte-identically
// for a fixed (spec, seed) pair. With every probability at zero the injector
// draws nothing and the simulation is exactly the fault-free one.
//
// Beyond those transient faults, the spec models soft errors (single-event
// upsets) in the deployed accelerator itself: bit flips in quantized weight
// memory silently degrade TOP-1 accuracy, and flips in configuration/FIFO
// memory manifest as wrong-class outputs, early-exit confidence corruption,
// or pipeline hangs. The `mitigation` block describes the hardware
// countermeasures synthesized into the bitstream (finn/mitigation.hpp);
// their runtime effect (immediate correction, periodic repair, dark time)
// is modeled in edge/simulation.

#pragma once

#include <cstdint>

#include "analysis/diagnostics.hpp"
#include "common/rng.hpp"
#include "finn/mitigation.hpp"
#include "finn/reconfig.hpp"
#include "library/library.hpp"

namespace adapex {

/// Fault probabilities and shapes for one episode. All probabilities are
/// per-opportunity: reconfiguration faults per attempt, the others per
/// manager sampling period.
struct FaultSpec {
  /// A reconfiguration attempt fails: the bitstream does not load, the dead
  /// time is still paid, and the previously loaded accelerator stays active.
  double reconfig_fail_prob = 0.0;
  /// A successful reconfiguration runs long by `reconfig_slow_factor`.
  double reconfig_slow_prob = 0.0;
  double reconfig_slow_factor = 4.0;
  /// Transient accelerator stall: serving stops for `stall_duration_s`.
  double stall_prob = 0.0;
  double stall_duration_s = 1.0;
  /// Monitor sample lost (the manager sees nothing this period).
  double monitor_drop_prob = 0.0;
  /// Monitor sample arrives one period late.
  double monitor_delay_prob = 0.0;

  // --- Soft errors (SEUs), per sampling period ---
  /// Bit upset in the quantized weight memory (MVTU BRAMs) of the active
  /// accelerator. Uncorrected, it silently degrades TOP-1 accuracy.
  double seu_weight_prob = 0.0;
  /// Bit upset in configuration/FIFO memory. Manifests as a pipeline hang,
  /// exit-confidence corruption, or wrong-class outputs (split below).
  double seu_config_prob = 0.0;
  /// TOP-1 accuracy lost per active uncorrected weight upset.
  double seu_weight_accuracy_drop = 0.04;
  /// TOP-1 accuracy lost per active wrong-class / exit-corrupting config
  /// upset.
  double seu_config_accuracy_drop = 0.06;
  /// First-exit acceptance shift per active confidence-corrupting upset
  /// (stuck-high exit logits accept early far too often).
  double seu_exit_rate_shift = 0.25;
  /// Config-upset manifestation split: fraction that hangs the pipeline and
  /// fraction that corrupts exit confidence; the remainder flips classes.
  double seu_hang_frac = 0.15;
  double seu_exit_corrupt_frac = 0.35;
  /// Mitigations synthesized into the deployed bitstream
  /// (finn/mitigation.hpp). Their runtime behaviour — ECC correction, scrub
  /// repairs + dark time, TMR masking — is modeled in edge/simulation.
  SeuMitigation mitigation;

  /// True when any soft-error upset can actually land.
  bool any_seu() const { return seu_weight_prob > 0.0 || seu_config_prob > 0.0; }

  /// True when any fault can actually fire.
  bool any() const {
    return reconfig_fail_prob > 0.0 || reconfig_slow_prob > 0.0 ||
           stall_prob > 0.0 || monitor_drop_prob > 0.0 ||
           monitor_delay_prob > 0.0 || any_seu();
  }
};

/// Validates the spec without throwing; one diagnostic per bad field (the
/// aggregated-report pattern of src/analysis).
analysis::LintReport lint_fault_spec(const FaultSpec& spec);

/// Library-aware overload: additionally checks the mitigations against the
/// accelerators they protect (RF6: TMR needs early-exit heads to
/// triplicate). Used by simulate_edge, which knows the library.
analysis::LintReport lint_fault_spec(const FaultSpec& spec,
                                     const Library& library);

/// Throws ConfigError listing every violation; no-op on a valid spec.
void require_valid_fault_spec(const FaultSpec& spec);

/// How one configuration-memory upset manifests.
enum class ConfigUpset {
  kNone,        ///< No upset this period.
  kWrongClass,  ///< Corrupted routing/thresholds flip output classes.
  kExitCorrupt, ///< Exit-head confidence corrupted (early exits misfire).
  kHang,        ///< FIFO/handshake state wedged: the pipeline stops.
};

/// Draws fault events for one episode. Each category owns an independent
/// RNG stream derived from the episode seed, so decisions in one category
/// are a pure function of (seed, opportunity ordinal) in that category.
class FaultInjector {
 public:
  FaultInjector(const FaultSpec& spec, std::uint64_t episode_seed);

  /// Resolves one reconfiguration attempt with nominal dead time
  /// `nominal_ms`. The dead time is paid whether or not the load succeeds;
  /// slow loads stretch it by the spec's factor.
  ReconfigOutcome attempt_reconfig(double nominal_ms);

  /// Does the accelerator stall for a transient window this period?
  bool draw_stall();

  /// Is this period's monitor sample dropped / delayed?
  bool draw_monitor_drop();
  bool draw_monitor_delay();

  /// Does a weight-memory upset land this period?
  bool draw_weight_upset();

  /// Does a config-memory upset land this period, and how does it manifest?
  ConfigUpset draw_config_upset();

  /// Correlated-failure scaling (fleet failure domains, edge/fleet.hpp):
  /// multiplies the transient hardware rates (reconfig_fail_prob,
  /// stall_prob) by `transient` and the SEU occurrence rates
  /// (seu_weight_prob, seu_config_prob) by `seu`, clamped to probability 1.
  /// Every draw still happens, so the underlying uniform sequences are
  /// unchanged: scaling back to 1.0 restores the exact unscaled episode
  /// from that point on, and an injector that is never scaled (or scaled by
  /// exactly 1.0) is byte-identical to the pre-scaling behaviour
  /// (p * 1.0 == p). Monitor faults and severity knobs are not scaled.
  void set_rate_scale(double transient, double seu);

  double transient_scale() const { return transient_scale_; }
  double seu_scale() const { return seu_scale_; }

  const FaultSpec& spec() const { return spec_; }

 private:
  FaultSpec spec_;
  double transient_scale_ = 1.0;
  double seu_scale_ = 1.0;
  Rng reconfig_rng_;
  Rng stall_rng_;
  Rng drop_rng_;
  Rng delay_rng_;
  Rng weight_rng_;
  Rng config_rng_;
};

}  // namespace adapex
