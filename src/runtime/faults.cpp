#include "runtime/faults.hpp"

#include "common/error.hpp"

namespace adapex {

namespace {

// Stream identifiers for derive_seed: one per fault category. Values are
// arbitrary but fixed — changing them changes every faulted episode.
constexpr std::uint64_t kReconfigStream = 0xFA01;
constexpr std::uint64_t kStallStream = 0xFA02;
constexpr std::uint64_t kDropStream = 0xFA03;
constexpr std::uint64_t kDelayStream = 0xFA04;

void check_prob(analysis::LintReport& report, const char* field, double p) {
  if (!(p >= 0.0 && p <= 1.0)) {
    report.add("RF1", analysis::Severity::kError, "faults",
               std::string(field) + " = " + std::to_string(p) +
                   " is not a probability",
               "use a value in [0, 1]");
  }
}

}  // namespace

analysis::LintReport lint_fault_spec(const FaultSpec& spec) {
  analysis::LintReport report;
  check_prob(report, "reconfig_fail_prob", spec.reconfig_fail_prob);
  check_prob(report, "reconfig_slow_prob", spec.reconfig_slow_prob);
  check_prob(report, "stall_prob", spec.stall_prob);
  check_prob(report, "monitor_drop_prob", spec.monitor_drop_prob);
  check_prob(report, "monitor_delay_prob", spec.monitor_delay_prob);
  if (!(spec.reconfig_slow_factor >= 1.0)) {
    report.add("RF2", analysis::Severity::kError, "faults",
               "reconfig_slow_factor = " +
                   std::to_string(spec.reconfig_slow_factor) + " is below 1",
               "a slow load takes at least the nominal time");
  }
  if (!(spec.stall_duration_s >= 0.0)) {
    report.add("RF3", analysis::Severity::kError, "faults",
               "stall_duration_s = " + std::to_string(spec.stall_duration_s) +
                   " is negative",
               "use a non-negative window");
  }
  return report;
}

void require_valid_fault_spec(const FaultSpec& spec) {
  const analysis::LintReport report = lint_fault_spec(spec);
  if (report.has_errors()) throw ConfigError(report.error_message());
}

FaultInjector::FaultInjector(const FaultSpec& spec, std::uint64_t episode_seed)
    : spec_(spec),
      reconfig_rng_(derive_seed(episode_seed, kReconfigStream)),
      stall_rng_(derive_seed(episode_seed, kStallStream)),
      drop_rng_(derive_seed(episode_seed, kDropStream)),
      delay_rng_(derive_seed(episode_seed, kDelayStream)) {
  require_valid_fault_spec(spec);
}

ReconfigOutcome FaultInjector::attempt_reconfig(double nominal_ms) {
  ReconfigOutcome out;
  out.dead_ms = nominal_ms;
  // Exactly two draws per attempt, whatever the probabilities: attempt k's
  // failure decision depends only on (seed, k), never on which other knobs
  // are zero.
  const bool failed = reconfig_rng_.uniform() < spec_.reconfig_fail_prob;
  const bool slowed = reconfig_rng_.uniform() < spec_.reconfig_slow_prob;
  out.success = !failed;
  out.slowed = slowed;
  if (slowed) out.dead_ms = nominal_ms * spec_.reconfig_slow_factor;
  return out;
}

bool FaultInjector::draw_stall() {
  return stall_rng_.uniform() < spec_.stall_prob;
}

bool FaultInjector::draw_monitor_drop() {
  return drop_rng_.uniform() < spec_.monitor_drop_prob;
}

bool FaultInjector::draw_monitor_delay() {
  return delay_rng_.uniform() < spec_.monitor_delay_prob;
}

}  // namespace adapex
