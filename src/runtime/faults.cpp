#include "runtime/faults.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace adapex {

namespace {

// Stream identifiers for derive_seed: one per fault category. Values are
// arbitrary but fixed — changing them changes every faulted episode.
constexpr std::uint64_t kReconfigStream = 0xFA01;
constexpr std::uint64_t kStallStream = 0xFA02;
constexpr std::uint64_t kDropStream = 0xFA03;
constexpr std::uint64_t kDelayStream = 0xFA04;
constexpr std::uint64_t kWeightStream = 0xFA05;
constexpr std::uint64_t kConfigStream = 0xFA06;

void check_prob(analysis::LintReport& report, const char* rule,
                const char* field, double p) {
  if (!(p >= 0.0 && p <= 1.0)) {
    report.add(rule, analysis::Severity::kError, "faults",
               std::string(field) + " = " + std::to_string(p) +
                   " is not a probability",
               "use a value in [0, 1]");
  }
}

}  // namespace

analysis::LintReport lint_fault_spec(const FaultSpec& spec) {
  analysis::LintReport report;
  check_prob(report, "RF1", "reconfig_fail_prob", spec.reconfig_fail_prob);
  check_prob(report, "RF1", "reconfig_slow_prob", spec.reconfig_slow_prob);
  check_prob(report, "RF1", "stall_prob", spec.stall_prob);
  check_prob(report, "RF1", "monitor_drop_prob", spec.monitor_drop_prob);
  check_prob(report, "RF1", "monitor_delay_prob", spec.monitor_delay_prob);
  if (!(spec.reconfig_slow_factor >= 1.0)) {
    report.add("RF2", analysis::Severity::kError, "faults",
               "reconfig_slow_factor = " +
                   std::to_string(spec.reconfig_slow_factor) + " is below 1",
               "a slow load takes at least the nominal time");
  }
  if (!(spec.stall_duration_s >= 0.0)) {
    report.add("RF3", analysis::Severity::kError, "faults",
               "stall_duration_s = " + std::to_string(spec.stall_duration_s) +
                   " is negative",
               "use a non-negative window");
  }
  // RF4: SEU rates and severities.
  check_prob(report, "RF4", "seu_weight_prob", spec.seu_weight_prob);
  check_prob(report, "RF4", "seu_config_prob", spec.seu_config_prob);
  check_prob(report, "RF4", "seu_weight_accuracy_drop",
             spec.seu_weight_accuracy_drop);
  check_prob(report, "RF4", "seu_config_accuracy_drop",
             spec.seu_config_accuracy_drop);
  check_prob(report, "RF4", "seu_exit_rate_shift", spec.seu_exit_rate_shift);
  if (!(spec.seu_hang_frac >= 0.0 && spec.seu_exit_corrupt_frac >= 0.0 &&
        spec.seu_hang_frac + spec.seu_exit_corrupt_frac <= 1.0)) {
    report.add("RF4", analysis::Severity::kError, "faults",
               "seu_hang_frac = " + std::to_string(spec.seu_hang_frac) +
                   " and seu_exit_corrupt_frac = " +
                   std::to_string(spec.seu_exit_corrupt_frac) +
                   " must be non-negative and sum to at most 1",
               "the remainder is the wrong-class fraction");
  }
  // RF5: scrubbing needs a usable schedule.
  if (spec.mitigation.scrubbing && !(spec.mitigation.scrub_period_s > 0.0)) {
    report.add("RF5", analysis::Severity::kError, "faults",
               "mitigation.scrub_period_s = " +
                   std::to_string(spec.mitigation.scrub_period_s) +
                   " is not positive while scrubbing is enabled",
               "scrub passes need a positive period");
  }
  if (spec.mitigation.scrubbing && !(spec.mitigation.scrub_time_ms >= 0.0)) {
    report.add("RF5", analysis::Severity::kError, "faults",
               "mitigation.scrub_time_ms = " +
                   std::to_string(spec.mitigation.scrub_time_ms) +
                   " is negative",
               "a scrub pass cannot take negative time");
  }
  return report;
}

analysis::LintReport lint_fault_spec(const FaultSpec& spec,
                                     const Library& library) {
  analysis::LintReport report = lint_fault_spec(spec);
  // RF6: TMR triplicates the early-exit classifier heads — meaningless (and
  // a sign of a misconfigured experiment) when the library has none.
  if (spec.mitigation.tmr_exit_heads) {
    bool has_exit_heads = false;
    for (const LibraryEntry& e : library.entries) {
      if (e.variant != ModelVariant::kNoExit) {
        has_exit_heads = true;
        break;
      }
    }
    if (!has_exit_heads) {
      report.add("RF6", analysis::Severity::kError, "faults",
                 "mitigation.tmr_exit_heads is enabled but no library entry "
                 "has early-exit heads",
                 "disable TMR or include an early-exit variant");
    }
  }
  return report;
}

void require_valid_fault_spec(const FaultSpec& spec) {
  const analysis::LintReport report = lint_fault_spec(spec);
  if (report.has_errors()) throw ConfigError(report.error_message());
}

FaultInjector::FaultInjector(const FaultSpec& spec, std::uint64_t episode_seed)
    : spec_(spec),
      reconfig_rng_(derive_seed(episode_seed, kReconfigStream)),
      stall_rng_(derive_seed(episode_seed, kStallStream)),
      drop_rng_(derive_seed(episode_seed, kDropStream)),
      delay_rng_(derive_seed(episode_seed, kDelayStream)),
      weight_rng_(derive_seed(episode_seed, kWeightStream)),
      config_rng_(derive_seed(episode_seed, kConfigStream)) {
  require_valid_fault_spec(spec);
}

void FaultInjector::set_rate_scale(double transient, double seu) {
  ADAPEX_CHECK(transient >= 0.0 && seu >= 0.0,
               "fault rate scales must be non-negative");
  transient_scale_ = transient;
  seu_scale_ = seu;
}

ReconfigOutcome FaultInjector::attempt_reconfig(double nominal_ms) {
  ReconfigOutcome out;
  out.dead_ms = nominal_ms;
  // Exactly two draws per attempt, whatever the probabilities: attempt k's
  // failure decision depends only on (seed, k), never on which other knobs
  // are zero. min(1, p * scale) is exact at scale 1 (and for any p <= 1),
  // so scaling never perturbs the draw-to-outcome mapping at baseline.
  const bool failed = reconfig_rng_.uniform() <
                      std::min(1.0, spec_.reconfig_fail_prob * transient_scale_);
  const bool slowed = reconfig_rng_.uniform() < spec_.reconfig_slow_prob;
  out.success = !failed;
  out.slowed = slowed;
  if (slowed) out.dead_ms = nominal_ms * spec_.reconfig_slow_factor;
  return out;
}

bool FaultInjector::draw_stall() {
  return stall_rng_.uniform() <
         std::min(1.0, spec_.stall_prob * transient_scale_);
}

bool FaultInjector::draw_monitor_drop() {
  return drop_rng_.uniform() < spec_.monitor_drop_prob;
}

bool FaultInjector::draw_monitor_delay() {
  return delay_rng_.uniform() < spec_.monitor_delay_prob;
}

bool FaultInjector::draw_weight_upset() {
  return weight_rng_.uniform() <
         std::min(1.0, spec_.seu_weight_prob * seu_scale_);
}

ConfigUpset FaultInjector::draw_config_upset() {
  // Exactly two draws per period (occurrence, then manifestation), both
  // unconditional: period k's upset depends only on (seed, k), and changing
  // the manifestation split cannot shift when upsets land.
  const bool hit = config_rng_.uniform() <
                   std::min(1.0, spec_.seu_config_prob * seu_scale_);
  const double kind = config_rng_.uniform();
  if (!hit) return ConfigUpset::kNone;
  if (kind < spec_.seu_hang_frac) return ConfigUpset::kHang;
  if (kind < spec_.seu_hang_frac + spec_.seu_exit_corrupt_frac) {
    return ConfigUpset::kExitCorrupt;
  }
  return ConfigUpset::kWrongClass;
}

}  // namespace adapex
