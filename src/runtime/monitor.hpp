// Workload monitor — the "performance monitors added to the software in
// charge of the incoming inferences" (paper section IV-B).
//
// Counts request arrivals and, at each sampling instant, reports the rate
// over the elapsed window with optional exponential smoothing. The change
// flag implements the paper's trigger semantics: the Runtime Manager
// re-searches the Library only "whenever a change in the workload is
// flagged", not on every sample — which is what keeps reconfiguration
// counts low under sampling noise.

// The DriftDetector below is the soft-error counterpart: it watches the
// *quality* of the served stream (windowed TOP-1 agreement with a golden
// reference, and the first-exit acceptance rate) against the Library's
// design-time expectations, flagging the accuracy/confidence drift that
// uncorrected upsets in weight or configuration memory produce.

#pragma once

#include <cmath>
#include <vector>

#include "common/error.hpp"

namespace adapex {

/// Sliding-window arrival-rate estimator with change flagging.
class WorkloadMonitor {
 public:
  struct Options {
    /// EMA smoothing over window rates (1.0 = no smoothing).
    double smoothing = 1.0;
    /// Relative change vs the last flagged rate that triggers a flag.
    double flag_threshold = 0.15;
  };

  WorkloadMonitor() : WorkloadMonitor(Options{}) {}

  explicit WorkloadMonitor(Options options) : options_(options) {
    ADAPEX_CHECK(options_.smoothing > 0.0 && options_.smoothing <= 1.0,
                 "smoothing must be in (0, 1]");
    ADAPEX_CHECK(options_.flag_threshold >= 0.0,
                 "flag threshold must be non-negative");
  }

  /// Records one request arrival.
  void on_arrival() { ++count_; }

  /// Result of closing a sampling window.
  struct Sample {
    double rate_ips = 0.0;  ///< Smoothed arrival rate.
    bool flagged = false;   ///< Change crossed the threshold.
  };

  /// Closes the window of length `window_s`, returning the rate estimate
  /// and whether a workload change should be flagged to the manager.
  Sample sample(double window_s) {
    ADAPEX_CHECK(window_s > 0.0, "window must be positive");
    const double raw = static_cast<double>(count_) / window_s;
    count_ = 0;
    smoothed_ = has_rate_
                    ? (1.0 - options_.smoothing) * smoothed_ +
                          options_.smoothing * raw
                    : raw;
    has_rate_ = true;

    Sample s;
    s.rate_ips = smoothed_;
    if (!has_flagged_ ||
        std::abs(smoothed_ - last_flagged_) >
            options_.flag_threshold * (last_flagged_ > 1.0 ? last_flagged_ : 1.0)) {
      s.flagged = true;
      last_flagged_ = smoothed_;
      has_flagged_ = true;
    }
    return s;
  }

  double last_flagged_rate() const { return last_flagged_; }

 private:
  Options options_;
  long count_ = 0;
  double smoothed_ = 0.0;
  double last_flagged_ = 0.0;
  bool has_rate_ = false;
  bool has_flagged_ = false;
};

/// Thresholds for the accuracy/confidence drift detector (linted as
/// RP9–RP11 by lint_runtime_policy).
struct DriftPolicy {
  /// Sliding window length, in manager sampling periods.
  int window = 8;
  /// Observations required before the detector may fire (bounds detection
  /// latency from below; the window bounds it from above).
  int min_samples = 4;
  /// Windowed TOP-1-agreement drop below the Library expectation that
  /// flags drift.
  double accuracy_tolerance = 0.05;
  /// Windowed absolute first-exit acceptance shift that flags drift.
  double exit_rate_tolerance = 0.20;
};

/// Accuracy/confidence drift detector (soft-error datapath monitoring).
///
/// The runtime periodically spot-checks served predictions against a golden
/// host-side reference and tracks the early-exit acceptance rate; both have
/// design-time expectations recorded in the active Library entry. A
/// windowed mean departing from its expectation by more than the policy
/// tolerance flags drift — the signature of uncorrected upsets in weight or
/// configuration memory. Expectations are exact and observations noise-free
/// in this model, so a clean episode can never fire the detector
/// (tolerances are required positive).
class DriftDetector {
 public:
  explicit DriftDetector(const DriftPolicy& policy) : policy_(policy) {
    ADAPEX_CHECK(policy_.window >= 1, "drift window must be >= 1");
    ADAPEX_CHECK(
        policy_.min_samples >= 1 && policy_.min_samples <= policy_.window,
        "drift min_samples must be in [1, window]");
    ADAPEX_CHECK(policy_.accuracy_tolerance > 0.0,
                 "drift accuracy tolerance must be positive");
    ADAPEX_CHECK(policy_.exit_rate_tolerance > 0.0,
                 "drift exit-rate tolerance must be positive");
  }

  /// Sets the Library expectations for the active operating point and
  /// clears the observation window (call on every entry change).
  void expect(double accuracy, double first_exit_rate) {
    expected_accuracy_ = accuracy;
    expected_exit_rate_ = first_exit_rate;
    reset();
  }

  /// Clears the observation window (e.g. after a recovery action, so the
  /// post-recovery stream is judged on its own).
  void reset() {
    acc_window_.clear();
    exit_window_.clear();
  }

  /// Records one sampling period's observed quality.
  void observe(double accuracy, double first_exit_rate) {
    push(acc_window_, accuracy);
    push(exit_window_, first_exit_rate);
  }

  int samples() const { return static_cast<int>(acc_window_.size()); }
  bool window_full() const { return samples() >= policy_.window; }

  /// Positive when the windowed agreement sits below the expectation.
  double accuracy_gap() const { return expected_accuracy_ - mean(acc_window_); }
  /// Absolute shift of the windowed first-exit acceptance.
  double exit_rate_gap() const {
    return std::abs(mean(exit_window_) - expected_exit_rate_);
  }

  /// True when either windowed statistic exceeds its tolerance (after
  /// min_samples observations).
  bool drifted() const {
    if (samples() < policy_.min_samples) return false;
    return accuracy_gap() > policy_.accuracy_tolerance ||
           exit_rate_gap() > policy_.exit_rate_tolerance;
  }

 private:
  void push(std::vector<double>& window, double value) {
    window.push_back(value);
    if (static_cast<int>(window.size()) > policy_.window) {
      window.erase(window.begin());
    }
  }

  static double mean(const std::vector<double>& window) {
    if (window.empty()) return 0.0;
    double sum = 0.0;
    for (double v : window) sum += v;
    return sum / static_cast<double>(window.size());
  }

  DriftPolicy policy_;
  double expected_accuracy_ = 0.0;
  double expected_exit_rate_ = 1.0;
  std::vector<double> acc_window_;
  std::vector<double> exit_window_;
};

}  // namespace adapex
