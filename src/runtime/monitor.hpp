// Workload monitor — the "performance monitors added to the software in
// charge of the incoming inferences" (paper section IV-B).
//
// Counts request arrivals and, at each sampling instant, reports the rate
// over the elapsed window with optional exponential smoothing. The change
// flag implements the paper's trigger semantics: the Runtime Manager
// re-searches the Library only "whenever a change in the workload is
// flagged", not on every sample — which is what keeps reconfiguration
// counts low under sampling noise.

#pragma once

#include <cmath>

#include "common/error.hpp"

namespace adapex {

/// Sliding-window arrival-rate estimator with change flagging.
class WorkloadMonitor {
 public:
  struct Options {
    /// EMA smoothing over window rates (1.0 = no smoothing).
    double smoothing = 1.0;
    /// Relative change vs the last flagged rate that triggers a flag.
    double flag_threshold = 0.15;
  };

  WorkloadMonitor() : WorkloadMonitor(Options{}) {}

  explicit WorkloadMonitor(Options options) : options_(options) {
    ADAPEX_CHECK(options_.smoothing > 0.0 && options_.smoothing <= 1.0,
                 "smoothing must be in (0, 1]");
    ADAPEX_CHECK(options_.flag_threshold >= 0.0,
                 "flag threshold must be non-negative");
  }

  /// Records one request arrival.
  void on_arrival() { ++count_; }

  /// Result of closing a sampling window.
  struct Sample {
    double rate_ips = 0.0;  ///< Smoothed arrival rate.
    bool flagged = false;   ///< Change crossed the threshold.
  };

  /// Closes the window of length `window_s`, returning the rate estimate
  /// and whether a workload change should be flagged to the manager.
  Sample sample(double window_s) {
    ADAPEX_CHECK(window_s > 0.0, "window must be positive");
    const double raw = static_cast<double>(count_) / window_s;
    count_ = 0;
    smoothed_ = has_rate_
                    ? (1.0 - options_.smoothing) * smoothed_ +
                          options_.smoothing * raw
                    : raw;
    has_rate_ = true;

    Sample s;
    s.rate_ips = smoothed_;
    if (!has_flagged_ ||
        std::abs(smoothed_ - last_flagged_) >
            options_.flag_threshold * (last_flagged_ > 1.0 ? last_flagged_ : 1.0)) {
      s.flagged = true;
      last_flagged_ = smoothed_;
      has_flagged_ = true;
    }
    return s;
  }

  double last_flagged_rate() const { return last_flagged_; }

 private:
  Options options_;
  long count_ = 0;
  double smoothed_ = 0.0;
  double last_flagged_ = 0.0;
  bool has_rate_ = false;
  bool has_flagged_ = false;
};

}  // namespace adapex
