// Static verifier for AdaPEx design points.
//
// lint() checks a (BranchyModel, FoldingConfig, AcceleratorConfig) triple —
// and, when the design-level rules pass, the compiled Accelerator — without
// running the pipeline simulator, emitting structured Diagnostics instead of
// aborting on the first violated ADAPEX_CHECK. Rule catalog:
//
//   R1  folding divisibility: PE | out_channels and SIMD | matrix width
//       (k^2 * ch_in for conv, in_features for fc) at every walk-order site.
//   R2  shape propagation: conv/pool/fc geometry must stay consistent from
//       the input image through the backbone and every exit head.
//   R3  stream-width agreement: a producer's output parallelism must match
//       (or integrally convert to) its consumer's input parallelism on every
//       link, including both consumers of a Branch duplicator.
//   R4  FIFO backpressure hazards: initiation-interval imbalance across a
//       Branch fork makes the duplicated stream back up; flagged statically
//       and cross-checked against the transaction-level fifo_sizing model.
//   R5  resource budget: total LUT/FF/BRAM/DSP vs. a named device profile
//       (default ZCU104), with a near-capacity warning band.
//   R6  folding-JSON well-formedness: arity/site-name match, integral
//       positive PE/SIMD entries, and to_json/from_json round-trip fidelity.
//   R7  exit-path structure: exits attach to intermediate blocks in
//       monotonic order, and every compiled exit path is a prefix-consistent
//       extension of the backbone path through its Branch module.
//
// The reach-aware dataflow verifier (analysis/dataflow.hpp) extends the
// catalog with R8-R14, run from lint_accelerator() when
// LintOptions::dataflow_rules is set:
//
//   R8  reach consistency: exit-fraction arity, range, unit sum, and
//       non-negative monotone survival against the branch structure.
//   R9  reach-scaled II feasibility: a gated module folded below its gated
//       arrival rate throttles the pipeline (re-folding target).
//   R10 FIFO depth lower-bound violation against a proposed sizing plan.
//   R11 bounded-FIFO deadlock freedom: acyclic stream graph, no zero-depth
//       links, branch-side depths past the wedge hazard.
//   R12 reach-vs-Library drift: a Library entry's recorded distribution and
//       throughput vs. the accelerator it was priced against.
//   R13 duplicated-stream buffering cost (static FIFO BRAM upper bound)
//       against the device budget.
//   R14 gated-throughput accounting: claimed ips/latency vs. the
//       reach-weighted module model.
//
// Further rule families live next to their subsystems and share this
// diagnostics infrastructure: the fault-spec rules (runtime/faults.hpp),
// the edge-scenario and fleet-serving rules FS1-FS8 (edge/fleet.hpp), and
// the crash-safety generation-spec rules RG1-RG5 (library/journal.hpp):
//
//   RG1 journal_dir must be a creatable, writable directory (probed).
//   RG2 max_point_retries bounds: < 0 is an error, > 8 warns.
//   RG3 PartialPolicy::kEmitPartial under verify_dataflow warns — verifier
//       rejections would be quarantined instead of failing the run.
//   RG4 checksum_mode must be fnv1a64 | crc32.
//   RG5 relative journal_dir warns (resume depends on the CWD).
//
// compile_accelerator() and generate_library() run the design-level rules as
// a precondition and reject illegal design points with a single aggregated
// ConfigError listing every violation (replacing the old first-check-wins
// abort). The adapex_lint CLI (examples/adapex_lint.cpp) exposes the same
// checks over serialized models and folding JSON files.

#pragma once

#include "analysis/device.hpp"
#include "analysis/diagnostics.hpp"
#include "finn/accelerator.hpp"
#include "hls/folding.hpp"
#include "nn/branchy.hpp"

namespace adapex {
namespace analysis {

/// Tuning knobs for a lint run.
struct LintOptions {
  DeviceProfile device = DeviceProfile::zcu104();
  /// Utilization fraction above which R5 warns even though the design fits.
  double budget_warn_fraction = 0.80;
  /// R4 warns when an exit head's initiation interval exceeds the
  /// post-branch backbone II by more than this factor.
  double fifo_imbalance_warn = 1.5;
  /// Cross-check R4 findings against the transaction-level FIFO sizing
  /// model (cheap; set false for a purely analytical run).
  bool cross_check_fifos = true;
  /// Run the reach-aware dataflow rules R8-R14 (analysis/dataflow.hpp).
  bool dataflow_rules = true;
  /// Exit distribution the dataflow rules analyze under; empty means
  /// uniform over the accelerator's outputs.
  std::vector<double> exit_fractions;
};

/// Design-level rules (R1, R2, R6, R7's model-structure half): everything
/// checkable before/without compiling an Accelerator. Never throws on a
/// broken design — violations come back as diagnostics.
LintReport lint_design(BranchyModel& model, const FoldingConfig& folding,
                       const AcceleratorConfig& config);

/// Accelerator-level rules (R3, R4, R5, R7's path half) over a compiled
/// design. Usable directly on hand-built or deserialized accelerators.
LintReport lint_accelerator(const Accelerator& acc,
                            const LintOptions& options = LintOptions{});

/// R6 over a folding JSON document against the model's walk-order sites.
LintReport lint_folding_json(const Json& folding_json,
                             const std::vector<LayerSite>& sites);

/// Full verification: design rules first; when they leave no errors, the
/// model is compiled and the accelerator rules run on the result. The
/// returned report concatenates both stages.
LintReport lint(BranchyModel& model, const FoldingConfig& folding,
                const AcceleratorConfig& config,
                const LintOptions& options = LintOptions{});

/// Precondition helper used by compile_accelerator()/generate_library():
/// runs lint_design and throws ConfigError carrying error_message() when any
/// error-severity finding exists.
void require_valid_design(BranchyModel& model, const FoldingConfig& folding,
                          const AcceleratorConfig& config);

}  // namespace analysis
}  // namespace adapex
