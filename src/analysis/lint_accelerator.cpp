// Accelerator-level lint rules: checks over the compiled streaming-module
// graph. These run on any Accelerator — freshly compiled, hand-built in a
// test, or rehydrated from a report — and never mutate it.

#include <algorithm>
#include <string>
#include <vector>

#include "analysis/dataflow.hpp"
#include "analysis/lint.hpp"
#include "finn/fifo_sizing.hpp"

namespace adapex {
namespace analysis {

namespace {

std::string module_site(const Accelerator& acc, int index) {
  if (index < 0 || index >= static_cast<int>(acc.modules.size())) {
    return "module[" + std::to_string(index) + "]";
  }
  return acc.modules[static_cast<std::size_t>(index)].name;
}

/// True when every path index is a valid module index; later rules assume
/// this and are skipped otherwise.
bool lint_path_indices(const Accelerator& acc, LintReport& report) {
  bool ok = true;
  for (std::size_t e = 0; e < acc.paths.size(); ++e) {
    if (acc.paths[e].empty()) {
      report.add("R7", Severity::kError, "paths[" + std::to_string(e) + "]",
                 "output path is empty",
                 "every output must traverse at least one module");
      ok = false;
    }
    for (int mi : acc.paths[e]) {
      if (mi < 0 || mi >= static_cast<int>(acc.modules.size())) {
        report.add("R7", Severity::kError, "paths[" + std::to_string(e) + "]",
                   "path references module index " + std::to_string(mi) +
                       " outside modules[0.." +
                       std::to_string(acc.modules.size()) + ")",
                   "rebuild the accelerator paths");
        ok = false;
      }
    }
  }
  return ok;
}

/// R3: stream-width agreement on every producer -> consumer link.
void lint_stream_widths(const Accelerator& acc, LintReport& report) {
  for (const auto& m : acc.modules) {
    if (m.in_stream_elems < 1 || m.out_stream_elems < 1) {
      report.add("R3", Severity::kError, m.name,
                 "stream widths must be positive (in=" +
                     std::to_string(m.in_stream_elems) +
                     ", out=" + std::to_string(m.out_stream_elems) + ")",
                 "recompile the accelerator with a valid folding");
    }
  }
  for (const auto& [p, c] : accelerator_links(acc)) {
    const HlsModule& prod = acc.modules[static_cast<std::size_t>(p)];
    const HlsModule& cons = acc.modules[static_cast<std::size_t>(c)];
    if (prod.out_stream_elems < 1 || cons.in_stream_elems < 1) continue;
    if (prod.out_stream_elems == cons.in_stream_elems) continue;
    const int wide = std::max(prod.out_stream_elems, cons.in_stream_elems);
    const int narrow = std::min(prod.out_stream_elems, cons.in_stream_elems);
    const std::string site = prod.name + " -> " + cons.name;
    const std::string widths = std::to_string(prod.out_stream_elems) +
                               " elems/cycle vs " +
                               std::to_string(cons.in_stream_elems);
    if (wide % narrow == 0) {
      report.add("R3", Severity::kInfo, site,
                 "stream widths differ (" + widths +
                     "); a data-width converter is required on this link",
                 "FINN inserts an InsertDWC here; budget its LUTs");
    } else {
      report.add("R3", Severity::kWarning, site,
                 "stream widths are not integer-ratio (" + widths + ")",
                 "align PE/SIMD so one width divides the other");
    }
  }
}

/// R4: FIFO backpressure hazards at Branch forks. A slow exit head makes
/// the duplicated feature-map stream back up behind the branch; statically
/// compare the head's initiation interval against the post-branch backbone
/// II, then (optionally) cross-check the needed depth with the
/// transaction-level fifo_sizing model.
void lint_fifo_hazards(const Accelerator& acc, const LintOptions& options,
                       LintReport& report) {
  if (acc.num_exits <= 0 ||
      acc.paths.size() != static_cast<std::size_t>(acc.num_exits) + 1) {
    return;
  }
  const std::vector<int>& backbone = acc.paths.back();

  std::vector<FifoRequirement> sized;
  if (options.cross_check_fifos) {
    // Round-robin stimulus over every output keeps the check deterministic
    // and cheap (a few dozen transactions).
    std::vector<int> stimulus(8 * acc.paths.size());
    for (std::size_t i = 0; i < stimulus.size(); ++i) {
      stimulus[i] = static_cast<int>(i % acc.paths.size());
    }
    sized = size_fifos(acc, stimulus);
  }

  for (int e = 0; e < acc.num_exits; ++e) {
    const auto& path = acc.paths[static_cast<std::size_t>(e)];
    // The branch is the last backbone module on the exit path; everything
    // after it belongs to this exit's head.
    int branch_index = -1;
    std::size_t head_start = 0;
    for (std::size_t i = 0; i < path.size(); ++i) {
      const HlsModule& m = acc.modules[static_cast<std::size_t>(path[i])];
      if (m.exit_head < 0) {
        branch_index = path[i];
        head_start = i + 1;
      }
    }
    if (branch_index < 0 || head_start >= path.size()) continue;

    long head_ii = 0;
    for (std::size_t i = head_start; i < path.size(); ++i) {
      head_ii = std::max(
          head_ii, acc.modules[static_cast<std::size_t>(path[i])].cycles);
    }
    long post_branch_ii = 0;
    bool after = false;
    for (int mi : backbone) {
      if (after) {
        post_branch_ii = std::max(
            post_branch_ii, acc.modules[static_cast<std::size_t>(mi)].cycles);
      }
      if (mi == branch_index) after = true;
    }
    if (post_branch_ii <= 0 || head_ii <= 0) continue;

    const double imbalance =
        static_cast<double>(head_ii) / static_cast<double>(post_branch_ii);
    if (imbalance <= options.fifo_imbalance_warn) continue;

    std::string message =
        "exit head II (" + std::to_string(head_ii) +
        " cycles) exceeds the post-branch backbone II (" +
        std::to_string(post_branch_ii) + ") by " +
        std::to_string(imbalance).substr(0, 4) +
        "x; the duplicated stream backs up behind the branch and stalls the "
        "backbone once the FIFO fills";
    if (!sized.empty()) {
      const int head_module = path[head_start];
      for (const auto& req : sized) {
        if (req.producer == branch_index && req.consumer == head_module) {
          message += " (fifo_sizing: depth " +
                     std::to_string(req.depth_images) + " images, " +
                     std::to_string(req.bram) + " BRAM)";
          break;
        }
      }
    }
    report.add("R4", Severity::kWarning, module_site(acc, branch_index),
               message,
               "raise the exit head's PE/SIMD or provision the branch FIFO "
               "to the sized depth");
  }
}

/// R5: resource budget against the device profile.
void lint_resource_budget(const Accelerator& acc, const LintOptions& options,
                          LintReport& report) {
  const DeviceProfile& device = options.device;
  const std::string site = "device:" + device.name;
  struct Row {
    const char* name;
    long used;
    long cap;
  };
  const Row rows[] = {{"LUT", acc.total.lut, device.caps.lut},
                      {"FF", acc.total.ff, device.caps.ff},
                      {"BRAM18", acc.total.bram, device.caps.bram},
                      {"DSP", acc.total.dsp, device.caps.dsp}};
  for (const Row& row : rows) {
    if (row.used > row.cap) {
      report.add("R5", Severity::kError, site,
                 std::string(row.name) + " overflow: " +
                     std::to_string(row.used) + " > " +
                     std::to_string(row.cap),
                 "fold more tightly (smaller PE/SIMD) or prune channels");
    }
  }
  const double worst = device.worst_utilization(acc.total);
  if (device.fits(acc.total) && worst > options.budget_warn_fraction) {
    report.add("R5", Severity::kWarning, site,
               "design uses " + std::to_string(static_cast<int>(worst * 100)) +
                   "% of the scarcest resource",
               "leave headroom for FIFO sizing and routing");
  }
}

/// R7 (path half): every exit path must be a prefix-consistent extension of
/// the backbone path, diverging exactly at its Branch module, and every
/// module must be reachable from some output.
void lint_path_structure(const Accelerator& acc, LintReport& report) {
  if (acc.paths.size() != static_cast<std::size_t>(acc.num_exits) + 1) {
    report.add("R7", Severity::kError, "paths",
               "accelerator has " + std::to_string(acc.paths.size()) +
                   " paths for " + std::to_string(acc.num_exits) +
                   " exits + 1 final output",
               "emit one path per output (exits first, final last)");
    return;
  }
  const std::vector<int>& backbone = acc.paths.back();
  std::size_t prev_split = 0;
  for (int e = 0; e < acc.num_exits; ++e) {
    const auto& path = acc.paths[static_cast<std::size_t>(e)];
    const std::string site = "paths[" + std::to_string(e) + "]";
    std::size_t lcp = 0;
    while (lcp < path.size() && lcp < backbone.size() &&
           path[lcp] == backbone[lcp]) {
      ++lcp;
    }
    if (lcp == 0) {
      report.add("R7", Severity::kError, site,
                 "exit path shares no prefix with the backbone path",
                 "route every exit through the backbone up to its branch");
      continue;
    }
    const HlsModule& split =
        acc.modules[static_cast<std::size_t>(path[lcp - 1])];
    if (split.kind != HlsModuleKind::kBranch) {
      report.add("R7", Severity::kError, site,
                 "exit path diverges from the backbone after " + split.name +
                     ", which is not a Branch duplicator",
                 "insert a Branch module at the exit attachment point");
    }
    for (std::size_t i = lcp; i < path.size(); ++i) {
      const HlsModule& m = acc.modules[static_cast<std::size_t>(path[i])];
      if (m.exit_head != e) {
        report.add("R7", Severity::kError, site,
                   "module " + m.name +
                       " past the branch does not belong to exit head " +
                       std::to_string(e),
                   "exit paths may only append their own head modules");
        break;
      }
    }
    if (lcp < prev_split) {
      report.add("R7", Severity::kError, site,
                 "exit branch points are not monotonic along the backbone",
                 "order exits by attachment depth");
    }
    prev_split = lcp;
  }

  // Backbone exit_level must be non-decreasing (reach probabilities are
  // computed from it).
  int prev_level = 0;
  for (int mi : backbone) {
    const HlsModule& m = acc.modules[static_cast<std::size_t>(mi)];
    if (m.exit_level < prev_level) {
      report.add("R7", Severity::kError, m.name,
                 "backbone exit_level decreases along the pipeline (" +
                     std::to_string(m.exit_level) + " after " +
                     std::to_string(prev_level) + ")",
                 "recount upstream branch points");
    }
    prev_level = std::max(prev_level, m.exit_level);
  }

  std::vector<bool> reachable(acc.modules.size(), false);
  for (const auto& path : acc.paths) {
    for (int mi : path) reachable[static_cast<std::size_t>(mi)] = true;
  }
  for (std::size_t m = 0; m < acc.modules.size(); ++m) {
    if (!reachable[m]) {
      report.add("R7", Severity::kWarning, acc.modules[m].name,
                 "module is not on any output path (dead hardware)",
                 "remove the module or route an output through it");
    }
  }
}

}  // namespace

LintReport lint_accelerator(const Accelerator& acc,
                            const LintOptions& options) {
  LintReport report;
  if (acc.modules.empty()) {
    report.add("R7", Severity::kError, "accelerator",
               "accelerator has no modules", "compile a non-empty model");
    return report;
  }
  if (!lint_path_indices(acc, report)) return report;
  lint_stream_widths(acc, report);
  lint_fifo_hazards(acc, options, report);
  lint_resource_budget(acc, options, report);
  lint_path_structure(acc, report);
  if (options.dataflow_rules) {
    std::vector<double> fractions = options.exit_fractions;
    if (fractions.empty()) {
      fractions.assign(static_cast<std::size_t>(acc.num_exits) + 1,
                       1.0 / static_cast<double>(acc.num_exits + 1));
    }
    DataflowOptions dopts;
    dopts.device = options.device;
    report.merge(analyze_dataflow(acc, fractions, dopts).lint);
  }
  return report;
}

LintReport lint(BranchyModel& model, const FoldingConfig& folding,
                const AcceleratorConfig& config, const LintOptions& options) {
  LintReport report = lint_design(model, folding, config);
  if (report.has_errors()) return report;
  try {
    const Accelerator acc = compile_accelerator(model, folding, config);
    report.merge(lint_accelerator(acc, options));
  } catch (const Error& e) {
    // The design rules passed but compilation still failed: surface the
    // internal check as a structured finding rather than propagating.
    report.add("R2", Severity::kError, "compile", e.what(),
               "report this as a verifier coverage gap");
  }
  return report;
}

}  // namespace analysis
}  // namespace adapex
