// Reach-aware dataflow verifier: abstract interpretation over compiled
// Accelerator graphs.
//
// Under stream gating, only a fraction reach_m of the offered inputs ever
// performs work at module m (ATHEENA's observation: post-branch hardware
// only sees the traffic that survives every upstream exit). This pass
// propagates an exit distribution through the module tree and derives, per
// module and per link, static quantities the transaction-level simulator
// would otherwise have to measure:
//
//   - reach_m and the reach-scaled steady-state initiation interval
//     II = max_m cycles_m * reach_m (the sustainable input pace);
//   - FIFO occupancy *bounds* per link: a lower bound any correct sizing
//     must meet and an upper bound that proves a proposed depth sufficient
//     (interval arithmetic over per-module lag bounds, derivation in
//     DESIGN.md "Dataflow verification");
//   - deadlock/backpressure freedom of bounded-FIFO configurations via
//     cycle detection over the fork/join credit graph (the Branch
//     duplicator's synchronous write to both outputs is the hazard).
//
// Findings surface as structured Diagnostics extending the R1-R7 catalog:
//
//   R8  reach-consistency: exit-fraction arity/range/sum, and monotone
//       non-negative survival (partial sums vs. the branch structure).
//   R9  reach-scaled II feasibility: a post-branch module folded below its
//       gated arrival rate throttles the whole pipeline even though it
//       sees only reach_m of the traffic (the ATHEENA re-folding target).
//   R10 FIFO depth lower-bound violation: a proposed fifo_sizing plan
//       provisions a link below the static occupancy lower bound.
//   R11 bounded-FIFO deadlock freedom: the data/credit graph must be
//       acyclic and every bounded link at a Branch fork deep enough that
//       the synchronous duplicator cannot wedge its sibling subtree.
//   R12 reach-vs-Library drift: a Library entry's recorded exit fractions
//       and throughput must be consistent with the accelerator it was
//       priced against.
//   R13 duplicated-stream buffering cost: BRAM for branch-link FIFOs at
//       the proven-sufficient depth, statically, against the device budget
//       (before size_fifos ever runs).
//   R14 gated-throughput accounting: claimed cycles/ips/latency must match
//       the reach-weighted module model.
//
// cross_validate() is the agreement harness: it builds a deterministic
// evenly-spread stimulus realizing the exit distribution, runs
// simulate_pipeline twice (free-running for the measured II at the
// bottleneck, steady-paced for link occupancy — the same measurement path
// size_fifos uses), and asserts every static bound brackets the measured
// value: steady II within ii_rel_tol (default 1%), every link high-water
// mark inside [lower, upper]. generate_library() runs it behind
// LibraryGenSpec::verify_dataflow, adapex_lint behind --verify, and
// bench_verifier sweeps the CNV design space with it to report tightness.

#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "analysis/device.hpp"
#include "analysis/diagnostics.hpp"
#include "finn/accelerator.hpp"
#include "finn/fifo_sizing.hpp"
#include "finn/pipeline_sim.hpp"
#include "library/library.hpp"

namespace adapex {
namespace analysis {

/// Tuning knobs for one dataflow analysis.
struct DataflowOptions {
  /// R9 fires when a gated (reach < 1) module's cycles * reach exceeds the
  /// full-traffic front section's II by more than this factor.
  double bottleneck_slack = 1.25;
  /// Relative tolerance of the R12/R14 accounting comparisons.
  double accounting_rel_tol = 1e-6;
  /// Device whose BRAM budget R13 checks the buffering cost against.
  DeviceProfile device = DeviceProfile::zcu104();
  /// Optional proposed FIFO sizing plan; enables R10 and sharpens R11.
  const std::vector<FifoRequirement>* fifo_plan = nullptr;
};

/// Static occupancy bounds of one producer -> consumer link.
struct LinkBound {
  int producer = -1;  ///< Module index.
  int consumer = -1;
  /// Fraction of offered inputs that perform work at the consumer.
  double reach = 1.0;
  /// Any correct sizing must provision at least this many images.
  int occupancy_lower = 1;
  /// This many images provably suffices (no steady-state backpressure).
  int occupancy_upper = 1;
  /// BRAM18 cost of occupancy_upper at the link's stream width.
  long bram_upper = 0;
};

/// Everything one analysis derives.
struct DataflowReport {
  /// Survival probability before each output (reach_from_fractions).
  std::vector<double> reach;
  /// Gated traffic fraction per module.
  std::vector<double> module_reach;
  /// Reach-scaled steady-state initiation interval, cycles.
  double steady_ii_cycles = 0.0;
  /// II of the full-traffic (reach == 1) front section, cycles (R9 base).
  double front_ii_cycles = 0.0;
  /// Module whose cycles * reach is binding.
  int bottleneck_module = -1;
  /// Per-link occupancy bounds, one per module with a predecessor.
  std::vector<LinkBound> links;
  /// Aggregate BRAM of all link FIFOs at the proven-sufficient depth.
  long fifo_bram_upper = 0;
  /// R8-R14 findings.
  LintReport lint;
};

/// Runs the abstract-interpretation pass. `exit_fractions` has one entry
/// per output (exits then final; {1.0} for a no-exit design) — supplied by
/// the caller or taken from a Library entry's recorded exit distribution.
/// Never throws on a broken design: violations come back as diagnostics,
/// and bound/II fields are only meaningful when R8 left no errors.
DataflowReport analyze_dataflow(const Accelerator& acc,
                                const std::vector<double>& exit_fractions,
                                const DataflowOptions& options = {});

/// Deterministic, evenly-spread stimulus realizing `fractions` over
/// `num_images` images: per-output counts by largest remainder, assigned by
/// nested Bresenham selection so that every "survives past branch L" subset
/// is spread with bounded discrepancy — the steady-state arrival mix the
/// occupancy bounds assume.
std::vector<int> make_gated_stimulus(const std::vector<double>& fractions,
                                     std::size_t num_images);

/// R12: checks a Library entry against the accelerator it claims to be
/// priced on — exit-fraction consistency (via R8) and recorded ips vs. the
/// reach-scaled II of this accelerator. `throughput_factor` is the
/// mitigation derate the entry was taxed with (1.0 when none).
LintReport lint_entry_reach(const Accelerator& acc, const LibraryEntry& entry,
                            double throughput_factor = 1.0,
                            double rel_tol = 1e-6);

/// R14: checks a claimed performance estimate against the reach-weighted
/// module model (ips vs. fclk / gated II, latency vs. the fraction-weighted
/// per-path cycle sums).
LintReport lint_gated_throughput(const Accelerator& acc,
                                 const std::vector<double>& exit_fractions,
                                 const AcceleratorPerf& claimed,
                                 double rel_tol = 1e-6);

/// Agreement-harness knobs.
struct CrossValidateOptions {
  /// Maximum |static - measured| / measured steady-state II.
  double ii_rel_tol = 0.01;
  /// Stimulus length bounds; the harness sizes the stream from the static
  /// lag bounds so the measurement window dominates transients.
  std::size_t min_images = 512;
  std::size_t max_images = 60000;
  DataflowOptions dataflow;
};

/// One cross-validation outcome.
struct CrossValidation {
  bool passed = false;
  /// Static reach-scaled II (from the stimulus's realized fractions).
  double static_ii_cycles = 0.0;
  /// Measured: the bottleneck module's begin pace in a free-running,
  /// unbounded-FIFO simulation (its sustainable service rate).
  double measured_ii_cycles = 0.0;
  double ii_rel_err = 0.0;
  std::size_t num_images = 0;
  struct LinkCheck {
    int producer = -1;
    int consumer = -1;
    int measured_high_water = 0;
    int lower = 1;
    int upper = 1;
    bool ok = false;
  };
  std::vector<LinkCheck> links;
  /// Bracket violations as XV-rule diagnostics (plus any R8 findings that
  /// made the distribution unverifiable).
  LintReport lint;

  std::string summary() const;
};

/// Cross-validates the static model against the transaction-level
/// simulator on one (accelerator, exit distribution) pair.
CrossValidation cross_validate(const Accelerator& acc,
                               const std::vector<double>& exit_fractions,
                               const CrossValidateOptions& options = {});

}  // namespace analysis
}  // namespace adapex
