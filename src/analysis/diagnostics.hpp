// Structured diagnostics for the static design verifier.
//
// Every lint rule reports findings as Diagnostic values instead of aborting
// on the first violation (the ADAPEX_CHECK behaviour the verifier replaces):
// a rule identifier, a severity, the model/accelerator site the finding
// anchors to, a human-readable message, and a fix hint. A LintReport
// aggregates the findings of one verification run and offers severity
// filtering plus rendering helpers for CLI and error-path consumption.

#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace adapex {

class Json;

namespace analysis {

/// How bad a finding is.
enum class Severity {
  kInfo,     ///< Observation; no action required.
  kWarning,  ///< Legal design, but a hazard or inefficiency.
  kError,    ///< Illegal design point; synthesis/compilation must reject it.
};

const char* to_string(Severity severity);

/// One finding of one rule at one site.
struct Diagnostic {
  /// Stable rule identifier ("R1".."R7"; see lint.hpp for the catalog).
  std::string rule_id;
  Severity severity = Severity::kError;
  /// Where the finding anchors: a walk-order layer name
  /// ("backbone.b0.conv1"), a module name ("branch.exit0"), a link
  /// ("a -> b"), or a scope ("device", "folding", "model").
  std::string site;
  std::string message;
  /// Actionable suggestion ("use PE in {1,2,4,8}", "deepen the FIFO", ...).
  std::string fix_hint;

  /// One-line rendering: "R1 error @ backbone.b0.conv0: ... (hint)".
  std::string str() const;

  /// {"rule", "severity", "site", "message", "fix_hint"} object.
  Json to_json() const;
};

/// All findings of one lint run.
struct LintReport {
  std::vector<Diagnostic> diagnostics;

  void add(std::string rule_id, Severity severity, std::string site,
           std::string message, std::string fix_hint = "");

  bool has_errors() const { return count(Severity::kError) > 0; }
  bool empty() const { return diagnostics.empty(); }
  std::size_t count(Severity severity) const;

  /// Findings at or above `min_severity`, preserving report order.
  std::vector<Diagnostic> filtered(Severity min_severity) const;

  /// Appends another report's findings (rule helpers compose reports).
  void merge(LintReport other);

  /// "3 errors, 1 warning, 0 infos".
  std::string summary() const;

  /// Column-aligned table of all findings (empty string when clean).
  std::string format_table(Severity min_severity = Severity::kInfo) const;

  /// Machine-readable report: severity counts plus a diagnostics array,
  /// for CI gating through `adapex_lint --json`.
  Json to_json() const;

  /// Aggregated single-failure message listing every error-severity finding,
  /// for embedding in a thrown ConfigError. Empty when there are no errors.
  std::string error_message() const;
};

}  // namespace analysis
}  // namespace adapex
