// FPGA device resource profiles for budget linting.
//
// A DeviceProfile names a part and its resource caps in the same units the
// HLS cost models use (LUTs, flip-flops, BRAM18 blocks, DSP slices). The
// paper targets the ZCU104 evaluation board (XCZU7EV); additional profiles
// cover the neighbouring Zynq UltraScale+ parts so the lint CLI can answer
// "would this design fit elsewhere" without touching vendor tools.

#pragma once

#include <string>
#include <vector>

#include "hls/modules.hpp"

namespace adapex {
namespace analysis {

/// Resource caps of one FPGA part.
struct DeviceProfile {
  std::string name;
  Resources caps;

  /// True when `used` fits within every resource cap.
  bool fits(const Resources& used) const;

  /// Utilization fraction of the scarcest resource (>1 means overflow).
  double worst_utilization(const Resources& used) const;

  /// ZCU104 (XCZU7EV): the paper's target board.
  static DeviceProfile zcu104();
  /// Ultra96 (XCZU3EG): a smaller edge board, useful for overflow tests.
  static DeviceProfile ultra96();
  /// ZCU102 (XCZU9EG): a larger board.
  static DeviceProfile zcu102();

  /// Looks a profile up by name ("zcu104" | "ultra96" | "zcu102");
  /// throws ConfigError on an unknown name.
  static DeviceProfile by_name(const std::string& name);

  /// All built-in profiles.
  static std::vector<DeviceProfile> builtin();
};

}  // namespace analysis
}  // namespace adapex
