#include "analysis/device.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace adapex {
namespace analysis {

bool DeviceProfile::fits(const Resources& used) const {
  return used.lut <= caps.lut && used.ff <= caps.ff && used.bram <= caps.bram &&
         used.dsp <= caps.dsp;
}

double DeviceProfile::worst_utilization(const Resources& used) const {
  auto ratio = [](long u, long cap) {
    return cap > 0 ? static_cast<double>(u) / static_cast<double>(cap) : 0.0;
  };
  return std::max({ratio(used.lut, caps.lut), ratio(used.ff, caps.ff),
                   ratio(used.bram, caps.bram), ratio(used.dsp, caps.dsp)});
}

DeviceProfile DeviceProfile::zcu104() {
  // XCZU7EV: 230k LUTs, 461k FFs, 312 BRAM36 (= 624 BRAM18), 1728 DSP48.
  return DeviceProfile{"zcu104", Resources{230400, 460800, 624, 1728}};
}

DeviceProfile DeviceProfile::ultra96() {
  // XCZU3EG: 71k LUTs, 141k FFs, 216 BRAM18, 360 DSP48.
  return DeviceProfile{"ultra96", Resources{70560, 141120, 432, 360}};
}

DeviceProfile DeviceProfile::zcu102() {
  // XCZU9EG: 274k LUTs, 548k FFs, 912 BRAM36 (= 1824 BRAM18), 2520 DSP48.
  return DeviceProfile{"zcu102", Resources{274080, 548160, 1824, 2520}};
}

DeviceProfile DeviceProfile::by_name(const std::string& name) {
  for (auto& profile : builtin()) {
    if (profile.name == name) return profile;
  }
  throw ConfigError("unknown device profile: " + name +
                    " (expected zcu104|ultra96|zcu102)");
}

std::vector<DeviceProfile> DeviceProfile::builtin() {
  return {zcu104(), ultra96(), zcu102()};
}

}  // namespace analysis
}  // namespace adapex
