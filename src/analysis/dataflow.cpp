#include "analysis/dataflow.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <numeric>
#include <sstream>

#include "common/error.hpp"

namespace adapex {
namespace analysis {

namespace {

constexpr double kReachEps = 1e-12;

/// The branch level whose survival probability gates module `m` (mirrors
/// module_touches: exit heads are gated by their branch point, backbone
/// modules by their exit level).
int gate_level(const HlsModule& m) {
  return m.exit_head >= 0 ? m.exit_head : m.exit_level;
}

double reach_at(const std::vector<double>& reach, int level) {
  if (level < 0) return 0.0;
  return level < static_cast<int>(reach.size())
             ? reach[static_cast<std::size_t>(level)]
             : 0.0;
}

std::string link_site(const Accelerator& acc, int producer, int consumer) {
  return acc.modules[static_cast<std::size_t>(producer)].name + " -> " +
         acc.modules[static_cast<std::size_t>(consumer)].name;
}

std::string fmt(double v) {
  std::ostringstream os;
  os << v;
  return os.str();
}

/// R8: the exit distribution itself. Arity against the branch structure,
/// range and finiteness per fraction, unit sum, and non-negative survival
/// at every branch level (the partial sums may never exceed 1, or some
/// reach_m would be negative).
LintReport check_fractions(const Accelerator& acc,
                           const std::vector<double>& fractions) {
  LintReport report;
  const int outputs = acc.num_exits + 1;
  if (static_cast<int>(fractions.size()) != outputs) {
    report.add("R8", Severity::kError, "fractions",
               "exit distribution has " + std::to_string(fractions.size()) +
                   " entries but the accelerator has " +
                   std::to_string(outputs) + " outputs",
               "pass one fraction per output (exits in order, then final)");
    return report;
  }
  bool finite = true;
  for (std::size_t e = 0; e < fractions.size(); ++e) {
    const double f = fractions[e];
    if (!std::isfinite(f) || f < -1e-9 || f > 1.0 + 1e-9) {
      report.add("R8", Severity::kError, "fractions",
                 "fraction of output " + std::to_string(e) + " is " + fmt(f) +
                     ", outside [0, 1]",
                 "exit fractions are probabilities");
      finite = finite && std::isfinite(f);
    }
  }
  double sum = 0.0;
  for (double f : fractions) sum += f;
  if (!std::isfinite(sum) || std::abs(sum - 1.0) > 1e-6) {
    report.add("R8", Severity::kError, "fractions",
               "exit fractions sum to " + fmt(sum) + ", expected 1",
               "normalize the measured exit distribution");
  }
  if (finite) {
    // Monotone survival: reach[L] = 1 - sum(fractions[0..L-1]) must stay
    // non-negative (equivalently, every partial sum stays <= 1).
    double prefix = 0.0;
    for (int level = 0; level < acc.num_exits; ++level) {
      prefix += fractions[static_cast<std::size_t>(level)];
      if (prefix > 1.0 + 1e-9) {
        report.add(
            "R8", Severity::kError, "fractions",
            "survival past branch " + std::to_string(level) + " is " +
                fmt(1.0 - prefix) + " (exit fractions over-count the stream)",
            "fractions up to each branch point may sum to at most 1");
      }
    }
  }
  return report;
}

/// R11 (structural half): rebuilds the producer -> consumer link graph from
/// the paths defensively — hand-built fixtures may carry corrupt paths the
/// shared helpers in finn/ are entitled to assert on. Reports out-of-range
/// indices, joins (two producers into one module), self-loops, and cycles.
/// Returns false when the graph is too broken for bound computation.
bool build_link_graph(const Accelerator& acc,
                      std::vector<std::pair<int, int>>* links,
                      std::vector<int>* pred, LintReport* report) {
  const int num_modules = static_cast<int>(acc.modules.size());
  if (num_modules == 0 ||
      acc.paths.size() != static_cast<std::size_t>(acc.num_exits + 1)) {
    report->add("R11", Severity::kError, "accelerator",
                "accelerator has " + std::to_string(acc.paths.size()) +
                    " paths for " + std::to_string(acc.num_exits + 1) +
                    " outputs",
                "compile_accelerator emits one path per output");
    return false;
  }
  pred->assign(static_cast<std::size_t>(num_modules), -1);
  bool ok = true;
  for (std::size_t e = 0; e < acc.paths.size(); ++e) {
    const auto& path = acc.paths[e];
    if (path.empty()) {
      report->add("R11", Severity::kError, "path " + std::to_string(e),
                  "output path is empty", "every output needs a module path");
      ok = false;
      continue;
    }
    for (int mi : path) {
      if (mi < 0 || mi >= num_modules) {
        report->add("R11", Severity::kError, "path " + std::to_string(e),
                    "path references module index " + std::to_string(mi),
                    "path indices must name compiled modules");
        ok = false;
      }
    }
    if (!ok) continue;
    for (std::size_t i = 1; i < path.size(); ++i) {
      const int p = path[i - 1];
      const int c = path[i];
      if (p == c) {
        report->add("R11", Severity::kError,
                    acc.modules[static_cast<std::size_t>(c)].name,
                    "self-loop in the module graph",
                    "a module cannot stream to itself");
        ok = false;
        continue;
      }
      int& existing = (*pred)[static_cast<std::size_t>(c)];
      if (existing == p) continue;  // shared backbone prefix
      if (existing >= 0) {
        report->add("R11", Severity::kError,
                    acc.modules[static_cast<std::size_t>(c)].name,
                    "module has two producers (" +
                        acc.modules[static_cast<std::size_t>(existing)].name +
                        " and " +
                        acc.modules[static_cast<std::size_t>(p)].name +
                        "); the stream graph must be a fork tree",
                    "joins need an explicit merge module");
        ok = false;
        continue;
      }
      existing = p;
      links->emplace_back(p, c);
    }
  }
  if (!ok) return false;
  // Cycle check over the predecessor chains: in a tree every walk to the
  // source terminates in at most num_modules steps. A cycle here is the
  // credit-graph deadlock hazard — bounded FIFOs on a cyclic data path can
  // all fill and wedge.
  for (int m = 0; m < num_modules; ++m) {
    int cursor = m;
    int steps = 0;
    while (cursor >= 0 && steps <= num_modules) {
      cursor = (*pred)[static_cast<std::size_t>(cursor)];
      ++steps;
    }
    if (cursor >= 0) {
      report->add("R11", Severity::kError,
                  acc.modules[static_cast<std::size_t>(m)].name,
                  "cycle in the module stream graph: bounded FIFOs on this "
                  "loop can fill and deadlock the pipeline",
                  "break the cycle; dataflow graphs must be acyclic");
      return false;
    }
  }
  return true;
}

}  // namespace

DataflowReport analyze_dataflow(const Accelerator& acc,
                                const std::vector<double>& exit_fractions,
                                const DataflowOptions& options) {
  DataflowReport rep;
  rep.lint.merge(check_fractions(acc, exit_fractions));
  if (rep.lint.has_errors()) return rep;

  std::vector<std::pair<int, int>> links;
  std::vector<int> pred;
  if (!build_link_graph(acc, &links, &pred, &rep.lint)) return rep;

  rep.reach = reach_from_fractions(exit_fractions);
  rep.module_reach.resize(acc.modules.size());
  for (std::size_t m = 0; m < acc.modules.size(); ++m) {
    rep.module_reach[m] = reach_at(rep.reach, gate_level(acc.modules[m]));
  }

  // Reach-scaled steady-state II and the full-traffic front II (R9 base).
  rep.steady_ii_cycles = gated_steady_ii(acc, exit_fractions,
                                         &rep.bottleneck_module);
  rep.front_ii_cycles = 0.0;
  for (std::size_t m = 0; m < acc.modules.size(); ++m) {
    if (rep.module_reach[m] >= 1.0 - kReachEps) {
      rep.front_ii_cycles = std::max(
          rep.front_ii_cycles, static_cast<double>(acc.modules[m].cycles));
    }
  }
  if (rep.steady_ii_cycles <= 0.0) {
    rep.lint.add("R9", Severity::kError, "accelerator",
                 "degenerate accelerator: no module performs work under this "
                 "exit distribution",
                 "at least one reachable module needs nonzero cycles");
    return rep;
  }
  const double t = rep.steady_ii_cycles;

  // Per-module lag bound: lag(m) = sum of cycles_u * (gate_level_u + 1)
  // along the source..m path. With injection paced at the gated II and an
  // evenly spread stimulus, module m finishes image i no later than
  // i * II + lag(m) (derivation in DESIGN.md "Dataflow verification").
  std::vector<double> lag(acc.modules.size(), 0.0);
  // pred[] points upstream, so a forward pass in link order (producers
  // always appear before their consumers on some path prefix) needs a
  // topological order; walking each chain memoized is simpler and linear.
  std::vector<char> lag_done(acc.modules.size(), 0);
  std::function<double(int)> lag_of = [&](int m) -> double {
    const std::size_t mi = static_cast<std::size_t>(m);
    if (lag_done[mi]) return lag[mi];
    const double own =
        static_cast<double>(acc.modules[mi].cycles) *
        static_cast<double>(gate_level(acc.modules[mi]) + 1);
    lag[mi] = own + (pred[mi] >= 0 ? lag_of(pred[mi]) : 0.0);
    lag_done[mi] = 1;
    return lag[mi];
  };

  rep.links.reserve(links.size());
  rep.fifo_bram_upper = 0;
  long branch_bram = 0;
  for (const auto& pc : links) {
    const int p = pc.first;
    const int c = pc.second;
    LinkBound lb;
    lb.producer = p;
    lb.consumer = c;
    lb.reach = rep.module_reach[static_cast<std::size_t>(c)];
    const double cons_cycles =
        static_cast<double>(acc.modules[static_cast<std::size_t>(c)].cycles);
    // Upper bound: arrivals are paced at >= II apart, departures lag by at
    // most lag(consumer); at most 2 + ceil(lag(c)/II) images can be resident.
    lb.occupancy_upper =
        2 + static_cast<int>(std::ceil(lag_of(c) / t - 1e-9));
    // Lower bound: while the consumer serves one touched image (cycles_c
    // long), at least floor((cycles_c - lag(p))/II) further images arrive
    // behind it — any correct sizing must hold them.
    lb.occupancy_lower = 1;
    if (lb.reach > kReachEps) {
      const double backlog = (cons_cycles - lag_of(p)) / t - 1e-9;
      lb.occupancy_lower =
          std::max(1, static_cast<int>(std::floor(backlog)));
    }
    lb.occupancy_lower = std::min(lb.occupancy_lower, lb.occupancy_upper);
    lb.bram_upper = fifo_bram_for(acc, p, lb.occupancy_upper);
    rep.fifo_bram_upper += lb.bram_upper;
    if (acc.modules[static_cast<std::size_t>(p)].kind ==
        HlsModuleKind::kBranch) {
      branch_bram += lb.bram_upper;
    }
    rep.links.push_back(lb);
  }

  // R9: a gated module folded below its gated arrival rate throttles the
  // whole pipeline — the paper's re-folding target. The slack factor keeps
  // the rule quiet on designs that deliberately put the bottleneck after
  // the branch (the styled CNV points do).
  for (std::size_t m = 0; m < acc.modules.size(); ++m) {
    const double r = rep.module_reach[m];
    if (r >= 1.0 - kReachEps) continue;
    const double gated = static_cast<double>(acc.modules[m].cycles) * r;
    if (rep.front_ii_cycles > 0.0 &&
        gated > options.bottleneck_slack * rep.front_ii_cycles) {
      rep.lint.add(
          "R9", Severity::kWarning, acc.modules[m].name,
          "gated II " + fmt(gated) + " cycles (cycles " +
              std::to_string(acc.modules[m].cycles) + " x reach " + fmt(r) +
              ") exceeds the full-traffic front II of " +
              fmt(rep.front_ii_cycles) + " cycles by more than " +
              fmt(options.bottleneck_slack) + "x",
          "unfold this module (more PE/SIMD): it throttles the pipeline "
          "despite seeing only part of the traffic");
    }
  }

  // R10 / R11 (plan half): check a proposed sizing plan against the bounds.
  if (options.fifo_plan != nullptr) {
    for (const LinkBound& lb : rep.links) {
      const FifoRequirement* plan = nullptr;
      for (const FifoRequirement& req : *options.fifo_plan) {
        if (req.producer == lb.producer && req.consumer == lb.consumer) {
          plan = &req;
          break;
        }
      }
      const std::string site = link_site(acc, lb.producer, lb.consumer);
      if (plan == nullptr) {
        rep.lint.add("R10", Severity::kError, site,
                     "sizing plan provisions no FIFO on this link",
                     "every producer -> consumer link needs a depth");
        continue;
      }
      if (plan->depth_images < 1) {
        rep.lint.add("R11", Severity::kError, site,
                     "planned depth " + std::to_string(plan->depth_images) +
                         " cannot hold a single image: the Branch "
                         "duplicator's synchronous write wedges immediately",
                     "provision at least one image per link");
        continue;
      }
      if (plan->depth_images < lb.occupancy_lower) {
        rep.lint.add("R10", Severity::kError, site,
                     "planned depth " + std::to_string(plan->depth_images) +
                         " is below the static occupancy lower bound " +
                         std::to_string(lb.occupancy_lower),
                     "deepen the FIFO to at least the lower bound");
      } else if (acc.modules[static_cast<std::size_t>(lb.producer)].kind ==
                     HlsModuleKind::kBranch &&
                 plan->depth_images < lb.occupancy_upper) {
        rep.lint.add(
            "R11", Severity::kWarning, site,
            "branch-side depth " + std::to_string(plan->depth_images) +
                " is below the proven-sufficient bound " +
                std::to_string(lb.occupancy_upper) +
                ": the duplicator stalls its sibling subtree whenever this "
                "FIFO fills",
            "deepen to the upper bound to prove backpressure freedom");
      }
    }
  }

  // R13: the duplicated-stream buffering cost, statically. The upper
  // bounds prove a sufficient provisioning, so their BRAM total is what an
  // eager designer would have to budget before size_fifos ever runs.
  const long total_bram = acc.total.bram + rep.fifo_bram_upper;
  if (total_bram > options.device.caps.bram) {
    rep.lint.add(
        "R13", Severity::kWarning, "device " + options.device.name,
        "accelerator BRAM " + std::to_string(acc.total.bram) +
            " plus proven-sufficient FIFO buffering " +
            std::to_string(rep.fifo_bram_upper) + " (branch links: " +
            std::to_string(branch_bram) + ") exceeds the device cap " +
            std::to_string(options.device.caps.bram),
        "shrink the duplicated-stream FIFOs (re-fold the exit heads) or "
        "target a larger part");
  } else {
    rep.lint.add(
        "R13", Severity::kInfo, "device " + options.device.name,
        "FIFO buffering upper bound " + std::to_string(rep.fifo_bram_upper) +
            " BRAM (branch links: " + std::to_string(branch_bram) +
            "); accelerator total with FIFOs " + std::to_string(total_bram) +
            " of " + std::to_string(options.device.caps.bram));
  }

  // R14: the analytical performance model must agree with the
  // reach-weighted account this pass computes. On compiled accelerators the
  // two share their formulas; divergence means the gating metadata
  // (exit_level vs exit_head) is inconsistent.
  try {
    const AcceleratorPerf perf =
        estimate_performance(acc, exit_fractions, PowerModel{});
    rep.lint.merge(lint_gated_throughput(acc, exit_fractions, perf,
                                         options.accounting_rel_tol));
  } catch (const Error& e) {
    rep.lint.add("R14", Severity::kError, "accelerator",
                 std::string("analytical performance model rejected the "
                             "design: ") +
                     e.what(),
                 "fix the module metadata so estimate_performance accepts "
                 "the distribution");
  }

  return rep;
}

std::vector<int> make_gated_stimulus(const std::vector<double>& fractions,
                                     std::size_t num_images) {
  ADAPEX_CHECK(num_images > 0, "stimulus needs at least one image");
  ADAPEX_CHECK(!fractions.empty(), "need at least one exit fraction");
  double sum = 0.0;
  for (double f : fractions) {
    ADAPEX_CHECK(std::isfinite(f) && f >= -1e-9, "bad exit fraction");
    sum += f;
  }
  ADAPEX_CHECK(std::abs(sum - 1.0) < 1e-6, "exit fractions must sum to 1");

  const std::size_t outputs = fractions.size();
  // Largest-remainder apportionment of the per-output counts.
  std::vector<std::size_t> count(outputs, 0);
  std::vector<std::pair<double, std::size_t>> remainder(outputs);
  std::size_t assigned = 0;
  for (std::size_t e = 0; e < outputs; ++e) {
    const double ideal =
        std::max(0.0, fractions[e]) * static_cast<double>(num_images);
    count[e] = static_cast<std::size_t>(std::floor(ideal));
    assigned += count[e];
    remainder[e] = {count[e] - ideal, e};  // ascending = largest remainder
  }
  std::sort(remainder.begin(), remainder.end());
  for (std::size_t k = 0; assigned < num_images; ++k) {
    count[remainder[k % outputs].second] += 1;
    assigned += 1;
  }

  // Nested Bresenham survivor selection: at each branch level, spread the
  // images that survive evenly over the current survivor list, so every
  // "survives past level L" subset has bounded discrepancy in any window —
  // the arrival mix the static occupancy bounds assume.
  std::vector<int> exit_of(num_images, static_cast<int>(outputs) - 1);
  std::vector<std::size_t> survivors(num_images);
  std::iota(survivors.begin(), survivors.end(), std::size_t{0});
  for (std::size_t level = 0; level + 1 < outputs; ++level) {
    const unsigned long long total = survivors.size();
    unsigned long long take = 0;
    for (std::size_t e = level + 1; e < outputs; ++e) take += count[e];
    std::vector<std::size_t> next;
    next.reserve(static_cast<std::size_t>(take));
    for (unsigned long long j = 0; j < total; ++j) {
      const bool advances = ((j + 1) * take) / total > (j * take) / total;
      if (advances) {
        next.push_back(survivors[static_cast<std::size_t>(j)]);
      } else {
        exit_of[survivors[static_cast<std::size_t>(j)]] =
            static_cast<int>(level);
      }
    }
    survivors = std::move(next);
  }
  return exit_of;
}

LintReport lint_entry_reach(const Accelerator& acc, const LibraryEntry& entry,
                            double throughput_factor, double rel_tol) {
  LintReport report = check_fractions(acc, entry.exit_fractions);
  if (report.has_errors()) return report;
  const double ii = gated_steady_ii(acc, entry.exit_fractions);
  if (ii <= 0.0) {
    report.add("R12", Severity::kError, "entry " + std::to_string(entry.accel_id),
               "degenerate accelerator under the entry's exit distribution",
               "");
    return report;
  }
  const double expected_ips = acc.fclk_hz() / ii * throughput_factor;
  const double err =
      std::abs(entry.ips - expected_ips) / std::max(expected_ips, 1e-12);
  if (err > rel_tol) {
    report.add(
        "R12", Severity::kError, "entry " + std::to_string(entry.accel_id),
        "recorded throughput " + fmt(entry.ips) +
            " ips drifts from the reach-scaled model " + fmt(expected_ips) +
            " ips (rel err " + fmt(err) + ")",
        "regenerate the library entry against this accelerator");
  }
  return report;
}

LintReport lint_gated_throughput(const Accelerator& acc,
                                 const std::vector<double>& exit_fractions,
                                 const AcceleratorPerf& claimed,
                                 double rel_tol) {
  LintReport report = check_fractions(acc, exit_fractions);
  if (report.has_errors()) return report;

  const double ii = gated_steady_ii(acc, exit_fractions);
  if (ii <= 0.0) {
    report.add("R14", Severity::kError, "accelerator",
               "degenerate accelerator (no gated work)", "");
    return report;
  }
  const double expected_ips = acc.fclk_hz() / ii;
  const double ips_err =
      std::abs(claimed.ips - expected_ips) / std::max(expected_ips, 1e-12);
  if (ips_err > rel_tol) {
    report.add("R14", Severity::kError, "accelerator",
               "claimed throughput " + fmt(claimed.ips) +
                   " ips does not match the reach-weighted model " +
                   fmt(expected_ips) + " ips (rel err " + fmt(ips_err) + ")",
               "gating metadata (exit_level/exit_head) and the claimed "
               "performance disagree");
  }

  // Fraction-weighted analytical latency, computed exactly as the
  // performance model does so agreement is bitwise on compiled designs.
  if (acc.paths.size() == exit_fractions.size()) {
    double latency_ms = 0.0;
    for (std::size_t e = 0; e < acc.paths.size(); ++e) {
      double cycles = 0.0;
      for (int mi : acc.paths[e]) {
        cycles += static_cast<double>(
            acc.modules[static_cast<std::size_t>(mi)].cycles);
      }
      latency_ms += exit_fractions[e] * (cycles / acc.fclk_hz() * 1e3);
    }
    const double lat_err = std::abs(claimed.latency_ms - latency_ms) /
                           std::max(latency_ms, 1e-12);
    if (lat_err > rel_tol) {
      report.add("R14", Severity::kError, "accelerator",
                 "claimed latency " + fmt(claimed.latency_ms) +
                     " ms does not match the fraction-weighted path model " +
                     fmt(latency_ms) + " ms (rel err " + fmt(lat_err) + ")",
                 "gated-throughput accounting drift");
    }
  }
  return report;
}

std::string CrossValidation::summary() const {
  std::ostringstream os;
  os << "cross-validation " << (passed ? "PASSED" : "FAILED") << ": static II "
     << static_ii_cycles << " vs measured " << measured_ii_cycles
     << " cycles (rel err " << ii_rel_err << ") over " << num_images
     << " images; ";
  std::size_t ok = 0;
  for (const auto& l : links) ok += l.ok ? 1 : 0;
  os << ok << "/" << links.size() << " links inside occupancy bounds";
  return os.str();
}

CrossValidation cross_validate(const Accelerator& acc,
                               const std::vector<double>& exit_fractions,
                               const CrossValidateOptions& options) {
  CrossValidation cv;

  // Gate on the static pass: a distribution R8 rejects (or a corrupt
  // graph) is not verifiable against simulation.
  DataflowReport ideal = analyze_dataflow(acc, exit_fractions,
                                          options.dataflow);
  if (ideal.lint.has_errors()) {
    cv.lint = std::move(ideal.lint);
    return cv;
  }

  // Size the stream so the steady-state window dominates both the fill
  // transient (lag) and the stimulus discrepancy at the 1% II tolerance.
  double lag_proxy = 0.0;
  double max_cycles = 0.0;
  for (const auto& m : acc.modules) {
    lag_proxy += static_cast<double>(m.cycles) *
                 static_cast<double>(gate_level(m) + 1);
    max_cycles = std::max(max_cycles, static_cast<double>(m.cycles));
  }
  const double t_ideal = ideal.steady_ii_cycles;
  double want = 400.0 * (lag_proxy +
                         static_cast<double>(acc.num_exits + 2) * max_cycles) /
                t_ideal;
  int max_lower = 0;
  for (const auto& lb : ideal.links) {
    max_lower = std::max(max_lower, lb.occupancy_lower);
  }
  want = std::max(want, 4.0 * static_cast<double>(max_lower +
                                                  static_cast<int>(
                                                      acc.modules.size()) +
                                                  64));
  std::size_t n = static_cast<std::size_t>(std::ceil(
      std::max(want, static_cast<double>(options.min_images))));
  n = std::min(std::max(n, options.min_images), options.max_images);
  cv.num_images = n;

  const std::vector<int> stimulus = make_gated_stimulus(exit_fractions, n);
  const std::vector<double> realized = realized_fractions(acc, stimulus);

  // Bounds from the *realized* fractions: the simulator sees the quantized
  // stream, so the static model must be evaluated on the same mix.
  DataflowReport rep = analyze_dataflow(acc, realized, options.dataflow);
  if (rep.lint.has_errors()) {
    cv.lint = std::move(rep.lint);
    return cv;
  }
  cv.static_ii_cycles = rep.steady_ii_cycles;

  // Measurement 1 — free run: unbounded FIFOs, back-to-back source. The
  // statically predicted bottleneck saturates, so its begin pace is the
  // measured sustainable II (sensitive to both over- and under-estimation).
  PipelineSimOptions free_run;
  free_run.injection_interval_cycles = 0.0;
  free_run.fifo_depth = 0;
  free_run.record_link_occupancy = false;
  const PipelineSimResult free_sim = simulate_pipeline(acc, stimulus, free_run);
  cv.measured_ii_cycles =
      free_sim
          .module_begin_ii_cycles[static_cast<std::size_t>(
              rep.bottleneck_module)];
  cv.ii_rel_err = std::abs(cv.static_ii_cycles - cv.measured_ii_cycles) /
                  std::max(cv.measured_ii_cycles, 1e-12);
  if (cv.ii_rel_err > options.ii_rel_tol) {
    cv.lint.add(
        "XV", Severity::kError,
        acc.modules[static_cast<std::size_t>(rep.bottleneck_module)].name,
        "static II " + fmt(cv.static_ii_cycles) +
            " disagrees with measured II " + fmt(cv.measured_ii_cycles) +
            " cycles (rel err " + fmt(cv.ii_rel_err) + " > " +
            fmt(options.ii_rel_tol) + ")",
        "the reach-scaled II model and the simulator diverge");
  }

  // Measurement 2 — paced run at the static II with unbounded FIFOs: the
  // same measurement path size_fifos provisions from. Every link's
  // high-water mark must land inside [lower, upper].
  PipelineSimOptions paced;
  paced.injection_interval_cycles = std::max(cv.static_ii_cycles, 1.0);
  paced.fifo_depth = 0;
  paced.record_link_occupancy = true;
  const PipelineSimResult paced_sim = simulate_pipeline(acc, stimulus, paced);

  cv.links.reserve(rep.links.size());
  for (const LinkBound& lb : rep.links) {
    CrossValidation::LinkCheck check;
    check.producer = lb.producer;
    check.consumer = lb.consumer;
    check.lower = lb.occupancy_lower;
    check.upper = lb.occupancy_upper;
    check.measured_high_water = -1;
    for (const LinkOccupancy& occ : paced_sim.links) {
      if (occ.producer == lb.producer && occ.consumer == lb.consumer) {
        check.measured_high_water = occ.high_water_images;
        break;
      }
    }
    check.ok = check.measured_high_water >= check.lower &&
               check.measured_high_water <= check.upper;
    if (!check.ok) {
      cv.lint.add("XV", Severity::kError,
                  link_site(acc, lb.producer, lb.consumer),
                  "measured high-water mark " +
                      std::to_string(check.measured_high_water) +
                      " images outside static bounds [" +
                      std::to_string(check.lower) + ", " +
                      std::to_string(check.upper) + "]",
                  "occupancy bound derivation and simulator diverge");
    }
    cv.links.push_back(check);
  }

  cv.passed = !cv.lint.has_errors();
  return cv;
}

}  // namespace analysis
}  // namespace adapex
