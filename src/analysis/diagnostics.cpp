#include "analysis/diagnostics.hpp"

#include "common/json.hpp"
#include "common/table.hpp"

namespace adapex {
namespace analysis {

const char* to_string(Severity severity) {
  switch (severity) {
    case Severity::kInfo: return "info";
    case Severity::kWarning: return "warning";
    case Severity::kError: return "error";
  }
  return "?";
}

std::string Diagnostic::str() const {
  std::string s = rule_id + " " + to_string(severity) + " @ " + site + ": " +
                  message;
  if (!fix_hint.empty()) s += " (" + fix_hint + ")";
  return s;
}

void LintReport::add(std::string rule_id, Severity severity, std::string site,
                     std::string message, std::string fix_hint) {
  diagnostics.push_back(Diagnostic{std::move(rule_id), severity,
                                   std::move(site), std::move(message),
                                   std::move(fix_hint)});
}

std::size_t LintReport::count(Severity severity) const {
  std::size_t n = 0;
  for (const auto& d : diagnostics) {
    if (d.severity == severity) ++n;
  }
  return n;
}

std::vector<Diagnostic> LintReport::filtered(Severity min_severity) const {
  std::vector<Diagnostic> out;
  for (const auto& d : diagnostics) {
    if (static_cast<int>(d.severity) >= static_cast<int>(min_severity)) {
      out.push_back(d);
    }
  }
  return out;
}

void LintReport::merge(LintReport other) {
  for (auto& d : other.diagnostics) diagnostics.push_back(std::move(d));
}

std::string LintReport::summary() const {
  const std::size_t errors = count(Severity::kError);
  const std::size_t warnings = count(Severity::kWarning);
  const std::size_t infos = count(Severity::kInfo);
  auto plural = [](std::size_t n, const char* noun) {
    return std::to_string(n) + " " + noun + (n == 1 ? "" : "s");
  };
  return plural(errors, "error") + ", " + plural(warnings, "warning") + ", " +
         plural(infos, "info");
}

std::string LintReport::format_table(Severity min_severity) const {
  const auto shown = filtered(min_severity);
  if (shown.empty()) return "";
  TextTable table({"rule", "severity", "site", "message", "fix hint"});
  for (const auto& d : shown) {
    table.add_row({d.rule_id, to_string(d.severity), d.site, d.message,
                   d.fix_hint.empty() ? "-" : d.fix_hint});
  }
  return table.str();
}

Json Diagnostic::to_json() const {
  Json j = Json::object();
  j["rule"] = rule_id;
  j["severity"] = to_string(severity);
  j["site"] = site;
  j["message"] = message;
  if (!fix_hint.empty()) j["fix_hint"] = fix_hint;
  return j;
}

Json LintReport::to_json() const {
  Json j = Json::object();
  j["errors"] = count(Severity::kError);
  j["warnings"] = count(Severity::kWarning);
  j["infos"] = count(Severity::kInfo);
  Json list = Json::array();
  for (const auto& d : diagnostics) list.push_back(d.to_json());
  j["diagnostics"] = std::move(list);
  return j;
}

std::string LintReport::error_message() const {
  const auto errors = filtered(Severity::kError);
  if (errors.empty()) return "";
  std::string msg = "design verification failed with " +
                    std::to_string(errors.size()) + " violation" +
                    (errors.size() == 1 ? "" : "s") + ":";
  for (const auto& d : errors) msg += "\n  " + d.str();
  return msg;
}

}  // namespace analysis
}  // namespace adapex
