// Design-level lint rules: everything checkable on the (model, folding,
// config) triple before an Accelerator exists. The shape walk here mirrors
// model/walk.cpp but recovers after each violation instead of throwing, so
// one run reports every problem in the design.

#include <cmath>
#include <string>
#include <vector>

#include "analysis/lint.hpp"
#include "tensor/ops.hpp"

namespace adapex {
namespace analysis {

namespace {

/// Activation geometry tracked during the lenient shape walk.
struct ShapeState {
  int channels = 0;
  int dim = 0;
  int features = 0;
  bool flattened = false;
};

/// Walks one Sequential, appending every conv/fc site (with best-effort
/// geometry) and reporting R2 violations. Naming matches model/walk.cpp so
/// findings anchor to the same identifiers folding configs use.
void walk_lenient(Sequential& seq, SiteLoc loc, int group,
                  const std::string& prefix, ShapeState& state,
                  std::vector<LayerSite>& sites, LintReport& report) {
  int conv_count = 0, fc_count = 0;
  for (std::size_t i = 0; i < seq.size(); ++i) {
    Layer& layer = seq.layer(i);
    switch (layer.kind()) {
      case LayerKind::kConv: {
        auto& conv = static_cast<QuantConv2d&>(layer);
        const std::string name = prefix + ".conv" + std::to_string(conv_count++);
        if (state.flattened) {
          report.add("R2", Severity::kError, name,
                     "conv applied to a flattened activation",
                     "move the conv before Flatten or drop the Flatten");
        } else if (conv.in_channels() != state.channels) {
          report.add("R2", Severity::kError, name,
                     "conv expects " + std::to_string(conv.in_channels()) +
                         " input channels but the incoming activation has " +
                         std::to_string(state.channels),
                     "match the conv's in_channels to its producer");
        }
        const int out_dim =
            state.dim >= conv.kernel() && !state.flattened
                ? ops::out_dim(state.dim, conv.kernel(), 1)
                : 0;
        if (!state.flattened && out_dim <= 0) {
          report.add("R2", Severity::kError, name,
                     "kernel " + std::to_string(conv.kernel()) +
                         " does not fit the " + std::to_string(state.dim) +
                         "x" + std::to_string(state.dim) + " feature map",
                     "reduce pooling upstream or shrink the kernel");
        }
        LayerSite site;
        site.loc = loc;
        site.group = group;
        site.layer_index = static_cast<int>(i);
        site.layer = &layer;
        site.container = &seq;
        site.is_conv = true;
        site.in_channels = conv.in_channels();
        site.out_channels = conv.out_channels();
        site.kernel = conv.kernel();
        site.in_dim = state.dim;
        site.out_dim = out_dim;
        site.name = name;
        sites.push_back(site);
        // Recover with the layer's declared geometry.
        state.channels = conv.out_channels();
        state.dim = out_dim;
        break;
      }
      case LayerKind::kLinear: {
        auto& fc = static_cast<QuantLinear&>(layer);
        const std::string name = prefix + ".fc" + std::to_string(fc_count++);
        if (!state.flattened) {
          report.add("R2", Severity::kError, name,
                     "fully-connected layer fed an unflattened activation",
                     "insert a Flatten before the first fc layer");
        } else if (fc.in_features() != state.features) {
          report.add("R2", Severity::kError, name,
                     "fc expects " + std::to_string(fc.in_features()) +
                         " input features but the incoming activation has " +
                         std::to_string(state.features),
                     "match the fc's in_features to its producer");
        }
        LayerSite site;
        site.loc = loc;
        site.group = group;
        site.layer_index = static_cast<int>(i);
        site.layer = &layer;
        site.container = &seq;
        site.is_conv = false;
        site.in_channels = fc.in_features();
        site.out_channels = fc.out_features();
        site.name = name;
        sites.push_back(site);
        state.features = fc.out_features();
        state.flattened = true;
        break;
      }
      case LayerKind::kMaxPool: {
        auto& pool = static_cast<MaxPool2d&>(layer);
        const std::string name = prefix + "." + std::to_string(i) + ".pool";
        if (state.flattened) {
          report.add("R2", Severity::kError, name,
                     "max-pool applied to a flattened activation",
                     "move the pool before Flatten");
          break;
        }
        const int out_dim =
            state.dim >= pool.kernel()
                ? ops::out_dim(state.dim, pool.kernel(), pool.stride())
                : 0;
        if (out_dim <= 0) {
          report.add("R2", Severity::kError, name,
                     "pool kernel " + std::to_string(pool.kernel()) +
                         " does not fit the " + std::to_string(state.dim) +
                         "x" + std::to_string(state.dim) + " feature map",
                     "shrink the pool kernel or pool less upstream");
        }
        state.dim = out_dim;
        break;
      }
      case LayerKind::kFlatten: {
        const std::string name = prefix + "." + std::to_string(i) + ".flatten";
        if (state.flattened) {
          report.add("R2", Severity::kError, name,
                     "activation flattened twice", "drop the second Flatten");
          break;
        }
        state.features = state.channels * state.dim * state.dim;
        state.flattened = true;
        break;
      }
      case LayerKind::kBatchNorm:
      case LayerKind::kActQuant:
        break;  // Shape-preserving.
    }
  }
}

/// Lenient twin of walk_compute_layers: same sites and names, but shape
/// violations land in `report` instead of aborting the walk.
std::vector<LayerSite> collect_sites_lenient(BranchyModel& model,
                                             const AcceleratorConfig& config,
                                             LintReport& report) {
  std::vector<LayerSite> sites;
  if (model.num_blocks() == 0) {
    report.add("R2", Severity::kError, "model", "model has no backbone blocks",
               "add at least one block ending in the final classifier");
    return sites;
  }
  ShapeState state;
  state.channels = config.in_channels;
  state.dim = config.image_size;
  if (config.in_channels <= 0 || config.image_size <= 0) {
    report.add("R2", Severity::kError, "model",
               "input image must have positive channels and size (got " +
                   std::to_string(config.in_channels) + "x" +
                   std::to_string(config.image_size) + "x" +
                   std::to_string(config.image_size) + ")",
               "fix AcceleratorConfig::in_channels / image_size");
  }

  std::vector<ShapeState> block_out(model.num_blocks());
  for (std::size_t b = 0; b < model.num_blocks(); ++b) {
    walk_lenient(model.block(b), SiteLoc::kBackbone, static_cast<int>(b),
                 "backbone.b" + std::to_string(b), state, sites, report);
    block_out[b] = state;
  }
  for (std::size_t e = 0; e < model.num_exits(); ++e) {
    const int after = model.exit(e).after_block;
    const std::string exit_name = "exit" + std::to_string(e);
    if (after < 0 || after >= static_cast<int>(model.num_blocks())) {
      // R7 reports the structural violation; skip the head walk because
      // there is no attachment geometry to start from.
      continue;
    }
    ShapeState exit_state = block_out[static_cast<std::size_t>(after)];
    if (exit_state.flattened) {
      report.add("R2", Severity::kError, exit_name,
                 "exit attaches to a flattened activation",
                 "attach the exit before the backbone flattens");
    }
    walk_lenient(*model.exit(e).head, SiteLoc::kExit, static_cast<int>(e),
                 exit_name, exit_state, sites, report);
  }
  return sites;
}

/// R1: PE/SIMD divisibility per MVTU against the walk-order sites.
void lint_divisibility(const std::vector<LayerSite>& sites,
                       const FoldingConfig& folding, LintReport& report) {
  if (folding.folds.size() != sites.size()) {
    report.add("R1", Severity::kError, "folding",
               "folding has " + std::to_string(folding.folds.size()) +
                   " entries for " + std::to_string(sites.size()) +
                   " compute layers",
               "regenerate the folding for this model (walk order)");
  }
  const std::size_t n = std::min(folding.folds.size(), sites.size());
  for (std::size_t i = 0; i < n; ++i) {
    const LayerSite& site = sites[i];
    const LayerFold& fold = folding.folds[i];
    if (fold.pe < 1) {
      report.add("R1", Severity::kError, site.name,
                 "PE=" + std::to_string(fold.pe) + " must be >= 1",
                 "use a positive divisor of out_channels");
    } else if (site.out_channels % fold.pe != 0) {
      report.add("R1", Severity::kError, site.name,
                 "PE=" + std::to_string(fold.pe) +
                     " does not divide out_channels=" +
                     std::to_string(site.out_channels),
                 "pick PE from the divisors of " +
                     std::to_string(site.out_channels));
    }
    const int matrix_width = site.is_conv
                                 ? site.kernel * site.kernel * site.in_channels
                                 : site.in_channels;
    if (fold.simd < 1) {
      report.add("R1", Severity::kError, site.name,
                 "SIMD=" + std::to_string(fold.simd) + " must be >= 1",
                 "use a positive divisor of the matrix width");
    } else if (matrix_width % fold.simd != 0) {
      report.add("R1", Severity::kError, site.name,
                 "SIMD=" + std::to_string(fold.simd) +
                     " does not divide matrix width=" +
                     std::to_string(matrix_width) +
                     (site.is_conv ? " (k^2 * ch_in)" : " (in_features)"),
                 "pick SIMD from the divisors of " +
                     std::to_string(matrix_width));
    }
  }
}

/// R7 (design half): exit attachment structure — intermediate blocks only,
/// monotonic attachment order, heads that end in a classifier.
void lint_exit_structure(BranchyModel& model, LintReport& report) {
  int prev_block = -1;
  for (std::size_t e = 0; e < model.num_exits(); ++e) {
    const ExitBranch& exit = model.exit(e);
    const std::string name = "exit" + std::to_string(e);
    if (exit.after_block < 0 ||
        exit.after_block + 1 >= static_cast<int>(model.num_blocks())) {
      report.add("R7", Severity::kError, name,
                 "exit attaches after block " +
                     std::to_string(exit.after_block) + " but the backbone " +
                     "has blocks 0.." +
                     std::to_string(model.num_blocks() == 0
                                        ? 0
                                        : model.num_blocks() - 1) +
                     " (the final block is the final exit)",
                 "attach exits after an intermediate block");
    }
    if (exit.after_block < prev_block) {
      report.add("R7", Severity::kError, name,
                 "exit attachment order is not monotonic (after_block " +
                     std::to_string(exit.after_block) + " follows " +
                     std::to_string(prev_block) + ")",
                 "keep exits sorted by attachment depth");
    }
    prev_block = exit.after_block;
    if (exit.head == nullptr || exit.head->size() == 0) {
      report.add("R7", Severity::kError, name, "exit head is empty",
                 "give every exit at least a classifier layer");
      continue;
    }
    // The head must end in class logits: its last compute layer is a fc.
    const Layer* last_compute = nullptr;
    for (std::size_t i = 0; i < exit.head->size(); ++i) {
      const Layer& l = exit.head->layer(i);
      if (l.kind() == LayerKind::kConv || l.kind() == LayerKind::kLinear) {
        last_compute = &l;
      }
    }
    if (last_compute == nullptr ||
        last_compute->kind() != LayerKind::kLinear) {
      report.add("R7", Severity::kWarning, name,
                 "exit head does not end in a fully-connected classifier",
                 "finish the head with an fc layer producing class logits");
    }
  }
}

bool entry_is_positive_int(const Json& v) {
  if (!v.is_number()) return false;
  const double d = v.as_number();
  return d >= 1.0 && d == std::floor(d);
}

}  // namespace

LintReport lint_folding_json(const Json& folding_json,
                             const std::vector<LayerSite>& sites) {
  LintReport report;
  if (!folding_json.is_object()) {
    report.add("R6", Severity::kError, "folding",
               "folding document is not a JSON object",
               "emit one {\"PE\":..,\"SIMD\":..} entry per layer name");
    return report;
  }
  const JsonObject& obj = folding_json.as_object();
  if (obj.size() != sites.size()) {
    report.add("R6", Severity::kError, "folding",
               "folding has " + std::to_string(obj.size()) +
                   " entries for " + std::to_string(sites.size()) +
                   " compute layers",
               "emit exactly one entry per walk-order site");
  }
  for (const auto& site : sites) {
    if (!folding_json.contains(site.name)) {
      report.add("R6", Severity::kError, site.name,
                 "folding entry missing for this layer",
                 "add {\"PE\":..,\"SIMD\":..} under \"" + site.name + "\"");
      continue;
    }
    const Json& entry = folding_json.at(site.name);
    if (!entry.is_object()) {
      report.add("R6", Severity::kError, site.name,
                 "folding entry is not an object",
                 "use {\"PE\":..,\"SIMD\":..}");
      continue;
    }
    for (const char* key : {"PE", "SIMD"}) {
      if (!entry.contains(key)) {
        report.add("R6", Severity::kError, site.name,
                   std::string("folding entry lacks \"") + key + "\"",
                   "add a positive integer value");
      } else if (!entry_is_positive_int(entry.at(key))) {
        report.add("R6", Severity::kError, site.name,
                   std::string("\"") + key + "\" must be a positive integer",
                   "use an integral PE/SIMD >= 1");
      }
    }
  }
  for (const auto& [key, value] : obj) {
    (void)value;
    bool known = false;
    for (const auto& site : sites) {
      if (site.name == key) {
        known = true;
        break;
      }
    }
    if (!known) {
      report.add("R6", Severity::kWarning, key,
                 "folding entry names no layer of this model",
                 "remove stale entries or regenerate the folding");
    }
  }
  return report;
}

LintReport lint_design(BranchyModel& model, const FoldingConfig& folding,
                       const AcceleratorConfig& config) {
  LintReport report;
  const std::vector<LayerSite> sites =
      collect_sites_lenient(model, config, report);
  lint_divisibility(sites, folding, report);
  lint_exit_structure(model, report);

  // R6: serialization fidelity. Only meaningful when the arity matches
  // (to_json indexes folds by site) — the mismatch itself is already an R1
  // error above.
  if (folding.folds.size() == sites.size() && !sites.empty()) {
    const Json j = folding.to_json(sites);
    report.merge(lint_folding_json(j, sites));
    try {
      const FoldingConfig round_trip = FoldingConfig::from_json(j, sites);
      for (std::size_t i = 0; i < sites.size(); ++i) {
        if (round_trip.folds[i].pe != folding.folds[i].pe ||
            round_trip.folds[i].simd != folding.folds[i].simd) {
          report.add("R6", Severity::kError, sites[i].name,
                     "folding JSON round-trip altered PE/SIMD",
                     "report this as a serialization bug");
        }
      }
    } catch (const ConfigError&) {
      // from_json re-validates divisibility; those findings are R1's.
    }
  }
  return report;
}

void require_valid_design(BranchyModel& model, const FoldingConfig& folding,
                          const AcceleratorConfig& config) {
  const LintReport report = lint_design(model, folding, config);
  if (report.has_errors()) throw ConfigError(report.error_message());
}

}  // namespace analysis
}  // namespace adapex
