#include "edge/device_sim.hpp"

#include <algorithm>
#include <cmath>

#include "common/rng.hpp"

namespace adapex {

namespace {

// Stream identifier for the manager's decision RNG (derive_seed), distinct
// from the fault streams so fault toggles never perturb decisions.
constexpr std::uint64_t kManagerStream = 0x4A17;

}  // namespace

DeviceSim::DeviceSim(const Library& library, const RuntimePolicy& policy,
                     const EdgeScenario& scenario)
    : scenario_(scenario),
      policy_(policy),
      library_(&library),
      manager_(library, policy, derive_seed(scenario.seed, kManagerStream)),
      injector_(scenario.faults, scenario.seed),
      monitor_(WorkloadMonitor::Options{1.0, scenario.reselect_threshold}),
      detector_(policy.drift) {
  // Start from the most accurate eligible point (low workload assumption).
  manager_.select(0.0, 0.0);
  static_w_ = library.static_power_w;
  next_scrub_s_ = scenario.faults.mitigation.scrubbing
                      ? scenario.faults.mitigation.scrub_period_s
                      : 0.0;
}

void DeviceSim::set_speed_factor(double factor) {
  ADAPEX_CHECK(factor > 0.0, "speed factor must be positive");
  speed_ = factor;
}

double DeviceSim::current_ips() const {
  return manager_.current().ips * speed_;
}

void DeviceSim::account_energy(double upto, const LibraryEntry& e) {
  if (upto <= last_power_checkpoint_) return;
  const double interval = upto - last_power_checkpoint_;
  const double busy =
      std::max(0.0, std::min(busy_until_, upto) - last_power_checkpoint_);
  const double dyn_w = std::max(0.0, e.peak_power_w - static_w_);
  energy_j_ += static_w_ * interval + dyn_w * busy;
  last_power_checkpoint_ = upto;
}

double DeviceSim::first_exit_fraction(const LibraryEntry& e) const {
  return e.exit_fractions.empty() ? 1.0 : e.exit_fractions.front();
}

// Returns the entry's accuracy bit-exactly when no upset is active.
double DeviceSim::effective_accuracy(const LibraryEntry& e) const {
  const FaultSpec& faults = scenario_.faults;
  const int corrupting =
      weight_upsets_active_ + config_wrong_active_ + exit_corrupt_active_;
  if (corrupting == 0) return e.accuracy;
  const double drop =
      weight_upsets_active_ * faults.seu_weight_accuracy_drop +
      (config_wrong_active_ + exit_corrupt_active_) *
          faults.seu_config_accuracy_drop;
  // Floor near chance level: upsets scramble outputs, they don't
  // anti-correlate them.
  return std::max(e.accuracy - drop, 0.02);
}

double DeviceSim::effective_first_exit(const LibraryEntry& e) const {
  const double base = first_exit_fraction(e);
  if (exit_corrupt_active_ == 0) return base;
  // Stuck-high exit logits inflate early acceptance.
  return std::min(
      1.0, base + exit_corrupt_active_ * scenario_.faults.seu_exit_rate_shift);
}

std::size_t DeviceSim::undetected_active() const {
  return undetected_weight_times_.size() + undetected_config_times_.size();
}

// Marks every active upset as caught, charging detection latency.
void DeviceSim::detect_active(double now) {
  for (double t0 : undetected_weight_times_) {
    metrics_.seu_detection_latency_s += now - t0;
  }
  for (double t0 : undetected_config_times_) {
    metrics_.seu_detection_latency_s += now - t0;
  }
  metrics_.seu_detected += static_cast<int>(undetected_active());
  undetected_weight_times_.clear();
  undetected_config_times_.clear();
}

// One configuration scrub pass: repairs config-memory upsets (wrong class,
// exit corruption, hangs) — weight BRAMs are not configuration frames, so
// weight upsets survive a scrub — and charges scrub dark time.
void DeviceSim::do_scrub(double now, TracePoint& tp) {
  const SeuMitigation& mit = scenario_.faults.mitigation;
  ++metrics_.seu_scrubs;
  tp.scrubbed = true;
  for (double t0 : undetected_config_times_) {
    metrics_.seu_detection_latency_s += now - t0;
  }
  metrics_.seu_detected += static_cast<int>(undetected_config_times_.size());
  undetected_config_times_.clear();
  config_wrong_active_ = 0;
  exit_corrupt_active_ = 0;
  hang_active_ = false;
  const double cost_s = mit.scrub_time_ms / 1e3;
  metrics_.scrub_overhead_s += cost_s;
  if (cost_s > 0.0) {
    server_free_ = std::max(server_free_, now) + cost_s;
    dark_until_ = std::max(dark_until_, server_free_);
    metrics_.dead_time_s += cost_s;
  }
}

// Resolves a manager decision: attempts the proposed reconfiguration
// through the fault injector, reports the outcome back, and accounts dead
// time and recovery latency. When a fleet gate is installed it is consulted
// first; a denial vetoes the attempt entirely (cancel_reconfig — no
// failure, no backoff) and the proposal is re-raised on later ticks.
void DeviceSim::apply_decision(Decision& d, double now, TracePoint& tp) {
  tp.degraded = tp.degraded || d.degraded;
  if (!d.reconfigure) {
    deferred_reconfig_ = false;
    if (failing_since_ >= 0.0 && d.state == HealthState::kHealthy) {
      // The full search no longer needs the failed switch: recovered.
      metrics_.recovery_latency_s += now - failing_since_;
      ++metrics_.recoveries;
      failing_since_ = -1.0;
    }
    return;
  }
  if (gate_) {
    ReconfigRequest req;
    req.now_s = now;
    req.dead_s = d.reconfig_ms / 1e3;
    req.deferred_since_s = deferred_reconfig_ ? deferred_since_ : -1.0;
    if (!gate_(req)) {
      manager_.cancel_reconfig();
      // Drift/watchdog reloads are not re-proposed by select() in Healthy
      // state, so deferring them would strand the flag: the drift detector
      // itself refires once its window refills. Only searched switches
      // carry the deferred marker.
      if (!d.reload) {
        if (!deferred_reconfig_) deferred_since_ = now;
        deferred_reconfig_ = true;
      }
      return;
    }
  }
  deferred_reconfig_ = false;
  if (d.retry) ++metrics_.reconfig_retries;
  const ReconfigOutcome out = injector_.attempt_reconfig(d.reconfig_ms);
  if (out.slowed) ++metrics_.slow_reconfigs;
  // The accelerator is dark during the attempt, success or not: backlog
  // waits.
  server_free_ = std::max(server_free_, now) + out.dead_ms / 1e3;
  dark_until_ = server_free_;
  metrics_.dead_time_s += out.dead_ms / 1e3;
  if (out.success) {
    ++metrics_.reconfigurations;
    tp.reconfigured = true;
    manager_.complete_reconfig(true, now);
    if (failing_since_ >= 0.0) {
      metrics_.recovery_latency_s += now - failing_since_;
      ++metrics_.recoveries;
      failing_since_ = -1.0;
    }
    // A successful load rewrites configuration and weight memory: every
    // active upset is gone. Ones the detection machinery never caught
    // were repaired incidentally — they count as undetected.
    if (weight_upsets_active_ + config_wrong_active_ + exit_corrupt_active_ >
            0 ||
        hang_active_) {
      metrics_.seu_undetected += static_cast<int>(undetected_active());
      undetected_weight_times_.clear();
      undetected_config_times_.clear();
      weight_upsets_active_ = 0;
      config_wrong_active_ = 0;
      exit_corrupt_active_ = 0;
      hang_active_ = false;
      detector_.reset();
    }
    if (d.reload) {
      ++metrics_.seu_reloads;
      tp.reloaded = true;
      had_seu_recovery_ = true;
      post_recovery_acc_sum_ = 0.0;
      post_recovery_served_ = 0;
    }
  } else {
    ++metrics_.reconfig_failures;
    tp.reconfig_failed = true;
    manager_.complete_reconfig(false, now);
    if (failing_since_ < 0.0) failing_since_ = now;
    if (policy_.backoff.on_failure == FailurePolicy::kBlockRetry) {
      // No fallback: serving stays dark until the next retry opportunity.
      const double block_until = now + scenario_.sample_period_s;
      if (block_until > server_free_) {
        metrics_.dead_time_s += block_until - server_free_;
        server_free_ = block_until;
        dark_until_ = server_free_;
      }
    }
  }
}

ArrivalOutcome DeviceSim::serve_one(double t, double dispatch_s) {
  ArrivalOutcome out;
  if (hang_active_) {
    // The pipeline is wedged on a config-memory hang: nothing completes
    // until a scrub or reload repairs it (the watchdog sees the flat
    // served count and escalates).
    ++metrics_.dropped;
    return out;
  }
  const LibraryEntry& entry = manager_.current();
  const double service_s = 1.0 / std::max(entry.ips * speed_, 1e-9);
  // dispatch_s == t on the legacy path, where both expressions reduce
  // bit-exactly to the pre-extraction max(0, server_free - t) arithmetic;
  // batched dispatch separates the queue test (from dispatch time) from the
  // delivered latency (from the request's true arrival).
  const double queue_s = std::max(0.0, server_free_ - dispatch_s);
  const double backlog = queue_s / service_s;
  if (backlog > scenario_.queue_capacity) {
    ++metrics_.dropped;
    return out;
  }
  ++metrics_.served;
  const double eff_acc = effective_accuracy(entry);
  accuracy_sum_ += eff_acc;
  if (undetected_active() > 0 &&
      weight_upsets_active_ + config_wrong_active_ + exit_corrupt_active_ >
          0) {
    // Served while an uncaught corrupting upset is active: the user gets
    // a possibly-wrong answer with no warning.
    ++metrics_.silent_corruptions;
  }
  if (had_seu_recovery_) {
    post_recovery_acc_sum_ += eff_acc;
    ++post_recovery_served_;
  }
  const double wait_s = std::max(server_free_, dispatch_s) - t;
  const double latency_ms = wait_s * 1e3 + entry.latency_ms / speed_;
  latency_sum_ms_ += latency_ms;
  server_free_ = std::max(server_free_, dispatch_s) + service_s;
  busy_until_ = server_free_;
  out.served = true;
  out.latency_ms = latency_ms;
  out.accuracy = eff_acc;
  return out;
}

ArrivalOutcome DeviceSim::on_arrival(double t) {
  ++metrics_.offered;
  monitor_.on_arrival();
  return serve_one(t, t);
}

void DeviceSim::note_arrival() {
  ++metrics_.offered;
  monitor_.on_arrival();
}

std::vector<ArrivalOutcome> DeviceSim::serve_batch(
    double now, double setup_s, const std::vector<double>& arrival_times) {
  std::vector<ArrivalOutcome> outcomes;
  outcomes.reserve(arrival_times.size());
  // Batch-formation overhead is paid once, up front, whether or not the
  // queue then sheds part of the batch (the fabric still reconfigures its
  // input DMA for the batch shape).
  if (!arrival_times.empty() && setup_s > 0.0 && !hang_active_) {
    server_free_ = std::max(server_free_, now) + setup_s;
  }
  for (double t : arrival_times) {
    outcomes.push_back(serve_one(t, now));
  }
  return outcomes;
}

double DeviceSim::backlog_requests(double now) const {
  const LibraryEntry& entry = manager_.current();
  const double service_s = 1.0 / std::max(entry.ips * speed_, 1e-9);
  return std::max(0.0, server_free_ - now) / service_s;
}

void DeviceSim::on_tick(double now) {
  const FaultSpec& faults = scenario_.faults;
  const SeuMitigation& mit = faults.mitigation;
  const LibraryEntry& before = manager_.current();
  account_energy(now, before);

  TracePoint tp;
  tp.time_s = now;

  // Injected transient stall: the accelerator goes dark for a window.
  if (injector_.draw_stall()) {
    ++metrics_.stalls;
    server_free_ = std::max(server_free_, now) + faults.stall_duration_s;
    dark_until_ = server_free_;
    metrics_.dead_time_s += faults.stall_duration_s;
  }

  // Soft-error injection: independent streams, drawn unconditionally
  // every tick so the upset sequence depends only on (seed, tick).
  if (injector_.draw_weight_upset()) {
    ++metrics_.seu_weight_upsets;
    tp.seu_upset = true;
    if (mit.ecc_weights) {
      // SECDED on the weight BRAMs corrects it on the next read.
      ++metrics_.seu_corrected;
      ++metrics_.seu_detected;
    } else {
      ++weight_upsets_active_;
      undetected_weight_times_.push_back(now);
    }
  }
  switch (injector_.draw_config_upset()) {
    case ConfigUpset::kNone:
      break;
    case ConfigUpset::kWrongClass:
      ++metrics_.seu_config_upsets;
      tp.seu_upset = true;
      ++config_wrong_active_;
      undetected_config_times_.push_back(now);
      break;
    case ConfigUpset::kExitCorrupt:
      ++metrics_.seu_config_upsets;
      tp.seu_upset = true;
      if (mit.tmr_exit_heads) {
        // The triplicated exit heads out-vote the corrupted replica.
        ++metrics_.seu_corrected;
        ++metrics_.seu_detected;
      } else {
        ++exit_corrupt_active_;
        undetected_config_times_.push_back(now);
      }
      break;
    case ConfigUpset::kHang:
      ++metrics_.seu_config_upsets;
      tp.seu_upset = true;
      hang_active_ = true;
      undetected_config_times_.push_back(now);
      break;
  }

  // Periodic configuration scrubbing repairs config upsets on its own
  // schedule, whether or not anything drifted.
  if (mit.scrubbing) {
    while (now + 1e-12 >= next_scrub_s_) {
      do_scrub(now, tp);
      next_scrub_s_ += mit.scrub_period_s;
    }
  }

  // An active hang wedges the pipeline until a repair (scrub, reload,
  // or the watchdog escalation below): extend the dark window tick by
  // tick.
  if (hang_active_) {
    const double wedge_until = now + scenario_.sample_period_s;
    if (wedge_until > server_free_) {
      metrics_.dead_time_s += wedge_until - std::max(server_free_, now);
      server_free_ = wedge_until;
    }
    dark_until_ = std::max(dark_until_, server_free_);
  }

  // A monitor sample delayed at the previous tick arrives now.
  if (has_delayed_) {
    has_delayed_ = false;
    Decision d = manager_.select(delayed_rate_ / speed_, now);
    apply_decision(d, now, tp);
  }

  WorkloadMonitor::Sample ws = monitor_.sample(scenario_.sample_period_s);
  tp.measured_ips = ws.rate_ips;
  const bool drop = injector_.draw_monitor_drop();
  const bool delay = injector_.draw_monitor_delay();
  // A pending retry fires on its backoff/cooldown schedule even when
  // the workload is quiet. (kScrubbing has no retry to fire; pending
  // states never persist across ticks here.)
  const bool must_probe = (manager_.state() == HealthState::kBackoff ||
                           manager_.state() == HealthState::kDegraded) &&
                          now + 1e-12 >= manager_.next_retry_s();
  if (drop) {
    // The measurement never reaches the manager.
    ++metrics_.monitor_dropped;
    ws.flagged = false;
  } else if (delay && ws.flagged) {
    ++metrics_.monitor_delayed;
    has_delayed_ = true;
    delayed_rate_ = ws.rate_ips;
    ws.flagged = false;
  }
  if (ws.flagged) {
    Decision d = manager_.select(ws.rate_ips / speed_, now);
    apply_decision(d, now, tp);
  } else if (must_probe || deferred_reconfig_) {
    // deferred_reconfig_: a gate-denied switch re-asks at the last flagged
    // rate until the orchestrator admits it (or the search changes its
    // mind). Never set on the legacy path (no gate installed).
    Decision d = manager_.select(monitor_.last_flagged_rate() / speed_, now);
    apply_decision(d, now, tp);
  }

  // Accuracy/confidence drift detection: spot-checked TOP-1 agreement
  // and first-exit acceptance vs the Library expectations of the
  // active entry. Fires only while the manager is not already running
  // a failure-recovery schedule (Backoff/Degraded own the problem: the
  // scheduled retry rewrites the bitstream anyway).
  {
    const LibraryEntry& cur = manager_.current();
    if (&cur != drift_expect_entry_) {
      detector_.expect(cur.accuracy, first_exit_fraction(cur));
      drift_expect_entry_ = &cur;
    }
    detector_.observe(effective_accuracy(cur), effective_first_exit(cur));
    const HealthState hs = manager_.state();
    if (detector_.drifted() && (hs == HealthState::kHealthy ||
                                hs == HealthState::kScrubbing)) {
      ++metrics_.drift_detections;
      tp.drift_detected = true;
      detect_active(now);
      Decision dd = manager_.report_drift(now, mit.scrubbing);
      if (dd.scrub) {
        do_scrub(now, tp);
        detector_.reset();
      } else if (dd.reconfigure) {
        apply_decision(dd, now, tp);
        detector_.reset();
      }
    } else if (hs == HealthState::kScrubbing && detector_.window_full()) {
      // A full clean window after the scrub: the drift is gone.
      manager_.drift_cleared();
    }
  }

  // Watchdog: no completions for watchdog_periods despite backlog —
  // serving is wedged (fault pile-up); force recovery. The soft reset
  // flushes the wedged accelerator, cancels its remaining scheduled
  // dark time, and lets the manager probe immediately.
  if (metrics_.served != last_served_) {
    last_served_ = metrics_.served;
    stagnant_ticks_ = 0;
  } else if (server_free_ > now) {
    ++stagnant_ticks_;
    if (stagnant_ticks_ >= scenario_.watchdog_periods) {
      ++metrics_.watchdog_recoveries;
      tp.watchdog_fired = true;
      const double cancelled_dark = std::max(0.0, dark_until_ - now);
      metrics_.dead_time_s -= std::min(cancelled_dark, metrics_.dead_time_s);
      dark_until_ = now;
      server_free_ = now;
      busy_until_ = std::min(busy_until_, server_free_);
      manager_.force_probe();
      stagnant_ticks_ = 0;
      if (hang_active_) {
        // The wedge is a config-memory hang: a soft reset cannot clear
        // it. Escalate — scrub when deployed, else bitstream reload.
        detect_active(now);
        Decision dd = manager_.report_drift(now, mit.scrubbing);
        if (dd.scrub) {
          do_scrub(now, tp);
          detector_.reset();
        } else if (dd.reconfigure) {
          apply_decision(dd, now, tp);
          detector_.reset();
        }
      }
    }
  }

  // SLO accounting: a sampling period with any dropped request.
  if (metrics_.dropped > dropped_at_last_tick_) ++metrics_.slo_violations;
  dropped_at_last_tick_ = metrics_.dropped;
  if (manager_.state() != HealthState::kHealthy) {
    metrics_.degraded_time_s += scenario_.sample_period_s;
  }

  const LibraryEntry& entry = manager_.current();
  tp.prune_rate_pct = entry.prune_rate_pct;
  tp.conf_threshold_pct = entry.conf_threshold_pct;
  tp.entry_accuracy = entry.accuracy;
  tp.health = manager_.state();
  metrics_.trace.push_back(tp);
}

void DeviceSim::finalize(double duration_s) {
  account_energy(duration_s, manager_.current());

  // Upsets still uncaught at episode end never got detected.
  metrics_.seu_undetected += static_cast<int>(undetected_active());
  metrics_.post_recovery_accuracy =
      post_recovery_served_ > 0
          ? post_recovery_acc_sum_ / post_recovery_served_
          : 0.0;

  metrics_.inference_loss_pct =
      metrics_.offered > 0
          ? 100.0 * static_cast<double>(metrics_.dropped) / metrics_.offered
          : 0.0;
  metrics_.accuracy =
      metrics_.served > 0 ? accuracy_sum_ / metrics_.served : 0.0;
  metrics_.avg_latency_ms =
      metrics_.served > 0 ? latency_sum_ms_ / metrics_.served : 0.0;
  metrics_.energy_j = energy_j_;
  metrics_.avg_power_w = duration_s > 0.0 ? energy_j_ / duration_s : 0.0;
  metrics_.energy_per_inf_j =
      metrics_.served > 0 ? energy_j_ / metrics_.served : 0.0;
  metrics_.edp = metrics_.energy_per_inf_j * (metrics_.avg_latency_ms / 1e3);
  const double served_fraction =
      metrics_.offered > 0
          ? static_cast<double>(metrics_.served) / metrics_.offered
          : 0.0;
  metrics_.qoe = metrics_.accuracy * served_fraction;
  metrics_.availability_pct =
      100.0 * std::max(0.0, 1.0 - metrics_.dead_time_s / duration_s);
  metrics_.duration_s = duration_s;
}

}  // namespace adapex
