#include "edge/fleet.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <limits>
#include <memory>
#include <queue>
#include <set>
#include <sstream>

#include "common/rng.hpp"

namespace adapex {

namespace {

// Stream identifiers for derive_seed. Device streams are disjoint from the
// tenant stream (workload.cpp) and the per-category fault streams
// (faults.cpp), so fleet membership never repunctuates a device's private
// fault timeline.
constexpr std::uint64_t kFleetDeviceStream = 0xF1EE;
constexpr std::uint64_t kFleetDomainStream = 0xD0A1;

WorkloadPattern pattern_from_string(const std::string& s) {
  if (s == "random_deviation") return WorkloadPattern::kRandomDeviation;
  if (s == "diurnal") return WorkloadPattern::kDiurnal;
  if (s == "flash_crowd") return WorkloadPattern::kFlashCrowd;
  if (s == "trace") return WorkloadPattern::kTrace;
  throw ConfigError("unknown workload pattern: " + s);
}

double num_or(const Json& j, const char* key, double fallback) {
  return j.contains(key) ? j.at(key).as_number() : fallback;
}

int int_or(const Json& j, const char* key, int fallback) {
  return j.contains(key) ? static_cast<int>(j.at(key).as_number()) : fallback;
}

bool bool_or(const Json& j, const char* key, bool fallback) {
  return j.contains(key) ? j.at(key).as_bool() : fallback;
}

std::string str_or(const Json& j, const char* key, const std::string& fb) {
  return j.contains(key) ? j.at(key).as_string() : fb;
}

FaultSpec fault_spec_from_json(const Json& j, const FaultSpec& base) {
  FaultSpec f = base;
  f.reconfig_fail_prob = num_or(j, "reconfig_fail_prob", f.reconfig_fail_prob);
  f.reconfig_slow_prob = num_or(j, "reconfig_slow_prob", f.reconfig_slow_prob);
  f.reconfig_slow_factor =
      num_or(j, "reconfig_slow_factor", f.reconfig_slow_factor);
  f.stall_prob = num_or(j, "stall_prob", f.stall_prob);
  f.stall_duration_s = num_or(j, "stall_duration_s", f.stall_duration_s);
  f.monitor_drop_prob = num_or(j, "monitor_drop_prob", f.monitor_drop_prob);
  f.monitor_delay_prob = num_or(j, "monitor_delay_prob", f.monitor_delay_prob);
  f.seu_weight_prob = num_or(j, "seu_weight_prob", f.seu_weight_prob);
  f.seu_config_prob = num_or(j, "seu_config_prob", f.seu_config_prob);
  f.seu_weight_accuracy_drop =
      num_or(j, "seu_weight_accuracy_drop", f.seu_weight_accuracy_drop);
  f.seu_config_accuracy_drop =
      num_or(j, "seu_config_accuracy_drop", f.seu_config_accuracy_drop);
  f.seu_exit_rate_shift =
      num_or(j, "seu_exit_rate_shift", f.seu_exit_rate_shift);
  f.seu_hang_frac = num_or(j, "seu_hang_frac", f.seu_hang_frac);
  f.seu_exit_corrupt_frac =
      num_or(j, "seu_exit_corrupt_frac", f.seu_exit_corrupt_frac);
  if (j.contains("mitigation")) {
    const Json& m = j.at("mitigation");
    f.mitigation.ecc_weights =
        bool_or(m, "ecc_weights", f.mitigation.ecc_weights);
    f.mitigation.scrubbing = bool_or(m, "scrubbing", f.mitigation.scrubbing);
    f.mitigation.scrub_period_s =
        num_or(m, "scrub_period_s", f.mitigation.scrub_period_s);
    f.mitigation.scrub_time_ms =
        num_or(m, "scrub_time_ms", f.mitigation.scrub_time_ms);
    f.mitigation.tmr_exit_heads =
        bool_or(m, "tmr_exit_heads", f.mitigation.tmr_exit_heads);
  }
  return f;
}

Json fault_spec_to_json(const FaultSpec& f) {
  Json j = Json::object();
  j["reconfig_fail_prob"] = f.reconfig_fail_prob;
  j["reconfig_slow_prob"] = f.reconfig_slow_prob;
  j["reconfig_slow_factor"] = f.reconfig_slow_factor;
  j["stall_prob"] = f.stall_prob;
  j["stall_duration_s"] = f.stall_duration_s;
  j["monitor_drop_prob"] = f.monitor_drop_prob;
  j["monitor_delay_prob"] = f.monitor_delay_prob;
  j["seu_weight_prob"] = f.seu_weight_prob;
  j["seu_config_prob"] = f.seu_config_prob;
  j["seu_weight_accuracy_drop"] = f.seu_weight_accuracy_drop;
  j["seu_config_accuracy_drop"] = f.seu_config_accuracy_drop;
  j["seu_exit_rate_shift"] = f.seu_exit_rate_shift;
  j["seu_hang_frac"] = f.seu_hang_frac;
  j["seu_exit_corrupt_frac"] = f.seu_exit_corrupt_frac;
  Json m = Json::object();
  m["ecc_weights"] = f.mitigation.ecc_weights;
  m["scrubbing"] = f.mitigation.scrubbing;
  m["scrub_period_s"] = f.mitigation.scrub_period_s;
  m["scrub_time_ms"] = f.mitigation.scrub_time_ms;
  m["tmr_exit_heads"] = f.mitigation.tmr_exit_heads;
  j["mitigation"] = std::move(m);
  return j;
}

WorkloadSpec workload_from_json(const Json& j) {
  WorkloadSpec w;
  w.pattern = pattern_from_string(str_or(j, "pattern", "random_deviation"));
  w.base_ips = num_or(j, "base_ips", w.base_ips);
  w.duration_s = num_or(j, "duration_s", w.duration_s);
  w.period_s = num_or(j, "period_s", w.period_s);
  w.deviation = num_or(j, "deviation", w.deviation);
  w.spike_start_s = num_or(j, "spike_start_s", w.spike_start_s);
  w.spike_duration_s = num_or(j, "spike_duration_s", w.spike_duration_s);
  w.spike_multiplier = num_or(j, "spike_multiplier", w.spike_multiplier);
  if (j.contains("trace")) {
    for (const Json& v : j.at("trace").as_array()) {
      w.trace.push_back(v.as_number());
    }
  }
  return w;
}

Json workload_to_json(const WorkloadSpec& w) {
  Json j = Json::object();
  j["pattern"] = to_string(w.pattern);
  j["base_ips"] = w.base_ips;
  j["duration_s"] = w.duration_s;
  j["period_s"] = w.period_s;
  j["deviation"] = w.deviation;
  j["spike_start_s"] = w.spike_start_s;
  j["spike_duration_s"] = w.spike_duration_s;
  j["spike_multiplier"] = w.spike_multiplier;
  if (!w.trace.empty()) {
    Json t = Json::array();
    for (double v : w.trace) t.push_back(v);
    j["trace"] = std::move(t);
  }
  return j;
}

/// Fleet-scalar visitor — single source of truth for JSON and CSV, like
/// EdgeMetrics' visit_metric_scalars.
template <typename Fn>
void visit_fleet_scalars(const FleetMetrics& m, Fn&& fn) {
  fn("offered", static_cast<double>(m.offered));
  fn("served", static_cast<double>(m.served));
  fn("dropped", static_cast<double>(m.dropped));
  fn("shed", static_cast<double>(m.shed));
  fn("p50_latency_ms", m.p50_latency_ms);
  fn("p99_latency_ms", m.p99_latency_ms);
  fn("p999_latency_ms", m.p999_latency_ms);
  fn("availability_pct", m.availability_pct);
  fn("degraded_capacity_s", m.degraded_capacity_s);
  fn("failovers", static_cast<double>(m.failovers));
  fn("stagger_deferrals", static_cast<double>(m.stagger_deferrals));
  fn("forced_reconfigs", static_cast<double>(m.forced_reconfigs));
  fn("capacity_violations", static_cast<double>(m.capacity_violations));
  fn("min_capacity_fraction", m.min_capacity_fraction);
  fn("domain_spikes", static_cast<double>(m.domain_spikes));
  fn("max_outage_depth", static_cast<double>(m.max_outage_depth));
  fn("breaker_opens", static_cast<double>(m.breaker_opens));
  fn("ejections", static_cast<double>(m.ejections));
  fn("events", static_cast<double>(m.events));
  fn("duration_s", m.duration_s);
}

void check_finite(const char* name, double value) {
  ADAPEX_CHECK(std::isfinite(value),
               std::string("FleetMetrics::") + name +
                   " is not finite — refusing to serialize");
}

}  // namespace

std::uint64_t fleet_device_seed(std::uint64_t fleet_seed, std::size_t index,
                                std::size_t device_count) {
  ADAPEX_CHECK(index < device_count, "device index out of range");
  // A lone device consumes the fleet seed directly: its manager and fault
  // streams are then byte-identical to simulate_edge's for the same
  // EdgeScenario seed (the size-1 identity guarantee).
  if (device_count == 1) return fleet_seed;
  return derive_seed(fleet_seed, kFleetDeviceStream, index);
}

// ---------------------------------------------------------------------------
// Circuit breaker
// ---------------------------------------------------------------------------

CircuitBreaker::CircuitBreaker(const CircuitBreakerPolicy& policy)
    : policy_(policy) {}

void CircuitBreaker::observe(bool failing, double now_s) {
  if (policy_.open_after_failures <= 0) return;  // breakers disabled
  if (failing) {
    ++consecutive_failing_;
    const bool should_open =
        state_ == State::kHalfOpen ||
        (state_ == State::kClosed &&
         consecutive_failing_ >= policy_.open_after_failures);
    if (should_open) {
      state_ = State::kOpen;
      opened_at_s_ = now_s;
      ++opens_;
    }
    return;
  }
  consecutive_failing_ = 0;
  // A clean observation heals a HalfOpen probe window. Open waits out its
  // hold time (the device may look clean only because it receives no
  // traffic while open).
  if (state_ == State::kHalfOpen) state_ = State::kClosed;
}

bool CircuitBreaker::would_admit(double now_s) const {
  switch (state_) {
    case State::kClosed: return true;
    case State::kHalfOpen: return probes_left_ > 0;
    case State::kOpen:
      return now_s - opened_at_s_ >= policy_.open_duration_s;
  }
  return true;
}

bool CircuitBreaker::admit(double now_s) {
  switch (state_) {
    case State::kClosed:
      return true;
    case State::kOpen:
      if (now_s - opened_at_s_ < policy_.open_duration_s) return false;
      state_ = State::kHalfOpen;
      probes_left_ = policy_.half_open_probes - 1;  // this request probes
      return true;
    case State::kHalfOpen:
      if (probes_left_ <= 0) return false;
      --probes_left_;
      return true;
  }
  return true;
}

const char* to_string(CircuitBreaker::State s) {
  switch (s) {
    case CircuitBreaker::State::kClosed: return "closed";
    case CircuitBreaker::State::kOpen: return "open";
    case CircuitBreaker::State::kHalfOpen: return "half_open";
  }
  return "?";
}

// ---------------------------------------------------------------------------
// Lint (FS1-FS8)
// ---------------------------------------------------------------------------

namespace {

/// FS1-FS8 only; the overloads below merge in the base-scenario lint.
analysis::LintReport lint_fleet_rules(const FleetScenario& s) {
  analysis::LintReport report;
  auto bad = [&](const char* rule, const std::string& site,
                 const std::string& message, const std::string& hint) {
    report.add(rule, analysis::Severity::kError, site, message, hint);
  };
  auto warn = [&](const char* rule, const std::string& site,
                  const std::string& message, const std::string& hint) {
    report.add(rule, analysis::Severity::kWarning, site, message, hint);
  };

  // FS1: device list.
  if (s.devices.empty()) {
    bad("FS1", "fleet", "the fleet has no devices",
        "add at least one FleetDeviceSpec");
  }
  for (std::size_t i = 0; i < s.devices.size(); ++i) {
    const FleetDeviceSpec& d = s.devices[i];
    const std::string site = "device[" + std::to_string(i) + "]";
    if (!(d.speed_factor > 0.0)) {
      bad("FS1", site,
          "speed_factor = " + std::to_string(d.speed_factor) +
              " is not positive",
          "fabric clocks scale by a positive factor");
    }
    if (d.domain < -1 ||
        d.domain >= static_cast<int>(s.fleet_faults.domains.size())) {
      bad("FS1", site,
          "domain = " + std::to_string(d.domain) +
              " names no failure domain",
          "use -1 or an index below the domain count");
    }
  }

  // FS2: tenants and their workloads.
  if (s.tenants.empty()) {
    bad("FS2", "fleet", "the fleet has no tenants",
        "add at least one TenantSpec");
  }
  for (std::size_t k = 0; k < s.tenants.size(); ++k) {
    const TenantSpec& t = s.tenants[k];
    const std::string site = "tenant[" + std::to_string(k) + "]";
    if (!(t.workload.base_ips >= 0.0)) {
      bad("FS2", site,
          "workload.base_ips = " + std::to_string(t.workload.base_ips) +
              " is negative",
          "use a non-negative request rate");
    }
    if (!(t.workload.period_s > 0.0)) {
      bad("FS2", site,
          "workload.period_s = " + std::to_string(t.workload.period_s) +
              " is not positive",
          "rate re-evaluation needs a positive period");
    }
    if (!(t.workload.deviation >= 0.0)) {
      bad("FS2", site, "workload.deviation is negative",
          "deviation is a +- amplitude");
    }
    if (!(t.workload.spike_start_s >= 0.0 &&
          t.workload.spike_duration_s >= 0.0 &&
          t.workload.spike_multiplier >= 0.0)) {
      bad("FS2", site, "workload spike parameters must be non-negative",
          "check spike_start_s/spike_duration_s/spike_multiplier");
    }
    if (t.workload.pattern == WorkloadPattern::kTrace &&
        t.workload.trace.empty()) {
      bad("FS2", site, "trace pattern with no rate multipliers",
          "provide workload.trace entries");
    }
    if (t.workload.duration_s > 0.0 &&
        t.workload.duration_s != s.base.duration_s) {
      warn("FS2", site,
           "workload.duration_s differs from the episode duration",
           "simulate_fleet forces tenant workloads to base.duration_s");
    }
    // FS3: SLOs.
    if (!(t.slo_latency_ms >= 0.0)) {
      bad("FS3", site,
          "slo_latency_ms = " + std::to_string(t.slo_latency_ms) +
              " is negative",
          "use 0 to disable the latency SLO");
    }
    if (!(t.min_accuracy >= 0.0 && t.min_accuracy <= 1.0)) {
      bad("FS3", site,
          "min_accuracy = " + std::to_string(t.min_accuracy) +
              " is not in [0, 1]",
          "accuracy SLOs are probabilities (0 disables)");
    }
  }

  // FS4: correlated failure domains.
  for (std::size_t g = 0; g < s.fleet_faults.domains.size(); ++g) {
    const FailureDomain& dom = s.fleet_faults.domains[g];
    const std::string site = "domain[" + std::to_string(g) + "]";
    if (!(dom.spike_prob >= 0.0 && dom.spike_prob <= 1.0)) {
      bad("FS4", site,
          "spike_prob = " + std::to_string(dom.spike_prob) +
              " is not a probability",
          "use a value in [0, 1]");
    }
    if (!(dom.spike_duration_s >= 0.0)) {
      bad("FS4", site, "spike_duration_s is negative",
          "spikes need a non-negative duration");
    }
    if (!(dom.transient_mult >= 0.0 && dom.seu_mult >= 0.0)) {
      bad("FS4", site, "rate multipliers must be non-negative",
          "check transient_mult/seu_mult");
    }
  }

  // FS5: stagger policy.
  if (!(s.stagger.min_capacity_fraction >= 0.0 &&
        s.stagger.min_capacity_fraction <= 1.0)) {
    bad("FS5", "stagger",
        "min_capacity_fraction = " +
            std::to_string(s.stagger.min_capacity_fraction) +
            " is not in [0, 1]",
        "the capacity floor is a fraction of offered load");
  }
  if (!(s.stagger.max_defer_s >= 0.0)) {
    bad("FS5", "stagger", "max_defer_s is negative",
        "the starvation override needs a non-negative window");
  }
  if (s.stagger.enabled && s.devices.size() == 1) {
    warn("FS5", "stagger",
         "staggering a single-device fleet only delays its own "
         "reconfigurations",
         "disable staggering or add devices");
  }

  // FS6: admission watermarks.
  if (!(s.admission.low_watermark >= 0.0 &&
        s.admission.low_watermark <= s.admission.high_watermark &&
        s.admission.high_watermark <= 1.0)) {
    bad("FS6", "admission",
        "watermarks must satisfy 0 <= low <= high <= 1 (low = " +
            std::to_string(s.admission.low_watermark) + ", high = " +
            std::to_string(s.admission.high_watermark) + ")",
        "shedding needs a well-ordered hysteresis band");
  }

  // FS7: batching.
  if (s.batching.max_batch < 1) {
    bad("FS7", "batching",
        "max_batch = " + std::to_string(s.batching.max_batch) +
            " is below 1",
        "a batch holds at least one request");
  }
  if (!(s.batching.max_wait_ms >= 0.0 && s.batching.setup_ms >= 0.0)) {
    bad("FS7", "batching",
        "max_wait_ms and setup_ms must be non-negative",
        "check the batching policy");
  }

  // FS8: breaker and orchestrator.
  if (s.breaker.open_after_failures < 0) {
    bad("FS8", "breaker", "open_after_failures is negative",
        "use 0 to disable circuit breakers");
  }
  if (!(s.breaker.wedge_threshold_s >= 0.0 &&
        s.breaker.open_duration_s >= 0.0)) {
    bad("FS8", "breaker",
        "wedge_threshold_s and open_duration_s must be non-negative",
        "check the breaker policy");
  }
  if (s.breaker.half_open_probes < 1) {
    bad("FS8", "breaker",
        "half_open_probes = " + std::to_string(s.breaker.half_open_probes) +
            " is below 1",
        "HalfOpen needs at least one probe");
  }
  if (!(s.orchestrator_period_s > 0.0)) {
    bad("FS8", "fleet",
        "orchestrator_period_s = " +
            std::to_string(s.orchestrator_period_s) + " is not positive",
        "the orchestrator needs a positive cadence");
  }
  if (!(s.balance_hysteresis >= 0.0)) {
    bad("FS8", "fleet", "balance_hysteresis is negative",
        "the sticky band is a non-negative fraction");
  }
  if (s.eject_after_watchdog < 0) {
    bad("FS8", "fleet", "eject_after_watchdog is negative",
        "use 0 to disable ejection");
  }
  return report;
}

}  // namespace

analysis::LintReport lint_fleet_scenario(const FleetScenario& s) {
  analysis::LintReport report = lint_edge_scenario(s.base);
  report.merge(lint_fleet_rules(s));
  return report;
}

analysis::LintReport lint_fleet_scenario(const FleetScenario& s,
                                         const Library& library) {
  analysis::LintReport report = lint_edge_scenario(s.base, library);
  report.merge(lint_fleet_rules(s));
  return report;
}

void require_valid_fleet_scenario(const FleetScenario& s) {
  const analysis::LintReport report = lint_fleet_scenario(s);
  if (report.has_errors()) throw ConfigError(report.error_message());
}

void require_valid_fleet_scenario(const FleetScenario& s,
                                  const Library& library) {
  const analysis::LintReport report = lint_fleet_scenario(s, library);
  if (report.has_errors()) throw ConfigError(report.error_message());
}

// ---------------------------------------------------------------------------
// Scenario JSON
// ---------------------------------------------------------------------------

FleetScenario FleetScenario::from_json(const Json& j) {
  FleetScenario s;
  if (j.contains("base")) {
    const Json& b = j.at("base");
    s.base.duration_s = num_or(b, "duration_s", s.base.duration_s);
    s.base.sample_period_s = num_or(b, "sample_period_s",
                                    s.base.sample_period_s);
    s.base.reselect_threshold =
        num_or(b, "reselect_threshold", s.base.reselect_threshold);
    s.base.queue_capacity = int_or(b, "queue_capacity", s.base.queue_capacity);
    s.base.watchdog_periods =
        int_or(b, "watchdog_periods", s.base.watchdog_periods);
    if (b.contains("seed")) {
      s.base.seed = static_cast<std::uint64_t>(b.at("seed").as_number());
    }
    if (b.contains("faults")) {
      s.base.faults = fault_spec_from_json(b.at("faults"), s.base.faults);
    }
  }
  if (j.contains("devices")) {
    for (const Json& d : j.at("devices").as_array()) {
      FleetDeviceSpec spec;
      spec.name = str_or(d, "name", "");
      spec.speed_factor = num_or(d, "speed_factor", 1.0);
      spec.domain = int_or(d, "domain", -1);
      s.devices.push_back(std::move(spec));
    }
  }
  if (j.contains("tenants")) {
    for (const Json& t : j.at("tenants").as_array()) {
      TenantSpec spec;
      spec.name = str_or(t, "name", "");
      if (t.contains("workload")) {
        spec.workload = workload_from_json(t.at("workload"));
      }
      spec.slo_latency_ms = num_or(t, "slo_latency_ms", 0.0);
      spec.min_accuracy = num_or(t, "min_accuracy", 0.0);
      spec.priority = int_or(t, "priority", 0);
      s.tenants.push_back(std::move(spec));
    }
  }
  // Domains live at the top level in to_json, but accept the nested
  // struct-shaped spelling {"fleet_faults": {"domains": [...]}} too.
  const Json* domain_list = nullptr;
  if (j.contains("domains")) {
    domain_list = &j.at("domains");
  } else if (j.contains("fleet_faults") &&
             j.at("fleet_faults").contains("domains")) {
    domain_list = &j.at("fleet_faults").at("domains");
  }
  if (domain_list != nullptr) {
    for (const Json& d : domain_list->as_array()) {
      FailureDomain dom;
      dom.name = str_or(d, "name", "");
      dom.spike_prob = num_or(d, "spike_prob", 0.0);
      dom.spike_duration_s = num_or(d, "spike_duration_s", 5.0);
      dom.transient_mult = num_or(d, "transient_mult", 1.0);
      dom.seu_mult = num_or(d, "seu_mult", 1.0);
      s.fleet_faults.domains.push_back(std::move(dom));
    }
  }
  if (j.contains("batching")) {
    const Json& b = j.at("batching");
    s.batching.enabled = bool_or(b, "enabled", false);
    s.batching.max_batch = int_or(b, "max_batch", s.batching.max_batch);
    s.batching.max_wait_ms = num_or(b, "max_wait_ms", s.batching.max_wait_ms);
    s.batching.setup_ms = num_or(b, "setup_ms", s.batching.setup_ms);
  }
  if (j.contains("admission")) {
    const Json& a = j.at("admission");
    s.admission.enabled = bool_or(a, "enabled", false);
    s.admission.high_watermark =
        num_or(a, "high_watermark", s.admission.high_watermark);
    s.admission.low_watermark =
        num_or(a, "low_watermark", s.admission.low_watermark);
  }
  if (j.contains("breaker")) {
    const Json& b = j.at("breaker");
    s.breaker.open_after_failures =
        int_or(b, "open_after_failures", s.breaker.open_after_failures);
    s.breaker.wedge_threshold_s =
        num_or(b, "wedge_threshold_s", s.breaker.wedge_threshold_s);
    s.breaker.open_duration_s =
        num_or(b, "open_duration_s", s.breaker.open_duration_s);
    s.breaker.half_open_probes =
        int_or(b, "half_open_probes", s.breaker.half_open_probes);
  }
  if (j.contains("stagger")) {
    const Json& g = j.at("stagger");
    s.stagger.enabled = bool_or(g, "enabled", false);
    s.stagger.min_capacity_fraction =
        num_or(g, "min_capacity_fraction", s.stagger.min_capacity_fraction);
    s.stagger.max_defer_s = num_or(g, "max_defer_s", s.stagger.max_defer_s);
  }
  s.orchestrator_period_s =
      num_or(j, "orchestrator_period_s", s.orchestrator_period_s);
  s.balance_hysteresis = num_or(j, "balance_hysteresis", s.balance_hysteresis);
  s.eject_after_watchdog =
      int_or(j, "eject_after_watchdog", s.eject_after_watchdog);
  return s;
}

Json FleetScenario::to_json() const {
  Json j = Json::object();
  Json b = Json::object();
  b["duration_s"] = base.duration_s;
  b["sample_period_s"] = base.sample_period_s;
  b["reselect_threshold"] = base.reselect_threshold;
  b["queue_capacity"] = base.queue_capacity;
  b["watchdog_periods"] = base.watchdog_periods;
  b["seed"] = static_cast<double>(base.seed);
  b["faults"] = fault_spec_to_json(base.faults);
  j["base"] = std::move(b);
  Json devs = Json::array();
  for (const FleetDeviceSpec& d : devices) {
    Json dj = Json::object();
    dj["name"] = d.name;
    dj["speed_factor"] = d.speed_factor;
    dj["domain"] = d.domain;
    devs.push_back(std::move(dj));
  }
  j["devices"] = std::move(devs);
  Json tens = Json::array();
  for (const TenantSpec& t : tenants) {
    Json tj = Json::object();
    tj["name"] = t.name;
    tj["workload"] = workload_to_json(t.workload);
    tj["slo_latency_ms"] = t.slo_latency_ms;
    tj["min_accuracy"] = t.min_accuracy;
    tj["priority"] = t.priority;
    tens.push_back(std::move(tj));
  }
  j["tenants"] = std::move(tens);
  Json doms = Json::array();
  for (const FailureDomain& d : fleet_faults.domains) {
    Json dj = Json::object();
    dj["name"] = d.name;
    dj["spike_prob"] = d.spike_prob;
    dj["spike_duration_s"] = d.spike_duration_s;
    dj["transient_mult"] = d.transient_mult;
    dj["seu_mult"] = d.seu_mult;
    doms.push_back(std::move(dj));
  }
  j["domains"] = std::move(doms);
  Json bt = Json::object();
  bt["enabled"] = batching.enabled;
  bt["max_batch"] = batching.max_batch;
  bt["max_wait_ms"] = batching.max_wait_ms;
  bt["setup_ms"] = batching.setup_ms;
  j["batching"] = std::move(bt);
  Json ad = Json::object();
  ad["enabled"] = admission.enabled;
  ad["high_watermark"] = admission.high_watermark;
  ad["low_watermark"] = admission.low_watermark;
  j["admission"] = std::move(ad);
  Json br = Json::object();
  br["open_after_failures"] = breaker.open_after_failures;
  br["wedge_threshold_s"] = breaker.wedge_threshold_s;
  br["open_duration_s"] = breaker.open_duration_s;
  br["half_open_probes"] = breaker.half_open_probes;
  j["breaker"] = std::move(br);
  Json st = Json::object();
  st["enabled"] = stagger.enabled;
  st["min_capacity_fraction"] = stagger.min_capacity_fraction;
  st["max_defer_s"] = stagger.max_defer_s;
  j["stagger"] = std::move(st);
  j["orchestrator_period_s"] = orchestrator_period_s;
  j["balance_hysteresis"] = balance_hysteresis;
  j["eject_after_watchdog"] = eject_after_watchdog;
  return j;
}

// ---------------------------------------------------------------------------
// Metrics serialization
// ---------------------------------------------------------------------------

Json TenantMetrics::to_json() const {
  Json j = Json::object();
  j["name"] = name;
  j["offered"] = static_cast<double>(offered);
  j["served"] = static_cast<double>(served);
  j["dropped"] = static_cast<double>(dropped);
  j["shed"] = static_cast<double>(shed);
  j["slo_latency_violations"] = static_cast<double>(slo_latency_violations);
  j["slo_accuracy_violations"] = static_cast<double>(slo_accuracy_violations);
  j["avg_latency_ms"] = avg_latency_ms;
  j["accuracy"] = accuracy;
  return j;
}

Json FleetMetrics::to_json() const {
  Json j = Json::object();
  visit_fleet_scalars(*this, [&](const char* name, double value) {
    check_finite(name, value);
    j[name] = value;
  });
  Json tens = Json::array();
  for (const TenantMetrics& t : tenants) tens.push_back(t.to_json());
  j["tenants"] = std::move(tens);
  Json devs = Json::array();
  for (const EdgeMetrics& d : devices) devs.push_back(d.to_json());
  j["devices"] = std::move(devs);
  return j;
}

std::string FleetMetrics::csv_header() {
  std::string out;
  visit_fleet_scalars(FleetMetrics{}, [&](const char* name, double) {
    if (!out.empty()) out += ",";
    out += name;
  });
  return out;
}

std::string FleetMetrics::csv_row() const {
  std::ostringstream os;
  os << std::setprecision(std::numeric_limits<double>::max_digits10);
  bool first = true;
  visit_fleet_scalars(*this, [&](const char* name, double value) {
    check_finite(name, value);
    if (!first) os << ",";
    os << value;
    first = false;
  });
  return os.str();
}

// ---------------------------------------------------------------------------
// Event-queue fleet simulation
// ---------------------------------------------------------------------------

namespace {

// Event ranks fix the order of same-time events. Arrivals are merged from a
// sorted vector and always win ties (matching the single-device loop, where
// a sampling tick runs only when strictly earlier than the next arrival);
// batch flushes dispatch buffered arrivals before the tick can change the
// operating point; the orchestrator observes post-tick state.
enum EventRank : int { kFlushRank = 0, kTickRank = 1, kOrchRank = 2 };

struct Event {
  double time_s = 0.0;
  int rank = 0;
  int device = -1;
  long seq = 0;         ///< Push order: final deterministic tie-break.
  long generation = 0;  ///< Batch-flush validity token.
};

struct EventAfter {
  bool operator()(const Event& a, const Event& b) const {
    if (a.time_s != b.time_s) return a.time_s > b.time_s;
    if (a.rank != b.rank) return a.rank > b.rank;
    if (a.device != b.device) return a.device > b.device;
    return a.seq > b.seq;
  }
};

struct DomainState {
  Rng rng;
  bool spiking = false;
  double spike_until_s = 0.0;
  explicit DomainState(std::uint64_t seed) : rng(seed) {}
};

}  // namespace

FleetMetrics simulate_fleet(const Library& library,
                            const RuntimePolicy& policy,
                            const FleetScenario& scenario) {
  require_valid_fleet_scenario(scenario, library);
  const double duration = scenario.base.duration_s;
  const std::size_t n_dev = scenario.devices.size();
  const std::size_t n_ten = scenario.tenants.size();

  FleetMetrics fm;
  fm.duration_s = duration;
  fm.tenants.resize(n_ten);
  for (std::size_t k = 0; k < n_ten; ++k) {
    fm.tenants[k].name = scenario.tenants[k].name.empty()
                             ? "tenant" + std::to_string(k)
                             : scenario.tenants[k].name;
  }

  // --- Arrival trace: one independent stream per tenant, merged. ---
  std::vector<WorkloadSpec> tenant_specs;
  tenant_specs.reserve(n_ten);
  for (const TenantSpec& t : scenario.tenants) {
    WorkloadSpec w = t.workload;
    w.duration_s = duration;  // the episode owns the clock
    tenant_specs.push_back(std::move(w));
  }
  const std::vector<FleetRequest> arrivals =
      generate_fleet_arrivals(tenant_specs, scenario.base.seed);

  // Offered-rate models for the capacity invariant: same seeds and specs as
  // the arrival generators, so the gate prices exactly the load the trace
  // carries. period_rate caches draws in index order, so query order cannot
  // perturb the stream.
  std::vector<std::unique_ptr<WorkloadModel>> rate_models(n_ten);
  for (std::size_t k = 0; k < n_ten; ++k) {
    if (tenant_specs[k].base_ips > 0.0) {
      rate_models[k] = std::make_unique<WorkloadModel>(
          tenant_specs[k], tenant_stream_seed(scenario.base.seed, k, n_ten));
    }
  }
  auto offered_rate = [&](double now) {
    double total = 0.0;
    for (std::size_t k = 0; k < n_ten; ++k) {
      if (!rate_models[k]) continue;
      const int period = static_cast<int>(now / tenant_specs[k].period_s);
      total += rate_models[k]->period_rate(std::max(period, 0));
    }
    return total;
  };

  // --- Devices: independent seeds (uniqueness asserted). ---
  std::vector<std::unique_ptr<DeviceSim>> devs;
  devs.reserve(n_dev);
  {
    std::set<std::uint64_t> seeds;
    for (std::size_t i = 0; i < n_dev; ++i) {
      EdgeScenario per_device = scenario.base;
      per_device.seed = fleet_device_seed(scenario.base.seed, i, n_dev);
      seeds.insert(per_device.seed);
      auto dev = std::make_unique<DeviceSim>(library, policy, per_device);
      dev->set_speed_factor(scenario.devices[i].speed_factor);
      devs.push_back(std::move(dev));
    }
    ADAPEX_CHECK(seeds.size() == n_dev,
                 "fleet device seeds collided — episode streams would "
                 "correlate");
  }
  std::vector<CircuitBreaker> breakers(n_dev,
                                       CircuitBreaker(scenario.breaker));
  std::vector<char> ejected(n_dev, 0);
  std::vector<double> next_sample(n_dev, scenario.base.sample_period_s);
  std::vector<std::vector<double>> batch_times(n_dev);
  std::vector<std::vector<int>> batch_tenants(n_dev);
  std::vector<long> batch_generation(n_dev, 0);

  std::vector<DomainState> domains;
  domains.reserve(scenario.fleet_faults.domains.size());
  for (std::size_t g = 0; g < scenario.fleet_faults.domains.size(); ++g) {
    domains.emplace_back(
        derive_seed(scenario.base.seed, kFleetDomainStream, g));
  }

  // Shedding levels: distinct tenant priorities, ascending; shed_classes
  // lowest classes are currently rejected (the top class never sheds).
  std::vector<int> priority_levels;
  for (const TenantSpec& t : scenario.tenants) {
    priority_levels.push_back(t.priority);
  }
  std::sort(priority_levels.begin(), priority_levels.end());
  priority_levels.erase(
      std::unique(priority_levels.begin(), priority_levels.end()),
      priority_levels.end());
  int shed_classes = 0;

  // A device is available when it can take traffic right now: not ejected,
  // not wedged, not cordoned dark, breaker not rejecting.
  auto available = [&](std::size_t i, double now) {
    return !ejected[i] && !devs[i]->wedged() &&
           devs[i]->dark_until() <= now && breakers[i].would_admit(now);
  };

  // --- Capacity-safe reconfiguration gate (installed unconditionally so
  // the violation counters are identical machinery in both modes). ---
  auto gate_for = [&](std::size_t d) {
    return [&, d](const ReconfigRequest& req) {
      double projected = 0.0;
      for (std::size_t i = 0; i < n_dev; ++i) {
        if (i == d || !available(i, req.now_s)) continue;
        projected += devs[i]->current_ips();
      }
      const double offered = offered_rate(req.now_s);
      // The invariant holds against the offered load, clamped to what the
      // fleet can currently deliver at all (projected + the requester):
      // during cold start or overload the aggregate capacity is already
      // below floor x offered, and an unclamped bound would veto every
      // reconfiguration — including the ones that grow capacity.
      const double deliverable =
          std::min(offered, projected + devs[d]->current_ips());
      const double floor_ips =
          scenario.stagger.min_capacity_fraction * deliverable;
      const bool meets = projected >= floor_ips;
      bool admit = !scenario.stagger.enabled || meets;
      bool forced = false;
      if (!admit && req.deferred_since_s >= 0.0 &&
          req.now_s - req.deferred_since_s >= scenario.stagger.max_defer_s) {
        // Starvation override: the device has waited out its budget.
        admit = true;
        forced = true;
      }
      if (!admit) {
        ++fm.stagger_deferrals;
        return false;
      }
      if (forced) ++fm.forced_reconfigs;
      if (offered > 0.0) {
        if (!meets) ++fm.capacity_violations;
        fm.min_capacity_fraction =
            std::min(fm.min_capacity_fraction, projected / offered);
      }
      return true;
    };
  };
  for (std::size_t d = 0; d < n_dev; ++d) {
    devs[d]->set_reconfig_gate(gate_for(d));
  }

  // --- Event queue. ---
  std::priority_queue<Event, std::vector<Event>, EventAfter> heap;
  long seq = 0;
  auto push = [&](double t, int rank, int device, long generation = 0) {
    heap.push(Event{t, rank, device, seq++, generation});
  };
  for (std::size_t d = 0; d < n_dev; ++d) {
    if (next_sample[d] < duration) {
      push(next_sample[d], kTickRank, static_cast<int>(d));
    }
  }
  double next_orch = scenario.orchestrator_period_s;
  if (next_orch < duration) push(next_orch, kOrchRank, -1);

  std::vector<double> latencies;
  latencies.reserve(arrivals.size());
  std::vector<double> tenant_lat_sum(n_ten, 0.0);
  std::vector<double> tenant_acc_sum(n_ten, 0.0);
  std::vector<int> last_device(n_ten, -1);

  auto account = [&](int tenant, const ArrivalOutcome& out) {
    TenantMetrics& tm = fm.tenants[static_cast<std::size_t>(tenant)];
    const TenantSpec& spec =
        scenario.tenants[static_cast<std::size_t>(tenant)];
    if (!out.served) {
      ++fm.dropped;
      ++tm.dropped;
      return;
    }
    ++fm.served;
    ++tm.served;
    latencies.push_back(out.latency_ms);
    tenant_lat_sum[static_cast<std::size_t>(tenant)] += out.latency_ms;
    tenant_acc_sum[static_cast<std::size_t>(tenant)] += out.accuracy;
    if (spec.slo_latency_ms > 0.0 && out.latency_ms > spec.slo_latency_ms) {
      ++tm.slo_latency_violations;
    }
    if (spec.min_accuracy > 0.0 && out.accuracy < spec.min_accuracy) {
      ++tm.slo_accuracy_violations;
    }
  };

  auto flush_batch = [&](std::size_t d, double now) {
    const std::vector<ArrivalOutcome> outs = devs[d]->serve_batch(
        now, scenario.batching.setup_ms / 1e3, batch_times[d]);
    for (std::size_t i = 0; i < outs.size(); ++i) {
      account(batch_tenants[d][i], outs[i]);
    }
    batch_times[d].clear();
    batch_tenants[d].clear();
    ++batch_generation[d];
  };

  auto route_arrival = [&](const FleetRequest& req) {
    const std::size_t k = static_cast<std::size_t>(req.tenant);
    TenantMetrics& tm = fm.tenants[k];
    ++fm.offered;
    ++tm.offered;
    // Admission control: the shed classes bounce here, before any device
    // sees the request.
    if (scenario.admission.enabled && shed_classes > 0) {
      const int cutoff =
          priority_levels[static_cast<std::size_t>(shed_classes) - 1];
      if (scenario.tenants[k].priority <= cutoff) {
        ++fm.shed;
        ++tm.shed;
        return;
      }
    }
    // Health-aware JSQ with graceful fallback tiers: prefer fully
    // available devices; then tolerate cordoned (dark) ones; finally
    // anything not ejected (total-outage routing beats dropping on the
    // floor — the device queue applies its own capacity bound).
    int best = -1;
    double best_backlog = 0.0;
    auto consider = [&](std::size_t i) {
      const double b = devs[i]->backlog_requests(req.time_s);
      if (best < 0 || b < best_backlog) {
        best = static_cast<int>(i);
        best_backlog = b;
      }
    };
    for (std::size_t i = 0; i < n_dev; ++i) {
      if (available(i, req.time_s)) consider(i);
    }
    bool breaker_checked = best >= 0;
    if (best < 0) {
      for (std::size_t i = 0; i < n_dev; ++i) {
        if (!ejected[i] && breakers[i].would_admit(req.time_s)) consider(i);
      }
      breaker_checked = best >= 0;
    }
    if (best < 0) {
      for (std::size_t i = 0; i < n_dev; ++i) {
        if (!ejected[i]) consider(i);
      }
    }
    if (best < 0) {
      // Every device ejected: nowhere to route.
      ++fm.shed;
      ++tm.shed;
      return;
    }
    // Sticky hysteresis: keep the tenant's previous device while its queue
    // is within the band — rerouting on every JSQ wobble defeats cache
    // locality on real hosts and makes failover counts meaningless.
    int chosen = best;
    const int prev = last_device[k];
    if (prev >= 0 && prev != best &&
        available(static_cast<std::size_t>(prev), req.time_s)) {
      const double prev_backlog =
          devs[static_cast<std::size_t>(prev)]->backlog_requests(req.time_s);
      if (prev_backlog <=
          best_backlog * (1.0 + scenario.balance_hysteresis) + 1e-12) {
        chosen = prev;
      }
    }
    if (prev >= 0 && chosen != prev) ++fm.failovers;
    last_device[k] = chosen;
    const std::size_t d = static_cast<std::size_t>(chosen);
    if (breaker_checked) breakers[d].admit(req.time_s);

    if (scenario.batching.enabled && scenario.batching.max_batch > 1) {
      devs[d]->note_arrival();
      batch_times[d].push_back(req.time_s);
      batch_tenants[d].push_back(req.tenant);
      if (static_cast<int>(batch_times[d].size()) >=
          scenario.batching.max_batch) {
        flush_batch(d, req.time_s);
      } else if (batch_times[d].size() == 1) {
        push(std::min(req.time_s + scenario.batching.max_wait_ms / 1e3,
                      duration),
             kFlushRank, chosen, batch_generation[d]);
      }
    } else {
      account(req.tenant, devs[d]->on_arrival(req.time_s));
    }
  };

  auto orchestrate = [&](double now) {
    // Correlated failure domains: one unconditional draw per domain per
    // tick (the spike sequence depends only on seed and tick index), spike
    // end quantized to this cadence.
    for (std::size_t g = 0; g < domains.size(); ++g) {
      DomainState& ds = domains[g];
      const FailureDomain& spec = scenario.fleet_faults.domains[g];
      const double u = ds.rng.uniform();
      if (ds.spiking && now + 1e-12 >= ds.spike_until_s) ds.spiking = false;
      if (!ds.spiking && u < spec.spike_prob) {
        ds.spiking = true;
        ds.spike_until_s = now + spec.spike_duration_s;
        ++fm.domain_spikes;
      }
    }
    if (!domains.empty()) {
      for (std::size_t i = 0; i < n_dev; ++i) {
        const int g = scenario.devices[i].domain;
        const bool spiking = g >= 0 && domains[static_cast<std::size_t>(g)]
                                           .spiking;
        if (spiking) {
          const FailureDomain& spec =
              scenario.fleet_faults.domains[static_cast<std::size_t>(g)];
          devs[i]->set_fault_scale(spec.transient_mult, spec.seu_mult);
        } else {
          devs[i]->set_fault_scale(1.0, 1.0);
        }
      }
    }
    // Breaker observation + watchdog-driven ejection.
    for (std::size_t i = 0; i < n_dev; ++i) {
      const bool failing =
          devs[i]->wedged() ||
          devs[i]->health() == HealthState::kBackoff ||
          devs[i]->health() == HealthState::kDegraded ||
          devs[i]->dark_until() > now + scenario.breaker.wedge_threshold_s;
      breakers[i].observe(failing, now);
      if (scenario.eject_after_watchdog > 0 && !ejected[i] &&
          devs[i]->watchdog_recoveries() >= scenario.eject_after_watchdog) {
        ejected[i] = 1;
        ++fm.ejections;
      }
    }
    // Admission watermarks over the pooled backlog fraction.
    if (scenario.admission.enabled && priority_levels.size() > 1) {
      double waiting = 0.0;
      for (std::size_t i = 0; i < n_dev; ++i) {
        if (!ejected[i]) waiting += devs[i]->backlog_requests(now);
      }
      const double cap = static_cast<double>(n_dev) *
                         static_cast<double>(scenario.base.queue_capacity);
      const double load = cap > 0.0 ? waiting / cap : 0.0;
      const int max_shed = static_cast<int>(priority_levels.size()) - 1;
      if (load > scenario.admission.high_watermark) {
        shed_classes = std::min(shed_classes + 1, max_shed);
      } else if (load < scenario.admission.low_watermark) {
        shed_classes = std::max(shed_classes - 1, 0);
      }
    }
    // Time-weighted capacity accounting + correlated-outage depth.
    double avail_ips = 0.0;
    double total_ips = 0.0;
    int down = 0;
    for (std::size_t i = 0; i < n_dev; ++i) {
      const double ips = devs[i]->current_ips();
      total_ips += ips;
      if (available(i, now)) {
        avail_ips += ips;
      } else {
        ++down;
      }
    }
    if (total_ips > 0.0) {
      fm.degraded_capacity_s +=
          (1.0 - avail_ips / total_ips) * scenario.orchestrator_period_s;
    }
    fm.max_outage_depth = std::max(fm.max_outage_depth, down);
  };

  // --- Main loop: merge the sorted arrival trace against the heap;
  // arrivals win ties (the single-device tick-vs-arrival rule). ---
  std::size_t ai = 0;
  for (;;) {
    const bool have_arrival = ai < arrivals.size();
    const bool have_event = !heap.empty();
    if (!have_arrival && !have_event) break;
    if (have_arrival &&
        (!have_event || arrivals[ai].time_s <= heap.top().time_s)) {
      route_arrival(arrivals[ai++]);
      ++fm.events;
      continue;
    }
    const Event ev = heap.top();
    heap.pop();
    ++fm.events;
    switch (ev.rank) {
      case kFlushRank: {
        const std::size_t d = static_cast<std::size_t>(ev.device);
        if (ev.generation == batch_generation[d] && !batch_times[d].empty()) {
          flush_batch(d, ev.time_s);
        }
        break;
      }
      case kTickRank: {
        const std::size_t d = static_cast<std::size_t>(ev.device);
        devs[d]->on_tick(ev.time_s);
        next_sample[d] += scenario.base.sample_period_s;
        if (next_sample[d] < duration) {
          push(next_sample[d], kTickRank, ev.device);
        }
        break;
      }
      case kOrchRank: {
        orchestrate(ev.time_s);
        next_orch += scenario.orchestrator_period_s;
        if (next_orch < duration) push(next_orch, kOrchRank, -1);
        break;
      }
    }
  }

  // --- Close out. ---
  double dead_total = 0.0;
  fm.devices.reserve(n_dev);
  for (std::size_t d = 0; d < n_dev; ++d) {
    devs[d]->finalize(duration);
    dead_total += devs[d]->metrics().dead_time_s;
    fm.devices.push_back(std::move(devs[d]->metrics()));
  }
  fm.availability_pct =
      n_dev > 0 && duration > 0.0
          ? 100.0 * std::max(0.0, 1.0 - dead_total /
                                            (static_cast<double>(n_dev) *
                                             duration))
          : 100.0;
  for (std::size_t i = 0; i < breakers.size(); ++i) {
    fm.breaker_opens += breakers[i].opens();
  }
  for (std::size_t k = 0; k < n_ten; ++k) {
    TenantMetrics& tm = fm.tenants[k];
    tm.avg_latency_ms = tm.served > 0 ? tenant_lat_sum[k] / tm.served : 0.0;
    tm.accuracy = tm.served > 0 ? tenant_acc_sum[k] / tm.served : 0.0;
  }
  if (!latencies.empty()) {
    std::sort(latencies.begin(), latencies.end());
    auto quantile = [&](double q) {
      const std::size_t idx = std::min(
          latencies.size() - 1,
          static_cast<std::size_t>(q * static_cast<double>(latencies.size())));
      return latencies[idx];
    };
    fm.p50_latency_ms = quantile(0.50);
    fm.p99_latency_ms = quantile(0.99);
    fm.p999_latency_ms = quantile(0.999);
  }
  return fm;
}

FleetScenario fleet_from_edge(const EdgeScenario& scenario) {
  FleetScenario f;
  f.base = scenario;
  FleetDeviceSpec dev;
  dev.name = "dev0";
  f.devices.push_back(std::move(dev));
  TenantSpec tenant;
  tenant.name = "tenant0";
  tenant.workload = workload_spec_from(scenario);
  f.tenants.push_back(std::move(tenant));
  // Every fleet-level mechanism stays at its inert default: no batching, no
  // admission control, breakers disabled, staggering off, no domains, no
  // ejection — the lone device sees exactly the simulate_edge event stream.
  return f;
}

}  // namespace adapex
