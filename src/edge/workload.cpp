#include "edge/workload.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace adapex {

namespace {

// Stream identifier for per-tenant arrival streams (derive_seed).
constexpr std::uint64_t kTenantStream = 0x7E2A;

}  // namespace

std::uint64_t tenant_stream_seed(std::uint64_t fleet_seed, std::size_t index,
                                 std::size_t tenant_count) {
  ADAPEX_CHECK(index < tenant_count, "tenant index out of range");
  // The identity mapping for a lone tenant keeps the fleet's arrival stream
  // byte-identical to the single-device WorkloadModel stream.
  if (tenant_count == 1) return fleet_seed;
  return derive_seed(fleet_seed, kTenantStream, index);
}

std::vector<FleetRequest> generate_fleet_arrivals(
    const std::vector<WorkloadSpec>& tenants, std::uint64_t fleet_seed) {
  std::vector<FleetRequest> merged;
  for (std::size_t k = 0; k < tenants.size(); ++k) {
    // A zero-rate tenant is a valid degenerate stream: nothing arrives
    // (mirrors simulate_edge's empty-fleet early return).
    if (!(tenants[k].base_ips > 0.0)) continue;
    WorkloadModel model(tenants[k],
                        tenant_stream_seed(fleet_seed, k, tenants.size()));
    for (double t : model.generate_arrivals()) {
      merged.push_back(FleetRequest{t, static_cast<int>(k)});
    }
  }
  // Each per-tenant stream is strictly increasing, so (time, tenant) is a
  // deterministic total order.
  std::sort(merged.begin(), merged.end(),
            [](const FleetRequest& a, const FleetRequest& b) {
              if (a.time_s != b.time_s) return a.time_s < b.time_s;
              return a.tenant < b.tenant;
            });
  return merged;
}

const char* to_string(WorkloadPattern p) {
  switch (p) {
    case WorkloadPattern::kRandomDeviation: return "random_deviation";
    case WorkloadPattern::kDiurnal: return "diurnal";
    case WorkloadPattern::kFlashCrowd: return "flash_crowd";
    case WorkloadPattern::kTrace: return "trace";
  }
  return "?";
}

WorkloadModel::WorkloadModel(const WorkloadSpec& spec, std::uint64_t seed)
    : spec_(spec), rng_(seed) {
  ADAPEX_CHECK(spec.base_ips > 0 && spec.duration_s > 0 && spec.period_s > 0,
               "degenerate workload spec");
  if (spec.pattern == WorkloadPattern::kTrace) {
    ADAPEX_CHECK(!spec.trace.empty(), "trace pattern needs rate multipliers");
  }
}

double WorkloadModel::period_rate(int index) {
  ADAPEX_CHECK(index >= 0, "negative period index");
  // Random rates are drawn sequentially and cached so repeated queries are
  // consistent.
  while (static_cast<int>(cached_rates_.size()) <= index) {
    const int i = static_cast<int>(cached_rates_.size());
    const double t0 = i * spec_.period_s;
    double mult = 1.0;
    switch (spec_.pattern) {
      case WorkloadPattern::kRandomDeviation:
        mult = 1.0 + rng_.uniform(-spec_.deviation, spec_.deviation);
        break;
      case WorkloadPattern::kDiurnal:
        mult = 1.0 + spec_.deviation *
                         std::sin(2.0 * 3.14159265358979323846 * t0 /
                                  spec_.duration_s);
        break;
      case WorkloadPattern::kFlashCrowd:
        mult = (t0 >= spec_.spike_start_s &&
                t0 < spec_.spike_start_s + spec_.spike_duration_s)
                   ? spec_.spike_multiplier
                   : 1.0;
        break;
      case WorkloadPattern::kTrace:
        mult = spec_.trace[static_cast<std::size_t>(i) % spec_.trace.size()];
        break;
    }
    cached_rates_.push_back(std::max(spec_.base_ips * mult, 0.0));
  }
  return cached_rates_[static_cast<std::size_t>(index)];
}

std::vector<double> WorkloadModel::generate_arrivals() {
  std::vector<double> arrivals;
  arrivals.reserve(
      static_cast<std::size_t>(spec_.base_ips * spec_.duration_s * 1.5) + 16);
  double t = 0.0;
  for (;;) {
    const int period = static_cast<int>(t / spec_.period_s);
    const double rate = period_rate(period);
    if (rate <= 1e-12) {
      // Dead period: jump to its end.
      t = (period + 1) * spec_.period_s;
      if (t >= spec_.duration_s) break;
      continue;
    }
    const double u = std::max(rng_.uniform(), 1e-12);
    t += -std::log(u) / rate;
    if (t >= spec_.duration_s) break;
    // If the step crossed a period boundary the rate error is one
    // inter-arrival gap — negligible at bench rates.
    arrivals.push_back(t);
  }
  return arrivals;
}

}  // namespace adapex
