// Single-device serving simulator — the per-device core of simulate_edge,
// extracted so the fleet simulator (edge/fleet.hpp) can run N of them behind
// one event queue.
//
// A DeviceSim owns exactly the state the monolithic simulate_edge loop used
// to keep in locals: the RuntimeManager + FaultInjector pair (PR 3/4), the
// single-server FIFO clock, the workload monitor, the drift detector, the
// soft-error ledger, and the EdgeMetrics accumulator. The caller owns the
// clock: it feeds arrivals (on_arrival / serve_batch) and sampling ticks
// (on_tick) in nondecreasing time order and closes the episode with
// finalize(). Driven single-handedly at the scenario cadence this class
// reproduces the pre-extraction simulate_edge byte for byte — simulate_edge
// itself is now a thin merge loop over one DeviceSim, and the fleet's
// size-1 identity test pins that equivalence.
//
// Three hooks exist purely for the fleet layer and are inert at their
// defaults (the legacy path never installs them, so the extraction cannot
// perturb single-device episodes):
//   - a reconfiguration gate: consulted before any bitstream load attempt;
//     a denial rolls the manager proposal back (cancel_reconfig — no
//     failure recorded, no backoff) and re-proposes on later ticks, which
//     lets the fleet orchestrator stagger reconfigurations fleet-wide;
//   - fault-rate scaling: forwards to FaultInjector::set_rate_scale so
//     correlated failure domains can co-spike reconfig-failure and SEU
//     rates without perturbing any draw sequence (scale 1.0 is exact);
//   - a speed factor: models heterogeneous fabric clocks; the manager
//     searches in device-normalized rate space and service/latency scale
//     accordingly (factor 1.0 is floating-point exact).

#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "edge/simulation.hpp"
#include "runtime/faults.hpp"
#include "runtime/manager.hpp"
#include "runtime/monitor.hpp"

namespace adapex {

/// Result of offering one request to a device.
struct ArrivalOutcome {
  bool served = false;
  double latency_ms = 0.0;  ///< Queue wait + pipeline latency (served only).
  double accuracy = 0.0;    ///< Effective accuracy delivered (served only).
};

/// One reconfiguration attempt asking the fleet orchestrator for admission.
struct ReconfigRequest {
  double now_s = 0.0;
  double dead_s = 0.0;            ///< Nominal dark time of the load.
  double deferred_since_s = -1.0; ///< First denial of this proposal; < 0 on
                                  ///< the first ask.
};

/// Returns true to admit the reconfiguration now, false to defer it.
using ReconfigGate = std::function<bool(const ReconfigRequest&)>;

class DeviceSim {
 public:
  /// `scenario.seed` is this device's episode seed (the fleet derives one
  /// per device); the workload fields of the scenario are ignored — the
  /// caller owns arrival generation. The manager starts on the most
  /// accurate eligible point, exactly like simulate_edge.
  DeviceSim(const Library& library, const RuntimePolicy& policy,
            const EdgeScenario& scenario);

  // ---- Fleet hooks (inert at defaults; simulate_edge installs none) ----

  /// Gate consulted before every bitstream-load attempt. On denial the
  /// proposal is cancelled (no failure counted, no backoff) and re-proposed
  /// on subsequent ticks until admitted.
  void set_reconfig_gate(ReconfigGate gate) { gate_ = std::move(gate); }

  /// Correlated-failure scaling: multiplies reconfig-failure/stall rates by
  /// `transient` and SEU rates by `seu` (clamped to probability 1).
  void set_fault_scale(double transient, double seu) {
    injector_.set_rate_scale(transient, seu);
  }

  /// Heterogeneous fabric clock: entry throughput is multiplied and entry
  /// latency divided by `factor`. Must be positive.
  void set_speed_factor(double factor);

  // ---- Episode drive (times must be fed in nondecreasing order) ----

  /// One request arriving at `t`: monitor count + immediate dispatch (the
  /// legacy single-device path).
  ArrivalOutcome on_arrival(double t);

  /// Monitor-counts an arrival without dispatching it (fleet batching
  /// buffers the request; serve it later via serve_batch).
  void note_arrival();

  /// Dispatches a buffered batch at `now`. `arrival_times` are the batched
  /// requests' original arrival times (nondecreasing, all <= now); the
  /// first admitted request pays `setup_s` of batch-formation overhead.
  /// note_arrival() must already have counted each request.
  std::vector<ArrivalOutcome> serve_batch(
      double now, double setup_s, const std::vector<double>& arrival_times);

  /// One manager sampling tick at `now`: fault/SEU draws, scrubbing,
  /// monitor sample, adaptation decision, drift detection, watchdog, SLO
  /// accounting, trace point.
  void on_tick(double now);

  /// Closes the episode: final energy integration, soft-error flush, ratio
  /// metrics, availability. Call exactly once, after the last event.
  void finalize(double duration_s);

  // ---- Observability (used by the fleet balancer / orchestrator) ----

  EdgeMetrics& metrics() { return metrics_; }
  const EdgeMetrics& metrics() const { return metrics_; }

  /// Requests currently waiting or in service if dispatched at `now`.
  double backlog_requests(double now) const;
  /// Time the device's backlog (and any dark window) clears.
  double server_free() const { return server_free_; }
  /// Scheduled end of accelerator dark time (reconfig/stall/scrub/wedge).
  double dark_until() const { return dark_until_; }
  /// True while a config-memory hang wedges the pipeline.
  bool wedged() const { return hang_active_; }
  /// Active entry's delivered throughput (speed-scaled), requests/s.
  double current_ips() const;
  /// Active entry's effective accuracy under the live upset set.
  double current_accuracy() const { return effective_accuracy(manager_.current()); }
  HealthState health() const { return manager_.state(); }
  int consecutive_failures() const { return manager_.consecutive_failures(); }
  int watchdog_recoveries() const { return metrics_.watchdog_recoveries; }
  /// A gate-denied reconfiguration is waiting to be re-proposed.
  bool reconfig_deferred() const { return deferred_reconfig_; }
  const RuntimeManager& manager() const { return manager_; }

 private:
  ArrivalOutcome serve_one(double t, double dispatch_s);
  void account_energy(double upto, const LibraryEntry& e);
  double first_exit_fraction(const LibraryEntry& e) const;
  double effective_accuracy(const LibraryEntry& e) const;
  double effective_first_exit(const LibraryEntry& e) const;
  std::size_t undetected_active() const;
  void detect_active(double now);
  void do_scrub(double now, TracePoint& tp);
  void apply_decision(Decision& d, double now, TracePoint& tp);

  EdgeScenario scenario_;
  RuntimePolicy policy_;
  const Library* library_;
  RuntimeManager manager_;
  FaultInjector injector_;
  WorkloadMonitor monitor_;
  EdgeMetrics metrics_;

  ReconfigGate gate_;
  double speed_ = 1.0;
  bool deferred_reconfig_ = false;
  double deferred_since_ = 0.0;

  // Single-server FIFO + energy integration (simulate_edge locals).
  double server_free_ = 0.0;
  double latency_sum_ms_ = 0.0;
  double accuracy_sum_ = 0.0;
  double energy_j_ = 0.0;
  double busy_until_ = 0.0;
  double last_power_checkpoint_ = 0.0;
  double static_w_ = 0.0;

  // Robustness bookkeeping.
  double failing_since_ = -1.0;
  double dark_until_ = 0.0;
  long last_served_ = 0;
  long dropped_at_last_tick_ = 0;
  int stagnant_ticks_ = 0;
  bool has_delayed_ = false;
  double delayed_rate_ = 0.0;

  // Soft-error state.
  int weight_upsets_active_ = 0;
  int config_wrong_active_ = 0;
  int exit_corrupt_active_ = 0;
  bool hang_active_ = false;
  std::vector<double> undetected_weight_times_;
  std::vector<double> undetected_config_times_;
  double next_scrub_s_ = 0.0;
  DriftDetector detector_;
  const LibraryEntry* drift_expect_entry_ = nullptr;
  bool had_seu_recovery_ = false;
  double post_recovery_acc_sum_ = 0.0;
  long post_recovery_served_ = 0;
};

}  // namespace adapex
