// Fleet-scale resilient serving simulator.
//
// Scales the single-device edge episode (edge/simulation.hpp) to a fleet of
// N heterogeneous FPGA devices behind one discrete-event core: a binary-heap
// event queue drives per-device sampling ticks, mixed-tenant arrivals, batch
// flushes, and a fleet orchestrator, in a deterministic total order
// (time, event rank, device, sequence). Each device wraps the PR 3/4
// RuntimeManager + FaultInjector stack via DeviceSim, seeded from an
// independent splitmix64-derived stream per device (uniqueness asserted), so
// single-device fault sequences stay byte-identical to the single-device
// simulator: a fleet of size 1 with zero fleet-level faults reproduces
// simulate_edge event for event (fleet_from_edge + the identity test pin
// this).
//
// Fleet-level machinery, all inert at defaults:
//   - Health-aware load balancing: join-shortest-queue with a sticky
//     hysteresis band per tenant, skipping cordoned (dark) devices, ejected
//     devices, and devices whose circuit breaker is open.
//   - Circuit breakers: per-device Closed -> Open -> HalfOpen machines fed
//     by the PR 3 health states (Backoff/Degraded), config-memory wedges,
//     and long dark windows, observed at orchestrator cadence.
//   - Admission control: per-tenant latency/accuracy SLO accounting plus
//     watermark-driven priority shedding — when fleet backlog crosses the
//     high watermark, the lowest-priority tenants are shed until the
//     backlog falls below the low watermark.
//   - Dynamic batching: per-device request coalescing with a max-batch /
//     max-wait flush rule and a per-batch setup cost.
//   - Correlated failure domains (FleetFaultSpec): shared power/thermal
//     groups whose reconfig-failure and SEU rates co-spike. Spikes are
//     drawn from a per-domain stream independent of every device stream,
//     and scale rates through FaultInjector::set_rate_scale — which never
//     perturbs a draw sequence — so enabling domains cannot repunctuate
//     any device's private fault timeline.
//   - Capacity-safe staggered reconfiguration: every DeviceSim proposal is
//     routed through a ReconfigGate that admits a bitstream load only while
//     the projected aggregate capacity of the remaining fleet stays at or
//     above `StaggerPolicy::min_capacity_fraction` of the currently offered
//     load; denials roll the proposal back (no failure, no backoff) and
//     re-raise it until admitted, with a `max_defer_s` starvation override
//     so a lone overloaded device cannot be deferred forever. The same
//     bookkeeping runs with staggering disabled, so the capacity-invariant
//     violation counters are directly comparable across the two modes.
//
// The orchestrator also runs the drain/cordon/uncordon lifecycle implied by
// the gate (an admitted load cordons the device for its dark window; the
// balancer routes around it; the device uncordons when the window passes)
// and a watchdog-driven ejection rule for chronically wedged devices.
//
// Metrics are struct-of-arrays: fleet scalars (SLO violations, p50/p99/p999
// latency, availability, time-weighted degraded capacity, failovers,
// correlated-outage depth, stagger accounting), a TenantMetrics row per
// tenant, and the full per-device EdgeMetrics vector. Million-request
// episodes run in wall-clock seconds and are byte-identical under any
// ADAPEX_THREADS setting (the core is strictly sequential).

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "edge/device_sim.hpp"

namespace adapex {

/// One device slot in the fleet.
struct FleetDeviceSpec {
  std::string name;           ///< Label for reports; defaulted to "dev<i>".
  double speed_factor = 1.0;  ///< Fabric-clock multiplier (DeviceSim).
  int domain = -1;            ///< Failure-domain index, -1 = independent.
};

/// One workload tenant sharing the fleet.
struct TenantSpec {
  std::string name;           ///< Label; defaulted to "tenant<k>".
  WorkloadSpec workload;      ///< Arrival process (duration is forced to the
                              ///< episode duration by simulate_fleet).
  double slo_latency_ms = 0.0;  ///< Per-request latency SLO; 0 disables.
  double min_accuracy = 0.0;    ///< Per-request accuracy SLO; 0 disables.
  int priority = 0;           ///< Higher survives admission shedding longer.
};

/// A shared power/thermal group whose fault rates co-spike.
struct FailureDomain {
  std::string name;
  /// Probability, per orchestrator tick, that a spike starts while the
  /// domain is calm (drawn from the domain's private stream every tick).
  double spike_prob = 0.0;
  double spike_duration_s = 5.0;
  /// Rate multipliers applied to member devices for the spike's duration:
  /// reconfig-failure/stall rates x `transient_mult`, SEU rates x
  /// `seu_mult` (spike end is quantized to the orchestrator cadence).
  double transient_mult = 1.0;
  double seu_mult = 1.0;
};

/// Fleet-level fault model (device-level faults live in EdgeScenario).
struct FleetFaultSpec {
  std::vector<FailureDomain> domains;
};

/// Per-device dynamic batching.
struct BatchingPolicy {
  bool enabled = false;
  int max_batch = 8;        ///< Flush when this many requests are buffered.
  double max_wait_ms = 5.0; ///< ... or when the oldest has waited this long.
  double setup_ms = 0.0;    ///< Batch-formation overhead, paid once/batch.
};

/// Watermark-driven priority shedding.
struct AdmissionPolicy {
  bool enabled = false;
  /// Fleet backlog fraction (waiting requests / aggregate queue capacity)
  /// above which the next-lowest tenant priority class is shed.
  double high_watermark = 0.80;
  /// Fraction below which the most recently shed class is readmitted.
  double low_watermark = 0.50;
};

/// Per-device circuit breaker thresholds.
struct CircuitBreakerPolicy {
  /// Consecutive failing orchestrator observations that open the breaker;
  /// 0 disables breakers entirely.
  int open_after_failures = 0;
  /// A device dark for longer than this past `now` counts as failing.
  double wedge_threshold_s = 2.0;
  /// Open holds for this long, then the next admission probe goes HalfOpen.
  double open_duration_s = 5.0;
  /// Requests admitted in HalfOpen before the next observation decides.
  int half_open_probes = 4;
};

/// Capacity-safe staggered reconfiguration.
struct StaggerPolicy {
  bool enabled = false;
  /// Hard invariant: a load is admitted only while the projected aggregate
  /// capacity of the fleet minus the requesting device stays at or above
  /// this fraction of the currently offered load — clamped to the fleet's
  /// current deliverable capacity, so a cold-starting or overloaded fleet
  /// (aggregate capacity already below floor x offered) can still roll out
  /// the capacity-growing reconfigurations one device at a time.
  double min_capacity_fraction = 0.70;
  /// Starvation override: a proposal deferred longer than this is admitted
  /// regardless (counted in FleetMetrics::forced_reconfigs), so a lone
  /// overloaded device cannot livelock behind its own capacity share.
  double max_defer_s = 10.0;
};

/// Full fleet scenario. `base` supplies the per-device knobs (sampling
/// cadence, queue capacity, watchdog, baseline FaultSpec) plus the episode
/// duration and the fleet seed; its workload fields are ignored — tenants
/// own arrival generation.
struct FleetScenario {
  EdgeScenario base;
  std::vector<FleetDeviceSpec> devices;
  std::vector<TenantSpec> tenants;
  FleetFaultSpec fleet_faults;
  BatchingPolicy batching;
  AdmissionPolicy admission;
  CircuitBreakerPolicy breaker;
  StaggerPolicy stagger;
  /// Orchestrator cadence: breaker observation, domain-spike draws,
  /// admission watermarks, ejection, capacity integration.
  double orchestrator_period_s = 1.0;
  /// JSQ stickiness: a tenant keeps its previous device while that backlog
  /// is within (1 + hysteresis) of the shortest queue.
  double balance_hysteresis = 0.25;
  /// Eject a device after this many watchdog recoveries; 0 disables.
  int eject_after_watchdog = 0;

  /// Parses the scenario from JSON (every field optional; unknown keys are
  /// errors surfaced through lint, not here). Used by `adapex_lint
  /// --fleet-scenario`.
  static FleetScenario from_json(const Json& j);
  Json to_json() const;
};

/// Seed of device `index` in a `device_count`-device fleet. A single-device
/// fleet consumes `fleet_seed` directly — its manager/fault streams are then
/// byte-identical to simulate_edge's — while larger fleets derive one
/// independent splitmix64 stream per device.
std::uint64_t fleet_device_seed(std::uint64_t fleet_seed, std::size_t index,
                                std::size_t device_count);

/// Validates the scenario without throwing: rules FS1-FS8 plus the embedded
/// base-scenario lint (ES*/RF*). One diagnostic per violation.
analysis::LintReport lint_fleet_scenario(const FleetScenario& scenario);
/// Library-aware overload (adds the RF6 mitigation check).
analysis::LintReport lint_fleet_scenario(const FleetScenario& scenario,
                                         const Library& library);
/// Throws ConfigError listing every violation; no-op on a valid scenario.
void require_valid_fleet_scenario(const FleetScenario& scenario);
void require_valid_fleet_scenario(const FleetScenario& scenario,
                                  const Library& library);

/// Per-device circuit breaker: Closed admits, Open rejects, HalfOpen admits
/// a bounded probe budget. Driven by observe() at orchestrator cadence and
/// admit() per routed request.
class CircuitBreaker {
 public:
  enum class State { kClosed, kOpen, kHalfOpen };

  explicit CircuitBreaker(const CircuitBreakerPolicy& policy);

  /// One health observation. `failing` latches consecutive-failure counts;
  /// a clean observation closes a HalfOpen breaker and resets the count.
  void observe(bool failing, double now_s);
  /// Would a request routed now be admitted? (const: no probe consumed).
  bool would_admit(double now_s) const;
  /// Admits a request (consumes a HalfOpen probe; Open flips to HalfOpen
  /// once `open_duration_s` has elapsed). Returns false when rejected.
  bool admit(double now_s);

  State state() const { return state_; }
  int opens() const { return opens_; }

 private:
  CircuitBreakerPolicy policy_;
  State state_ = State::kClosed;
  int consecutive_failing_ = 0;
  int probes_left_ = 0;
  double opened_at_s_ = 0.0;
  int opens_ = 0;
};

const char* to_string(CircuitBreaker::State s);

/// Per-tenant serving outcome.
struct TenantMetrics {
  std::string name;
  long offered = 0;
  long served = 0;
  long dropped = 0;  ///< Lost at a device (queue overflow / wedge).
  long shed = 0;     ///< Rejected by admission control or unroutable.
  long slo_latency_violations = 0;
  long slo_accuracy_violations = 0;
  double avg_latency_ms = 0.0;
  double accuracy = 0.0;

  Json to_json() const;
};

/// Fleet-level results: struct-of-arrays over scalars, tenants, devices.
struct FleetMetrics {
  long offered = 0;
  long served = 0;
  long dropped = 0;
  long shed = 0;
  double p50_latency_ms = 0.0;
  double p99_latency_ms = 0.0;
  double p999_latency_ms = 0.0;
  /// 100 x (1 - pooled device dead time / (devices x duration)).
  double availability_pct = 100.0;
  /// Time integral of the unavailable capacity fraction (seconds of
  /// fleet-equivalent capacity lost), quantized to orchestrator ticks.
  double degraded_capacity_s = 0.0;
  long failovers = 0;           ///< Tenant rerouted off its sticky device.
  long stagger_deferrals = 0;   ///< Gate denials (stagger enabled only).
  long forced_reconfigs = 0;    ///< Starvation-override admissions.
  /// Admissions that went through while projected capacity was below the
  /// floor — counted identically with staggering on or off, so the two
  /// modes are directly comparable on the same trace.
  long capacity_violations = 0;
  /// Smallest projected-capacity/offered-load ratio seen at any admission;
  /// 999 when no reconfiguration was ever admitted under load.
  double min_capacity_fraction = 999.0;
  int domain_spikes = 0;
  /// Deepest simultaneous-unavailable-device count observed (correlated
  /// outage depth).
  int max_outage_depth = 0;
  int breaker_opens = 0;
  int ejections = 0;
  long events = 0;  ///< Discrete events processed (bench: events/second).
  double duration_s = 0.0;

  std::vector<TenantMetrics> tenants;
  std::vector<EdgeMetrics> devices;

  /// Fleet scalars + nested tenant/device arrays. Finiteness-checked.
  Json to_json() const;
  /// Fleet scalars only, fixed order matching csv_header().
  static std::string csv_header();
  std::string csv_row() const;
};

/// Runs one fleet episode. Deterministic for a fixed scenario: the event
/// core is sequential, so the result is byte-identical under any
/// ADAPEX_THREADS setting.
FleetMetrics simulate_fleet(const Library& library,
                            const RuntimePolicy& policy,
                            const FleetScenario& scenario);

/// Wraps a single-device scenario as a degenerate fleet: one device at
/// speed 1 inheriting the scenario seed, one tenant carrying the scenario's
/// workload, and every fleet-level mechanism disabled. simulate_fleet on
/// the result reproduces simulate_edge byte for byte (devices[0] metrics,
/// trace included).
FleetScenario fleet_from_edge(const EdgeScenario& scenario);

}  // namespace adapex
