// Workload models for the edge simulation.
//
// The paper's methodology uses a fixed camera fleet with 30% random
// deviation every 5 seconds (citing MLPerf Inference [17] for workload
// variability). Real deployments also see slower diurnal swings and flash
// crowds; those patterns are provided for the examples and the robustness
// ablations. All models emit a Poisson arrival stream whose rate is a
// piecewise-constant function of time.

#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"

namespace adapex {

/// Rate pattern kinds.
enum class WorkloadPattern {
  kRandomDeviation,  ///< Paper: base * (1 +- U(deviation)) per period.
  kDiurnal,          ///< Sinusoidal swing between (1-deviation) and (1+deviation).
  kFlashCrowd,       ///< Base rate with a spike window at a multiplier.
  kTrace,            ///< Explicit per-period rate multipliers.
};

const char* to_string(WorkloadPattern p);

/// Workload description (rate in requests/second).
struct WorkloadSpec {
  WorkloadPattern pattern = WorkloadPattern::kRandomDeviation;
  double base_ips = 600.0;
  double duration_s = 25.0;
  double period_s = 5.0;     ///< Rate re-evaluation period.
  double deviation = 0.30;   ///< Random/diurnal amplitude.
  // Flash crowd parameters.
  double spike_start_s = 10.0;
  double spike_duration_s = 5.0;
  double spike_multiplier = 2.0;
  /// kTrace: multiplier per period (wraps around if shorter than needed).
  std::vector<double> trace;
};

/// One request in a mixed-tenant fleet arrival trace (edge/fleet.hpp).
struct FleetRequest {
  double time_s = 0.0;
  int tenant = 0;  ///< Index into the tenant list that generated it.
};

/// Seed of tenant `index`'s arrival stream in an `tenant_count`-tenant
/// fleet. A single-tenant fleet consumes `fleet_seed` directly — its stream
/// is byte-identical to WorkloadModel(spec, fleet_seed), which is what makes
/// a size-1 fleet reproduce simulate_edge — while multi-tenant fleets draw
/// from independent splitmix64-derived streams, one per tenant.
std::uint64_t tenant_stream_seed(std::uint64_t fleet_seed, std::size_t index,
                                 std::size_t tenant_count);

/// Deterministic mixed-tenant arrival trace: one Poisson stream per tenant
/// (seeded via tenant_stream_seed; zero-rate tenants contribute nothing),
/// merged into one nondecreasing timeline with (time, tenant-index) as the
/// stable total order.
std::vector<FleetRequest> generate_fleet_arrivals(
    const std::vector<WorkloadSpec>& tenants, std::uint64_t fleet_seed);

/// Piecewise-constant rate at time t (uses `rng` for the random pattern;
/// call sequentially per period to stay deterministic).
class WorkloadModel {
 public:
  WorkloadModel(const WorkloadSpec& spec, std::uint64_t seed);

  /// Rate of period `index` (periods are [i*period_s, (i+1)*period_s)).
  double period_rate(int index);

  /// Generates the full Poisson arrival time list over [0, duration).
  std::vector<double> generate_arrivals();

 private:
  WorkloadSpec spec_;
  Rng rng_;
  std::vector<double> cached_rates_;
};

}  // namespace adapex
