#include "edge/simulation.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <limits>
#include <sstream>

#include "common/rng.hpp"
#include "runtime/monitor.hpp"

namespace adapex {

namespace {

// Stream identifier for the manager's backoff-jitter seed (the workload
// model consumes scenario.seed directly; the fault injector derives its own
// per-category streams).
constexpr std::uint64_t kManagerStream = 0x4A17;

/// Arrival stream from the scenario's workload pattern. A zero-rate fleet
/// is a valid (ES2) degenerate episode: nothing ever arrives.
std::vector<double> generate_arrivals(const EdgeScenario& sc) {
  if (!(sc.offered_ips() > 0.0)) return {};
  WorkloadSpec spec;
  spec.pattern = sc.pattern;
  spec.base_ips = sc.offered_ips();
  spec.duration_s = sc.duration_s;
  spec.period_s = sc.deviation_period_s;
  spec.deviation = sc.deviation;
  spec.spike_start_s = sc.spike_start_s;
  spec.spike_duration_s = sc.spike_duration_s;
  spec.spike_multiplier = sc.spike_multiplier;
  WorkloadModel model(spec, sc.seed);
  return model.generate_arrivals();
}

/// ES1–ES10: the scenario fields themselves, without the fault-spec merge
/// (shared by both lint_edge_scenario overloads).
analysis::LintReport lint_scenario_fields(const EdgeScenario& scenario) {
  analysis::LintReport report;
  auto bad = [&](const char* rule, const std::string& message,
                 const std::string& hint) {
    report.add(rule, analysis::Severity::kError, "edge-scenario", message,
               hint);
  };
  if (scenario.cameras <= 0) {
    bad("ES1", "cameras = " + std::to_string(scenario.cameras) +
                   " is not positive",
        "the fleet needs at least one camera");
  }
  if (!(scenario.ips_per_camera >= 0.0)) {
    bad("ES2", "ips_per_camera = " + std::to_string(scenario.ips_per_camera) +
                   " is negative",
        "use a non-negative request rate");
  }
  if (!(scenario.duration_s > 0.0)) {
    bad("ES3", "duration_s = " + std::to_string(scenario.duration_s) +
                   " is not positive",
        "the episode needs a positive length");
  }
  if (!(scenario.deviation >= 0.0)) {
    bad("ES4", "deviation = " + std::to_string(scenario.deviation) +
                   " is negative",
        "deviation is a +- amplitude");
  }
  if (!(scenario.deviation_period_s > 0.0)) {
    bad("ES5", "deviation_period_s = " +
                   std::to_string(scenario.deviation_period_s) +
                   " is not positive",
        "rate re-evaluation needs a positive period");
  }
  if (!(scenario.sample_period_s > 0.0)) {
    bad("ES6", "sample_period_s = " +
                   std::to_string(scenario.sample_period_s) +
                   " is not positive",
        "the monitor needs a positive cadence");
  }
  if (!(scenario.reselect_threshold >= 0.0)) {
    bad("ES7", "reselect_threshold = " +
                   std::to_string(scenario.reselect_threshold) +
                   " is negative",
        "use a non-negative change fraction");
  }
  if (scenario.queue_capacity <= 0) {
    bad("ES8", "queue_capacity = " + std::to_string(scenario.queue_capacity) +
                   " is not positive",
        "the request buffer needs capacity");
  }
  if (!(scenario.spike_start_s >= 0.0 && scenario.spike_duration_s >= 0.0 &&
        scenario.spike_multiplier >= 0.0)) {
    bad("ES9", "flash-crowd spike parameters must be non-negative",
        "check spike_start_s/spike_duration_s/spike_multiplier");
  }
  if (scenario.watchdog_periods < 1) {
    bad("ES10", "watchdog_periods = " +
                    std::to_string(scenario.watchdog_periods) +
                    " is below 1",
        "the watchdog needs at least one stagnant period");
  }
  return report;
}

/// Visits every scalar metric in one fixed order — the single source of
/// truth for both the JSON and CSV writers, so the two artifacts cannot
/// drift apart.
template <typename Fn>
void visit_metric_scalars(const EdgeMetrics& m, Fn&& fn) {
  fn("offered", static_cast<double>(m.offered));
  fn("served", static_cast<double>(m.served));
  fn("dropped", static_cast<double>(m.dropped));
  fn("inference_loss_pct", m.inference_loss_pct);
  fn("accuracy", m.accuracy);
  fn("avg_latency_ms", m.avg_latency_ms);
  fn("avg_power_w", m.avg_power_w);
  fn("energy_j", m.energy_j);
  fn("energy_per_inf_j", m.energy_per_inf_j);
  fn("edp", m.edp);
  fn("qoe", m.qoe);
  fn("reconfigurations", static_cast<double>(m.reconfigurations));
  fn("reconfig_failures", static_cast<double>(m.reconfig_failures));
  fn("reconfig_retries", static_cast<double>(m.reconfig_retries));
  fn("slow_reconfigs", static_cast<double>(m.slow_reconfigs));
  fn("stalls", static_cast<double>(m.stalls));
  fn("monitor_dropped", static_cast<double>(m.monitor_dropped));
  fn("monitor_delayed", static_cast<double>(m.monitor_delayed));
  fn("watchdog_recoveries", static_cast<double>(m.watchdog_recoveries));
  fn("recoveries", static_cast<double>(m.recoveries));
  fn("recovery_latency_s", m.recovery_latency_s);
  fn("degraded_time_s", m.degraded_time_s);
  fn("dead_time_s", m.dead_time_s);
  fn("availability_pct", m.availability_pct);
  fn("slo_violations", static_cast<double>(m.slo_violations));
  fn("seu_weight_upsets", static_cast<double>(m.seu_weight_upsets));
  fn("seu_config_upsets", static_cast<double>(m.seu_config_upsets));
  fn("seu_corrected", static_cast<double>(m.seu_corrected));
  fn("seu_detected", static_cast<double>(m.seu_detected));
  fn("seu_undetected", static_cast<double>(m.seu_undetected));
  fn("silent_corruptions", static_cast<double>(m.silent_corruptions));
  fn("seu_detection_latency_s", m.seu_detection_latency_s);
  fn("drift_detections", static_cast<double>(m.drift_detections));
  fn("seu_scrubs", static_cast<double>(m.seu_scrubs));
  fn("seu_reloads", static_cast<double>(m.seu_reloads));
  fn("scrub_overhead_s", m.scrub_overhead_s);
  fn("post_recovery_accuracy", m.post_recovery_accuracy);
}

void check_metric_finite(const char* name, double value) {
  ADAPEX_CHECK(std::isfinite(value),
               std::string("EdgeMetrics::") + name +
                   " is not finite — refusing to serialize");
}

}  // namespace

analysis::LintReport lint_edge_scenario(const EdgeScenario& scenario) {
  analysis::LintReport report = lint_scenario_fields(scenario);
  report.merge(lint_fault_spec(scenario.faults));
  return report;
}

analysis::LintReport lint_edge_scenario(const EdgeScenario& scenario,
                                        const Library& library) {
  analysis::LintReport report = lint_scenario_fields(scenario);
  report.merge(lint_fault_spec(scenario.faults, library));
  return report;
}

void require_valid_edge_scenario(const EdgeScenario& scenario) {
  const analysis::LintReport report = lint_edge_scenario(scenario);
  if (report.has_errors()) throw ConfigError(report.error_message());
}

void require_valid_edge_scenario(const EdgeScenario& scenario,
                                 const Library& library) {
  const analysis::LintReport report = lint_edge_scenario(scenario, library);
  if (report.has_errors()) throw ConfigError(report.error_message());
}

Json EdgeMetrics::to_json() const {
  Json j = Json::object();
  visit_metric_scalars(*this, [&](const char* name, double value) {
    check_metric_finite(name, value);
    j[name] = value;
  });
  return j;
}

std::string EdgeMetrics::csv_header() {
  std::string out;
  visit_metric_scalars(EdgeMetrics{}, [&](const char* name, double) {
    if (!out.empty()) out += ",";
    out += name;
  });
  return out;
}

std::string EdgeMetrics::csv_row() const {
  std::ostringstream os;
  os << std::setprecision(std::numeric_limits<double>::max_digits10);
  bool first = true;
  visit_metric_scalars(*this, [&](const char* name, double value) {
    check_metric_finite(name, value);
    if (!first) os << ",";
    os << value;
    first = false;
  });
  return os.str();
}

EdgeMetrics simulate_edge(const Library& library, const RuntimePolicy& policy,
                          const EdgeScenario& scenario) {
  require_valid_edge_scenario(scenario, library);
  const std::vector<double> arrivals = generate_arrivals(scenario);

  RuntimeManager manager(library, policy,
                         derive_seed(scenario.seed, kManagerStream));
  // Start from the most accurate eligible point (low workload assumption).
  manager.select(0.0, 0.0);
  FaultInjector injector(scenario.faults, scenario.seed);
  EdgeMetrics metrics;
  metrics.offered = static_cast<long>(arrivals.size());

  // Single-server FIFO with deterministic service at the active entry's
  // rate. server_free is the time the backlog clears; wait = server_free-t.
  double server_free = 0.0;
  double next_sample = scenario.sample_period_s;
  WorkloadMonitor monitor(
      WorkloadMonitor::Options{1.0, scenario.reselect_threshold});
  double latency_sum_ms = 0.0;
  double accuracy_sum = 0.0;
  double energy_j = 0.0;
  // Power accounting: integrate dynamic power over busy time per entry.
  double busy_until = 0.0;  // server_free caps busy time
  double last_power_checkpoint = 0.0;
  const double static_w = library.static_power_w;

  auto account_energy = [&](double upto, const LibraryEntry& e) {
    if (upto <= last_power_checkpoint) return;
    const double interval = upto - last_power_checkpoint;
    const double busy =
        std::max(0.0, std::min(busy_until, upto) - last_power_checkpoint);
    const double dyn_w = std::max(0.0, e.peak_power_w - static_w);
    energy_j += static_w * interval + dyn_w * busy;
    last_power_checkpoint = upto;
  };

  // Robustness bookkeeping.
  double failing_since = -1.0;  // first failure of the open failure episode
  double dark_until = 0.0;      // scheduled end of accelerator dark time
  long last_served = 0;
  long dropped_at_last_tick = 0;
  int stagnant_ticks = 0;
  bool has_delayed = false;     // a monitor sample in flight one period late
  double delayed_rate = 0.0;

  // Soft-error state. All of it stays at its initial value when the SEU
  // probabilities are zero, so the zero-rate episode is byte-identical to
  // the pre-SEU simulation.
  const FaultSpec& faults = scenario.faults;
  const SeuMitigation& mit = faults.mitigation;
  int weight_upsets_active = 0;  // uncorrected weight upsets degrading TOP-1
  int config_wrong_active = 0;   // config upsets flipping output classes
  int exit_corrupt_active = 0;   // config upsets corrupting exit confidence
  bool hang_active = false;      // config upset wedging the pipeline
  std::vector<double> undetected_weight_times;  // injection times, uncaught
  std::vector<double> undetected_config_times;
  double next_scrub_s = mit.scrubbing ? mit.scrub_period_s : 0.0;
  DriftDetector detector(policy.drift);
  const LibraryEntry* drift_expect_entry = nullptr;
  bool had_seu_recovery = false;
  double post_recovery_acc_sum = 0.0;
  long post_recovery_served = 0;

  auto first_exit_fraction = [](const LibraryEntry& e) {
    return e.exit_fractions.empty() ? 1.0 : e.exit_fractions.front();
  };
  // Returns the entry's accuracy bit-exactly when no upset is active.
  auto effective_accuracy = [&](const LibraryEntry& e) {
    const int corrupting =
        weight_upsets_active + config_wrong_active + exit_corrupt_active;
    if (corrupting == 0) return e.accuracy;
    const double drop =
        weight_upsets_active * faults.seu_weight_accuracy_drop +
        (config_wrong_active + exit_corrupt_active) *
            faults.seu_config_accuracy_drop;
    // Floor near chance level: upsets scramble outputs, they don't
    // anti-correlate them.
    return std::max(e.accuracy - drop, 0.02);
  };
  auto effective_first_exit = [&](const LibraryEntry& e) {
    const double base = first_exit_fraction(e);
    if (exit_corrupt_active == 0) return base;
    // Stuck-high exit logits inflate early acceptance.
    return std::min(1.0, base + exit_corrupt_active * faults.seu_exit_rate_shift);
  };
  auto undetected_active = [&] {
    return undetected_weight_times.size() + undetected_config_times.size();
  };
  // Marks every active upset as caught, charging detection latency.
  auto detect_active = [&](double now) {
    for (double t0 : undetected_weight_times) {
      metrics.seu_detection_latency_s += now - t0;
    }
    for (double t0 : undetected_config_times) {
      metrics.seu_detection_latency_s += now - t0;
    }
    metrics.seu_detected += static_cast<int>(undetected_active());
    undetected_weight_times.clear();
    undetected_config_times.clear();
  };
  // One configuration scrub pass: repairs config-memory upsets (wrong
  // class, exit corruption, hangs) — weight BRAMs are not configuration
  // frames, so weight upsets survive a scrub — and charges scrub dark time.
  auto do_scrub = [&](double now, TracePoint& tp) {
    ++metrics.seu_scrubs;
    tp.scrubbed = true;
    for (double t0 : undetected_config_times) {
      metrics.seu_detection_latency_s += now - t0;
    }
    metrics.seu_detected += static_cast<int>(undetected_config_times.size());
    undetected_config_times.clear();
    config_wrong_active = 0;
    exit_corrupt_active = 0;
    hang_active = false;
    const double cost_s = mit.scrub_time_ms / 1e3;
    metrics.scrub_overhead_s += cost_s;
    if (cost_s > 0.0) {
      server_free = std::max(server_free, now) + cost_s;
      dark_until = std::max(dark_until, server_free);
      metrics.dead_time_s += cost_s;
    }
  };

  // Resolves a manager decision: attempts the proposed reconfiguration
  // through the fault injector, reports the outcome back, and accounts dead
  // time and recovery latency.
  auto apply_decision = [&](Decision& d, double now, TracePoint& tp) {
    tp.degraded = tp.degraded || d.degraded;
    if (!d.reconfigure) {
      if (failing_since >= 0.0 && d.state == HealthState::kHealthy) {
        // The full search no longer needs the failed switch: recovered.
        metrics.recovery_latency_s += now - failing_since;
        ++metrics.recoveries;
        failing_since = -1.0;
      }
      return;
    }
    if (d.retry) ++metrics.reconfig_retries;
    const ReconfigOutcome out = injector.attempt_reconfig(d.reconfig_ms);
    if (out.slowed) ++metrics.slow_reconfigs;
    // The accelerator is dark during the attempt, success or not: backlog
    // waits.
    server_free = std::max(server_free, now) + out.dead_ms / 1e3;
    dark_until = server_free;
    metrics.dead_time_s += out.dead_ms / 1e3;
    if (out.success) {
      ++metrics.reconfigurations;
      tp.reconfigured = true;
      manager.complete_reconfig(true, now);
      if (failing_since >= 0.0) {
        metrics.recovery_latency_s += now - failing_since;
        ++metrics.recoveries;
        failing_since = -1.0;
      }
      // A successful load rewrites configuration and weight memory: every
      // active upset is gone. Ones the detection machinery never caught
      // were repaired incidentally — they count as undetected.
      if (weight_upsets_active + config_wrong_active + exit_corrupt_active >
              0 ||
          hang_active) {
        metrics.seu_undetected += static_cast<int>(undetected_active());
        undetected_weight_times.clear();
        undetected_config_times.clear();
        weight_upsets_active = 0;
        config_wrong_active = 0;
        exit_corrupt_active = 0;
        hang_active = false;
        detector.reset();
      }
      if (d.reload) {
        ++metrics.seu_reloads;
        tp.reloaded = true;
        had_seu_recovery = true;
        post_recovery_acc_sum = 0.0;
        post_recovery_served = 0;
      }
    } else {
      ++metrics.reconfig_failures;
      tp.reconfig_failed = true;
      manager.complete_reconfig(false, now);
      if (failing_since < 0.0) failing_since = now;
      if (policy.backoff.on_failure == FailurePolicy::kBlockRetry) {
        // No fallback: serving stays dark until the next retry opportunity.
        const double block_until = now + scenario.sample_period_s;
        if (block_until > server_free) {
          metrics.dead_time_s += block_until - server_free;
          server_free = block_until;
          dark_until = server_free;
        }
      }
    }
  };

  std::size_t ai = 0;
  while (ai < arrivals.size() || next_sample < scenario.duration_s) {
    const double next_arrival =
        ai < arrivals.size() ? arrivals[ai] : scenario.duration_s + 1.0;
    if (next_sample < next_arrival && next_sample < scenario.duration_s) {
      // Sampling tick: measure and maybe adapt.
      const double now = next_sample;
      const LibraryEntry& before = manager.current();
      account_energy(now, before);

      TracePoint tp;
      tp.time_s = now;

      // Injected transient stall: the accelerator goes dark for a window.
      if (injector.draw_stall()) {
        ++metrics.stalls;
        server_free = std::max(server_free, now) +
                      scenario.faults.stall_duration_s;
        dark_until = server_free;
        metrics.dead_time_s += scenario.faults.stall_duration_s;
      }

      // Soft-error injection: independent streams, drawn unconditionally
      // every tick so the upset sequence depends only on (seed, tick).
      if (injector.draw_weight_upset()) {
        ++metrics.seu_weight_upsets;
        tp.seu_upset = true;
        if (mit.ecc_weights) {
          // SECDED on the weight BRAMs corrects it on the next read.
          ++metrics.seu_corrected;
          ++metrics.seu_detected;
        } else {
          ++weight_upsets_active;
          undetected_weight_times.push_back(now);
        }
      }
      switch (injector.draw_config_upset()) {
        case ConfigUpset::kNone:
          break;
        case ConfigUpset::kWrongClass:
          ++metrics.seu_config_upsets;
          tp.seu_upset = true;
          ++config_wrong_active;
          undetected_config_times.push_back(now);
          break;
        case ConfigUpset::kExitCorrupt:
          ++metrics.seu_config_upsets;
          tp.seu_upset = true;
          if (mit.tmr_exit_heads) {
            // The triplicated exit heads out-vote the corrupted replica.
            ++metrics.seu_corrected;
            ++metrics.seu_detected;
          } else {
            ++exit_corrupt_active;
            undetected_config_times.push_back(now);
          }
          break;
        case ConfigUpset::kHang:
          ++metrics.seu_config_upsets;
          tp.seu_upset = true;
          hang_active = true;
          undetected_config_times.push_back(now);
          break;
      }

      // Periodic configuration scrubbing repairs config upsets on its own
      // schedule, whether or not anything drifted.
      if (mit.scrubbing) {
        while (now + 1e-12 >= next_scrub_s) {
          do_scrub(now, tp);
          next_scrub_s += mit.scrub_period_s;
        }
      }

      // An active hang wedges the pipeline until a repair (scrub, reload,
      // or the watchdog escalation below): extend the dark window tick by
      // tick.
      if (hang_active) {
        const double wedge_until = now + scenario.sample_period_s;
        if (wedge_until > server_free) {
          metrics.dead_time_s += wedge_until - std::max(server_free, now);
          server_free = wedge_until;
        }
        dark_until = std::max(dark_until, server_free);
      }

      // A monitor sample delayed at the previous tick arrives now.
      if (has_delayed) {
        has_delayed = false;
        Decision d = manager.select(delayed_rate, now);
        apply_decision(d, now, tp);
      }

      WorkloadMonitor::Sample ws = monitor.sample(scenario.sample_period_s);
      tp.measured_ips = ws.rate_ips;
      const bool drop = injector.draw_monitor_drop();
      const bool delay = injector.draw_monitor_delay();
      // A pending retry fires on its backoff/cooldown schedule even when
      // the workload is quiet. (kScrubbing has no retry to fire; pending
      // states never persist across ticks here.)
      const bool must_probe = (manager.state() == HealthState::kBackoff ||
                               manager.state() == HealthState::kDegraded) &&
                              now + 1e-12 >= manager.next_retry_s();
      if (drop) {
        // The measurement never reaches the manager.
        ++metrics.monitor_dropped;
        ws.flagged = false;
      } else if (delay && ws.flagged) {
        ++metrics.monitor_delayed;
        has_delayed = true;
        delayed_rate = ws.rate_ips;
        ws.flagged = false;
      }
      if (ws.flagged) {
        Decision d = manager.select(ws.rate_ips, now);
        apply_decision(d, now, tp);
      } else if (must_probe) {
        Decision d = manager.select(monitor.last_flagged_rate(), now);
        apply_decision(d, now, tp);
      }

      // Accuracy/confidence drift detection: spot-checked TOP-1 agreement
      // and first-exit acceptance vs the Library expectations of the
      // active entry. Fires only while the manager is not already running
      // a failure-recovery schedule (Backoff/Degraded own the problem: the
      // scheduled retry rewrites the bitstream anyway).
      {
        const LibraryEntry& cur = manager.current();
        if (&cur != drift_expect_entry) {
          detector.expect(cur.accuracy, first_exit_fraction(cur));
          drift_expect_entry = &cur;
        }
        detector.observe(effective_accuracy(cur), effective_first_exit(cur));
        const HealthState hs = manager.state();
        if (detector.drifted() && (hs == HealthState::kHealthy ||
                                   hs == HealthState::kScrubbing)) {
          ++metrics.drift_detections;
          tp.drift_detected = true;
          detect_active(now);
          Decision dd = manager.report_drift(now, mit.scrubbing);
          if (dd.scrub) {
            do_scrub(now, tp);
            detector.reset();
          } else if (dd.reconfigure) {
            apply_decision(dd, now, tp);
            detector.reset();
          }
        } else if (hs == HealthState::kScrubbing && detector.window_full()) {
          // A full clean window after the scrub: the drift is gone.
          manager.drift_cleared();
        }
      }

      // Watchdog: no completions for watchdog_periods despite backlog —
      // serving is wedged (fault pile-up); force recovery. The soft reset
      // flushes the wedged accelerator, cancels its remaining scheduled
      // dark time, and lets the manager probe immediately.
      if (metrics.served != last_served) {
        last_served = metrics.served;
        stagnant_ticks = 0;
      } else if (server_free > now) {
        ++stagnant_ticks;
        if (stagnant_ticks >= scenario.watchdog_periods) {
          ++metrics.watchdog_recoveries;
          tp.watchdog_fired = true;
          const double cancelled_dark = std::max(0.0, dark_until - now);
          metrics.dead_time_s -=
              std::min(cancelled_dark, metrics.dead_time_s);
          dark_until = now;
          server_free = now;
          busy_until = std::min(busy_until, server_free);
          manager.force_probe();
          stagnant_ticks = 0;
          if (hang_active) {
            // The wedge is a config-memory hang: a soft reset cannot clear
            // it. Escalate — scrub when deployed, else bitstream reload.
            detect_active(now);
            Decision dd = manager.report_drift(now, mit.scrubbing);
            if (dd.scrub) {
              do_scrub(now, tp);
              detector.reset();
            } else if (dd.reconfigure) {
              apply_decision(dd, now, tp);
              detector.reset();
            }
          }
        }
      }

      // SLO accounting: a sampling period with any dropped request.
      if (metrics.dropped > dropped_at_last_tick) ++metrics.slo_violations;
      dropped_at_last_tick = metrics.dropped;
      if (manager.state() != HealthState::kHealthy) {
        metrics.degraded_time_s += scenario.sample_period_s;
      }

      const LibraryEntry& entry = manager.current();
      tp.prune_rate_pct = entry.prune_rate_pct;
      tp.conf_threshold_pct = entry.conf_threshold_pct;
      tp.entry_accuracy = entry.accuracy;
      tp.health = manager.state();
      metrics.trace.push_back(tp);
      next_sample += scenario.sample_period_s;
      continue;
    }
    if (ai >= arrivals.size()) break;

    const double t = arrivals[ai++];
    monitor.on_arrival();
    if (hang_active) {
      // The pipeline is wedged on a config-memory hang: nothing completes
      // until a scrub or reload repairs it (the watchdog sees the flat
      // served count and escalates).
      ++metrics.dropped;
      continue;
    }
    const LibraryEntry& entry = manager.current();
    const double service_s = 1.0 / std::max(entry.ips, 1e-9);
    const double wait_s = std::max(0.0, server_free - t);
    const double backlog = wait_s / service_s;
    if (backlog > scenario.queue_capacity) {
      ++metrics.dropped;
      continue;
    }
    ++metrics.served;
    const double eff_acc = effective_accuracy(entry);
    accuracy_sum += eff_acc;
    if (undetected_active() > 0 &&
        weight_upsets_active + config_wrong_active + exit_corrupt_active > 0) {
      // Served while an uncaught corrupting upset is active: the user gets
      // a possibly-wrong answer with no warning.
      ++metrics.silent_corruptions;
    }
    if (had_seu_recovery) {
      post_recovery_acc_sum += eff_acc;
      ++post_recovery_served;
    }
    latency_sum_ms += wait_s * 1e3 + entry.latency_ms;
    server_free = std::max(server_free, t) + service_s;
    busy_until = server_free;
  }
  account_energy(scenario.duration_s, manager.current());

  // Upsets still uncaught at episode end never got detected.
  metrics.seu_undetected += static_cast<int>(undetected_active());
  metrics.post_recovery_accuracy =
      post_recovery_served > 0 ? post_recovery_acc_sum / post_recovery_served
                               : 0.0;

  metrics.inference_loss_pct =
      metrics.offered > 0
          ? 100.0 * static_cast<double>(metrics.dropped) / metrics.offered
          : 0.0;
  metrics.accuracy =
      metrics.served > 0 ? accuracy_sum / metrics.served : 0.0;
  metrics.avg_latency_ms =
      metrics.served > 0 ? latency_sum_ms / metrics.served : 0.0;
  metrics.energy_j = energy_j;
  metrics.avg_power_w =
      scenario.duration_s > 0.0 ? energy_j / scenario.duration_s : 0.0;
  metrics.energy_per_inf_j =
      metrics.served > 0 ? energy_j / metrics.served : 0.0;
  metrics.edp = metrics.energy_per_inf_j * (metrics.avg_latency_ms / 1e3);
  const double served_fraction =
      metrics.offered > 0
          ? static_cast<double>(metrics.served) / metrics.offered
          : 0.0;
  metrics.qoe = metrics.accuracy * served_fraction;
  metrics.availability_pct =
      100.0 *
      std::max(0.0, 1.0 - metrics.dead_time_s / scenario.duration_s);
  return metrics;
}

EdgeMetrics simulate_edge_runs(const Library& library,
                               const RuntimePolicy& policy,
                               const EdgeScenario& scenario, int runs) {
  ADAPEX_CHECK(runs > 0, "need at least one run");
  EdgeMetrics total;
  total.availability_pct = 0.0;  // accumulator; the default is 100
  for (int r = 0; r < runs; ++r) {
    EdgeScenario sc = scenario;
    sc.seed = scenario.seed + static_cast<std::uint64_t>(r);
    EdgeMetrics m = simulate_edge(library, policy, sc);
    if (r == 0) total.trace = m.trace;
    total.offered += m.offered;
    total.served += m.served;
    total.dropped += m.dropped;
    total.inference_loss_pct += m.inference_loss_pct;
    total.accuracy += m.accuracy;
    total.avg_latency_ms += m.avg_latency_ms;
    total.avg_power_w += m.avg_power_w;
    total.energy_j += m.energy_j;
    total.energy_per_inf_j += m.energy_per_inf_j;
    total.edp += m.edp;
    total.qoe += m.qoe;
    total.reconfigurations += m.reconfigurations;
    total.reconfig_failures += m.reconfig_failures;
    total.reconfig_retries += m.reconfig_retries;
    total.slow_reconfigs += m.slow_reconfigs;
    total.stalls += m.stalls;
    total.monitor_dropped += m.monitor_dropped;
    total.monitor_delayed += m.monitor_delayed;
    total.watchdog_recoveries += m.watchdog_recoveries;
    total.recoveries += m.recoveries;
    total.recovery_latency_s += m.recovery_latency_s;
    total.degraded_time_s += m.degraded_time_s;
    total.dead_time_s += m.dead_time_s;
    total.availability_pct += m.availability_pct;
    total.slo_violations += m.slo_violations;
    total.seu_weight_upsets += m.seu_weight_upsets;
    total.seu_config_upsets += m.seu_config_upsets;
    total.seu_corrected += m.seu_corrected;
    total.seu_detected += m.seu_detected;
    total.seu_undetected += m.seu_undetected;
    total.silent_corruptions += m.silent_corruptions;
    total.seu_detection_latency_s += m.seu_detection_latency_s;
    total.drift_detections += m.drift_detections;
    total.seu_scrubs += m.seu_scrubs;
    total.seu_reloads += m.seu_reloads;
    total.scrub_overhead_s += m.scrub_overhead_s;
    total.post_recovery_accuracy += m.post_recovery_accuracy;
  }
  const double inv = 1.0 / runs;
  total.inference_loss_pct *= inv;
  total.accuracy *= inv;
  total.avg_latency_ms *= inv;
  total.avg_power_w *= inv;
  total.energy_j *= inv;
  total.energy_per_inf_j *= inv;
  total.edp *= inv;
  total.qoe *= inv;
  // Per-episode averages for the time-based robustness metrics; the event
  // counters stay totals (recovery_latency_s / recoveries is still the mean
  // recovery latency, and seu_detection_latency_s / seu_detected the mean
  // detection latency).
  total.degraded_time_s *= inv;
  total.dead_time_s *= inv;
  total.availability_pct *= inv;
  total.scrub_overhead_s *= inv;
  total.post_recovery_accuracy *= inv;
  return total;
}

EdgeScenario scale_to_library(EdgeScenario scenario, const Library& library,
                              double ratio) {
  // Throughput of the static FINN point (no-exit, unpruned).
  double finn_ips = -1.0;
  for (const auto& e : library.entries) {
    if (e.variant == ModelVariant::kNoExit && e.prune_rate_pct == 0) {
      finn_ips = e.ips;
      break;
    }
  }
  ADAPEX_CHECK(finn_ips > 0, "library lacks the unpruned no-exit entry");
  scenario.ips_per_camera = finn_ips * ratio / scenario.cameras;
  return scenario;
}

}  // namespace adapex
