#include "edge/simulation.hpp"

#include <algorithm>
#include <cmath>

#include "common/rng.hpp"
#include "runtime/monitor.hpp"

namespace adapex {

namespace {

// Stream identifier for the manager's backoff-jitter seed (the workload
// model consumes scenario.seed directly; the fault injector derives its own
// per-category streams).
constexpr std::uint64_t kManagerStream = 0x4A17;

/// Arrival stream from the scenario's workload pattern.
std::vector<double> generate_arrivals(const EdgeScenario& sc) {
  WorkloadSpec spec;
  spec.pattern = sc.pattern;
  spec.base_ips = sc.offered_ips();
  spec.duration_s = sc.duration_s;
  spec.period_s = sc.deviation_period_s;
  spec.deviation = sc.deviation;
  spec.spike_start_s = sc.spike_start_s;
  spec.spike_duration_s = sc.spike_duration_s;
  spec.spike_multiplier = sc.spike_multiplier;
  WorkloadModel model(spec, sc.seed);
  return model.generate_arrivals();
}

}  // namespace

analysis::LintReport lint_edge_scenario(const EdgeScenario& scenario) {
  analysis::LintReport report;
  auto bad = [&](const char* rule, const std::string& message,
                 const std::string& hint) {
    report.add(rule, analysis::Severity::kError, "edge-scenario", message,
               hint);
  };
  if (scenario.cameras <= 0) {
    bad("ES1", "cameras = " + std::to_string(scenario.cameras) +
                   " is not positive",
        "the fleet needs at least one camera");
  }
  if (!(scenario.ips_per_camera >= 0.0)) {
    bad("ES2", "ips_per_camera = " + std::to_string(scenario.ips_per_camera) +
                   " is negative",
        "use a non-negative request rate");
  }
  if (!(scenario.duration_s > 0.0)) {
    bad("ES3", "duration_s = " + std::to_string(scenario.duration_s) +
                   " is not positive",
        "the episode needs a positive length");
  }
  if (!(scenario.deviation >= 0.0)) {
    bad("ES4", "deviation = " + std::to_string(scenario.deviation) +
                   " is negative",
        "deviation is a +- amplitude");
  }
  if (!(scenario.deviation_period_s > 0.0)) {
    bad("ES5", "deviation_period_s = " +
                   std::to_string(scenario.deviation_period_s) +
                   " is not positive",
        "rate re-evaluation needs a positive period");
  }
  if (!(scenario.sample_period_s > 0.0)) {
    bad("ES6", "sample_period_s = " +
                   std::to_string(scenario.sample_period_s) +
                   " is not positive",
        "the monitor needs a positive cadence");
  }
  if (!(scenario.reselect_threshold >= 0.0)) {
    bad("ES7", "reselect_threshold = " +
                   std::to_string(scenario.reselect_threshold) +
                   " is negative",
        "use a non-negative change fraction");
  }
  if (scenario.queue_capacity <= 0) {
    bad("ES8", "queue_capacity = " + std::to_string(scenario.queue_capacity) +
                   " is not positive",
        "the request buffer needs capacity");
  }
  if (!(scenario.spike_start_s >= 0.0 && scenario.spike_duration_s >= 0.0 &&
        scenario.spike_multiplier >= 0.0)) {
    bad("ES9", "flash-crowd spike parameters must be non-negative",
        "check spike_start_s/spike_duration_s/spike_multiplier");
  }
  if (scenario.watchdog_periods < 1) {
    bad("ES10", "watchdog_periods = " +
                    std::to_string(scenario.watchdog_periods) +
                    " is below 1",
        "the watchdog needs at least one stagnant period");
  }
  report.merge(lint_fault_spec(scenario.faults));
  return report;
}

void require_valid_edge_scenario(const EdgeScenario& scenario) {
  const analysis::LintReport report = lint_edge_scenario(scenario);
  if (report.has_errors()) throw ConfigError(report.error_message());
}

EdgeMetrics simulate_edge(const Library& library, const RuntimePolicy& policy,
                          const EdgeScenario& scenario) {
  require_valid_edge_scenario(scenario);
  const std::vector<double> arrivals = generate_arrivals(scenario);

  RuntimeManager manager(library, policy,
                         derive_seed(scenario.seed, kManagerStream));
  // Start from the most accurate eligible point (low workload assumption).
  manager.select(0.0, 0.0);
  FaultInjector injector(scenario.faults, scenario.seed);
  EdgeMetrics metrics;
  metrics.offered = static_cast<long>(arrivals.size());

  // Single-server FIFO with deterministic service at the active entry's
  // rate. server_free is the time the backlog clears; wait = server_free-t.
  double server_free = 0.0;
  double next_sample = scenario.sample_period_s;
  WorkloadMonitor monitor(
      WorkloadMonitor::Options{1.0, scenario.reselect_threshold});
  double latency_sum_ms = 0.0;
  double accuracy_sum = 0.0;
  double energy_j = 0.0;
  // Power accounting: integrate dynamic power over busy time per entry.
  double busy_until = 0.0;  // server_free caps busy time
  double last_power_checkpoint = 0.0;
  const double static_w = library.static_power_w;

  auto account_energy = [&](double upto, const LibraryEntry& e) {
    if (upto <= last_power_checkpoint) return;
    const double interval = upto - last_power_checkpoint;
    const double busy =
        std::max(0.0, std::min(busy_until, upto) - last_power_checkpoint);
    const double dyn_w = std::max(0.0, e.peak_power_w - static_w);
    energy_j += static_w * interval + dyn_w * busy;
    last_power_checkpoint = upto;
  };

  // Robustness bookkeeping.
  double failing_since = -1.0;  // first failure of the open failure episode
  double dark_until = 0.0;      // scheduled end of accelerator dark time
  long last_served = 0;
  long dropped_at_last_tick = 0;
  int stagnant_ticks = 0;
  bool has_delayed = false;     // a monitor sample in flight one period late
  double delayed_rate = 0.0;

  // Resolves a manager decision: attempts the proposed reconfiguration
  // through the fault injector, reports the outcome back, and accounts dead
  // time and recovery latency.
  auto apply_decision = [&](Decision& d, double now, TracePoint& tp) {
    tp.degraded = tp.degraded || d.degraded;
    if (!d.reconfigure) {
      if (failing_since >= 0.0 && d.state == HealthState::kHealthy) {
        // The full search no longer needs the failed switch: recovered.
        metrics.recovery_latency_s += now - failing_since;
        ++metrics.recoveries;
        failing_since = -1.0;
      }
      return;
    }
    if (d.retry) ++metrics.reconfig_retries;
    const ReconfigOutcome out = injector.attempt_reconfig(d.reconfig_ms);
    if (out.slowed) ++metrics.slow_reconfigs;
    // The accelerator is dark during the attempt, success or not: backlog
    // waits.
    server_free = std::max(server_free, now) + out.dead_ms / 1e3;
    dark_until = server_free;
    metrics.dead_time_s += out.dead_ms / 1e3;
    if (out.success) {
      ++metrics.reconfigurations;
      tp.reconfigured = true;
      manager.complete_reconfig(true, now);
      if (failing_since >= 0.0) {
        metrics.recovery_latency_s += now - failing_since;
        ++metrics.recoveries;
        failing_since = -1.0;
      }
    } else {
      ++metrics.reconfig_failures;
      tp.reconfig_failed = true;
      manager.complete_reconfig(false, now);
      if (failing_since < 0.0) failing_since = now;
      if (policy.backoff.on_failure == FailurePolicy::kBlockRetry) {
        // No fallback: serving stays dark until the next retry opportunity.
        const double block_until = now + scenario.sample_period_s;
        if (block_until > server_free) {
          metrics.dead_time_s += block_until - server_free;
          server_free = block_until;
          dark_until = server_free;
        }
      }
    }
  };

  std::size_t ai = 0;
  while (ai < arrivals.size() || next_sample < scenario.duration_s) {
    const double next_arrival =
        ai < arrivals.size() ? arrivals[ai] : scenario.duration_s + 1.0;
    if (next_sample < next_arrival && next_sample < scenario.duration_s) {
      // Sampling tick: measure and maybe adapt.
      const double now = next_sample;
      const LibraryEntry& before = manager.current();
      account_energy(now, before);

      TracePoint tp;
      tp.time_s = now;

      // Injected transient stall: the accelerator goes dark for a window.
      if (injector.draw_stall()) {
        ++metrics.stalls;
        server_free = std::max(server_free, now) +
                      scenario.faults.stall_duration_s;
        dark_until = server_free;
        metrics.dead_time_s += scenario.faults.stall_duration_s;
      }

      // A monitor sample delayed at the previous tick arrives now.
      if (has_delayed) {
        has_delayed = false;
        Decision d = manager.select(delayed_rate, now);
        apply_decision(d, now, tp);
      }

      WorkloadMonitor::Sample ws = monitor.sample(scenario.sample_period_s);
      tp.measured_ips = ws.rate_ips;
      const bool drop = injector.draw_monitor_drop();
      const bool delay = injector.draw_monitor_delay();
      // A pending retry fires on its backoff/cooldown schedule even when
      // the workload is quiet.
      const bool must_probe = manager.state() != HealthState::kHealthy &&
                              now + 1e-12 >= manager.next_retry_s();
      if (drop) {
        // The measurement never reaches the manager.
        ++metrics.monitor_dropped;
        ws.flagged = false;
      } else if (delay && ws.flagged) {
        ++metrics.monitor_delayed;
        has_delayed = true;
        delayed_rate = ws.rate_ips;
        ws.flagged = false;
      }
      if (ws.flagged) {
        Decision d = manager.select(ws.rate_ips, now);
        apply_decision(d, now, tp);
      } else if (must_probe) {
        Decision d = manager.select(monitor.last_flagged_rate(), now);
        apply_decision(d, now, tp);
      }

      // Watchdog: no completions for watchdog_periods despite backlog —
      // serving is wedged (fault pile-up); force recovery. The soft reset
      // flushes the wedged accelerator, cancels its remaining scheduled
      // dark time, and lets the manager probe immediately.
      if (metrics.served != last_served) {
        last_served = metrics.served;
        stagnant_ticks = 0;
      } else if (server_free > now) {
        ++stagnant_ticks;
        if (stagnant_ticks >= scenario.watchdog_periods) {
          ++metrics.watchdog_recoveries;
          tp.watchdog_fired = true;
          const double cancelled_dark = std::max(0.0, dark_until - now);
          metrics.dead_time_s -=
              std::min(cancelled_dark, metrics.dead_time_s);
          dark_until = now;
          server_free = now;
          busy_until = std::min(busy_until, server_free);
          manager.force_probe();
          stagnant_ticks = 0;
        }
      }

      // SLO accounting: a sampling period with any dropped request.
      if (metrics.dropped > dropped_at_last_tick) ++metrics.slo_violations;
      dropped_at_last_tick = metrics.dropped;
      if (manager.state() != HealthState::kHealthy) {
        metrics.degraded_time_s += scenario.sample_period_s;
      }

      const LibraryEntry& entry = manager.current();
      tp.prune_rate_pct = entry.prune_rate_pct;
      tp.conf_threshold_pct = entry.conf_threshold_pct;
      tp.entry_accuracy = entry.accuracy;
      tp.health = manager.state();
      metrics.trace.push_back(tp);
      next_sample += scenario.sample_period_s;
      continue;
    }
    if (ai >= arrivals.size()) break;

    const double t = arrivals[ai++];
    monitor.on_arrival();
    const LibraryEntry& entry = manager.current();
    const double service_s = 1.0 / std::max(entry.ips, 1e-9);
    const double wait_s = std::max(0.0, server_free - t);
    const double backlog = wait_s / service_s;
    if (backlog > scenario.queue_capacity) {
      ++metrics.dropped;
      continue;
    }
    ++metrics.served;
    accuracy_sum += entry.accuracy;
    latency_sum_ms += wait_s * 1e3 + entry.latency_ms;
    server_free = std::max(server_free, t) + service_s;
    busy_until = server_free;
  }
  account_energy(scenario.duration_s, manager.current());

  metrics.inference_loss_pct =
      metrics.offered > 0
          ? 100.0 * static_cast<double>(metrics.dropped) / metrics.offered
          : 0.0;
  metrics.accuracy =
      metrics.served > 0 ? accuracy_sum / metrics.served : 0.0;
  metrics.avg_latency_ms =
      metrics.served > 0 ? latency_sum_ms / metrics.served : 0.0;
  metrics.energy_j = energy_j;
  metrics.avg_power_w = energy_j / scenario.duration_s;
  metrics.energy_per_inf_j =
      metrics.served > 0 ? energy_j / metrics.served : 0.0;
  metrics.edp = metrics.energy_per_inf_j * (metrics.avg_latency_ms / 1e3);
  const double served_fraction =
      metrics.offered > 0
          ? static_cast<double>(metrics.served) / metrics.offered
          : 0.0;
  metrics.qoe = metrics.accuracy * served_fraction;
  metrics.availability_pct =
      100.0 *
      std::max(0.0, 1.0 - metrics.dead_time_s / scenario.duration_s);
  return metrics;
}

EdgeMetrics simulate_edge_runs(const Library& library,
                               const RuntimePolicy& policy,
                               const EdgeScenario& scenario, int runs) {
  ADAPEX_CHECK(runs > 0, "need at least one run");
  EdgeMetrics total;
  total.availability_pct = 0.0;  // accumulator; the default is 100
  for (int r = 0; r < runs; ++r) {
    EdgeScenario sc = scenario;
    sc.seed = scenario.seed + static_cast<std::uint64_t>(r);
    EdgeMetrics m = simulate_edge(library, policy, sc);
    if (r == 0) total.trace = m.trace;
    total.offered += m.offered;
    total.served += m.served;
    total.dropped += m.dropped;
    total.inference_loss_pct += m.inference_loss_pct;
    total.accuracy += m.accuracy;
    total.avg_latency_ms += m.avg_latency_ms;
    total.avg_power_w += m.avg_power_w;
    total.energy_j += m.energy_j;
    total.energy_per_inf_j += m.energy_per_inf_j;
    total.edp += m.edp;
    total.qoe += m.qoe;
    total.reconfigurations += m.reconfigurations;
    total.reconfig_failures += m.reconfig_failures;
    total.reconfig_retries += m.reconfig_retries;
    total.slow_reconfigs += m.slow_reconfigs;
    total.stalls += m.stalls;
    total.monitor_dropped += m.monitor_dropped;
    total.monitor_delayed += m.monitor_delayed;
    total.watchdog_recoveries += m.watchdog_recoveries;
    total.recoveries += m.recoveries;
    total.recovery_latency_s += m.recovery_latency_s;
    total.degraded_time_s += m.degraded_time_s;
    total.dead_time_s += m.dead_time_s;
    total.availability_pct += m.availability_pct;
    total.slo_violations += m.slo_violations;
  }
  const double inv = 1.0 / runs;
  total.inference_loss_pct *= inv;
  total.accuracy *= inv;
  total.avg_latency_ms *= inv;
  total.avg_power_w *= inv;
  total.energy_j *= inv;
  total.energy_per_inf_j *= inv;
  total.edp *= inv;
  total.qoe *= inv;
  // Per-episode averages for the time-based robustness metrics; the event
  // counters stay totals (recovery_latency_s / recoveries is still the mean
  // recovery latency).
  total.degraded_time_s *= inv;
  total.dead_time_s *= inv;
  total.availability_pct *= inv;
  return total;
}

EdgeScenario scale_to_library(EdgeScenario scenario, const Library& library,
                              double ratio) {
  // Throughput of the static FINN point (no-exit, unpruned).
  double finn_ips = -1.0;
  for (const auto& e : library.entries) {
    if (e.variant == ModelVariant::kNoExit && e.prune_rate_pct == 0) {
      finn_ips = e.ips;
      break;
    }
  }
  ADAPEX_CHECK(finn_ips > 0, "library lacks the unpruned no-exit entry");
  scenario.ips_per_camera = finn_ips * ratio / scenario.cameras;
  return scenario;
}

}  // namespace adapex
