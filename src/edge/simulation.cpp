#include "edge/simulation.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <limits>
#include <sstream>

#include "edge/device_sim.hpp"

namespace adapex {

namespace {

/// Arrival stream from the scenario's workload pattern. A zero-rate fleet
/// is a valid (ES2) degenerate episode: nothing ever arrives.
std::vector<double> generate_arrivals(const EdgeScenario& sc) {
  if (!(sc.offered_ips() > 0.0)) return {};
  WorkloadModel model(workload_spec_from(sc), sc.seed);
  return model.generate_arrivals();
}

/// ES1–ES10: the scenario fields themselves, without the fault-spec merge
/// (shared by both lint_edge_scenario overloads).
analysis::LintReport lint_scenario_fields(const EdgeScenario& scenario) {
  analysis::LintReport report;
  auto bad = [&](const char* rule, const std::string& message,
                 const std::string& hint) {
    report.add(rule, analysis::Severity::kError, "edge-scenario", message,
               hint);
  };
  if (scenario.cameras <= 0) {
    bad("ES1", "cameras = " + std::to_string(scenario.cameras) +
                   " is not positive",
        "the fleet needs at least one camera");
  }
  if (!(scenario.ips_per_camera >= 0.0)) {
    bad("ES2", "ips_per_camera = " + std::to_string(scenario.ips_per_camera) +
                   " is negative",
        "use a non-negative request rate");
  }
  if (!(scenario.duration_s > 0.0)) {
    bad("ES3", "duration_s = " + std::to_string(scenario.duration_s) +
                   " is not positive",
        "the episode needs a positive length");
  }
  if (!(scenario.deviation >= 0.0)) {
    bad("ES4", "deviation = " + std::to_string(scenario.deviation) +
                   " is negative",
        "deviation is a +- amplitude");
  }
  if (!(scenario.deviation_period_s > 0.0)) {
    bad("ES5", "deviation_period_s = " +
                   std::to_string(scenario.deviation_period_s) +
                   " is not positive",
        "rate re-evaluation needs a positive period");
  }
  if (!(scenario.sample_period_s > 0.0)) {
    bad("ES6", "sample_period_s = " +
                   std::to_string(scenario.sample_period_s) +
                   " is not positive",
        "the monitor needs a positive cadence");
  }
  if (!(scenario.reselect_threshold >= 0.0)) {
    bad("ES7", "reselect_threshold = " +
                   std::to_string(scenario.reselect_threshold) +
                   " is negative",
        "use a non-negative change fraction");
  }
  if (scenario.queue_capacity <= 0) {
    bad("ES8", "queue_capacity = " + std::to_string(scenario.queue_capacity) +
                   " is not positive",
        "the request buffer needs capacity");
  }
  if (!(scenario.spike_start_s >= 0.0 && scenario.spike_duration_s >= 0.0 &&
        scenario.spike_multiplier >= 0.0)) {
    bad("ES9", "flash-crowd spike parameters must be non-negative",
        "check spike_start_s/spike_duration_s/spike_multiplier");
  }
  if (scenario.watchdog_periods < 1) {
    bad("ES10", "watchdog_periods = " +
                    std::to_string(scenario.watchdog_periods) +
                    " is below 1",
        "the watchdog needs at least one stagnant period");
  }
  return report;
}

/// Visits every scalar metric in one fixed order — the single source of
/// truth for both the JSON and CSV writers, so the two artifacts cannot
/// drift apart.
template <typename Fn>
void visit_metric_scalars(const EdgeMetrics& m, Fn&& fn) {
  fn("offered", static_cast<double>(m.offered));
  fn("served", static_cast<double>(m.served));
  fn("dropped", static_cast<double>(m.dropped));
  fn("inference_loss_pct", m.inference_loss_pct);
  fn("accuracy", m.accuracy);
  fn("avg_latency_ms", m.avg_latency_ms);
  fn("avg_power_w", m.avg_power_w);
  fn("energy_j", m.energy_j);
  fn("energy_per_inf_j", m.energy_per_inf_j);
  fn("edp", m.edp);
  fn("qoe", m.qoe);
  fn("reconfigurations", static_cast<double>(m.reconfigurations));
  fn("reconfig_failures", static_cast<double>(m.reconfig_failures));
  fn("reconfig_retries", static_cast<double>(m.reconfig_retries));
  fn("slow_reconfigs", static_cast<double>(m.slow_reconfigs));
  fn("stalls", static_cast<double>(m.stalls));
  fn("monitor_dropped", static_cast<double>(m.monitor_dropped));
  fn("monitor_delayed", static_cast<double>(m.monitor_delayed));
  fn("watchdog_recoveries", static_cast<double>(m.watchdog_recoveries));
  fn("recoveries", static_cast<double>(m.recoveries));
  fn("recovery_latency_s", m.recovery_latency_s);
  fn("degraded_time_s", m.degraded_time_s);
  fn("dead_time_s", m.dead_time_s);
  fn("availability_pct", m.availability_pct);
  fn("slo_violations", static_cast<double>(m.slo_violations));
  fn("seu_weight_upsets", static_cast<double>(m.seu_weight_upsets));
  fn("seu_config_upsets", static_cast<double>(m.seu_config_upsets));
  fn("seu_corrected", static_cast<double>(m.seu_corrected));
  fn("seu_detected", static_cast<double>(m.seu_detected));
  fn("seu_undetected", static_cast<double>(m.seu_undetected));
  fn("silent_corruptions", static_cast<double>(m.silent_corruptions));
  fn("seu_detection_latency_s", m.seu_detection_latency_s);
  fn("drift_detections", static_cast<double>(m.drift_detections));
  fn("seu_scrubs", static_cast<double>(m.seu_scrubs));
  fn("seu_reloads", static_cast<double>(m.seu_reloads));
  fn("scrub_overhead_s", m.scrub_overhead_s);
  fn("post_recovery_accuracy", m.post_recovery_accuracy);
  fn("duration_s", m.duration_s);
}

void check_metric_finite(const char* name, double value) {
  ADAPEX_CHECK(std::isfinite(value),
               std::string("EdgeMetrics::") + name +
                   " is not finite — refusing to serialize");
}

}  // namespace

analysis::LintReport lint_edge_scenario(const EdgeScenario& scenario) {
  analysis::LintReport report = lint_scenario_fields(scenario);
  report.merge(lint_fault_spec(scenario.faults));
  return report;
}

analysis::LintReport lint_edge_scenario(const EdgeScenario& scenario,
                                        const Library& library) {
  analysis::LintReport report = lint_scenario_fields(scenario);
  report.merge(lint_fault_spec(scenario.faults, library));
  return report;
}

void require_valid_edge_scenario(const EdgeScenario& scenario) {
  const analysis::LintReport report = lint_edge_scenario(scenario);
  if (report.has_errors()) throw ConfigError(report.error_message());
}

void require_valid_edge_scenario(const EdgeScenario& scenario,
                                 const Library& library) {
  const analysis::LintReport report = lint_edge_scenario(scenario, library);
  if (report.has_errors()) throw ConfigError(report.error_message());
}

Json EdgeMetrics::to_json() const {
  Json j = Json::object();
  visit_metric_scalars(*this, [&](const char* name, double value) {
    check_metric_finite(name, value);
    j[name] = value;
  });
  return j;
}

std::string EdgeMetrics::csv_header() {
  std::string out;
  visit_metric_scalars(EdgeMetrics{}, [&](const char* name, double) {
    if (!out.empty()) out += ",";
    out += name;
  });
  return out;
}

std::string EdgeMetrics::csv_row() const {
  std::ostringstream os;
  os << std::setprecision(std::numeric_limits<double>::max_digits10);
  bool first = true;
  visit_metric_scalars(*this, [&](const char* name, double value) {
    check_metric_finite(name, value);
    if (!first) os << ",";
    os << value;
    first = false;
  });
  return os.str();
}

WorkloadSpec workload_spec_from(const EdgeScenario& scenario) {
  WorkloadSpec spec;
  spec.pattern = scenario.pattern;
  spec.base_ips = scenario.offered_ips();
  spec.duration_s = scenario.duration_s;
  spec.period_s = scenario.deviation_period_s;
  spec.deviation = scenario.deviation;
  spec.spike_start_s = scenario.spike_start_s;
  spec.spike_duration_s = scenario.spike_duration_s;
  spec.spike_multiplier = scenario.spike_multiplier;
  return spec;
}

EdgeMetrics simulate_edge(const Library& library, const RuntimePolicy& policy,
                          const EdgeScenario& scenario) {
  require_valid_edge_scenario(scenario, library);
  const std::vector<double> arrivals = generate_arrivals(scenario);

  // The per-device core lives in DeviceSim (edge/device_sim.hpp) so the
  // fleet simulator can run N of them; this wrapper is the legacy
  // single-device drive loop. The merge rule is load-bearing: a sampling
  // tick runs only when strictly earlier than the next arrival (ties go to
  // the arrival), and the fleet event queue reproduces exactly this order.
  DeviceSim dev(library, policy, scenario);
  double next_sample = scenario.sample_period_s;
  std::size_t ai = 0;
  while (ai < arrivals.size() || next_sample < scenario.duration_s) {
    const double next_arrival =
        ai < arrivals.size() ? arrivals[ai] : scenario.duration_s + 1.0;
    if (next_sample < next_arrival && next_sample < scenario.duration_s) {
      dev.on_tick(next_sample);
      next_sample += scenario.sample_period_s;
      continue;
    }
    if (ai >= arrivals.size()) break;
    dev.on_arrival(arrivals[ai++]);
  }
  dev.finalize(scenario.duration_s);
  return std::move(dev.metrics());
}

EdgeMetrics simulate_edge_runs(const Library& library,
                               const RuntimePolicy& policy,
                               const EdgeScenario& scenario, int runs) {
  ADAPEX_CHECK(runs > 0, "need at least one run");
  EdgeMetrics total;
  // Pooled accumulators: per-request ratios are reweighted by what each
  // episode actually served, time ratios by what it actually simulated —
  // an unweighted mean over-counts short or quiet episodes.
  double latency_weighted_ms = 0.0;
  double accuracy_weighted = 0.0;
  double post_recovery_weighted = 0.0;
  for (int r = 0; r < runs; ++r) {
    EdgeScenario sc = scenario;
    sc.seed = scenario.seed + static_cast<std::uint64_t>(r);
    EdgeMetrics m = simulate_edge(library, policy, sc);
    if (r == 0) total.trace = m.trace;
    total.offered += m.offered;
    total.served += m.served;
    total.dropped += m.dropped;
    accuracy_weighted += m.accuracy * static_cast<double>(m.served);
    latency_weighted_ms += m.avg_latency_ms * static_cast<double>(m.served);
    post_recovery_weighted +=
        m.post_recovery_accuracy * static_cast<double>(m.served);
    total.energy_j += m.energy_j;
    total.reconfigurations += m.reconfigurations;
    total.reconfig_failures += m.reconfig_failures;
    total.reconfig_retries += m.reconfig_retries;
    total.slow_reconfigs += m.slow_reconfigs;
    total.stalls += m.stalls;
    total.monitor_dropped += m.monitor_dropped;
    total.monitor_delayed += m.monitor_delayed;
    total.watchdog_recoveries += m.watchdog_recoveries;
    total.recoveries += m.recoveries;
    total.recovery_latency_s += m.recovery_latency_s;
    total.degraded_time_s += m.degraded_time_s;
    total.dead_time_s += m.dead_time_s;
    total.slo_violations += m.slo_violations;
    total.seu_weight_upsets += m.seu_weight_upsets;
    total.seu_config_upsets += m.seu_config_upsets;
    total.seu_corrected += m.seu_corrected;
    total.seu_detected += m.seu_detected;
    total.seu_undetected += m.seu_undetected;
    total.silent_corruptions += m.silent_corruptions;
    total.seu_detection_latency_s += m.seu_detection_latency_s;
    total.drift_detections += m.drift_detections;
    total.seu_scrubs += m.seu_scrubs;
    total.seu_reloads += m.seu_reloads;
    total.scrub_overhead_s += m.scrub_overhead_s;
    total.duration_s += m.duration_s;
  }
  total.inference_loss_pct =
      total.offered > 0
          ? 100.0 * static_cast<double>(total.dropped) / total.offered
          : 0.0;
  total.accuracy = total.served > 0 ? accuracy_weighted / total.served : 0.0;
  total.avg_latency_ms =
      total.served > 0 ? latency_weighted_ms / total.served : 0.0;
  total.post_recovery_accuracy =
      total.served > 0 ? post_recovery_weighted / total.served : 0.0;
  total.avg_power_w =
      total.duration_s > 0.0 ? total.energy_j / total.duration_s : 0.0;
  total.energy_per_inf_j =
      total.served > 0 ? total.energy_j / total.served : 0.0;
  total.edp = total.energy_per_inf_j * (total.avg_latency_ms / 1e3);
  const double served_fraction =
      total.offered > 0
          ? static_cast<double>(total.served) / total.offered
          : 0.0;
  total.qoe = total.accuracy * served_fraction;
  total.availability_pct =
      total.duration_s > 0.0
          ? 100.0 * std::max(0.0, 1.0 - total.dead_time_s / total.duration_s)
          : 100.0;
  return total;
}

EdgeScenario scale_to_library(EdgeScenario scenario, const Library& library,
                              double ratio) {
  // Throughput of the static FINN point (no-exit, unpruned).
  double finn_ips = -1.0;
  for (const auto& e : library.entries) {
    if (e.variant == ModelVariant::kNoExit && e.prune_rate_pct == 0) {
      finn_ips = e.ips;
      break;
    }
  }
  ADAPEX_CHECK(finn_ips > 0, "library lacks the unpruned no-exit entry");
  scenario.ips_per_camera = finn_ips * ratio / scenario.cameras;
  return scenario;
}

}  // namespace adapex
