#include "edge/simulation.hpp"

#include <algorithm>
#include <cmath>

#include "common/rng.hpp"
#include "runtime/monitor.hpp"

namespace adapex {

namespace {

/// Arrival stream from the scenario's workload pattern.
std::vector<double> generate_arrivals(const EdgeScenario& sc) {
  WorkloadSpec spec;
  spec.pattern = sc.pattern;
  spec.base_ips = sc.offered_ips();
  spec.duration_s = sc.duration_s;
  spec.period_s = sc.deviation_period_s;
  spec.deviation = sc.deviation;
  spec.spike_start_s = sc.spike_start_s;
  spec.spike_duration_s = sc.spike_duration_s;
  spec.spike_multiplier = sc.spike_multiplier;
  WorkloadModel model(spec, sc.seed);
  return model.generate_arrivals();
}

}  // namespace

EdgeMetrics simulate_edge(const Library& library, const RuntimePolicy& policy,
                          const EdgeScenario& scenario) {
  ADAPEX_CHECK(scenario.duration_s > 0 && scenario.cameras > 0,
               "degenerate scenario");
  const std::vector<double> arrivals = generate_arrivals(scenario);

  RuntimeManager manager(library, policy);
  EdgeMetrics metrics;
  metrics.offered = static_cast<long>(arrivals.size());

  // Single-server FIFO with deterministic service at the active entry's
  // rate. server_free is the time the backlog clears; wait = server_free-t.
  double server_free = 0.0;
  double next_sample = scenario.sample_period_s;
  WorkloadMonitor monitor(
      WorkloadMonitor::Options{1.0, scenario.reselect_threshold});
  double latency_sum_ms = 0.0;
  double accuracy_sum = 0.0;
  double energy_j = 0.0;
  // Power accounting: integrate dynamic power over busy time per entry.
  double busy_until = 0.0;  // server_free caps busy time
  double last_power_checkpoint = 0.0;
  const double static_w = library.static_power_w;

  auto account_energy = [&](double upto, const LibraryEntry& e) {
    if (upto <= last_power_checkpoint) return;
    const double interval = upto - last_power_checkpoint;
    const double busy =
        std::max(0.0, std::min(busy_until, upto) - last_power_checkpoint);
    const double dyn_w = std::max(0.0, e.peak_power_w - static_w);
    energy_j += static_w * interval + dyn_w * busy;
    last_power_checkpoint = upto;
  };

  std::size_t ai = 0;
  while (ai < arrivals.size() || next_sample < scenario.duration_s) {
    const double next_arrival =
        ai < arrivals.size() ? arrivals[ai] : scenario.duration_s + 1.0;
    if (next_sample < next_arrival && next_sample < scenario.duration_s) {
      // Sampling tick: measure and maybe adapt.
      const LibraryEntry& before = manager.current();
      account_energy(next_sample, before);
      const WorkloadMonitor::Sample ws =
          monitor.sample(scenario.sample_period_s);
      // Re-search only when the monitor flags a workload change.
      Decision d;
      if (ws.flagged) d = manager.select(ws.rate_ips);
      const LibraryEntry& entry = manager.current();
      if (d.reconfigure) {
        ++metrics.reconfigurations;
        // The accelerator is dark during reconfiguration: backlog waits.
        server_free = std::max(server_free, next_sample) +
                      d.reconfig_ms / 1e3;
      }
      TracePoint tp;
      tp.time_s = next_sample;
      tp.measured_ips = ws.rate_ips;
      tp.prune_rate_pct = entry.prune_rate_pct;
      tp.conf_threshold_pct = entry.conf_threshold_pct;
      tp.entry_accuracy = entry.accuracy;
      tp.reconfigured = d.reconfigure;
      metrics.trace.push_back(tp);
      next_sample += scenario.sample_period_s;
      continue;
    }
    if (ai >= arrivals.size()) break;

    const double t = arrivals[ai++];
    monitor.on_arrival();
    const LibraryEntry& entry = manager.current();
    const double service_s = 1.0 / std::max(entry.ips, 1e-9);
    const double wait_s = std::max(0.0, server_free - t);
    const double backlog = wait_s / service_s;
    if (backlog > scenario.queue_capacity) {
      ++metrics.dropped;
      continue;
    }
    ++metrics.served;
    accuracy_sum += entry.accuracy;
    latency_sum_ms += wait_s * 1e3 + entry.latency_ms;
    server_free = std::max(server_free, t) + service_s;
    busy_until = server_free;
  }
  account_energy(scenario.duration_s, manager.current());

  metrics.inference_loss_pct =
      metrics.offered > 0
          ? 100.0 * static_cast<double>(metrics.dropped) / metrics.offered
          : 0.0;
  metrics.accuracy =
      metrics.served > 0 ? accuracy_sum / metrics.served : 0.0;
  metrics.avg_latency_ms =
      metrics.served > 0 ? latency_sum_ms / metrics.served : 0.0;
  metrics.energy_j = energy_j;
  metrics.avg_power_w = energy_j / scenario.duration_s;
  metrics.energy_per_inf_j =
      metrics.served > 0 ? energy_j / metrics.served : 0.0;
  metrics.edp = metrics.energy_per_inf_j * (metrics.avg_latency_ms / 1e3);
  const double served_fraction =
      metrics.offered > 0
          ? static_cast<double>(metrics.served) / metrics.offered
          : 0.0;
  metrics.qoe = metrics.accuracy * served_fraction;
  return metrics;
}

EdgeMetrics simulate_edge_runs(const Library& library,
                               const RuntimePolicy& policy,
                               const EdgeScenario& scenario, int runs) {
  ADAPEX_CHECK(runs > 0, "need at least one run");
  EdgeMetrics total;
  for (int r = 0; r < runs; ++r) {
    EdgeScenario sc = scenario;
    sc.seed = scenario.seed + static_cast<std::uint64_t>(r);
    EdgeMetrics m = simulate_edge(library, policy, sc);
    if (r == 0) total.trace = m.trace;
    total.offered += m.offered;
    total.served += m.served;
    total.dropped += m.dropped;
    total.inference_loss_pct += m.inference_loss_pct;
    total.accuracy += m.accuracy;
    total.avg_latency_ms += m.avg_latency_ms;
    total.avg_power_w += m.avg_power_w;
    total.energy_j += m.energy_j;
    total.energy_per_inf_j += m.energy_per_inf_j;
    total.edp += m.edp;
    total.qoe += m.qoe;
    total.reconfigurations += m.reconfigurations;
  }
  const double inv = 1.0 / runs;
  total.inference_loss_pct *= inv;
  total.accuracy *= inv;
  total.avg_latency_ms *= inv;
  total.avg_power_w *= inv;
  total.energy_j *= inv;
  total.energy_per_inf_j *= inv;
  total.edp *= inv;
  total.qoe *= inv;
  return total;
}

EdgeScenario scale_to_library(EdgeScenario scenario, const Library& library,
                              double ratio) {
  // Throughput of the static FINN point (no-exit, unpruned).
  double finn_ips = -1.0;
  for (const auto& e : library.entries) {
    if (e.variant == ModelVariant::kNoExit && e.prune_rate_pct == 0) {
      finn_ips = e.ips;
      break;
    }
  }
  ADAPEX_CHECK(finn_ips > 0, "library lacks the unpruned no-exit entry");
  scenario.ips_per_camera = finn_ips * ratio / scenario.cameras;
  return scenario;
}

}  // namespace adapex
