// Edge inference-serving simulation (paper section V).
//
// Models the smart-video-surveillance scenario: N cameras offload frames to
// a local edge server with one FINN-style FPGA accelerator. Requests arrive
// as a Poisson process whose rate deviates randomly every few seconds; the
// server queues requests (finite buffer — overflow is the paper's
// "inference loss"), serves them at the active operating point's
// throughput, and pays a dead interval on every FPGA reconfiguration.
// The Runtime Manager samples the measured arrival rate periodically and
// may switch the operating point.
//
// The simulation also exercises the failure modes the paper leaves out:
// `EdgeScenario::faults` injects reconfiguration failures/slowdowns,
// transient accelerator stalls, and monitor dropouts (runtime/faults.hpp),
// all deterministic for a fixed seed; a watchdog detects serving stalls (no
// completions for `watchdog_periods` sampling periods despite backlog) and
// forces recovery. With every fault probability at zero the episode is
// byte-identical to the fault-free simulation.
//
// Metrics mirror Table I and Figure 6: inference loss %, delivered
// accuracy, average latency, average power, energy, EDP, and QoE
// (accuracy x fraction of processed frames) — plus robustness
// observability: failed/retried reconfigurations, degraded time, recovery
// latency, availability, and SLO violations.

#pragma once

#include <cstdint>
#include <vector>

#include "edge/workload.hpp"
#include "runtime/faults.hpp"
#include "runtime/manager.hpp"

namespace adapex {

/// Scenario parameters (defaults follow the paper's methodology).
struct EdgeScenario {
  int cameras = 20;
  double ips_per_camera = 30.0;
  double duration_s = 25.0;
  /// Workload deviates by +-`deviation` at every `deviation_period_s`.
  double deviation = 0.30;
  double deviation_period_s = 5.0;
  /// Runtime manager sampling cadence.
  double sample_period_s = 0.5;
  /// The manager re-searches the library only when the measured workload
  /// moved by more than this fraction since the last decision ("whenever a
  /// change in the workload is flagged", paper section IV-B). Prevents
  /// reconfiguration thrash on sampling noise.
  double reselect_threshold = 0.15;
  /// Request buffer capacity (requests waiting; overflow is dropped).
  int queue_capacity = 60;
  /// Arrival-rate pattern (paper default: random deviation). Flash-crowd
  /// and diurnal patterns are used by examples and robustness ablations.
  WorkloadPattern pattern = WorkloadPattern::kRandomDeviation;
  double spike_start_s = 10.0;
  double spike_duration_s = 5.0;
  double spike_multiplier = 2.0;
  std::uint64_t seed = 1;
  /// Injected fault probabilities (all zero: the fault-free paper setup).
  FaultSpec faults;
  /// Watchdog: sampling periods without a completed request, despite queue
  /// occupancy, before serving is forcibly recovered.
  int watchdog_periods = 8;

  double offered_ips() const { return cameras * ips_per_camera; }
};

/// Validates the scenario without throwing; one diagnostic per bad field
/// (includes the fault-spec lint).
analysis::LintReport lint_edge_scenario(const EdgeScenario& scenario);

/// Throws ConfigError listing every violation; no-op on a valid scenario.
void require_valid_edge_scenario(const EdgeScenario& scenario);

/// One sampling-tick snapshot (drives the Figure 3 runtime trace).
struct TracePoint {
  double time_s = 0.0;
  double measured_ips = 0.0;
  int prune_rate_pct = 0;
  int conf_threshold_pct = 0;
  double entry_accuracy = 0.0;
  bool reconfigured = false;
  /// Robustness annotations (all default in fault-free episodes).
  HealthState health = HealthState::kHealthy;
  bool reconfig_failed = false;
  bool degraded = false;
  bool watchdog_fired = false;
};

/// Aggregated episode results.
struct EdgeMetrics {
  long offered = 0;
  long served = 0;
  long dropped = 0;

  double inference_loss_pct = 0.0;
  double accuracy = 0.0;       ///< Mean accuracy of served requests.
  double avg_latency_ms = 0.0; ///< Queue wait + pipeline latency.
  double avg_power_w = 0.0;
  double energy_j = 0.0;
  double energy_per_inf_j = 0.0;
  double edp = 0.0;            ///< energy_per_inf * avg_latency (J*s).
  double qoe = 0.0;            ///< accuracy * fraction served.
  int reconfigurations = 0;    ///< Successful bitstream switches.

  // Robustness observability (DESIGN.md "Fault model & self-healing
  // runtime"). All zero / 100% in fault-free episodes.
  int reconfig_failures = 0;   ///< Failed bitstream-load attempts.
  int reconfig_retries = 0;    ///< Attempts that were retries of a failure.
  int slow_reconfigs = 0;      ///< Loads stretched by the slow fault.
  int stalls = 0;              ///< Injected transient accelerator stalls.
  int monitor_dropped = 0;     ///< Monitor samples lost.
  int monitor_delayed = 0;     ///< Monitor samples delivered a period late.
  int watchdog_recoveries = 0; ///< Forced recoveries of wedged serving.
  int recoveries = 0;          ///< Failure episodes that ended recovered.
  double recovery_latency_s = 0.0; ///< Total first-failure-to-recovery time.
  double degraded_time_s = 0.0;    ///< Time with the manager not Healthy.
  double dead_time_s = 0.0;        ///< Accelerator dark time (reconfig
                                   ///< attempts, stalls, blocked retries).
  double availability_pct = 100.0; ///< 100 x (1 - dead_time / duration).
  long slo_violations = 0;         ///< Sampling periods with >= 1 drop.

  std::vector<TracePoint> trace;
};

/// Runs one episode with the given policy over the library.
EdgeMetrics simulate_edge(const Library& library, const RuntimePolicy& policy,
                          const EdgeScenario& scenario);

/// Averages `runs` episodes (seeds seed, seed+1, ...). Traces are kept only
/// for the first episode.
EdgeMetrics simulate_edge_runs(const Library& library,
                               const RuntimePolicy& policy,
                               const EdgeScenario& scenario, int runs);

/// Scales the scenario's per-camera rate so the total offered load is
/// `ratio` times the throughput of the static FINN operating point in the
/// library — the paper's regime, where the unpruned accelerator loses ~23%
/// of requests while AdaPEx can keep up. Keeps the camera count.
EdgeScenario scale_to_library(EdgeScenario scenario, const Library& library,
                              double ratio = 1.30);

}  // namespace adapex
