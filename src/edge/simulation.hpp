// Edge inference-serving simulation (paper section V).
//
// Models the smart-video-surveillance scenario: N cameras offload frames to
// a local edge server with one FINN-style FPGA accelerator. Requests arrive
// as a Poisson process whose rate deviates randomly every few seconds; the
// server queues requests (finite buffer — overflow is the paper's
// "inference loss"), serves them at the active operating point's
// throughput, and pays a dead interval on every FPGA reconfiguration.
// The Runtime Manager samples the measured arrival rate periodically and
// may switch the operating point.
//
// The simulation also exercises the failure modes the paper leaves out:
// `EdgeScenario::faults` injects reconfiguration failures/slowdowns,
// transient accelerator stalls, and monitor dropouts (runtime/faults.hpp),
// all deterministic for a fixed seed; a watchdog detects serving stalls (no
// completions for `watchdog_periods` sampling periods despite backlog) and
// forces recovery. With every fault probability at zero the episode is
// byte-identical to the fault-free simulation.
//
// Soft errors ride the same injector: per sampling tick, upsets may land in
// weight memory (silent TOP-1 degradation) or configuration memory
// (wrong-class outputs, exit-confidence corruption, pipeline hangs). The
// deployed mitigations (FaultSpec::mitigation) act where real hardware
// would: ECC corrects weight upsets on read, TMR out-votes corrupted exit
// heads, periodic scrubbing repairs configuration memory at the cost of
// scrub dark time, and the drift detector (runtime/monitor.hpp) catches
// what slips through — triggering scrub-then-reload recovery through the
// RuntimeManager's backoff machinery. At zero SEU rates none of this code
// perturbs the episode.
//
// Metrics mirror Table I and Figure 6: inference loss %, delivered
// accuracy, average latency, average power, energy, EDP, and QoE
// (accuracy x fraction of processed frames) — plus robustness
// observability: failed/retried reconfigurations, degraded time, recovery
// latency, availability, SLO violations, and the soft-error ledger
// (injected/corrected/detected/undetected upsets, silent corruptions,
// detection latency, scrub overhead, post-recovery accuracy).

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/json.hpp"
#include "edge/workload.hpp"
#include "runtime/faults.hpp"
#include "runtime/manager.hpp"

namespace adapex {

/// Scenario parameters (defaults follow the paper's methodology).
struct EdgeScenario {
  int cameras = 20;
  double ips_per_camera = 30.0;
  double duration_s = 25.0;
  /// Workload deviates by +-`deviation` at every `deviation_period_s`.
  double deviation = 0.30;
  double deviation_period_s = 5.0;
  /// Runtime manager sampling cadence.
  double sample_period_s = 0.5;
  /// The manager re-searches the library only when the measured workload
  /// moved by more than this fraction since the last decision ("whenever a
  /// change in the workload is flagged", paper section IV-B). Prevents
  /// reconfiguration thrash on sampling noise.
  double reselect_threshold = 0.15;
  /// Request buffer capacity (requests waiting; overflow is dropped).
  int queue_capacity = 60;
  /// Arrival-rate pattern (paper default: random deviation). Flash-crowd
  /// and diurnal patterns are used by examples and robustness ablations.
  WorkloadPattern pattern = WorkloadPattern::kRandomDeviation;
  double spike_start_s = 10.0;
  double spike_duration_s = 5.0;
  double spike_multiplier = 2.0;
  std::uint64_t seed = 1;
  /// Injected fault probabilities (all zero: the fault-free paper setup).
  FaultSpec faults;
  /// Watchdog: sampling periods without a completed request, despite queue
  /// occupancy, before serving is forcibly recovered.
  int watchdog_periods = 8;

  double offered_ips() const { return cameras * ips_per_camera; }
};

/// Validates the scenario without throwing; one diagnostic per bad field
/// (includes the fault-spec lint).
analysis::LintReport lint_edge_scenario(const EdgeScenario& scenario);

/// Library-aware overload: additionally checks the scenario's mitigations
/// against the library (RF6). simulate_edge uses this one.
analysis::LintReport lint_edge_scenario(const EdgeScenario& scenario,
                                        const Library& library);

/// Throws ConfigError listing every violation; no-op on a valid scenario.
void require_valid_edge_scenario(const EdgeScenario& scenario);
void require_valid_edge_scenario(const EdgeScenario& scenario,
                                 const Library& library);

/// One sampling-tick snapshot (drives the Figure 3 runtime trace).
struct TracePoint {
  double time_s = 0.0;
  double measured_ips = 0.0;
  int prune_rate_pct = 0;
  int conf_threshold_pct = 0;
  double entry_accuracy = 0.0;
  bool reconfigured = false;
  /// Robustness annotations (all default in fault-free episodes).
  HealthState health = HealthState::kHealthy;
  bool reconfig_failed = false;
  bool degraded = false;
  bool watchdog_fired = false;
  /// Soft-error annotations (all default at zero SEU rates).
  bool seu_upset = false;       ///< An upset was injected this tick.
  bool drift_detected = false;  ///< The drift detector fired this tick.
  bool scrubbed = false;        ///< A configuration scrub ran this tick.
  bool reloaded = false;        ///< A recovery bitstream reload succeeded.
};

/// Aggregated episode results.
struct EdgeMetrics {
  long offered = 0;
  long served = 0;
  long dropped = 0;

  double inference_loss_pct = 0.0;
  double accuracy = 0.0;       ///< Mean accuracy of served requests.
  double avg_latency_ms = 0.0; ///< Queue wait + pipeline latency.
  double avg_power_w = 0.0;
  double energy_j = 0.0;
  double energy_per_inf_j = 0.0;
  double edp = 0.0;            ///< energy_per_inf * avg_latency (J*s).
  double qoe = 0.0;            ///< accuracy * fraction served.
  int reconfigurations = 0;    ///< Successful bitstream switches.

  // Robustness observability (DESIGN.md "Fault model & self-healing
  // runtime"). All zero / 100% in fault-free episodes.
  int reconfig_failures = 0;   ///< Failed bitstream-load attempts.
  int reconfig_retries = 0;    ///< Attempts that were retries of a failure.
  int slow_reconfigs = 0;      ///< Loads stretched by the slow fault.
  int stalls = 0;              ///< Injected transient accelerator stalls.
  int monitor_dropped = 0;     ///< Monitor samples lost.
  int monitor_delayed = 0;     ///< Monitor samples delivered a period late.
  int watchdog_recoveries = 0; ///< Forced recoveries of wedged serving.
  int recoveries = 0;          ///< Failure episodes that ended recovered.
  double recovery_latency_s = 0.0; ///< Total first-failure-to-recovery time.
  double degraded_time_s = 0.0;    ///< Time with the manager not Healthy.
  double dead_time_s = 0.0;        ///< Accelerator dark time (reconfig
                                   ///< attempts, stalls, blocked retries).
  double availability_pct = 100.0; ///< 100 x (1 - dead_time / duration).
  long slo_violations = 0;         ///< Sampling periods with >= 1 drop.

  // Soft-error observability (DESIGN.md "Soft-error model & mitigation").
  // All zero at zero SEU rates.
  int seu_weight_upsets = 0;   ///< Injected weight-memory upsets.
  int seu_config_upsets = 0;   ///< Injected config/FIFO-memory upsets.
  int seu_corrected = 0;       ///< Masked on the spot by ECC / TMR.
  int seu_detected = 0;        ///< Caught (ECC, TMR, scrub, drift, watchdog).
  int seu_undetected = 0;      ///< Never caught by the detection machinery
                               ///< (repaired incidentally or episode end).
  long silent_corruptions = 0; ///< Requests served while an uncaught
                               ///< corrupting upset was active.
  double seu_detection_latency_s = 0.0; ///< Injection-to-detection, summed
                                        ///< over non-immediate detections.
  int drift_detections = 0;    ///< Drift-detector firings.
  int seu_scrubs = 0;          ///< Scrub passes (periodic + on demand).
  int seu_reloads = 0;         ///< Recovery bitstream reloads that succeeded.
  double scrub_overhead_s = 0.0;        ///< Dark time spent scrubbing.
  double post_recovery_accuracy = 0.0;  ///< Mean served accuracy after the
                                        ///< last SEU recovery (0 when none).
  /// Simulated episode length backing the time-based ratios (availability,
  /// average power). simulate_edge_runs sums it across episodes so pooled
  /// ratios stay duration-weighted.
  double duration_s = 0.0;

  std::vector<TracePoint> trace;

  /// Every scalar metric as one JSON object. Asserts each value is finite:
  /// NaN/Inf must never reach a serialized artifact.
  Json to_json() const;
  /// CSV over the same scalars, in the same order, with the same
  /// finiteness guarantee.
  static std::string csv_header();
  std::string csv_row() const;
};

/// The single-tenant WorkloadSpec simulate_edge derives from a scenario
/// (the scenario's full offered rate and pattern). Exposed so the fleet
/// simulator (fleet_from_edge) can build the byte-identical arrival stream.
WorkloadSpec workload_spec_from(const EdgeScenario& scenario);

/// Runs one episode with the given policy over the library.
EdgeMetrics simulate_edge(const Library& library, const RuntimePolicy& policy,
                          const EdgeScenario& scenario);

/// Aggregates `runs` episodes (seeds seed, seed+1, ...) by pooling rather
/// than averaging per-episode ratios: counters, energy, times, and
/// duration_s are summed; per-request ratios (loss, accuracy, latency, EDP,
/// QoE, energy/inference) are recomputed over the pooled requests
/// (served-weighted), and the time-based ratios (average power,
/// availability) over the pooled duration — so episodes of different
/// lengths or traffic volumes are weighted by what they actually served
/// and simulated instead of counting equally. Traces are kept only for the
/// first episode.
EdgeMetrics simulate_edge_runs(const Library& library,
                               const RuntimePolicy& policy,
                               const EdgeScenario& scenario, int runs);

/// Scales the scenario's per-camera rate so the total offered load is
/// `ratio` times the throughput of the static FINN operating point in the
/// library — the paper's regime, where the unpruned accelerator loses ~23%
/// of requests while AdaPEx can keep up. Keeps the camera count.
EdgeScenario scale_to_library(EdgeScenario scenario, const Library& library,
                              double ratio = 1.30);

}  // namespace adapex
