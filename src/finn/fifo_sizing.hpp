// Simulation-driven FIFO sizing.
//
// FINN sizes the FIFOs between streaming modules by RTL simulation: run a
// stimulus, record each FIFO's high-water mark, and provision that depth
// (plus margin) so the pipeline never deadlocks or stalls. This module
// reproduces that step at the transaction level: it replays an image
// stream through the accelerator graph with unbounded buffers and the
// source paced at the reach-scaled sustainable initiation interval, reads
// the maximum in-flight occupancy of every producer->consumer link from
// simulate_pipeline()'s link-occupancy measurements (the one measurement
// path shared with analysis::cross_validate()), and reports the required
// depth together with its BRAM cost at the link's stream width.
//
// The branch links (backbone -> exit head) are the interesting ones: the
// paper notes the early-exit overhead lands mainly in BRAM because the
// duplicated feature-map stream must be buffered while the slower consumer
// drains it.

#pragma once

#include <string>
#include <vector>

#include "finn/accelerator.hpp"
#include "finn/pipeline_sim.hpp"

namespace adapex {

/// Sizing result for one inter-module link.
struct FifoRequirement {
  int producer = -1;  ///< Module index.
  int consumer = -1;
  /// Measured high-water mark: maximum images simultaneously in flight on
  /// the link under steady-state pacing (before the safety margin).
  int high_water_images = 0;
  /// Provisioned depth: high-water mark times the safety margin.
  int depth_images = 0;
  /// Element depth: images * elements per image at the link.
  long depth_elements = 0;
  /// BRAM18 blocks to hold depth_elements at the stream's bit width.
  long bram = 0;
  std::string describe(const Accelerator& acc) const;
};

/// Sizes every link by simulating `exit_of_image` through the pipeline.
/// `safety_margin` multiplies the measured depth (FINN uses headroom too).
std::vector<FifoRequirement> size_fifos(const Accelerator& acc,
                                        const std::vector<int>& exit_of_image,
                                        double safety_margin = 1.25);

/// BRAM18 blocks a `depth_images`-deep FIFO on producer -> consumer costs
/// at the link's stream width (one conversion shared by size_fifos and the
/// dataflow verifier's R13 buffering-budget rule).
long fifo_bram_for(const Accelerator& acc, int producer, long depth_images);

/// Total BRAM across all links (the figure a designer budgets).
long total_fifo_bram(const std::vector<FifoRequirement>& reqs);

}  // namespace adapex
