#include "finn/mitigation.hpp"

#include <cmath>

#include "finn/accelerator.hpp"

namespace adapex {

namespace {

long ceil_long(double v) { return static_cast<long>(std::ceil(v)); }

}  // namespace

MitigationReport estimate_mitigation(const Accelerator& acc,
                                     const SeuMitigation& mitigation,
                                     const MitigationCostModel& cost) {
  MitigationReport rep;
  if (mitigation.ecc_weights) {
    // Weight memory lives in the MVTU modules; SWU/Pool/Branch BRAMs hold
    // line buffers and FIFOs, which the config-scrubber covers instead.
    long weight_brams = 0;
    for (const HlsModule& m : acc.modules) {
      if (m.kind == HlsModuleKind::kMvtu) weight_brams += m.resources.bram;
    }
    rep.protected_weight_brams = weight_brams;
    rep.overhead.bram +=
        ceil_long(cost.ecc_bram_factor * static_cast<double>(weight_brams));
    rep.overhead.lut +=
        ceil_long(cost.ecc_lut_per_bram * static_cast<double>(weight_brams));
    rep.overhead.ff +=
        ceil_long(cost.ecc_ff_per_bram * static_cast<double>(weight_brams));
    rep.throughput_factor *= cost.ecc_throughput_factor;
  }
  if (mitigation.scrubbing) {
    rep.overhead.lut += ceil_long(cost.scrub_lut);
    rep.overhead.ff += ceil_long(cost.scrub_ff);
    rep.overhead.bram += ceil_long(cost.scrub_bram);
    // Scrub passes cost runtime dark time (edge/simulation), not pipeline
    // throughput: the scrubber reads configuration frames out of band.
  }
  if (mitigation.tmr_exit_heads) {
    for (const HlsModule& m : acc.modules) {
      if (m.exit_head < 0) continue;
      // Two extra replicas of every exit-head module; the voter compares
      // the three class decisions, so throughput is unchanged.
      rep.overhead.lut += 2 * m.resources.lut;
      rep.overhead.ff += 2 * m.resources.ff;
      rep.overhead.bram += 2 * m.resources.bram;
      rep.overhead.dsp += 2 * m.resources.dsp;
    }
    rep.tmr_heads = acc.num_exits;
    rep.overhead.lut += ceil_long(cost.tmr_voter_lut * acc.num_exits);
    rep.overhead.ff += ceil_long(cost.tmr_voter_ff * acc.num_exits);
  }
  return rep;
}

}  // namespace adapex
