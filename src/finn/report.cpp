#include "finn/report.hpp"

#include <algorithm>
#include <sstream>

#include "common/table.hpp"

namespace adapex {

Json SynthesisReport::to_json() const {
  Json j = Json::object();
  j["part"] = part;
  Json res = Json::object();
  res["lut"] = static_cast<double>(used.lut);
  res["ff"] = static_cast<double>(used.ff);
  res["bram"] = static_cast<double>(used.bram);
  res["dsp"] = static_cast<double>(used.dsp);
  j["used"] = std::move(res);
  j["lut_pct"] = lut_pct;
  j["ff_pct"] = ff_pct;
  j["bram_pct"] = bram_pct;
  j["dsp_pct"] = dsp_pct;
  j["fits"] = fits;
  j["critical_module"] = critical_module;
  j["critical_cycles"] = static_cast<double>(critical_cycles);
  j["peak_ips"] = peak_ips;
  j["latency_ms"] = latency_ms;
  return j;
}

SynthesisReport synthesis_report(const Accelerator& acc,
                                 const DeviceBudget& budget) {
  ADAPEX_CHECK(!acc.modules.empty(), "empty accelerator");
  SynthesisReport report;
  report.part = budget.part;
  report.used = acc.total;
  auto pct = [](long used, long avail) {
    return avail > 0 ? 100.0 * static_cast<double>(used) / avail : 0.0;
  };
  report.lut_pct = pct(acc.total.lut, budget.lut);
  report.ff_pct = pct(acc.total.ff, budget.ff);
  report.bram_pct = pct(acc.total.bram, budget.bram);
  report.dsp_pct = pct(acc.total.dsp, budget.dsp);
  report.fits = acc.total.lut <= budget.lut && acc.total.ff <= budget.ff &&
                acc.total.bram <= budget.bram && acc.total.dsp <= budget.dsp;

  long max_cycles = 0;
  for (const auto& m : acc.modules) {
    if (m.cycles > max_cycles) {
      max_cycles = m.cycles;
      report.critical_module = m.name;
    }
  }
  report.critical_cycles = max_cycles;
  report.peak_ips = acc.fclk_hz() / static_cast<double>(max_cycles);
  double path_cycles = 0.0;
  for (int mi : acc.paths.back()) {
    path_cycles += static_cast<double>(
        acc.modules[static_cast<std::size_t>(mi)].cycles);
  }
  report.latency_ms = path_cycles / acc.fclk_hz() * 1e3;

  TextTable table({"module", "kind", "cycles", "lut", "ff", "bram", "dsp"});
  for (const auto& m : acc.modules) {
    table.add_row({m.name, to_string(m.kind), std::to_string(m.cycles),
                   std::to_string(m.resources.lut),
                   std::to_string(m.resources.ff),
                   std::to_string(m.resources.bram),
                   std::to_string(m.resources.dsp)});
  }
  std::ostringstream os;
  os << "Synthesis report — part " << budget.part << " @ " << acc.fclk_mhz
     << " MHz\n\n";
  table.print(os);
  os << "\nTotals: " << acc.total.lut << " LUT (" << TextTable::num(report.lut_pct, 1)
     << "%), " << acc.total.ff << " FF (" << TextTable::num(report.ff_pct, 1)
     << "%), " << acc.total.bram << " BRAM18 ("
     << TextTable::num(report.bram_pct, 1) << "%), " << acc.total.dsp
     << " DSP (" << TextTable::num(report.dsp_pct, 1) << "%)"
     << (report.fits ? "" : "  ** DOES NOT FIT **") << "\n";
  os << "Critical module: " << report.critical_module << " ("
     << report.critical_cycles << " cycles) -> peak "
     << TextTable::num(report.peak_ips, 0) << " IPS, full-path latency "
     << TextTable::num(report.latency_ms, 4) << " ms\n";
  report.text = os.str();
  return report;
}

}  // namespace adapex
