#include "finn/fifo_sizing.hpp"

#include <algorithm>
#include <cmath>

namespace adapex {

std::string FifoRequirement::describe(const Accelerator& acc) const {
  return acc.modules[static_cast<std::size_t>(producer)].name + " -> " +
         acc.modules[static_cast<std::size_t>(consumer)].name + ": depth " +
         std::to_string(depth_images) + " images (" +
         std::to_string(depth_elements) + " elems, " + std::to_string(bram) +
         " BRAM)";
}

std::vector<FifoRequirement> size_fifos(const Accelerator& acc,
                                        const std::vector<int>& exit_of_image,
                                        double safety_margin) {
  ADAPEX_CHECK(!exit_of_image.empty(), "need a stimulus stream");
  ADAPEX_CHECK(safety_margin >= 1.0, "safety margin must be >= 1");
  const std::size_t num_modules = acc.modules.size();
  const std::size_t num_images = exit_of_image.size();

  // Rebuild the link graph (as in pipeline_sim).
  std::vector<int> pred(num_modules, -1);
  for (const auto& path : acc.paths) {
    for (std::size_t i = 1; i < path.size(); ++i) {
      pred[static_cast<std::size_t>(path[i])] = path[i - 1];
    }
  }

  auto touches = [&](const HlsModule& m, int image_exit) {
    if (m.exit_head >= 0) return image_exit >= m.exit_head;
    return image_exit >= m.exit_level;
  };

  // Replay with injection paced at the sustainable rate (the bottleneck
  // module's cycles): FIFO sizing is a *steady-state* question — with
  // back-to-back injection and unbounded buffers, every queue in front of
  // the bottleneck would grow with the stream length, which is not what a
  // designer provisions for.
  long ii = 1;
  for (const auto& m : acc.modules) ii = std::max(ii, m.cycles);

  std::vector<std::vector<double>> begin(num_modules), finish(num_modules);
  for (std::size_t m = 0; m < num_modules; ++m) {
    begin[m].assign(num_images, 0.0);
    finish[m].assign(num_images, 0.0);
  }
  std::vector<double> prev_finish(num_modules, 0.0);
  for (std::size_t i = 0; i < num_images; ++i) {
    const int image_exit = exit_of_image[i];
    for (std::size_t m = 0; m < num_modules; ++m) {
      const HlsModule& mod = acc.modules[m];
      double ready =
          pred[m] >= 0 ? finish[static_cast<std::size_t>(pred[m])][i] : 0.0;
      if (pred[m] < 0) {
        ready = static_cast<double>(i) * static_cast<double>(ii);
      }
      begin[m][i] = std::max(ready, prev_finish[m]);
      const double service =
          touches(mod, image_exit) ? static_cast<double>(mod.cycles) : 0.0;
      finish[m][i] = begin[m][i] + service;
      prev_finish[m] = finish[m][i];
    }
  }

  // For every link, the image j occupies the FIFO during
  // [finish_producer[j], begin_consumer[j]); the required depth is the
  // maximum number of concurrently resident images.
  std::vector<FifoRequirement> reqs;
  for (std::size_t c = 0; c < num_modules; ++c) {
    if (pred[c] < 0) continue;
    const std::size_t p = static_cast<std::size_t>(pred[c]);
    // Sweep: count intervals overlapping each consumer-begin instant.
    // An image j is resident on the link at time t if it left the producer
    // (finish_p[j] <= t) but the consumer has not begun it
    // (begin_c[j] >= t). The high-water mark over consumer-begin instants
    // is the required depth. O(n^2) over a bench-sized stimulus.
    int max_depth = 1;
    for (std::size_t i = 0; i < num_images; ++i) {
      const double t = begin[c][i];
      int depth = 0;
      for (std::size_t j = 0; j < num_images; ++j) {
        if (finish[p][j] <= t && begin[c][j] >= t) ++depth;
      }
      max_depth = std::max(max_depth, depth);
    }

    FifoRequirement req;
    req.producer = static_cast<int>(p);
    req.consumer = static_cast<int>(c);
    req.depth_images =
        static_cast<int>(std::ceil(max_depth * safety_margin));
    // Elements per image at this link: the producer's output feature map.
    // Approximate with the producer's cycles (one output element per
    // cycle at the module's parallelism) — the stream length in beats.
    const long beats =
        std::max<long>(acc.modules[p].cycles, 1);
    req.depth_elements = req.depth_images * beats;
    // Stream width ~ 8 bits per beat at 2-bit precision and small folds;
    // BRAM18 = 18432 bits.
    const double bits = static_cast<double>(req.depth_elements) * 8.0;
    req.bram = static_cast<long>(std::ceil(bits / 18432.0));
    reqs.push_back(req);
  }
  return reqs;
}

long total_fifo_bram(const std::vector<FifoRequirement>& reqs) {
  long total = 0;
  for (const auto& r : reqs) total += r.bram;
  return total;
}

}  // namespace adapex
