#include "finn/fifo_sizing.hpp"

#include <algorithm>
#include <cmath>

namespace adapex {

std::string FifoRequirement::describe(const Accelerator& acc) const {
  return acc.modules[static_cast<std::size_t>(producer)].name + " -> " +
         acc.modules[static_cast<std::size_t>(consumer)].name + ": depth " +
         std::to_string(depth_images) + " images (" +
         std::to_string(depth_elements) + " elems, " + std::to_string(bram) +
         " BRAM)";
}

long fifo_bram_for(const Accelerator& acc, int producer, long depth_images) {
  // Elements per image at this link: the producer's output feature map.
  // Approximate with the producer's cycles (one output element per cycle at
  // the module's parallelism) — the stream length in beats. Stream width
  // ~ 8 bits per beat at 2-bit precision and small folds; BRAM18 = 18432
  // bits.
  const long beats =
      std::max<long>(acc.modules[static_cast<std::size_t>(producer)].cycles,
                     1);
  const double bits = static_cast<double>(depth_images * beats) * 8.0;
  return static_cast<long>(std::ceil(bits / 18432.0));
}

std::vector<FifoRequirement> size_fifos(const Accelerator& acc,
                                        const std::vector<int>& exit_of_image,
                                        double safety_margin) {
  ADAPEX_CHECK(!exit_of_image.empty(), "need a stimulus stream");
  ADAPEX_CHECK(safety_margin >= 1.0, "safety margin must be >= 1");

  // Replay with injection paced at the sustainable rate — the reach-scaled
  // steady-state II of the stimulus's realized exit mix: FIFO sizing is a
  // *steady-state* question. With back-to-back injection and unbounded
  // buffers, every queue in front of the bottleneck would grow with the
  // stream length, which is not what a designer provisions for; pacing any
  // slower would under-fill the queues the gated traffic actually builds.
  const std::vector<double> fractions =
      realized_fractions(acc, exit_of_image);
  const double ii = std::max(gated_steady_ii(acc, fractions), 1.0);

  PipelineSimOptions options;
  options.injection_interval_cycles = ii;
  options.fifo_depth = 0;  // unbounded: measure demand, not a provision
  options.record_link_occupancy = true;
  const PipelineSimResult sim =
      simulate_pipeline(acc, exit_of_image, options);

  std::vector<FifoRequirement> reqs;
  reqs.reserve(sim.links.size());
  for (const LinkOccupancy& link : sim.links) {
    FifoRequirement req;
    req.producer = link.producer;
    req.consumer = link.consumer;
    req.high_water_images = std::max(link.high_water_images, 1);
    req.depth_images = static_cast<int>(
        std::ceil(req.high_water_images * safety_margin));
    const long beats = std::max<long>(
        acc.modules[static_cast<std::size_t>(link.producer)].cycles, 1);
    req.depth_elements = req.depth_images * beats;
    req.bram = fifo_bram_for(acc, link.producer, req.depth_images);
    reqs.push_back(req);
  }
  return reqs;
}

long total_fifo_bram(const std::vector<FifoRequirement>& reqs) {
  long total = 0;
  for (const auto& r : reqs) total += r.bram;
  return total;
}

}  // namespace adapex
