// Soft-error (SEU) mitigation configuration and design-time cost model.
//
// SRAM-based FPGAs such as the ZCU104 accumulate single-event upsets in
// configuration and block-RAM memory. Three standard mitigations are
// modeled, each with the LUT/FF/BRAM and throughput overhead it costs the
// synthesized accelerator:
//   - ECC on weight BRAMs: SECDED check bits widen every MVTU weight
//     memory (~2 extra bits per 16-bit word) plus an encoder/decoder per
//     protected BRAM; the decode stage shaves a little throughput.
//   - Configuration scrubbing: an ICAP-style scrubber engine (fixed
//     LUT/FF/BRAM footprint) that periodically re-reads configuration
//     frames against golden CRCs; the runtime pays `scrub_time_ms` of
//     accelerator dark time per pass (modeled in edge/simulation).
//   - TMR on the early-exit classifier heads: the exit-head modules are
//     triplicated and a majority voter added per exit, masking confidence
//     corruption at 2x the head's resources plus the voters.
//
// The overhead flows through library/generator into AcceleratorRecord
// resources and LibraryEntry throughput/power/energy, so the Runtime
// Manager searches mitigation-aware operating points. With every
// mitigation disabled the report is all-zero and generated artifacts are
// byte-identical to an unmitigated run.

#pragma once

#include "hls/modules.hpp"

namespace adapex {

struct Accelerator;  // finn/accelerator.hpp

/// Which SEU mitigations the deployed bitstream carries.
struct SeuMitigation {
  /// SECDED ECC on the MVTU weight BRAMs (corrects weight upsets on read).
  bool ecc_weights = false;
  /// Periodic configuration scrubbing (repairs config upsets and hangs).
  bool scrubbing = false;
  double scrub_period_s = 2.0;  ///< Wall-clock between scrub passes.
  double scrub_time_ms = 4.0;   ///< Accelerator dark time per pass.
  /// Triplicate the early-exit classifier heads with majority voters
  /// (masks exit-confidence corruption).
  bool tmr_exit_heads = false;

  /// True when any mitigation is enabled.
  bool any() const { return ecc_weights || scrubbing || tmr_exit_heads; }
};

/// Cost constants for the mitigation hardware (tunable for ablation).
struct MitigationCostModel {
  /// Extra BRAM18s per protected weight BRAM18 (SECDED check bits: 2 per
  /// 16-bit word).
  double ecc_bram_factor = 0.125;
  /// Encoder/decoder logic per protected BRAM18.
  double ecc_lut_per_bram = 55.0;
  double ecc_ff_per_bram = 30.0;
  /// Throughput retained with the ECC decode stage in the weight read path.
  double ecc_throughput_factor = 0.98;
  /// ICAP scrubber engine (frame readback + CRC check + repair FSM).
  double scrub_lut = 1800.0;
  double scrub_ff = 1200.0;
  double scrub_bram = 4.0;  ///< Golden-CRC frame store.
  /// Majority voter per TMR'd exit head.
  double tmr_voter_lut = 120.0;
  double tmr_voter_ff = 60.0;
};

/// Overhead of the configured mitigations on one accelerator.
struct MitigationReport {
  Resources overhead;              ///< Added on top of the accelerator total.
  double throughput_factor = 1.0;  ///< Multiplier on sustained IPS (<= 1).
  long protected_weight_brams = 0; ///< MVTU BRAM18s under ECC.
  int tmr_heads = 0;               ///< Exit heads triplicated.
};

/// Evaluates the cost model for `mitigation` on a compiled accelerator.
/// All-zero (factor 1.0) when every mitigation is off.
MitigationReport estimate_mitigation(const Accelerator& acc,
                                     const SeuMitigation& mitigation,
                                     const MitigationCostModel& cost);

}  // namespace adapex
