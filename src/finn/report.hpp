// Synthesis reports — the Vivado-style artifact of the "HLS synthesis"
// stage.
//
// After compiling a model to a dataflow accelerator, the design-time flow
// can emit a utilization/timing report: per-module cycles and resources,
// per-resource totals against a device budget, the critical (bottleneck)
// module, and the projected performance envelope. Reports render as an
// aligned text table (for humans) and as JSON (for tooling), mirroring the
// role of Vivado's utilization and timing reports in the paper's flow.

#pragma once

#include <string>

#include "common/json.hpp"
#include "finn/accelerator.hpp"

namespace adapex {

/// FPGA device resource budget. Defaults: Zynq UltraScale+ XCZU7EV, the
/// ZCU104 part the paper targets.
struct DeviceBudget {
  std::string part = "xczu7ev";
  long lut = 230400;
  long ff = 460800;
  long bram = 624;  ///< BRAM18 units (312 BRAM36).
  long dsp = 1728;
};

/// Utilization/timing summary of one accelerator.
struct SynthesisReport {
  std::string part;
  Resources used;
  double lut_pct = 0.0;
  double ff_pct = 0.0;
  double bram_pct = 0.0;
  double dsp_pct = 0.0;
  bool fits = true;
  /// Bottleneck module (max cycles) and the fclk-limited peak throughput.
  std::string critical_module;
  long critical_cycles = 0;
  double peak_ips = 0.0;
  double latency_ms = 0.0;  ///< Full-path (final exit) latency.

  /// Aligned text rendering (module table + summary).
  std::string text;

  Json to_json() const;
};

/// Builds the report for an accelerator against a device budget.
SynthesisReport synthesis_report(const Accelerator& acc,
                                 const DeviceBudget& budget = DeviceBudget{});

}  // namespace adapex
