#include "finn/pipeline_sim.hpp"

#include <algorithm>

namespace adapex {

PipelineSimResult simulate_pipeline(const Accelerator& acc,
                                    const std::vector<int>& exit_of_image) {
  const std::size_t num_modules = acc.modules.size();
  const std::size_t num_images = exit_of_image.size();
  ADAPEX_CHECK(num_images > 0, "no images to simulate");
  for (int e : exit_of_image) {
    ADAPEX_CHECK(e >= 0 && e <= acc.num_exits, "exit index out of range");
  }

  // Reconstruct each module's predecessor from the path lists (paths share
  // the backbone prefix; consecutive entries within a path are connected).
  // The module graph is a tree fanning out at branches, so each module has
  // exactly one predecessor; emission order is topological.
  std::vector<int> pred(num_modules, -1);
  for (const auto& path : acc.paths) {
    for (std::size_t i = 1; i < path.size(); ++i) {
      pred[static_cast<std::size_t>(path[i])] = path[i - 1];
    }
  }
  std::vector<std::vector<int>> consumers(num_modules);
  for (std::size_t m = 0; m < num_modules; ++m) {
    if (pred[m] >= 0) consumers[static_cast<std::size_t>(pred[m])].push_back(static_cast<int>(m));
  }

  // Whether module m touches image i: backbone modules need the image to
  // survive all branch points before them (exit >= exit_level); exit-head
  // modules of exit h need the image to reach branch h (exit >= h).
  // Untouched images pass through with zero service time (gated stream).
  auto touches = [&](const HlsModule& m, int image_exit) {
    if (m.exit_head >= 0) return image_exit >= m.exit_head;
    return image_exit >= m.exit_level;
  };

  // Finite FIFOs: a module, after computing image i, stays blocked until
  // its output slot frees, i.e. every consumer has begun image i - D.
  // This is what creates backpressure and makes the measured injection rate
  // the *sustainable* rate rather than an open-queue artifact.
  constexpr std::size_t kFifoDepth = 2;

  // begin[m][i], data_ready[m][i] (finish of compute), freed[m][i].
  std::vector<std::vector<double>> begin(num_modules),
      data_ready(num_modules);
  for (std::size_t m = 0; m < num_modules; ++m) {
    begin[m].assign(num_images, 0.0);
    data_ready[m].assign(num_images, 0.0);
  }
  std::vector<double> freed_prev(num_modules, 0.0);

  PipelineSimResult result;
  result.completion_cycles.resize(num_images);

  for (std::size_t i = 0; i < num_images; ++i) {
    const int image_exit = exit_of_image[i];
    for (std::size_t m = 0; m < num_modules; ++m) {
      const HlsModule& mod = acc.modules[m];
      const double ready =
          pred[m] >= 0 ? data_ready[static_cast<std::size_t>(pred[m])][i] : 0.0;
      begin[m][i] = std::max(ready, freed_prev[m]);
      const double service =
          touches(mod, image_exit) ? static_cast<double>(mod.cycles) : 0.0;
      data_ready[m][i] = begin[m][i] + service;
      // Output-FIFO stall: blocked until each consumer began image i-D.
      double freed = data_ready[m][i];
      if (i >= kFifoDepth) {
        for (int c : consumers[m]) {
          freed = std::max(freed,
                           begin[static_cast<std::size_t>(c)][i - kFifoDepth]);
        }
      }
      freed_prev[m] = freed;
    }
    const auto& path = acc.paths[static_cast<std::size_t>(image_exit)];
    ADAPEX_ASSERT(!path.empty());
    result.completion_cycles[i] =
        data_ready[static_cast<std::size_t>(path.back())][i];
  }

  result.first_latency_cycles = result.completion_cycles.front();
  double latency_sum = 0.0;
  for (std::size_t i = 0; i < num_images; ++i) {
    latency_sum += result.completion_cycles[i] - begin[0][i];
  }
  result.avg_latency_cycles = latency_sum / static_cast<double>(num_images);

  // Steady-state II: pace of *injections* (module 0 begins) over the second
  // half of the run — the backpressured, sustainable input rate.
  const std::size_t half = num_images / 2;
  if (num_images >= 4 && half + 1 < num_images) {
    const double span = begin[0][num_images - 1] - begin[0][half];
    result.steady_ii_cycles =
        span / static_cast<double>(num_images - 1 - half);
  } else {
    result.steady_ii_cycles = result.completion_cycles.back() /
                              static_cast<double>(num_images);
  }
  return result;
}

}  // namespace adapex
