#include "finn/pipeline_sim.hpp"

#include <algorithm>

namespace adapex {

namespace {

/// Occupancy sweep over one link: arrivals at the producer's data-ready
/// instants, departures at the consumer's begin instants (both sorted,
/// since modules process images in order). An image is resident at time t
/// when it arrived at or before t and the consumer had not begun it
/// strictly before t; the maximum is always attained at an arrival instant.
LinkOccupancy sweep_link(int producer, int consumer,
                         const std::vector<double>& arrivals,
                         const std::vector<double>& departures) {
  LinkOccupancy occ;
  occ.producer = producer;
  occ.consumer = consumer;
  const std::size_t n = arrivals.size();
  std::size_t a = 0;
  std::size_t d = 0;
  while (a < n) {
    const double t = arrivals[a];
    // departures[j] >= arrivals[j], so no departure past index a can
    // precede t; the d < a guard keeps the scan linear and in range.
    while (d < a && departures[d] < t) ++d;
    while (a < n && arrivals[a] <= t) ++a;
    const int resident = static_cast<int>(a - d);
    if (resident > occ.high_water_images) {
      occ.high_water_images = resident;
      occ.peak_time_cycles = t;
    }
  }
  return occ;
}

/// Pace of a non-decreasing event sequence over the second half of the run
/// (the same steady-state window steady_ii_cycles uses).
double second_half_pace(const std::vector<double>& events) {
  const std::size_t n = events.size();
  const std::size_t half = n / 2;
  if (n >= 4 && half + 1 < n) {
    return (events[n - 1] - events[half]) / static_cast<double>(n - 1 - half);
  }
  return events.back() / static_cast<double>(n);
}

}  // namespace

PipelineSimResult simulate_pipeline(const Accelerator& acc,
                                    const std::vector<int>& exit_of_image,
                                    const PipelineSimOptions& options) {
  const std::size_t num_modules = acc.modules.size();
  const std::size_t num_images = exit_of_image.size();
  ADAPEX_CHECK(num_images > 0, "no images to simulate");
  ADAPEX_CHECK(options.injection_interval_cycles >= 0.0,
               "injection interval must be non-negative");
  for (int e : exit_of_image) {
    ADAPEX_CHECK(e >= 0 && e <= acc.num_exits, "exit index out of range");
  }

  const std::vector<int> pred = module_predecessors(acc);
  std::vector<std::vector<int>> consumers(num_modules);
  for (std::size_t m = 0; m < num_modules; ++m) {
    if (pred[m] >= 0) {
      consumers[static_cast<std::size_t>(pred[m])].push_back(
          static_cast<int>(m));
    }
  }

  const bool paced = options.injection_interval_cycles > 0.0;
  const bool bounded = options.fifo_depth > 0;
  const std::size_t depth =
      bounded ? static_cast<std::size_t>(options.fifo_depth) : 0;

  // begin[m][i], data_ready[m][i] (finish of compute), freed_prev[m]: the
  // instant module m's output slot for the previous image freed. With
  // bounded FIFOs a module, after computing image i, stays blocked until
  // every consumer has begun image i - depth; that backpressure is what
  // makes the closed-loop injection rate the *sustainable* rate.
  std::vector<std::vector<double>> begin(num_modules), data_ready(num_modules);
  for (std::size_t m = 0; m < num_modules; ++m) {
    begin[m].assign(num_images, 0.0);
    data_ready[m].assign(num_images, 0.0);
  }
  std::vector<double> freed_prev(num_modules, 0.0);

  PipelineSimResult result;
  result.completion_cycles.resize(num_images);

  for (std::size_t i = 0; i < num_images; ++i) {
    const int image_exit = exit_of_image[i];
    for (std::size_t m = 0; m < num_modules; ++m) {
      const HlsModule& mod = acc.modules[m];
      double ready = 0.0;
      if (pred[m] >= 0) {
        ready = data_ready[static_cast<std::size_t>(pred[m])][i];
      } else if (paced) {
        ready = static_cast<double>(i) * options.injection_interval_cycles;
      }
      begin[m][i] = std::max(ready, freed_prev[m]);
      const double service = module_touches(mod, image_exit)
                                 ? static_cast<double>(mod.cycles)
                                 : 0.0;
      data_ready[m][i] = begin[m][i] + service;
      double freed = data_ready[m][i];
      if (bounded && i >= depth) {
        for (int c : consumers[m]) {
          freed =
              std::max(freed, begin[static_cast<std::size_t>(c)][i - depth]);
        }
      }
      freed_prev[m] = freed;
    }
    const auto& path = acc.paths[static_cast<std::size_t>(image_exit)];
    ADAPEX_ASSERT(!path.empty());
    result.completion_cycles[i] =
        data_ready[static_cast<std::size_t>(path.back())][i];
  }

  result.first_latency_cycles = result.completion_cycles.front();
  double latency_sum = 0.0;
  for (std::size_t i = 0; i < num_images; ++i) {
    latency_sum += result.completion_cycles[i] - begin[0][i];
  }
  result.avg_latency_cycles = latency_sum / static_cast<double>(num_images);

  // Steady-state II: pace of *injections* (module 0 begins) over the second
  // half of the run, plus the per-module begin pace the dataflow verifier
  // reads the bottleneck's realized II from.
  const std::size_t half = num_images / 2;
  if (num_images >= 4 && half + 1 < num_images) {
    result.steady_ii_cycles = second_half_pace(begin[0]);
  } else {
    result.steady_ii_cycles = result.completion_cycles.back() /
                              static_cast<double>(num_images);
  }
  result.module_begin_ii_cycles.resize(num_modules);
  for (std::size_t m = 0; m < num_modules; ++m) {
    result.module_begin_ii_cycles[m] = second_half_pace(begin[m]);
  }

  if (options.record_link_occupancy) {
    for (std::size_t c = 0; c < num_modules; ++c) {
      if (pred[c] < 0) continue;
      const std::size_t p = static_cast<std::size_t>(pred[c]);
      result.links.push_back(
          sweep_link(static_cast<int>(p), static_cast<int>(c), data_ready[p],
                     begin[c]));
    }
  }
  return result;
}

}  // namespace adapex
