// Event-driven simulation of the dataflow pipeline.
//
// Substitute for the paper's Verilator RTL simulations (see DESIGN.md): a
// transaction-level model where each streaming module serially processes one
// image in its `cycles` budget, overlapping across modules exactly like the
// synthesized pipeline. Images carry their taken exit, so the simulator
// reproduces the stream-gating service model (backbone tail skipped after a
// taken exit, exit heads fed up to their branch point).
//
// Two operating regimes, selected via PipelineSimOptions:
//   - closed loop (default): the source injects back-to-back and every
//     module's output FIFO is `fifo_depth` images deep, so backpressure
//     throttles injection to the sustainable rate. This is the legacy
//     behaviour (depth 2).
//   - paced / unbounded: the source injects one image every
//     `injection_interval_cycles` and FIFOs are unbounded. This is the
//     steady-state regime FIFO sizing provisions for; size_fifos() and the
//     dataflow verifier's cross-validation both measure link occupancy here,
//     through this one shared measurement path.
//
// Used in tests to validate the analytical initiation-interval and latency
// estimates, by analysis::cross_validate() to check the static dataflow
// bounds, and available to users who want trace-level behaviour.

#pragma once

#include <vector>

#include "finn/accelerator.hpp"

namespace adapex {

/// Knobs for one simulation run.
struct PipelineSimOptions {
  /// Cycles between successive source injections; 0 means closed-loop
  /// (the source re-injects as soon as backpressure frees it).
  double injection_interval_cycles = 0.0;
  /// Output-FIFO depth in images at every link; <= 0 means unbounded.
  long fifo_depth = 2;
  /// Record per-link occupancy high-water marks (kLinkOccupancy below).
  bool record_link_occupancy = true;
};

/// Measured occupancy of one producer -> consumer link: an image occupies
/// the link from the producer's data-ready instant until the consumer
/// begins it.
struct LinkOccupancy {
  int producer = -1;  ///< Module index.
  int consumer = -1;
  /// Maximum images simultaneously resident on the link.
  int high_water_images = 0;
  /// Simulation time (cycles) at which the high-water mark was reached.
  double peak_time_cycles = 0.0;
};

/// Result of simulating a stream of images through the pipeline.
struct PipelineSimResult {
  /// Average cycles between successive source injections in steady state
  /// (measured over the second half of the run). In closed-loop mode this
  /// is the backpressured, sustainable input rate.
  double steady_ii_cycles = 0.0;
  /// Completion time of the first image (pipeline fill + drain), cycles.
  double first_latency_cycles = 0.0;
  /// Average per-image latency (injection to completion), cycles.
  double avg_latency_cycles = 0.0;
  /// Completion timestamp per image, cycles.
  std::vector<double> completion_cycles;
  /// Average cycles between successive `begin` events per module over the
  /// second half of the run — module m's realized initiation interval.
  std::vector<double> module_begin_ii_cycles;
  /// Per-link occupancy measurements (empty unless recorded). One entry per
  /// module with a predecessor, in module-index order of the consumer.
  std::vector<LinkOccupancy> links;
};

/// Simulates `exit_of_image.size()` back-to-back images; exit_of_image[i]
/// gives the output index (0..num_exits) image i is accepted at.
PipelineSimResult simulate_pipeline(const Accelerator& acc,
                                    const std::vector<int>& exit_of_image,
                                    const PipelineSimOptions& options = {});

}  // namespace adapex
