// Event-driven simulation of the dataflow pipeline.
//
// Substitute for the paper's Verilator RTL simulations (see DESIGN.md): a
// transaction-level model where each streaming module serially processes one
// image in its `cycles` budget, overlapping across modules exactly like the
// synthesized pipeline. Images carry their taken exit, so the simulator
// reproduces the stream-gating service model (backbone tail skipped after a
// taken exit, exit heads fed up to their branch point). FIFOs are assumed
// deep enough to avoid backpressure stalls, which is FINN's own FIFO-sizing
// goal.
//
// Used in tests to validate the analytical initiation-interval and latency
// estimates, and available to users who want trace-level behaviour.

#pragma once

#include <vector>

#include "finn/accelerator.hpp"

namespace adapex {

/// Result of simulating a stream of images through the pipeline.
struct PipelineSimResult {
  /// Average cycles between successive completions in steady state
  /// (measured over the second half of the run).
  double steady_ii_cycles = 0.0;
  /// Completion time of the first image (pipeline fill + drain), cycles.
  double first_latency_cycles = 0.0;
  /// Average per-image latency (injection to completion), cycles.
  double avg_latency_cycles = 0.0;
  /// Completion timestamp per image, cycles.
  std::vector<double> completion_cycles;
};

/// Simulates `exit_of_image.size()` back-to-back images; exit_of_image[i]
/// gives the output index (0..num_exits) image i is accepted at.
PipelineSimResult simulate_pipeline(const Accelerator& acc,
                                    const std::vector<int>& exit_of_image);

}  // namespace adapex
