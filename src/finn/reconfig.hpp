// FPGA reconfiguration cost and outcome model.
//
// Switching the pruning rate means loading a different accelerator
// bitstream. The paper reports four reconfigurations taking 580 ms total on
// the ZCU104, i.e. ~145 ms each; we model a fixed base cost plus a small
// resource-proportional term (bitstream size scales with configured area).
// During a reconfiguration the accelerator serves nothing — the edge
// simulation accounts the dead time against the request queue.
//
// A reconfiguration is an *attempt*, not a guarantee: real bitstream loads
// can fail (PCAP/ICAP errors, checksum mismatches) or run long. Every
// attempt resolves to a ReconfigOutcome; the fault-free model always
// succeeds at the nominal time, and runtime/faults.hpp injects failures and
// slowdowns on top of it.

#pragma once

#include "finn/accelerator.hpp"

namespace adapex {

/// Result of one bitstream-load attempt. The dead time is paid whether or
/// not the load succeeds: a failed load still holds the accelerator dark
/// before the error surfaces, and the previously loaded design stays active.
struct ReconfigOutcome {
  bool success = true;
  bool slowed = false;   ///< Load ran long (fault-injected).
  double dead_ms = 0.0;  ///< Accelerator dark time for this attempt.
};

/// Reconfiguration time model.
struct ReconfigModel {
  /// Fixed bitstream load cost (paper: 580 ms / 4 reconfigurations).
  double base_ms = 145.0;
  /// Additional ms per 100k LUTs of configured design (second-order).
  double ms_per_100klut = 5.0;

  double time_ms(const Accelerator& acc) const {
    return base_ms + ms_per_100klut * static_cast<double>(acc.total.lut) / 1e5;
  }

  /// Fault-free attempt: always succeeds at the nominal load time.
  ReconfigOutcome attempt(const Accelerator& acc) const {
    ReconfigOutcome out;
    out.dead_ms = time_ms(acc);
    return out;
  }
};

}  // namespace adapex
