// FPGA reconfiguration cost model.
//
// Switching the pruning rate means loading a different accelerator
// bitstream. The paper reports four reconfigurations taking 580 ms total on
// the ZCU104, i.e. ~145 ms each; we model a fixed base cost plus a small
// resource-proportional term (bitstream size scales with configured area).
// During a reconfiguration the accelerator serves nothing — the edge
// simulation accounts the dead time against the request queue.

#pragma once

#include "finn/accelerator.hpp"

namespace adapex {

/// Reconfiguration time model.
struct ReconfigModel {
  /// Fixed bitstream load cost (paper: 580 ms / 4 reconfigurations).
  double base_ms = 145.0;
  /// Additional ms per 100k LUTs of configured design (second-order).
  double ms_per_100klut = 5.0;

  double time_ms(const Accelerator& acc) const {
    return base_ms + ms_per_100klut * static_cast<double>(acc.total.lut) / 1e5;
  }
};

}  // namespace adapex
