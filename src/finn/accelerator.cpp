#include "finn/accelerator.hpp"

#include <algorithm>
#include <cmath>

#include "analysis/lint.hpp"
#include "tensor/ops.hpp"

namespace adapex {

namespace {

/// Geometry tracked while emitting modules for one Sequential.
struct EmitState {
  int channels = 0;
  int dim = 0;
  int features = 0;
  bool flattened = false;
  /// Parallelism (channels per cycle) of the producing stream, used to cost
  /// pool/branch units that run at line rate.
  int stream_pe = 1;
};

struct Emitter {
  const FoldingConfig& folding;
  const AcceleratorConfig& config;
  /// Walk-order sites (model/walk.hpp) — the same indexing the folding
  /// config uses, so geometry and cycle costs route through the shared
  /// site helpers (hls/folding.hpp) and cannot drift from the folding
  /// optimizers' objective.
  const std::vector<LayerSite>& sites;
  std::vector<HlsModule> modules;
  std::size_t fold_index = 0;  // walk-order cursor

  /// Emits all modules of one Sequential; appends the emitted module
  /// indices to `path`. `exit_level` is the number of upstream branch
  /// points; `exit_head` tags exit-head modules.
  void emit_sequential(Sequential& seq, const std::string& prefix,
                       EmitState& state, int exit_level, int exit_head,
                       std::vector<int>& path) {
    int act_bits_default = 2;
    for (std::size_t i = 0; i < seq.size(); ++i) {
      Layer& layer = seq.layer(i);
      switch (layer.kind()) {
        case LayerKind::kConv: {
          const std::size_t idx = next_index(layer);
          const LayerSite& site = sites[idx];
          const LayerFold fold = folding.folds[idx];
          const MvtuGeometry g = site_mvtu_geometry(site);
          ADAPEX_ASSERT(g.in_dim == state.dim);
          ADAPEX_ASSERT(g.act_bits == act_bits_default);

          HlsModule swu;
          swu.kind = HlsModuleKind::kSwu;
          swu.name = prefix + "." + std::to_string(i) + ".swu";
          swu.cycles = swu_cycles(g, fold.simd);
          swu.resources = swu_resources(g, fold.simd, config.cost);
          swu.exit_level = exit_level;
          swu.exit_head = exit_head;
          swu.in_stream_elems = state.stream_pe;
          swu.out_stream_elems = fold.simd;
          path.push_back(static_cast<int>(modules.size()));
          modules.push_back(swu);

          HlsModule mvtu;
          mvtu.kind = HlsModuleKind::kMvtu;
          mvtu.name = prefix + "." + std::to_string(i) + ".mvtu";
          mvtu.cycles = site_fold_cycles(site, fold);
          mvtu.resources = mvtu_resources(g, fold.pe, fold.simd, config.cost);
          mvtu.exit_level = exit_level;
          mvtu.exit_head = exit_head;
          mvtu.in_stream_elems = fold.simd;
          mvtu.out_stream_elems = fold.pe;
          path.push_back(static_cast<int>(modules.size()));
          modules.push_back(mvtu);

          state.channels = site.out_channels;
          state.dim = g.out_dim;
          state.stream_pe = fold.pe;
          break;
        }
        case LayerKind::kLinear: {
          const std::size_t idx = next_index(layer);
          const LayerSite& site = sites[idx];
          const LayerFold fold = folding.folds[idx];
          const MvtuGeometry g = site_mvtu_geometry(site);
          ADAPEX_ASSERT(g.act_bits == act_bits_default);

          HlsModule mvtu;
          mvtu.kind = HlsModuleKind::kMvtu;
          mvtu.name = prefix + "." + std::to_string(i) + ".mvtu";
          mvtu.cycles = site_fold_cycles(site, fold);
          mvtu.resources = mvtu_resources(g, fold.pe, fold.simd, config.cost);
          mvtu.exit_level = exit_level;
          mvtu.exit_head = exit_head;
          mvtu.in_stream_elems = fold.simd;
          mvtu.out_stream_elems = fold.pe;
          path.push_back(static_cast<int>(modules.size()));
          modules.push_back(mvtu);

          state.features = site.out_channels;
          state.stream_pe = fold.pe;
          break;
        }
        case LayerKind::kMaxPool: {
          auto& pool = static_cast<MaxPool2d&>(layer);
          HlsModule m;
          m.kind = HlsModuleKind::kPool;
          m.name = prefix + "." + std::to_string(i) + ".pool";
          m.cycles = pool_cycles(state.channels, state.dim, state.stream_pe);
          m.resources = pool_resources(state.channels, state.stream_pe,
                                       act_bits_default, config.cost);
          m.exit_level = exit_level;
          m.exit_head = exit_head;
          m.in_stream_elems = state.stream_pe;
          m.out_stream_elems = state.stream_pe;
          path.push_back(static_cast<int>(modules.size()));
          modules.push_back(m);
          state.dim = ops::out_dim(state.dim, pool.kernel(), pool.stride());
          break;
        }
        case LayerKind::kFlatten:
          state.features = state.channels * state.dim * state.dim;
          state.flattened = true;
          break;
        case LayerKind::kActQuant: {
          auto& act = static_cast<ActQuant&>(layer);
          if (act.bits() > 0) act_bits_default = act.bits();
          break;  // absorbed into MVTU thresholds
        }
        case LayerKind::kBatchNorm:
          break;  // absorbed into MVTU thresholds
      }
    }
  }

  /// Advances the walk-order cursor for one compute layer, checking the
  /// emit order against the walk sites.
  std::size_t next_index(const Layer& layer) {
    ADAPEX_CHECK(fold_index < folding.folds.size(),
                 "folding config shorter than model layer list");
    ADAPEX_ASSERT(fold_index < sites.size() &&
                  sites[fold_index].layer == &layer);
    return fold_index++;
  }
};

}  // namespace

Accelerator compile_accelerator(BranchyModel& model,
                                const FoldingConfig& folding,
                                const AcceleratorConfig& config) {
  // Precondition: the design-level lint rules must hold. All violations are
  // reported at once in a single ConfigError (analysis/lint.hpp), replacing
  // the old first-check-wins ADAPEX_CHECK aborts.
  analysis::require_valid_design(model, folding, config);

  const std::vector<LayerSite> sites =
      walk_compute_layers(model, config.in_channels, config.image_size);
  Emitter emitter{folding, config, sites, {}, 0};
  Accelerator acc;
  acc.fclk_mhz = config.fclk_mhz;
  acc.num_exits = static_cast<int>(model.num_exits());

  // Backbone blocks; record per-block state and the module path prefix.
  EmitState state;
  state.channels = config.in_channels;
  state.dim = config.image_size;
  std::vector<int> backbone_path;
  std::vector<EmitState> block_state(model.num_blocks());
  // Exit attachment bookkeeping: exits are sorted by block; count upstream
  // branch points to set exit levels.
  std::vector<std::vector<int>> path_prefix_at_exit(model.num_exits());

  int exits_seen = 0;
  for (std::size_t b = 0; b < model.num_blocks(); ++b) {
    emitter.emit_sequential(model.block(b), "backbone.b" + std::to_string(b),
                            state, exits_seen, -1, backbone_path);
    block_state[b] = state;
    // Insert a branch module per exit attached at this block's output.
    for (std::size_t e = 0; e < model.num_exits(); ++e) {
      if (model.exit(e).after_block != static_cast<int>(b)) continue;
      HlsModule branch;
      branch.kind = HlsModuleKind::kBranch;
      branch.name = "branch.exit" + std::to_string(e);
      branch.cycles = branch_cycles(state.channels, state.dim, state.stream_pe);
      branch.resources = branch_resources(state.channels, state.dim,
                                          state.stream_pe, 2, config.cost);
      branch.exit_level = exits_seen;
      branch.exit_head = -1;
      branch.in_stream_elems = state.stream_pe;
      branch.out_stream_elems = state.stream_pe;
      backbone_path.push_back(static_cast<int>(emitter.modules.size()));
      emitter.modules.push_back(branch);
      path_prefix_at_exit[e] = backbone_path;  // snapshot incl. the branch
      ++exits_seen;
    }
  }

  // Exit heads. The emitter's fold cursor continues in walk order (backbone
  // layers first, then exit layers), matching walk_compute_layers.
  std::vector<std::vector<int>> exit_paths(model.num_exits());
  for (std::size_t e = 0; e < model.num_exits(); ++e) {
    EmitState exit_state =
        block_state[static_cast<std::size_t>(model.exit(e).after_block)];
    std::vector<int> head_path = path_prefix_at_exit[e];
    emitter.emit_sequential(*model.exit(e).head, "exit" + std::to_string(e),
                            exit_state, static_cast<int>(e),
                            static_cast<int>(e), head_path);
    exit_paths[e] = std::move(head_path);
  }

  acc.modules = std::move(emitter.modules);
  for (auto& p : exit_paths) acc.paths.push_back(std::move(p));
  acc.paths.push_back(std::move(backbone_path));

  for (const auto& m : acc.modules) {
    acc.total += m.resources;
    if (m.exit_head >= 0 || m.kind == HlsModuleKind::kBranch) {
      acc.exit_overhead += m.resources;
    }
  }
  return acc;
}

std::vector<int> module_predecessors(const Accelerator& acc) {
  std::vector<int> pred(acc.modules.size(), -1);
  for (const auto& path : acc.paths) {
    for (std::size_t i = 1; i < path.size(); ++i) {
      pred[static_cast<std::size_t>(path[i])] = path[i - 1];
    }
  }
  return pred;
}

std::vector<std::pair<int, int>> accelerator_links(const Accelerator& acc) {
  std::vector<std::pair<int, int>> links;
  for (const auto& path : acc.paths) {
    for (std::size_t i = 1; i < path.size(); ++i) {
      const std::pair<int, int> link{path[i - 1], path[i]};
      if (std::find(links.begin(), links.end(), link) == links.end()) {
        links.push_back(link);
      }
    }
  }
  return links;
}

std::vector<double> realized_fractions(const Accelerator& acc,
                                       const std::vector<int>& exit_of_image) {
  ADAPEX_CHECK(!exit_of_image.empty(), "empty stimulus");
  std::vector<double> fractions(static_cast<std::size_t>(acc.num_exits) + 1,
                                0.0);
  for (int e : exit_of_image) {
    ADAPEX_CHECK(e >= 0 && e <= acc.num_exits, "exit index out of range");
    fractions[static_cast<std::size_t>(e)] += 1.0;
  }
  for (double& f : fractions) f /= static_cast<double>(exit_of_image.size());
  return fractions;
}

double gated_steady_ii(const Accelerator& acc,
                       const std::vector<double>& exit_fractions,
                       int* bottleneck) {
  ADAPEX_CHECK(
      static_cast<int>(exit_fractions.size()) == acc.num_exits + 1,
      "exit fraction arity must equal outputs");
  const auto reach = reach_from_fractions(exit_fractions);
  double ii = 0.0;
  int binding = -1;
  for (std::size_t m = 0; m < acc.modules.size(); ++m) {
    const HlsModule& mod = acc.modules[m];
    const int level = mod.exit_head >= 0 ? mod.exit_head : mod.exit_level;
    const double r = level < static_cast<int>(reach.size())
                         ? reach[static_cast<std::size_t>(level)]
                         : 0.0;
    const double gated = static_cast<double>(mod.cycles) * r;
    if (gated > ii) {
      ii = gated;
      binding = static_cast<int>(m);
    }
  }
  if (bottleneck != nullptr) *bottleneck = binding;
  return ii;
}

std::vector<double> reach_from_fractions(
    const std::vector<double>& fractions) {
  std::vector<double> reach(fractions.size(), 1.0);
  double survived = 1.0;
  for (std::size_t e = 0; e < fractions.size(); ++e) {
    reach[e] = survived;
    survived -= fractions[e];
  }
  return reach;
}

AcceleratorPerf estimate_performance(const Accelerator& acc,
                                     const std::vector<double>& exit_fractions,
                                     const PowerModel& power) {
  ADAPEX_CHECK(static_cast<int>(exit_fractions.size()) == acc.num_exits + 1,
               "exit fraction arity must equal outputs");
  double sum = 0.0;
  for (double f : exit_fractions) {
    ADAPEX_CHECK(f >= -1e-9, "negative exit fraction");
    sum += f;
  }
  ADAPEX_CHECK(std::abs(sum - 1.0) < 1e-6, "exit fractions must sum to 1");

  const auto reach = reach_from_fractions(exit_fractions);
  auto module_reach = [&](const HlsModule& m) {
    const int level = m.exit_level;
    ADAPEX_ASSERT(level >= 0 &&
                  level < static_cast<int>(reach.size()) + 1);
    return level < static_cast<int>(reach.size()) ? reach[static_cast<std::size_t>(level)]
                                                  : 0.0;
  };

  AcceleratorPerf perf;
  // Effective initiation interval: the bottleneck module's expected
  // occupancy per offered input.
  double ii_cycles = 0.0;
  for (const auto& m : acc.modules) {
    ii_cycles = std::max(ii_cycles, m.cycles * module_reach(m));
  }
  ADAPEX_CHECK(ii_cycles > 0.0, "degenerate accelerator (no work)");
  perf.ips = acc.fclk_hz() / ii_cycles;

  // Per-exit latency: sum of module cycles along the exit's path (FINN's
  // analytical latency convention).
  perf.latency_ms_per_exit.resize(acc.paths.size());
  perf.latency_ms = 0.0;
  for (std::size_t e = 0; e < acc.paths.size(); ++e) {
    double cycles = 0.0;
    for (int mi : acc.paths[e]) {
      cycles += static_cast<double>(acc.modules[static_cast<std::size_t>(mi)].cycles);
    }
    perf.latency_ms_per_exit[e] = cycles / acc.fclk_hz() * 1e3;
    perf.latency_ms += exit_fractions[e] * perf.latency_ms_per_exit[e];
  }

  // Energy: work actually performed per inference (gated tail), plus the
  // static share at the achieved rate; peak power at full utilization.
  double dyn_energy = 0.0;
  double dyn_power = 0.0;
  for (const auto& m : acc.modules) {
    const double peak_w = power.module_peak_w(m.resources);
    const double busy_cycles = m.cycles * module_reach(m);
    dyn_energy += peak_w * busy_cycles / acc.fclk_hz();
    dyn_power += peak_w * busy_cycles / ii_cycles;
  }
  perf.peak_power_w = power.static_w + dyn_power;
  perf.energy_per_inf_j = dyn_energy + power.static_w / perf.ips;
  return perf;
}

}  // namespace adapex
