// FINN streamlining: BatchNorm + activation quantization -> integer
// thresholds.
//
// FINN's MVTU does not execute BatchNorm or activation quantization as
// layers; its threshold stage compares the integer accumulator against a
// per-channel, per-level threshold table and emits the activation's integer
// level directly. This module reproduces that transformation and provides
// an integer inference path to validate it:
//
//   For a conv/fc layer with per-channel ternary weights (alpha_c * z,
//   z in {-1,0,1}) consuming activations of scale s_in with L levels, the
//   pre-activation is v = A_c * acc + B_c where acc = sum(z * m) is the
//   integer accumulator, A_c folds alpha_c, s_in/L, and the BatchNorm
//   scale, and B_c folds the BatchNorm shift. The quantized activation
//   level is n iff v crosses (n - 0.5) * s_out / L, which solves to an
//   integer-domain threshold T_n per channel (direction flipped when
//   A_c < 0).
//
// run_streamlined() executes the whole branched model in this integer
// domain (max-pool commutes with the monotone level encoding, exactly as
// FINN reorders pooling behind thresholding) and must match the float
// model's logits up to float rounding — asserted by tests. This is the
// repo's substitute for checking FINN's streamlined graph against the
// Brevitas reference.

#pragma once

#include <cstdint>
#include <vector>

#include "nn/branchy.hpp"

namespace adapex {

/// One streamlined compute operation.
struct StreamlinedOp {
  enum class Kind { kMvtu, kPool, kFlatten };
  Kind kind = Kind::kMvtu;

  // --- kMvtu ---
  bool is_conv = false;
  int in_channels = 0;   ///< conv channels / fc features
  int out_channels = 0;
  int kernel = 1;
  /// Ternary weight matrix [out][in * k * k] in {-1, 0, +1}.
  std::vector<std::int8_t> weights;
  /// Output activation levels (2^bits - 1); 0 when the layer emits raw
  /// logits through the affine parameters below instead of thresholding.
  int levels = 0;
  /// thresholds[c][n]: accumulator threshold for level n+1 of channel c.
  std::vector<std::vector<double>> thresholds;
  /// Per-channel sign of the affine slope (thresholding direction).
  std::vector<std::int8_t> ascending;
  /// Raw-output layers (final classifiers): logits = scale[c]*acc + bias[c].
  std::vector<double> out_scale;
  std::vector<double> out_bias;

  // --- kPool ---
  int pool_kernel = 0;
  int pool_stride = 0;
};

/// A streamlined branched model (mirrors BranchyModel's structure).
struct StreamlinedModel {
  std::vector<std::vector<StreamlinedOp>> blocks;
  struct Exit {
    int after_block = 0;
    std::vector<StreamlinedOp> head;
  };
  std::vector<Exit> exits;
  int in_channels = 3;
  int image_size = 32;
};

/// Streamlines a trained model. Requires every conv/fc to use 2-bit
/// (ternary) weights and every activation quantizer to be 2-bit or wider;
/// throws ConfigError otherwise.
StreamlinedModel streamline(const BranchyModel& model, int in_channels,
                            int image_size);

/// Runs integer-threshold inference on a [N,C,H,W] float input batch.
/// Returns logits per output (exits then final), matching
/// BranchyModel::forward(..., train=false) up to float rounding.
std::vector<Tensor> run_streamlined(const StreamlinedModel& model,
                                    const Tensor& input);

}  // namespace adapex
