#include "finn/streamline.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "tensor/ops.hpp"

namespace adapex {

namespace {

constexpr float kBnEps = 1e-5f;  // must match BatchNorm::forward

/// Extracts per-channel ternary codes and scales from a quantized weight
/// tensor (rows = output channels). Throws if the layer is not 2-bit.
void ternarize(const Tensor& weight, int weight_bits,
               std::vector<std::int8_t>& codes, std::vector<double>& alpha) {
  if (weight_bits != 2) {
    throw ConfigError(
        "streamlining requires 2-bit (ternary) weights, got " +
        std::to_string(weight_bits) + " bits");
  }
  Tensor q;
  quantize_weight_per_channel(weight, weight_bits, q);
  const int rows = weight.dim(0);
  const std::size_t per_row = weight.numel() / static_cast<std::size_t>(rows);
  codes.assign(weight.numel(), 0);
  alpha.assign(static_cast<std::size_t>(rows), 0.0);
  for (int r = 0; r < rows; ++r) {
    double a = 0.0;
    for (std::size_t i = 0; i < per_row; ++i) {
      const float v = q[static_cast<std::size_t>(r) * per_row + i];
      if (std::abs(v) > 1e-12f) {
        a = std::abs(v);
        break;
      }
    }
    alpha[static_cast<std::size_t>(r)] = a;
    for (std::size_t i = 0; i < per_row; ++i) {
      const float v = q[static_cast<std::size_t>(r) * per_row + i];
      std::int8_t code = 0;
      if (v > 1e-12f) code = 1;
      else if (v < -1e-12f) code = -1;
      codes[static_cast<std::size_t>(r) * per_row + i] = code;
    }
  }
}

/// Streamlines one Sequential into ops, updating the stored-value scale
/// factor `f` (activation value = f * stored integer level; f = 1 for the
/// raw input image).
void streamline_sequential(const Sequential& seq, double& f,
                           std::vector<StreamlinedOp>& ops) {
  for (std::size_t i = 0; i < seq.size(); ++i) {
    const Layer& layer = seq.layer(i);
    switch (layer.kind()) {
      case LayerKind::kConv:
      case LayerKind::kLinear: {
        StreamlinedOp op;
        op.kind = StreamlinedOp::Kind::kMvtu;
        std::vector<double> alpha;
        if (layer.kind() == LayerKind::kConv) {
          const auto& conv = static_cast<const QuantConv2d&>(layer);
          op.is_conv = true;
          op.in_channels = conv.in_channels();
          op.out_channels = conv.out_channels();
          op.kernel = conv.kernel();
          ternarize(conv.weight().value, conv.weight_bits(), op.weights,
                    alpha);
        } else {
          const auto& fc = static_cast<const QuantLinear&>(layer);
          op.is_conv = false;
          op.in_channels = fc.in_features();
          op.out_channels = fc.out_features();
          op.kernel = 1;
          ternarize(fc.weight().value, fc.weight_bits(), op.weights, alpha);
        }

        // Look ahead for BatchNorm and ActQuant to absorb.
        const BatchNorm* bn = nullptr;
        const ActQuant* act = nullptr;
        std::size_t consumed = 0;
        if (i + 1 < seq.size() &&
            seq.layer(i + 1).kind() == LayerKind::kBatchNorm) {
          bn = static_cast<const BatchNorm*>(&seq.layer(i + 1));
          ++consumed;
        }
        if (i + 1 + consumed < seq.size() &&
            seq.layer(i + 1 + consumed).kind() == LayerKind::kActQuant) {
          act = static_cast<const ActQuant*>(&seq.layer(i + 1 + consumed));
          ++consumed;
        }
        i += consumed;

        // Affine pre-activation per channel: v = A_c * acc + B_c.
        std::vector<double> a_coef(static_cast<std::size_t>(op.out_channels));
        std::vector<double> b_coef(static_cast<std::size_t>(op.out_channels));
        for (int c = 0; c < op.out_channels; ++c) {
          double a = alpha[static_cast<std::size_t>(c)] * f;
          double b = 0.0;
          if (bn != nullptr) {
            const double inv_std =
                1.0 / std::sqrt(static_cast<double>(
                                    bn->running_var()[static_cast<std::size_t>(c)]) +
                                kBnEps);
            const double gamma = bn->gamma()[static_cast<std::size_t>(c)];
            const double beta = bn->beta()[static_cast<std::size_t>(c)];
            const double mean = bn->running_mean()[static_cast<std::size_t>(c)];
            b = beta - gamma * mean * inv_std + gamma * inv_std * b;
            a = gamma * inv_std * a;
          }
          a_coef[static_cast<std::size_t>(c)] = a;
          b_coef[static_cast<std::size_t>(c)] = b;
        }

        if (act != nullptr && act->bits() > 0) {
          // Threshold stage: level n iff v crosses (n - 0.5) * s / L.
          const int levels = (1 << act->bits()) - 1;
          const double s = std::max<double>(act->scale(), 1e-12);
          op.levels = levels;
          op.thresholds.resize(static_cast<std::size_t>(op.out_channels));
          op.ascending.resize(static_cast<std::size_t>(op.out_channels));
          for (int c = 0; c < op.out_channels; ++c) {
            auto& tch = op.thresholds[static_cast<std::size_t>(c)];
            tch.resize(static_cast<std::size_t>(levels));
            const double a = a_coef[static_cast<std::size_t>(c)];
            const double b = b_coef[static_cast<std::size_t>(c)];
            if (std::abs(a) < 1e-300) {
              // Degenerate: constant pre-activation; level is fixed.
              const double v = b;
              const int n0 = std::clamp(
                  static_cast<int>(std::lround(std::clamp(v, 0.0, s) / s *
                                               levels)),
                  0, levels);
              op.ascending[static_cast<std::size_t>(c)] = 1;
              for (int n = 0; n < levels; ++n) {
                tch[static_cast<std::size_t>(n)] =
                    n < n0 ? -std::numeric_limits<double>::infinity()
                           : std::numeric_limits<double>::infinity();
              }
              continue;
            }
            op.ascending[static_cast<std::size_t>(c)] = a > 0 ? 1 : 0;
            for (int n = 1; n <= levels; ++n) {
              const double boundary = (n - 0.5) * s / levels;
              tch[static_cast<std::size_t>(n - 1)] = (boundary - b) / a;
            }
          }
        } else {
          // Raw affine output (final classifier).
          op.levels = 0;
          op.out_scale = a_coef;
          op.out_bias = b_coef;
        }
        ops.push_back(std::move(op));

        // Update the stored-value scale for downstream layers.
        if (act != nullptr && act->bits() > 0) {
          const int levels = (1 << act->bits()) - 1;
          f = static_cast<double>(act->scale()) / levels;
        } else {
          f = 1.0;  // raw logits carry their true value
        }
        break;
      }
      case LayerKind::kMaxPool: {
        const auto& pool = static_cast<const MaxPool2d&>(layer);
        StreamlinedOp op;
        op.kind = StreamlinedOp::Kind::kPool;
        op.pool_kernel = pool.kernel();
        op.pool_stride = pool.stride();
        ops.push_back(op);
        break;
      }
      case LayerKind::kFlatten: {
        StreamlinedOp op;
        op.kind = StreamlinedOp::Kind::kFlatten;
        ops.push_back(op);
        break;
      }
      case LayerKind::kBatchNorm:
      case LayerKind::kActQuant:
        // Only reachable for a BN/ActQuant without a preceding conv/fc,
        // which the CNV family never produces.
        throw ConfigError("streamlining: dangling BatchNorm/ActQuant");
    }
  }
}

/// Integer MVTU execution over stored values.
Tensor run_mvtu(const StreamlinedOp& op, const Tensor& input) {
  ADAPEX_ASSERT(op.kind == StreamlinedOp::Kind::kMvtu);
  const int batch = input.dim(0);
  Tensor acc;
  if (op.is_conv) {
    const int h = input.dim(2), w = input.dim(3);
    const int oh = ops::out_dim(h, op.kernel, 1);
    const int ow = ops::out_dim(w, op.kernel, 1);
    ADAPEX_CHECK(input.dim(1) == op.in_channels,
                 "streamlined conv channel mismatch");
    acc = Tensor({batch, op.out_channels, oh, ow});
    const std::size_t per_row = static_cast<std::size_t>(op.in_channels) *
                                op.kernel * op.kernel;
    for (int n = 0; n < batch; ++n) {
      for (int fo = 0; fo < op.out_channels; ++fo) {
        const std::int8_t* wrow = op.weights.data() +
                                  static_cast<std::size_t>(fo) * per_row;
        for (int oy = 0; oy < oh; ++oy) {
          for (int ox = 0; ox < ow; ++ox) {
            double sum = 0.0;
            std::size_t wi = 0;
            for (int ci = 0; ci < op.in_channels; ++ci) {
              for (int ky = 0; ky < op.kernel; ++ky) {
                for (int kx = 0; kx < op.kernel; ++kx, ++wi) {
                  const std::int8_t z = wrow[wi];
                  if (z == 0) continue;
                  const float x = input.at4(n, ci, oy + ky, ox + kx);
                  sum += z > 0 ? x : -x;
                }
              }
            }
            acc.at4(n, fo, oy, ox) = static_cast<float>(sum);
          }
        }
      }
    }
  } else {
    ADAPEX_CHECK(input.ndim() == 2 && input.dim(1) == op.in_channels,
                 "streamlined fc feature mismatch");
    acc = Tensor({batch, op.out_channels});
    for (int n = 0; n < batch; ++n) {
      for (int fo = 0; fo < op.out_channels; ++fo) {
        const std::int8_t* wrow =
            op.weights.data() +
            static_cast<std::size_t>(fo) * op.in_channels;
        double sum = 0.0;
        for (int ci = 0; ci < op.in_channels; ++ci) {
          const std::int8_t z = wrow[ci];
          if (z == 0) continue;
          const float x = input.at2(n, ci);
          sum += z > 0 ? x : -x;
        }
        acc.at2(n, fo) = static_cast<float>(sum);
      }
    }
  }

  // Threshold or affine stage.
  const std::size_t plane = acc.numel() / static_cast<std::size_t>(batch) /
                            static_cast<std::size_t>(op.out_channels);
  Tensor out(acc.shape());
  for (int n = 0; n < batch; ++n) {
    for (int c = 0; c < op.out_channels; ++c) {
      const std::size_t base =
          (static_cast<std::size_t>(n) * op.out_channels + c) * plane;
      if (op.levels > 0) {
        const auto& tch = op.thresholds[static_cast<std::size_t>(c)];
        const bool asc = op.ascending[static_cast<std::size_t>(c)] != 0;
        for (std::size_t p = 0; p < plane; ++p) {
          const double a = acc[base + p];
          int level = 0;
          for (double t : tch) {
            if (asc ? a >= t : a <= t) ++level;
          }
          out[base + p] = static_cast<float>(level);
        }
      } else {
        const double sc = op.out_scale[static_cast<std::size_t>(c)];
        const double bi = op.out_bias[static_cast<std::size_t>(c)];
        for (std::size_t p = 0; p < plane; ++p) {
          out[base + p] = static_cast<float>(sc * acc[base + p] + bi);
        }
      }
    }
  }
  return out;
}

Tensor run_ops(const std::vector<StreamlinedOp>& ops_list, Tensor x) {
  std::vector<int> argmax_scratch;
  for (const auto& op : ops_list) {
    switch (op.kind) {
      case StreamlinedOp::Kind::kMvtu:
        x = run_mvtu(op, x);
        break;
      case StreamlinedOp::Kind::kPool:
        x = ops::maxpool_forward(x, op.pool_kernel, op.pool_stride,
                                 argmax_scratch);
        break;
      case StreamlinedOp::Kind::kFlatten: {
        const int batch = x.dim(0);
        x = x.reshaped({batch, static_cast<int>(x.numel()) / batch});
        break;
      }
    }
  }
  return x;
}

}  // namespace

StreamlinedModel streamline(const BranchyModel& model, int in_channels,
                            int image_size) {
  StreamlinedModel out;
  out.in_channels = in_channels;
  out.image_size = image_size;
  double f = 1.0;  // raw image values
  std::vector<double> f_at_block(model.num_blocks());
  for (std::size_t b = 0; b < model.num_blocks(); ++b) {
    std::vector<StreamlinedOp> ops_list;
    streamline_sequential(model.block(b), f, ops_list);
    out.blocks.push_back(std::move(ops_list));
    f_at_block[b] = f;
  }
  for (std::size_t e = 0; e < model.num_exits(); ++e) {
    StreamlinedModel::Exit exit;
    exit.after_block = model.exit(e).after_block;
    double fe = f_at_block[static_cast<std::size_t>(exit.after_block)];
    streamline_sequential(*model.exit(e).head, fe, exit.head);
    out.exits.push_back(std::move(exit));
  }
  return out;
}

std::vector<Tensor> run_streamlined(const StreamlinedModel& model,
                                    const Tensor& input) {
  ADAPEX_CHECK(input.ndim() == 4 && input.dim(1) == model.in_channels &&
                   input.dim(2) == model.image_size &&
                   input.dim(3) == model.image_size,
               "streamlined input shape mismatch");
  std::vector<Tensor> outputs(model.exits.size() + 1);
  Tensor x = input;
  for (std::size_t b = 0; b < model.blocks.size(); ++b) {
    x = run_ops(model.blocks[b], std::move(x));
    for (std::size_t e = 0; e < model.exits.size(); ++e) {
      if (model.exits[e].after_block == static_cast<int>(b)) {
        outputs[e] = run_ops(model.exits[e].head, x);
      }
    }
  }
  outputs.back() = std::move(x);
  return outputs;
}

}  // namespace adapex
