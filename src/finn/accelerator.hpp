// FINN-style dataflow accelerator compiler and analytical performance model.
//
// compile_accelerator() maps a (possibly pruned, possibly branched) CNN to a
// pipeline of streaming HLS modules: SWU+MVTU per conv layer, MVTU per fc
// layer, Pool units, and a Branch (stream duplicator) at every early-exit
// attachment point — the new HLS module the paper adds to FINN. BatchNorm
// and activation quantization are absorbed into MVTU thresholds, as FINN's
// streamlining transformation does.
//
// estimate_performance() evaluates the paper's metrics for a given exit
// distribution: throughput (IPS), per-exit and average latency, power, and
// energy per inference, under the stream-gating service model documented in
// DESIGN.md (backbone work after a taken exit is skipped; exit heads always
// process every input that reaches their branch point).

#pragma once

#include <string>
#include <utility>
#include <vector>

#include "hls/folding.hpp"
#include "hls/modules.hpp"
#include "nn/branchy.hpp"

namespace adapex {

/// Power model: static board power plus per-resource dynamic coefficients
/// (at 100% module activity). Defaults are calibrated so the reduced-scale
/// CNV accelerators land in the paper's reported power band (~1.1-1.4 W on
/// the ZCU104).
struct PowerModel {
  double static_w = 0.70;
  double w_per_klut = 0.045;   ///< W per 1000 active LUTs.
  double w_per_kff = 0.015;    ///< W per 1000 active FFs.
  double w_per_bram = 0.004;   ///< W per active BRAM18.
  double w_per_dsp = 0.002;    ///< W per active DSP slice.

  double module_peak_w(const Resources& r) const {
    return w_per_klut * r.lut / 1000.0 + w_per_kff * r.ff / 1000.0 +
           w_per_bram * r.bram + w_per_dsp * r.dsp;
  }
};

/// Accelerator compile options.
struct AcceleratorConfig {
  double fclk_mhz = 100.0;  ///< Paper: ZCU104 at 100 MHz.
  int in_channels = 3;
  int image_size = 32;
  HlsCostModel cost;
};

/// A synthesized dataflow accelerator.
struct Accelerator {
  std::vector<HlsModule> modules;
  /// Module indices on the path of each output (early exits in order, then
  /// the final exit). An input accepted at output e flows through exactly
  /// path[e].
  std::vector<std::vector<int>> paths;
  Resources total;
  /// Resource subtotal of exit-head modules plus branch duplicators (the
  /// "exit overhead" Figure 5(e) tracks).
  Resources exit_overhead;
  double fclk_mhz = 100.0;
  int num_exits = 0;

  double fclk_hz() const { return fclk_mhz * 1e6; }
};

/// Compiles the model against a folding config (walk order must match).
Accelerator compile_accelerator(BranchyModel& model,
                                const FoldingConfig& folding,
                                const AcceleratorConfig& config);

/// Whether module `m` performs work on an image accepted at output
/// `image_exit` under the stream-gating service model: backbone modules need
/// the image to survive every branch point upstream of them, exit heads
/// process every image that reaches their branch. Shared by the pipeline
/// simulator, the FIFO sizer, and the dataflow verifier so all three gate
/// traffic identically.
inline bool module_touches(const HlsModule& m, int image_exit) {
  if (m.exit_head >= 0) return image_exit >= m.exit_head;
  return image_exit >= m.exit_level;
}

/// Predecessor module index per module (-1 for the source), reconstructed
/// from the path lists. The module graph is a tree fanning out at Branch
/// duplicators, so each module has at most one predecessor.
std::vector<int> module_predecessors(const Accelerator& acc);

/// Deduplicated producer -> consumer links implied by the paths (paths
/// share their backbone prefix), in first-appearance order.
std::vector<std::pair<int, int>> accelerator_links(const Accelerator& acc);

/// Realized exit-fraction vector of a concrete stimulus: one entry per
/// output (exits then final), counts normalized by the stream length.
std::vector<double> realized_fractions(const Accelerator& acc,
                                       const std::vector<int>& exit_of_image);

/// Reach-scaled steady-state initiation interval in cycles: the bottleneck
/// module's expected occupancy per offered input, max_m cycles_m * reach_m.
/// `exit_fractions` must have one entry per output. Returns the II and, via
/// `bottleneck` (optional), the index of the binding module.
double gated_steady_ii(const Accelerator& acc,
                       const std::vector<double>& exit_fractions,
                       int* bottleneck = nullptr);

/// Performance estimate for one (accelerator, exit distribution) pair.
struct AcceleratorPerf {
  double ips = 0.0;              ///< Sustainable inferences per second.
  double latency_ms = 0.0;       ///< Average inference latency.
  std::vector<double> latency_ms_per_exit;
  double peak_power_w = 0.0;     ///< At full utilization (incl. static).
  double energy_per_inf_j = 0.0; ///< At full utilization.
};

/// `exit_fractions` must have one entry per output (exits then final) and
/// sum to ~1; pass {1.0} for a model without early exits.
AcceleratorPerf estimate_performance(const Accelerator& acc,
                                     const std::vector<double>& exit_fractions,
                                     const PowerModel& power);

/// Survival probability before each output: reach[L] = 1 - sum of exit
/// fractions of exits with index < L.
std::vector<double> reach_from_fractions(const std::vector<double>& fractions);

}  // namespace adapex
