#include "hls/modules.hpp"

#include <cmath>

namespace adapex {

const char* to_string(HlsModuleKind kind) {
  switch (kind) {
    case HlsModuleKind::kSwu: return "SWU";
    case HlsModuleKind::kMvtu: return "MVTU";
    case HlsModuleKind::kPool: return "Pool";
    case HlsModuleKind::kBranch: return "Branch";
  }
  return "?";
}

long mvtu_cycles(const MvtuGeometry& g, int pe, int simd) {
  ADAPEX_CHECK(pe >= 1 && simd >= 1, "fold must be positive");
  const long mw = static_cast<long>(g.kernel) * g.kernel * g.in_channels;
  ADAPEX_CHECK(g.out_channels % pe == 0, "PE must divide output channels");
  // FINN's MVAU constraint: SIMD divides the full matrix width MW =
  // k^2 * ch_in (kernel unrolling lets SIMD exceed the channel count).
  ADAPEX_CHECK(mw % simd == 0, "SIMD must divide k^2 * input channels");
  const long sf = mw / simd;                     // synapse fold
  const long nf = static_cast<long>(g.out_channels) / pe;  // neuron fold
  const long pixels = static_cast<long>(g.out_dim) * g.out_dim;
  return pixels * sf * nf;
}

long swu_cycles(const MvtuGeometry& g, int simd) {
  ADAPEX_CHECK(g.is_conv, "SWU only exists for conv layers");
  const long window = static_cast<long>(g.kernel) * g.kernel * g.in_channels;
  const long pixels = static_cast<long>(g.out_dim) * g.out_dim;
  return pixels * window / simd;
}

long pool_cycles(int channels, int in_dim, int stream_pe) {
  ADAPEX_CHECK(stream_pe >= 1, "stream parallelism must be positive");
  return static_cast<long>(in_dim) * in_dim * channels / stream_pe;
}

long branch_cycles(int channels, int dim, int stream_pe) {
  ADAPEX_CHECK(stream_pe >= 1, "stream parallelism must be positive");
  return static_cast<long>(dim) * dim * channels / stream_pe;
}

namespace {

long fifo_resources_bram(long width_bits, int depth, const HlsCostModel& cost) {
  // Shallow FIFOs map to LUTRAM; account a BRAM only when the buffered bits
  // exceed half a BRAM18.
  const double bits = static_cast<double>(width_bits) * depth;
  if (bits < cost.bram_bits / 2) return 0;
  return static_cast<long>(std::ceil(bits / cost.bram_bits));
}

}  // namespace

Resources mvtu_resources(const MvtuGeometry& g, int pe, int simd,
                         const HlsCostModel& cost) {
  Resources r;
  // 64-bit lane count: user-supplied folds can make pe * simd overflow int.
  const long lanes = static_cast<long>(pe) * simd;
  const double mac_lut =
      cost.lut_per_mac_base +
      cost.lut_per_mac_per_bitbit * g.weight_bits * g.act_bits;
  r.lut = static_cast<long>(
      std::ceil(static_cast<double>(lanes) * mac_lut + pe * cost.lut_per_pe));
  r.ff = static_cast<long>(std::ceil(r.lut * cost.ff_per_lut));
  // Weight memory, partitioned across PE*SIMD lanes; each partition rounds
  // up to BRAM granularity once large enough (small partitions fold into
  // LUTRAM, matching FINN's mem_mode=const behaviour for tiny layers).
  const double weight_bits = static_cast<double>(g.out_channels) *
                             g.in_channels * g.kernel * g.kernel *
                             g.weight_bits;
  const double bits_per_partition = weight_bits / static_cast<double>(lanes);
  if (bits_per_partition >= cost.bram_bits / 4) {
    // Large layers: one BRAM group per PE*SIMD partition (FINN's
    // decoupled/const weight memory).
    r.bram = static_cast<long>(
        static_cast<double>(lanes) *
        std::ceil(bits_per_partition / cost.bram_bits));
  } else if (weight_bits >= cost.bram_bits / 2) {
    // Mid-size layers: BRAM-backed but partitions share blocks (capacity
    // bound rather than partition bound).
    r.bram = static_cast<long>(std::ceil(weight_bits / cost.bram_bits));
  } else {
    // Tiny layers fold into LUTRAM.
    r.lut += static_cast<long>(std::ceil(weight_bits / 64.0));
  }
  // Input FIFO.
  r.bram += fifo_resources_bram(static_cast<long>(simd) * g.act_bits,
                                cost.fifo_depth, cost);
  // Low-precision MACs synthesize to LUTs, not DSPs (FINN's choice for
  // weights <= 4 bits); wider precisions would take DSP slices.
  if (g.weight_bits > 4 || g.weight_bits <= 0) {
    r.dsp = lanes;
  }
  return r;
}

Resources swu_resources(const MvtuGeometry& g, int simd,
                        const HlsCostModel& cost) {
  Resources r;
  // k line buffers of the input feature map row, in BRAM.
  const double buffer_bits = static_cast<double>(g.kernel) * g.in_dim *
                             g.in_channels * g.act_bits;
  r.bram = static_cast<long>(std::ceil(buffer_bits / cost.bram_bits));
  r.lut = 150 + 4L * simd * g.act_bits;  // address generation + mux
  r.ff = static_cast<long>(std::ceil(r.lut * cost.ff_per_lut));
  return r;
}

Resources pool_resources(int channels, int stream_pe, int act_bits,
                         const HlsCostModel& cost) {
  Resources r;
  r.lut = 60 + 3L * stream_pe * act_bits;
  r.ff = static_cast<long>(std::ceil(r.lut * cost.ff_per_lut));
  // One row buffer for the 2-D pooling window.
  const double buffer_bits = static_cast<double>(channels) * act_bits * 32;
  r.bram = buffer_bits >= cost.bram_bits / 2
               ? static_cast<long>(std::ceil(buffer_bits / cost.bram_bits))
               : 0;
  return r;
}

Resources branch_resources(int channels, int dim, int stream_pe, int act_bits,
                           const HlsCostModel& cost) {
  Resources r;
  // Stream duplication is cheap in logic but buffers the duplicated feature
  // map: the dominant cost is the FIFO decoupling the exit head from the
  // backbone (the paper observes the overhead lands mainly in BRAM).
  r.lut = 80 + 2L * stream_pe * act_bits;
  r.ff = static_cast<long>(std::ceil(r.lut * cost.ff_per_lut));
  const double fifo_bits =
      static_cast<double>(dim) * dim * channels * act_bits / 4.0;
  r.bram = static_cast<long>(std::ceil(fifo_bits / cost.bram_bits));
  return r;
}

}  // namespace adapex
