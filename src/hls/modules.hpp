// HLS module models for the FINN-style dataflow accelerator.
//
// Each CNN layer maps to streaming hardware modules, mirroring the FINN
// library (substitution for Vivado HLS synthesis; see DESIGN.md):
//   - SWU  (Sliding Window Unit): im2col generator feeding a conv MVTU.
//   - MVTU (Matrix-Vector-Threshold Unit): PE x SIMD array executing a conv
//     or fc layer; BatchNorm and activation quantization are absorbed into
//     its threshold stage, exactly as FINN streamlines them.
//   - Pool: max-pool unit.
//   - Branch: AXI-stream duplicator inserted at an exit attachment point
//     (the paper's new HLS module); buffers the tapped feature map stream.
// Per-module cycle counts follow FINN's analytical performance estimation;
// resource counts (LUT/FF/BRAM/DSP) follow the folding-proportional cost
// structure of the published FINN-R models, with constants calibrated so
// the full CNV lands in the reported utilization ballpark.

#pragma once

#include <string>
#include <vector>

#include "common/error.hpp"

namespace adapex {

/// FPGA resource vector.
struct Resources {
  long lut = 0;
  long ff = 0;
  long bram = 0;  ///< BRAM18 units.
  long dsp = 0;

  Resources& operator+=(const Resources& other) {
    lut += other.lut;
    ff += other.ff;
    bram += other.bram;
    dsp += other.dsp;
    return *this;
  }
  friend Resources operator+(Resources a, const Resources& b) {
    a += b;
    return a;
  }
  Resources& operator-=(const Resources& other) {
    lut -= other.lut;
    ff -= other.ff;
    bram -= other.bram;
    dsp -= other.dsp;
    return *this;
  }
  friend Resources operator-(Resources a, const Resources& b) {
    a -= b;
    return a;
  }
  /// True when every axis of `*this` is within `cap`.
  bool fits_within(const Resources& cap) const {
    return lut <= cap.lut && ff <= cap.ff && bram <= cap.bram && dsp <= cap.dsp;
  }
};

/// Kinds of streaming modules.
enum class HlsModuleKind { kSwu, kMvtu, kPool, kBranch };

const char* to_string(HlsModuleKind kind);

/// One instantiated streaming module with resolved cost.
struct HlsModule {
  HlsModuleKind kind = HlsModuleKind::kMvtu;
  std::string name;
  /// Expected cycles this module spends per fully-processed image (the
  /// module's initiation interval contribution).
  long cycles = 0;
  Resources resources;

  // --- early-exit reach bookkeeping (filled by the compiler) ---
  /// For backbone modules: number of exit branch points strictly upstream.
  /// An input reaches this module only if it did not take any of them.
  int exit_level = 0;
  /// For exit-head modules: which exit, else -1.
  int exit_head = -1;

  // --- stream geometry (filled by the compiler; linted by analysis R3) ---
  /// Elements per cycle the module consumes on its input stream (SIMD for
  /// an MVTU, the upstream parallelism for SWU/Pool/Branch).
  int in_stream_elems = 1;
  /// Elements per cycle the module produces (PE for an MVTU).
  int out_stream_elems = 1;
};

/// Geometry of a conv/fc layer as needed for module costing.
struct MvtuGeometry {
  bool is_conv = false;
  int in_channels = 0;   ///< conv channels / fc in-features
  int out_channels = 0;  ///< conv filters / fc out-features
  int kernel = 1;
  int out_dim = 1;       ///< output feature-map side (1 for fc)
  int in_dim = 1;
  int weight_bits = 2;
  int act_bits = 2;
};

/// Cycles an MVTU needs per image: out_pixels * (k^2*ch_in/SIMD) *
/// (ch_out/PE). PE/SIMD must divide the respective dimensions.
long mvtu_cycles(const MvtuGeometry& g, int pe, int simd);

/// Cycles of the SWU feeding a conv MVTU (one window element per SIMD pack).
long swu_cycles(const MvtuGeometry& g, int simd);

/// Cycles of a max-pool unit consuming `in_dim^2 * channels` elements at a
/// stream parallelism of `stream_pe` channels per cycle.
long pool_cycles(int channels, int in_dim, int stream_pe);

/// Cycles of a branch duplicator forwarding a `dim^2 * channels` feature map
/// at `stream_pe` channels per cycle.
long branch_cycles(int channels, int dim, int stream_pe);

/// Resource model constants (tunable for ablation).
struct HlsCostModel {
  /// LUTs per PE*SIMD MAC lane as a function of weight/activation bits.
  double lut_per_mac_base = 2.0;
  double lut_per_mac_per_bitbit = 1.1;  ///< multiplied by wbits*abits
  /// Flip-flops per LUT of datapath.
  double ff_per_lut = 1.1;
  /// Control/threshold overhead LUTs per PE.
  double lut_per_pe = 40.0;
  /// BRAM18 capacity in bits.
  double bram_bits = 18432.0;
  /// FIFO depth (elements) inserted at each module input.
  int fifo_depth = 64;
};

Resources mvtu_resources(const MvtuGeometry& g, int pe, int simd,
                         const HlsCostModel& cost);
Resources swu_resources(const MvtuGeometry& g, int simd,
                        const HlsCostModel& cost);
Resources pool_resources(int channels, int stream_pe, int act_bits,
                         const HlsCostModel& cost);
Resources branch_resources(int channels, int dim, int stream_pe, int act_bits,
                           const HlsCostModel& cost);

}  // namespace adapex
