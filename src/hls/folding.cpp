#include "hls/folding.hpp"

#include <algorithm>
#include <cmath>
#include <set>

#include "finn/accelerator.hpp"
#include "nn/layers.hpp"

namespace adapex {

int largest_divisor_at_most(int n, int cap) {
  ADAPEX_CHECK(n >= 1 && cap >= 1, "divisor search needs positive arguments");
  for (int d = std::min(n, cap); d >= 1; --d) {
    if (n % d == 0) return d;
  }
  return 1;
}

Json FoldingConfig::to_json(const std::vector<LayerSite>& sites) const {
  ADAPEX_CHECK(folds.size() == sites.size(),
               "folding arity does not match layer count");
  Json j = Json::object();
  for (std::size_t i = 0; i < sites.size(); ++i) {
    if (j.contains(sites[i].name)) {
      throw ConfigError("duplicate layer site name '" + sites[i].name +
                        "': serializing would silently overwrite the earlier "
                        "site's fold");
    }
    Json entry = Json::object();
    entry["PE"] = folds[i].pe;
    entry["SIMD"] = folds[i].simd;
    j[sites[i].name] = std::move(entry);
  }
  return j;
}

FoldingConfig FoldingConfig::from_json(const Json& j,
                                       const std::vector<LayerSite>& sites) {
  FoldingConfig cfg;
  cfg.folds.reserve(sites.size());
  std::set<std::string> seen;
  for (const auto& site : sites) {
    if (!seen.insert(site.name).second) {
      throw ConfigError("duplicate layer site name '" + site.name +
                        "': the JSON entry would alias two distinct layers");
    }
    ADAPEX_CHECK(j.contains(site.name),
                 "folding config missing layer: " + site.name);
    const Json& entry = j.at(site.name);
    LayerFold fold;
    fold.pe = static_cast<int>(entry.at("PE").as_int());
    fold.simd = static_cast<int>(entry.at("SIMD").as_int());
    cfg.folds.push_back(fold);
  }
  validate_folding(sites, cfg);
  return cfg;
}

int site_matrix_width(const LayerSite& site) {
  return site.is_conv ? site.kernel * site.kernel * site.in_channels
                      : site.in_channels;
}

long site_fold_cycles(const LayerSite& site, const LayerFold& fold) {
  // Geometry-only view: mvtu_cycles ignores the bit widths, so this agrees
  // bitwise with the compiled module's cycles without needing the layer
  // pointers site_mvtu_geometry requires.
  MvtuGeometry g;
  g.is_conv = site.is_conv;
  g.in_channels = site.in_channels;
  g.out_channels = site.out_channels;
  g.kernel = site.kernel;
  g.in_dim = site.in_dim;
  g.out_dim = site.out_dim;
  return mvtu_cycles(g, fold.pe, fold.simd);
}

// Packed-vs-float audit (ISSUE 10): every cost this file reports —
// mvtu_cycles via site_fold_cycles above, resources via the geometry built
// here — consumes only layer geometry and the *declared* weight/act bit
// widths of the QAT layers. Those are identical whether a point was
// evaluated on the float reference or the packed popcount path, so reported
// ips/cycles/resource claims cannot disagree between eval paths. The one
// place the two paths *can* disagree is upstream of this file entirely:
// reported accuracy. The packed GEMM's integer sum is exact while the float
// GEMM accumulates with rounding, so a logit pair (argmax) or a
// confidence-vs-threshold comparison that lands within float epsilon of a
// tie can resolve differently. nn/eval.cpp pins that seam shut by deriving
// both paths' codes/confidences through the identical epilogue arithmetic
// (tensor/packed.hpp) and test_packed gates decision identity bitwise;
// GenerationReport.points[].eval_path records which path produced each
// point so any residual drift is attributable from the artifact alone.
MvtuGeometry site_mvtu_geometry(const LayerSite& site) {
  ADAPEX_CHECK(site.layer != nullptr && site.container != nullptr,
               "site geometry needs layer/container pointers: " + site.name);
  MvtuGeometry g;
  g.is_conv = site.is_conv;
  g.in_channels = site.in_channels;
  g.out_channels = site.out_channels;
  g.kernel = site.kernel;
  g.in_dim = site.in_dim;
  g.out_dim = site.out_dim;
  int wbits = 0;
  if (site.layer->kind() == LayerKind::kConv) {
    wbits = static_cast<const QuantConv2d*>(site.layer)->weight_bits();
  } else if (site.layer->kind() == LayerKind::kLinear) {
    wbits = static_cast<const QuantLinear*>(site.layer)->weight_bits();
  } else {
    throw ConfigError("site is not a conv/fc layer: " + site.name);
  }
  g.weight_bits = wbits > 0 ? wbits : 32;
  // Activation bits: the last ActQuant preceding the layer in its container
  // (the emit-time act_bits_default semantics of finn/accelerator.cpp).
  int act_bits = 2;
  for (int i = 0; i < site.layer_index; ++i) {
    Layer& l = site.container->layer(static_cast<std::size_t>(i));
    if (l.kind() == LayerKind::kActQuant) {
      const auto& act = static_cast<const ActQuant&>(l);
      if (act.bits() > 0) act_bits = act.bits();
    }
  }
  g.act_bits = act_bits;
  return g;
}

FoldingConfig default_folding(const std::vector<LayerSite>& sites, int pe_cap,
                              int simd_cap) {
  FoldingConfig cfg;
  cfg.folds.reserve(sites.size());
  for (const auto& site : sites) {
    LayerFold fold;
    fold.pe = largest_divisor_at_most(site.out_channels, pe_cap);
    // SIMD divides the im2col matrix width k^2 * ch_in for conv, not the
    // bare channel count: kernel-window unrolling is what lets a conv
    // layer reach simd_cap (and is the divisor validate_folding checks).
    fold.simd = largest_divisor_at_most(site_matrix_width(site), simd_cap);
    cfg.folds.push_back(fold);
  }
  return cfg;
}

FoldingConfig styled_folding(const std::vector<LayerSite>& sites,
                             const FoldingStyle& style) {
  ADAPEX_CHECK(!style.conv_caps_per_block.empty(),
               "folding style needs at least one block cap");
  FoldingConfig cfg;
  cfg.folds.reserve(sites.size());
  for (const auto& site : sites) {
    std::pair<int, int> caps;
    if (site.loc == SiteLoc::kBackbone) {
      if (site.is_conv) {
        const std::size_t block = std::min(
            static_cast<std::size_t>(site.group),
            style.conv_caps_per_block.size() - 1);
        caps = style.conv_caps_per_block[block];
      } else {
        caps = style.fc_caps;
      }
    } else {
      caps = site.is_conv ? style.exit_conv_caps : style.exit_fc_caps;
    }
    LayerFold fold;
    fold.pe = largest_divisor_at_most(site.out_channels, caps.first);
    fold.simd = largest_divisor_at_most(site_matrix_width(site), caps.second);
    cfg.folds.push_back(fold);
  }
  return cfg;
}

FoldingConfig balanced_folding(const std::vector<LayerSite>& sites,
                               long target_cycles, int pe_cap, int simd_cap) {
  ADAPEX_CHECK(target_cycles > 0, "target cycles must be positive");
  FoldingConfig cfg;
  cfg.folds.reserve(sites.size());
  for (const auto& site : sites) {
    // Enumerate divisor pairs within caps; pick the cheapest (pe * simd)
    // meeting the target, falling back to the fastest feasible fold.
    const int in_width = site_matrix_width(site);
    LayerFold best{largest_divisor_at_most(site.out_channels, pe_cap),
                   largest_divisor_at_most(in_width, simd_cap)};
    long best_cost = static_cast<long>(best.pe) * best.simd + 1;
    bool met = false;
    for (int pe = 1; pe <= std::min(site.out_channels, pe_cap); ++pe) {
      if (site.out_channels % pe != 0) continue;
      for (int simd = 1; simd <= std::min(in_width, simd_cap);
           ++simd) {
        if (in_width % simd != 0) continue;
        if (site_fold_cycles(site, LayerFold{pe, simd}) > target_cycles) {
          continue;
        }
        const long cost = static_cast<long>(pe) * simd;
        if (!met || cost < best_cost) {
          best = LayerFold{pe, simd};
          best_cost = cost;
          met = true;
        }
      }
    }
    cfg.folds.push_back(best);
  }
  return cfg;
}

void validate_folding(const std::vector<LayerSite>& sites,
                      const FoldingConfig& folding) {
  ADAPEX_CHECK(folding.folds.size() == sites.size(),
               "folding arity does not match layer count");
  for (std::size_t i = 0; i < sites.size(); ++i) {
    const auto& site = sites[i];
    const auto& fold = folding.folds[i];
    if (fold.pe < 1 || site.out_channels % fold.pe != 0) {
      throw ConfigError("PE=" + std::to_string(fold.pe) +
                        " does not divide out_channels=" +
                        std::to_string(site.out_channels) + " at " + site.name);
    }
    const int in_width = site_matrix_width(site);
    if (fold.simd < 1 || in_width % fold.simd != 0) {
      throw ConfigError("SIMD=" + std::to_string(fold.simd) +
                        " does not divide matrix width=" +
                        std::to_string(in_width) + " at " + site.name);
    }
  }
}

namespace {

/// MVTU plus (for conv) SWU resources of one site under one fold — the
/// fabric share the reach-aware optimizer reallocates.
Resources site_fold_resources(const MvtuGeometry& g, const LayerFold& fold,
                              const HlsCostModel& cost) {
  Resources r = mvtu_resources(g, fold.pe, fold.simd, cost);
  if (g.is_conv) r += swu_resources(g, fold.simd, cost);
  return r;
}

/// Gate level of a site: exit heads are gated by their exit index (they see
/// reach[e], the traffic surviving all earlier branch points); backbone
/// sites by the number of branch points strictly upstream — exits attach at
/// a block's *output*, so only exits after earlier blocks count.
int site_gate_level(const LayerSite& site,
                    const std::vector<int>& exit_after_block) {
  if (site.loc == SiteLoc::kExit) return site.group;
  int level = 0;
  for (int b : exit_after_block) {
    if (b < site.group) ++level;
  }
  return level;
}

/// One costed fold alternative of a site.
struct FoldCandidate {
  LayerFold fold;
  long cycles = 0;
  Resources res;
};

/// Conservative LUT slope of the pool/branch followers fed by a conv's
/// output stream: a pool costs 3 and a branch duplicator 2 LUTs per stream
/// lane and activation bit (hls/modules.cpp), so raising a conv's PE above
/// the baseline can grow downstream fabric by at most 5 * act_bits LUTs
/// per extra PE. Charging this on every conv site makes the site-level
/// aggregate an upper bound on the compiled delta (their BRAM is
/// PE-independent, and shrinking PE only shrinks the followers).
long follower_lut_penalty(const MvtuGeometry& g, int pe, int baseline_pe) {
  if (!g.is_conv || pe <= baseline_pe) return 0;
  return 5L * g.act_bits * (pe - baseline_pe);
}

}  // namespace

Resources folding_site_resources(const std::vector<LayerSite>& sites,
                                 const FoldingConfig& folding,
                                 const HlsCostModel& cost) {
  ADAPEX_CHECK(folding.folds.size() == sites.size(),
               "folding arity does not match layer count");
  Resources agg;
  for (std::size_t i = 0; i < sites.size(); ++i) {
    agg += site_fold_resources(site_mvtu_geometry(sites[i]), folding.folds[i],
                               cost);
  }
  return agg;
}

FoldingConfig reach_aware_folding(const std::vector<LayerSite>& sites,
                                  const std::vector<double>& exit_fractions,
                                  const Resources& budget,
                                  const ReachAwareOptions& options) {
  FoldingConfig base = options.baseline.folds.empty()
                           ? styled_folding(sites, options.style)
                           : options.baseline;
  validate_folding(sites, base);
  ADAPEX_CHECK(!exit_fractions.empty(), "empty exit-fraction regime");
  ADAPEX_CHECK(options.exit_after_block.size() + 1 == exit_fractions.size(),
               "exit_after_block arity must match the exit-fraction list");
  double sum = 0.0;
  for (double f : exit_fractions) {
    ADAPEX_CHECK(f >= -1e-9, "negative exit fraction");
    sum += f;
  }
  ADAPEX_CHECK(std::abs(sum - 1.0) < 1e-6, "exit fractions must sum to 1");

  // reach[L] = survival past branch L — the same partial-sum computation
  // gated_steady_ii uses, so the site-level objective below equals the
  // compiled accelerator's gated II bitwise (every SWU/pool/branch module
  // is dominated by its MVTU at the same gate level; see DESIGN.md).
  const std::vector<double> reach = reach_from_fractions(exit_fractions);
  const std::size_t n = sites.size();
  std::vector<double> site_reach(n, 1.0);
  bool all_full = true;
  for (std::size_t i = 0; i < n; ++i) {
    const int level = site_gate_level(sites[i], options.exit_after_block);
    ADAPEX_CHECK(level >= 0 && level < static_cast<int>(reach.size()),
                 "site gate level out of range: " + sites[i].name);
    site_reach[i] = reach[static_cast<std::size_t>(level)];
    if (site_reach[i] < 1.0) all_full = false;
  }
  // Zero-exit regime: nothing is gated, the baseline is already optimal
  // under its own budget — reproduce it byte-identically.
  if (all_full) return base;

  // Precompute geometry, per-site candidates (every divisor pair), and the
  // baseline costs.
  std::vector<MvtuGeometry> geom(n);
  std::vector<std::vector<FoldCandidate>> cands(n);
  std::vector<long> base_cycles(n);
  std::vector<Resources> base_res(n);
  Resources base_agg;
  for (std::size_t i = 0; i < n; ++i) {
    geom[i] = site_mvtu_geometry(sites[i]);
    const int mw = site_matrix_width(sites[i]);
    for (int pe = 1; pe <= sites[i].out_channels; ++pe) {
      if (sites[i].out_channels % pe != 0) continue;
      for (int simd = 1; simd <= mw; ++simd) {
        if (mw % simd != 0) continue;
        FoldCandidate c;
        c.fold = LayerFold{pe, simd};
        c.cycles = site_fold_cycles(sites[i], c.fold);
        c.res = site_fold_resources(geom[i], c.fold, options.cost);
        cands[i].push_back(c);
      }
    }
    base_cycles[i] = site_fold_cycles(sites[i], base.folds[i]);
    base_res[i] = site_fold_resources(geom[i], base.folds[i], options.cost);
    base_agg += base_res[i];
  }

  // Per-axis reallocation cap: never above the baseline's own aggregate
  // (weak domination on resource use) nor above what the device budget
  // leaves after the fixed fabric.
  const auto head = [](long b, long fixed) { return std::max(0L, b - fixed); };
  Resources cap;
  cap.lut = std::min(base_agg.lut, head(budget.lut, options.fixed_overhead.lut));
  cap.ff = std::min(base_agg.ff, head(budget.ff, options.fixed_overhead.ff));
  cap.bram =
      std::min(base_agg.bram, head(budget.bram, options.fixed_overhead.bram));
  cap.dsp = std::min(base_agg.dsp, head(budget.dsp, options.fixed_overhead.dsp));

  double t_base = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    t_base = std::max(t_base, static_cast<double>(base_cycles[i]) * site_reach[i]);
  }

  std::vector<LayerFold> folds = base.folds;
  std::vector<long> cycles = base_cycles;
  std::vector<Resources> res = base_res;

  // Deterministic candidate preference: cheapest first, then fastest.
  const auto cheaper = [](const FoldCandidate& a, const FoldCandidate& b) {
    if (a.res.lut != b.res.lut) return a.res.lut < b.res.lut;
    if (a.res.bram != b.res.bram) return a.res.bram < b.res.bram;
    if (a.res.dsp != b.res.dsp) return a.res.dsp < b.res.dsp;
    if (a.res.ff != b.res.ff) return a.res.ff < b.res.ff;
    if (a.cycles != b.cycles) return a.cycles < b.cycles;
    if (a.fold.pe != b.fold.pe) return a.fold.pe < b.fold.pe;
    return a.fold.simd < b.fold.simd;
  };

  // Phase 1 — shrink: every gated site moves to its cheapest fold whose
  // gated II still meets the baseline bottleneck, without growing any
  // resource axis beyond its own baseline share. The baseline fold always
  // qualifies, so the choice set is never empty.
  for (std::size_t i = 0; i < n; ++i) {
    if (site_reach[i] >= 1.0) continue;
    const FoldCandidate* best = nullptr;
    for (const FoldCandidate& c : cands[i]) {
      if (static_cast<double>(c.cycles) * site_reach[i] > t_base) continue;
      if (!c.res.fits_within(base_res[i])) continue;
      if (best == nullptr || cheaper(c, *best)) best = &c;
    }
    ADAPEX_ASSERT(best != nullptr);
    folds[i] = best->fold;
    cycles[i] = best->cycles;
    res[i] = best->res;
  }

  const auto aggregate = [&]() {
    Resources agg;
    for (std::size_t i = 0; i < n; ++i) {
      agg += res[i];
      const long pl = follower_lut_penalty(geom[i], folds[i].pe,
                                           base.folds[i].pe);
      agg.lut += pl;
      agg.ff += static_cast<long>(
          std::ceil(static_cast<double>(pl) * options.cost.ff_per_lut));
    }
    return agg;
  };
  const auto gated_ii = [&]() {
    double t = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      t = std::max(t, static_cast<double>(cycles[i]) * site_reach[i]);
    }
    return t;
  };

  // Phase 2 — budget repair: when the budget is tighter than the baseline
  // aggregate, fold sites further down, always taking the move that costs
  // the least gated throughput (best effort: a budget below the all-minimal
  // folding is left unsatisfied rather than thrown).
  Resources agg = aggregate();
  for (int round = 0; !agg.fits_within(cap) && round < options.max_rounds;
       ++round) {
    const double t_now = gated_ii();
    std::size_t best_i = n;
    const FoldCandidate* best_c = nullptr;
    double best_t = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      for (const FoldCandidate& c : cands[i]) {
        if (!c.res.fits_within(res[i])) continue;
        const bool relieves =
            (agg.lut > cap.lut && c.res.lut < res[i].lut) ||
            (agg.ff > cap.ff && c.res.ff < res[i].ff) ||
            (agg.bram > cap.bram && c.res.bram < res[i].bram) ||
            (agg.dsp > cap.dsp && c.res.dsp < res[i].dsp);
        if (!relieves) continue;
        const double t_if =
            std::max(t_now, static_cast<double>(c.cycles) * site_reach[i]);
        if (best_c == nullptr || t_if < best_t ||
            (t_if == best_t && cheaper(c, *best_c))) {
          best_i = i;
          best_c = &c;
          best_t = t_if;
        }
      }
    }
    if (best_c == nullptr) break;  // every site already minimal
    folds[best_i] = best_c->fold;
    cycles[best_i] = best_c->cycles;
    res[best_i] = best_c->res;
    agg = aggregate();
  }

  // Phase 3 — reinvest: while every bottleneck site has an affordable
  // strictly-faster fold, take the cheapest such step for all of them
  // jointly. With gating, the bottleneck set quickly becomes the
  // full-traffic front end — this is where the fabric freed in phase 1
  // lands. Stops when an upgrade would not fit the cap (greedy first-fit).
  for (int round = 0; round < options.max_rounds; ++round) {
    const double t = gated_ii();
    std::vector<std::size_t> bottleneck;
    for (std::size_t i = 0; i < n; ++i) {
      if (static_cast<double>(cycles[i]) * site_reach[i] == t) {
        bottleneck.push_back(i);
      }
    }
    ADAPEX_ASSERT(!bottleneck.empty());
    std::vector<const FoldCandidate*> upgrade(bottleneck.size(), nullptr);
    bool feasible = true;
    for (std::size_t k = 0; k < bottleneck.size(); ++k) {
      const std::size_t i = bottleneck[k];
      for (const FoldCandidate& c : cands[i]) {
        if (c.cycles >= cycles[i]) continue;
        if (upgrade[k] == nullptr || cheaper(c, *upgrade[k])) upgrade[k] = &c;
      }
      if (upgrade[k] == nullptr) {
        feasible = false;  // a bottleneck site is already at its fastest fold
        break;
      }
    }
    if (!feasible) break;
    // Apply jointly, then check affordability; revert on failure (paying
    // for a partial upgrade would not move the bottleneck).
    const std::vector<LayerFold> saved_folds = folds;
    const std::vector<long> saved_cycles = cycles;
    const std::vector<Resources> saved_res = res;
    for (std::size_t k = 0; k < bottleneck.size(); ++k) {
      const std::size_t i = bottleneck[k];
      folds[i] = upgrade[k]->fold;
      cycles[i] = upgrade[k]->cycles;
      res[i] = upgrade[k]->res;
    }
    if (!aggregate().fits_within(cap)) {
      folds = saved_folds;
      cycles = saved_cycles;
      res = saved_res;
      break;
    }
  }

  FoldingConfig result;
  result.folds = std::move(folds);
  validate_folding(sites, result);
  return result;
}

}  // namespace adapex
