#include "hls/folding.hpp"

#include <algorithm>

namespace adapex {

int largest_divisor_at_most(int n, int cap) {
  ADAPEX_CHECK(n >= 1 && cap >= 1, "divisor search needs positive arguments");
  for (int d = std::min(n, cap); d >= 1; --d) {
    if (n % d == 0) return d;
  }
  return 1;
}

Json FoldingConfig::to_json(const std::vector<LayerSite>& sites) const {
  ADAPEX_CHECK(folds.size() == sites.size(),
               "folding arity does not match layer count");
  Json j = Json::object();
  for (std::size_t i = 0; i < sites.size(); ++i) {
    Json entry = Json::object();
    entry["PE"] = folds[i].pe;
    entry["SIMD"] = folds[i].simd;
    j[sites[i].name] = std::move(entry);
  }
  return j;
}

FoldingConfig FoldingConfig::from_json(const Json& j,
                                       const std::vector<LayerSite>& sites) {
  FoldingConfig cfg;
  cfg.folds.reserve(sites.size());
  for (const auto& site : sites) {
    ADAPEX_CHECK(j.contains(site.name),
                 "folding config missing layer: " + site.name);
    const Json& entry = j.at(site.name);
    LayerFold fold;
    fold.pe = static_cast<int>(entry.at("PE").as_int());
    fold.simd = static_cast<int>(entry.at("SIMD").as_int());
    cfg.folds.push_back(fold);
  }
  validate_folding(sites, cfg);
  return cfg;
}

FoldingConfig default_folding(const std::vector<LayerSite>& sites, int pe_cap,
                              int simd_cap) {
  FoldingConfig cfg;
  cfg.folds.reserve(sites.size());
  for (const auto& site : sites) {
    LayerFold fold;
    fold.pe = largest_divisor_at_most(site.out_channels, pe_cap);
    fold.simd = largest_divisor_at_most(site.in_channels, simd_cap);
    cfg.folds.push_back(fold);
  }
  return cfg;
}

FoldingConfig styled_folding(const std::vector<LayerSite>& sites,
                             const FoldingStyle& style) {
  ADAPEX_CHECK(!style.conv_caps_per_block.empty(),
               "folding style needs at least one block cap");
  FoldingConfig cfg;
  cfg.folds.reserve(sites.size());
  for (const auto& site : sites) {
    std::pair<int, int> caps;
    if (site.loc == SiteLoc::kBackbone) {
      if (site.is_conv) {
        const std::size_t block = std::min(
            static_cast<std::size_t>(site.group),
            style.conv_caps_per_block.size() - 1);
        caps = style.conv_caps_per_block[block];
      } else {
        caps = style.fc_caps;
      }
    } else {
      caps = site.is_conv ? style.exit_conv_caps : style.exit_fc_caps;
    }
    LayerFold fold;
    fold.pe = largest_divisor_at_most(site.out_channels, caps.first);
    fold.simd = largest_divisor_at_most(
        site.is_conv ? site.kernel * site.kernel * site.in_channels
                     : site.in_channels,
        caps.second);
    cfg.folds.push_back(fold);
  }
  return cfg;
}

namespace {

long site_cycles(const LayerSite& site, int pe, int simd) {
  const long mw =
      static_cast<long>(site.kernel) * site.kernel * site.in_channels;
  const long pixels = static_cast<long>(site.out_dim) * site.out_dim;
  return pixels * (mw / simd) * (site.out_channels / pe);
}

}  // namespace

FoldingConfig balanced_folding(const std::vector<LayerSite>& sites,
                               long target_cycles, int pe_cap, int simd_cap) {
  ADAPEX_CHECK(target_cycles > 0, "target cycles must be positive");
  FoldingConfig cfg;
  cfg.folds.reserve(sites.size());
  for (const auto& site : sites) {
    // Enumerate divisor pairs within caps; pick the cheapest (pe * simd)
    // meeting the target, falling back to the fastest feasible fold.
    const int in_width =
        site.is_conv ? site.kernel * site.kernel * site.in_channels
                     : site.in_channels;
    LayerFold best{largest_divisor_at_most(site.out_channels, pe_cap),
                   largest_divisor_at_most(in_width, simd_cap)};
    long best_cost = static_cast<long>(best.pe) * best.simd + 1;
    bool met = false;
    for (int pe = 1; pe <= std::min(site.out_channels, pe_cap); ++pe) {
      if (site.out_channels % pe != 0) continue;
      for (int simd = 1; simd <= std::min(in_width, simd_cap);
           ++simd) {
        if (in_width % simd != 0) continue;
        if (site_cycles(site, pe, simd) > target_cycles) continue;
        const long cost = static_cast<long>(pe) * simd;
        if (!met || cost < best_cost) {
          best = LayerFold{pe, simd};
          best_cost = cost;
          met = true;
        }
      }
    }
    cfg.folds.push_back(best);
  }
  return cfg;
}

void validate_folding(const std::vector<LayerSite>& sites,
                      const FoldingConfig& folding) {
  ADAPEX_CHECK(folding.folds.size() == sites.size(),
               "folding arity does not match layer count");
  for (std::size_t i = 0; i < sites.size(); ++i) {
    const auto& site = sites[i];
    const auto& fold = folding.folds[i];
    if (fold.pe < 1 || site.out_channels % fold.pe != 0) {
      throw ConfigError("PE=" + std::to_string(fold.pe) +
                        " does not divide out_channels=" +
                        std::to_string(site.out_channels) + " at " + site.name);
    }
    const int in_width =
        site.is_conv ? site.kernel * site.kernel * site.in_channels
                     : site.in_channels;
    if (fold.simd < 1 || in_width % fold.simd != 0) {
      throw ConfigError("SIMD=" + std::to_string(fold.simd) +
                        " does not divide matrix width=" +
                        std::to_string(in_width) + " at " + site.name);
    }
  }
}

}  // namespace adapex
