// FINN-style folding configuration.
//
// FINN exposes accelerator parallelism through a JSON configuration that
// assigns each MVTU (the matrix-vector-threshold unit executing one conv or
// fc layer) a number of processing elements (PE) and SIMD lanes:
//   - PE must divide the layer's output channels (conv filters / fc
//     outputs); each PE computes out_channels/PE rows.
//   - SIMD must divide the layer's matrix width — k^2 * ch_in for conv
//     (FINN's MVAU unrolls across the whole im2col window), input features
//     for fc; each lane consumes one input element per cycle.
// These are exactly the two divisibility properties the paper's
// dataflow-aware pruning preserves (section IV-A2).
//
// Folds are indexed in the canonical walk order (see model/walk.hpp).

#pragma once

#include <vector>

#include "common/json.hpp"
#include "hls/modules.hpp"
#include "model/walk.hpp"

namespace adapex {

/// Parallelism of one MVTU.
struct LayerFold {
  int pe = 1;
  int simd = 1;

  friend bool operator==(const LayerFold& a, const LayerFold& b) {
    return a.pe == b.pe && a.simd == b.simd;
  }
  friend bool operator!=(const LayerFold& a, const LayerFold& b) {
    return !(a == b);
  }
};

/// Per-layer folding for a whole accelerator.
struct FoldingConfig {
  std::vector<LayerFold> folds;  ///< One per compute layer, walk order.

  /// Keyed by site name; throws ConfigError when two sites share a name
  /// (a silent overwrite would alias their folds on the round trip).
  Json to_json(const std::vector<LayerSite>& sites) const;
  static FoldingConfig from_json(const Json& j,
                                 const std::vector<LayerSite>& sites);
};

/// The matrix width SIMD must divide: k^2 * ch_in for conv (FINN's MVAU
/// unrolls across the whole im2col window), input features for fc.
int site_matrix_width(const LayerSite& site);

/// Cycles the site's MVTU spends per full-traffic image under `fold` — the
/// single cycles-per-fold model shared by balanced_folding,
/// reach_aware_folding, and the accelerator compiler
/// (finn/accelerator.cpp), so an optimizer objective cannot drift from
/// estimate_performance. Geometry only; works on synthetic sites without
/// layer pointers.
long site_fold_cycles(const LayerSite& site, const LayerFold& fold);

/// Resolves the full MVTU geometry of a walk site exactly as the
/// accelerator compiler does: weight bits from the layer (unquantized ->
/// 32), activation bits from the nearest preceding ActQuant in the same
/// container (default 2). Requires the site's layer/container pointers.
MvtuGeometry site_mvtu_geometry(const LayerSite& site);

/// Aggregate MVTU (+SWU for conv) resources of `folding` over the sites —
/// the fabric share a folding optimizer reallocates. Pool/branch/misc
/// fabric is the caller's fixed overhead (Accelerator::total minus this).
Resources folding_site_resources(const std::vector<LayerSite>& sites,
                                 const FoldingConfig& folding,
                                 const HlsCostModel& cost = HlsCostModel{});

/// Largest divisor of `n` that is <= `cap` (>= 1).
int largest_divisor_at_most(int n, int cap);

/// Generates a folding config for the model: each layer gets the largest
/// PE <= pe_cap dividing its outputs and the largest SIMD <= simd_cap
/// dividing its inputs. Caps model the resource budget a user would spend;
/// FINN's full-scale CNV configs use caps of 16-64, the reduced-scale
/// experiments here default to 4.
FoldingConfig default_folding(const std::vector<LayerSite>& sites,
                              int pe_cap = 4, int simd_cap = 4);

/// Validates PE/SIMD divisibility for every layer; throws ConfigError with
/// the offending layer's name otherwise.
void validate_folding(const std::vector<LayerSite>& sites,
                      const FoldingConfig& folding);

/// Per-depth folding caps mirroring FINN's shipped CNV configuration, which
/// spends generous parallelism on the early full-resolution conv layers and
/// folds the deep, weight-heavy layers tightly (their weight memory
/// bandwidth is the budget limit). The net effect — reproduced here — is
/// that the pipeline bottleneck sits in the deep backbone, *after* the exit
/// branch points, which is what lets a lower confidence threshold raise
/// effective throughput in the paper's experiments.
struct FoldingStyle {
  /// (pe_cap, simd_cap) per backbone block for conv layers. SIMD caps apply
  /// to the matrix width k^2 * ch_in, so early layers can unroll across the
  /// kernel window while keeping PE (and thus pruning granularity) modest.
  std::vector<std::pair<int, int>> conv_caps_per_block = {
      {4, 36}, {4, 12}, {4, 12}};
  /// Caps for backbone fully-connected layers.
  std::pair<int, int> fc_caps = {2, 8};
  /// Caps for exit-head conv layers.
  std::pair<int, int> exit_conv_caps = {4, 12};
  /// Caps for exit-head fully-connected layers.
  std::pair<int, int> exit_fc_caps = {2, 8};
};

/// Generates a folding config following the given per-depth style.
FoldingConfig styled_folding(const std::vector<LayerSite>& sites,
                             const FoldingStyle& style = FoldingStyle{});

/// Balanced folding: picks, per layer, the cheapest (pe * simd) divisor
/// pair whose cycle count meets `target_cycles`, within the caps; layers
/// that cannot meet the target get their fastest feasible fold. Mirrors
/// FINN's target-fps-driven SetFolding transformation.
FoldingConfig balanced_folding(const std::vector<LayerSite>& sites,
                               long target_cycles, int pe_cap, int simd_cap);

/// Knobs for reach_aware_folding.
struct ReachAwareOptions {
  /// Baseline folds the optimizer starts from and must weakly dominate
  /// (same walk order as the sites). Empty folds: styled_folding(sites,
  /// style). Callers whose model was pruned under a pre-prune styled
  /// config pass that config here so the baseline matches the compiled
  /// styled accelerator exactly.
  FoldingConfig baseline;
  FoldingStyle style;
  /// ExitSpec::after_block per exit, ascending — locates the branch points
  /// so every site's gate level (and thus its reach) can be derived. One
  /// entry per exit; exit_fractions has one more entry (the final output).
  std::vector<int> exit_after_block;
  /// Resource model pricing the folds (must match the accelerator's).
  HlsCostModel cost;
  /// Fabric outside the MVTU/SWU sites (pool/branch units, mitigation
  /// logic, ...) charged against the budget but not reallocated. Compute
  /// as compiled_total - folding_site_resources(sites, baseline, cost).
  Resources fixed_overhead;
  /// Safety cap on greedy reallocation rounds.
  int max_rounds = 4096;
};

/// Reach-aware heterogeneous folding (ATHEENA-style, see DESIGN.md
/// "Reach-aware folding"): under stream gating a post-branch module only
/// sees the traffic fraction reach_m that survives every upstream exit, so
/// its *gated* initiation interval is cycles_m * reach_m. Given an
/// exit-fraction operating regime, this optimizer (1) shrinks PE/SIMD on
/// gated sites to the cheapest fold whose gated II still meets the
/// baseline bottleneck, (2) folds further down if the budget is tighter
/// than the baseline aggregate, then (3) greedily reinvests the freed
/// LUT/FF/BRAM/DSP into the bottleneck sites (the full-traffic front end)
/// while the aggregate stays within both the baseline's resource use and
/// `budget - fixed_overhead` per axis. The result therefore always weakly
/// dominates the baseline: gated throughput is never lower, resource use
/// never higher. A zero-exit regime (all reach == 1) returns the baseline
/// byte-identically. Deterministic: no randomness, stable tie-breaking.
FoldingConfig reach_aware_folding(const std::vector<LayerSite>& sites,
                                  const std::vector<double>& exit_fractions,
                                  const Resources& budget,
                                  const ReachAwareOptions& options = {});

}  // namespace adapex
