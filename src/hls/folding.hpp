// FINN-style folding configuration.
//
// FINN exposes accelerator parallelism through a JSON configuration that
// assigns each MVTU (the matrix-vector-threshold unit executing one conv or
// fc layer) a number of processing elements (PE) and SIMD lanes:
//   - PE must divide the layer's output channels (conv filters / fc
//     outputs); each PE computes out_channels/PE rows.
//   - SIMD must divide the layer's matrix width — k^2 * ch_in for conv
//     (FINN's MVAU unrolls across the whole im2col window), input features
//     for fc; each lane consumes one input element per cycle.
// These are exactly the two divisibility properties the paper's
// dataflow-aware pruning preserves (section IV-A2).
//
// Folds are indexed in the canonical walk order (see model/walk.hpp).

#pragma once

#include <vector>

#include "common/json.hpp"
#include "model/walk.hpp"

namespace adapex {

/// Parallelism of one MVTU.
struct LayerFold {
  int pe = 1;
  int simd = 1;
};

/// Per-layer folding for a whole accelerator.
struct FoldingConfig {
  std::vector<LayerFold> folds;  ///< One per compute layer, walk order.

  Json to_json(const std::vector<LayerSite>& sites) const;
  static FoldingConfig from_json(const Json& j,
                                 const std::vector<LayerSite>& sites);
};

/// Largest divisor of `n` that is <= `cap` (>= 1).
int largest_divisor_at_most(int n, int cap);

/// Generates a folding config for the model: each layer gets the largest
/// PE <= pe_cap dividing its outputs and the largest SIMD <= simd_cap
/// dividing its inputs. Caps model the resource budget a user would spend;
/// FINN's full-scale CNV configs use caps of 16-64, the reduced-scale
/// experiments here default to 4.
FoldingConfig default_folding(const std::vector<LayerSite>& sites,
                              int pe_cap = 4, int simd_cap = 4);

/// Validates PE/SIMD divisibility for every layer; throws ConfigError with
/// the offending layer's name otherwise.
void validate_folding(const std::vector<LayerSite>& sites,
                      const FoldingConfig& folding);

/// Per-depth folding caps mirroring FINN's shipped CNV configuration, which
/// spends generous parallelism on the early full-resolution conv layers and
/// folds the deep, weight-heavy layers tightly (their weight memory
/// bandwidth is the budget limit). The net effect — reproduced here — is
/// that the pipeline bottleneck sits in the deep backbone, *after* the exit
/// branch points, which is what lets a lower confidence threshold raise
/// effective throughput in the paper's experiments.
struct FoldingStyle {
  /// (pe_cap, simd_cap) per backbone block for conv layers. SIMD caps apply
  /// to the matrix width k^2 * ch_in, so early layers can unroll across the
  /// kernel window while keeping PE (and thus pruning granularity) modest.
  std::vector<std::pair<int, int>> conv_caps_per_block = {
      {4, 36}, {4, 12}, {4, 12}};
  /// Caps for backbone fully-connected layers.
  std::pair<int, int> fc_caps = {2, 8};
  /// Caps for exit-head conv layers.
  std::pair<int, int> exit_conv_caps = {4, 12};
  /// Caps for exit-head fully-connected layers.
  std::pair<int, int> exit_fc_caps = {2, 8};
};

/// Generates a folding config following the given per-depth style.
FoldingConfig styled_folding(const std::vector<LayerSite>& sites,
                             const FoldingStyle& style = FoldingStyle{});

/// Balanced folding: picks, per layer, the cheapest (pe * simd) divisor
/// pair whose cycle count meets `target_cycles`, within the caps; layers
/// that cannot meet the target get their fastest feasible fold. Mirrors
/// FINN's target-fps-driven SetFolding transformation.
FoldingConfig balanced_folding(const std::vector<LayerSite>& sites,
                               long target_cycles, int pe_cap, int simd_cap);

}  // namespace adapex
