#include "common/table.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <sstream>

#include "common/error.hpp"

namespace adapex {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  ADAPEX_CHECK(!header_.empty(), "table header must not be empty");
}

void TextTable::add_row(std::vector<std::string> row) {
  ADAPEX_CHECK(row.size() == header_.size(),
               "row arity does not match header");
  rows_.push_back(std::move(row));
}

std::string TextTable::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string TextTable::str() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "| " : " | ");
      os << row[c];
      os << std::string(width[c] - row[c].size(), ' ');
    }
    os << " |\n";
  };
  emit_row(header_);
  os << '|';
  for (std::size_t c = 0; c < header_.size(); ++c) {
    os << std::string(width[c] + 2, '-') << '|';
  }
  os << '\n';
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

std::string TextTable::csv() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << ',';
      os << row[c];
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

void TextTable::print(std::ostream& os) const { os << str(); }

}  // namespace adapex
