// Artifact integrity primitives: content checksums, atomic file publishes,
// corruption quarantine, and sealed (checksummed) JSON documents.
//
// Library generation is this repo's long-running offline job; its outputs
// (the cached Library artifact and the per-design-point checkpoint journal,
// library/journal.hpp) must survive crashes, concurrent writers, and silent
// on-disk corruption. Three guarantees live here:
//
//   1. atomic_write_file(): a reader never observes a torn file. The
//      payload is written to a pid-salted temp name in the target
//      directory and rename()d into place, so concurrent writers of the
//      same path each publish a complete document and the last one wins.
//   2. Sealed documents: seal_document() wraps a JSON payload in an
//      envelope carrying a content checksum over the payload's canonical
//      serialization; open_document() recomputes and compares it, so a
//      bit-flipped-but-still-parseable artifact (the offline analog of an
//      SEU, see finn/mitigation.hpp) is *detected* instead of silently
//      served. The canonical form is payload.dump(1); the JSON writer
//      prints doubles with %.17g, so dump -> parse -> dump is idempotent
//      and the checksum is stable across a round trip.
//   3. quarantine_file(): corrupt artifacts are renamed to `<path>.corrupt`
//      (not deleted), preserving the evidence for postmortems while
//      clearing the path for regeneration.
//
// Checksum modes: "fnv1a64" (default; the same hash the artifact-cache key
// uses) and "crc32" (IEEE 802.3 polynomial). The mode is recorded in the
// checksum tag ("fnv1a64:<16 hex>" / "crc32:<8 hex>"), so readers verify
// with whatever mode the writer used.

#pragma once

#include <cstdint>
#include <string>

#include "common/error.hpp"

namespace adapex {

class Json;

/// Thrown when a stored artifact's content checksum does not match its
/// payload, or a sealed envelope is structurally broken. Derives from
/// ParseError so existing corrupt-artifact recovery paths (which catch
/// parse failures) also recover from integrity failures.
class IntegrityError : public ParseError {
 public:
  explicit IntegrityError(const std::string& what) : ParseError(what) {}
};

/// FNV-1a 64-bit over a byte string (also used by the library cache key).
std::uint64_t fnv1a64(const std::string& bytes);

/// CRC-32 (IEEE 802.3, reflected 0xEDB88320) over a byte string.
std::uint32_t crc32(const std::string& bytes);

/// True for the supported checksum modes: "fnv1a64" | "crc32".
bool checksum_mode_valid(const std::string& mode);

/// Checksum tag "<mode>:<hex>" of `bytes` under `mode`. Throws ConfigError
/// on an unknown mode (lint rule RG4 rejects it earlier on the spec path).
std::string content_checksum(const std::string& bytes, const std::string& mode);

/// Verifies `bytes` against a stored "<mode>:<hex>" tag; the mode is taken
/// from the tag itself. Returns false on mismatch or a malformed tag.
bool checksum_matches(const std::string& bytes, const std::string& tag);

/// Publishes `contents` at `path` atomically: writes `<path>.<pid>.tmp` in
/// the same directory, then rename()s it into place. Concurrent writers of
/// one path never interleave within a temp file, and readers observe either
/// the previous complete document or the new one. Throws adapex::Error on
/// I/O failure (the temp file is removed best-effort).
void atomic_write_file(const std::string& path, const std::string& contents);

/// Moves a corrupt artifact aside to `<path>.corrupt` (replacing any
/// earlier quarantined copy) and returns the quarantine path. The original
/// path is left clear for regeneration. Throws adapex::Error when the
/// rename fails for a reason other than the file already being gone.
std::string quarantine_file(const std::string& path);

/// Wraps a JSON payload in a sealed envelope:
///   {"format": "adapex-sealed-v1", "kind": <kind>,
///    "checksum": "<mode>:<hex over payload.dump(1)>", "payload": ...}
/// and returns the envelope's serialization (ready for atomic_write_file).
std::string seal_document(const std::string& kind, const Json& payload,
                          const std::string& checksum_mode = "fnv1a64");

/// True when `doc` looks like a sealed envelope (format + payload fields).
bool is_sealed_document(const Json& doc);

/// Verifies a sealed envelope: format, expected `kind`, and the content
/// checksum over the payload's canonical re-serialization. Returns the
/// payload. Throws IntegrityError on any violation.
Json open_document(const Json& doc, const std::string& kind);

/// Parses `text` and opens it as a sealed document of `kind`.
Json open_document_text(const std::string& text, const std::string& kind);

}  // namespace adapex
