#include "common/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace adapex {

Json& JsonObject::operator[](const std::string& key) {
  for (auto& [k, v] : items_) {
    if (k == key) return *v;
  }
  items_.emplace_back(key, std::make_shared<Json>());
  return *items_.back().second;
}

const Json& JsonObject::at(const std::string& key) const {
  for (const auto& [k, v] : items_) {
    if (k == key) return *v;
  }
  throw ParseError("JSON object has no key '" + key + "'");
}

bool JsonObject::contains(const std::string& key) const {
  for (const auto& [k, v] : items_) {
    if (k == key) return true;
  }
  return false;
}

bool Json::as_bool() const {
  ADAPEX_CHECK(is_bool(), "JSON value is not a bool");
  return std::get<bool>(value_);
}

double Json::as_number() const {
  ADAPEX_CHECK(is_number(), "JSON value is not a number");
  return std::get<double>(value_);
}

std::int64_t Json::as_int() const {
  const double d = as_number();
  ADAPEX_CHECK(std::abs(d - std::llround(d)) < 1e-9,
               "JSON number is not integral");
  return std::llround(d);
}

const std::string& Json::as_string() const {
  ADAPEX_CHECK(is_string(), "JSON value is not a string");
  return std::get<std::string>(value_);
}

const Json::Array& Json::as_array() const {
  ADAPEX_CHECK(is_array(), "JSON value is not an array");
  return std::get<Array>(value_);
}

Json::Array& Json::as_array() {
  ADAPEX_CHECK(is_array(), "JSON value is not an array");
  return std::get<Array>(value_);
}

const JsonObject& Json::as_object() const {
  ADAPEX_CHECK(is_object(), "JSON value is not an object");
  return std::get<JsonObject>(value_);
}

JsonObject& Json::as_object() {
  ADAPEX_CHECK(is_object(), "JSON value is not an object");
  return std::get<JsonObject>(value_);
}

Json& Json::operator[](const std::string& key) {
  if (is_null()) value_ = JsonObject{};
  return as_object()[key];
}

const Json& Json::at(const std::string& key) const {
  return as_object().at(key);
}

bool Json::contains(const std::string& key) const {
  return is_object() && as_object().contains(key);
}

void Json::push_back(Json v) {
  if (is_null()) value_ = Array{};
  as_array().push_back(std::move(v));
}

namespace {

void append_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void append_number(std::string& out, double d) {
  if (d == std::floor(d) && std::abs(d) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(d));
    out += buf;
  } else {
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", d);
    out += buf;
  }
}

void append_newline_indent(std::string& out, int indent, int depth) {
  if (indent < 0) return;
  out += '\n';
  out.append(static_cast<std::size_t>(indent) * depth, ' ');
}

}  // namespace

void Json::dump_to(std::string& out, int indent, int depth) const {
  if (is_null()) {
    out += "null";
  } else if (is_bool()) {
    out += std::get<bool>(value_) ? "true" : "false";
  } else if (is_number()) {
    append_number(out, std::get<double>(value_));
  } else if (is_string()) {
    append_escaped(out, std::get<std::string>(value_));
  } else if (is_array()) {
    const auto& arr = std::get<Array>(value_);
    out += '[';
    bool first = true;
    for (const auto& item : arr) {
      if (!first) out += ',';
      first = false;
      append_newline_indent(out, indent, depth + 1);
      item.dump_to(out, indent, depth + 1);
    }
    if (!arr.empty()) append_newline_indent(out, indent, depth);
    out += ']';
  } else {
    const auto& obj = std::get<JsonObject>(value_);
    out += '{';
    bool first = true;
    for (const auto& [k, v] : obj) {
      if (!first) out += ',';
      first = false;
      append_newline_indent(out, indent, depth + 1);
      append_escaped(out, k);
      out += indent < 0 ? ":" : ": ";
      v->dump_to(out, indent, depth + 1);
    }
    if (obj.size() > 0) append_newline_indent(out, indent, depth);
    out += '}';
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Json parse() {
    Json v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after JSON document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& msg) const {
    throw ParseError("JSON parse error at offset " + std::to_string(pos_) +
                     ": " + msg);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  char next() {
    char c = peek();
    ++pos_;
    return c;
  }

  void expect(char c) {
    if (next() != c) fail(std::string("expected '") + c + "'");
  }

  bool consume_literal(const char* lit) {
    std::size_t n = std::string(lit).size();
    if (text_.compare(pos_, n, lit) == 0) {
      pos_ += n;
      return true;
    }
    return false;
  }

  Json parse_value() {
    skip_ws();
    char c = peek();
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') return Json(parse_string());
    if (c == 't') {
      if (consume_literal("true")) return Json(true);
      fail("bad literal");
    }
    if (c == 'f') {
      if (consume_literal("false")) return Json(false);
      fail("bad literal");
    }
    if (c == 'n') {
      if (consume_literal("null")) return Json(nullptr);
      fail("bad literal");
    }
    return parse_number();
  }

  Json parse_object() {
    expect('{');
    JsonObject obj;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return Json(std::move(obj));
    }
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      obj[key] = parse_value();
      skip_ws();
      char c = next();
      if (c == '}') break;
      if (c != ',') fail("expected ',' or '}' in object");
    }
    return Json(std::move(obj));
  }

  Json parse_array() {
    expect('[');
    Json::Array arr;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return Json(std::move(arr));
    }
    for (;;) {
      arr.push_back(parse_value());
      skip_ws();
      char c = next();
      if (c == ']') break;
      if (c != ',') fail("expected ',' or ']' in array");
    }
    return Json(std::move(arr));
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      char c = next();
      if (c == '"') break;
      if (c == '\\') {
        char e = next();
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'r': out += '\r'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'u': {
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              char h = next();
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
              else fail("bad \\u escape");
            }
            // Encode as UTF-8 (BMP only; surrogate pairs unsupported — the
            // artifacts this parser handles are ASCII).
            if (code < 0x80) {
              out += static_cast<char>(code);
            } else if (code < 0x800) {
              out += static_cast<char>(0xC0 | (code >> 6));
              out += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              out += static_cast<char>(0xE0 | (code >> 12));
              out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              out += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default:
            fail("bad escape character");
        }
      } else {
        out += c;
      }
    }
    return out;
  }

  Json parse_number() {
    std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected a number");
    try {
      return Json(std::stod(text_.substr(start, pos_ - start)));
    } catch (const std::exception&) {
      fail("malformed number");
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

Json Json::parse(const std::string& text) { return Parser(text).parse(); }

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  ADAPEX_CHECK(in.good(), "cannot open file for reading: " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

void write_file(const std::string& path, const std::string& contents) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  ADAPEX_CHECK(out.good(), "cannot open file for writing: " + path);
  out << contents;
  ADAPEX_CHECK(out.good(), "write failed: " + path);
}

}  // namespace adapex
