// Small work-stealing thread pool.
//
// Built for the library generator's design-point fan-out: a few dozen
// coarse tasks (seconds each), submitted up front, then a single barrier.
// Each worker owns a deque; submit() deals tasks round-robin, a worker pops
// from the front of its own deque and steals from the back of a victim's
// when it runs dry. Queues are mutex-guarded — task granularity here is
// milliseconds-to-seconds, so lock-free deques would buy nothing — which
// also keeps the pool trivially ThreadSanitizer-clean.
//
// Determinism contract: the pool schedules tasks in an arbitrary order on
// arbitrary threads. Callers that need deterministic output (the library
// generator does — see library/generator.hpp) must make every task
// self-contained (own RNG stream, own model clone) and write results into
// pre-assigned slots, never into shared accumulators.
//
// Exception contract: a task that throws no longer escapes into the worker
// thread (which would std::terminate the process). The first exception is
// captured, every task still queued at that point is drained without
// running (the sweep is already doomed; finishing it would only delay the
// report), and the next wait() rethrows the captured exception. After the
// rethrow the pool is reusable: submit()/wait() cycles behave as if freshly
// constructed. Callers that need per-task failure isolation (retry,
// quarantine) must catch inside the task — the library generator does —
// and then this capture path is only a backstop.

#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/error.hpp"

namespace adapex {

/// Fixed-size work-stealing pool; tasks are submitted then awaited via
/// wait(). Destruction joins all workers (after draining pending tasks).
class ThreadPool {
 public:
  explicit ThreadPool(std::size_t num_threads)
      : queues_(num_threads == 0 ? 1 : num_threads) {
    const std::size_t n = queues_.size();
    workers_.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      workers_.emplace_back([this, i] { worker_loop(i); });
    }
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  ~ThreadPool() {
    {
      std::lock_guard<std::mutex> lock(sleep_mutex_);
      stop_ = true;
    }
    work_available_.notify_all();
    for (auto& w : workers_) w.join();
  }

  std::size_t size() const { return workers_.size(); }

  /// Enqueues a task. Tasks must not themselves call submit() or wait() on
  /// this pool (single fan-out + barrier usage).
  void submit(std::function<void()> task) {
    ADAPEX_CHECK(task != nullptr, "thread pool: null task");
    {
      std::lock_guard<std::mutex> lock(sleep_mutex_);
      ++pending_;
    }
    Queue& q = queues_[next_queue_.fetch_add(1, std::memory_order_relaxed) %
                       queues_.size()];
    {
      std::lock_guard<std::mutex> lock(q.mutex);
      q.tasks.push_back(std::move(task));
    }
    work_available_.notify_one();
  }

  /// Blocks until every submitted task has finished running (or been
  /// drained after a failure). If any task threw, rethrows the *first*
  /// captured exception and resets the failure state, leaving the pool
  /// reusable for subsequent submit()/wait() rounds.
  void wait() {
    std::unique_lock<std::mutex> lock(sleep_mutex_);
    all_done_.wait(lock, [this] { return pending_ == 0; });
    if (first_error_) {
      std::exception_ptr error = first_error_;
      first_error_ = nullptr;
      failed_.store(false, std::memory_order_release);
      std::rethrow_exception(error);
    }
  }

  /// Thread count from `ADAPEX_THREADS` (>= 1), defaulting to
  /// hardware_concurrency when unset (or 1 if even that is unknown).
  /// Throws ConfigError on a non-positive or non-numeric value.
  static std::size_t env_thread_count() {
    const char* env = std::getenv("ADAPEX_THREADS");
    if (env == nullptr || *env == '\0') {
      const unsigned hw = std::thread::hardware_concurrency();
      return hw == 0 ? 1 : static_cast<std::size_t>(hw);
    }
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end == env || *end != '\0' || v < 1) {
      throw ConfigError(std::string("ADAPEX_THREADS must be a positive "
                                    "integer, got '") +
                        env + "'");
    }
    return static_cast<std::size_t>(v);
  }

 private:
  struct Queue {
    std::mutex mutex;
    std::deque<std::function<void()>> tasks;
  };

  bool try_pop(std::size_t self, std::function<void()>& out) {
    // Own queue first (front: submission order), then steal from the back
    // of each other queue.
    {
      Queue& q = queues_[self];
      std::lock_guard<std::mutex> lock(q.mutex);
      if (!q.tasks.empty()) {
        out = std::move(q.tasks.front());
        q.tasks.pop_front();
        return true;
      }
    }
    for (std::size_t k = 1; k < queues_.size(); ++k) {
      Queue& q = queues_[(self + k) % queues_.size()];
      std::lock_guard<std::mutex> lock(q.mutex);
      if (!q.tasks.empty()) {
        out = std::move(q.tasks.back());
        q.tasks.pop_back();
        return true;
      }
    }
    return false;
  }

  void worker_loop(std::size_t self) {
    for (;;) {
      std::function<void()> task;
      if (try_pop(self, task)) {
        // Once a task has failed the remaining queued tasks are drained
        // unrun: the relaxed-then-confirm pattern keeps the hot path at one
        // atomic load while the capture itself is serialized under the
        // sleep mutex (first writer wins).
        if (!failed_.load(std::memory_order_acquire)) {
          try {
            task();
          } catch (...) {
            std::lock_guard<std::mutex> lock(sleep_mutex_);
            if (!first_error_) {
              first_error_ = std::current_exception();
              failed_.store(true, std::memory_order_release);
            }
          }
        }
        std::lock_guard<std::mutex> lock(sleep_mutex_);
        if (--pending_ == 0) all_done_.notify_all();
        continue;
      }
      std::unique_lock<std::mutex> lock(sleep_mutex_);
      if (stop_) return;
      // Re-check under the lock: a task may have been submitted between the
      // failed pop and acquiring the lock; waking spuriously is harmless.
      work_available_.wait_for(lock, std::chrono::milliseconds(50));
    }
  }

  std::vector<Queue> queues_;
  std::vector<std::thread> workers_;
  std::atomic<std::size_t> next_queue_{0};

  std::mutex sleep_mutex_;
  std::condition_variable work_available_;
  std::condition_variable all_done_;
  std::size_t pending_ = 0;
  bool stop_ = false;
  /// First task exception of the current submit/wait round, rethrown (and
  /// cleared) by wait(). Guarded by sleep_mutex_; failed_ mirrors its
  /// presence for the workers' lock-free fast path. An exception that is
  /// never wait()ed for is dropped at destruction — destroying a pool
  /// without the barrier already forfeits the results.
  std::exception_ptr first_error_;
  std::atomic<bool> failed_{false};
};

}  // namespace adapex
