// Deterministic random number generation.
//
// Everything stochastic in adapex (synthetic datasets, weight init, workload
// deviation) is driven by an explicitly seeded Rng so experiments are exactly
// reproducible across runs and platforms. The generator is xoshiro256**,
// seeded via splitmix64, which is portable (no implementation-defined
// std::mt19937 distribution quirks: we implement our own distributions).

#pragma once

#include <array>
#include <cmath>
#include <cstdint>

namespace adapex {

/// One step of the splitmix64 sequence: advances `state` and returns the
/// next output. Also the canonical way to expand one seed into many.
inline std::uint64_t splitmix64_next(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// Stateless splitmix64 avalanche of a single value (a 64-bit bijection).
inline std::uint64_t splitmix64_mix(std::uint64_t x) {
  return splitmix64_next(x);
}

/// Derives the seed of an independent RNG stream from a root seed and a
/// (a, b) stream identifier — e.g. (variant, prune rate) in the library
/// generator. Each chaining step is a full avalanche, so for a fixed root
/// distinct (a, b) pairs that differ in only one coordinate can never
/// collide (the mix is a bijection), and nearby tuples map to distant
/// seeds — unlike additive `seed + k*a + b` schemes, which alias easily.
inline std::uint64_t derive_seed(std::uint64_t root, std::uint64_t a,
                                 std::uint64_t b = 0) {
  return splitmix64_mix(splitmix64_mix(splitmix64_mix(root) ^ a) ^ b);
}

/// Deterministic, portable pseudo-random generator (xoshiro256**).
class Rng {
 public:
  explicit Rng(std::uint64_t seed) {
    // splitmix64 expansion of the seed into the 256-bit state.
    std::uint64_t x = seed;
    for (auto& s : state_) s = splitmix64_next(x);
  }

  /// Next raw 64-bit value.
  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n). n must be > 0.
  std::uint64_t uniform_index(std::uint64_t n) {
    // Lemire-style rejection-free mapping is fine here; modulo bias is
    // negligible for the small n used in this project, but we debias anyway.
    const std::uint64_t threshold = (~n + 1) % n;  // == 2^64 mod n
    for (;;) {
      const std::uint64_t r = next_u64();
      if (r >= threshold) return r % n;
    }
  }

  /// Standard normal via Box–Muller (cached second value).
  double normal() {
    if (has_cached_) {
      has_cached_ = false;
      return cached_;
    }
    double u1 = 0.0;
    do {
      u1 = uniform();
    } while (u1 <= 1e-300);
    const double u2 = uniform();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 6.283185307179586476925286766559 * u2;
    cached_ = r * std::sin(theta);
    has_cached_ = true;
    return r * std::cos(theta);
  }

  /// Normal with given mean and standard deviation.
  double normal(double mean, double stddev) { return mean + stddev * normal(); }

  /// Bernoulli trial with success probability p.
  bool bernoulli(double p) { return uniform() < p; }

  /// Derive an independent child generator (for per-component streams).
  Rng fork() { return Rng(next_u64() ^ 0xA5A5A5A55A5A5A5AULL); }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
  double cached_ = 0.0;
  bool has_cached_ = false;
};

}  // namespace adapex
