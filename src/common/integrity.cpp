#include "common/integrity.hpp"

#include <unistd.h>

#include <array>
#include <cstdio>
#include <filesystem>
#include <system_error>

#include "common/json.hpp"

namespace adapex {

namespace {

constexpr const char* kSealedFormat = "adapex-sealed-v1";

std::array<std::uint32_t, 256> make_crc32_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

std::string to_hex(std::uint64_t v, int digits) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%0*llx", digits,
                static_cast<unsigned long long>(v));
  return buf;
}

}  // namespace

std::uint64_t fnv1a64(const std::string& bytes) {
  std::uint64_t h = 1469598103934665603ULL;
  for (char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

std::uint32_t crc32(const std::string& bytes) {
  static const std::array<std::uint32_t, 256> table = make_crc32_table();
  std::uint32_t c = 0xFFFFFFFFu;
  for (char ch : bytes) {
    c = table[(c ^ static_cast<unsigned char>(ch)) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

bool checksum_mode_valid(const std::string& mode) {
  return mode == "fnv1a64" || mode == "crc32";
}

std::string content_checksum(const std::string& bytes,
                             const std::string& mode) {
  if (mode == "fnv1a64") return "fnv1a64:" + to_hex(fnv1a64(bytes), 16);
  if (mode == "crc32") return "crc32:" + to_hex(crc32(bytes), 8);
  throw ConfigError("unknown checksum mode: '" + mode +
                    "' (expected fnv1a64|crc32)");
}

bool checksum_matches(const std::string& bytes, const std::string& tag) {
  const std::size_t colon = tag.find(':');
  if (colon == std::string::npos) return false;
  const std::string mode = tag.substr(0, colon);
  if (!checksum_mode_valid(mode)) return false;
  return content_checksum(bytes, mode) == tag;
}

void atomic_write_file(const std::string& path, const std::string& contents) {
  const std::string tmp =
      path + "." + std::to_string(::getpid()) + ".tmp";
  try {
    write_file(tmp, contents);
    std::filesystem::rename(tmp, path);
  } catch (...) {
    std::error_code ec;
    std::filesystem::remove(tmp, ec);
    throw;
  }
}

std::string quarantine_file(const std::string& path) {
  const std::string target = path + ".corrupt";
  std::error_code ec;
  std::filesystem::rename(path, target, ec);
  if (ec && std::filesystem::exists(path)) {
    throw Error("cannot quarantine " + path + " to " + target + ": " +
                ec.message());
  }
  return target;
}

std::string seal_document(const std::string& kind, const Json& payload,
                          const std::string& checksum_mode) {
  Json envelope = Json::object();
  envelope["format"] = kSealedFormat;
  envelope["kind"] = kind;
  envelope["checksum"] = content_checksum(payload.dump(1), checksum_mode);
  envelope["payload"] = payload;
  return envelope.dump(1);
}

bool is_sealed_document(const Json& doc) {
  return doc.is_object() && doc.contains("format") &&
         doc.at("format").is_string() &&
         doc.at("format").as_string() == kSealedFormat &&
         doc.contains("payload");
}

Json open_document(const Json& doc, const std::string& kind) {
  if (!is_sealed_document(doc)) {
    throw IntegrityError("not a sealed adapex document (format '" +
                         std::string(kSealedFormat) + "' missing)");
  }
  if (!doc.contains("kind") || doc.at("kind").as_string() != kind) {
    throw IntegrityError(
        "sealed document kind mismatch: expected '" + kind + "', got '" +
        (doc.contains("kind") ? doc.at("kind").as_string() : "<none>") + "'");
  }
  if (!doc.contains("checksum")) {
    throw IntegrityError("sealed document is missing its checksum");
  }
  const Json& payload = doc.at("payload");
  const std::string tag = doc.at("checksum").as_string();
  if (!checksum_matches(payload.dump(1), tag)) {
    throw IntegrityError("content checksum mismatch (stored " + tag +
                         "): the artifact is corrupt");
  }
  return payload;
}

Json open_document_text(const std::string& text, const std::string& kind) {
  return open_document(Json::parse(text), kind);
}

}  // namespace adapex
