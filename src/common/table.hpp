// Tabular output helpers.
//
// Benches regenerate the paper's tables and figure series as plain-text
// tables and CSV files; this keeps formatting in one place.

#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace adapex {

/// A simple column-aligned text table with a header row.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Adds one row; must have the same arity as the header.
  void add_row(std::vector<std::string> row);

  /// Convenience: formats a double with the given precision.
  static std::string num(double v, int precision = 2);

  /// Renders the table with aligned columns.
  std::string str() const;

  /// Renders as CSV (header + rows).
  std::string csv() const;

  void print(std::ostream& os) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace adapex
