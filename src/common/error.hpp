// Error handling for the adapex library.
//
// All precondition/invariant violations throw adapex::Error (a
// std::runtime_error) carrying a formatted message with the failing
// expression and source location. Library code uses ADAPEX_CHECK for
// conditions that depend on user input and ADAPEX_ASSERT for internal
// invariants (compiled in all build types: this is an EDA-style tool where
// silent corruption is worse than an abort).

#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace adapex {

/// Base exception for all adapex errors.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown when a user-supplied configuration is inconsistent
/// (e.g. a folding config whose PE count does not divide the channel count).
class ConfigError : public Error {
 public:
  explicit ConfigError(const std::string& what) : Error(what) {}
};

/// Thrown when tensor shapes are incompatible with an operation.
class ShapeError : public Error {
 public:
  explicit ShapeError(const std::string& what) : Error(what) {}
};

/// Thrown when parsing serialized artifacts (JSON configs, libraries) fails.
class ParseError : public Error {
 public:
  explicit ParseError(const std::string& what) : Error(what) {}
};

namespace detail {

[[noreturn]] inline void throw_check_failure(const char* kind, const char* expr,
                                             const char* file, int line,
                                             const std::string& msg) {
  std::ostringstream os;
  os << kind << " failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw Error(os.str());
}

}  // namespace detail
}  // namespace adapex

/// Checks a condition that may fail due to user input; throws adapex::Error.
#define ADAPEX_CHECK(cond, msg)                                          \
  do {                                                                   \
    if (!(cond)) {                                                       \
      ::adapex::detail::throw_check_failure("check", #cond, __FILE__,    \
                                            __LINE__, (msg));            \
    }                                                                    \
  } while (false)

/// Checks an internal invariant; active in all build types.
#define ADAPEX_ASSERT(cond)                                              \
  do {                                                                   \
    if (!(cond)) {                                                       \
      ::adapex::detail::throw_check_failure("assert", #cond, __FILE__,   \
                                            __LINE__, std::string{});    \
    }                                                                    \
  } while (false)

/// Debug-only check for hot-path preconditions (e.g. tensor indexing).
/// Compiled in under Debug builds and whenever ADAPEX_ENABLE_DCHECKS is
/// defined (the ADAPEX_SANITIZE CMake option defines it), compiled out of
/// optimized Release builds so inner loops stay branch-free.
#if !defined(NDEBUG) || defined(ADAPEX_ENABLE_DCHECKS)
#define ADAPEX_DCHECKS_ENABLED 1
#define ADAPEX_DCHECK(cond, msg)                                         \
  do {                                                                   \
    if (!(cond)) {                                                       \
      ::adapex::detail::throw_check_failure("dcheck", #cond, __FILE__,   \
                                            __LINE__, (msg));            \
    }                                                                    \
  } while (false)
#else
#define ADAPEX_DCHECKS_ENABLED 0
#define ADAPEX_DCHECK(cond, msg) \
  do {                           \
  } while (false)
#endif
