// Minimal JSON value type, parser, and writer.
//
// Used for FINN-style folding configuration files, exits configuration, and
// library serialization. Supports the JSON subset those artifacts need:
// null, bool, number (double), string, array, object. Object key order is
// preserved on write (insertion order) so emitted configs diff cleanly.

#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <variant>
#include <vector>

#include "common/error.hpp"

namespace adapex {

class Json;

/// Ordered key/value storage for JSON objects (insertion order preserved).
class JsonObject {
 public:
  Json& operator[](const std::string& key);
  const Json& at(const std::string& key) const;
  bool contains(const std::string& key) const;
  std::size_t size() const { return items_.size(); }
  auto begin() const { return items_.begin(); }
  auto end() const { return items_.end(); }

 private:
  std::vector<std::pair<std::string, std::shared_ptr<Json>>> items_;
};

/// A JSON value.
class Json {
 public:
  using Array = std::vector<Json>;

  Json() : value_(nullptr) {}
  Json(std::nullptr_t) : value_(nullptr) {}
  Json(bool b) : value_(b) {}
  Json(double d) : value_(d) {}
  Json(int i) : value_(static_cast<double>(i)) {}
  Json(std::int64_t i) : value_(static_cast<double>(i)) {}
  Json(std::size_t i) : value_(static_cast<double>(i)) {}
  Json(const char* s) : value_(std::string(s)) {}
  Json(std::string s) : value_(std::move(s)) {}
  Json(Array a) : value_(std::move(a)) {}
  Json(JsonObject o) : value_(std::move(o)) {}

  static Json object() { return Json(JsonObject{}); }
  static Json array() { return Json(Array{}); }

  bool is_null() const { return std::holds_alternative<std::nullptr_t>(value_); }
  bool is_bool() const { return std::holds_alternative<bool>(value_); }
  bool is_number() const { return std::holds_alternative<double>(value_); }
  bool is_string() const { return std::holds_alternative<std::string>(value_); }
  bool is_array() const { return std::holds_alternative<Array>(value_); }
  bool is_object() const { return std::holds_alternative<JsonObject>(value_); }

  bool as_bool() const;
  double as_number() const;
  std::int64_t as_int() const;
  const std::string& as_string() const;
  const Array& as_array() const;
  Array& as_array();
  const JsonObject& as_object() const;
  JsonObject& as_object();

  /// Object access; creates the object/key as needed when non-const.
  Json& operator[](const std::string& key);
  const Json& at(const std::string& key) const;
  bool contains(const std::string& key) const;

  /// Array append.
  void push_back(Json v);

  /// Serialize. indent < 0 emits compact single-line JSON.
  std::string dump(int indent = -1) const;

  /// Parse a JSON document; throws ParseError on malformed input.
  static Json parse(const std::string& text);

 private:
  void dump_to(std::string& out, int indent, int depth) const;

  std::variant<std::nullptr_t, bool, double, std::string, Array, JsonObject>
      value_;
};

/// Reads an entire file into a string; throws Error if unreadable.
std::string read_file(const std::string& path);

/// Writes a string to a file (overwrites); throws Error on failure.
void write_file(const std::string& path, const std::string& contents);

}  // namespace adapex
