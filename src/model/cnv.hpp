// CNV model builder and early-exit configuration.
//
// CNV is the VGG-like quantized CNN shipped with FINN that the paper
// evaluates (CNVW2A2: 2-bit weights and activations). Topology, for
// 3x32x32 inputs and unpadded 3x3 convolutions:
//
//   block 0: conv(3->c0) conv(c0->c1) maxpool2     32->30->28->14
//   block 1: conv(c1->c2) conv(c2->c3) maxpool2    14->12->10->5
//   block 2: conv(c3->c4) conv(c4->c5)              5->3->1
//            flatten, fc(c5->f0), fc(f0->f1), fc(f1->classes)
//
// (each conv/fc except the classifier is followed by BatchNorm + 2-bit
// activation quantization). `width_scale` shrinks all channel/feature widths
// for laptop-scale experiments; 1.0 is the paper's CNV (64/64/128/128/256/256,
// FC 512/512).
//
// Early exits follow the paper's case study: an exit head is CONV (same
// configuration as the block it taps: 3x3, same output channels) + MaxPool
// with k = floor(DIM/2) where DIM is the tapped feature map dimension +
// two FC layers mirroring the CNV classifier. Exits attach after backbone
// blocks (the paper attaches after block 0 and block 1).

#pragma once

#include <string>
#include <vector>

#include "common/json.hpp"
#include "nn/branchy.hpp"

namespace adapex {

/// CNV hyperparameters.
struct CnvConfig {
  int in_channels = 3;
  int image_size = 32;
  std::vector<int> conv_channels = {64, 64, 128, 128, 256, 256};
  std::vector<int> fc_features = {512, 512};
  int num_classes = 10;
  int weight_bits = 2;
  int act_bits = 2;

  /// Returns a copy with all widths multiplied by `scale` (minimum 4,
  /// rounded to a multiple of 4 so folding configs stay valid).
  CnvConfig scaled(double scale) const;
};

/// Operations composing an exit head.
enum class ExitOps {
  kConvPoolFc,  ///< CONV + MaxPool + FC + FC (the paper's configuration).
  kPoolFc,      ///< MaxPool + FC + FC (cheaper head).
  kFc,          ///< Global pool + single FC (cheapest head).
};

const char* to_string(ExitOps ops);
ExitOps exit_ops_from_string(const std::string& s);

/// One exit's placement and shape.
struct ExitSpec {
  int after_block = 0;
  ExitOps ops = ExitOps::kConvPoolFc;
};

/// The user-facing exits configuration ("Exits Configuration" in Fig. 3).
struct ExitsConfig {
  std::vector<ExitSpec> exits;
  /// Whether exit CONV layers participate in pruning ("pruned" flag in the
  /// paper; the library generator can build both variants).
  bool prune_exits = false;

  Json to_json() const;
  static ExitsConfig from_json(const Json& j);
};

/// The paper's case-study exits: after block 0 and after block 1, each a
/// CONV+MaxPool+FC+FC head.
ExitsConfig paper_exits_config(bool prune_exits);

/// Builds a CNV without early exits (the FINN baseline model).
BranchyModel build_cnv(const CnvConfig& config, Rng& rng);

/// Builds a CNV with the given early exits attached.
BranchyModel build_cnv_with_exits(const CnvConfig& config,
                                  const ExitsConfig& exits, Rng& rng);

/// Feature-map spatial size at the output of each backbone block
/// (e.g. {14, 5, 1} for 32x32 inputs).
std::vector<int> cnv_block_out_dims(const CnvConfig& config);

/// Output channel count at each backbone block's output (the last conv of
/// the block), e.g. {c1, c3, c5}.
std::vector<int> cnv_block_out_channels(const CnvConfig& config);

}  // namespace adapex
