#include "model/walk.hpp"

#include "tensor/ops.hpp"

namespace adapex {

namespace {

/// Tracks activation geometry while walking a Sequential.
struct WalkState {
  int channels = 0;
  int dim = 0;        ///< Feature-map side; 0 once flattened.
  int features = 0;   ///< Valid once flattened.
  bool flattened = false;
};

void walk_sequential(Sequential& seq, SiteLoc loc, int group,
                     const std::string& prefix, WalkState& state,
                     std::vector<LayerSite>& out) {
  int conv_count = 0, fc_count = 0;
  for (std::size_t i = 0; i < seq.size(); ++i) {
    Layer& layer = seq.layer(i);
    switch (layer.kind()) {
      case LayerKind::kConv: {
        auto& conv = static_cast<QuantConv2d&>(layer);
        ADAPEX_CHECK(!state.flattened, "conv after flatten is unsupported");
        ADAPEX_CHECK(conv.in_channels() == state.channels,
                     "walk: conv input channels mismatch at " + prefix);
        LayerSite site;
        site.loc = loc;
        site.group = group;
        site.layer_index = static_cast<int>(i);
        site.layer = &layer;
        site.container = &seq;
        site.is_conv = true;
        site.in_channels = conv.in_channels();
        site.out_channels = conv.out_channels();
        site.kernel = conv.kernel();
        site.in_dim = state.dim;
        site.out_dim = ops::out_dim(state.dim, conv.kernel(), 1);
        site.name = prefix + ".conv" + std::to_string(conv_count++);
        out.push_back(site);
        state.channels = conv.out_channels();
        state.dim = site.out_dim;
        break;
      }
      case LayerKind::kLinear: {
        auto& fc = static_cast<QuantLinear&>(layer);
        ADAPEX_CHECK(state.flattened, "linear before flatten is unsupported");
        ADAPEX_CHECK(fc.in_features() == state.features,
                     "walk: fc input features mismatch at " + prefix + " (" +
                         std::to_string(fc.in_features()) + " vs " +
                         std::to_string(state.features) + ")");
        LayerSite site;
        site.loc = loc;
        site.group = group;
        site.layer_index = static_cast<int>(i);
        site.layer = &layer;
        site.container = &seq;
        site.is_conv = false;
        site.in_channels = fc.in_features();
        site.out_channels = fc.out_features();
        site.kernel = 1;
        site.in_dim = 1;
        site.out_dim = 1;
        site.name = prefix + ".fc" + std::to_string(fc_count++);
        out.push_back(site);
        state.features = fc.out_features();
        break;
      }
      case LayerKind::kMaxPool: {
        auto& pool = static_cast<MaxPool2d&>(layer);
        ADAPEX_CHECK(!state.flattened, "pool after flatten is unsupported");
        state.dim = ops::out_dim(state.dim, pool.kernel(), pool.stride());
        break;
      }
      case LayerKind::kFlatten: {
        ADAPEX_CHECK(!state.flattened, "double flatten");
        state.features = state.channels * state.dim * state.dim;
        state.flattened = true;
        break;
      }
      case LayerKind::kBatchNorm:
      case LayerKind::kActQuant:
        break;  // Shape-preserving.
    }
  }
}

}  // namespace

std::vector<LayerSite> walk_compute_layers(BranchyModel& model,
                                           int in_channels, int image_size) {
  std::vector<LayerSite> sites;
  WalkState state;
  state.channels = in_channels;
  state.dim = image_size;

  // Geometry snapshot at each block's output, for exit heads.
  std::vector<WalkState> block_out(model.num_blocks());
  for (std::size_t b = 0; b < model.num_blocks(); ++b) {
    walk_sequential(model.block(b), SiteLoc::kBackbone, static_cast<int>(b),
                    "backbone.b" + std::to_string(b), state, sites);
    block_out[b] = state;
  }
  for (std::size_t e = 0; e < model.num_exits(); ++e) {
    const ExitBranch& exit = model.exit(e);
    WalkState exit_state = block_out[static_cast<std::size_t>(exit.after_block)];
    ADAPEX_CHECK(!exit_state.flattened,
                 "exit attaches to a flattened activation");
    walk_sequential(*model.exit(e).head, SiteLoc::kExit, static_cast<int>(e),
                    "exit" + std::to_string(e), exit_state, sites);
  }
  return sites;
}

}  // namespace adapex
