#include "model/cnv.hpp"

#include <cmath>

#include "tensor/ops.hpp"

namespace adapex {

CnvConfig CnvConfig::scaled(double scale) const {
  ADAPEX_CHECK(scale > 0.0, "width scale must be positive");
  auto scale_width = [scale](int w) {
    const int scaled = static_cast<int>(std::lround(w * scale / 4.0)) * 4;
    return std::max(scaled, 4);
  };
  CnvConfig out = *this;
  for (int& c : out.conv_channels) c = scale_width(c);
  for (int& f : out.fc_features) f = scale_width(f);
  return out;
}

const char* to_string(ExitOps ops) {
  switch (ops) {
    case ExitOps::kConvPoolFc: return "conv_pool_fc";
    case ExitOps::kPoolFc: return "pool_fc";
    case ExitOps::kFc: return "fc";
  }
  return "?";
}

ExitOps exit_ops_from_string(const std::string& s) {
  if (s == "conv_pool_fc") return ExitOps::kConvPoolFc;
  if (s == "pool_fc") return ExitOps::kPoolFc;
  if (s == "fc") return ExitOps::kFc;
  throw ConfigError("unknown exit ops: " + s);
}

Json ExitsConfig::to_json() const {
  Json j = Json::object();
  Json arr = Json::array();
  for (const auto& e : exits) {
    Json spec = Json::object();
    spec["after_block"] = e.after_block;
    spec["ops"] = to_string(e.ops);
    arr.push_back(std::move(spec));
  }
  j["exits"] = std::move(arr);
  j["pruned"] = prune_exits;
  return j;
}

ExitsConfig ExitsConfig::from_json(const Json& j) {
  ExitsConfig cfg;
  for (const auto& spec : j.at("exits").as_array()) {
    ExitSpec e;
    e.after_block = static_cast<int>(spec.at("after_block").as_int());
    e.ops = exit_ops_from_string(spec.at("ops").as_string());
    cfg.exits.push_back(e);
  }
  cfg.prune_exits = j.at("pruned").as_bool();
  return cfg;
}

ExitsConfig paper_exits_config(bool prune_exits) {
  ExitsConfig cfg;
  cfg.exits = {ExitSpec{0, ExitOps::kConvPoolFc},
               ExitSpec{1, ExitOps::kConvPoolFc}};
  cfg.prune_exits = prune_exits;
  return cfg;
}

namespace {

void append_conv_bn_act(Sequential& seq, int in_ch, int out_ch,
                        const CnvConfig& cfg, Rng& rng) {
  seq.append(std::make_unique<QuantConv2d>(in_ch, out_ch, 3, cfg.weight_bits,
                                           rng));
  seq.append(std::make_unique<BatchNorm>(out_ch));
  seq.append(std::make_unique<ActQuant>(cfg.act_bits));
}

void append_fc_bn_act(Sequential& seq, int in_f, int out_f,
                      const CnvConfig& cfg, Rng& rng) {
  seq.append(std::make_unique<QuantLinear>(in_f, out_f, cfg.weight_bits, rng));
  seq.append(std::make_unique<BatchNorm>(out_f));
  seq.append(std::make_unique<ActQuant>(cfg.act_bits));
}

void validate(const CnvConfig& cfg) {
  ADAPEX_CHECK(cfg.conv_channels.size() == 6,
               "CNV expects 6 conv layers (3 blocks of 2)");
  ADAPEX_CHECK(cfg.fc_features.size() == 2, "CNV expects 2 hidden FC layers");
  ADAPEX_CHECK(cfg.num_classes >= 2, "need at least two classes");
}

}  // namespace

std::vector<int> cnv_block_out_dims(const CnvConfig& config) {
  int dim = config.image_size;
  std::vector<int> dims;
  // Blocks 0 and 1: two valid 3x3 convs then 2x2 pool.
  for (int b = 0; b < 2; ++b) {
    dim = dim - 2 - 2;
    dim = ops::out_dim(dim, 2, 2);
    dims.push_back(dim);
  }
  // Block 2: two valid 3x3 convs, no pool.
  dim = dim - 2 - 2;
  dims.push_back(dim);
  return dims;
}

std::vector<int> cnv_block_out_channels(const CnvConfig& config) {
  return {config.conv_channels[1], config.conv_channels[3],
          config.conv_channels[5]};
}

BranchyModel build_cnv(const CnvConfig& config, Rng& rng) {
  validate(config);
  const auto& cc = config.conv_channels;
  const auto& ff = config.fc_features;
  const auto dims = cnv_block_out_dims(config);
  ADAPEX_CHECK(dims.back() >= 1, "image too small for the CNV topology");

  BranchyModel model;
  auto block0 = std::make_unique<Sequential>();
  append_conv_bn_act(*block0, config.in_channels, cc[0], config, rng);
  append_conv_bn_act(*block0, cc[0], cc[1], config, rng);
  block0->append(std::make_unique<MaxPool2d>(2));
  model.add_block(std::move(block0));

  auto block1 = std::make_unique<Sequential>();
  append_conv_bn_act(*block1, cc[1], cc[2], config, rng);
  append_conv_bn_act(*block1, cc[2], cc[3], config, rng);
  block1->append(std::make_unique<MaxPool2d>(2));
  model.add_block(std::move(block1));

  auto block2 = std::make_unique<Sequential>();
  append_conv_bn_act(*block2, cc[3], cc[4], config, rng);
  append_conv_bn_act(*block2, cc[4], cc[5], config, rng);
  block2->append(std::make_unique<Flatten>());
  const int flat = cc[5] * dims.back() * dims.back();
  append_fc_bn_act(*block2, flat, ff[0], config, rng);
  append_fc_bn_act(*block2, ff[0], ff[1], config, rng);
  block2->append(std::make_unique<QuantLinear>(ff[1], config.num_classes,
                                               config.weight_bits, rng));
  model.add_block(std::move(block2));
  return model;
}

BranchyModel build_cnv_with_exits(const CnvConfig& config,
                                  const ExitsConfig& exits, Rng& rng) {
  BranchyModel model = build_cnv(config, rng);
  const auto dims = cnv_block_out_dims(config);
  const auto chans = cnv_block_out_channels(config);

  for (const auto& spec : exits.exits) {
    ADAPEX_CHECK(spec.after_block >= 0 && spec.after_block < 2,
                 "exits attach after block 0 or block 1 only");
    const int tap_dim = dims[static_cast<std::size_t>(spec.after_block)];
    const int tap_ch = chans[static_cast<std::size_t>(spec.after_block)];
    // Paper: pool kernel is floor(DIM/2) of the tapped feature map.
    const int pool_k = std::max(tap_dim / 2, 1);

    auto head = std::make_unique<Sequential>();
    int dim = tap_dim;
    int ch = tap_ch;
    switch (spec.ops) {
      case ExitOps::kConvPoolFc: {
        // CONV configured like the block it taps (3x3, same out channels).
        append_conv_bn_act(*head, tap_ch, tap_ch, config, rng);
        dim -= 2;
        ADAPEX_CHECK(dim >= pool_k, "exit feature map too small for pooling");
        head->append(std::make_unique<MaxPool2d>(pool_k));
        dim = ops::out_dim(dim, pool_k, pool_k);
        break;
      }
      case ExitOps::kPoolFc: {
        ADAPEX_CHECK(dim >= pool_k, "exit feature map too small for pooling");
        head->append(std::make_unique<MaxPool2d>(pool_k));
        dim = ops::out_dim(dim, pool_k, pool_k);
        break;
      }
      case ExitOps::kFc: {
        // Global max pool.
        head->append(std::make_unique<MaxPool2d>(dim));
        dim = 1;
        break;
      }
    }
    head->append(std::make_unique<Flatten>());
    const int flat = ch * dim * dim;
    if (spec.ops == ExitOps::kFc) {
      head->append(std::make_unique<QuantLinear>(flat, config.num_classes,
                                                 config.weight_bits, rng));
    } else {
      // Two FC layers mirroring the CNV classifier configuration.
      append_fc_bn_act(*head, flat, config.fc_features[0], config, rng);
      head->append(std::make_unique<QuantLinear>(config.fc_features[0],
                                                 config.num_classes,
                                                 config.weight_bits, rng));
    }
    model.add_exit(spec.after_block, std::move(head));
  }
  return model;
}

}  // namespace adapex
