#include "model/serialize.hpp"

#include <cstring>

#include "common/json.hpp"

namespace adapex {

namespace {

constexpr char kMagic[4] = {'A', 'D', 'P', 'X'};
constexpr std::uint32_t kVersion = 1;

void append_tensor(std::vector<float>& blob, const Tensor& t) {
  blob.insert(blob.end(), t.data(), t.data() + t.numel());
}

/// Describes one layer and appends its state to the blob.
Json describe_layer(const Layer& layer, std::vector<float>& blob) {
  Json j = Json::object();
  switch (layer.kind()) {
    case LayerKind::kConv: {
      const auto& conv = static_cast<const QuantConv2d&>(layer);
      j["kind"] = "conv";
      j["in"] = conv.in_channels();
      j["out"] = conv.out_channels();
      j["k"] = conv.kernel();
      j["wbits"] = conv.weight_bits();
      append_tensor(blob, conv.weight().value);
      break;
    }
    case LayerKind::kLinear: {
      const auto& fc = static_cast<const QuantLinear&>(layer);
      j["kind"] = "linear";
      j["in"] = fc.in_features();
      j["out"] = fc.out_features();
      j["wbits"] = fc.weight_bits();
      append_tensor(blob, fc.weight().value);
      break;
    }
    case LayerKind::kBatchNorm: {
      const auto& bn = static_cast<const BatchNorm&>(layer);
      j["kind"] = "batchnorm";
      j["channels"] = bn.channels();
      append_tensor(blob, bn.gamma());
      append_tensor(blob, bn.beta());
      append_tensor(blob, bn.running_mean());
      append_tensor(blob, bn.running_var());
      break;
    }
    case LayerKind::kActQuant: {
      const auto& act = static_cast<const ActQuant&>(layer);
      j["kind"] = "actquant";
      j["bits"] = act.bits();
      blob.push_back(act.scale());
      break;
    }
    case LayerKind::kMaxPool: {
      const auto& pool = static_cast<const MaxPool2d&>(layer);
      j["kind"] = "maxpool";
      j["k"] = pool.kernel();
      j["stride"] = pool.stride();
      break;
    }
    case LayerKind::kFlatten:
      j["kind"] = "flatten";
      break;
  }
  return j;
}

Json describe_sequential(const Sequential& seq, std::vector<float>& blob) {
  Json layers = Json::array();
  for (std::size_t i = 0; i < seq.size(); ++i) {
    layers.push_back(describe_layer(seq.layer(i), blob));
  }
  return layers;
}

/// Reads `count` floats from the blob cursor.
Tensor read_tensor(const float*& cursor, const float* end,
                   std::vector<int> shape) {
  const std::size_t count = Tensor::numel_of(shape);
  ADAPEX_CHECK(cursor + count <= end, "model blob truncated");
  Tensor t(std::move(shape),
           std::vector<float>(cursor, cursor + count));
  cursor += count;
  return t;
}

std::unique_ptr<Layer> rebuild_layer(const Json& j, const float*& cursor,
                                     const float* end) {
  const std::string kind = j.at("kind").as_string();
  Rng dummy(0);
  if (kind == "conv") {
    const int in = static_cast<int>(j.at("in").as_int());
    const int out = static_cast<int>(j.at("out").as_int());
    const int k = static_cast<int>(j.at("k").as_int());
    auto conv = std::make_unique<QuantConv2d>(
        in, out, k, static_cast<int>(j.at("wbits").as_int()), dummy);
    conv->set_weight(read_tensor(cursor, end, {out, in, k, k}));
    return conv;
  }
  if (kind == "linear") {
    const int in = static_cast<int>(j.at("in").as_int());
    const int out = static_cast<int>(j.at("out").as_int());
    auto fc = std::make_unique<QuantLinear>(
        in, out, static_cast<int>(j.at("wbits").as_int()), dummy);
    fc->set_weight(read_tensor(cursor, end, {out, in}));
    return fc;
  }
  if (kind == "batchnorm") {
    const int ch = static_cast<int>(j.at("channels").as_int());
    auto bn = std::make_unique<BatchNorm>(ch);
    Tensor gamma = read_tensor(cursor, end, {ch});
    Tensor beta = read_tensor(cursor, end, {ch});
    Tensor mean = read_tensor(cursor, end, {ch});
    Tensor var = read_tensor(cursor, end, {ch});
    bn->set_state(std::move(gamma), std::move(beta), std::move(mean),
                  std::move(var));
    return bn;
  }
  if (kind == "actquant") {
    auto act =
        std::make_unique<ActQuant>(static_cast<int>(j.at("bits").as_int()));
    ADAPEX_CHECK(cursor < end, "model blob truncated");
    act->set_scale(*cursor++);
    return act;
  }
  if (kind == "maxpool") {
    return std::make_unique<MaxPool2d>(
        static_cast<int>(j.at("k").as_int()),
        static_cast<int>(j.at("stride").as_int()));
  }
  if (kind == "flatten") {
    return std::make_unique<Flatten>();
  }
  throw ParseError("unknown layer kind in model file: " + kind);
}

std::unique_ptr<Sequential> rebuild_sequential(const Json& layers,
                                               const float*& cursor,
                                               const float* end) {
  auto seq = std::make_unique<Sequential>();
  for (const auto& j : layers.as_array()) {
    seq->append(rebuild_layer(j, cursor, end));
  }
  return seq;
}

}  // namespace

std::string serialize_model(const BranchyModel& model) {
  std::vector<float> blob;
  Json header = Json::object();
  Json blocks = Json::array();
  for (std::size_t b = 0; b < model.num_blocks(); ++b) {
    blocks.push_back(describe_sequential(model.block(b), blob));
  }
  header["blocks"] = std::move(blocks);
  Json exits = Json::array();
  for (std::size_t e = 0; e < model.num_exits(); ++e) {
    Json exit = Json::object();
    exit["after_block"] = model.exit(e).after_block;
    exit["head"] = describe_sequential(*model.exit(e).head, blob);
    exits.push_back(std::move(exit));
  }
  header["exits"] = std::move(exits);
  header["blob_floats"] = blob.size();

  const std::string header_text = header.dump();
  std::string out;
  out.append(kMagic, 4);
  std::uint32_t version = kVersion;
  out.append(reinterpret_cast<const char*>(&version), sizeof(version));
  std::uint64_t header_len = header_text.size();
  out.append(reinterpret_cast<const char*>(&header_len), sizeof(header_len));
  out.append(header_text);
  out.append(reinterpret_cast<const char*>(blob.data()),
             blob.size() * sizeof(float));
  return out;
}

BranchyModel deserialize_model(const std::string& bytes) {
  constexpr std::size_t kPrefix = 4 + sizeof(std::uint32_t) + sizeof(std::uint64_t);
  ADAPEX_CHECK(bytes.size() >= kPrefix, "model file too short");
  if (std::memcmp(bytes.data(), kMagic, 4) != 0) {
    throw ParseError("not an AdaPEx model file (bad magic)");
  }
  std::uint32_t version = 0;
  std::memcpy(&version, bytes.data() + 4, sizeof(version));
  if (version != kVersion) {
    throw ParseError("unsupported model file version " +
                     std::to_string(version));
  }
  std::uint64_t header_len = 0;
  std::memcpy(&header_len, bytes.data() + 8, sizeof(header_len));
  ADAPEX_CHECK(bytes.size() >= kPrefix + header_len, "model header truncated");
  const Json header =
      Json::parse(bytes.substr(kPrefix, static_cast<std::size_t>(header_len)));

  const std::size_t blob_bytes = bytes.size() - kPrefix -
                                 static_cast<std::size_t>(header_len);
  ADAPEX_CHECK(blob_bytes % sizeof(float) == 0, "model blob misaligned");
  const std::size_t blob_floats = blob_bytes / sizeof(float);
  ADAPEX_CHECK(blob_floats ==
                   static_cast<std::size_t>(header.at("blob_floats").as_int()),
               "model blob size mismatch");
  std::vector<float> blob(blob_floats);
  std::memcpy(blob.data(),
              bytes.data() + kPrefix + static_cast<std::size_t>(header_len),
              blob_bytes);

  const float* cursor = blob.data();
  const float* end = blob.data() + blob.size();
  BranchyModel model;
  for (const auto& block : header.at("blocks").as_array()) {
    model.add_block(rebuild_sequential(block, cursor, end));
  }
  for (const auto& exit : header.at("exits").as_array()) {
    model.add_exit(static_cast<int>(exit.at("after_block").as_int()),
                   rebuild_sequential(exit.at("head"), cursor, end));
  }
  ADAPEX_CHECK(cursor == end, "model blob has trailing data");
  return model;
}

void save_model(const BranchyModel& model, const std::string& path) {
  write_file(path, serialize_model(model));
}

BranchyModel load_model(const std::string& path) {
  return deserialize_model(read_file(path));
}

}  // namespace adapex
