// Structural walk over a BranchyModel.
//
// Produces the ordered list of compute layers (conv + fc — the layers FINN
// maps to MVTU hardware units) together with their geometry: input/output
// channels, spatial dimensions, and kernel size. The walk order is the
// canonical layer order used everywhere an accelerator artifact is indexed
// per-layer (folding configs, pruning reports, resource breakdowns):
// backbone blocks first (in block order), then each exit head (in exit
// order).

#pragma once

#include <string>
#include <vector>

#include "nn/branchy.hpp"

namespace adapex {

/// Where a compute layer lives.
enum class SiteLoc { kBackbone, kExit };

/// One conv/fc layer with resolved geometry.
struct LayerSite {
  SiteLoc loc = SiteLoc::kBackbone;
  /// Block index for backbone sites; exit index for exit sites.
  int group = 0;
  /// Index of the layer inside its Sequential container.
  int layer_index = 0;
  Layer* layer = nullptr;
  /// The Sequential that owns the layer (for surgery on adjacent layers).
  Sequential* container = nullptr;
  bool is_conv = false;

  int in_channels = 0;   ///< Conv: channels. FC: input features.
  int out_channels = 0;  ///< Conv: filters. FC: output features.
  int kernel = 1;        ///< Conv kernel size (1 for FC).
  int in_dim = 1;        ///< Input feature-map side (1 for FC).
  int out_dim = 1;       ///< Output feature-map side (1 for FC).

  /// Stable human-readable identifier, e.g. "backbone.b0.conv1",
  /// "exit0.conv0", "backbone.b2.fc2".
  std::string name;
};

/// Walks the model and returns all conv/fc sites with geometry, given the
/// input image shape. Throws if the model's layer shapes are inconsistent
/// with the declared input.
std::vector<LayerSite> walk_compute_layers(BranchyModel& model, int in_channels,
                                           int image_size);

}  // namespace adapex
