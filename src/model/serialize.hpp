// Model serialization — the stand-in for the paper's ONNX export.
//
// AdaPEx's design-time flow exports each pruned early-exit model so the
// CNN-compilation step can consume it (the paper hands ONNX files to FINN).
// The format here is a single file:
//
//   magic "ADPX" | u32 version | u64 header_bytes | JSON header | f32 blob
//
// The JSON header describes the architecture (blocks and exit heads as
// ordered layer descriptors with constructor arguments) plus the blob
// layout; the blob carries every stateful tensor in declaration order —
// conv/fc weights, batch-norm gamma/beta/running statistics, and activation
// quantizer scales. load_model() rebuilds a BranchyModel that produces
// bit-identical inference results.

#pragma once

#include <string>

#include "nn/branchy.hpp"

namespace adapex {

/// Serializes the model to `path`. Throws on I/O failure.
void save_model(const BranchyModel& model, const std::string& path);

/// Loads a model previously written by save_model. Throws ParseError on a
/// malformed file and Error on I/O failure.
BranchyModel load_model(const std::string& path);

/// In-memory round trip (exposed for tests and tooling).
std::string serialize_model(const BranchyModel& model);
BranchyModel deserialize_model(const std::string& bytes);

}  // namespace adapex
