// Dense float tensor.
//
// The minimal tensor the adapex training/inference engine needs: contiguous
// row-major float storage with an explicit shape. Layout conventions follow
// the CNN stack: activations are [N, C, H, W] (batch, channels, height,
// width), fully-connected activations are [N, F], conv weights are
// [F, C, Kh, Kw], linear weights are [Out, In].

#pragma once

#include <cstddef>
#include <numeric>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace adapex {

/// Contiguous row-major float tensor.
class Tensor {
 public:
  Tensor() = default;

  /// Creates a zero-filled tensor of the given shape.
  explicit Tensor(std::vector<int> shape) : shape_(std::move(shape)) {
    data_.assign(numel_of(shape_), 0.0f);
  }

  /// Creates a tensor with explicit contents (size must match the shape).
  Tensor(std::vector<int> shape, std::vector<float> data)
      : shape_(std::move(shape)), data_(std::move(data)) {
    ADAPEX_CHECK(data_.size() == numel_of(shape_),
                 "tensor data size does not match shape");
  }

  static std::size_t numel_of(const std::vector<int>& shape) {
    std::size_t n = 1;
    for (int d : shape) {
      ADAPEX_CHECK(d >= 0, "negative tensor dimension");
      n *= static_cast<std::size_t>(d);
    }
    return n;
  }

  const std::vector<int>& shape() const { return shape_; }
  int dim(int i) const { return shape_.at(static_cast<std::size_t>(i)); }
  int ndim() const { return static_cast<int>(shape_.size()); }
  std::size_t numel() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }

  float& operator[](std::size_t i) {
    ADAPEX_DCHECK(i < data_.size(), "flat index out of range");
    return data_[i];
  }
  float operator[](std::size_t i) const {
    ADAPEX_DCHECK(i < data_.size(), "flat index out of range");
    return data_[i];
  }

  /// 4-D accessor for [N, C, H, W] tensors.
  float& at4(int n, int c, int h, int w) {
    dcheck_idx4(n, c, h, w);
    return data_[idx4(n, c, h, w)];
  }
  float at4(int n, int c, int h, int w) const {
    dcheck_idx4(n, c, h, w);
    return data_[idx4(n, c, h, w)];
  }

  /// 2-D accessor for [N, F] tensors.
  float& at2(int n, int f) {
    dcheck_idx2(n, f);
    return data_[static_cast<std::size_t>(n) * shape_[1] + f];
  }
  float at2(int n, int f) const {
    dcheck_idx2(n, f);
    return data_[static_cast<std::size_t>(n) * shape_[1] + f];
  }

  /// Returns a tensor with the same data reinterpreted under a new shape.
  Tensor reshaped(std::vector<int> new_shape) const {
    ADAPEX_CHECK(numel_of(new_shape) == numel(),
                 "reshape must preserve element count");
    return Tensor(std::move(new_shape), data_);
  }

  void fill(float v) { std::fill(data_.begin(), data_.end(), v); }
  void zero() { fill(0.0f); }

  /// In-place elementwise accumulate: *this += other (shapes must match).
  void add_(const Tensor& other) {
    ADAPEX_CHECK(shape_ == other.shape_, "add_: shape mismatch");
    for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  }

  /// In-place scale: *this *= s.
  void scale_(float s) {
    for (float& v : data_) v *= s;
  }

  /// Fills with N(0, stddev) values from the given generator.
  void randn_(Rng& rng, float stddev) {
    for (float& v : data_) v = static_cast<float>(rng.normal(0.0, stddev));
  }

  /// Sum of all elements.
  double sum() const {
    return std::accumulate(data_.begin(), data_.end(), 0.0);
  }

  std::string shape_str() const {
    std::string s = "[";
    for (std::size_t i = 0; i < shape_.size(); ++i) {
      if (i) s += ", ";
      s += std::to_string(shape_[i]);
    }
    return s + "]";
  }

 private:
  std::size_t idx4(int n, int c, int h, int w) const {
    return ((static_cast<std::size_t>(n) * shape_[1] + c) * shape_[2] + h) *
               shape_[3] +
           w;
  }

  void dcheck_idx4(int n, int c, int h, int w) const {
#if ADAPEX_DCHECKS_ENABLED
    ADAPEX_DCHECK(shape_.size() == 4, "at4 needs a 4-D tensor, got " +
                                          shape_str());
    ADAPEX_DCHECK(n >= 0 && n < shape_[0] && c >= 0 && c < shape_[1] &&
                      h >= 0 && h < shape_[2] && w >= 0 && w < shape_[3],
                  "at4(" + std::to_string(n) + ", " + std::to_string(c) +
                      ", " + std::to_string(h) + ", " + std::to_string(w) +
                      ") out of range for " + shape_str());
#else
    (void)n, (void)c, (void)h, (void)w;
#endif
  }

  void dcheck_idx2(int n, int f) const {
#if ADAPEX_DCHECKS_ENABLED
    ADAPEX_DCHECK(shape_.size() == 2, "at2 needs a 2-D tensor, got " +
                                          shape_str());
    ADAPEX_DCHECK(n >= 0 && n < shape_[0] && f >= 0 && f < shape_[1],
                  "at2(" + std::to_string(n) + ", " + std::to_string(f) +
                      ") out of range for " + shape_str());
#else
    (void)n, (void)f;
#endif
  }

  std::vector<int> shape_;
  std::vector<float> data_;
};

}  // namespace adapex
