// Popcount-GEMM tier body. Included once per ISA namespace in packed.cpp
// with ADAPEX_P_LEVEL selecting the popcount implementation:
//   0  scalar: hardware popcnt via __builtin_popcountll
//   1  AVX2:   vpshufb nibble-LUT popcount + vpsadbw, 4 columns/step
//   2  AVX-512BW: the same nibble-LUT algorithm on 512-bit registers,
//                 8 columns/step
//   3  AVX512VPOPCNTDQ: native vpopcntq, 8 columns/step
//
// The SIMD tiers vectorize across *columns*, not across plane words: each
// weight word is broadcast and ANDed against 4/8 consecutive columns'
// same-word planes (contiguous in the word-major activation layout). Real
// CNV reductions are short — k = 144..576 is only 3..9 words — so a
// word-vectorized inner loop would spend almost everything in its scalar
// tail; column blocking keeps full SIMD width at any k, as long as the
// output has >= 4/8 columns (conv layers have hundreds).
//
// Every level computes the same exact integer sums (popcounts of the same
// AND-masked words), so the tiers are bitwise-identical by construction.
// The float epilogue below is the identical operation sequence in every
// tier, built from exact IEEE ops only (packed.cpp is compiled with
// -ffp-contract=off, so no tier fuses multiply+add).

/// Column-chunk width: raw sums are staged through fixed buffers of this
/// many columns, then the float epilogue runs as one vectorizable pass.
constexpr int kGemmChunk = 256;

// ----------------------------------------------------- per-level chunk core

#if ADAPEX_P_LEVEL == 0

/// sbuf[i] = exact S of (row planes pp/mm) x (columns c0+i), i < n.
inline void gemm_row_chunk(const std::uint64_t* pp, const std::uint64_t* mm,
                           const PackedActivations& a, int c0, int n,
                           std::int32_t* sbuf) {
  std::int32_t hi[kGemmChunk];
  std::int32_t lo[kGemmChunk];
  for (int i = 0; i < n; ++i) {
    hi[i] = 0;
    lo[i] = 0;
  }
  for (int w = 0; w < a.words; ++w) {
    const std::uint64_t p = pp[w];
    const std::uint64_t m = mm[w];
    const std::size_t base = static_cast<std::size_t>(w) * a.cols +
                             static_cast<std::size_t>(c0);
    const std::uint64_t* l0 = a.lo.data() + base;
    const std::uint64_t* l1 = a.hi.data() + base;
    for (int i = 0; i < n; ++i) {
      hi[i] += __builtin_popcountll(p & l1[i]) -
               __builtin_popcountll(m & l1[i]);
      lo[i] += __builtin_popcountll(p & l0[i]) -
               __builtin_popcountll(m & l0[i]);
    }
  }
  for (int i = 0; i < n; ++i) sbuf[i] = 2 * hi[i] + lo[i];
}

#elif ADAPEX_P_LEVEL == 1

/// Per-64-bit-lane popcount (Mula's vpshufb nibble LUT + vpsadbw): each
/// lane of the result holds the popcount of the corresponding input lane,
/// i.e. of one column's word.
inline __m256i popcnt_words256(__m256i v) {
  const __m256i lut =
      _mm256_setr_epi8(0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4, 0, 1,
                       1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
  const __m256i low = _mm256_set1_epi8(0x0f);
  const __m256i lo = _mm256_and_si256(v, low);
  const __m256i hi = _mm256_and_si256(_mm256_srli_epi16(v, 4), low);
  const __m256i counts = _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo),
                                         _mm256_shuffle_epi8(lut, hi));
  return _mm256_sad_epu8(counts, _mm256_setzero_si256());
}

inline void gemm_row_chunk(const std::uint64_t* pp, const std::uint64_t* mm,
                           const PackedActivations& a, int c0, int n,
                           std::int32_t* sbuf) {
  int i = 0;
  for (; i + 4 <= n; i += 4) {  // four columns per step
    __m256i hiv = _mm256_setzero_si256();
    __m256i lov = _mm256_setzero_si256();
    for (int w = 0; w < a.words; ++w) {
      const std::size_t base = static_cast<std::size_t>(w) * a.cols +
                               static_cast<std::size_t>(c0 + i);
      const __m256i v1 = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(a.hi.data() + base));
      const __m256i v0 = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(a.lo.data() + base));
      const __m256i p = _mm256_set1_epi64x(static_cast<long long>(pp[w]));
      const __m256i m = _mm256_set1_epi64x(static_cast<long long>(mm[w]));
      hiv = _mm256_add_epi64(hiv, popcnt_words256(_mm256_and_si256(p, v1)));
      hiv = _mm256_sub_epi64(hiv, popcnt_words256(_mm256_and_si256(m, v1)));
      lov = _mm256_add_epi64(lov, popcnt_words256(_mm256_and_si256(p, v0)));
      lov = _mm256_sub_epi64(lov, popcnt_words256(_mm256_and_si256(m, v0)));
    }
    const __m256i s =
        _mm256_add_epi64(_mm256_add_epi64(hiv, hiv), lov);
    alignas(32) std::int64_t lanes[4];
    _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), s);
    for (int j = 0; j < 4; ++j) {
      sbuf[i + j] = static_cast<std::int32_t>(lanes[j]);
    }
  }
  for (; i < n; ++i) {  // scalar column tail (< 4 columns)
    std::int64_t hi = 0;
    std::int64_t lo = 0;
    for (int w = 0; w < a.words; ++w) {
      const std::size_t at = static_cast<std::size_t>(w) * a.cols +
                             static_cast<std::size_t>(c0 + i);
      hi += __builtin_popcountll(pp[w] & a.hi[at]) -
            __builtin_popcountll(mm[w] & a.hi[at]);
      lo += __builtin_popcountll(pp[w] & a.lo[at]) -
            __builtin_popcountll(mm[w] & a.lo[at]);
    }
    sbuf[i] = static_cast<std::int32_t>(2 * hi + lo);
  }
}

#elif ADAPEX_P_LEVEL == 2 || ADAPEX_P_LEVEL == 3

#if ADAPEX_P_LEVEL == 2
/// Per-64-bit-lane popcount via the nibble LUT (AVX-512BW vpshufb+vpsadbw).
inline __m512i popcnt_words512(__m512i v) {
  // The 16-byte nibble LUT (popcounts of 0..15) repeated per 128-bit lane,
  // spelled as alternating little-endian 64-bit halves. (Avoids
  // _mm512_broadcast_i32x4, whose _mm512_undefined_epi32 argument trips
  // -Wmaybe-uninitialized in GCC's header under -Werror.)
  const __m512i lut = _mm512_set_epi64(
      0x0403030203020201ll, 0x0302020102010100ll, 0x0403030203020201ll,
      0x0302020102010100ll, 0x0403030203020201ll, 0x0302020102010100ll,
      0x0403030203020201ll, 0x0302020102010100ll);
  const __m512i low = _mm512_set1_epi8(0x0f);
  const __m512i lo = _mm512_and_si512(v, low);
  const __m512i hi = _mm512_and_si512(_mm512_srli_epi16(v, 4), low);
  const __m512i counts = _mm512_add_epi8(_mm512_shuffle_epi8(lut, lo),
                                         _mm512_shuffle_epi8(lut, hi));
  return _mm512_sad_epu8(counts, _mm512_setzero_si512());
}
#else
/// Native per-64-bit-lane popcount (AVX512VPOPCNTDQ vpopcntq).
inline __m512i popcnt_words512(__m512i v) { return _mm512_popcnt_epi64(v); }
#endif

inline void gemm_row_chunk(const std::uint64_t* pp, const std::uint64_t* mm,
                           const PackedActivations& a, int c0, int n,
                           std::int32_t* sbuf) {
  int i = 0;
  for (; i + 8 <= n; i += 8) {  // eight columns per step
    __m512i hiv = _mm512_setzero_si512();
    __m512i lov = _mm512_setzero_si512();
    for (int w = 0; w < a.words; ++w) {
      const std::size_t base = static_cast<std::size_t>(w) * a.cols +
                               static_cast<std::size_t>(c0 + i);
      const __m512i v1 = _mm512_loadu_si512(a.hi.data() + base);
      const __m512i v0 = _mm512_loadu_si512(a.lo.data() + base);
      const __m512i p = _mm512_set1_epi64(static_cast<long long>(pp[w]));
      const __m512i m = _mm512_set1_epi64(static_cast<long long>(mm[w]));
      hiv = _mm512_add_epi64(hiv, popcnt_words512(_mm512_and_si512(p, v1)));
      hiv = _mm512_sub_epi64(hiv, popcnt_words512(_mm512_and_si512(m, v1)));
      lov = _mm512_add_epi64(lov, popcnt_words512(_mm512_and_si512(p, v0)));
      lov = _mm512_sub_epi64(lov, popcnt_words512(_mm512_and_si512(m, v0)));
    }
    const __m512i s =
        _mm512_add_epi64(_mm512_add_epi64(hiv, hiv), lov);
    alignas(64) std::int64_t lanes[8];
    _mm512_store_si512(lanes, s);
    for (int j = 0; j < 8; ++j) {
      sbuf[i + j] = static_cast<std::int32_t>(lanes[j]);
    }
  }
  for (; i < n; ++i) {  // scalar column tail (< 8 columns)
    std::int64_t hi = 0;
    std::int64_t lo = 0;
    for (int w = 0; w < a.words; ++w) {
      const std::size_t at = static_cast<std::size_t>(w) * a.cols +
                             static_cast<std::size_t>(c0 + i);
      hi += __builtin_popcountll(pp[w] & a.hi[at]) -
            __builtin_popcountll(mm[w] & a.hi[at]);
      lo += __builtin_popcountll(pp[w] & a.lo[at]) -
            __builtin_popcountll(mm[w] & a.lo[at]);
    }
    sbuf[i] = static_cast<std::int32_t>(2 * hi + lo);
  }
}

#else
#error "ADAPEX_P_LEVEL must be 0..3"
#endif

// ------------------------------------------------------------- GEMM + store

/// Fused epilogue over one row chunk of raw sums. The same float operation
/// sequence in every tier, built only from exact IEEE ops (mul, add, div,
/// min/max, compares — packed.cpp is compiled with -ffp-contract=off), so
/// the compiler's auto-vectorization of these loops cannot change a single
/// bit of the result. The quantize mapping counts thresholds instead of
/// calling lround: for v in [0, levels] with every threshold j+0.5 exactly
/// representable, sum_j (v >= j+0.5) IS lround(v) — same integers, no libm
/// call per element (which dominated the epilogue), and vectorizable.
inline void store_chunk(const Epilogue& e, int r, int c0, int n,
                        const std::int32_t* s) {
  const std::size_t base = static_cast<std::size_t>(r) * e.row_stride +
                           static_cast<std::size_t>(c0) * e.col_stride;
  const std::size_t cs = e.col_stride;
  switch (e.mode) {
    case Epilogue::Mode::kInt32: {
      std::int32_t* dst = e.s32 + base;
      for (int i = 0; i < n; ++i) dst[static_cast<std::size_t>(i) * cs] = s[i];
      return;
    }
    case Epilogue::Mode::kQuantize: {
      const float scale = e.scale[r];
      const float bias = e.bias[r];
      const float act = e.act_scale;
      std::uint8_t* dst = e.codes + base;
      if (e.act_levels == 3 && cs == 1) {  // the W2A2 hot path, vectorized
        for (int i = 0; i < n; ++i) {
          const float z = scale * static_cast<float>(s[i]) + bias;
          const float clamped = z < 0.0f ? 0.0f : (z > act ? act : z);
          const float v = clamped / act * 3.0f;
          dst[i] = static_cast<std::uint8_t>(
              (v >= 0.5f ? 1 : 0) + (v >= 1.5f ? 1 : 0) + (v >= 2.5f ? 1 : 0));
        }
        return;
      }
      const float levels = static_cast<float>(e.act_levels);
      for (int i = 0; i < n; ++i) {
        const float z = scale * static_cast<float>(s[i]) + bias;
        const float clamped = z < 0.0f ? 0.0f : (z > act ? act : z);
        const float v = clamped / act * levels;
        std::uint8_t code = 0;
        for (int j = 0; j < e.act_levels; ++j) {
          code = static_cast<std::uint8_t>(
              code + (v >= static_cast<float>(j) + 0.5f ? 1 : 0));
        }
        dst[static_cast<std::size_t>(i) * cs] = code;
      }
      return;
    }
    case Epilogue::Mode::kLogits: {
      const float scale = e.scale[r];
      const float bias = e.bias != nullptr ? e.bias[r] : 0.0f;
      const bool add_bias = e.bias != nullptr;
      float* dst = e.logits + base;
      for (int i = 0; i < n; ++i) {
        float z = scale * static_cast<float>(s[i]);
        if (add_bias) z += bias;
        dst[static_cast<std::size_t>(i) * cs] = z;
      }
      return;
    }
  }
}

/// Tier entry point: rows stream over the (small, cache-resident) weight
/// planes; each row's columns are processed in kGemmChunk blocks by the
/// level's column-vectorized core, then the float epilogue runs over the
/// staged sums as a separate vectorizable pass. Conv outputs
/// (row_stride = cols) store contiguously.
void tier_popcount_gemm(const PackedWeights& w, const PackedActivations& a,
                        const Epilogue& e) {
  std::int32_t sbuf[kGemmChunk];
  const int words = w.words;
  for (int r = 0; r < w.rows; ++r) {
    const std::uint64_t* pp =
        w.plus.data() + static_cast<std::size_t>(r) * words;
    const std::uint64_t* mm =
        w.minus.data() + static_cast<std::size_t>(r) * words;
    for (int c0 = 0; c0 < a.cols; c0 += kGemmChunk) {
      const int n = std::min(kGemmChunk, a.cols - c0);
      gemm_row_chunk(pp, mm, a, c0, n, sbuf);
      store_chunk(e, r, c0, n, sbuf);
    }
  }
}
