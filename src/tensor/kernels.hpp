// Blocked, vectorized GEMM micro-kernels with fused epilogues.
//
// This is the performance layer under tensor/ops.hpp: cache-blocked,
// register-tiled GEMM kernels with B-panel packing and a j-vectorized inner
// loop (compiler auto-vectorization over contiguous output columns). The
// implementation is compiled three times — SSE2 baseline, AVX2, AVX-512 —
// and the widest variant the host supports is selected once at runtime, so
// default (non -march=native) builds still use wide vectors.
//
// Determinism contract (see DESIGN.md "Kernel layer"): every kernel performs
//, per output element, exactly the same sequence of float operations as the
// naive reference implementation in kernels::ref —
//   * gemm_accumulate / gemm_at_b_accumulate: the element's running value
//     lives in C; products are added in ascending-k order; terms whose A
//     operand is exactly 0.0f are skipped.
//   * gemm_a_bt_accumulate: a fresh accumulator starts at 0, sums products
//     in ascending-k order with no zero skip, and is added to C once.
// Blocking/tiling only regroups *independent* output elements (i/j), never
// the per-element reduction, and the translation unit is built with
// -ffp-contract=off so no variant fuses multiply+add. Results are therefore
// byte-identical to the reference at any block size, vector width, and
// thread count.
//
// Because the orders are identical, dispatch is free to pick whichever
// implementation is faster per call: the direct kernels fall back to the
// scalar reference form when N is narrower than one sliver or when A is
// mostly exact zeros (pruned/quantized weights), where the naive zero-skip
// beats packing. ADAPEX_KERNEL_MIN_DENSITY overrides the measured density
// crossover (0 = always blocked, >1 = always scalar) for tuning. The choice
// never changes the output bytes.

#pragma once

#include <cstddef>

namespace adapex::kernels {

/// Optional activation fused into the final store of a forward GEMM.
enum class Epilogue {
  kNone,
  kRelu,  ///< out = max(0, out), applied after the full k reduction.
};

/// C[M,N] += A[M,K] * B[K,N]. Blocked i-k-j kernel; skips terms where the A
/// operand is exactly zero (quantized weights are often exact zeros).
void gemm_accumulate(const float* a, const float* b, float* c, int m, int k,
                     int n);

/// gemm_accumulate with a fused bias/activation epilogue: equivalent to
/// filling row i of C with row_bias[i] (when row_bias != nullptr), running
/// gemm_accumulate, then applying the epilogue — without the extra passes.
/// When row_bias == nullptr, C's existing contents seed the accumulation.
void gemm_bias_accumulate(const float* a, const float* b,
                          const float* row_bias, float* c, int m, int k, int n,
                          Epilogue epilogue);

/// C[M,N] += A^T[M,K] * B[K,N] where A is stored [K,M]. Same per-element
/// semantics as gemm_accumulate (ascending k, zero skip); implemented as a
/// one-time packed transpose of A followed by the blocked i-k-j kernel, so
/// the reduction order is unchanged.
void gemm_at_b_accumulate(const float* a, const float* b, float* c, int m,
                          int k, int n);

/// C[M,N] += A[M,K] * B^T[K,N] where B is stored [N,K] (row dot products).
/// Each element's accumulator starts at zero, sums in ascending-k order
/// without a zero skip, and is added to C once — exactly the reference
/// reduction — vectorized across independent output columns via a packed
/// transpose of the B panel.
void gemm_a_bt_accumulate(const float* a, const float* b, float* c, int m,
                          int k, int n);

/// gemm_a_bt_accumulate with a fused column-bias/activation epilogue:
/// out[i][j] = epilogue(col_bias[j] + dot) when col_bias != nullptr
/// (overwrites C), else epilogue(C[i][j] + dot).
void gemm_a_bt_bias(const float* a, const float* b, const float* col_bias,
                    float* c, int m, int k, int n, Epilogue epilogue);

/// Name of the dispatched implementation: "avx512", "avx2", or "sse2".
const char* active_isa();

/// Forces a specific implementation tier ("avx512" | "avx2" | "sse2"), e.g.
/// to verify cross-tier byte-identity in tests. Throws ConfigError when the
/// name is unknown or the host lacks the ISA. Not thread-safe: call only
/// while no kernel is running. The ADAPEX_KERNEL_ISA environment variable
/// applies the same override at first use.
void force_isa(const char* name);

/// Naive reference kernels — the exact pre-blocking implementations, kept
/// for differential tests and benchmark baselines.
namespace ref {

void gemm_accumulate(const float* a, const float* b, float* c, int m, int k,
                     int n);
void gemm_at_b_accumulate(const float* a, const float* b, float* c, int m,
                          int k, int n);
void gemm_a_bt_accumulate(const float* a, const float* b, float* c, int m,
                          int k, int n);

}  // namespace ref

}  // namespace adapex::kernels
