// Bit-plane-packed W2A2 operands and the popcount-accumulation GEMM.
//
// This is the integer fast path under the float kernel layer
// (tensor/kernels.hpp): once a W2A2 model is frozen (nn/quant.hpp
// freeze_packed), its ternary weights and 2-bit activation codes stop being
// floats entirely. Each 64-bit word carries 64 lanes of one bit plane:
//
//   weights   w in {-1, 0, +1}  ->  plus plane P (bit = w == +1)
//                                   minus plane M (bit = w == -1)
//   act codes a in {0, 1, 2, 3} ->  lo plane L0 (bit 0 of a)
//                                   hi plane L1 (bit 1 of a)
//
// The reduction along K then collapses to AND + popcount: with
// a = 2*hi + lo and w = P - M (per lane),
//
//   S = sum_k w_k * a_k
//     = 2*(popcnt(P & L1) - popcnt(M & L1))
//       + (popcnt(P & L0) - popcnt(M & L0))
//
// i.e. 4 ANDs + 4 popcounts per 64-bit word stand in for 64 multiply-adds.
// S is an exact integer, so every ISA tier produces bitwise-identical
// results by construction — there is no float reduction order to preserve.
// The fused epilogues (bias + clamp/quantize, mirroring the kernel layer's
// bias/ReLU fusion) are the only float math, applied once per output
// element in a fixed per-element order (this translation unit is built with
// -ffp-contract=off like kernels.cpp), so they too are tier-invariant.
//
// Tiers: "scalar" (hardware popcnt via __builtin_popcountll), "avx2"
// (vpshufb nibble-LUT popcount + vpsadbw), "avx512" (the same algorithm on
// 512-bit registers, gated on AVX-512BW/VL), and "avx512vp" (native
// vpopcntq, gated on AVX512VPOPCNTDQ). Selection follows the kernel layer's
// pattern: widest supported tier at startup, ADAPEX_PACKED_ISA env
// override, force_isa() for tests.
//
// Lanes beyond K in the last word are zero in every plane (pack_* zeroes
// them; pruned channel counts make non-multiple-of-64 K the common case),
// so the AND masks them out with no per-word tail logic.

#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace adapex::packed {

/// Number of 64-bit plane words covering a K-long reduction.
inline int plane_words(int k) { return (k + 63) / 64; }

/// Ternary weights, bit-plane packed row-major: row r's planes occupy words
/// [r*words, (r+1)*words).
struct PackedWeights {
  int rows = 0;   ///< Output channels / features.
  int k = 0;      ///< Logical reduction length.
  int words = 0;  ///< plane_words(k).
  std::vector<std::uint64_t> plus;   ///< [rows * words], bit = weight +1.
  std::vector<std::uint64_t> minus;  ///< [rows * words], bit = weight -1.
};

/// 2-bit activation codes, bit-plane packed word-major over the GEMM's
/// N dimension: plane word w of column c lives at [w*cols + c], so the
/// same-word planes of consecutive columns are contiguous. That is what
/// the SIMD tiers vectorize over — a broadcast weight word against 4/8
/// columns per step — which keeps them effective at the small word counts
/// (k = 144..576 -> 3..9 words) real CNV layers produce; a column-major
/// layout would leave those reductions to the scalar tail.
struct PackedActivations {
  int cols = 0;   ///< Output pixels (conv) or batch rows (linear).
  int k = 0;      ///< Logical reduction length (must match the weights').
  int words = 0;  ///< plane_words(k).
  std::vector<std::uint64_t> lo;  ///< [words * cols], bit 0 of the code.
  std::vector<std::uint64_t> hi;  ///< [words * cols], bit 1 of the code.
};

/// Packs ternary weight codes (row-major [rows, k], values -1/0/+1) into
/// bit planes. Tail lanes of the last word are zeroed.
void pack_weights(const std::int8_t* codes, int rows, int k,
                  PackedWeights& out);

/// Inverse of pack_weights (round-trip tests): codes must hold rows*k.
void unpack_weights(const PackedWeights& w, std::int8_t* codes);

/// Packs 2-bit activation codes (row-major [cols, k], values 0..3) into bit
/// planes — the linear-layer layout where each batch row is one column of
/// the packed GEMM. Tail lanes are zeroed.
void pack_activations(const std::uint8_t* codes, int cols, int k,
                      PackedActivations& out);

/// Inverse of pack_activations (round-trip tests): codes must hold cols*k.
void unpack_activations(const PackedActivations& a, std::uint8_t* codes);

/// Fused im2col + packing for one image of activation codes [C, H, W]:
/// output column p = (y, x) holds the K = C*kernel*kernel patch codes in
/// the same (c, ky, kx) order as ops::im2col flattens weights, packed into
/// bit planes. Stride 1, no padding (the CNV topology).
void pack_activations_im2col(const std::uint8_t* codes, int channels,
                             int height, int width, int kernel,
                             PackedActivations& out);

/// What the fused epilogue does with the exact integer sum S of each output
/// element (row r = out channel, column c = pixel / batch row).
struct Epilogue {
  enum class Mode {
    kInt32,     ///< Store raw S into `s32` (differential tests).
    kQuantize,  ///< z = scale[r]*S + bias[r]; store the 2-bit act code of z.
    kLogits,    ///< Store scale[r]*S + (bias ? bias[r] : 0) as a float.
  };
  Mode mode = Mode::kInt32;
  const float* scale = nullptr;  ///< Per-row A (folded alpha*cs*BN gain).
  const float* bias = nullptr;   ///< Per-row B (folded BN shift); may be null.
  float act_scale = 1.0f;        ///< kQuantize: the consuming ActQuant scale.
  int act_levels = 3;            ///< kQuantize: (1 << bits) - 1.
  std::int32_t* s32 = nullptr;   ///< kInt32 destination.
  std::uint8_t* codes = nullptr; ///< kQuantize destination.
  float* logits = nullptr;       ///< kLogits destination.
  /// Destination strides: element (r, c) lands at r*row_stride +
  /// c*col_stride. Conv uses (cols, 1); linear uses (1, rows) so the output
  /// comes out batch-major without a separate transpose pass.
  std::size_t row_stride = 0;
  std::size_t col_stride = 1;
};

/// The popcount GEMM: for every (row, column) pair computes the exact
/// integer dot product S over the packed planes and applies the fused
/// epilogue. weights.k must equal acts.k.
void popcount_gemm(const PackedWeights& weights, const PackedActivations& acts,
                   const Epilogue& epilogue);

/// Name of the dispatched tier: "avx512vp", "avx512", "avx2", or "scalar".
const char* active_isa();

/// Forces a tier ("avx512vp" | "avx512" | "avx2" | "scalar"), e.g. to
/// verify cross-tier byte-identity in tests. Throws ConfigError when the
/// name is unknown or the host lacks the ISA. Not thread-safe: call only
/// while no packed GEMM is running. The ADAPEX_PACKED_ISA environment
/// variable applies the same override at first use.
void force_isa(const char* name);

}  // namespace adapex::packed
