// Bit-plane packing + popcount-GEMM dispatch (see packed.hpp for the
// layout and the popcount identity; packed_core.inl for the tier bodies).
//
// Mirrors the float kernel layer's dispatch (tensor/kernels.cpp): the tier
// bodies are compiled under `#pragma GCC target` regions, the widest tier
// the host CPU supports is picked once at startup, ADAPEX_PACKED_ISA
// overrides it, and force_isa() re-pins it for tests. Unlike the float
// kernels there is no determinism contract to uphold across tiers — the
// reduction is an exact integer, identical everywhere by construction.

#include "tensor/packed.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/error.hpp"

#if defined(__GNUC__) && defined(__x86_64__)
#include <immintrin.h>
#define ADAPEX_P_MULTIVERSION 1
#endif

namespace adapex::packed {

// ------------------------------------------------------------------ packing

void pack_weights(const std::int8_t* codes, int rows, int k,
                  PackedWeights& out) {
  ADAPEX_CHECK(rows > 0 && k > 0, "pack_weights: empty operand");
  out.rows = rows;
  out.k = k;
  out.words = plane_words(k);
  const std::size_t total = static_cast<std::size_t>(rows) * out.words;
  out.plus.assign(total, 0);
  out.minus.assign(total, 0);
  for (int r = 0; r < rows; ++r) {
    const std::int8_t* src = codes + static_cast<std::size_t>(r) * k;
    std::uint64_t* plus = out.plus.data() +
                          static_cast<std::size_t>(r) * out.words;
    std::uint64_t* minus = out.minus.data() +
                           static_cast<std::size_t>(r) * out.words;
    for (int i = 0; i < k; ++i) {
      ADAPEX_DCHECK(src[i] >= -1 && src[i] <= 1,
                    "pack_weights: code out of ternary range");
      const std::uint64_t bit = 1ull << (i & 63);
      if (src[i] > 0) {
        plus[i >> 6] |= bit;
      } else if (src[i] < 0) {
        minus[i >> 6] |= bit;
      }
    }
  }
}

void unpack_weights(const PackedWeights& w, std::int8_t* codes) {
  for (int r = 0; r < w.rows; ++r) {
    const std::uint64_t* plus =
        w.plus.data() + static_cast<std::size_t>(r) * w.words;
    const std::uint64_t* minus =
        w.minus.data() + static_cast<std::size_t>(r) * w.words;
    std::int8_t* dst = codes + static_cast<std::size_t>(r) * w.k;
    for (int i = 0; i < w.k; ++i) {
      const std::uint64_t bit = 1ull << (i & 63);
      dst[i] = (plus[i >> 6] & bit) != 0   ? std::int8_t{1}
               : (minus[i >> 6] & bit) != 0 ? std::int8_t{-1}
                                            : std::int8_t{0};
    }
  }
}

namespace {

void size_activations(PackedActivations& out, int cols, int k) {
  out.cols = cols;
  out.k = k;
  out.words = plane_words(k);
  const std::size_t total = static_cast<std::size_t>(cols) * out.words;
  out.lo.assign(total, 0);
  out.hi.assign(total, 0);
}

/// Gathers the LSB of each of 8 bytes into bits 0..7 (byte j -> bit j):
/// the multiply sums shifted copies of the byte-lane bits so that lane j
/// lands at bit 56+j, pairing each (j, m) with j+m = 7 uniquely.
inline std::uint64_t gather_byte_lsbs(std::uint64_t x) {
  return ((x & 0x0101010101010101ull) * 0x0102040810204080ull) >> 56;
}

/// Packs one k-length run of 2-bit codes into its lo/hi plane words; word
/// w is stored at lo[w*stride] / hi[w*stride] (stride = cols for the
/// word-major activation layout). Branchless (random codes make
/// per-element branches mispredict ~50% of the time, which made the old
/// bit-at-a-time loop ~10x slower than the popcount GEMM it feeds) and 8
/// codes per step via the multiply-gather.
void pack_code_run(const std::uint8_t* src, int k, std::uint64_t* lo,
                   std::uint64_t* hi, std::size_t stride) {
  const int words = plane_words(k);
  for (int w = 0; w < words; ++w) {
    const int base = w * 64;
    const int nbits = std::min(64, k - base);
    std::uint64_t lo_w = 0;
    std::uint64_t hi_w = 0;
    int b = 0;
    for (; b + 8 <= nbits; b += 8) {
      std::uint64_t x;
      std::memcpy(&x, src + base + b, 8);
      lo_w |= gather_byte_lsbs(x) << b;
      hi_w |= gather_byte_lsbs(x >> 1) << b;
    }
    for (; b < nbits; ++b) {
      const std::uint64_t code = src[base + b];
      lo_w |= (code & 1u) << b;
      hi_w |= ((code >> 1) & 1u) << b;
    }
    lo[static_cast<std::size_t>(w) * stride] = lo_w;
    hi[static_cast<std::size_t>(w) * stride] = hi_w;
  }
}

}  // namespace

void pack_activations(const std::uint8_t* codes, int cols, int k,
                      PackedActivations& out) {
  ADAPEX_CHECK(cols > 0 && k > 0, "pack_activations: empty operand");
  size_activations(out, cols, k);
  for (int c = 0; c < cols; ++c) {
    const std::uint8_t* src = codes + static_cast<std::size_t>(c) * k;
#ifndef NDEBUG
    for (int i = 0; i < k; ++i) {
      ADAPEX_DCHECK(src[i] <= 3, "pack_activations: code out of 2-bit range");
    }
#endif
    pack_code_run(src, k, out.lo.data() + c, out.hi.data() + c,
                  static_cast<std::size_t>(cols));
  }
}

void unpack_activations(const PackedActivations& a, std::uint8_t* codes) {
  for (int c = 0; c < a.cols; ++c) {
    std::uint8_t* dst = codes + static_cast<std::size_t>(c) * a.k;
    for (int i = 0; i < a.k; ++i) {
      const std::uint64_t bit = 1ull << (i & 63);
      const std::size_t at =
          static_cast<std::size_t>(i >> 6) * a.cols + static_cast<std::size_t>(c);
      dst[i] = static_cast<std::uint8_t>(((a.lo[at] & bit) != 0 ? 1u : 0u) |
                                         ((a.hi[at] & bit) != 0 ? 2u : 0u));
    }
  }
}

void pack_activations_im2col(const std::uint8_t* codes, int channels,
                             int height, int width, int kernel,
                             PackedActivations& out) {
  ADAPEX_CHECK(channels > 0 && kernel >= 1 && height >= kernel &&
                   width >= kernel,
               "pack_activations_im2col: invalid geometry");
  const int oh = height - kernel + 1;
  const int ow = width - kernel + 1;
  const int cols = oh * ow;
  const int k = channels * kernel * kernel;
  size_activations(out, cols, k);
  // Same patch flattening as ops::im2col: reduction index (c, ky, kx)
  // ascending — the order pack_weights sees a [F, C, k, k] weight row in.
  // Each output pixel's patch is gathered into a contiguous code run
  // (kernel-length rows are contiguous in the source plane) and packed
  // with the branchless run packer; the old transposed loop set one bit
  // per element through strided read-modify-writes. The gather is on the
  // per-image hot path, so the 3x3 case stores its three bytes manually
  // (a runtime-length memcpy per (pixel, channel, ky) — tens of thousands
  // of 3-byte library calls per image — cost more than the packing), and
  // the patch buffer persists across calls.
  static thread_local std::vector<std::uint8_t> patch;
  patch.resize(static_cast<std::size_t>(k));
  int p = 0;
  for (int y = 0; y < oh; ++y) {
    for (int x = 0; x < ow; ++x, ++p) {
      std::uint8_t* dst = patch.data();
      for (int c = 0; c < channels; ++c) {
        const std::uint8_t* plane =
            codes + (static_cast<std::size_t>(c) * height + y) * width + x;
        if (kernel == 3) {
          const std::uint8_t* r0 = plane;
          const std::uint8_t* r1 = plane + width;
          const std::uint8_t* r2 = plane + 2 * static_cast<std::size_t>(width);
          dst[0] = r0[0];
          dst[1] = r0[1];
          dst[2] = r0[2];
          dst[3] = r1[0];
          dst[4] = r1[1];
          dst[5] = r1[2];
          dst[6] = r2[0];
          dst[7] = r2[1];
          dst[8] = r2[2];
          dst += 9;
        } else {
          for (int ky = 0; ky < kernel; ++ky) {
            std::memcpy(dst, plane + static_cast<std::size_t>(ky) * width,
                        static_cast<std::size_t>(kernel));
            dst += kernel;
          }
        }
      }
      pack_code_run(patch.data(), k, out.lo.data() + p, out.hi.data() + p,
                    static_cast<std::size_t>(cols));
    }
  }
}

// ---------------------------------------------------------------- ISA tiers

namespace scalar {
#define ADAPEX_P_LEVEL 0
#include "tensor/packed_core.inl"
#undef ADAPEX_P_LEVEL
}  // namespace scalar

#ifdef ADAPEX_P_MULTIVERSION
#pragma GCC push_options
#pragma GCC target("avx2")
namespace avx2 {
#define ADAPEX_P_LEVEL 1
#include "tensor/packed_core.inl"
#undef ADAPEX_P_LEVEL
}  // namespace avx2
#pragma GCC pop_options

#pragma GCC push_options
#pragma GCC target("avx512f,avx512bw,avx512vl,avx512dq")
namespace avx512 {
#define ADAPEX_P_LEVEL 2
#include "tensor/packed_core.inl"
#undef ADAPEX_P_LEVEL
}  // namespace avx512
#pragma GCC pop_options

#pragma GCC push_options
#pragma GCC target("avx512f,avx512bw,avx512vl,avx512dq,avx512vpopcntdq")
namespace avx512vp {
#define ADAPEX_P_LEVEL 3
#include "tensor/packed_core.inl"
#undef ADAPEX_P_LEVEL
}  // namespace avx512vp
#pragma GCC pop_options
#endif  // ADAPEX_P_MULTIVERSION

// ----------------------------------------------------------------- dispatch

namespace {

using GemmFn = void (*)(const PackedWeights&, const PackedActivations&,
                        const Epilogue&);

struct PackedTable {
  const char* name;
  GemmFn gemm;
};

constexpr PackedTable kScalarTable{"scalar", &scalar::tier_popcount_gemm};
#ifdef ADAPEX_P_MULTIVERSION
constexpr PackedTable kAvx2Table{"avx2", &avx2::tier_popcount_gemm};
constexpr PackedTable kAvx512Table{"avx512", &avx512::tier_popcount_gemm};
constexpr PackedTable kAvx512VpTable{"avx512vp",
                                     &avx512vp::tier_popcount_gemm};
#endif

bool host_supports(const std::string& name) {
  if (name == "scalar") return true;
#ifdef ADAPEX_P_MULTIVERSION
  if (name == "avx2") return __builtin_cpu_supports("avx2") != 0;
  if (name == "avx512") {
    return __builtin_cpu_supports("avx512f") != 0 &&
           __builtin_cpu_supports("avx512bw") != 0 &&
           __builtin_cpu_supports("avx512vl") != 0 &&
           __builtin_cpu_supports("avx512dq") != 0;
  }
  if (name == "avx512vp") {
    return host_supports("avx512") &&
           __builtin_cpu_supports("avx512vpopcntdq") != 0;
  }
#endif
  return false;
}

const PackedTable& table_for(const std::string& name) {
#ifdef ADAPEX_P_MULTIVERSION
  if (name == "avx512vp") return kAvx512VpTable;
  if (name == "avx512") return kAvx512Table;
  if (name == "avx2") return kAvx2Table;
#endif
  if (name == "scalar") return kScalarTable;
  throw ConfigError("unknown packed ISA '" + name +
                    "' (expected avx512vp|avx512|avx2|scalar)");
}

const PackedTable* select_table(const std::string& name) {
  if (!host_supports(name)) {
    throw ConfigError("packed ISA '" + name + "' not supported by this CPU");
  }
  return &table_for(name);
}

const PackedTable* initial_table() {
  if (const char* env = std::getenv("ADAPEX_PACKED_ISA");
      env != nullptr && *env != '\0') {
    return select_table(env);
  }
  for (const char* name : {"avx512vp", "avx512", "avx2"}) {
    if (host_supports(name)) return &table_for(name);
  }
  return &kScalarTable;
}

const PackedTable*& active_table() {
  static const PackedTable* table = initial_table();
  return table;
}

}  // namespace

const char* active_isa() { return active_table()->name; }

void force_isa(const char* name) {
  ADAPEX_CHECK(name != nullptr, "force_isa: null name");
  active_table() = select_table(name);
}

void popcount_gemm(const PackedWeights& weights, const PackedActivations& acts,
                   const Epilogue& epilogue) {
  ADAPEX_CHECK(weights.k == acts.k,
               "popcount_gemm: reduction length mismatch (" +
                   std::to_string(weights.k) + " vs " +
                   std::to_string(acts.k) + ")");
  active_table()->gemm(weights, acts, epilogue);
}

}  // namespace adapex::packed
