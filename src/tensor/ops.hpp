// Numeric kernels: GEMM, convolution (im2col-based), pooling, batch
// normalization, activations, softmax, and their backward passes.
//
// Forward/backward pairs implement exactly the math the nn layer graph needs
// for quantization-aware training. All kernels are single-threaded and
// deterministic; convolution is unpadded with stride 1 (the CNV topology the
// paper evaluates uses only 3x3 valid convolutions).
//
// The GEMMs route through the blocked, vectorized kernel layer in
// tensor/kernels.hpp, which is byte-identical to the naive references it
// replaced (see the determinism contract there and DESIGN.md "Kernel
// layer").

#pragma once

#include <vector>

#include "tensor/tensor.hpp"

namespace adapex::ops {

/// C[M,N] += A[M,K] * B[K,N]. C must be pre-sized; not zeroed here.
void gemm_accumulate(const float* a, const float* b, float* c, int m, int k,
                     int n);

/// C[M,N] += A^T[M,K] * B[K,N] where A is stored [K,M].
void gemm_at_b_accumulate(const float* a, const float* b, float* c, int m,
                          int k, int n);

/// C[M,N] += A[M,K] * B^T[K,N] where B is stored [N,K].
void gemm_a_bt_accumulate(const float* a, const float* b, float* c, int m,
                          int k, int n);

/// Output spatial size of an unpadded convolution/pool: floor((in-k)/s)+1.
int out_dim(int in, int kernel, int stride);

/// im2col for one image: input [C,H,W] -> col [C*kh*kw, oh*ow], stride 1,
/// no padding.
void im2col(const float* img, int channels, int height, int width, int kernel,
            float* col);

/// col2im scatter-accumulate (the adjoint of im2col).
void col2im_accumulate(const float* col, int channels, int height, int width,
                       int kernel, float* img);

/// Convolution forward. input [N,C,H,W], weight [F,C,k,k], bias [F] (may be
/// empty), output [N,F,oh,ow]. `col_scratch` must hold C*k*k*oh*ow floats.
/// With fuse_relu the ReLU is applied in the GEMM epilogue — bit-identical
/// to conv2d_forward followed by relu_forward, without the extra pass.
Tensor conv2d_forward(const Tensor& input, const Tensor& weight,
                      const Tensor& bias, std::vector<float>& col_scratch,
                      bool fuse_relu = false);

/// Convolution backward: fills grad_input (same shape as input), accumulates
/// into grad_weight/grad_bias. `col_scratch` as in conv2d_forward.
void conv2d_backward(const Tensor& input, const Tensor& weight,
                     const Tensor& grad_output, Tensor& grad_input,
                     Tensor& grad_weight, Tensor& grad_bias,
                     std::vector<float>& col_scratch);

/// Linear forward: input [N,In], weight [Out,In], bias [Out] -> [N,Out].
/// With fuse_relu the ReLU is applied in the GEMM epilogue — bit-identical
/// to linear_forward followed by relu_forward, without the extra pass.
Tensor linear_forward(const Tensor& input, const Tensor& weight,
                      const Tensor& bias, bool fuse_relu = false);

/// Linear backward.
void linear_backward(const Tensor& input, const Tensor& weight,
                     const Tensor& grad_output, Tensor& grad_input,
                     Tensor& grad_weight, Tensor& grad_bias);

/// Max-pool forward with kernel k and stride s; records argmax indices for
/// the backward pass (flat index into the input's HxW plane).
Tensor maxpool_forward(const Tensor& input, int kernel, int stride,
                       std::vector<int>& argmax);

/// Max-pool backward using recorded argmax indices.
Tensor maxpool_backward(const Tensor& input, const Tensor& grad_output,
                        int kernel, int stride, const std::vector<int>& argmax);

/// ReLU forward (elementwise max(0, x)).
Tensor relu_forward(const Tensor& input);

/// ReLU backward: passes gradient where input > 0.
Tensor relu_backward(const Tensor& input, const Tensor& grad_output);

/// Row-wise softmax of logits [N,K].
Tensor softmax(const Tensor& logits);

/// Mean cross-entropy loss of logits [N,K] against labels[N]; also returns
/// dLoss/dlogits in grad (same shape as logits), already divided by N.
double cross_entropy(const Tensor& logits, const std::vector<int>& labels,
                     Tensor& grad);

}  // namespace adapex::ops
