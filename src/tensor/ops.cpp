#include "tensor/ops.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>

#include "tensor/kernels.hpp"

namespace adapex::ops {

void gemm_accumulate(const float* a, const float* b, float* c, int m, int k,
                     int n) {
  kernels::gemm_accumulate(a, b, c, m, k, n);
}

void gemm_at_b_accumulate(const float* a, const float* b, float* c, int m,
                          int k, int n) {
  kernels::gemm_at_b_accumulate(a, b, c, m, k, n);
}

void gemm_a_bt_accumulate(const float* a, const float* b, float* c, int m,
                          int k, int n) {
  kernels::gemm_a_bt_accumulate(a, b, c, m, k, n);
}

int out_dim(int in, int kernel, int stride) {
  ADAPEX_CHECK(kernel >= 1 && stride >= 1 && in >= kernel,
               "invalid pooling/conv geometry");
  return (in - kernel) / stride + 1;
}

void im2col(const float* img, int channels, int height, int width, int kernel,
            float* col) {
  const int oh = height - kernel + 1;
  const int ow = width - kernel + 1;
  const std::size_t patch = static_cast<std::size_t>(oh) * ow;
  std::size_t row = 0;
  for (int c = 0; c < channels; ++c) {
    const float* plane = img + static_cast<std::size_t>(c) * height * width;
    for (int ky = 0; ky < kernel; ++ky) {
      for (int kx = 0; kx < kernel; ++kx) {
        float* dst = col + row * patch;
        for (int y = 0; y < oh; ++y) {
          const float* src = plane + static_cast<std::size_t>(y + ky) * width + kx;
          std::memcpy(dst + static_cast<std::size_t>(y) * ow, src,
                      static_cast<std::size_t>(ow) * sizeof(float));
        }
        ++row;
      }
    }
  }
}

void col2im_accumulate(const float* col, int channels, int height, int width,
                       int kernel, float* img) {
  const int oh = height - kernel + 1;
  const int ow = width - kernel + 1;
  const std::size_t patch = static_cast<std::size_t>(oh) * ow;
  std::size_t row = 0;
  for (int c = 0; c < channels; ++c) {
    float* plane = img + static_cast<std::size_t>(c) * height * width;
    for (int ky = 0; ky < kernel; ++ky) {
      for (int kx = 0; kx < kernel; ++kx) {
        const float* src = col + row * patch;
        for (int y = 0; y < oh; ++y) {
          float* dst = plane + static_cast<std::size_t>(y + ky) * width + kx;
          const float* s = src + static_cast<std::size_t>(y) * ow;
          for (int x = 0; x < ow; ++x) dst[x] += s[x];
        }
        ++row;
      }
    }
  }
}

Tensor conv2d_forward(const Tensor& input, const Tensor& weight,
                      const Tensor& bias, std::vector<float>& col_scratch,
                      bool fuse_relu) {
  ADAPEX_CHECK(input.ndim() == 4, "conv2d input must be [N,C,H,W]");
  ADAPEX_CHECK(weight.ndim() == 4, "conv2d weight must be [F,C,k,k]");
  const int batch = input.dim(0), cin = input.dim(1), h = input.dim(2),
            w = input.dim(3);
  const int fout = weight.dim(0), k = weight.dim(2);
  ADAPEX_CHECK(weight.dim(1) == cin, "conv2d channel mismatch: input has " +
                                         std::to_string(cin) + " channels");
  ADAPEX_CHECK(weight.dim(2) == weight.dim(3), "conv2d kernel must be square");
  const int oh = out_dim(h, k, 1), ow = out_dim(w, k, 1);
  const int kdim = cin * k * k;
  const std::size_t patch = static_cast<std::size_t>(oh) * ow;
  col_scratch.resize(static_cast<std::size_t>(kdim) * patch);

  Tensor out({batch, fout, oh, ow});
  const auto epilogue =
      fuse_relu ? kernels::Epilogue::kRelu : kernels::Epilogue::kNone;
  for (int n = 0; n < batch; ++n) {
    im2col(input.data() + static_cast<std::size_t>(n) * cin * h * w, cin, h, w,
           k, col_scratch.data());
    float* optr = out.data() + static_cast<std::size_t>(n) * fout * patch;
    // Bias broadcast and (optionally) ReLU are fused into the kernel's
    // accumulate/store instead of separate fill/activation passes.
    kernels::gemm_bias_accumulate(weight.data(), col_scratch.data(),
                                  bias.empty() ? nullptr : bias.data(), optr,
                                  fout, kdim, static_cast<int>(patch),
                                  epilogue);
  }
  return out;
}

void conv2d_backward(const Tensor& input, const Tensor& weight,
                     const Tensor& grad_output, Tensor& grad_input,
                     Tensor& grad_weight, Tensor& grad_bias,
                     std::vector<float>& col_scratch) {
  const int batch = input.dim(0), cin = input.dim(1), h = input.dim(2),
            w = input.dim(3);
  const int fout = weight.dim(0), k = weight.dim(2);
  const int oh = out_dim(h, k, 1), ow = out_dim(w, k, 1);
  const int kdim = cin * k * k;
  const std::size_t patch = static_cast<std::size_t>(oh) * ow;
  col_scratch.resize(static_cast<std::size_t>(kdim) * patch);
  // Reused across calls (thread_local keeps pool workers independent) so the
  // training hot loop does not allocate a fresh dcol buffer per image batch.
  thread_local std::vector<float> dcol;
  dcol.resize(static_cast<std::size_t>(kdim) * patch);

  grad_input = Tensor(input.shape());
  for (int n = 0; n < batch; ++n) {
    const float* img = input.data() + static_cast<std::size_t>(n) * cin * h * w;
    const float* dout =
        grad_output.data() + static_cast<std::size_t>(n) * fout * patch;
    // dW += dOut * col^T
    im2col(img, cin, h, w, k, col_scratch.data());
    kernels::gemm_a_bt_accumulate(dout, col_scratch.data(), grad_weight.data(),
                                  fout, static_cast<int>(patch), kdim);
    // dcol = W^T * dOut
    std::fill(dcol.begin(), dcol.end(), 0.0f);
    kernels::gemm_at_b_accumulate(weight.data(), dout, dcol.data(), kdim, fout,
                                  static_cast<int>(patch));
    col2im_accumulate(dcol.data(), cin, h, w, k,
                      grad_input.data() +
                          static_cast<std::size_t>(n) * cin * h * w);
    if (!grad_bias.empty()) {
      for (int f = 0; f < fout; ++f) {
        const float* drow = dout + static_cast<std::size_t>(f) * patch;
        float acc = 0.0f;
        for (std::size_t p = 0; p < patch; ++p) acc += drow[p];
        grad_bias[static_cast<std::size_t>(f)] += acc;
      }
    }
  }
}

Tensor linear_forward(const Tensor& input, const Tensor& weight,
                      const Tensor& bias, bool fuse_relu) {
  ADAPEX_CHECK(input.ndim() == 2, "linear input must be [N,In]");
  const int batch = input.dim(0), in = input.dim(1), out = weight.dim(0);
  ADAPEX_CHECK(weight.dim(1) == in,
               "linear weight expects " + std::to_string(weight.dim(1)) +
                   " inputs, got " + std::to_string(in));
  Tensor y({batch, out});
  // y = epilogue(bias + x * W^T): the bias broadcast (and optional ReLU) is
  // fused into the kernel's store instead of a separate fill pass.
  kernels::gemm_a_bt_bias(
      input.data(), weight.data(), bias.empty() ? nullptr : bias.data(),
      y.data(), batch, in, out,
      fuse_relu ? kernels::Epilogue::kRelu : kernels::Epilogue::kNone);
  return y;
}

void linear_backward(const Tensor& input, const Tensor& weight,
                     const Tensor& grad_output, Tensor& grad_input,
                     Tensor& grad_weight, Tensor& grad_bias) {
  const int batch = input.dim(0), in = input.dim(1), out = weight.dim(0);
  grad_input = Tensor(input.shape());
  // dX = dY * W
  kernels::gemm_accumulate(grad_output.data(), weight.data(),
                           grad_input.data(), batch, out, in);
  // dW += dY^T * X
  kernels::gemm_at_b_accumulate(grad_output.data(), input.data(),
                                grad_weight.data(), out, batch, in);
  if (!grad_bias.empty()) {
    for (int n = 0; n < batch; ++n) {
      for (int f = 0; f < out; ++f) {
        grad_bias[static_cast<std::size_t>(f)] += grad_output.at2(n, f);
      }
    }
  }
}

Tensor maxpool_forward(const Tensor& input, int kernel, int stride,
                       std::vector<int>& argmax) {
  const int batch = input.dim(0), ch = input.dim(1), h = input.dim(2),
            w = input.dim(3);
  const int oh = out_dim(h, kernel, stride), ow = out_dim(w, kernel, stride);
  Tensor out({batch, ch, oh, ow});
  argmax.assign(out.numel(), 0);
  std::size_t oi = 0;
  for (int n = 0; n < batch; ++n) {
    for (int c = 0; c < ch; ++c) {
      const float* plane =
          input.data() + (static_cast<std::size_t>(n) * ch + c) * h * w;
      if (kernel == 2 && stride == 2) {
        // Fast path for the pool shape the CNV topology uses everywhere:
        // hoist the two row pointers and the flat base index out of the
        // window scan. Same scan order ((ky,kx) ascending) and same strict
        // `>` compare against a -inf start as the generic path, so values
        // and argmax ties are bit-identical.
        for (int y = 0; y < oh; ++y) {
          const int iy0 = 2 * y;
          const float* r0 = plane + static_cast<std::size_t>(iy0) * w;
          const float* r1 = r0 + w;
          for (int x = 0; x < ow; ++x) {
            const int ix0 = 2 * x;
            const int base = iy0 * w + ix0;
            float best = -std::numeric_limits<float>::infinity();
            int best_idx = 0;
            if (r0[ix0] > best) { best = r0[ix0]; best_idx = base; }
            if (r0[ix0 + 1] > best) { best = r0[ix0 + 1]; best_idx = base + 1; }
            if (r1[ix0] > best) { best = r1[ix0]; best_idx = base + w; }
            if (r1[ix0 + 1] > best) {
              best = r1[ix0 + 1];
              best_idx = base + w + 1;
            }
            out[oi] = best;
            argmax[oi] = best_idx;
            ++oi;
          }
        }
        continue;
      }
      for (int y = 0; y < oh; ++y) {
        const int iy0 = y * stride;
        for (int x = 0; x < ow; ++x) {
          const int ix0 = x * stride;
          float best = -std::numeric_limits<float>::infinity();
          int best_idx = 0;
          const float* wrow = plane + static_cast<std::size_t>(iy0) * w + ix0;
          int rowbase = iy0 * w + ix0;
          for (int ky = 0; ky < kernel; ++ky) {
            for (int kx = 0; kx < kernel; ++kx) {
              if (wrow[kx] > best) {
                best = wrow[kx];
                best_idx = rowbase + kx;
              }
            }
            wrow += w;
            rowbase += w;
          }
          out[oi] = best;
          argmax[oi] = best_idx;
          ++oi;
        }
      }
    }
  }
  return out;
}

Tensor maxpool_backward(const Tensor& input, const Tensor& grad_output,
                        int kernel, int stride,
                        const std::vector<int>& argmax) {
  const int batch = input.dim(0), ch = input.dim(1), h = input.dim(2),
            w = input.dim(3);
  const int oh = out_dim(h, kernel, stride), ow = out_dim(w, kernel, stride);
  ADAPEX_ASSERT(argmax.size() == grad_output.numel());
  Tensor grad_input(input.shape());
  std::size_t oi = 0;
  for (int n = 0; n < batch; ++n) {
    for (int c = 0; c < ch; ++c) {
      float* plane =
          grad_input.data() + (static_cast<std::size_t>(n) * ch + c) * h * w;
      for (int i = 0; i < oh * ow; ++i, ++oi) {
        plane[argmax[oi]] += grad_output[oi];
      }
    }
  }
  return grad_input;
}

Tensor relu_forward(const Tensor& input) {
  Tensor out(input.shape());
  for (std::size_t i = 0; i < input.numel(); ++i) {
    out[i] = input[i] > 0.0f ? input[i] : 0.0f;
  }
  return out;
}

Tensor relu_backward(const Tensor& input, const Tensor& grad_output) {
  Tensor grad(input.shape());
  for (std::size_t i = 0; i < input.numel(); ++i) {
    grad[i] = input[i] > 0.0f ? grad_output[i] : 0.0f;
  }
  return grad;
}

Tensor softmax(const Tensor& logits) {
  ADAPEX_CHECK(logits.ndim() == 2, "softmax expects [N,K] logits");
  const int batch = logits.dim(0), k = logits.dim(1);
  Tensor out(logits.shape());
  for (int n = 0; n < batch; ++n) {
    float maxv = -std::numeric_limits<float>::infinity();
    for (int j = 0; j < k; ++j) maxv = std::max(maxv, logits.at2(n, j));
    double denom = 0.0;
    for (int j = 0; j < k; ++j) {
      const float e = std::exp(logits.at2(n, j) - maxv);
      out.at2(n, j) = e;
      denom += e;
    }
    const float inv = static_cast<float>(1.0 / denom);
    for (int j = 0; j < k; ++j) out.at2(n, j) *= inv;
  }
  return out;
}

double cross_entropy(const Tensor& logits, const std::vector<int>& labels,
                     Tensor& grad) {
  const int batch = logits.dim(0), k = logits.dim(1);
  ADAPEX_CHECK(static_cast<int>(labels.size()) == batch,
               "labels size must equal batch size");
  grad = softmax(logits);
  double loss = 0.0;
  const float invn = 1.0f / static_cast<float>(batch);
  for (int n = 0; n < batch; ++n) {
    const int y = labels[static_cast<std::size_t>(n)];
    ADAPEX_CHECK(y >= 0 && y < k, "label out of range");
    const float p = std::max(grad.at2(n, y), 1e-12f);
    loss -= std::log(p);
    grad.at2(n, y) -= 1.0f;
  }
  grad.scale_(invn);
  return loss / batch;
}

}  // namespace adapex::ops
