// Tier-generic body of the blocked GEMM kernels (see kernels.hpp for the
// semantics contract). Included by kernels.cpp once per ISA tier inside a
// `#pragma GCC target` region and a tier namespace; ADAPEX_K_NR must be
// defined to the sliver width (floats per C-tile row) before inclusion.
// Everything here is `static` so each tier gets its own copy, and the inner
// j-loops have constant trip counts so the auto-vectorizer keeps the
// accumulator tiles in vector registers.
//
// No include guard: this file is included multiple times on purpose.

// Register tile: kMR rows x kNR floats, held in vector registers across the
// whole k loop of a block. Each tier picks its own geometry (see
// kernels.cpp) sized to its register file.
static constexpr int kMR = ADAPEX_K_MR;
static constexpr int kNR = ADAPEX_K_NR;
// Cache blocking: the direct kernel packs B panels of kKC x kNC floats.
static constexpr int kKC = 256;
static constexpr int kNC = 512;

// ---------------------------------------------------------------------------
// Direct micro-kernels: C tile accumulates in ascending-k order, seeded from
// C (or from a per-row bias on the first k block), with the exact-zero skip
// on the A operand. Byte-identical to ref::gemm_accumulate per element.

static void micro_direct_tile(const float* a, int lda, const float* bp, float* c,
                          int ldc, int klen, const float* row_bias,
                          bool relu) {
  float acc[kMR][kNR];
  for (int r = 0; r < kMR; ++r) {
    if (row_bias != nullptr) {
      for (int j = 0; j < kNR; ++j) acc[r][j] = row_bias[r];
    } else {
      const float* crow = c + static_cast<std::size_t>(r) * ldc;
      for (int j = 0; j < kNR; ++j) acc[r][j] = crow[j];
    }
  }
  for (int kk = 0; kk < klen; ++kk) {
    const float* brow = bp + static_cast<std::size_t>(kk) * kNR;
    for (int r = 0; r < kMR; ++r) {
      const float av = a[static_cast<std::size_t>(r) * lda + kk];
      // Integer test for av == 0.0f (both signed zeros, never NaN): one
      // shl+jz instead of ucomiss+jp+je in the hottest branch.
      std::uint32_t abits;
      std::memcpy(&abits, &av, sizeof(abits));
      if ((abits << 1) == 0) continue;
      for (int j = 0; j < kNR; ++j) acc[r][j] += av * brow[j];
    }
  }
  for (int r = 0; r < kMR; ++r) {
    float* crow = c + static_cast<std::size_t>(r) * ldc;
    if (relu) {
      for (int j = 0; j < kNR; ++j) {
        crow[j] = acc[r][j] > 0.0f ? acc[r][j] : 0.0f;
      }
    } else {
      for (int j = 0; j < kNR; ++j) crow[j] = acc[r][j];
    }
  }
}

static void micro_direct1(const float* a, const float* bp, float* c, int klen,
                          const float* row_bias, bool relu) {
  float acc[kNR];
  if (row_bias != nullptr) {
    for (int j = 0; j < kNR; ++j) acc[j] = *row_bias;
  } else {
    for (int j = 0; j < kNR; ++j) acc[j] = c[j];
  }
  for (int kk = 0; kk < klen; ++kk) {
    const float av = a[kk];
    std::uint32_t abits;
    std::memcpy(&abits, &av, sizeof(abits));
    if ((abits << 1) == 0) continue;  // av == 0.0f, signed-zero exact
    const float* brow = bp + static_cast<std::size_t>(kk) * kNR;
    for (int j = 0; j < kNR; ++j) acc[j] += av * brow[j];
  }
  if (relu) {
    for (int j = 0; j < kNR; ++j) c[j] = acc[j] > 0.0f ? acc[j] : 0.0f;
  } else {
    for (int j = 0; j < kNR; ++j) c[j] = acc[j];
  }
}

// Blocked C[M,N] (+)= A[M,K] * B[K,N] with optional fused row bias (seeds
// the first k block instead of C) and ReLU on the final store. lda/ldb/ldc
// are row strides of A/B/C.
static void gemm_direct(const float* a, int lda, const float* b, int ldb,
                        const float* row_bias, float* c, int ldc, int m, int k,
                        int n, Epilogue epilogue) {
  if (m <= 0 || n <= 0) return;
  const bool relu = epilogue == Epilogue::kRelu;
  if (k <= 0) {
    // Degenerate reduction: the naive composition would fill the bias and
    // apply the activation with no products; mirror that.
    for (int i = 0; i < m; ++i) {
      float* crow = c + static_cast<std::size_t>(i) * ldc;
      for (int j = 0; j < n; ++j) {
        float v = row_bias != nullptr ? row_bias[i] : crow[j];
        if (relu) v = v > 0.0f ? v : 0.0f;
        crow[j] = v;
      }
    }
    return;
  }
  float* pack = pack_scratch(static_cast<std::size_t>(kKC) * kNC);
  for (int jc = 0; jc < n; jc += kNC) {
    const int nb = std::min(kNC, n - jc);
    const int nfull = nb - nb % kNR;
    const int slivers = nfull / kNR;
    for (int kc = 0; kc < k; kc += kKC) {
      const int kb = std::min(kKC, k - kc);
      const bool first = kc == 0;
      const bool last = kc + kb == k;
      // Pack the B panel as kNR-wide slivers so the micro-kernel streams
      // contiguous rows (values are only copied; numerics are untouched).
      for (int s = 0; s < slivers; ++s) {
        float* dst = pack + static_cast<std::size_t>(s) * kb * kNR;
        const float* src = b + static_cast<std::size_t>(kc) * ldb + jc +
                           static_cast<std::size_t>(s) * kNR;
        for (int kk = 0; kk < kb; ++kk) {
          std::memcpy(dst + static_cast<std::size_t>(kk) * kNR,
                      src + static_cast<std::size_t>(kk) * ldb,
                      sizeof(float) * kNR);
        }
      }
      for (int ir = 0; ir < m; ir += kMR) {
        const int rows = std::min(kMR, m - ir);
        const float* arow = a + static_cast<std::size_t>(ir) * lda + kc;
        float* crow = c + static_cast<std::size_t>(ir) * ldc + jc;
        const float* bias_rows =
            first && row_bias != nullptr ? row_bias + ir : nullptr;
        const bool tile_relu = last && relu;
        if (rows == kMR) {
          for (int s = 0; s < slivers; ++s) {
            micro_direct_tile(arow, lda, pack + static_cast<std::size_t>(s) * kb * kNR,
                          crow + static_cast<std::size_t>(s) * kNR, ldc, kb,
                          bias_rows, tile_relu);
          }
        } else {
          for (int r = 0; r < rows; ++r) {
            for (int s = 0; s < slivers; ++s) {
              micro_direct1(arow + static_cast<std::size_t>(r) * lda,
                            pack + static_cast<std::size_t>(s) * kb * kNR,
                            crow + static_cast<std::size_t>(r) * ldc +
                                static_cast<std::size_t>(s) * kNR,
                            kb, bias_rows != nullptr ? bias_rows + r : nullptr,
                            tile_relu);
            }
          }
        }
        // Column tail: same per-element reduction (bias seed, ascending k
        // with exact-zero skip, ReLU on the last block), walked in i-k-j
        // order so B streams row-wise instead of column-strided.
        for (int r = 0; r < rows; ++r) {
          const float* ar = arow + static_cast<std::size_t>(r) * lda;
          float* cr = crow + static_cast<std::size_t>(r) * ldc;
          if (bias_rows != nullptr) {
            for (int j = nfull; j < nb; ++j) cr[j] = bias_rows[r];
          }
          for (int kk = 0; kk < kb; ++kk) {
            const float av = ar[kk];
            if (av == 0.0f) continue;
            const float* brow =
                b + static_cast<std::size_t>(kc + kk) * ldb + jc;
            for (int j = nfull; j < nb; ++j) cr[j] += av * brow[j];
          }
          if (tile_relu) {
            for (int j = nfull; j < nb; ++j) {
              cr[j] = cr[j] > 0.0f ? cr[j] : 0.0f;
            }
          }
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Dot micro-kernels: fresh accumulators start at zero, sum the full k range
// in ascending order with no zero skip, then are combined with C (or a
// per-column bias) once. Byte-identical to ref::gemm_a_bt_accumulate.

static void micro_dot_tile(const float* a, int lda, const float* btp, float* c,
                       int ldc, int k, const float* col_bias, bool relu) {
  float acc[kMR][kNR];
  for (int r = 0; r < kMR; ++r) {
    for (int j = 0; j < kNR; ++j) acc[r][j] = 0.0f;
  }
  for (int kk = 0; kk < k; ++kk) {
    const float* brow = btp + static_cast<std::size_t>(kk) * kNR;
    for (int r = 0; r < kMR; ++r) {
      const float av = a[static_cast<std::size_t>(r) * lda + kk];
      for (int j = 0; j < kNR; ++j) acc[r][j] += av * brow[j];
    }
  }
  for (int r = 0; r < kMR; ++r) {
    float* crow = c + static_cast<std::size_t>(r) * ldc;
    for (int j = 0; j < kNR; ++j) {
      float v = col_bias != nullptr ? col_bias[j] + acc[r][j]
                                    : crow[j] + acc[r][j];
      if (relu) v = v > 0.0f ? v : 0.0f;
      crow[j] = v;
    }
  }
}

static void micro_dot1(const float* a, const float* btp, float* c, int k,
                       const float* col_bias, bool relu) {
  float acc[kNR];
  for (int j = 0; j < kNR; ++j) acc[j] = 0.0f;
  for (int kk = 0; kk < k; ++kk) {
    const float av = a[kk];
    const float* brow = btp + static_cast<std::size_t>(kk) * kNR;
    for (int j = 0; j < kNR; ++j) acc[j] += av * brow[j];
  }
  for (int j = 0; j < kNR; ++j) {
    float v = col_bias != nullptr ? col_bias[j] + acc[j] : c[j] + acc[j];
    if (relu) v = v > 0.0f ? v : 0.0f;
    c[j] = v;
  }
}

// Blocked C[M,N] (+)= A[M,K] * B^T with B stored [N,K], optional fused
// column bias (replaces the read of C) and ReLU on the final store.
static void gemm_dot(const float* a, int lda, const float* b, int ldb,
                     const float* col_bias, float* c, int ldc, int m, int k,
                     int n, Epilogue epilogue) {
  if (m <= 0 || n <= 0) return;
  const bool relu = epilogue == Epilogue::kRelu;
  if (k <= 0) {
    for (int i = 0; i < m; ++i) {
      float* crow = c + static_cast<std::size_t>(i) * ldc;
      for (int j = 0; j < n; ++j) {
        float v = (col_bias != nullptr ? col_bias[j] : crow[j]) + 0.0f;
        if (relu) v = v > 0.0f ? v : 0.0f;
        crow[j] = v;
      }
    }
    return;
  }
  const int nfull = n - n % kNR;
  float* btp = pack_scratch(static_cast<std::size_t>(k) * kNR);
  for (int js = 0; js < nfull; js += kNR) {
    // Packed transpose of kNR rows of B: btp[kk][j] = b[js + j][kk].
    for (int j = 0; j < kNR; ++j) {
      const float* brow = b + static_cast<std::size_t>(js + j) * ldb;
      for (int kk = 0; kk < k; ++kk) {
        btp[static_cast<std::size_t>(kk) * kNR + j] = brow[kk];
      }
    }
    const float* bias = col_bias != nullptr ? col_bias + js : nullptr;
    for (int ir = 0; ir < m; ir += kMR) {
      const int rows = std::min(kMR, m - ir);
      const float* arow = a + static_cast<std::size_t>(ir) * lda;
      float* crow = c + static_cast<std::size_t>(ir) * ldc + js;
      if (rows == kMR) {
        micro_dot_tile(arow, lda, btp, crow, ldc, k, bias, relu);
      } else {
        for (int r = 0; r < rows; ++r) {
          micro_dot1(arow + static_cast<std::size_t>(r) * lda, btp,
                     crow + static_cast<std::size_t>(r) * ldc, k, bias, relu);
        }
      }
    }
  }
  // Column tail: scalar dot products with the same reduction order.
  for (int i = 0; i < m; ++i) {
    const float* arow = a + static_cast<std::size_t>(i) * lda;
    float* crow = c + static_cast<std::size_t>(i) * ldc;
    for (int j = nfull; j < n; ++j) {
      const float* brow = b + static_cast<std::size_t>(j) * ldb;
      float acc = 0.0f;
      for (int kk = 0; kk < k; ++kk) acc += arow[kk] * brow[kk];
      float v = col_bias != nullptr ? col_bias[j] + acc : crow[j] + acc;
      if (relu) v = v > 0.0f ? v : 0.0f;
      crow[j] = v;
    }
  }
}

// Entry points for the dispatch table (see kernels.cpp).
static void tier_gemm_direct(const float* a, const float* b,
                             const float* row_bias, float* c, int m, int k,
                             int n, Epilogue epilogue) {
  gemm_direct(a, k, b, n, row_bias, c, n, m, k, n, epilogue);
}

static void tier_gemm_dot(const float* a, const float* b,
                          const float* col_bias, float* c, int m, int k, int n,
                          Epilogue epilogue) {
  gemm_dot(a, k, b, k, col_bias, c, n, m, k, n, epilogue);
}
