// Blocked GEMM kernel layer: ISA-tiered bodies + runtime dispatch.
//
// kernels_core.inl is compiled three times below — SSE2 (the x86-64
// baseline every build targets), AVX2, and AVX-512 — via `#pragma GCC
// target` regions, and the widest tier the host CPU supports is picked once
// at startup. All tiers perform identical float operations in identical
// per-element order (this translation unit is built with -ffp-contract=off,
// see src/CMakeLists.txt), so the dispatch choice never changes results —
// it only changes how many independent output columns one instruction
// covers.

#include "tensor/kernels.hpp"

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/error.hpp"

namespace adapex::kernels {

namespace {

/// Per-thread packing scratch, grown on demand and reused across calls so
/// the hot path never allocates. thread_local keeps the pool workers'
/// kernels independent.
float* pack_scratch(std::size_t floats) {
  thread_local std::vector<float> buf;
  if (buf.size() < floats) buf.resize(floats);
  return buf.data();
}

/// Per-thread scratch for the A^T repack of gemm_at_b_accumulate.
float* transpose_scratch(std::size_t floats) {
  thread_local std::vector<float> buf;
  if (buf.size() < floats) buf.resize(floats);
  return buf.data();
}

}  // namespace

// ---------------------------------------------------------------- ISA tiers

// Tile geometry per tier: kNR spans several native vectors per row so each
// A-element broadcast/zero-test is amortized over more multiply-adds; kMR is
// sized so the accumulator tile plus one packed-B row still fits the tier's
// register file (16 xmm/ymm, 32 zmm).
namespace sse2 {
#define ADAPEX_K_MR 6
#define ADAPEX_K_NR 8
#include "tensor/kernels_core.inl"
#undef ADAPEX_K_MR
#undef ADAPEX_K_NR
}  // namespace sse2

#if defined(__GNUC__) && defined(__x86_64__)
#define ADAPEX_K_MULTIVERSION 1
#pragma GCC push_options
#pragma GCC target("avx2")
namespace avx2 {
#define ADAPEX_K_MR 6
#define ADAPEX_K_NR 16
#include "tensor/kernels_core.inl"
#undef ADAPEX_K_MR
#undef ADAPEX_K_NR
}  // namespace avx2
#pragma GCC pop_options

#pragma GCC push_options
#pragma GCC target("avx512f,avx512vl,avx512bw,avx512dq")
namespace avx512 {
#define ADAPEX_K_MR 4
#define ADAPEX_K_NR 64
#include "tensor/kernels_core.inl"
#undef ADAPEX_K_MR
#undef ADAPEX_K_NR
}  // namespace avx512
#pragma GCC pop_options
#endif  // ADAPEX_K_MULTIVERSION

// ----------------------------------------------------------------- dispatch

namespace {

using GemmDirectFn = void (*)(const float*, const float*, const float*,
                              float*, int, int, int, Epilogue);
using GemmDotFn = void (*)(const float*, const float*, const float*, float*,
                           int, int, int, Epilogue);

struct KernelTable {
  const char* name;
  GemmDirectFn direct;
  GemmDotFn dot;
  int nr;  // sliver width: columns below this run in the scalar tail
};

constexpr KernelTable kSse2Table{"sse2", &sse2::tier_gemm_direct,
                                 &sse2::tier_gemm_dot, sse2::kNR};
#ifdef ADAPEX_K_MULTIVERSION
constexpr KernelTable kAvx2Table{"avx2", &avx2::tier_gemm_direct,
                                 &avx2::tier_gemm_dot, avx2::kNR};
constexpr KernelTable kAvx512Table{"avx512", &avx512::tier_gemm_direct,
                                   &avx512::tier_gemm_dot, avx512::kNR};
#endif

bool host_supports(const std::string& name) {
  if (name == "sse2") return true;
#ifdef ADAPEX_K_MULTIVERSION
  if (name == "avx2") return __builtin_cpu_supports("avx2") != 0;
  if (name == "avx512") {
    return __builtin_cpu_supports("avx512f") != 0 &&
           __builtin_cpu_supports("avx512vl") != 0 &&
           __builtin_cpu_supports("avx512bw") != 0 &&
           __builtin_cpu_supports("avx512dq") != 0;
  }
#endif
  return false;
}

const KernelTable& table_for(const std::string& name) {
#ifdef ADAPEX_K_MULTIVERSION
  if (name == "avx512") return kAvx512Table;
  if (name == "avx2") return kAvx2Table;
#endif
  if (name == "sse2") return kSse2Table;
  throw ConfigError("unknown kernel ISA '" + name +
                    "' (expected avx512|avx2|sse2)");
}

const KernelTable* select_table(const std::string& name) {
  if (!host_supports(name)) {
    throw ConfigError("kernel ISA '" + name + "' not supported by this CPU");
  }
  return &table_for(name);
}

const KernelTable* initial_table() {
  if (const char* env = std::getenv("ADAPEX_KERNEL_ISA");
      env != nullptr && *env != '\0') {
    return select_table(env);
  }
  for (const char* name : {"avx512", "avx2"}) {
    if (host_supports(name)) return &table_for(name);
  }
  return &kSse2Table;
}

const KernelTable*& active_table() {
  static const KernelTable* table = initial_table();
  return table;
}

// ---------------------------------------------------------- adaptive dispatch

// The blocked direct kernels only win when the full-width slivers engage and
// the zero-skip is not carrying the load: packing a B panel costs a full
// K x N sweep no matter how many A elements are exactly zero, and columns
// beyond the last full sliver run scalar. Quantized (W2A2) and pruned
// weights make both cases common — a naive i-k-j loop that skips a whole
// N-wide B-row sweep per zero beats the blocked kernel outright on an 85%
// pruned layer — so the public entry points fall back to a scalar kernel
// with the identical per-element reduction order (see the kernels.hpp
// contract; results are byte-identical either way). The density crossover
// was measured on the tiny-scale CNV conv shapes; the A scan it needs is
// M x K loads against a 2 x M x K x N flop kernel, i.e. noise.
// ADAPEX_KERNEL_MIN_DENSITY overrides the crossover (0 = always blocked,
// >1 = always scalar) — a tuning/diagnostic knob, never a numerics one.
float min_blocked_density() {
  static const float value = [] {
    if (const char* env = std::getenv("ADAPEX_KERNEL_MIN_DENSITY");
        env != nullptr && *env != '\0') {
      return std::strtof(env, nullptr);
    }
    return 0.3f;
  }();
  return value;
}

bool blocked_profitable(const float* a, std::size_t len, int n, int nr) {
  if (n < nr) return false;
  std::size_t nnz = 0;
  for (std::size_t i = 0; i < len; ++i) nnz += a[i] != 0.0f ? 1u : 0u;
  return static_cast<float>(nnz) >=
         min_blocked_density() * static_cast<float>(len);
}

// Scalar direct kernel with the fused bias/ReLU epilogues: the reference
// i-k-j order (ascending k per element, exact-zero skip), bias seeding the
// row before the k loop and ReLU applied after it — the same per-element
// operation sequence as the blocked micro-kernels.
void scalar_direct(const float* a, const float* b, const float* row_bias,
                   float* c, int m, int k, int n, Epilogue epilogue) {
  for (int i = 0; i < m; ++i) {
    const float* arow = a + static_cast<std::size_t>(i) * k;
    float* crow = c + static_cast<std::size_t>(i) * n;
    if (row_bias != nullptr) {
      for (int j = 0; j < n; ++j) crow[j] = row_bias[i];
    }
    for (int kk = 0; kk < k; ++kk) {
      const float av = arow[kk];
      if (av == 0.0f) continue;
      const float* brow = b + static_cast<std::size_t>(kk) * n;
      for (int j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
    if (epilogue == Epilogue::kRelu) {
      for (int j = 0; j < n; ++j) crow[j] = crow[j] > 0.0f ? crow[j] : 0.0f;
    }
  }
}

}  // namespace

const char* active_isa() { return active_table()->name; }

void force_isa(const char* name) {
  ADAPEX_CHECK(name != nullptr, "force_isa: null name");
  active_table() = select_table(name);
}

// ------------------------------------------------------------ public kernels

void gemm_accumulate(const float* a, const float* b, float* c, int m, int k,
                     int n) {
  const KernelTable& t = *active_table();
  if (!blocked_profitable(a, static_cast<std::size_t>(m) * k, n, t.nr)) {
    scalar_direct(a, b, nullptr, c, m, k, n, Epilogue::kNone);
    return;
  }
  t.direct(a, b, nullptr, c, m, k, n, Epilogue::kNone);
}

void gemm_bias_accumulate(const float* a, const float* b,
                          const float* row_bias, float* c, int m, int k, int n,
                          Epilogue epilogue) {
  const KernelTable& t = *active_table();
  if (!blocked_profitable(a, static_cast<std::size_t>(m) * k, n, t.nr)) {
    scalar_direct(a, b, row_bias, c, m, k, n, epilogue);
    return;
  }
  t.direct(a, b, row_bias, c, m, k, n, epilogue);
}

void gemm_at_b_accumulate(const float* a, const float* b, float* c, int m,
                          int k, int n) {
  const KernelTable& t = *active_table();
  if (!blocked_profitable(a, static_cast<std::size_t>(k) * m, n, t.nr)) {
    ref::gemm_at_b_accumulate(a, b, c, m, k, n);
    return;
  }
  // One-time packed transpose of A ([K,M] -> [M,K]); the blocked direct
  // kernel then reduces in the same ascending-k order with the same zero
  // skip as the reference k-i-j loop.
  float* at = transpose_scratch(static_cast<std::size_t>(m) * k);
  for (int kk = 0; kk < k; ++kk) {
    const float* arow = a + static_cast<std::size_t>(kk) * m;
    for (int i = 0; i < m; ++i) {
      at[static_cast<std::size_t>(i) * k + kk] = arow[i];
    }
  }
  t.direct(at, b, nullptr, c, m, k, n, Epilogue::kNone);
}

// The dot kernels need no adaptive gate: with n below one sliver the packed
// loop never runs and the column tail is exactly the scalar reference, and
// the dot form has no zero skip for sparsity to feed.
void gemm_a_bt_accumulate(const float* a, const float* b, float* c, int m,
                          int k, int n) {
  active_table()->dot(a, b, nullptr, c, m, k, n, Epilogue::kNone);
}

void gemm_a_bt_bias(const float* a, const float* b, const float* col_bias,
                    float* c, int m, int k, int n, Epilogue epilogue) {
  active_table()->dot(a, b, col_bias, c, m, k, n, epilogue);
}

// ------------------------------------------------------- naive references

namespace ref {

void gemm_accumulate(const float* a, const float* b, float* c, int m, int k,
                     int n) {
  // i-k-j loop order: streams through B and C rows; good cache behaviour for
  // the (small-M, large-N) shapes im2col produces.
  for (int i = 0; i < m; ++i) {
    const float* arow = a + static_cast<std::size_t>(i) * k;
    float* crow = c + static_cast<std::size_t>(i) * n;
    for (int kk = 0; kk < k; ++kk) {
      const float av = arow[kk];
      if (av == 0.0f) continue;  // quantized weights are often exactly zero
      const float* brow = b + static_cast<std::size_t>(kk) * n;
      for (int j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

void gemm_at_b_accumulate(const float* a, const float* b, float* c, int m,
                          int k, int n) {
  // C[M,N] += A^T B with A stored [K,M].
  for (int kk = 0; kk < k; ++kk) {
    const float* arow = a + static_cast<std::size_t>(kk) * m;
    const float* brow = b + static_cast<std::size_t>(kk) * n;
    for (int i = 0; i < m; ++i) {
      const float av = arow[i];
      if (av == 0.0f) continue;
      float* crow = c + static_cast<std::size_t>(i) * n;
      for (int j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

void gemm_a_bt_accumulate(const float* a, const float* b, float* c, int m,
                          int k, int n) {
  // C[M,N] += A B^T with B stored [N,K]: dot products of rows.
  for (int i = 0; i < m; ++i) {
    const float* arow = a + static_cast<std::size_t>(i) * k;
    float* crow = c + static_cast<std::size_t>(i) * n;
    for (int j = 0; j < n; ++j) {
      const float* brow = b + static_cast<std::size_t>(j) * k;
      float acc = 0.0f;
      for (int kk = 0; kk < k; ++kk) acc += arow[kk] * brow[kk];
      crow[j] += acc;
    }
  }
}

}  // namespace ref

}  // namespace adapex::kernels
