#include "pruning/sensitivity.hpp"

#include "nn/eval.hpp"
#include "pruning/pruning.hpp"

namespace adapex {

std::vector<SensitivityPoint> prune_sensitivity(
    const BranchyModel& model, const Dataset& test,
    const SensitivityOptions& opts) {
  ADAPEX_CHECK(!opts.rates_pct.empty(), "no sensitivity rates configured");

  // Enumerate conv sites on a scratch clone (the walk needs mutable access).
  BranchyModel probe = model.clone();
  const auto sites =
      walk_compute_layers(probe, opts.in_channels, opts.image_size);
  validate_folding(sites, opts.folding);

  std::vector<SensitivityPoint> points;
  for (const auto& site : sites) {
    if (!site.is_conv) continue;
    for (int rate : opts.rates_pct) {
      BranchyModel pruned = model.clone();
      PruneOptions popts;
      popts.rate = rate / 100.0;
      popts.prune_exits = true;  // allow probing exit layers too
      popts.folding = opts.folding;
      popts.in_channels = opts.in_channels;
      popts.image_size = opts.image_size;
      popts.only_layer = site.name;
      const PruneReport report = prune_model(pruned, popts);

      SensitivityPoint point;
      point.layer = site.name;
      point.rate_pct = rate;
      for (const auto& l : report.layers) {
        if (l.name == site.name) point.removed = l.removed;
      }
      ExitEvaluation eval = evaluate_exits(pruned, test);
      point.accuracy = apply_threshold(eval, 2.0).accuracy;
      points.push_back(point);
    }
  }
  return points;
}

}  // namespace adapex
