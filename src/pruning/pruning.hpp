// Dataflow-aware filter pruning (paper section IV-A2, based on AdaFlow).
//
// For every convolutional layer i the pass removes r_i filters, where r_i
// starts at round(rate * ch_out_i) and is decreased until the two FINN
// dataflow properties hold for the surviving channel count:
//     (ch_out_i - r_i) mod PE_i == 0
//     (ch_out_i - r_i) mod SIMD_consumer == 0   for every consumer MVTU
// (a consumer is the next backbone layer and, at block boundaries, the first
// compute layer of each attached exit head; for an FC consumer the SIMD
// constraint applies to the flattened feature count, i.e. channels times the
// spatial multiplier). Filters are then ranked by the l1-norm of their
// latent float weights [Li et al., ICLR'17] and the smallest r_i are
// removed, with the corresponding surgery applied to the following
// BatchNorm and to every consumer's input slice.
//
// Exit CONV layers participate only when `prune_exits` is set — the paper's
// "pruned" flag — which is the design decision Figure 5 ablates.

#pragma once

#include <string>
#include <vector>

#include "hls/folding.hpp"
#include "nn/branchy.hpp"

namespace adapex {

/// Options for one pruning pass.
struct PruneOptions {
  /// Fraction of filters to remove per conv layer, in [0, 1).
  double rate = 0.0;
  /// Prune CONV layers inside exit heads too ("pruned exits").
  bool prune_exits = false;
  /// The accelerator folding the pruned model must stay synthesizable for.
  FoldingConfig folding;
  /// Input geometry (needed to resolve layer shapes).
  int in_channels = 3;
  int image_size = 32;
  /// When non-empty, prune only the named layer (walk-order site name,
  /// e.g. "backbone.b1.conv0") — used by the sensitivity analysis.
  std::string only_layer;
  /// Ablation only: prune exactly round(rate * n) filters per layer,
  /// ignoring the PE/SIMD divisibility constraints. The resulting model
  /// generally does NOT synthesize against the folding config (prune_model
  /// then skips the post-surgery folding validation so callers can measure
  /// the synthesizability loss themselves).
  bool ignore_dataflow_constraints = false;
};

/// Per-layer outcome of a pruning pass.
struct PrunedLayer {
  std::string name;
  int original_filters = 0;
  int removed = 0;
  int remaining = 0;
  /// True when the divisibility constraints forced removing fewer filters
  /// than round(rate * original).
  bool constrained = false;
};

/// Summary of a pruning pass.
struct PruneReport {
  double requested_rate = 0.0;
  /// Actually removed filters / original filters, over all pruned layers.
  double achieved_rate = 0.0;
  std::vector<PrunedLayer> layers;
};

/// Prunes `model` in place. The folding config must match the *unpruned*
/// model's layer list (walk order); after the pass the same folding is
/// still valid for the pruned model (the dataflow-aware guarantee, asserted
/// internally). Returns the per-layer report.
PruneReport prune_model(BranchyModel& model, const PruneOptions& options);

/// l1 norms of each conv filter (latent float weights), length = filters.
std::vector<float> filter_l1_norms(const QuantConv2d& conv);

/// The `count` filter indices with smallest l1 norm, ascending index order.
std::vector<int> lowest_l1_filters(const QuantConv2d& conv, int count);

}  // namespace adapex
