#include "pruning/pruning.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <string>

namespace adapex {

std::vector<float> filter_l1_norms(const QuantConv2d& conv) {
  const Tensor& w = conv.weight().value;
  const int filters = w.dim(0);
  const std::size_t per_filter = w.numel() / static_cast<std::size_t>(filters);
  std::vector<float> norms(static_cast<std::size_t>(filters), 0.0f);
  for (int f = 0; f < filters; ++f) {
    const float* src = w.data() + static_cast<std::size_t>(f) * per_filter;
    float acc = 0.0f;
    for (std::size_t i = 0; i < per_filter; ++i) acc += std::abs(src[i]);
    norms[static_cast<std::size_t>(f)] = acc;
  }
  return norms;
}

std::vector<int> lowest_l1_filters(const QuantConv2d& conv, int count) {
  const auto norms = filter_l1_norms(conv);
  std::vector<int> order(norms.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    return norms[static_cast<std::size_t>(a)] < norms[static_cast<std::size_t>(b)];
  });
  order.resize(static_cast<std::size_t>(std::max(count, 0)));
  std::sort(order.begin(), order.end());
  return order;
}

namespace {

/// Keep-list complement of a removal list over [0, n).
std::vector<int> keep_from_removed(int n, const std::vector<int>& removed) {
  std::vector<int> keep;
  keep.reserve(static_cast<std::size_t>(n) - removed.size());
  std::size_t r = 0;
  for (int i = 0; i < n; ++i) {
    if (r < removed.size() && removed[r] == i) {
      ++r;
    } else {
      keep.push_back(i);
    }
  }
  return keep;
}

/// Removes output filters (rows) of a conv weight.
void slice_conv_out(QuantConv2d& conv, const std::vector<int>& keep) {
  const Tensor& w = conv.weight().value;
  const int cin = w.dim(1), k = w.dim(2);
  const std::size_t per_filter = static_cast<std::size_t>(cin) * k * k;
  Tensor nw({static_cast<int>(keep.size()), cin, k, k});
  for (std::size_t i = 0; i < keep.size(); ++i) {
    const float* src =
        w.data() + static_cast<std::size_t>(keep[i]) * per_filter;
    std::copy(src, src + per_filter, nw.data() + i * per_filter);
  }
  conv.set_weight(std::move(nw));
}

/// Removes input channels (columns) of a conv weight.
void slice_conv_in(QuantConv2d& conv, const std::vector<int>& keep) {
  const Tensor& w = conv.weight().value;
  const int f = w.dim(0), k = w.dim(2);
  const std::size_t plane = static_cast<std::size_t>(k) * k;
  Tensor nw({f, static_cast<int>(keep.size()), k, k});
  for (int fi = 0; fi < f; ++fi) {
    for (std::size_t ci = 0; ci < keep.size(); ++ci) {
      const float* src =
          w.data() + (static_cast<std::size_t>(fi) * w.dim(1) +
                      static_cast<std::size_t>(keep[ci])) *
                         plane;
      std::copy(src, src + plane,
                nw.data() + (static_cast<std::size_t>(fi) * keep.size() + ci) *
                                plane);
    }
  }
  conv.set_weight(std::move(nw));
}

/// Removes input features (columns) of an fc weight.
void slice_fc_in(QuantLinear& fc, const std::vector<int>& keep_features) {
  const Tensor& w = fc.weight().value;
  const int out = w.dim(0);
  Tensor nw({out, static_cast<int>(keep_features.size())});
  for (int o = 0; o < out; ++o) {
    const float* src = w.data() + static_cast<std::size_t>(o) * w.dim(1);
    float* dst = nw.data() + static_cast<std::size_t>(o) * keep_features.size();
    for (std::size_t i = 0; i < keep_features.size(); ++i) {
      dst[i] = src[static_cast<std::size_t>(keep_features[i])];
    }
  }
  fc.set_weight(std::move(nw));
}

/// Channel keep-list -> flattened-feature keep-list ([C, H, W] layout).
std::vector<int> feature_keep(const std::vector<int>& keep_channels,
                              int spatial_multiplier) {
  std::vector<int> features;
  features.reserve(keep_channels.size() *
                   static_cast<std::size_t>(spatial_multiplier));
  for (int c : keep_channels) {
    for (int s = 0; s < spatial_multiplier; ++s) {
      features.push_back(c * spatial_multiplier + s);
    }
  }
  return features;
}

/// Slices the BatchNorm that immediately follows a conv inside its block.
void slice_following_batchnorm(Sequential& seq, int conv_index,
                               const std::vector<int>& keep) {
  for (std::size_t i = static_cast<std::size_t>(conv_index) + 1; i < seq.size();
       ++i) {
    const LayerKind kind = seq.layer(i).kind();
    if (kind == LayerKind::kBatchNorm) {
      static_cast<BatchNorm&>(seq.layer(i)).slice_channels(keep);
      return;
    }
    if (kind == LayerKind::kConv || kind == LayerKind::kLinear) return;
  }
}

/// A consumer of a produced channel set: the compute layer that reads it.
/// feature_multiplier: flattened features per input channel (1 for conv,
/// spatial^2 for fc after flatten) — used for input-slice surgery.
/// width_multiplier: matrix-width elements per input channel (k^2 for conv,
/// spatial^2 for fc) — used for the SIMD divisibility constraint, since
/// FINN's SIMD divides the full matrix width.
struct Consumer {
  std::size_t site_index;
  int feature_multiplier;
  int width_multiplier;
};

}  // namespace

PruneReport prune_model(BranchyModel& model, const PruneOptions& options) {
  ADAPEX_CHECK(options.rate >= 0.0 && options.rate < 1.0,
               "pruning rate must be in [0, 1)");
  auto sites =
      walk_compute_layers(model, options.in_channels, options.image_size);
  validate_folding(sites, options.folding);

  // Consumers of each site's output, resolved on the unpruned geometry.
  // Walk order guarantees backbone sites are contiguous and in dataflow
  // order, followed by exit sites grouped per exit.
  std::vector<std::vector<Consumer>> consumers(sites.size());
  auto make_consumer = [&](std::size_t producer, std::size_t consumer) {
    ADAPEX_ASSERT(sites[consumer].in_channels %
                      sites[producer].out_channels ==
                  0);
    const int feat =
        sites[consumer].in_channels / sites[producer].out_channels;
    const int width = sites[consumer].is_conv
                          ? sites[consumer].kernel * sites[consumer].kernel
                          : feat;
    return Consumer{consumer, feat, width};
  };
  for (std::size_t i = 0; i + 1 < sites.size(); ++i) {
    const bool same_backbone = sites[i].loc == SiteLoc::kBackbone &&
                               sites[i + 1].loc == SiteLoc::kBackbone;
    const bool same_exit = sites[i].loc == SiteLoc::kExit &&
                           sites[i + 1].loc == SiteLoc::kExit &&
                           sites[i].group == sites[i + 1].group;
    if (same_backbone || same_exit) {
      consumers[i].push_back(make_consumer(i, i + 1));
    }
  }
  // Exit heads consume the output of the last conv of the block they tap.
  for (std::size_t e = 0; e < model.num_exits(); ++e) {
    const int block = model.exit(e).after_block;
    // Producer: last conv site in backbone group `block`.
    std::size_t producer = sites.size();
    for (std::size_t i = 0; i < sites.size(); ++i) {
      if (sites[i].loc == SiteLoc::kBackbone && sites[i].group == block &&
          sites[i].is_conv) {
        producer = i;
      }
    }
    ADAPEX_CHECK(producer < sites.size(),
                 "exit taps a block with no conv layer");
    // Consumer: first compute site of exit e.
    for (std::size_t i = 0; i < sites.size(); ++i) {
      if (sites[i].loc == SiteLoc::kExit &&
          sites[i].group == static_cast<int>(e)) {
        consumers[producer].push_back(make_consumer(producer, i));
        break;
      }
    }
  }

  PruneReport report;
  report.requested_rate = options.rate;
  long total_original = 0, total_removed = 0;

  for (std::size_t i = 0; i < sites.size(); ++i) {
    auto& site = sites[i];
    if (!site.is_conv) continue;
    if (site.loc == SiteLoc::kExit && !options.prune_exits) continue;
    if (!options.only_layer.empty() && site.name != options.only_layer) {
      continue;
    }

    auto& conv = static_cast<QuantConv2d&>(*site.layer);
    const int n = conv.out_channels();
    const int pe = options.folding.folds[i].pe;
    int r = static_cast<int>(std::lround(options.rate * n));
    const int r_target = r;
    // Decrease r until every divisibility constraint holds and at least PE
    // filters survive.
    auto feasible = [&](int removed) {
      const int remaining = n - removed;
      if (remaining < pe || remaining < 1) return false;
      if (remaining % pe != 0) return false;
      for (const Consumer& c : consumers[i]) {
        const int simd = options.folding.folds[c.site_index].simd;
        if ((remaining * c.width_multiplier) % simd != 0) return false;
      }
      return true;
    };
    if (options.ignore_dataflow_constraints) {
      // Naive pruning (ablation): take the target, only keeping >= 1 filter.
      r = std::min(r_target, n - 1);
    } else {
      while (r > 0 && !feasible(r)) --r;
      if (!feasible(r)) r = 0;  // r == 0 must be feasible; keep layer intact.
    }

    PrunedLayer entry;
    entry.name = site.name;
    entry.original_filters = n;
    entry.removed = r;
    entry.remaining = n - r;
    entry.constrained = r != r_target;
    report.layers.push_back(entry);
    total_original += n;
    total_removed += r;
    if (r == 0) continue;

    const std::vector<int> removed = lowest_l1_filters(conv, r);
    const std::vector<int> keep = keep_from_removed(n, removed);
    slice_conv_out(conv, keep);
    slice_following_batchnorm(*site.container, site.layer_index, keep);
    for (const Consumer& c : consumers[i]) {
      auto& dst = sites[c.site_index];
      if (dst.is_conv) {
        slice_conv_in(static_cast<QuantConv2d&>(*dst.layer), keep);
      } else {
        slice_fc_in(static_cast<QuantLinear&>(*dst.layer),
                    feature_keep(keep, c.feature_multiplier));
      }
    }
  }

  report.achieved_rate =
      total_original > 0
          ? static_cast<double>(total_removed) / static_cast<double>(total_original)
          : 0.0;

  // The dataflow-aware guarantee: the user's folding must still validate
  // against the pruned model. Skipped in the naive-pruning ablation, whose
  // entire point is that this validation would fail.
  if (!options.ignore_dataflow_constraints) {
    auto pruned_sites =
        walk_compute_layers(model, options.in_channels, options.image_size);
    validate_folding(pruned_sites, options.folding);
  }
  return report;
}

}  // namespace adapex
