// Per-layer pruning sensitivity analysis.
//
// The standard tool from the filter-pruning literature [Li et al., ICLR'17,
// the paper's pruning reference]: prune each conv layer *independently* at a
// sweep of rates, without retraining, and measure the accuracy drop. Layers
// whose curves fall steeply are sensitive (prune them conservatively);
// flat layers can be pruned aggressively. AdaPEx applies a uniform rate, so
// this analysis explains *which* layers the dataflow constraints protect
// and feeds the ablation benches.

#pragma once

#include <string>
#include <vector>

#include "data/dataset.hpp"
#include "hls/folding.hpp"
#include "nn/branchy.hpp"

namespace adapex {

/// Accuracy of one (layer, rate) probe.
struct SensitivityPoint {
  std::string layer;
  int rate_pct = 0;
  int removed = 0;
  double accuracy = 0.0;  ///< Final-exit TOP-1 with only this layer pruned.
};

/// Options for the sweep.
struct SensitivityOptions {
  std::vector<int> rates_pct = {10, 25, 50, 75};
  FoldingConfig folding;  ///< Constraints applied per probe.
  int in_channels = 3;
  int image_size = 32;
};

/// Runs the sweep: for every conv layer (backbone and exits) and rate,
/// clones the model, prunes only that layer, and evaluates the final exit
/// on `test`. The input model is not modified.
std::vector<SensitivityPoint> prune_sensitivity(const BranchyModel& model,
                                                const Dataset& test,
                                                const SensitivityOptions& opts);

}  // namespace adapex
