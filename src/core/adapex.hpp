// AdaPEx public API (umbrella header).
//
// AdaPEx — Adaptive Pruning of Early-Exit CNNs — co-optimizes filter
// pruning and early exits for FPGA dataflow accelerators:
//
//   1. Design time (Framework::design): trains an early-exit CNV, sweeps
//      dataflow-aware pruning rates, synthesizes a FINN-style accelerator
//      per pruned model, and records every (pruning rate, confidence
//      threshold) operating point in a Library.
//   2. Runtime (Framework::serve): an edge server simulation where the
//      Runtime Manager matches the operating point to the observed workload
//      under a user accuracy threshold, reconfiguring the FPGA when the
//      pruning rate changes.
//
// Quickstart:
//
//   auto scale = adapex::ExperimentScale::from_env();
//   auto spec  = adapex::make_gen_spec(adapex::cifar10_like_spec(), scale);
//   auto lib   = adapex::Framework::design(spec);
//   auto sc    = adapex::scale_to_library(adapex::EdgeScenario{}, lib);
//   auto m     = adapex::Framework::serve(
//                    lib, {adapex::AdaptPolicy::kAdaPEx, 0.10}, sc, 10);
//
// See examples/ for complete programs and DESIGN.md for the architecture.

#pragma once

#include "core/scale.hpp"
#include "data/dataset.hpp"
#include "edge/simulation.hpp"
#include "finn/accelerator.hpp"
#include "finn/mitigation.hpp"
#include "finn/pipeline_sim.hpp"
#include "finn/reconfig.hpp"
#include "hls/folding.hpp"
#include "hls/modules.hpp"
#include "library/cache.hpp"
#include "library/generator.hpp"
#include "library/library.hpp"
#include "model/cnv.hpp"
#include "model/walk.hpp"
#include "nn/branchy.hpp"
#include "nn/eval.hpp"
#include "nn/trainer.hpp"
#include "pruning/pruning.hpp"
#include "runtime/manager.hpp"

namespace adapex {

/// The two-step AdaPEx flow behind one facade.
struct Framework {
  /// Design-time: runs the Library Generator.
  static Library design(const LibraryGenSpec& spec) {
    return generate_library(spec);
  }

  /// Design-time with a disk cache (see library/cache.hpp).
  static Library design_cached(const LibraryGenSpec& spec,
                               const std::string& artifact_dir) {
    return generate_or_load_library(spec, artifact_dir);
  }

  /// Runtime: serves `runs` edge episodes and returns averaged metrics.
  static EdgeMetrics serve(const Library& library, const RuntimePolicy& policy,
                           const EdgeScenario& scenario, int runs = 1) {
    return simulate_edge_runs(library, policy, scenario, runs);
  }
};

}  // namespace adapex
