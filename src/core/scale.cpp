#include "core/scale.hpp"

#include <cstdlib>

namespace adapex {

ExperimentScale ExperimentScale::tiny() {
  ExperimentScale s;
  s.name = "tiny";
  s.width_scale = 0.1875;
  s.train_size = 300;
  s.test_size = 150;
  s.initial_epochs = 12;
  s.retrain_epochs = 2;
  return s;
}

ExperimentScale ExperimentScale::small_scale() {
  return ExperimentScale{};  // defaults (see struct initializers)
}

ExperimentScale ExperimentScale::medium() {
  ExperimentScale s;
  s.name = "medium";
  s.width_scale = 0.5;
  s.train_size = 800;
  s.test_size = 400;
  s.initial_epochs = 16;
  s.retrain_epochs = 4;
  return s;
}

ExperimentScale ExperimentScale::paper() {
  ExperimentScale s;
  s.name = "paper";
  s.width_scale = 1.0;
  s.train_size = 50000;
  s.test_size = 10000;
  s.initial_epochs = 40;
  s.retrain_epochs = 40;  // paper: pruned models retrained for 40 epochs
  s.lr = 1e-3;            // paper recipe
  s.batch_size = 64;
  return s;
}

ExperimentScale ExperimentScale::from_env() {
  const char* env = std::getenv("ADAPEX_SCALE");
  const std::string name = env ? env : "small";
  if (name == "tiny") return tiny();
  if (name == "small") return small_scale();
  if (name == "medium") return medium();
  if (name == "paper") return paper();
  throw ConfigError("unknown ADAPEX_SCALE: " + name +
                    " (expected tiny|small|medium|paper)");
}

LibraryGenSpec make_gen_spec(const SyntheticSpec& dataset,
                             const ExperimentScale& scale,
                             std::uint64_t seed) {
  LibraryGenSpec spec;
  spec.dataset = dataset;
  // Class-aware sizing: many-class datasets (GTSRB-like: 43) need more
  // samples per class — and more joint-loss epochs — for the early-exit
  // heads to train to the paper's proportions (EE final exit within a few
  // points of the plain model).
  const int class_factor = dataset.num_classes > 20 ? 2 : 1;
  spec.dataset.train_size = scale.train_size * class_factor;
  spec.dataset.test_size = scale.test_size * class_factor;
  const int epoch_boost = dataset.num_classes > 20 ? scale.initial_epochs / 2 : 0;

  spec.cnv = CnvConfig{}.scaled(scale.width_scale);
  spec.cnv.num_classes = dataset.num_classes;
  spec.exits = paper_exits_config(false);

  set_paper_sweeps(spec);

  spec.initial_train.epochs = scale.initial_epochs + epoch_boost;
  spec.initial_train.batch_size = scale.batch_size;
  spec.initial_train.lr = scale.lr;
  spec.initial_train.seed = seed + 11;

  spec.retrain.epochs = scale.retrain_epochs;
  spec.retrain.batch_size = scale.batch_size;
  // Retraining resumes from a trained model: use a gentler rate.
  spec.retrain.lr = scale.lr * 0.5;

  spec.seed = seed;
  return spec;
}

}  // namespace adapex
