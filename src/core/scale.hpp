// Experiment scale presets.
//
// The paper trains full CNV (64..256 channels) on full CIFAR-10/GTSRB with a
// GPU; this repository runs on one CPU core, so experiments default to a
// reduced scale (see DESIGN.md, scale calibration). Every knob is explicit
// here and the full-scale preset is provided; benches honor the
// ADAPEX_SCALE environment variable (tiny | small | medium | paper).

#pragma once

#include <cstdint>
#include <string>

#include "library/generator.hpp"

namespace adapex {

/// One coherent set of model/data/training sizes.
struct ExperimentScale {
  std::string name = "small";
  /// CNV channel-width multiplier (1.0 = the paper's CNV).
  double width_scale = 0.25;
  int train_size = 400;
  int test_size = 200;
  int initial_epochs = 18;
  int retrain_epochs = 3;
  /// W2A2 QAT at reduced scale needs a higher lr than the paper's 1e-3.
  double lr = 1e-2;
  int batch_size = 16;

  static ExperimentScale tiny();    ///< For unit tests (seconds).
  static ExperimentScale small_scale();   ///< Default for benches (minutes).
  static ExperimentScale medium();  ///< Closer shapes, ~4x small cost.
  static ExperimentScale paper();   ///< Full CNV + paper training recipe.

  /// Reads ADAPEX_SCALE (default "small").
  static ExperimentScale from_env();
};

/// Builds a fully-populated generator spec for one dataset at this scale,
/// with the paper's pruning/threshold sweeps and default folding style.
LibraryGenSpec make_gen_spec(const SyntheticSpec& dataset,
                             const ExperimentScale& scale,
                             std::uint64_t seed = 7);

}  // namespace adapex
