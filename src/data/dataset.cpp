#include "data/dataset.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "common/error.hpp"

namespace adapex {

void Dataset::add(Tensor image, int label, float difficulty) {
  ADAPEX_CHECK(image.ndim() == 3 && image.dim(0) == channels_ &&
                   image.dim(1) == height_ && image.dim(2) == width_,
               "sample image shape mismatch");
  ADAPEX_CHECK(label >= 0 && label < num_classes_, "label out of range");
  images_.push_back(std::move(image));
  labels_.push_back(label);
  difficulty_.push_back(difficulty);
}

Tensor Dataset::batch_images(const int* indices, int count) const {
  ADAPEX_CHECK(indices != nullptr && count > 0, "empty batch");
  Tensor batch({count, channels_, height_, width_});
  const std::size_t per_img =
      static_cast<std::size_t>(channels_) * height_ * width_;
  for (int i = 0; i < count; ++i) {
    const Tensor& img = images_.at(static_cast<std::size_t>(indices[i]));
    std::memcpy(batch.data() + static_cast<std::size_t>(i) * per_img,
                img.data(), per_img * sizeof(float));
  }
  return batch;
}

Tensor Dataset::batch_images(const std::vector<int>& indices) const {
  return batch_images(indices.data(), static_cast<int>(indices.size()));
}

std::vector<int> Dataset::batch_labels(const int* indices, int count) const {
  ADAPEX_CHECK(indices != nullptr && count > 0, "empty batch");
  std::vector<int> out;
  out.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    out.push_back(labels_.at(static_cast<std::size_t>(indices[i])));
  }
  return out;
}

std::vector<int> Dataset::batch_labels(const std::vector<int>& indices) const {
  return batch_labels(indices.data(), static_cast<int>(indices.size()));
}

namespace {

constexpr double kTwoPi = 6.283185307179586476925286766559;

/// Smooth class prototype: a few random low-frequency sinusoids per channel
/// plus a class-keyed Gaussian blob, normalized to roughly [-1, 1].
Tensor make_prototype(int channels, int height, int width, Rng& rng) {
  Tensor proto({channels, height, width});
  float* data = proto.data();
  for (int c = 0; c < channels; ++c) {
    // 3 sinusoidal components.
    double fx[3], fy[3], ph[3], amp[3];
    for (int j = 0; j < 3; ++j) {
      fx[j] = rng.uniform(0.5, 3.0);
      fy[j] = rng.uniform(0.5, 3.0);
      ph[j] = rng.uniform(0.0, kTwoPi);
      amp[j] = rng.uniform(0.3, 1.0);
    }
    // A localized blob distinguishing classes with similar spectra.
    const double bx = rng.uniform(0.2, 0.8) * width;
    const double by = rng.uniform(0.2, 0.8) * height;
    const double bs = rng.uniform(3.0, 7.0);
    const double ba = rng.uniform(0.8, 1.6) * (rng.bernoulli(0.5) ? 1 : -1);
    for (int y = 0; y < height; ++y) {
      for (int x = 0; x < width; ++x) {
        double v = 0.0;
        for (int j = 0; j < 3; ++j) {
          v += amp[j] *
               std::sin(kTwoPi * (fx[j] * x / width + fy[j] * y / height) +
                        ph[j]);
        }
        const double d2 = (x - bx) * (x - bx) + (y - by) * (y - by);
        v += ba * std::exp(-d2 / (2.0 * bs * bs));
        data[(static_cast<std::size_t>(c) * height + y) * width + x] =
            static_cast<float>(v);
      }
    }
  }
  // Normalize to unit max-abs so noise levels are comparable across classes.
  float maxabs = 1e-6f;
  for (std::size_t i = 0; i < proto.numel(); ++i) {
    maxabs = std::max(maxabs, std::abs(proto[i]));
  }
  proto.scale_(1.0f / maxabs);
  return proto;
}

Tensor render_sample(const Tensor& proto, double difficulty,
                     const SyntheticSpec& spec, Rng& rng) {
  const int c = spec.channels, h = spec.height, w = spec.width;
  // Geometric distortion grows with difficulty.
  const int max_shift =
      static_cast<int>(std::lround(spec.max_shift * (0.4 + 0.6 * difficulty)));
  const int dx = max_shift > 0
                     ? static_cast<int>(rng.uniform_index(
                           static_cast<std::uint64_t>(2 * max_shift + 1))) -
                           max_shift
                     : 0;
  const int dy = max_shift > 0
                     ? static_cast<int>(rng.uniform_index(
                           static_cast<std::uint64_t>(2 * max_shift + 1))) -
                           max_shift
                     : 0;
  const float contrast = static_cast<float>(rng.uniform(0.8, 1.2));
  const float noise_std = static_cast<float>(
      spec.noise_min + difficulty * (spec.noise_max - spec.noise_min));

  Tensor img({c, h, w});
  for (int ch = 0; ch < c; ++ch) {
    for (int y = 0; y < h; ++y) {
      for (int x = 0; x < w; ++x) {
        const int sy = y + dy, sx = x + dx;
        float v = 0.0f;
        if (sy >= 0 && sy < h && sx >= 0 && sx < w) {
          v = proto[(static_cast<std::size_t>(ch) * h + sy) * w + sx];
        }
        img[(static_cast<std::size_t>(ch) * h + y) * w + x] =
            contrast * v + static_cast<float>(rng.normal(0.0, noise_std));
      }
    }
  }
  return img;
}

double sample_difficulty(const SyntheticSpec& spec, Rng& rng) {
  if (rng.bernoulli(spec.easy_fraction)) return rng.uniform(0.0, 0.35);
  return rng.uniform(0.35, 1.0);
}

void fill_split(Dataset& split, int size, const std::vector<Tensor>& protos,
                const SyntheticSpec& spec, Rng& rng) {
  for (int i = 0; i < size; ++i) {
    const int label = static_cast<int>(
        rng.uniform_index(static_cast<std::uint64_t>(spec.num_classes)));
    const double difficulty = sample_difficulty(spec, rng);
    split.add(render_sample(protos[static_cast<std::size_t>(label)], difficulty,
                            spec, rng),
              label, static_cast<float>(difficulty));
  }
}

}  // namespace

SyntheticDataset make_synthetic(const SyntheticSpec& spec) {
  ADAPEX_CHECK(spec.num_classes >= 2, "need at least two classes");
  ADAPEX_CHECK(spec.train_size > 0 && spec.test_size > 0,
               "split sizes must be positive");
  Rng rng(spec.seed);
  std::vector<Tensor> protos;
  protos.reserve(static_cast<std::size_t>(spec.num_classes));
  for (int cls = 0; cls < spec.num_classes; ++cls) {
    Rng proto_rng = rng.fork();
    protos.push_back(
        make_prototype(spec.channels, spec.height, spec.width, proto_rng));
  }
  SyntheticDataset out{
      spec,
      Dataset(spec.num_classes, spec.channels, spec.height, spec.width),
      Dataset(spec.num_classes, spec.channels, spec.height, spec.width)};
  Rng train_rng = rng.fork();
  Rng test_rng = rng.fork();
  fill_split(out.train, spec.train_size, protos, spec, train_rng);
  fill_split(out.test, spec.test_size, protos, spec, test_rng);
  return out;
}

SyntheticSpec cifar10_like_spec() {
  SyntheticSpec spec;
  spec.name = "cifar10-like";
  spec.num_classes = 10;
  spec.flip_symmetry = true;
  // Difficulty calibrated so the reduced-scale CNV lands near the paper's
  // CIFAR-10 TOP-1 band (~85-90%) with visible degradation under pruning.
  spec.noise_min = 0.4;
  spec.noise_max = 2.0;
  spec.easy_fraction = 0.45;
  spec.seed = 1234;
  return spec;
}

SyntheticSpec gtsrb_like_spec() {
  SyntheticSpec spec;
  spec.name = "gtsrb-like";
  spec.num_classes = 43;
  spec.flip_symmetry = false;
  // 43 mutually-similar classes are already harder than the 10-class set;
  // milder noise keeps accuracy near the paper's GTSRB band (~70%).
  spec.noise_min = 0.25;
  spec.noise_max = 1.5;
  spec.easy_fraction = 0.50;
  spec.seed = 4321;
  return spec;
}

void augment_image_into(const float* image, float* out, int c, int h, int w,
                        bool allow_flip, Rng& rng) {
  const int dx = static_cast<int>(rng.uniform_index(5)) - 2;
  const int dy = static_cast<int>(rng.uniform_index(5)) - 2;
  const bool flip = allow_flip && rng.bernoulli(0.5);
  for (int ch = 0; ch < c; ++ch) {
    for (int y = 0; y < h; ++y) {
      for (int x = 0; x < w; ++x) {
        const int sy = y + dy;
        int sx = x + dx;
        if (flip) sx = w - 1 - sx;
        float v = 0.0f;
        if (sy >= 0 && sy < h && sx >= 0 && sx < w) {
          v = image[(static_cast<std::size_t>(ch) * h + sy) * w + sx];
        }
        out[(static_cast<std::size_t>(ch) * h + y) * w + x] = v;
      }
    }
  }
}

Tensor augment_image(const Tensor& image, bool allow_flip, Rng& rng) {
  const int c = image.dim(0), h = image.dim(1), w = image.dim(2);
  Tensor out({c, h, w});
  augment_image_into(image.data(), out.data(), c, h, w, allow_flip, rng);
  return out;
}

}  // namespace adapex
