// Synthetic image classification datasets.
//
// Stand-ins for CIFAR-10 and GTSRB (see DESIGN.md substitution table): each
// class has a smooth random prototype image; a sample is the prototype under
// a random shift/contrast transform plus Gaussian noise whose magnitude is
// the sample's *difficulty*. The difficulty mix (mostly easy, a tail of hard
// samples) is what gives early exits their leverage — easy samples are
// classified confidently by shallow heads, hard ones need the full backbone,
// matching the "easy input" premise of early-exit CNNs.
//
// Dataset shapes follow the paper: 3x32x32 images, 10 classes for the
// CIFAR-10-like set and 43 for the GTSRB-like set.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "tensor/tensor.hpp"

namespace adapex {

/// An in-memory labelled image set.
class Dataset {
 public:
  Dataset(int num_classes, int channels, int height, int width)
      : num_classes_(num_classes),
        channels_(channels),
        height_(height),
        width_(width) {}

  int num_classes() const { return num_classes_; }
  int channels() const { return channels_; }
  int height() const { return height_; }
  int width() const { return width_; }
  int size() const { return static_cast<int>(labels_.size()); }

  /// Appends one sample; `image` must be a [C,H,W] tensor.
  void add(Tensor image, int label, float difficulty);

  /// Builds a batch tensor [B,C,H,W] from the given sample indices. The
  /// pointer overloads gather from a span of an existing index buffer, so
  /// batch loops can reuse one index vector instead of rebuilding per batch.
  Tensor batch_images(const int* indices, int count) const;
  Tensor batch_images(const std::vector<int>& indices) const;
  std::vector<int> batch_labels(const int* indices, int count) const;
  std::vector<int> batch_labels(const std::vector<int>& indices) const;

  const Tensor& image(int i) const { return images_.at(static_cast<std::size_t>(i)); }
  int label(int i) const { return labels_.at(static_cast<std::size_t>(i)); }
  float difficulty(int i) const { return difficulty_.at(static_cast<std::size_t>(i)); }

 private:
  int num_classes_;
  int channels_;
  int height_;
  int width_;
  std::vector<Tensor> images_;
  std::vector<int> labels_;
  std::vector<float> difficulty_;
};

/// Specification of a synthetic dataset.
struct SyntheticSpec {
  std::string name = "cifar10-like";
  int num_classes = 10;
  int train_size = 600;
  int test_size = 300;
  int channels = 3;
  int height = 32;
  int width = 32;
  /// Noise std range mapped from difficulty 0..1.
  double noise_min = 0.10;
  double noise_max = 0.95;
  /// Fraction of samples drawn from the easy difficulty band.
  double easy_fraction = 0.6;
  /// Max |shift| in pixels applied to the prototype.
  int max_shift = 3;
  /// Whether horizontal flip is a label-preserving symmetry (true for the
  /// CIFAR-like set, false for traffic signs).
  bool flip_symmetry = true;
  std::uint64_t seed = 1234;
};

/// A train/test pair generated from one spec.
struct SyntheticDataset {
  SyntheticSpec spec;
  Dataset train;
  Dataset test;
};

/// Generates the dataset (deterministic in the spec's seed).
SyntheticDataset make_synthetic(const SyntheticSpec& spec);

/// Canonical specs used across the evaluation (paper section V).
SyntheticSpec cifar10_like_spec();
SyntheticSpec gtsrb_like_spec();

/// Training-time augmentation: random shift (±2 px, zero fill) and, when
/// `allow_flip`, horizontal flip. Operates on a [C,H,W] image.
Tensor augment_image(const Tensor& image, bool allow_flip, Rng& rng);

/// augment_image writing straight into a caller-provided [C,H,W] span (e.g.
/// one image's slot in a batch buffer) — same rng draws and same values,
/// without a temporary tensor. `image` and `out` must not alias.
void augment_image_into(const float* image, float* out, int c, int h, int w,
                        bool allow_flip, Rng& rng);

}  // namespace adapex
