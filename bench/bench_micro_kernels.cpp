// Micro-benchmarks (google-benchmark) of the hot kernels: the conv/GEMM
// training kernels, the early-exit evaluation path, the accelerator
// compile, and the event-driven pipeline simulator. These bound the cost of
// a library-generation run and catch performance regressions.

#include <benchmark/benchmark.h>

#include "core/adapex.hpp"
#include "tensor/kernels.hpp"
#include "tensor/ops.hpp"

namespace {

using namespace adapex;

// Blocked kernel (routes through tensor/kernels.hpp dispatch).
void BM_GemmAccumulate(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  std::vector<float> a(static_cast<std::size_t>(n) * n, 1.5f);
  std::vector<float> b(static_cast<std::size_t>(n) * n, 0.5f);
  std::vector<float> c(static_cast<std::size_t>(n) * n, 0.0f);
  for (auto _ : state) {
    ops::gemm_accumulate(a.data(), b.data(), c.data(), n, n, n);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2L * n * n * n);
}
BENCHMARK(BM_GemmAccumulate)->Arg(64)->Arg(128)->Arg(256);

// Retained naive i-k-j reference: the "before" baseline the blocked kernel
// is compared against (same build, same flags).
void BM_GemmRef(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  std::vector<float> a(static_cast<std::size_t>(n) * n, 1.5f);
  std::vector<float> b(static_cast<std::size_t>(n) * n, 0.5f);
  std::vector<float> c(static_cast<std::size_t>(n) * n, 0.0f);
  for (auto _ : state) {
    kernels::ref::gemm_accumulate(a.data(), b.data(), c.data(), n, n, n);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2L * n * n * n);
}
BENCHMARK(BM_GemmRef)->Arg(64)->Arg(128)->Arg(256);

// 85%-zero A (a pruned+quantized weight matrix): adaptive dispatch routes
// this to the scalar zero-skip path, which beats packing at this density.
void BM_GemmSparse(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(12);
  std::vector<float> a(static_cast<std::size_t>(n) * n);
  for (auto& v : a) v = rng.bernoulli(0.85) ? 0.0f : 1.5f;
  std::vector<float> b(static_cast<std::size_t>(n) * n, 0.5f);
  std::vector<float> c(static_cast<std::size_t>(n) * n, 0.0f);
  for (auto _ : state) {
    ops::gemm_accumulate(a.data(), b.data(), c.data(), n, n, n);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2L * n * n * n);
}
BENCHMARK(BM_GemmSparse)->Arg(256);

void BM_GemmABt(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  std::vector<float> a(static_cast<std::size_t>(n) * n, 1.5f);
  std::vector<float> b(static_cast<std::size_t>(n) * n, 0.5f);
  std::vector<float> c(static_cast<std::size_t>(n) * n, 0.0f);
  for (auto _ : state) {
    ops::gemm_a_bt_accumulate(a.data(), b.data(), c.data(), n, n, n);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2L * n * n * n);
}
BENCHMARK(BM_GemmABt)->Arg(64)->Arg(256);

void BM_GemmABtRef(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  std::vector<float> a(static_cast<std::size_t>(n) * n, 1.5f);
  std::vector<float> b(static_cast<std::size_t>(n) * n, 0.5f);
  std::vector<float> c(static_cast<std::size_t>(n) * n, 0.0f);
  for (auto _ : state) {
    kernels::ref::gemm_a_bt_accumulate(a.data(), b.data(), c.data(), n, n, n);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2L * n * n * n);
}
BENCHMARK(BM_GemmABtRef)->Arg(64)->Arg(256);

void BM_GemmAtB(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  std::vector<float> a(static_cast<std::size_t>(n) * n, 1.5f);
  std::vector<float> b(static_cast<std::size_t>(n) * n, 0.5f);
  std::vector<float> c(static_cast<std::size_t>(n) * n, 0.0f);
  for (auto _ : state) {
    ops::gemm_at_b_accumulate(a.data(), b.data(), c.data(), n, n, n);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2L * n * n * n);
}
BENCHMARK(BM_GemmAtB)->Arg(64)->Arg(256);

void BM_Conv2dForward(benchmark::State& state) {
  Rng rng(1);
  Tensor x({8, 16, 16, 16});
  x.randn_(rng, 1.0f);
  Tensor w({32, 16, 3, 3});
  w.randn_(rng, 0.5f);
  Tensor bias;
  std::vector<float> scratch;
  for (auto _ : state) {
    Tensor y = ops::conv2d_forward(x, w, bias, scratch);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_Conv2dForward);

void BM_Conv2dBackward(benchmark::State& state) {
  Rng rng(7);
  Tensor x({8, 16, 16, 16});
  x.randn_(rng, 1.0f);
  Tensor w({32, 16, 3, 3});
  w.randn_(rng, 0.5f);
  Tensor bias;
  std::vector<float> scratch;
  Tensor y = ops::conv2d_forward(x, w, bias, scratch);
  Tensor dy(y.shape());
  dy.randn_(rng, 1.0f);
  Tensor dw(w.shape());
  Tensor db;
  for (auto _ : state) {
    Tensor dx;
    ops::conv2d_backward(x, w, dy, dx, dw, db, scratch);
    benchmark::DoNotOptimize(dx.data());
  }
}
BENCHMARK(BM_Conv2dBackward);

void BM_LinearForward(benchmark::State& state) {
  Rng rng(8);
  Tensor x({32, 512});
  x.randn_(rng, 1.0f);
  Tensor w({256, 512});
  w.randn_(rng, 0.5f);
  Tensor bias({256});
  bias.randn_(rng, 0.5f);
  for (auto _ : state) {
    Tensor y = ops::linear_forward(x, w, bias);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * 2L * 32 * 512 * 256);
}
BENCHMARK(BM_LinearForward);

void BM_MaxPool(benchmark::State& state) {
  Rng rng(9);
  Tensor x({8, 32, 32, 32});
  x.randn_(rng, 1.0f);
  std::vector<int> argmax;
  for (auto _ : state) {
    Tensor y = ops::maxpool_forward(x, 2, 2, argmax);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_MaxPool);

void BM_CnvInference(benchmark::State& state) {
  Rng rng(2);
  CnvConfig cfg = CnvConfig{}.scaled(0.25);
  BranchyModel model = build_cnv_with_exits(cfg, paper_exits_config(false), rng);
  Tensor x({1, 3, 32, 32});
  x.randn_(rng, 1.0f);
  for (auto _ : state) {
    auto outs = model.forward(x, false);
    benchmark::DoNotOptimize(outs.back().data());
  }
}
BENCHMARK(BM_CnvInference);

void BM_EvaluateExits(benchmark::State& state) {
  SyntheticSpec spec = cifar10_like_spec();
  spec.train_size = 8;
  spec.test_size = 256;
  SyntheticDataset data = make_synthetic(spec);
  Rng rng(5);
  CnvConfig cfg = CnvConfig{}.scaled(0.25);
  cfg.num_classes = spec.num_classes;
  BranchyModel model = build_cnv_with_exits(cfg, paper_exits_config(false), rng);
  const int threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto eval = evaluate_exits(model, data.test, 32, threads);
    benchmark::DoNotOptimize(eval.confidence.data());
  }
  state.SetItemsProcessed(state.iterations() * spec.test_size);
}
BENCHMARK(BM_EvaluateExits)->Arg(1)->Arg(4)->Unit(benchmark::kMillisecond);

void BM_TrainEpoch(benchmark::State& state) {
  SyntheticSpec spec = cifar10_like_spec();
  spec.train_size = 128;
  spec.test_size = 8;
  SyntheticDataset data = make_synthetic(spec);
  Rng rng(6);
  CnvConfig cfg = CnvConfig{}.scaled(0.25);
  cfg.num_classes = spec.num_classes;
  TrainConfig tc;
  tc.epochs = 1;
  tc.batch_size = 32;
  for (auto _ : state) {
    state.PauseTiming();
    BranchyModel model =
        build_cnv_with_exits(cfg, paper_exits_config(false), rng);
    state.ResumeTiming();
    auto history = train_model(model, data.train, spec.flip_symmetry, tc);
    benchmark::DoNotOptimize(history.data());
  }
  state.SetItemsProcessed(state.iterations() * spec.train_size);
}
BENCHMARK(BM_TrainEpoch)->Unit(benchmark::kMillisecond);

void BM_CompileAccelerator(benchmark::State& state) {
  Rng rng(3);
  CnvConfig cfg = CnvConfig{}.scaled(0.25);
  BranchyModel model = build_cnv_with_exits(cfg, paper_exits_config(false), rng);
  auto sites = walk_compute_layers(model, cfg.in_channels, cfg.image_size);
  auto folding = styled_folding(sites);
  for (auto _ : state) {
    Accelerator acc = compile_accelerator(model, folding, AcceleratorConfig{});
    benchmark::DoNotOptimize(acc.total.lut);
  }
}
BENCHMARK(BM_CompileAccelerator);

void BM_PipelineSim(benchmark::State& state) {
  Rng rng(4);
  CnvConfig cfg = CnvConfig{}.scaled(0.25);
  BranchyModel model = build_cnv_with_exits(cfg, paper_exits_config(false), rng);
  auto sites = walk_compute_layers(model, cfg.in_channels, cfg.image_size);
  auto folding = styled_folding(sites);
  Accelerator acc = compile_accelerator(model, folding, AcceleratorConfig{});
  std::vector<int> exits(static_cast<std::size_t>(state.range(0)));
  for (std::size_t i = 0; i < exits.size(); ++i) exits[i] = static_cast<int>(i % 3);
  for (auto _ : state) {
    auto result = simulate_pipeline(acc, exits);
    benchmark::DoNotOptimize(result.steady_ii_cycles);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_PipelineSim)->Arg(128)->Arg(1024);

void BM_EdgeEpisode(benchmark::State& state) {
  // A synthetic two-entry library keeps this independent of training.
  Library lib;
  lib.dataset = "bench";
  lib.reference_accuracy = 0.9;
  lib.static_power_w = 0.7;
  AcceleratorRecord a0;
  a0.id = 0;
  lib.accelerators.push_back(a0);
  AcceleratorRecord a1;
  a1.id = 1;
  a1.prune_rate_pct = 50;
  lib.accelerators.push_back(a1);
  LibraryEntry e0;
  e0.accel_id = 0;
  e0.variant = ModelVariant::kNotPrunedExits;
  e0.conf_threshold_pct = 50;
  e0.accuracy = 0.9;
  e0.exit_fractions = {0.5, 0.5};
  e0.ips = 500;
  e0.latency_ms = 3.0;
  e0.peak_power_w = 1.3;
  e0.energy_per_inf_j = 0.004;
  lib.entries.push_back(e0);
  LibraryEntry e1 = e0;
  e1.accel_id = 1;
  e1.prune_rate_pct = 50;
  e1.accuracy = 0.8;
  e1.ips = 1200;
  lib.entries.push_back(e1);

  EdgeScenario sc;
  sc.cameras = 20;
  sc.ips_per_camera = 30;
  for (auto _ : state) {
    auto m = simulate_edge(lib, {AdaptPolicy::kAdaPEx, 0.10}, sc);
    benchmark::DoNotOptimize(m.qoe);
  }
}
BENCHMARK(BM_EdgeEpisode);

}  // namespace

BENCHMARK_MAIN();
