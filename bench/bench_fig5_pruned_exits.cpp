// Figure 5: the pruned-exits design decision.
//
// Plots (a)-(d): average accuracy and latency vs pruning rate at confidence
// thresholds 5, 25, 50, 75% for "Pruned Exits" vs "Not Pruned Exits" on the
// CIFAR-10-like dataset. Expected shape: not pruning the exits recovers
// accuracy at heavy pruning + low thresholds (the exits, still full-width,
// out-resolve the shrunken backbone); latency drops with pruning,
// especially at low thresholds.
//
// Plot (e): BRAM/LUT/FF utilization vs pruning rate for both variants.
// Expected shape: negligible difference at light pruning; at heavy pruning
// the not-pruned exits' share grows (most visibly in BRAM — the branch
// FIFOs and exit buffers), so the purple/green curves separate.

#include "common.hpp"

namespace {

const adapex::LibraryEntry* find_entry(const adapex::Library& lib,
                                       adapex::ModelVariant v, int rate,
                                       int ct) {
  using adapex::ModelVariant;
  for (const auto& e : lib.entries) {
    if (e.variant == v && e.prune_rate_pct == rate &&
        e.conf_threshold_pct == ct) {
      return &e;
    }
  }
  // Rate 0 pruned-exits is deduplicated into not-pruned-exits.
  if (v == ModelVariant::kPrunedExits && rate == 0) {
    return find_entry(lib, ModelVariant::kNotPrunedExits, rate, ct);
  }
  return nullptr;
}

}  // namespace

int main() {
  using namespace adapex;
  using namespace adapex::bench;

  print_header("Figure 5",
               "accuracy & latency vs pruning rate, pruned vs not-pruned "
               "exits; resource usage (CIFAR-10-like)");
  Library lib = bench_library(cifar10_like_spec());

  std::vector<int> rates;
  for (const auto& a : lib.accelerators) {
    if (std::find(rates.begin(), rates.end(), a.prune_rate_pct) ==
        rates.end()) {
      rates.push_back(a.prune_rate_pct);
    }
  }
  std::sort(rates.begin(), rates.end());

  for (int ct : {5, 25, 50, 75}) {
    TextTable table({"prune_rate_pct", "acc_pruned_exits",
                     "acc_not_pruned_exits", "lat_ms_pruned_exits",
                     "lat_ms_not_pruned_exits"});
    for (int rate : rates) {
      const auto* pe = find_entry(lib, ModelVariant::kPrunedExits, rate, ct);
      const auto* npe =
          find_entry(lib, ModelVariant::kNotPrunedExits, rate, ct);
      if (pe == nullptr || npe == nullptr) continue;
      table.add_row({std::to_string(rate), TextTable::num(pe->accuracy, 3),
                     TextTable::num(npe->accuracy, 3),
                     TextTable::num(pe->latency_ms, 4),
                     TextTable::num(npe->latency_ms, 4)});
    }
    std::cout << "-- C.T. = " << ct << "% --\n";
    emit(table, "fig5_ct" + std::to_string(ct));
    std::cout << "\n";
  }

  // Plot (e): resources. Valid for all thresholds (hardware is unchanged by
  // the threshold).
  TextTable res({"prune_rate_pct", "variant", "bram", "lut", "ff",
                 "exit_share_bram_pct", "exit_share_lut_pct",
                 "exit_share_ff_pct"});
  for (int rate : rates) {
    for (ModelVariant v :
         {ModelVariant::kPrunedExits, ModelVariant::kNotPrunedExits}) {
      const AcceleratorRecord* rec = nullptr;
      for (const auto& a : lib.accelerators) {
        if (a.variant == v && a.prune_rate_pct == rate) rec = &a;
      }
      if (rec == nullptr && v == ModelVariant::kPrunedExits && rate == 0) {
        for (const auto& a : lib.accelerators) {
          if (a.variant == ModelVariant::kNotPrunedExits &&
              a.prune_rate_pct == 0) {
            rec = &a;
          }
        }
      }
      if (rec == nullptr) continue;
      auto share = [&](long part, long total) {
        return total > 0 ? 100.0 * static_cast<double>(part) / total : 0.0;
      };
      res.add_row(
          {std::to_string(rate), to_string(v),
           std::to_string(rec->resources.bram),
           std::to_string(rec->resources.lut), std::to_string(rec->resources.ff),
           TextTable::num(share(rec->exit_overhead.bram, rec->resources.bram), 1),
           TextTable::num(share(rec->exit_overhead.lut, rec->resources.lut), 1),
           TextTable::num(share(rec->exit_overhead.ff, rec->resources.ff), 1)});
    }
  }
  std::cout << "-- plot (e): resources --\n";
  emit(res, "fig5e_resources");
  return 0;
}
