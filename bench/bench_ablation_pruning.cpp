// Ablation: dataflow-aware pruning vs naive pruning.
//
// DESIGN.md calls out the dataflow-aware constraints ((remaining % PE) == 0
// and (remaining % SIMD_consumer) == 0) as the property that keeps every
// pruned model synthesizable against the user's folding. This bench
// quantifies both sides:
//   - synthesizability: the fraction of pruning rates whose naively pruned
//     model still validates against the folding config (paper's point: the
//     constraints make this 100% by construction);
//   - fidelity cost: how far the achieved pruning rate falls short of the
//     requested rate because of the constraints.

#include "common.hpp"

int main() {
  using namespace adapex;
  using namespace adapex::bench;

  print_header("Ablation", "dataflow-aware vs naive pruning");

  Rng rng(99);
  CnvConfig cfg = CnvConfig{}.scaled(ExperimentScale::from_env().width_scale);
  TextTable table({"requested_pct", "aware_achieved_pct",
                   "aware_synthesizable", "naive_achieved_pct",
                   "naive_synthesizable"});
  int aware_ok = 0, naive_ok = 0, total = 0;
  for (int rate = 0; rate <= 85; rate += 5) {
    BranchyModel base = build_cnv_with_exits(cfg, paper_exits_config(false), rng);
    auto sites = walk_compute_layers(base, cfg.in_channels, cfg.image_size);
    const FoldingConfig folding = styled_folding(sites);

    auto run = [&](bool naive) {
      BranchyModel model = base.clone();
      PruneOptions opts;
      opts.rate = rate / 100.0;
      opts.folding = folding;
      opts.ignore_dataflow_constraints = naive;
      auto report = prune_model(model, opts);
      bool synthesizable = true;
      try {
        auto pruned_sites =
            walk_compute_layers(model, cfg.in_channels, cfg.image_size);
        validate_folding(pruned_sites, folding);
      } catch (const ConfigError&) {
        synthesizable = false;
      }
      return std::make_pair(report.achieved_rate, synthesizable);
    };
    const auto [aware_rate, aware_synth] = run(false);
    const auto [naive_rate, naive_synth] = run(true);
    aware_ok += aware_synth ? 1 : 0;
    naive_ok += naive_synth ? 1 : 0;
    ++total;
    table.add_row({std::to_string(rate), TextTable::num(aware_rate * 100, 1),
                   aware_synth ? "yes" : "NO",
                   TextTable::num(naive_rate * 100, 1),
                   naive_synth ? "yes" : "NO"});
  }
  emit(table, "ablation_pruning");
  std::cout << "\nsynthesizable configs: dataflow-aware " << aware_ok << "/"
            << total << ", naive " << naive_ok << "/" << total << "\n";
  return 0;
}
