// Table I: averaged inference loss, accuracy, power, and latency over the
// 25-second smart-surveillance episodes (100 runs), for AdaPEx and the
// PR-Only / CT-Only / static-FINN baselines on both datasets.
//
// Expected shapes: AdaPEx has (near-)zero inference loss on both datasets
// while FINN loses ~20+%; AdaPEx latency is the lowest; AdaPEx accuracy
// sits below FINN's (the cost of adaptation) but within the configured 10%
// accuracy-loss budget; early-exit circuitry shows up as a power premium of
// the EE-based systems over the no-exit ones.
//
// Workload calibration: the paper offers 600 requests/s against a ~460 IPS
// full-model accelerator (FINN loses 22.8%). Our reduced-scale accelerator
// has a different absolute capacity, so the scenario is scaled to offer
// 1.30x the static-FINN throughput — the same overload regime.

#include "common.hpp"

int main() {
  using namespace adapex;
  using namespace adapex::bench;

  print_header("Table I",
               "inference loss / accuracy / power / latency, 4 systems x 2 "
               "datasets, 100 runs each");

  constexpr int kRuns = 100;
  TextTable table({"system", "dataset", "infer_loss_pct", "accuracy_pct",
                   "power_w", "latency_ms", "reconfigs_per_run"});
  for (const auto& dataset : {cifar10_like_spec(), gtsrb_like_spec()}) {
    Library lib = bench_library(dataset);
    EdgeScenario scenario = scale_to_library(EdgeScenario{}, lib, 1.30);
    scenario.seed = 42;
    for (AdaptPolicy policy :
         {AdaptPolicy::kAdaPEx, AdaptPolicy::kPrOnly, AdaptPolicy::kCtOnly,
          AdaptPolicy::kStaticFinn}) {
      const auto m =
          simulate_edge_runs(lib, {policy, 0.10}, scenario, kRuns);
      table.add_row({to_string(policy), lib.dataset,
                     TextTable::num(m.inference_loss_pct, 2),
                     TextTable::num(m.accuracy * 100.0, 2),
                     TextTable::num(m.avg_power_w, 3),
                     TextTable::num(m.avg_latency_ms, 3),
                     TextTable::num(static_cast<double>(m.reconfigurations) /
                                        kRuns,
                                    1)});
    }
  }
  emit(table, "table1_edge");
  return 0;
}
