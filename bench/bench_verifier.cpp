// Dataflow-verifier agreement sweep: static bounds vs. the simulator.
//
// Sweeps the CNV early-exit design space (prune rate x folding style x exit
// distribution, no training needed — the verifier only reads the compiled
// accelerator) and cross-validates the reach-aware static model against the
// transaction-level pipeline simulator on every point:
//
//   - the reach-scaled steady-state II must match the measured bottleneck
//     pace within 1%;
//   - every link's measured FIFO high-water mark must land inside the
//     static occupancy bounds [lower, upper].
//
// Beyond pass/fail, the bench reports *bound tightness* — how much slack
// the proven-sufficient upper bound leaves over the measured high-water
// mark (upper/measured, lower is better) — which is the figure of merit
// for using the bounds instead of simulation during design-space pruning.
//
//   ./build/bench/bench_verifier            # full sweep
//   ./build/bench/bench_verifier --smoke    # CI subset, exits nonzero on
//                                           # any disagreement
//
// Emits results/verifier_agreement.csv.

#include <algorithm>
#include <cstring>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/dataflow.hpp"
#include "common.hpp"
#include "pruning/pruning.hpp"

namespace {

using namespace adapex;

std::string fractions_label(const std::vector<double>& f) {
  std::ostringstream os;
  for (std::size_t i = 0; i < f.size(); ++i) {
    if (i > 0) os << "/";
    os << f[i];
  }
  return os.str();
}

std::string fmt(double v, int precision = 3) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(precision);
  os << v;
  return os.str();
}

struct SweepPoint {
  std::string style;
  int rate_pct = 0;
  std::vector<double> fractions;
};

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }

  bench::print_header("verifier", "static dataflow bounds vs. simulation");

  const std::vector<int> rates = smoke ? std::vector<int>{0, 50}
                                       : std::vector<int>{0, 25, 50, 75};
  const std::vector<std::string> styles =
      smoke ? std::vector<std::string>{"styled"}
            : std::vector<std::string>{"styled", "default"};
  const std::vector<std::vector<double>> fraction_grid =
      smoke ? std::vector<std::vector<double>>{{0.5, 0.3, 0.2},
                                               {0.1, 0.2, 0.7}}
            : std::vector<std::vector<double>>{{0.8, 0.15, 0.05},
                                               {0.5, 0.3, 0.2},
                                               {0.2, 0.3, 0.5},
                                               {1.0 / 3, 1.0 / 3, 1.0 / 3},
                                               {0.05, 0.05, 0.9}};

  std::vector<SweepPoint> points;
  for (const auto& style : styles) {
    for (int rate : rates) {
      for (const auto& fr : fraction_grid) {
        points.push_back({style, rate, fr});
      }
    }
  }

  TextTable table({"style", "prune%", "fractions", "images", "static_ii",
                   "measured_ii", "ii_err%", "links", "mean_up/hw",
                   "max_up/hw", "mean_hw/low", "result"});
  bench::Timer timer;
  int failures = 0;

  const double scale = 0.25;
  const CnvConfig cfg = CnvConfig{}.scaled(scale);
  for (const auto& point : points) {
    Rng rng(7);
    BranchyModel model =
        build_cnv_with_exits(cfg, paper_exits_config(false), rng);
    auto sites = walk_compute_layers(model, cfg.in_channels, cfg.image_size);
    const FoldingConfig folding = point.style == "styled"
                                      ? styled_folding(sites)
                                      : default_folding(sites);
    if (point.rate_pct > 0) {
      PruneOptions popts;
      popts.rate = point.rate_pct / 100.0;
      popts.folding = folding;
      popts.in_channels = cfg.in_channels;
      popts.image_size = cfg.image_size;
      prune_model(model, popts);
    }
    AcceleratorConfig acfg;
    const Accelerator acc = compile_accelerator(model, folding, acfg);

    const analysis::CrossValidation cv =
        analysis::cross_validate(acc, point.fractions);
    if (!cv.passed) {
      ++failures;
      std::cerr << "FAIL " << point.style << " rate " << point.rate_pct
                << "% fractions " << fractions_label(point.fractions) << ":\n"
                << cv.lint.format_table() << "\n";
    }

    double up_sum = 0.0;
    double up_max = 0.0;
    double low_sum = 0.0;
    for (const auto& link : cv.links) {
      const double hw = std::max(link.measured_high_water, 1);
      const double up = static_cast<double>(link.upper) / hw;
      up_sum += up;
      up_max = std::max(up_max, up);
      low_sum += hw / std::max(link.lower, 1);
    }
    const double n_links = std::max<std::size_t>(cv.links.size(), 1);
    table.add_row({point.style, std::to_string(point.rate_pct),
                   fractions_label(point.fractions),
                   std::to_string(cv.num_images), fmt(cv.static_ii_cycles, 1),
                   fmt(cv.measured_ii_cycles, 1), fmt(cv.ii_rel_err * 100.0),
                   std::to_string(cv.links.size()), fmt(up_sum / n_links, 2),
                   fmt(up_max, 2), fmt(low_sum / n_links, 2),
                   cv.passed ? "pass" : "FAIL"});
  }

  bench::emit(table, "verifier_agreement");
  std::cout << "\n" << points.size() << " design points, " << failures
            << " disagreement(s), " << fmt(timer.seconds(), 1) << "s\n";
  if (failures > 0) {
    std::cerr << "verifier sweep FAILED: static bounds disagree with "
                 "simulation on "
              << failures << " point(s)\n";
    return 1;
  }
  return 0;
}
