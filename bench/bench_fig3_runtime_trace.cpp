// Figure 3 (right side): the Runtime Manager at work over one episode — the
// selected pruning rate and confidence threshold (plot a) against the
// workload and delivered accuracy (plot b).
//
// Expected shape: at low workload the manager holds a low pruning rate and
// high confidence threshold (high accuracy); as the workload rises it first
// lowers the confidence threshold (free switch, faster inferences), then
// raises the pruning rate (FPGA reconfiguration to a smaller, faster
// accelerator) at a lower accuracy level.

#include "common.hpp"

int main() {
  using namespace adapex;
  using namespace adapex::bench;

  print_header("Figure 3", "runtime adaptation trace (one episode)");
  Library lib = bench_library(cifar10_like_spec());

  // A workload ramp makes the adaptation sequence visible: start below
  // FINN capacity, ramp well past it.
  EdgeScenario scenario = scale_to_library(EdgeScenario{}, lib, 0.7);
  scenario.deviation = 0.0;
  scenario.seed = 3;
  // Emulate the ramp by splicing three episodes at rising load and
  // concatenating their traces.
  TextTable table({"time_s", "workload_ips", "prune_rate_pct",
                   "conf_threshold_pct", "entry_accuracy", "reconfigured"});
  double t_offset = 0.0;
  for (double ratio : {0.7, 1.0, 1.3, 1.7, 2.2, 3.0}) {
    EdgeScenario phase = scale_to_library(scenario, lib, ratio);
    phase.duration_s = 6.0;
    auto m = simulate_edge(lib, {AdaptPolicy::kAdaPEx, 0.10}, phase);
    for (const auto& tp : m.trace) {
      table.add_row({TextTable::num(t_offset + tp.time_s, 1),
                     TextTable::num(tp.measured_ips, 0),
                     std::to_string(tp.prune_rate_pct),
                     std::to_string(tp.conf_threshold_pct),
                     TextTable::num(tp.entry_accuracy, 3),
                     tp.reconfigured ? "yes" : ""});
    }
    t_offset += phase.duration_s;
  }
  emit(table, "fig3_runtime_trace");
  return 0;
}
