// Figure 4: the design space AdaPEx opens — every (pruning rate, confidence
// threshold, exit-pruning variant) operating point plotted as throughput
// (IPS) vs accuracy (plots a, c) and energy per inference vs accuracy
// (plots b, d), for both datasets.
//
// Expected shapes: a broad Pareto frontier where higher accuracy costs
// throughput and energy; pruned-exit points (squares in the paper) extend
// the fast/low-energy end, not-pruned-exit points (circles) the accurate
// end; and an energy plateau beyond which extra joules buy no accuracy.

#include "common.hpp"

int main() {
  using namespace adapex;
  using namespace adapex::bench;

  print_header("Figure 4",
               "design space: IPS vs accuracy and energy vs accuracy, both "
               "datasets, pruned & not-pruned exits");

  for (const auto& dataset : {cifar10_like_spec(), gtsrb_like_spec()}) {
    Library lib = bench_library(dataset);
    TextTable table({"variant", "prune_rate_pct", "conf_threshold_pct",
                     "accuracy", "ips", "mj_per_inf"});
    double best_acc = 0.0, best_ips = 0.0;
    for (const auto& e : lib.entries) {
      if (e.variant == ModelVariant::kNoExit) continue;  // Fig 4 is EE space
      table.add_row({to_string(e.variant), std::to_string(e.prune_rate_pct),
                     std::to_string(e.conf_threshold_pct),
                     TextTable::num(e.accuracy, 3), TextTable::num(e.ips, 0),
                     TextTable::num(e.energy_per_inf_j * 1e3, 4)});
      best_acc = std::max(best_acc, e.accuracy);
      best_ips = std::max(best_ips, e.ips);
    }
    emit(table, "fig4_design_space_" + lib.dataset);
    std::cout << "dataset " << lib.dataset << ": " << table.csv().size()
              << " bytes, max accuracy " << TextTable::num(best_acc, 3)
              << ", max IPS " << TextTable::num(best_ips, 0) << "\n\n";
  }
  return 0;
}
