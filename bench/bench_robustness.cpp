// Robustness sweep: QoE and availability vs reconfiguration-failure rate.
//
// Injects bitstream-load failures at increasing probability and compares
// the self-healing Runtime Manager (graceful degradation: serve CT-adapted
// on the loaded bitstream between backoff-gated retries) against a
// no-fallback baseline (block-retry: the accelerator stays dark until a
// retry succeeds). The paper assumes reconfiguration always succeeds; this
// bench quantifies what the degradation path buys once it does not — the
// graceful manager should retain strictly higher QoE and availability from
// ~5% failure rate on.
//
//   ./build/bench/bench_robustness            # paper-scale library sweep
//   ./build/bench/bench_robustness --smoke    # CI: hand-built library
//
// Emits results/robustness.csv and results/robustness.json.

#include <cstring>
#include <string>
#include <vector>

#include "common.hpp"
#include "common/json.hpp"

namespace {

using namespace adapex;

LibraryEntry smoke_entry(int accel, ModelVariant v, int rate, int ct,
                         double acc, double ips, double lat_ms, double power_w,
                         double e_j) {
  LibraryEntry e;
  e.accel_id = accel;
  e.variant = v;
  e.prune_rate_pct = rate;
  e.conf_threshold_pct = ct;
  e.accuracy = acc;
  e.exit_fractions = v == ModelVariant::kNoExit
                         ? std::vector<double>{1.0}
                         : std::vector<double>{0.5, 0.5};
  e.ips = ips;
  e.latency_ms = lat_ms;
  e.peak_power_w = power_w;
  e.energy_per_inf_j = e_j;
  return e;
}

/// A hand-built two-bitstream library for the CI smoke run: no training
/// cost, but the same structure the sweep needs (a CT range on each
/// bitstream so degraded mode has somewhere to go).
Library smoke_library() {
  Library lib;
  lib.dataset = "robustness-smoke";
  lib.reference_accuracy = 0.90;
  lib.static_power_w = 0.7;
  for (int id = 0; id < 2; ++id) {
    AcceleratorRecord a;
    a.id = id;
    a.variant = ModelVariant::kNotPrunedExits;
    a.prune_rate_pct = id * 50;
    a.reconfig_ms = 145.0;
    lib.accelerators.push_back(a);
  }
  lib.entries = {
      smoke_entry(0, ModelVariant::kNotPrunedExits, 0, 50, 0.88, 120, 5.0,
                  1.35, 0.005),
      smoke_entry(0, ModelVariant::kNotPrunedExits, 0, 5, 0.84, 200, 3.0, 1.30,
                  0.004),
      smoke_entry(1, ModelVariant::kNotPrunedExits, 50, 50, 0.82, 350, 1.8,
                  1.20, 0.002),
      smoke_entry(1, ModelVariant::kNotPrunedExits, 50, 5, 0.78, 500, 1.2,
                  1.18, 0.0015),
  };
  return lib;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace adapex;
  using namespace adapex::bench;

  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }

  print_header("Robustness",
               "QoE/availability vs reconfiguration-failure rate");

  const Library lib =
      smoke ? smoke_library() : bench_library(cifar10_like_spec());
  EdgeScenario scenario;
  if (smoke) {
    // The hand-built library has no static-FINN point to scale against:
    // offer 1.3x the slow bitstream's throughput directly.
    scenario.ips_per_camera = 120.0 * 1.30 / scenario.cameras;
  } else {
    scenario = scale_to_library(scenario, lib, 1.30);
  }
  scenario.deviation = 0.6;  // swings force pruning-rate switches
  scenario.duration_s = 60.0;  // enough switches for low failure rates to bite
  scenario.seed = 42;
  const int runs = smoke ? 8 : 30;

  TextTable table({"fail_prob", "policy", "qoe_pct", "availability_pct",
                   "loss_pct", "failures", "retries", "watchdog",
                   "degraded_s"});
  Json json = Json::object();
  json["bench"] = "robustness";
  json["runs"] = runs;
  json["smoke"] = smoke;
  Json points = Json::array();

  bool gap_holds = true;
  for (double prob : {0.0, 0.02, 0.05, 0.10, 0.20, 0.40}) {
    scenario.faults.reconfig_fail_prob = prob;
    double qoe_by_policy[2] = {0.0, 0.0};
    double avail_by_policy[2] = {0.0, 0.0};
    int i = 0;
    for (FailurePolicy fp :
         {FailurePolicy::kGracefulDegrade, FailurePolicy::kBlockRetry}) {
      RuntimePolicy policy{AdaptPolicy::kAdaPEx, 0.10};
      policy.backoff.on_failure = fp;
      const auto m = simulate_edge_runs(lib, policy, scenario, runs);
      table.add_row({TextTable::num(prob, 2), to_string(fp),
                     TextTable::num(m.qoe * 100.0, 2),
                     TextTable::num(m.availability_pct, 2),
                     TextTable::num(m.inference_loss_pct, 2),
                     TextTable::num(m.reconfig_failures / double(runs), 1),
                     TextTable::num(m.reconfig_retries / double(runs), 1),
                     TextTable::num(m.watchdog_recoveries / double(runs), 1),
                     TextTable::num(m.degraded_time_s / double(runs), 2)});
      // Full metric dump via the finiteness-checked writer, plus the sweep
      // coordinates of this point.
      Json p = m.to_json();
      p["reconfig_fail_prob"] = prob;
      p["policy"] = to_string(fp);
      points.push_back(std::move(p));
      qoe_by_policy[i] = m.qoe;
      avail_by_policy[i] = m.availability_pct;
      ++i;
    }
    if (prob >= 0.05 && (qoe_by_policy[0] <= qoe_by_policy[1] ||
                         avail_by_policy[0] <= avail_by_policy[1])) {
      gap_holds = false;
    }
  }
  json["points"] = points;
  json["degradation_beats_blocking_at_5pct_plus"] = gap_holds;

  emit(table, "robustness");
  const std::string json_path = results_dir() + "/robustness.json";
  atomic_write_file(json_path, json.dump(1));
  std::cout << "[json] " << json_path << "\n";
  std::cout << (gap_holds
                    ? "OK: graceful degradation beats block-retry at every "
                      "failure rate >= 5%\n"
                    : "WARNING: degradation did not beat block-retry at some "
                      "failure rate >= 5%\n");
  return gap_holds ? 0 : 1;
}
