// Soft-error sweep: upset rate x mitigation ladder.
//
// Injects SEUs into weight and configuration memory at increasing
// per-period rates and walks the mitigation ladder — none, ECC on the
// weight BRAMs, ECC + periodic configuration scrubbing, and ECC + scrub +
// TMR'd exit heads — with paired upset streams (same seeds) so the ladders
// face identical fault sequences. Each added mitigation should remove a
// corruption source: the silent-corruption count must fall monotonically
// down the ladder, while the protection's cost (scrub dark time) becomes
// visible in availability. The exit code checks that trade-off.
//
//   ./build/bench/bench_seu            # paper-scale library sweep
//   ./build/bench/bench_seu --smoke    # CI: hand-built library
//
// Emits results/seu.csv and results/seu.json.

#include <cstring>
#include <string>
#include <vector>

#include "common.hpp"
#include "common/json.hpp"

namespace {

using namespace adapex;

LibraryEntry smoke_entry(int accel, ModelVariant v, int rate, int ct,
                         double acc, double ips, double lat_ms, double power_w,
                         double e_j) {
  LibraryEntry e;
  e.accel_id = accel;
  e.variant = v;
  e.prune_rate_pct = rate;
  e.conf_threshold_pct = ct;
  e.accuracy = acc;
  e.exit_fractions = v == ModelVariant::kNoExit
                         ? std::vector<double>{1.0}
                         : std::vector<double>{0.5, 0.5};
  e.ips = ips;
  e.latency_ms = lat_ms;
  e.peak_power_w = power_w;
  e.energy_per_inf_j = e_j;
  return e;
}

/// Hand-built two-bitstream early-exit library for the CI smoke run (the
/// exit heads matter: TMR needs something to triplicate — lint RF6).
Library smoke_library() {
  Library lib;
  lib.dataset = "seu-smoke";
  lib.reference_accuracy = 0.90;
  lib.static_power_w = 0.7;
  for (int id = 0; id < 2; ++id) {
    AcceleratorRecord a;
    a.id = id;
    a.variant = ModelVariant::kNotPrunedExits;
    a.prune_rate_pct = id * 50;
    a.reconfig_ms = 145.0;
    lib.accelerators.push_back(a);
  }
  lib.entries = {
      smoke_entry(0, ModelVariant::kNotPrunedExits, 0, 50, 0.88, 120, 5.0,
                  1.35, 0.005),
      smoke_entry(0, ModelVariant::kNotPrunedExits, 0, 5, 0.84, 200, 3.0, 1.30,
                  0.004),
      smoke_entry(1, ModelVariant::kNotPrunedExits, 50, 50, 0.82, 350, 1.8,
                  1.20, 0.002),
      smoke_entry(1, ModelVariant::kNotPrunedExits, 50, 5, 0.78, 500, 1.2,
                  1.18, 0.0015),
  };
  return lib;
}

struct Ladder {
  const char* name;
  SeuMitigation mitigation;
};

std::vector<Ladder> mitigation_ladder() {
  std::vector<Ladder> ladder(4);
  ladder[0].name = "none";
  ladder[1].name = "ecc";
  ladder[1].mitigation.ecc_weights = true;
  ladder[2].name = "ecc+scrub";
  ladder[2].mitigation = ladder[1].mitigation;
  ladder[2].mitigation.scrubbing = true;
  ladder[3].name = "ecc+scrub+tmr";
  ladder[3].mitigation = ladder[2].mitigation;
  ladder[3].mitigation.tmr_exit_heads = true;
  return ladder;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace adapex;
  using namespace adapex::bench;

  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }

  print_header("SEU", "silent corruptions vs upset rate x mitigation ladder");

  const Library lib =
      smoke ? smoke_library() : bench_library(cifar10_like_spec());
  EdgeScenario scenario;
  if (smoke) {
    scenario.ips_per_camera = 120.0 * 0.70 / scenario.cameras;
  } else {
    // Below saturation: SEU damage, not queueing, should dominate.
    scenario = scale_to_library(scenario, lib, 0.70);
  }
  scenario.deviation = 0.2;
  scenario.duration_s = 60.0;
  scenario.seed = 42;
  const int runs = smoke ? 8 : 30;

  TextTable table({"upset_prob", "mitigation", "silent/run", "detected/run",
                   "undetected/run", "corrected/run", "accuracy_pct",
                   "scrubs/run", "reloads/run", "scrub_s", "avail_pct"});
  Json json = Json::object();
  json["bench"] = "seu";
  json["runs"] = runs;
  json["smoke"] = smoke;
  Json points = Json::array();

  const std::vector<Ladder> ladder = mitigation_ladder();
  bool monotone = true;
  bool full_beats_none_somewhere = false;
  for (double prob : {0.0, 0.02, 0.05, 0.10, 0.20}) {
    scenario.faults.seu_weight_prob = prob;
    scenario.faults.seu_config_prob = prob;
    std::vector<double> silent_per_run;
    for (const Ladder& step : ladder) {
      scenario.faults.mitigation = step.mitigation;
      RuntimePolicy policy{AdaptPolicy::kAdaPEx, 0.10};
      const auto m = simulate_edge_runs(lib, policy, scenario, runs);
      const double silent = m.silent_corruptions / double(runs);
      silent_per_run.push_back(silent);
      table.add_row({TextTable::num(prob, 2), step.name,
                     TextTable::num(silent, 1),
                     TextTable::num(m.seu_detected / double(runs), 1),
                     TextTable::num(m.seu_undetected / double(runs), 1),
                     TextTable::num(m.seu_corrected / double(runs), 1),
                     TextTable::num(m.accuracy * 100.0, 2),
                     TextTable::num(m.seu_scrubs / double(runs), 1),
                     TextTable::num(m.seu_reloads / double(runs), 1),
                     TextTable::num(m.scrub_overhead_s / double(runs), 3),
                     TextTable::num(m.availability_pct, 2)});
      Json p = m.to_json();
      p["upset_prob"] = prob;
      p["mitigation"] = step.name;
      points.push_back(std::move(p));
    }
    // Every ladder step must remove corruption, never add it (paired upset
    // streams make this a like-for-like comparison).
    for (std::size_t i = 1; i < silent_per_run.size(); ++i) {
      if (silent_per_run[i] > silent_per_run[i - 1] + 1e-9) monotone = false;
    }
    if (prob > 0.0 && silent_per_run.back() < silent_per_run.front()) {
      full_beats_none_somewhere = true;
    }
  }
  json["points"] = points;
  json["ladder_monotone"] = monotone;
  json["full_mitigation_beats_none"] = full_beats_none_somewhere;

  emit(table, "seu");
  const std::string json_path = results_dir() + "/seu.json";
  atomic_write_file(json_path, json.dump(1));
  std::cout << "[json] " << json_path << "\n";
  const bool ok = monotone && full_beats_none_somewhere;
  std::cout << (ok ? "OK: silent corruptions fall monotonically down the "
                     "mitigation ladder\n"
                   : "WARNING: the mitigation ladder did not monotonically "
                     "reduce silent corruptions\n");
  return ok ? 0 : 1;
}
