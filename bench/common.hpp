// Shared helpers for the experiment benches.
//
// Every bench regenerates one of the paper's tables/figures from the same
// pair of cached libraries (one per dataset). The first bench to run pays
// the generation cost (bench_00_generate_libraries exists to do exactly
// that, and bench binaries sort alphabetically); later benches load the
// cached JSON. Results are printed as aligned tables and also written as
// CSV under results/.

#pragma once

#include <chrono>
#include <filesystem>
#include <iostream>
#include <string>

#include "common/integrity.hpp"
#include "common/table.hpp"
#include "core/adapex.hpp"

namespace adapex::bench {

inline std::string artifact_dir() { return default_artifact_dir(); }

inline std::string results_dir() {
  const std::string dir = "results";
  std::filesystem::create_directories(dir);
  return dir;
}

/// The generation spec for one of the two evaluation datasets at the
/// environment-selected scale (ADAPEX_SCALE).
inline LibraryGenSpec bench_spec(const SyntheticSpec& dataset) {
  auto spec = make_gen_spec(dataset, ExperimentScale::from_env());
  spec.on_progress = [](const std::string& s) {
    std::cerr << "    [gen] " << s << "\n";
  };
  return spec;
}

/// Loads (or generates) the library for a dataset.
inline Library bench_library(const SyntheticSpec& dataset) {
  return generate_or_load_library(bench_spec(dataset), artifact_dir());
}

/// Prints a header naming the paper artifact being regenerated.
inline void print_header(const std::string& id, const std::string& what) {
  std::cout << "\n=== " << id << ": " << what << " ===\n";
  std::cout << "(scale preset: " << ExperimentScale::from_env().name
            << "; shapes reproduce the paper, absolute numbers are at reduced"
               " scale — see EXPERIMENTS.md)\n\n";
}

/// Writes a table to results/<name>.csv (atomic publish: a reader — or a
/// bench killed mid-write — never leaves a torn CSV behind) and prints it.
inline void emit(const TextTable& table, const std::string& name) {
  table.print(std::cout);
  const std::string path = results_dir() + "/" + name + ".csv";
  atomic_write_file(path, table.csv());
  std::cout << "[csv] " << path << "\n";
}

class Timer {
 public:
  Timer() : start_(std::chrono::steady_clock::now()) {}
  double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace adapex::bench
