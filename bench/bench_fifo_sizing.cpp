// FIFO sizing report — the simulation-driven step behind the paper's
// observation that early-exit overhead lands mainly in BRAM: the branch
// module duplicates the feature-map stream, and the copy must be buffered
// while the (slower) exit head drains it.
//
// Prints the per-link depth requirements for the early-exit CNV at several
// exit mixes, highlighting the branch links, plus the total FIFO BRAM
// budget per configuration.

#include "common.hpp"

#include "finn/fifo_sizing.hpp"

int main() {
  using namespace adapex;
  using namespace adapex::bench;

  print_header("FIFO sizing",
               "simulation-driven FIFO depths (branch links dominate BRAM)");

  Rng rng(47);
  CnvConfig cfg = CnvConfig{}.scaled(ExperimentScale::from_env().width_scale);
  BranchyModel model = build_cnv_with_exits(cfg, paper_exits_config(false), rng);
  auto sites = walk_compute_layers(model, cfg.in_channels, cfg.image_size);
  Accelerator acc =
      compile_accelerator(model, styled_folding(sites), AcceleratorConfig{});

  struct Mix {
    const char* name;
    int pattern_mod;  // image i exits at (i % 4 < pattern_mod) ? 0 : 2
  };
  TextTable totals({"exit_mix", "total_fifo_bram", "max_link_depth_images"});
  for (Mix mix : {Mix{"all_final", 0}, Mix{"half_early", 2},
                  Mix{"mostly_early", 3}}) {
    std::vector<int> exits(96);
    for (std::size_t i = 0; i < exits.size(); ++i) {
      exits[i] = static_cast<int>(i % 4) < mix.pattern_mod ? 0 : 2;
    }
    auto reqs = size_fifos(acc, exits);
    int max_depth = 0;
    for (const auto& r : reqs) max_depth = std::max(max_depth, r.depth_images);
    totals.add_row({mix.name, std::to_string(total_fifo_bram(reqs)),
                    std::to_string(max_depth)});

    if (mix.pattern_mod == 2) {
      std::cout << "-- per-link report (half_early) --\n";
      TextTable links({"link", "depth_images", "depth_elements", "bram"});
      for (const auto& r : reqs) {
        const auto& p = acc.modules[static_cast<std::size_t>(r.producer)];
        const auto& c = acc.modules[static_cast<std::size_t>(r.consumer)];
        links.add_row({p.name + " -> " + c.name,
                       std::to_string(r.depth_images),
                       std::to_string(r.depth_elements),
                       std::to_string(r.bram)});
      }
      emit(links, "fifo_sizing_links");
      std::cout << "\n";
    }
  }
  emit(totals, "fifo_sizing_totals");
  return 0;
}
