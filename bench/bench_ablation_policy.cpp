// Ablation: runtime search-policy knobs.
//
// Two knobs of the Runtime Manager beyond the paper's defaults:
//   - accuracy threshold (the user budget; paper uses 10%),
//   - throughput headroom (feasibility margin over the measured workload).
// This bench sweeps both and reports the loss/accuracy/QoE frontier —
// showing the budget knob trading accuracy for served volume exactly as
// the paper describes ("this cost is controlled by the user through the
// accuracy threshold").

#include "common.hpp"

int main() {
  using namespace adapex;
  using namespace adapex::bench;

  print_header("Ablation", "runtime policy: accuracy budget & headroom");
  Library lib = bench_library(cifar10_like_spec());
  EdgeScenario scenario = scale_to_library(EdgeScenario{}, lib, 1.30);
  scenario.seed = 42;
  constexpr int kRuns = 30;

  TextTable budget({"accuracy_budget_pct", "loss_pct", "accuracy_pct",
                    "qoe_pct", "edp_uj_s"});
  for (double b : {0.02, 0.05, 0.10, 0.20, 0.40}) {
    RuntimePolicy policy{AdaptPolicy::kAdaPEx, b};
    auto m = simulate_edge_runs(lib, policy, scenario, kRuns);
    budget.add_row({TextTable::num(b * 100, 0),
                    TextTable::num(m.inference_loss_pct, 2),
                    TextTable::num(m.accuracy * 100, 2),
                    TextTable::num(m.qoe * 100, 2),
                    TextTable::num(m.edp * 1e6, 3)});
  }
  std::cout << "-- accuracy budget sweep --\n";
  emit(budget, "ablation_policy_budget");

  TextTable headroom({"ips_headroom", "loss_pct", "accuracy_pct", "qoe_pct",
                      "reconfigs_per_run"});
  for (double h : {1.0, 1.05, 1.1, 1.25, 1.5}) {
    RuntimePolicy policy{AdaptPolicy::kAdaPEx, 0.10, h};
    auto m = simulate_edge_runs(lib, policy, scenario, kRuns);
    headroom.add_row({TextTable::num(h, 2),
                      TextTable::num(m.inference_loss_pct, 2),
                      TextTable::num(m.accuracy * 100, 2),
                      TextTable::num(m.qoe * 100, 2),
                      TextTable::num(static_cast<double>(m.reconfigurations) /
                                         kRuns,
                                     1)});
  }
  std::cout << "\n-- throughput headroom sweep --\n";
  emit(headroom, "ablation_policy_headroom");
  return 0;
}
