// Packed W2A2 popcount-GEMM bench: packed vs float GEMM throughput across
// the CNV layer shapes at every supported ISA tier, the activation-packing
// amortization curve, and the end-to-end evaluate_exits() speedup of the
// packed inference path over the float layer graph (the PR's >=3x gate).
//
//   ./build/bench/bench_packed            # full tables + speedup measurement
//   ./build/bench/bench_packed --smoke    # CI gate: packed/float decision
//                                         # identity + a loose speedup bound
//
// The smoke mode is wired into the perf-smoke CI job; the measured-machine
// numbers are snapshotted in BENCH_10.json.

#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "common.hpp"
#include "tensor/ops.hpp"
#include "tensor/packed.hpp"

namespace adapex {
namespace {

using bench::Timer;

/// One GEMM problem shaped like a CNV layer: rows = output channels,
/// k = C_in * 3 * 3 (or in_features), cols = output pixels (or batch).
struct Shape {
  const char* name;
  int rows;
  int k;
  int cols;
};

// The full-scale CNV backbone (conv 64..256, fc 512) plus one pruned
// layer whose k is not a multiple of 64 (tail-lane handling is on the
// hot path for every pruned design point).
const Shape kShapes[] = {
    {"conv1 64x576x1024", 64, 3 * 64 * 9 / 3, 1024},  // 64 in-ch, 32x32
    {"conv3 128x1152x256", 128, 128 * 9, 256},
    {"conv5 256x2304x64", 256, 256 * 9, 64},
    {"fc1 512x4096xB32", 512, 4096, 32},
    {"pruned 91x1017x256", 91, 113 * 9, 256},
};

double flops(const Shape& s) {
  return 2.0 * s.rows * s.k * s.cols;
}

std::vector<std::int8_t> ternary_codes(int rows, int k, Rng& rng) {
  std::vector<std::int8_t> w(static_cast<std::size_t>(rows) * k);
  for (auto& c : w) {
    const double u = rng.uniform();
    c = u < 0.4 ? std::int8_t{0} : (u < 0.7 ? std::int8_t{1} : std::int8_t{-1});
  }
  return w;
}

std::vector<std::uint8_t> act_codes(int cols, int k, Rng& rng) {
  std::vector<std::uint8_t> a(static_cast<std::size_t>(cols) * k);
  for (auto& c : a) {
    c = static_cast<std::uint8_t>(rng.uniform() * 3.999);
  }
  return a;
}

/// Runs fn repeatedly until ~min_s wall seconds elapse; returns seconds per
/// call.
template <typename Fn>
double time_per_call(Fn&& fn, double min_s = 0.10) {
  fn();  // warm up (and fault in the buffers)
  int iters = 1;
  for (;;) {
    Timer t;
    for (int i = 0; i < iters; ++i) fn();
    const double s = t.seconds();
    if (s >= min_s) return s / iters;
    iters = s > 1e-4 ? static_cast<int>(iters * (min_s / s) + 1) : iters * 10;
  }
}

/// Packed vs float GEMM GOPS across the CNV shapes, one row per
/// (shape, tier); float baseline is the blocked ops::gemm_accumulate.
void gemm_table(bool smoke) {
  std::vector<std::string> tiers;
  const std::string initial = packed::active_isa();
  for (const char* isa : {"scalar", "avx2", "avx512", "avx512vp"}) {
    try {
      packed::force_isa(isa);
      tiers.emplace_back(isa);
    } catch (const ConfigError&) {
    }
  }
  packed::force_isa(initial.c_str());

  TextTable table({"shape", "tier", "packed_gops", "float_gops", "speedup"});
  Rng rng(11);
  for (const Shape& s : kShapes) {
    if (smoke && std::strncmp(s.name, "conv3", 5) != 0) continue;

    // Float baseline: C[rows,cols] += A[rows,k] * B[k,cols].
    std::vector<float> fa(static_cast<std::size_t>(s.rows) * s.k, 0.5f);
    std::vector<float> fb(static_cast<std::size_t>(s.k) * s.cols, 0.25f);
    std::vector<float> fc(static_cast<std::size_t>(s.rows) * s.cols);
    const double float_s = time_per_call([&] {
      ops::gemm_accumulate(fa.data(), fb.data(), fc.data(), s.rows, s.k,
                           s.cols);
    });
    const double float_gops = flops(s) / float_s * 1e-9;

    const auto wc = ternary_codes(s.rows, s.k, rng);
    const auto ac = act_codes(s.cols, s.k, rng);
    packed::PackedWeights w;
    packed::pack_weights(wc.data(), s.rows, s.k, w);
    packed::PackedActivations a;
    packed::pack_activations(ac.data(), s.cols, s.k, a);
    std::vector<std::int32_t> out(static_cast<std::size_t>(s.rows) * s.cols);
    packed::Epilogue e;
    e.mode = packed::Epilogue::Mode::kInt32;
    e.s32 = out.data();
    e.row_stride = static_cast<std::size_t>(s.cols);

    for (const std::string& isa : tiers) {
      packed::force_isa(isa.c_str());
      const double packed_s =
          time_per_call([&] { packed::popcount_gemm(w, a, e); });
      const double packed_gops = flops(s) / packed_s * 1e-9;
      table.add_row({s.name, isa, TextTable::num(packed_gops, 1),
                     TextTable::num(float_gops, 1),
                     TextTable::num(packed_gops / float_gops, 2)});
    }
  }
  packed::force_isa(initial.c_str());
  bench::emit(table, "bench_packed_gemm");
}

/// Activation-packing amortization: packing is O(cols*k) while the GEMM is
/// O(rows*cols*k), so the packing share of a layer's time falls as 1/rows.
/// The curve locates the row count where packing drops below 10% overhead.
void amortization_curve() {
  TextTable table(
      {"rows", "pack_ms", "gemm_ms", "pack_share_pct", "eff_speedup_vs_float"});
  const int k = 1152, cols = 256;
  Rng rng(13);
  const auto ac = act_codes(cols, k, rng);
  for (int rows : {8, 16, 32, 64, 128, 256}) {
    const auto wc = ternary_codes(rows, k, rng);
    packed::PackedWeights w;
    packed::pack_weights(wc.data(), rows, k, w);
    packed::PackedActivations a;
    const double pack_s = time_per_call(
        [&] { packed::pack_activations(ac.data(), cols, k, a); });
    std::vector<std::int32_t> out(static_cast<std::size_t>(rows) * cols);
    packed::Epilogue e;
    e.mode = packed::Epilogue::Mode::kInt32;
    e.s32 = out.data();
    e.row_stride = static_cast<std::size_t>(cols);
    const double gemm_s =
        time_per_call([&] { packed::popcount_gemm(w, a, e); });

    std::vector<float> fa(static_cast<std::size_t>(rows) * k, 0.5f);
    std::vector<float> fb(static_cast<std::size_t>(k) * cols, 0.25f);
    std::vector<float> fc(static_cast<std::size_t>(rows) * cols);
    const double float_s = time_per_call(
        [&] { ops::gemm_accumulate(fa.data(), fb.data(), fc.data(), rows, k,
                                   cols); });

    table.add_row({std::to_string(rows), TextTable::num(pack_s * 1e3, 3),
                   TextTable::num(gemm_s * 1e3, 3),
                   TextTable::num(pack_s / (pack_s + gemm_s) * 100.0, 1),
                   TextTable::num(float_s / (pack_s + gemm_s), 2)});
  }
  bench::emit(table, "bench_packed_amortization");
}

struct EvalFixture {
  SyntheticDataset data;
  BranchyModel model;
};

EvalFixture make_eval_fixture(int test_size, double scale) {
  SyntheticSpec spec = cifar10_like_spec();
  spec.train_size = 64;
  spec.test_size = test_size;
  Rng rng(42);
  CnvConfig cfg = CnvConfig{}.scaled(scale);
  cfg.num_classes = spec.num_classes;
  EvalFixture fx{make_synthetic(spec),
                 build_cnv_with_exits(cfg, paper_exits_config(false), rng)};
  TrainConfig tc;
  tc.epochs = 1;
  tc.batch_size = 16;
  train_model(fx.model, fx.data.train, spec.flip_symmetry, tc);
  return fx;
}

/// Gate: packed and float evaluation must agree on every argmax decision
/// (ExitEvaluation::correct) and on every derived threshold decision.
/// Returns the measured packed-over-float speedup.
double eval_speedup_and_identity(EvalFixture& fx, int repeats) {
  const auto f = evaluate_exits(fx.model, fx.data.test, 32, 1,
                                PackedMode::kOff);
  const auto p = evaluate_exits(fx.model, fx.data.test, 32, 1,
                                PackedMode::kOn);
  if (f.correct != p.correct) {
    std::cerr << "FAIL: packed vs float argmax-correctness records differ\n";
    std::exit(2);
  }
  for (int t = 0; t <= 100; t += 5) {
    const auto sf = apply_threshold(f, t / 100.0);
    const auto sp = apply_threshold(p, t / 100.0);
    if (sf.accuracy != sp.accuracy || sf.exit_fraction != sp.exit_fraction) {
      std::cerr << "FAIL: threshold " << t << " decisions differ\n";
      std::exit(2);
    }
  }
  std::cout << "decision identity: OK (correct records byte-equal, all "
               "thresholds 0..100 identical)\n";

  double float_s = 1e300, packed_s = 1e300;  // best-of-N vs noise
  for (int r = 0; r < repeats; ++r) {
    Timer tf;
    auto ef = evaluate_exits(fx.model, fx.data.test, 32, 1, PackedMode::kOff);
    float_s = std::min(float_s, tf.seconds());
    Timer tp;
    auto ep = evaluate_exits(fx.model, fx.data.test, 32, 1, PackedMode::kOn);
    packed_s = std::min(packed_s, tp.seconds());
  }
  std::cout << "evaluate_exits float: " << TextTable::num(float_s * 1e3, 1)
            << " ms, packed: " << TextTable::num(packed_s * 1e3, 1)
            << " ms (freeze included), speedup "
            << TextTable::num(float_s / packed_s, 2) << "x on "
            << packed::active_isa() << "\n";
  return float_s / packed_s;
}

int run(bool smoke) {
  bench::print_header("BENCH packed",
                      "bit-packed W2A2 popcount inference vs float path");
  std::cout << "active packed ISA tier: " << packed::active_isa() << "\n";

  gemm_table(smoke);
  if (!smoke) amortization_curve();

  // Smoke uses a smaller test set so the gate stays fast on CI; the full
  // mode measures at the scale evaluate_exits runs during generation.
  EvalFixture fx = smoke ? make_eval_fixture(128, 0.125)
                         : make_eval_fixture(256, 0.25);
  const double speedup = eval_speedup_and_identity(fx, smoke ? 2 : 3);

  // The PR gate is >=3x at generation scale; the smoke bound is looser
  // because shared CI runners are noisy and the smoke model is smaller.
  const double bound = smoke ? 2.0 : 3.0;
  if (speedup < bound) {
    std::cerr << "FAIL: packed evaluate_exits speedup " << speedup
              << "x below the " << bound << "x gate\n";
    return 1;
  }
  std::cout << (smoke ? "[smoke] " : "") << "packed speedup gate (>="
            << bound << "x): OK\n";
  return 0;
}

}  // namespace
}  // namespace adapex

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  return adapex::run(smoke);
}
