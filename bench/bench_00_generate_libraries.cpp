// Warms the library cache both evaluation datasets depend on.
//
// Runs the full AdaPEx design-time flow (early-exit training,
// dataflow-aware pruning sweep, retraining, accelerator synthesis, library
// table) for the CIFAR-10-like and GTSRB-like datasets. Every figure/table
// bench loads these cached libraries, so running this binary first (bench
// binaries sort alphabetically) makes the rest fast.
//
// The design-point sweep is parallel (ADAPEX_THREADS, default: all cores)
// and byte-identical at any thread count. When the library is actually
// generated (cache miss) on more than one thread, the bench also times a
// serial regeneration and reports the speedup; set ADAPEX_BENCH_SPEEDUP=0
// to skip that extra serial run.

#include <cstdlib>
#include <filesystem>

#include "common.hpp"
#include "common/thread_pool.hpp"

int main() {
  using namespace adapex;
  using namespace adapex::bench;

  const char* speedup_env = std::getenv("ADAPEX_BENCH_SPEEDUP");
  const bool want_speedup = speedup_env == nullptr ||
                            std::string(speedup_env) != "0";

  print_header("setup", "AdaPEx design-time flow (library generation)");
  for (const auto& dataset : {cifar10_like_spec(), gtsrb_like_spec()}) {
    LibraryGenSpec spec = bench_spec(dataset);
    const std::size_t threads = spec.num_threads > 0
                                    ? static_cast<std::size_t>(spec.num_threads)
                                    : ThreadPool::env_thread_count();
    const std::string cached_path = artifact_dir() + "/library_" +
                                    library_cache_key(spec) + ".json";
    const bool cache_hit = std::filesystem::exists(cached_path);

    Timer timer;
    std::cout << "dataset " << dataset.name << " (" << threads
              << " threads)...\n";
    Library lib = generate_or_load_library(spec, artifact_dir());
    const double parallel_s = timer.seconds();

    std::string serial_s = "-";
    std::string speedup = "-";
    if (!cache_hit && want_speedup && threads > 1) {
      std::cout << "  serial baseline (ADAPEX_THREADS=1)...\n";
      LibraryGenSpec serial_spec = spec;
      serial_spec.num_threads = 1;
      Timer serial_timer;
      Library serial_lib = generate_library(serial_spec);
      const double s = serial_timer.seconds();
      serial_s = TextTable::num(s, 1);
      speedup = TextTable::num(s / parallel_s, 2) + "x";
      // Determinism spot check: the parallel sweep must reproduce the
      // serial bytes exactly (see generator.hpp).
      if (serial_lib.to_json().dump(1) != lib.to_json().dump(1)) {
        std::cerr << "ERROR: parallel library differs from serial library\n";
        return 1;
      }
    }

    TextTable table({"dataset", "entries", "accelerators", "ref_accuracy",
                     "threads", "gen_or_load_s", "serial_s", "speedup"});
    table.add_row({lib.dataset, std::to_string(lib.entries.size()),
                   std::to_string(lib.accelerators.size()),
                   TextTable::num(lib.reference_accuracy, 3),
                   std::to_string(threads), TextTable::num(parallel_s, 1),
                   serial_s, speedup});
    emit(table, "setup_" + lib.dataset);
  }
  return 0;
}
