// Warms the library cache both evaluation datasets depend on.
//
// Runs the full AdaPEx design-time flow (early-exit training,
// dataflow-aware pruning sweep, retraining, accelerator synthesis, library
// table) for the CIFAR-10-like and GTSRB-like datasets. Every figure/table
// bench loads these cached libraries, so running this binary first (bench
// binaries sort alphabetically) makes the rest fast.
//
// The design-point sweep is parallel (ADAPEX_THREADS, default: all cores)
// and byte-identical at any thread count. When the library is actually
// generated (cache miss) on more than one thread, the bench also times a
// serial regeneration and reports the speedup; set ADAPEX_BENCH_SPEEDUP=0
// to skip that extra serial run.
//
// `--smoke` switches to the crash-safety drill (CI's robustness-smoke job):
// a bounded sweep runs uninterrupted for reference, a journaled run is
// killed mid-sweep by an induced design-point fault, the resume must
// reproduce the reference bytes exactly, and a fresh journaled run gates
// the checkpoint overhead (sum of per-point publish time over summed
// per-point compute time) under 2%. Exit code 1 on any violation.

#include <cstdlib>
#include <filesystem>
#include <iostream>

#include "common.hpp"
#include "common/thread_pool.hpp"

namespace {

using namespace adapex;
using namespace adapex::bench;

/// A sweep small enough to run three times in CI yet wide enough to cross
/// all three families (8 design points).
LibraryGenSpec smoke_spec() {
  auto spec = make_gen_spec(cifar10_like_spec(), ExperimentScale::tiny());
  spec.dataset.train_size = 120;
  spec.dataset.test_size = 60;
  spec.initial_train.epochs = 3;
  spec.retrain.epochs = 1;
  spec.prune_rates_pct = {0, 25, 50};
  spec.conf_thresholds_pct = {0, 50};
  return spec;
}

int run_smoke() {
  print_header("smoke",
               "crash-safe generation: interrupt/resume identity and "
               "checkpoint overhead");
  const std::string journal = results_dir() + "/smoke_journal";
  const std::string journal_clean = journal + "_overhead";
  std::filesystem::remove_all(journal);
  std::filesystem::remove_all(journal_clean);

  // 1. Uninterrupted journal-free run: the identity reference and the
  //    no-journal wall-time baseline.
  LibraryGenSpec ref_spec = smoke_spec();
  GenerationReport ref_report;
  ref_spec.report = &ref_report;
  std::cout << "reference run (no journal)...\n";
  Timer ref_timer;
  const std::string ref_bytes =
      generate_library(ref_spec).to_json().dump(1);
  const double ref_s = ref_timer.seconds();

  // 2. Journaled run killed mid-sweep: an induced fault quarantines one
  //    design point, PartialPolicy::kFail aborts the run — but every point
  //    that finished first was already checkpointed.
  LibraryGenSpec crash_spec = smoke_spec();
  crash_spec.journal_dir = journal;
  crash_spec.point_fault_hook = [](std::size_t i, int) {
    if (i == 4) throw ConfigError("induced mid-sweep failure");
  };
  GenerationReport crash_report;
  crash_spec.report = &crash_report;
  std::cout << "journaled run with induced mid-sweep failure...\n";
  bool aborted = false;
  try {
    generate_library(crash_spec);
  } catch (const ConfigError&) {
    aborted = true;
  }
  if (!aborted) {
    std::cerr << "ERROR: induced failure did not abort the journaled run\n";
    return 1;
  }

  // 3. Resume: replay the survivors, recompute the rest, demand identity.
  LibraryGenSpec resume_spec = smoke_spec();
  resume_spec.journal_dir = journal;
  GenerationReport resume_report;
  resume_spec.report = &resume_report;
  std::cout << "resuming from the journal...\n";
  const std::string resumed_bytes =
      generate_library(resume_spec).to_json().dump(1);
  const bool identical = resumed_bytes == ref_bytes;
  if (!identical) {
    std::cerr << "ERROR: resumed library differs from the uninterrupted "
                 "reference\n";
  }
  if (resume_report.count(PointStatus::kReplayed) == 0) {
    std::cerr << "ERROR: resume replayed nothing — the journal was ignored\n";
    return 1;
  }

  // 4. Fresh journaled run end to end: the checkpoint-overhead gate.
  LibraryGenSpec ovh_spec = smoke_spec();
  ovh_spec.journal_dir = journal_clean;
  GenerationReport ovh_report;
  ovh_spec.report = &ovh_report;
  std::cout << "fresh journaled run (overhead measurement)...\n";
  Timer ovh_timer;
  generate_library(ovh_spec);
  const double journaled_s = ovh_timer.seconds();
  const double overhead = ovh_report.checkpoint_overhead();

  TextTable table({"reference_s", "journaled_s", "resume_replayed",
                   "resume_computed", "checkpoint_overhead_pct",
                   "resume_identical"});
  table.add_row(
      {TextTable::num(ref_s, 1), TextTable::num(journaled_s, 1),
       std::to_string(resume_report.count(PointStatus::kReplayed)),
       std::to_string(resume_report.count(PointStatus::kComputed)),
       TextTable::num(100.0 * overhead, 3), identical ? "yes" : "NO"});
  emit(table, "smoke_resume");
  std::cout << "resume report: " << resume_report.summary() << "\n";

  std::filesystem::remove_all(journal);
  std::filesystem::remove_all(journal_clean);
  if (!identical) return 1;
  if (overhead >= 0.02) {
    std::cerr << "ERROR: checkpoint overhead "
              << TextTable::num(100.0 * overhead, 3)
              << "% exceeds the 2% budget\n";
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace adapex;
  using namespace adapex::bench;

  if (argc > 1 && std::string(argv[1]) == "--smoke") return run_smoke();

  const char* speedup_env = std::getenv("ADAPEX_BENCH_SPEEDUP");
  const bool want_speedup = speedup_env == nullptr ||
                            std::string(speedup_env) != "0";

  print_header("setup", "AdaPEx design-time flow (library generation)");
  for (const auto& dataset : {cifar10_like_spec(), gtsrb_like_spec()}) {
    LibraryGenSpec spec = bench_spec(dataset);
    const std::size_t threads = spec.num_threads > 0
                                    ? static_cast<std::size_t>(spec.num_threads)
                                    : ThreadPool::env_thread_count();
    const std::string cached_path = artifact_dir() + "/library_" +
                                    library_cache_key(spec) + ".json";
    const bool cache_hit = std::filesystem::exists(cached_path);

    Timer timer;
    std::cout << "dataset " << dataset.name << " (" << threads
              << " threads)...\n";
    Library lib = generate_or_load_library(spec, artifact_dir());
    const double parallel_s = timer.seconds();

    std::string serial_s = "-";
    std::string speedup = "-";
    if (!cache_hit && want_speedup && threads > 1) {
      std::cout << "  serial baseline (ADAPEX_THREADS=1)...\n";
      LibraryGenSpec serial_spec = spec;
      serial_spec.num_threads = 1;
      Timer serial_timer;
      Library serial_lib = generate_library(serial_spec);
      const double s = serial_timer.seconds();
      serial_s = TextTable::num(s, 1);
      speedup = TextTable::num(s / parallel_s, 2) + "x";
      // Determinism spot check: the parallel sweep must reproduce the
      // serial bytes exactly (see generator.hpp).
      if (serial_lib.to_json().dump(1) != lib.to_json().dump(1)) {
        std::cerr << "ERROR: parallel library differs from serial library\n";
        return 1;
      }
    }

    TextTable table({"dataset", "entries", "accelerators", "ref_accuracy",
                     "threads", "gen_or_load_s", "serial_s", "speedup"});
    table.add_row({lib.dataset, std::to_string(lib.entries.size()),
                   std::to_string(lib.accelerators.size()),
                   TextTable::num(lib.reference_accuracy, 3),
                   std::to_string(threads), TextTable::num(parallel_s, 1),
                   serial_s, speedup});
    emit(table, "setup_" + lib.dataset);
  }
  return 0;
}
