// Warms the library cache both evaluation datasets depend on.
//
// Runs the full AdaPEx design-time flow (early-exit training,
// dataflow-aware pruning sweep, retraining, accelerator synthesis, library
// table) for the CIFAR-10-like and GTSRB-like datasets. Every figure/table
// bench loads these cached libraries, so running this binary first (bench
// binaries sort alphabetically) makes the rest fast.

#include "common.hpp"

int main() {
  using namespace adapex;
  using namespace adapex::bench;

  print_header("setup", "AdaPEx design-time flow (library generation)");
  for (const auto& dataset : {cifar10_like_spec(), gtsrb_like_spec()}) {
    Timer timer;
    std::cout << "dataset " << dataset.name << "...\n";
    Library lib = bench_library(dataset);
    TextTable table({"dataset", "entries", "accelerators", "ref_accuracy",
                     "gen_or_load_s"});
    table.add_row({lib.dataset, std::to_string(lib.entries.size()),
                   std::to_string(lib.accelerators.size()),
                   TextTable::num(lib.reference_accuracy, 3),
                   TextTable::num(timer.seconds(), 1)});
    emit(table, "setup_" + lib.dataset);
  }
  return 0;
}
