// Figure 1: accuracy (a) and energy per inference (b) vs pruning rate for
// CNVW2A2 on the CIFAR-10-like dataset — the no-early-exit model against
// the early-exit model at confidence thresholds 5, 50, and 95%.
//
// Expected shapes (paper section I): accuracy drops with pruning for all
// configurations; the low threshold (5%) is the *worst* at light pruning
// but becomes the *best* at heavy pruning (the crossover that motivates
// co-optimization); early-exit saves energy over no-exit only up to
// moderate pruning rates, after which the extra exit circuitry costs more
// than the skipped backbone tail saves.

#include "common.hpp"

int main() {
  using namespace adapex;
  using namespace adapex::bench;

  print_header("Figure 1",
               "accuracy & energy vs pruning rate, no-EE vs EE @ CT 5/50/95"
               " (CIFAR-10-like)");
  Library lib = bench_library(cifar10_like_spec());

  const std::vector<int> cts = {5, 50, 95};
  TextTable table({"prune_rate_pct", "acc_no_ee", "acc_ct5", "acc_ct50",
                   "acc_ct95", "mj_no_ee", "mj_ct5", "mj_ct50", "mj_ct95"});

  // Collect per rate: the no-exit entry and the not-pruned-exits entries at
  // the three thresholds (Figure 1 uses the not-pruned-exit configuration).
  std::vector<int> rates;
  for (const auto& e : lib.entries) {
    if (e.variant == ModelVariant::kNoExit &&
        std::find(rates.begin(), rates.end(), e.prune_rate_pct) ==
            rates.end()) {
      rates.push_back(e.prune_rate_pct);
    }
  }
  std::sort(rates.begin(), rates.end());

  auto find_entry = [&](ModelVariant v, int rate, int ct) -> const LibraryEntry* {
    for (const auto& e : lib.entries) {
      if (e.variant == v && e.prune_rate_pct == rate &&
          e.conf_threshold_pct == ct) {
        return &e;
      }
    }
    return nullptr;
  };

  for (int rate : rates) {
    const LibraryEntry* base = find_entry(ModelVariant::kNoExit, rate, -1);
    if (base == nullptr) continue;
    std::vector<std::string> row{std::to_string(rate),
                                 TextTable::num(base->accuracy, 3)};
    std::vector<std::string> energy{TextTable::num(base->energy_per_inf_j * 1e3, 4)};
    bool complete = true;
    for (int ct : cts) {
      const LibraryEntry* e =
          find_entry(ModelVariant::kNotPrunedExits, rate, ct);
      if (e == nullptr) {
        complete = false;
        break;
      }
      row.push_back(TextTable::num(e->accuracy, 3));
      energy.push_back(TextTable::num(e->energy_per_inf_j * 1e3, 4));
    }
    if (!complete) continue;
    for (auto& v : energy) row.push_back(std::move(v));
    table.add_row(std::move(row));
  }
  emit(table, "fig1_tradeoff");

  // The actionable form of the Figure 1(a) crossover: the accuracy-optimal
  // confidence threshold decreases as the pruning rate grows (early exits
  // take over from the crippled backbone). Printed per rate.
  TextTable best({"prune_rate_pct", "best_ct_pct", "best_acc",
                  "acc_at_ct100"});
  for (int rate : rates) {
    int best_ct = -1;
    double best_acc = -1.0, acc100 = 0.0;
    for (const auto& e : lib.entries) {
      if (e.variant != ModelVariant::kNotPrunedExits ||
          e.prune_rate_pct != rate) {
        continue;
      }
      if (e.accuracy > best_acc) {
        best_acc = e.accuracy;
        best_ct = e.conf_threshold_pct;
      }
      if (e.conf_threshold_pct == 100) acc100 = e.accuracy;
    }
    if (best_ct < 0) continue;
    best.add_row({std::to_string(rate), std::to_string(best_ct),
                  TextTable::num(best_acc, 3), TextTable::num(acc100, 3)});
  }
  std::cout << "\n-- accuracy-optimal confidence threshold per rate --\n";
  emit(best, "fig1_best_ct");

  // Headline checks printed for EXPERIMENTS.md.
  const LibraryEntry* light_ct5 = find_entry(ModelVariant::kNotPrunedExits, 0, 5);
  const LibraryEntry* light_ct95 = find_entry(ModelVariant::kNotPrunedExits, 0, 95);
  const int heavy = rates.back();
  const LibraryEntry* heavy_ct5 =
      find_entry(ModelVariant::kNotPrunedExits, heavy, 5);
  const LibraryEntry* heavy_ct95 =
      find_entry(ModelVariant::kNotPrunedExits, heavy, 95);
  if (light_ct5 && light_ct95 && heavy_ct5 && heavy_ct95) {
    std::cout << "\ncrossover check: light pruning CT5-CT95 accuracy delta = "
              << TextTable::num(light_ct5->accuracy - light_ct95->accuracy, 3)
              << " (paper: negative); heavy pruning delta = "
              << TextTable::num(heavy_ct5->accuracy - heavy_ct95->accuracy, 3)
              << " (paper: positive)\n";
  }
  return 0;
}
