// Fleet serving drill: throughput of the event core and the value of
// capacity-safe staggered reconfiguration.
//
// Sweeps fleet size x correlated-fault pressure x stagger on/off over a
// mixed-tenant trace that overloads the cold fleet (every device boots on
// its most accurate, slowest bitstream) so the runtime managers all propose
// capacity-growing reconfigurations at once. Unstaggered, those proposals
// overlap and the fleet's projected capacity dips below the 70% floor —
// recorded as capacity violations. Staggered, the orchestrator serializes
// them and the invariant holds with zero violations on the same arrival
// trace. A final single-point run times a million-request episode to report
// the event core's sustained events/second.
//
//   ./build/bench/bench_fleet            # full sweep + 1M-request episode
//   ./build/bench/bench_fleet --smoke    # CI: smaller fleet, 100k episode
//
// Emits results/fleet.csv and results/fleet.json.

#include <cstring>
#include <string>
#include <vector>

#include "common.hpp"
#include "common/json.hpp"
#include "edge/fleet.hpp"

namespace {

using namespace adapex;

LibraryEntry smoke_entry(int accel, ModelVariant v, int rate, int ct,
                         double acc, double ips, double lat_ms, double power_w,
                         double e_j) {
  LibraryEntry e;
  e.accel_id = accel;
  e.variant = v;
  e.prune_rate_pct = rate;
  e.conf_threshold_pct = ct;
  e.accuracy = acc;
  e.exit_fractions = v == ModelVariant::kNoExit
                         ? std::vector<double>{1.0}
                         : std::vector<double>{0.5, 0.5};
  e.ips = ips;
  e.latency_ms = lat_ms;
  e.peak_power_w = power_w;
  e.energy_per_inf_j = e_j;
  return e;
}

/// Two bitstreams per device with a 4x throughput spread between the
/// accurate and the pruned+CT-adapted points: reconfiguration genuinely
/// grows capacity, which is what makes staggering matter.
Library fleet_library() {
  Library lib;
  lib.dataset = "fleet-bench";
  lib.reference_accuracy = 0.90;
  lib.static_power_w = 0.7;
  for (int id = 0; id < 2; ++id) {
    AcceleratorRecord a;
    a.id = id;
    a.variant = ModelVariant::kNotPrunedExits;
    a.prune_rate_pct = id * 50;
    a.reconfig_ms = 145.0;
    lib.accelerators.push_back(a);
  }
  lib.entries = {
      smoke_entry(0, ModelVariant::kNotPrunedExits, 0, 50, 0.88, 120, 5.0,
                  1.35, 0.005),
      smoke_entry(0, ModelVariant::kNotPrunedExits, 0, 5, 0.84, 200, 3.0, 1.30,
                  0.004),
      smoke_entry(1, ModelVariant::kNotPrunedExits, 50, 50, 0.82, 350, 1.8,
                  1.20, 0.002),
      smoke_entry(1, ModelVariant::kNotPrunedExits, 50, 5, 0.78, 500, 1.2,
                  1.18, 0.0015),
  };
  return lib;
}

/// A fleet of `size` devices split across two failure domains, offered
/// ~70% of warm capacity (far above the cold fleet's 120 ips/device).
FleetScenario drill(int size, double spike_prob, bool stagger,
                    double duration_s, std::uint64_t seed) {
  FleetScenario f;
  f.base.seed = seed;
  f.base.duration_s = duration_s;
  f.base.faults.stall_prob = 0.02;
  f.base.faults.stall_duration_s = 0.5;
  for (int i = 0; i < size; ++i) {
    FleetDeviceSpec d;
    d.name = "dev" + std::to_string(i);
    d.domain = spike_prob > 0.0 ? i % 2 : -1;
    f.devices.push_back(std::move(d));
  }
  if (spike_prob > 0.0) {
    for (const char* name : {"rack0", "rack1"}) {
      FailureDomain dom;
      dom.name = name;
      dom.spike_prob = spike_prob;
      dom.spike_duration_s = 3.0;
      dom.transient_mult = 6.0;
      dom.seu_mult = 4.0;
      f.fleet_faults.domains.push_back(dom);
    }
    f.base.faults.reconfig_fail_prob = 0.02;
    f.base.faults.seu_weight_prob = 0.005;
  }
  TenantSpec interactive;
  interactive.name = "interactive";
  interactive.workload.base_ips = size * 350.0 * 0.6;
  interactive.workload.duration_s = duration_s;
  interactive.workload.deviation = 0.4;
  interactive.slo_latency_ms = 250.0;
  interactive.priority = 1;
  TenantSpec batch;
  batch.name = "batch";
  batch.workload.base_ips = size * 350.0 * 0.4;
  batch.workload.duration_s = duration_s;
  batch.workload.pattern = WorkloadPattern::kDiurnal;
  batch.priority = 0;
  f.tenants = {interactive, batch};
  f.breaker.open_after_failures = 3;
  f.stagger.enabled = stagger;
  f.stagger.min_capacity_fraction = 0.70;
  f.stagger.max_defer_s = 1e9;  // pure invariant: no starvation override
  return f;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace adapex;
  using namespace adapex::bench;

  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }

  print_header("Fleet", "event-core throughput and staggered reconfiguration");

  const Library lib = fleet_library();
  const RuntimePolicy policy{AdaptPolicy::kAdaPEx, 0.10};
  const double duration_s = smoke ? 25.0 : 60.0;
  const std::vector<int> sizes = smoke ? std::vector<int>{2, 4}
                                       : std::vector<int>{2, 4, 8, 16};

  TextTable table({"fleet_size", "spike_prob", "stagger", "served",
                   "shed", "availability_pct", "p99_ms", "violations",
                   "deferrals", "spikes", "events_per_s"});
  Json json = Json::object();
  json["bench"] = "fleet";
  json["smoke"] = smoke;
  Json points = Json::array();

  bool invariant_holds = true;
  bool unstaggered_violates = false;
  for (int size : sizes) {
    for (double spike_prob : {0.0, 0.25}) {
      for (bool stagger : {false, true}) {
        const FleetScenario sc =
            drill(size, spike_prob, stagger, duration_s, 42);
        Timer t;
        const FleetMetrics m = simulate_fleet(lib, policy, sc);
        const double eps = m.events / std::max(t.seconds(), 1e-9);
        table.add_row({std::to_string(size), TextTable::num(spike_prob, 2),
                       stagger ? "on" : "off", std::to_string(m.served),
                       std::to_string(m.shed),
                       TextTable::num(m.availability_pct, 2),
                       TextTable::num(m.p99_latency_ms, 2),
                       std::to_string(m.capacity_violations),
                       std::to_string(m.stagger_deferrals),
                       std::to_string(m.domain_spikes),
                       TextTable::num(eps, 0)});
        Json p = m.to_json();
        p["fleet_size"] = size;
        p["spike_prob"] = spike_prob;
        p["stagger"] = stagger;
        p["events_per_s"] = eps;
        points.push_back(std::move(p));
        if (stagger && m.capacity_violations > 0) invariant_holds = false;
        if (!stagger && m.capacity_violations > 0) unstaggered_violates = true;
      }
    }
  }

  // Throughput point: a million-request episode (100k in smoke) on an
  // 8-device fleet with correlated faults — the acceptance target is
  // wall-clock seconds, i.e. events/s in the hundreds of thousands.
  const double target_requests = smoke ? 1e5 : 1e6;
  FleetScenario big = drill(8, 0.25, true, 60.0, 7);
  {
    const double total_ips =
        big.tenants[0].workload.base_ips + big.tenants[1].workload.base_ips;
    const double scale = target_requests / (total_ips * big.base.duration_s);
    for (TenantSpec& t : big.tenants) t.workload.base_ips *= scale;
  }
  Timer big_timer;
  const FleetMetrics big_m = simulate_fleet(lib, policy, big);
  const double big_elapsed = big_timer.seconds();
  const double big_eps = big_m.events / std::max(big_elapsed, 1e-9);
  json["episode_requests"] = double(big_m.offered);
  json["episode_events"] = double(big_m.events);
  json["episode_wall_s"] = big_elapsed;
  json["episode_events_per_s"] = big_eps;
  std::cout << "episode: " << big_m.offered << " requests, " << big_m.events
            << " events in " << big_elapsed << " s (" << std::size_t(big_eps)
            << " events/s)\n\n";

  json["points"] = points;
  json["stagger_invariant_holds"] = invariant_holds;
  json["unstaggered_violates"] = unstaggered_violates;

  emit(table, "fleet");
  const std::string json_path = results_dir() + "/fleet.json";
  atomic_write_file(json_path, json.dump(1));
  std::cout << "[json] " << json_path << "\n";
  const bool ok = invariant_holds && unstaggered_violates;
  std::cout << (ok ? "OK: staggered runs held the 70% capacity floor at every "
                     "point; unstaggered runs violated it on the same traces\n"
                   : "WARNING: stagger gate did not discriminate — check "
                     "capacity_violations per point\n");
  return ok ? 0 : 1;
}
