// Ablation: sensitivity of the runtime results to the FPGA reconfiguration
// cost.
//
// The paper measured ~145 ms per reconfiguration on the ZCU104. This bench
// sweeps the cost from free to 10x and reports AdaPEx's inference loss and
// QoE: cheap reconfiguration lets the manager track the workload closely;
// expensive reconfiguration makes every pruning-rate switch hurt, shrinking
// AdaPEx's margin over CT-Only (which never reconfigures).
//
// The same cost also prices soft-error recovery: a drift-triggered
// bitstream reload (see DESIGN.md "Soft-error model & mitigation") pays
// reconfig_ms of dark time. The seu_* columns rerun each cost point with a
// fixed unmitigated upset rate, showing how recovery-by-reload gets more
// expensive as reconfiguration slows.

#include "common.hpp"

int main() {
  using namespace adapex;
  using namespace adapex::bench;

  print_header("Ablation", "reconfiguration cost sensitivity");

  Library lib = bench_library(cifar10_like_spec());
  EdgeScenario scenario = scale_to_library(EdgeScenario{}, lib, 1.30);
  scenario.seed = 42;
  constexpr int kRuns = 30;

  TextTable table({"reconfig_scale", "reconfig_ms", "adapex_loss_pct",
                   "adapex_qoe_pct", "reconfigs_per_run", "failed_per_run",
                   "availability_pct", "ct_only_qoe_pct", "seu_reloads_per_run",
                   "seu_qoe_pct", "seu_avail_pct"});
  // SEU companion sweep: a fixed unmitigated upset rate whose recovery
  // reloads pay the swept reconfiguration cost.
  EdgeScenario seu_scenario = scenario;
  seu_scenario.faults.seu_weight_prob = 0.05;
  seu_scenario.faults.seu_config_prob = 0.05;
  const auto ct_only =
      simulate_edge_runs(lib, {AdaptPolicy::kCtOnly, 0.10}, scenario, kRuns);
  for (double mult : {0.0, 0.5, 1.0, 2.0, 5.0, 10.0}) {
    Library scaled = lib;
    double ms = 0.0;
    for (auto& a : scaled.accelerators) {
      a.reconfig_ms = a.reconfig_ms * mult;
      ms = a.reconfig_ms;
    }
    const auto m = simulate_edge_runs(scaled, {AdaptPolicy::kAdaPEx, 0.10},
                                      scenario, kRuns);
    const auto seu = simulate_edge_runs(scaled, {AdaptPolicy::kAdaPEx, 0.10},
                                        seu_scenario, kRuns);
    // The failure columns report zero here (the scenario injects no
    // faults); they make the cost sweep comparable to bench_robustness.
    table.add_row({TextTable::num(mult, 1), TextTable::num(ms, 0),
                   TextTable::num(m.inference_loss_pct, 2),
                   TextTable::num(m.qoe * 100.0, 2),
                   TextTable::num(static_cast<double>(m.reconfigurations) /
                                      kRuns,
                                  1),
                   TextTable::num(static_cast<double>(m.reconfig_failures) /
                                      kRuns,
                                  1),
                   TextTable::num(m.availability_pct, 2),
                   TextTable::num(ct_only.qoe * 100.0, 2),
                   TextTable::num(static_cast<double>(seu.seu_reloads) / kRuns,
                                  1),
                   TextTable::num(seu.qoe * 100.0, 2),
                   TextTable::num(seu.availability_pct, 2)});
  }
  emit(table, "ablation_reconfig");
  return 0;
}
