// Ablation: folding style vs early-exit effectiveness.
//
// The confidence threshold can only raise throughput if the pipeline
// bottleneck sits *after* the exit branch points (DESIGN.md performance
// conventions). FINN's shipped CNV folding has that property; a uniform
// folding does not. This bench compares the two styles: steady-state IPS at
// all-final vs all-early exit distributions, plus total resources.

#include "common.hpp"

int main() {
  using namespace adapex;
  using namespace adapex::bench;

  print_header("Ablation",
               "folding style: FINN-CNV style vs uniform caps (early-exit "
               "throughput headroom)");

  Rng rng(7);
  CnvConfig cfg = CnvConfig{}.scaled(ExperimentScale::from_env().width_scale);
  BranchyModel model = build_cnv_with_exits(cfg, paper_exits_config(false), rng);
  auto sites = walk_compute_layers(model, cfg.in_channels, cfg.image_size);

  TextTable table({"folding", "ips_all_final", "ips_all_early",
                   "ct_speedup", "lut", "bram"});
  PowerModel power;
  struct Style {
    std::string name;
    FoldingConfig config;
  };
  std::vector<Style> styles;
  styles.push_back({"finn_cnv_style", styled_folding(sites)});
  styles.push_back({"uniform_cap4", default_folding(sites, 4, 4)});
  styles.push_back({"uniform_cap8", default_folding(sites, 8, 8)});
  {
    // Balanced folding targeting the styled bottleneck.
    long target = 0;
    Accelerator acc = compile_accelerator(model, styles[0].config,
                                          AcceleratorConfig{});
    for (const auto& m : acc.modules) target = std::max(target, m.cycles);
    styles.push_back({"balanced", balanced_folding(sites, target, 64, 64)});
  }

  for (const auto& style : styles) {
    Accelerator acc =
        compile_accelerator(model, style.config, AcceleratorConfig{});
    const auto all_final = estimate_performance(acc, {0.0, 0.0, 1.0}, power);
    const auto all_early = estimate_performance(acc, {1.0, 0.0, 0.0}, power);
    table.add_row({style.name, TextTable::num(all_final.ips, 0),
                   TextTable::num(all_early.ips, 0),
                   TextTable::num(all_early.ips / all_final.ips, 2),
                   std::to_string(acc.total.lut),
                   std::to_string(acc.total.bram)});
  }
  emit(table, "ablation_folding");
  return 0;
}
