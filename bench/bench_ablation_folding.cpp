// Ablation: folding style vs early-exit effectiveness.
//
// The confidence threshold can only raise throughput if the pipeline
// bottleneck sits *after* the exit branch points (DESIGN.md performance
// conventions). FINN's shipped CNV folding has that property; a uniform
// folding does not. This bench compares the two styles: steady-state IPS at
// all-final vs all-early exit distributions, plus total resources.
//
// Part two compares reach-aware folding (hls/folding.hpp
// reach_aware_folding) against the styled baseline across exit-fraction
// regimes: gated IPS, LUT, and gated-throughput-per-kLUT, with every
// reach-aware point run through the dataflow verifier and the agreement
// harness. `--smoke` turns the comparison into a CI gate: it exits nonzero
// unless every point verifies, never exceeds the styled resources, the
// zero-exit regime reproduces the styled folds exactly, and at least three
// regimes strictly improve gated throughput per LUT.

#include <cstring>

#include "analysis/dataflow.hpp"
#include "common.hpp"

int main(int argc, char** argv) {
  using namespace adapex;
  using namespace adapex::bench;

  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }

  print_header("Ablation",
               "folding style: FINN-CNV style vs uniform caps (early-exit "
               "throughput headroom)");

  Rng rng(7);
  CnvConfig cfg = CnvConfig{}.scaled(ExperimentScale::from_env().width_scale);
  BranchyModel model = build_cnv_with_exits(cfg, paper_exits_config(false), rng);
  auto sites = walk_compute_layers(model, cfg.in_channels, cfg.image_size);

  TextTable table({"folding", "ips_all_final", "ips_all_early",
                   "ct_speedup", "lut", "bram"});
  PowerModel power;
  struct Style {
    std::string name;
    FoldingConfig config;
  };
  std::vector<Style> styles;
  styles.push_back({"finn_cnv_style", styled_folding(sites)});
  styles.push_back({"uniform_cap4", default_folding(sites, 4, 4)});
  styles.push_back({"uniform_cap8", default_folding(sites, 8, 8)});
  {
    // Balanced folding targeting the styled bottleneck.
    long target = 0;
    Accelerator acc = compile_accelerator(model, styles[0].config,
                                          AcceleratorConfig{});
    for (const auto& m : acc.modules) target = std::max(target, m.cycles);
    styles.push_back({"balanced", balanced_folding(sites, target, 64, 64)});
  }

  for (const auto& style : styles) {
    Accelerator acc =
        compile_accelerator(model, style.config, AcceleratorConfig{});
    const auto all_final = estimate_performance(acc, {0.0, 0.0, 1.0}, power);
    const auto all_early = estimate_performance(acc, {1.0, 0.0, 0.0}, power);
    table.add_row({style.name, TextTable::num(all_final.ips, 0),
                   TextTable::num(all_early.ips, 0),
                   TextTable::num(all_early.ips / all_final.ips, 2),
                   std::to_string(acc.total.lut),
                   std::to_string(acc.total.bram)});
  }
  emit(table, "ablation_folding");

  // --- Part two: reach-aware vs styled across exit regimes. ---------------
  print_header("Ablation",
               "reach-aware folding vs styled baseline (gated throughput per "
               "LUT across exit regimes)");

  const AcceleratorConfig aconfig;
  const analysis::DeviceProfile device = analysis::DeviceProfile::zcu104();
  const FoldingConfig styled = styled_folding(sites);
  const Accelerator styled_acc = compile_accelerator(model, styled, aconfig);

  ReachAwareOptions ra_opts;
  ra_opts.baseline = styled;
  ra_opts.cost = aconfig.cost;
  for (std::size_t e = 0; e < model.num_exits(); ++e) {
    ra_opts.exit_after_block.push_back(model.exit(e).after_block);
  }
  ra_opts.fixed_overhead =
      styled_acc.total - folding_site_resources(sites, styled, aconfig.cost);

  const std::vector<std::vector<double>> regimes = {
      {0.7, 0.2, 0.1},
      {0.5, 0.3, 0.2},
      {1.0 / 3, 1.0 / 3, 1.0 / 3},
      {0.2, 0.3, 0.5},
      {0.0, 0.0, 1.0},
  };

  TextTable reach_table({"regime", "ips_styled", "ips_reach", "lut_styled",
                         "lut_reach", "ips_per_klut_styled",
                         "ips_per_klut_reach", "gain", "verified"});
  Json points = Json::array();
  int strict_gains = 0;
  bool all_verified = true;
  bool within_styled_resources = true;
  bool zero_exit_identical = true;

  for (const auto& regime : regimes) {
    const FoldingConfig ra =
        reach_aware_folding(sites, regime, device.caps, ra_opts);
    const Accelerator ra_acc = compile_accelerator(model, ra, aconfig);

    // Verifier gate: the static rules must accept the design and the
    // transaction-level simulator must agree on this regime's II.
    analysis::DataflowOptions dopts;
    dopts.device = device;
    const analysis::DataflowReport dataflow =
        analysis::analyze_dataflow(ra_acc, regime, dopts);
    analysis::CrossValidateOptions cv_opts;
    cv_opts.dataflow.device = device;
    const analysis::CrossValidation cv =
        analysis::cross_validate(ra_acc, regime, cv_opts);
    const bool verified = !dataflow.lint.has_errors() && cv.passed;
    all_verified = all_verified && verified;

    within_styled_resources =
        within_styled_resources && ra_acc.total.fits_within(styled_acc.total);
    if (regime.back() == 1.0) {
      zero_exit_identical =
          zero_exit_identical && ra.folds == styled.folds;
    }

    const auto perf_s = estimate_performance(styled_acc, regime, power);
    const auto perf_r = estimate_performance(ra_acc, regime, power);
    const double eff_s =
        perf_s.ips / (static_cast<double>(styled_acc.total.lut) / 1000.0);
    const double eff_r =
        perf_r.ips / (static_cast<double>(ra_acc.total.lut) / 1000.0);
    if (eff_r > eff_s) ++strict_gains;

    std::string regime_name;
    for (double f : regime) {
      if (!regime_name.empty()) regime_name += "/";
      regime_name += TextTable::num(f, 2);
    }
    reach_table.add_row(
        {regime_name, TextTable::num(perf_s.ips, 0),
         TextTable::num(perf_r.ips, 0), std::to_string(styled_acc.total.lut),
         std::to_string(ra_acc.total.lut), TextTable::num(eff_s, 1),
         TextTable::num(eff_r, 1), TextTable::num(eff_r / eff_s, 3),
         verified ? "yes" : "NO"});

    Json p = Json::object();
    Json fr = Json::array();
    for (double f : regime) fr.push_back(f);
    p["regime"] = std::move(fr);
    p["ips_styled"] = perf_s.ips;
    p["ips_reach"] = perf_r.ips;
    p["lut_styled"] = static_cast<double>(styled_acc.total.lut);
    p["lut_reach"] = static_cast<double>(ra_acc.total.lut);
    p["ips_per_klut_styled"] = eff_s;
    p["ips_per_klut_reach"] = eff_r;
    p["verified"] = verified;
    points.push_back(std::move(p));
  }
  emit(reach_table, "ablation_folding_reach");
  {
    Json root = Json::object();
    root["device"] = device.name;
    root["strict_gains"] = strict_gains;
    root["all_verified"] = all_verified;
    root["within_styled_resources"] = within_styled_resources;
    root["zero_exit_identical"] = zero_exit_identical;
    root["points"] = std::move(points);
    const std::string path = results_dir() + "/ablation_folding_reach.json";
    atomic_write_file(path, root.dump(2) + "\n");
    std::cout << "[json] " << path << "\n";
  }

  if (smoke) {
    int failures = 0;
    auto require = [&](bool ok, const char* what) {
      if (!ok) {
        std::cerr << "[smoke] FAIL: " << what << "\n";
        ++failures;
      }
    };
    require(all_verified,
            "every reach-aware point passes the dataflow verifier and "
            "cross-validation");
    require(within_styled_resources,
            "reach-aware accelerators never exceed the styled resources");
    require(zero_exit_identical,
            "the zero-exit regime reproduces the styled folds exactly");
    require(strict_gains >= 3,
            "at least three regimes strictly improve gated IPS per kLUT");
    if (failures != 0) return 4;
    std::cout << "[smoke] reach-aware folding gate passed (" << strict_gains
              << "/" << regimes.size() << " regimes improved)\n";
  }
  return 0;
}
