// Figure 6: average Energy-Delay Product normalized to the original FINN
// accelerator (bars) and Quality of Experience (curves; accuracy x fraction
// of processed frames), for both datasets.
//
// Expected shapes: AdaPEx achieves the highest QoE on both datasets and the
// lowest normalized EDP (the paper reports 2x / 2.55x EDP reduction vs
// FINN); PR-Only and CT-Only land between AdaPEx and FINN.

#include "common.hpp"

int main() {
  using namespace adapex;
  using namespace adapex::bench;

  print_header("Figure 6", "EDP (normalized to FINN) and QoE, both datasets");

  constexpr int kRuns = 100;
  TextTable table({"system", "dataset", "edp_norm_vs_finn", "qoe_pct",
                   "energy_per_inf_mj", "qoe_gain_vs_finn_pct"});
  for (const auto& dataset : {cifar10_like_spec(), gtsrb_like_spec()}) {
    Library lib = bench_library(dataset);
    EdgeScenario scenario = scale_to_library(EdgeScenario{}, lib, 1.30);
    scenario.seed = 42;

    const auto finn = simulate_edge_runs(
        lib, {AdaptPolicy::kStaticFinn, 0.10}, scenario, kRuns);
    for (AdaptPolicy policy :
         {AdaptPolicy::kAdaPEx, AdaptPolicy::kPrOnly, AdaptPolicy::kCtOnly,
          AdaptPolicy::kStaticFinn}) {
      const auto m =
          policy == AdaptPolicy::kStaticFinn
              ? finn
              : simulate_edge_runs(lib, {policy, 0.10}, scenario, kRuns);
      table.add_row(
          {to_string(policy), lib.dataset,
           TextTable::num(m.edp / finn.edp, 3),
           TextTable::num(m.qoe * 100.0, 2),
           TextTable::num(m.energy_per_inf_j * 1e3, 4),
           TextTable::num((m.qoe / finn.qoe - 1.0) * 100.0, 2)});
    }
  }
  emit(table, "fig6_edp_qoe");
  return 0;
}
