# Empty dependencies file for bench_fig6_edp_qoe.
# This may be replaced when dependencies are built.
