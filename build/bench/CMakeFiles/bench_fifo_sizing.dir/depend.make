# Empty dependencies file for bench_fifo_sizing.
# This may be replaced when dependencies are built.
