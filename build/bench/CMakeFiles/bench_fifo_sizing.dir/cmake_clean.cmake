file(REMOVE_RECURSE
  "CMakeFiles/bench_fifo_sizing.dir/bench_fifo_sizing.cpp.o"
  "CMakeFiles/bench_fifo_sizing.dir/bench_fifo_sizing.cpp.o.d"
  "bench_fifo_sizing"
  "bench_fifo_sizing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fifo_sizing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
