# Empty dependencies file for bench_table1_edge.
# This may be replaced when dependencies are built.
