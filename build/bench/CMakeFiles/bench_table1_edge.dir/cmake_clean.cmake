file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_edge.dir/bench_table1_edge.cpp.o"
  "CMakeFiles/bench_table1_edge.dir/bench_table1_edge.cpp.o.d"
  "bench_table1_edge"
  "bench_table1_edge.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_edge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
