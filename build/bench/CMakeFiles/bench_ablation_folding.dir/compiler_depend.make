# Empty compiler generated dependencies file for bench_ablation_folding.
# This may be replaced when dependencies are built.
