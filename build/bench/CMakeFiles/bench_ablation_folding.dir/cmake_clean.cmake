file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_folding.dir/bench_ablation_folding.cpp.o"
  "CMakeFiles/bench_ablation_folding.dir/bench_ablation_folding.cpp.o.d"
  "bench_ablation_folding"
  "bench_ablation_folding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_folding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
