# Empty compiler generated dependencies file for bench_00_generate_libraries.
# This may be replaced when dependencies are built.
