file(REMOVE_RECURSE
  "CMakeFiles/bench_00_generate_libraries.dir/bench_00_generate_libraries.cpp.o"
  "CMakeFiles/bench_00_generate_libraries.dir/bench_00_generate_libraries.cpp.o.d"
  "bench_00_generate_libraries"
  "bench_00_generate_libraries.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_00_generate_libraries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
