# Empty dependencies file for bench_fig5_pruned_exits.
# This may be replaced when dependencies are built.
