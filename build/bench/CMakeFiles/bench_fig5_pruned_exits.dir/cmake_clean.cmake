file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_pruned_exits.dir/bench_fig5_pruned_exits.cpp.o"
  "CMakeFiles/bench_fig5_pruned_exits.dir/bench_fig5_pruned_exits.cpp.o.d"
  "bench_fig5_pruned_exits"
  "bench_fig5_pruned_exits.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_pruned_exits.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
