# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(test_analysis "/root/repo/build/tests/test_analysis")
set_tests_properties(test_analysis PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;12;adapex_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_common "/root/repo/build/tests/test_common")
set_tests_properties(test_common PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;12;adapex_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_data "/root/repo/build/tests/test_data")
set_tests_properties(test_data PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;12;adapex_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_finn "/root/repo/build/tests/test_finn")
set_tests_properties(test_finn PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;12;adapex_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_integration "/root/repo/build/tests/test_integration")
set_tests_properties(test_integration PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;12;adapex_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_library "/root/repo/build/tests/test_library")
set_tests_properties(test_library PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;12;adapex_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_model "/root/repo/build/tests/test_model")
set_tests_properties(test_model PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;12;adapex_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_monitor "/root/repo/build/tests/test_monitor")
set_tests_properties(test_monitor PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;12;adapex_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_nn "/root/repo/build/tests/test_nn")
set_tests_properties(test_nn PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;12;adapex_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_pruning "/root/repo/build/tests/test_pruning")
set_tests_properties(test_pruning PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;12;adapex_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_report "/root/repo/build/tests/test_report")
set_tests_properties(test_report PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;12;adapex_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_runtime "/root/repo/build/tests/test_runtime")
set_tests_properties(test_runtime PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;12;adapex_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_tensor "/root/repo/build/tests/test_tensor")
set_tests_properties(test_tensor PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;12;adapex_test;/root/repo/tests/CMakeLists.txt;0;")
