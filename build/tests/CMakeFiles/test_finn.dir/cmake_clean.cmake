file(REMOVE_RECURSE
  "CMakeFiles/test_finn.dir/test_finn.cpp.o"
  "CMakeFiles/test_finn.dir/test_finn.cpp.o.d"
  "test_finn"
  "test_finn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_finn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
