# Empty dependencies file for test_finn.
# This may be replaced when dependencies are built.
