# Empty dependencies file for adapex.
# This may be replaced when dependencies are built.
