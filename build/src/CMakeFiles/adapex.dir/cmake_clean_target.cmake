file(REMOVE_RECURSE
  "libadapex.a"
)
