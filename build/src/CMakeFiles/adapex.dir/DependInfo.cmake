
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/common/json.cpp" "src/CMakeFiles/adapex.dir/common/json.cpp.o" "gcc" "src/CMakeFiles/adapex.dir/common/json.cpp.o.d"
  "/root/repo/src/common/table.cpp" "src/CMakeFiles/adapex.dir/common/table.cpp.o" "gcc" "src/CMakeFiles/adapex.dir/common/table.cpp.o.d"
  "/root/repo/src/core/scale.cpp" "src/CMakeFiles/adapex.dir/core/scale.cpp.o" "gcc" "src/CMakeFiles/adapex.dir/core/scale.cpp.o.d"
  "/root/repo/src/data/dataset.cpp" "src/CMakeFiles/adapex.dir/data/dataset.cpp.o" "gcc" "src/CMakeFiles/adapex.dir/data/dataset.cpp.o.d"
  "/root/repo/src/edge/simulation.cpp" "src/CMakeFiles/adapex.dir/edge/simulation.cpp.o" "gcc" "src/CMakeFiles/adapex.dir/edge/simulation.cpp.o.d"
  "/root/repo/src/edge/workload.cpp" "src/CMakeFiles/adapex.dir/edge/workload.cpp.o" "gcc" "src/CMakeFiles/adapex.dir/edge/workload.cpp.o.d"
  "/root/repo/src/finn/accelerator.cpp" "src/CMakeFiles/adapex.dir/finn/accelerator.cpp.o" "gcc" "src/CMakeFiles/adapex.dir/finn/accelerator.cpp.o.d"
  "/root/repo/src/finn/fifo_sizing.cpp" "src/CMakeFiles/adapex.dir/finn/fifo_sizing.cpp.o" "gcc" "src/CMakeFiles/adapex.dir/finn/fifo_sizing.cpp.o.d"
  "/root/repo/src/finn/pipeline_sim.cpp" "src/CMakeFiles/adapex.dir/finn/pipeline_sim.cpp.o" "gcc" "src/CMakeFiles/adapex.dir/finn/pipeline_sim.cpp.o.d"
  "/root/repo/src/finn/report.cpp" "src/CMakeFiles/adapex.dir/finn/report.cpp.o" "gcc" "src/CMakeFiles/adapex.dir/finn/report.cpp.o.d"
  "/root/repo/src/finn/streamline.cpp" "src/CMakeFiles/adapex.dir/finn/streamline.cpp.o" "gcc" "src/CMakeFiles/adapex.dir/finn/streamline.cpp.o.d"
  "/root/repo/src/hls/folding.cpp" "src/CMakeFiles/adapex.dir/hls/folding.cpp.o" "gcc" "src/CMakeFiles/adapex.dir/hls/folding.cpp.o.d"
  "/root/repo/src/hls/modules.cpp" "src/CMakeFiles/adapex.dir/hls/modules.cpp.o" "gcc" "src/CMakeFiles/adapex.dir/hls/modules.cpp.o.d"
  "/root/repo/src/library/cache.cpp" "src/CMakeFiles/adapex.dir/library/cache.cpp.o" "gcc" "src/CMakeFiles/adapex.dir/library/cache.cpp.o.d"
  "/root/repo/src/library/generator.cpp" "src/CMakeFiles/adapex.dir/library/generator.cpp.o" "gcc" "src/CMakeFiles/adapex.dir/library/generator.cpp.o.d"
  "/root/repo/src/library/library.cpp" "src/CMakeFiles/adapex.dir/library/library.cpp.o" "gcc" "src/CMakeFiles/adapex.dir/library/library.cpp.o.d"
  "/root/repo/src/model/cnv.cpp" "src/CMakeFiles/adapex.dir/model/cnv.cpp.o" "gcc" "src/CMakeFiles/adapex.dir/model/cnv.cpp.o.d"
  "/root/repo/src/model/serialize.cpp" "src/CMakeFiles/adapex.dir/model/serialize.cpp.o" "gcc" "src/CMakeFiles/adapex.dir/model/serialize.cpp.o.d"
  "/root/repo/src/model/walk.cpp" "src/CMakeFiles/adapex.dir/model/walk.cpp.o" "gcc" "src/CMakeFiles/adapex.dir/model/walk.cpp.o.d"
  "/root/repo/src/nn/branchy.cpp" "src/CMakeFiles/adapex.dir/nn/branchy.cpp.o" "gcc" "src/CMakeFiles/adapex.dir/nn/branchy.cpp.o.d"
  "/root/repo/src/nn/eval.cpp" "src/CMakeFiles/adapex.dir/nn/eval.cpp.o" "gcc" "src/CMakeFiles/adapex.dir/nn/eval.cpp.o.d"
  "/root/repo/src/nn/layers.cpp" "src/CMakeFiles/adapex.dir/nn/layers.cpp.o" "gcc" "src/CMakeFiles/adapex.dir/nn/layers.cpp.o.d"
  "/root/repo/src/nn/metrics.cpp" "src/CMakeFiles/adapex.dir/nn/metrics.cpp.o" "gcc" "src/CMakeFiles/adapex.dir/nn/metrics.cpp.o.d"
  "/root/repo/src/nn/optim.cpp" "src/CMakeFiles/adapex.dir/nn/optim.cpp.o" "gcc" "src/CMakeFiles/adapex.dir/nn/optim.cpp.o.d"
  "/root/repo/src/nn/quant.cpp" "src/CMakeFiles/adapex.dir/nn/quant.cpp.o" "gcc" "src/CMakeFiles/adapex.dir/nn/quant.cpp.o.d"
  "/root/repo/src/nn/trainer.cpp" "src/CMakeFiles/adapex.dir/nn/trainer.cpp.o" "gcc" "src/CMakeFiles/adapex.dir/nn/trainer.cpp.o.d"
  "/root/repo/src/pruning/pruning.cpp" "src/CMakeFiles/adapex.dir/pruning/pruning.cpp.o" "gcc" "src/CMakeFiles/adapex.dir/pruning/pruning.cpp.o.d"
  "/root/repo/src/pruning/sensitivity.cpp" "src/CMakeFiles/adapex.dir/pruning/sensitivity.cpp.o" "gcc" "src/CMakeFiles/adapex.dir/pruning/sensitivity.cpp.o.d"
  "/root/repo/src/runtime/manager.cpp" "src/CMakeFiles/adapex.dir/runtime/manager.cpp.o" "gcc" "src/CMakeFiles/adapex.dir/runtime/manager.cpp.o.d"
  "/root/repo/src/tensor/ops.cpp" "src/CMakeFiles/adapex.dir/tensor/ops.cpp.o" "gcc" "src/CMakeFiles/adapex.dir/tensor/ops.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
