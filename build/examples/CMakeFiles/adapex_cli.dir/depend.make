# Empty dependencies file for adapex_cli.
# This may be replaced when dependencies are built.
