file(REMOVE_RECURSE
  "CMakeFiles/adapex_cli.dir/adapex_cli.cpp.o"
  "CMakeFiles/adapex_cli.dir/adapex_cli.cpp.o.d"
  "adapex_cli"
  "adapex_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adapex_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
