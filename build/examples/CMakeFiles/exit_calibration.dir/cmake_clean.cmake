file(REMOVE_RECURSE
  "CMakeFiles/exit_calibration.dir/exit_calibration.cpp.o"
  "CMakeFiles/exit_calibration.dir/exit_calibration.cpp.o.d"
  "exit_calibration"
  "exit_calibration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exit_calibration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
