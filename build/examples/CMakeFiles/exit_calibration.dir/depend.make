# Empty dependencies file for exit_calibration.
# This may be replaced when dependencies are built.
