# Empty compiler generated dependencies file for custom_exits.
# This may be replaced when dependencies are built.
