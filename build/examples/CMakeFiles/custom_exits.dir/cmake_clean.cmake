file(REMOVE_RECURSE
  "CMakeFiles/custom_exits.dir/custom_exits.cpp.o"
  "CMakeFiles/custom_exits.dir/custom_exits.cpp.o.d"
  "custom_exits"
  "custom_exits.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_exits.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
