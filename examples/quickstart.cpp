// Quickstart: the whole AdaPEx flow in ~40 lines.
//
// Design time: generate a small library (train an early-exit CNV, sweep
// dataflow-aware pruning, synthesize a FINN-style accelerator per model).
// Runtime: serve a 25-second edge episode with the Runtime Manager picking
// the (pruning rate, confidence threshold) operating point per workload.
//
//   ./build/examples/quickstart

#include <iostream>

#include "core/adapex.hpp"

int main() {
  using namespace adapex;

  // A deliberately small configuration so this runs in a couple of
  // minutes; see core/scale.hpp for larger presets.
  auto scale = ExperimentScale::tiny();
  SyntheticSpec dataset = cifar10_like_spec();
  // Demo-sized difficulty: the early-exit model must train to a sensible
  // level inside a minute (the full-difficulty runs are the benches' job).
  dataset.noise_max = 1.2;
  LibraryGenSpec spec = make_gen_spec(dataset, scale);
  spec.initial_train.epochs += scale.initial_epochs / 2;
  spec.prune_rates_pct = {0, 25, 50, 75};
  spec.conf_thresholds_pct = {0, 25, 50, 75, 100};
  spec.on_progress = [](const std::string& s) { std::cout << "  " << s << "\n"; };

  std::cout << "== design time: generating the library ==\n";
  Library library = Framework::design(spec);
  std::cout << "library: " << library.entries.size() << " operating points, "
            << library.accelerators.size() << " accelerators, reference "
            << "accuracy " << library.reference_accuracy << "\n\n";

  std::cout << "== runtime: 25 s edge episode, workload 1.3x FINN capacity ==\n";
  EdgeScenario scenario = scale_to_library(EdgeScenario{}, library, 1.3);
  for (AdaptPolicy policy : {AdaptPolicy::kAdaPEx, AdaptPolicy::kStaticFinn}) {
    EdgeMetrics m = Framework::serve(library, {policy, 0.10}, scenario, 10);
    std::cout << to_string(policy) << ": inference loss "
              << m.inference_loss_pct << "%, accuracy " << m.accuracy * 100
              << "%, latency " << m.avg_latency_ms << " ms, power "
              << m.avg_power_w << " W, QoE " << m.qoe * 100 << "%\n";
  }
  std::cout << "\nAdaPEx should keep (near-)zero loss where static FINN "
               "drops requests.\n";
  return 0;
}
