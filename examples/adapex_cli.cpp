// adapex_cli — command-line front end to the AdaPEx flow.
//
//   adapex_cli generate [--dataset cifar|gtsrb] [--out DIR]
//       [--journal DIR] [--retries N] [--partial-policy fail|emit_partial]
//       Run the design-time flow at the ADAPEX_SCALE preset and cache the
//       library. With --journal every finished design point is checkpointed
//       under DIR and an interrupted run resumes byte-identically; --retries
//       re-attempts failing points on fresh seed streams, and
//       --partial-policy emit_partial ships a library with still-failing
//       points explicitly missing instead of failing the run. A generation
//       report (computed/replayed/retried/quarantined, checkpoint overhead)
//       is printed after any journaled or retried run.
//   adapex_cli inspect LIBRARY.json [--top N]
//       Summarize a library: reference accuracy, accelerators, and the
//       Pareto-best operating points.
//   adapex_cli serve LIBRARY.json [--policy adapex|pr|ct|finn]
//       [--ratio R] [--runs N] [--threshold T]
//       Serve edge episodes at R x FINN capacity and print the metrics.
//
// Exit code 0 on success, 1 on usage errors, 2 on runtime failures.

#include <cstring>
#include <iostream>
#include <map>
#include <string>

#include "common/table.hpp"
#include "core/adapex.hpp"

namespace {

using namespace adapex;

int usage() {
  std::cerr <<
      "usage:\n"
      "  adapex_cli generate [--dataset cifar|gtsrb] [--out DIR]\n"
      "             [--journal DIR] [--retries N]\n"
      "             [--partial-policy fail|emit_partial]\n"
      "  adapex_cli inspect LIBRARY.json [--top N]\n"
      "  adapex_cli serve LIBRARY.json [--policy adapex|pr|ct|finn]\n"
      "             [--ratio R] [--runs N] [--threshold T]\n";
  return 1;
}

std::map<std::string, std::string> parse_flags(int argc, char** argv,
                                               int start) {
  std::map<std::string, std::string> flags;
  for (int i = start; i + 1 < argc; i += 2) {
    if (std::strncmp(argv[i], "--", 2) != 0) {
      throw ConfigError(std::string("expected a --flag, got ") + argv[i]);
    }
    flags[argv[i] + 2] = argv[i + 1];
  }
  return flags;
}

int cmd_generate(int argc, char** argv) {
  auto flags = parse_flags(argc, argv, 2);
  const std::string ds = flags.count("dataset") ? flags["dataset"] : "cifar";
  const std::string out =
      flags.count("out") ? flags["out"] : default_artifact_dir();
  SyntheticSpec dataset =
      ds == "gtsrb" ? gtsrb_like_spec() : cifar10_like_spec();
  auto spec = make_gen_spec(dataset, ExperimentScale::from_env());
  spec.on_progress = [](const std::string& s) {
    std::cerr << "  " << s << "\n";
  };
  if (flags.count("journal")) spec.journal_dir = flags["journal"];
  if (flags.count("retries")) {
    spec.max_point_retries = std::stoi(flags["retries"]);
  }
  if (flags.count("partial-policy")) {
    const std::string& p = flags["partial-policy"];
    if (p == "fail") {
      spec.partial_policy = PartialPolicy::kFail;
    } else if (p == "emit_partial") {
      spec.partial_policy = PartialPolicy::kEmitPartial;
    } else {
      throw ConfigError("unknown partial policy: " + p +
                        " (expected fail|emit_partial)");
    }
  }
  GenerationReport report;
  spec.report = &report;
  Library lib = generate_or_load_library(spec, out);
  std::cout << "library ready: " << lib.entries.size() << " entries, "
            << lib.accelerators.size() << " accelerators, reference accuracy "
            << lib.reference_accuracy << "\n";
  if (report.partial) {
    std::cout << "PARTIAL library (not cached): inspect the report below\n";
  } else {
    std::cout << "cached under " << out << "/library_"
              << library_cache_key(spec) << ".json\n";
  }
  // A cache hit never runs generation, so the report stays empty.
  if (!report.points.empty()) {
    std::cout << "generation report: " << report.summary() << "\n";
  }
  return 0;
}

int cmd_inspect(int argc, char** argv) {
  if (argc < 3) return usage();
  auto flags = parse_flags(argc, argv, 3);
  const int top = flags.count("top") ? std::stoi(flags["top"]) : 10;
  Library lib = Library::load(argv[2]);
  std::cout << "dataset: " << lib.dataset << "\nreference accuracy: "
            << lib.reference_accuracy << "\nentries: " << lib.entries.size()
            << ", accelerators: " << lib.accelerators.size() << "\n\n";

  // Pareto frontier on (accuracy up, ips up).
  std::vector<const LibraryEntry*> frontier;
  for (const auto& e : lib.entries) {
    bool dominated = false;
    for (const auto& o : lib.entries) {
      if (o.accuracy >= e.accuracy && o.ips >= e.ips &&
          (o.accuracy > e.accuracy || o.ips > e.ips)) {
        dominated = true;
        break;
      }
    }
    if (!dominated) frontier.push_back(&e);
  }
  std::sort(frontier.begin(), frontier.end(),
            [](const LibraryEntry* a, const LibraryEntry* b) {
              return a->accuracy > b->accuracy;
            });
  TextTable table({"variant", "rate%", "ct%", "accuracy", "ips", "mj/inf"});
  int shown = 0;
  for (const auto* e : frontier) {
    if (shown++ >= top) break;
    table.add_row({to_string(e->variant), std::to_string(e->prune_rate_pct),
                   std::to_string(e->conf_threshold_pct),
                   TextTable::num(e->accuracy, 3), TextTable::num(e->ips, 0),
                   TextTable::num(e->energy_per_inf_j * 1e3, 4)});
  }
  std::cout << "accuracy-throughput Pareto frontier (top " << top << "):\n";
  table.print(std::cout);
  return 0;
}

int cmd_serve(int argc, char** argv) {
  if (argc < 3) return usage();
  auto flags = parse_flags(argc, argv, 3);
  Library lib = Library::load(argv[2]);
  AdaptPolicy policy = AdaptPolicy::kAdaPEx;
  if (flags.count("policy")) {
    const std::string p = flags["policy"];
    if (p == "adapex") policy = AdaptPolicy::kAdaPEx;
    else if (p == "pr") policy = AdaptPolicy::kPrOnly;
    else if (p == "ct") policy = AdaptPolicy::kCtOnly;
    else if (p == "finn") policy = AdaptPolicy::kStaticFinn;
    else throw ConfigError("unknown policy: " + p);
  }
  const double ratio =
      flags.count("ratio") ? std::stod(flags["ratio"]) : 1.3;
  const int runs = flags.count("runs") ? std::stoi(flags["runs"]) : 20;
  const double threshold =
      flags.count("threshold") ? std::stod(flags["threshold"]) : 0.10;

  EdgeScenario scenario = scale_to_library(EdgeScenario{}, lib, ratio);
  EdgeMetrics m = simulate_edge_runs(lib, {policy, threshold}, scenario, runs);
  TextTable table({"metric", "value"});
  table.add_row({"policy", to_string(policy)});
  table.add_row({"offered load", TextTable::num(scenario.offered_ips(), 0) +
                                     " ips (" + TextTable::num(ratio, 2) +
                                     "x FINN)"});
  table.add_row({"inference loss", TextTable::num(m.inference_loss_pct, 2) + " %"});
  table.add_row({"accuracy", TextTable::num(m.accuracy * 100, 2) + " %"});
  table.add_row({"avg latency", TextTable::num(m.avg_latency_ms, 3) + " ms"});
  table.add_row({"avg power", TextTable::num(m.avg_power_w, 3) + " W"});
  table.add_row({"energy/inf", TextTable::num(m.energy_per_inf_j * 1e3, 4) + " mJ"});
  table.add_row({"EDP", TextTable::num(m.edp * 1e6, 4) + " uJ*s"});
  table.add_row({"QoE", TextTable::num(m.qoe * 100, 2) + " %"});
  table.add_row({"reconfigs/run",
                 TextTable::num(static_cast<double>(m.reconfigurations) / runs, 1)});
  table.print(std::cout);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  try {
    if (cmd == "generate") return cmd_generate(argc, argv);
    if (cmd == "inspect") return cmd_inspect(argc, argv);
    if (cmd == "serve") return cmd_serve(argc, argv);
    return usage();
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
}
