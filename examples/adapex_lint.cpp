// adapex_lint — static design verifier for AdaPEx accelerators.
//
//   adapex_lint [MODEL.adpx] [--folding FOLDING.json] [--device DEV]
//               [--min-severity info|warning|error]
//               [--in-channels N] [--image-size N]
//               [--folding-style styled|default]
//               [--scale W] [--exits paper|none]
//               [--emit-folding PATH]
//
// Lints a (model, folding, accelerator-config) design point without running
// any simulation and prints the structured findings as a table (rule,
// severity, site, message, fix hint). With MODEL.adpx the model comes from
// a serialized export; otherwise a CNV demo model is built at --scale with
// the paper's exits. --folding lints a FINN-style folding JSON (rule R6)
// before applying it; otherwise a config is generated per --folding-style.
// --emit-folding writes the effective folding JSON for later hand-editing.
//
// Exit code 0 when no error-severity findings, 3 when the design has
// errors, 1 on usage errors, 2 on runtime failures.

#include <cstring>
#include <iostream>
#include <map>
#include <string>

#include "analysis/lint.hpp"
#include "model/cnv.hpp"
#include "model/serialize.hpp"

namespace {

using namespace adapex;

int usage() {
  std::cerr <<
      "usage:\n"
      "  adapex_lint [MODEL.adpx] [--folding FOLDING.json] [--device DEV]\n"
      "              [--min-severity info|warning|error]\n"
      "              [--in-channels N] [--image-size N]\n"
      "              [--folding-style styled|default]\n"
      "              [--scale W] [--exits paper|none]\n"
      "              [--emit-folding PATH]\n"
      "devices: zcu104 (default) | ultra96 | zcu102\n";
  return 1;
}

analysis::Severity severity_from_string(const std::string& s) {
  if (s == "info") return analysis::Severity::kInfo;
  if (s == "warning") return analysis::Severity::kWarning;
  if (s == "error") return analysis::Severity::kError;
  throw ConfigError("unknown severity: " + s + " (expected info|warning|error)");
}

}  // namespace

int main(int argc, char** argv) {
  std::string model_path;
  std::map<std::string, std::string> flags;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--", 2) == 0) {
      if (i + 1 >= argc) return usage();
      flags[argv[i] + 2] = argv[i + 1];
      ++i;
    } else if (model_path.empty()) {
      model_path = argv[i];
    } else {
      return usage();
    }
  }

  try {
    AcceleratorConfig config;
    if (flags.count("in-channels")) {
      config.in_channels = std::stoi(flags["in-channels"]);
    }
    if (flags.count("image-size")) {
      config.image_size = std::stoi(flags["image-size"]);
    }

    BranchyModel model;
    if (!model_path.empty()) {
      model = load_model(model_path);
    } else {
      const double scale =
          flags.count("scale") ? std::stod(flags["scale"]) : 0.25;
      const std::string exits =
          flags.count("exits") ? flags["exits"] : "paper";
      CnvConfig cnv = CnvConfig{}.scaled(scale);
      cnv.in_channels = config.in_channels;
      cnv.image_size = config.image_size;
      Rng rng(7);
      model = exits == "none"
                  ? build_cnv(cnv, rng)
                  : build_cnv_with_exits(cnv, paper_exits_config(false), rng);
      std::cerr << "no model given; linting a demo CNV (scale " << scale
                << ", exits " << exits << ")\n";
    }

    analysis::LintOptions options;
    if (flags.count("device")) {
      options.device = analysis::DeviceProfile::by_name(flags["device"]);
    }
    const analysis::Severity min_severity =
        flags.count("min-severity")
            ? severity_from_string(flags["min-severity"])
            : analysis::Severity::kInfo;

    // The folding under test: a user-supplied JSON (linted as R6 against
    // the walk-order sites before use) or a generated config.
    analysis::LintReport report;
    FoldingConfig folding;
    std::vector<LayerSite> sites;
    try {
      sites = walk_compute_layers(model, config.in_channels,
                                  config.image_size);
    } catch (const Error&) {
      // The strict walk rejects the model; rerun the lenient design rules
      // so the user sees every violation, not just the first.
      report = analysis::lint_design(model, FoldingConfig{}, config);
      std::cout << report.format_table(min_severity) << "\n"
                << report.summary() << "\n";
      return 3;
    }
    if (flags.count("folding")) {
      const Json j = Json::parse(read_file(flags["folding"]));
      report.merge(analysis::lint_folding_json(j, sites));
      if (report.has_errors()) {
        // The JSON is not well-formed enough to build a config from;
        // report what we have.
        std::cout << report.format_table(min_severity) << "\n"
                  << report.summary() << "\n";
        return 3;
      }
      // R6 passed, so every site has a positive integral PE/SIMD. Build
      // the config directly instead of via from_json, whose first-check-wins
      // divisibility validation would hide all but one R1 violation.
      for (const auto& site : sites) {
        const Json& entry = j.at(site.name);
        folding.folds.push_back(
            LayerFold{static_cast<int>(entry.at("PE").as_number()),
                      static_cast<int>(entry.at("SIMD").as_number())});
      }
    } else {
      const std::string style =
          flags.count("folding-style") ? flags["folding-style"] : "styled";
      if (style == "styled") {
        folding = styled_folding(sites);
      } else if (style == "default") {
        folding = default_folding(sites);
      } else {
        throw ConfigError("unknown folding style: " + style);
      }
    }
    if (flags.count("emit-folding")) {
      write_file(flags["emit-folding"], folding.to_json(sites).dump(2) + "\n");
      std::cerr << "wrote folding to " << flags["emit-folding"] << "\n";
    }

    report.merge(analysis::lint(model, folding, config, options));

    const std::string table = report.format_table(min_severity);
    if (!table.empty()) std::cout << table << "\n";
    std::cout << report.summary() << " (" << sites.size() << " layers, device "
              << options.device.name << ")\n";
    return report.has_errors() ? 3 : 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
}
