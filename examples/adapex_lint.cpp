// adapex_lint — static design verifier for AdaPEx accelerators.
//
//   adapex_lint [MODEL.adpx] [--folding FOLDING.json] [--device DEV]
//               [--min-severity info|warning|error]
//               [--in-channels N] [--image-size N]
//               [--folding-style styled|default|reach]
//               [--scale W] [--exits paper|none]
//               [--fractions F0,F1,...] [--verify] [--json]
//               [--emit-folding PATH]
//   adapex_lint --fleet-scenario SCENARIO.json [--min-severity ...] [--json]
//   adapex_lint --gen-spec [--journal-dir DIR] [--max-point-retries N]
//               [--partial-policy fail|emit_partial]
//               [--checksum-mode fnv1a64|crc32] [--verify-dataflow]
//               [--eval-path auto|float|packed]
//               [--min-severity ...] [--json]
//
// Lints a (model, folding, accelerator-config) design point and prints the
// structured findings as a table (rule, severity, site, message, fix hint).
// With MODEL.adpx the model comes from a serialized export; otherwise a CNV
// demo model is built at --scale with the paper's exits. --folding lints a
// FINN-style folding JSON (rule R6) before applying it; otherwise a config
// is generated per --folding-style. --emit-folding writes the effective
// folding JSON for later hand-editing.
//
// The reach-aware rules R8-R14 analyze under --fractions (one probability
// per output, exits first; default uniform). --verify additionally runs the
// agreement harness: the static II and FIFO occupancy bounds are
// cross-validated against the transaction-level pipeline simulator, and any
// bracket violation is reported as an XV error.
//
// --fleet-scenario switches the tool to the serving-drill rules: the JSON
// is parsed as a FleetScenario and checked against FS1-FS8 (plus the edge
// scenario and fault-spec rules on its base), skipping the model path
// entirely. The same --json / --min-severity / exit-code contract applies.
//
// --gen-spec switches to the crash-safety rules RG1-RG5 and the
// packed-inference rules RQ2-RQ3 (library/journal.hpp): the
// journal/retry/partial/checksum/eval-path knobs of a library-generation
// spec are validated exactly as generate_library() would before spending
// any training time — CI can gate a sweep's configuration without running
// it. RQ3 reads the ADAPEX_PACKED environment variable of this process, so
// exporting the intended override before linting reproduces exactly what a
// generation run would see.
//
// --json replaces the table with a machine-readable document on stdout
// ({"errors", "warnings", "infos", "diagnostics": [...], ...}) for CI
// gating; findings below --min-severity are still included.
//
// Exit codes (stable, meant for CI):
//   0  no error-severity findings (verification passed if requested)
//   3  the design has error findings or failed cross-validation
//   1  usage errors
//   2  runtime failures (unreadable files, bad flag values, ...)

#include <cstring>
#include <iostream>
#include <map>
#include <set>
#include <sstream>
#include <string>

#include "analysis/dataflow.hpp"
#include "analysis/lint.hpp"
#include "edge/fleet.hpp"
#include "library/generator.hpp"
#include "model/cnv.hpp"
#include "model/serialize.hpp"

namespace {

using namespace adapex;

int usage() {
  std::cerr <<
      "usage:\n"
      "  adapex_lint [MODEL.adpx] [--folding FOLDING.json] [--device DEV]\n"
      "              [--min-severity info|warning|error]\n"
      "              [--in-channels N] [--image-size N]\n"
      "              [--folding-style styled|default|reach]\n"
      "              [--scale W] [--exits paper|none]\n"
      "              [--fractions F0,F1,...] [--verify] [--json]\n"
      "              [--emit-folding PATH]\n"
      "  adapex_lint --fleet-scenario SCENARIO.json [--min-severity ...]"
      " [--json]\n"
      "  adapex_lint --gen-spec [--journal-dir DIR] [--max-point-retries N]\n"
      "              [--partial-policy fail|emit_partial]\n"
      "              [--checksum-mode fnv1a64|crc32] [--verify-dataflow]\n"
      "              [--eval-path auto|float|packed]\n"
      "              [--min-severity ...] [--json]\n"
      "devices: zcu104 (default) | ultra96 | zcu102\n"
      "exit codes: 0 clean, 3 errors found, 1 usage, 2 runtime failure\n";
  return 1;
}

analysis::Severity severity_from_string(const std::string& s) {
  if (s == "info") return analysis::Severity::kInfo;
  if (s == "warning") return analysis::Severity::kWarning;
  if (s == "error") return analysis::Severity::kError;
  throw ConfigError("unknown severity: " + s + " (expected info|warning|error)");
}

std::vector<double> fractions_from_string(const std::string& s) {
  std::vector<double> fractions;
  std::stringstream ss(s);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (item.empty()) continue;
    fractions.push_back(std::stod(item));
  }
  if (fractions.empty()) {
    throw ConfigError("--fractions needs a comma-separated probability list");
  }
  return fractions;
}

/// Renders one lint outcome and returns the process exit code. JSON mode
/// emits the full report regardless of min_severity (CI filters itself);
/// table mode respects it.
int emit(const analysis::LintReport& report, analysis::Severity min_severity,
         bool json, const std::string& context_key, const Json& context) {
  if (json) {
    Json root = report.to_json();
    if (!context_key.empty()) root[context_key] = context;
    root["exit_code"] = report.has_errors() ? 3 : 0;
    std::cout << root.dump(2) << "\n";
  } else {
    const std::string table = report.format_table(min_severity);
    if (!table.empty()) std::cout << table << "\n";
    std::cout << report.summary() << "\n";
  }
  return report.has_errors() ? 3 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  const std::set<std::string> boolean_flags = {"json", "verify", "gen-spec",
                                               "verify-dataflow"};
  std::string model_path;
  std::map<std::string, std::string> flags;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--", 2) == 0) {
      const std::string name = argv[i] + 2;
      if (boolean_flags.count(name)) {
        flags.emplace(name, "");
        continue;
      }
      if (i + 1 >= argc) return usage();
      flags[name] = argv[i + 1];
      ++i;
    } else if (model_path.empty()) {
      model_path = argv[i];
    } else {
      return usage();
    }
  }
  const bool json = flags.count("json") > 0;

  try {
    const analysis::Severity min_severity_early =
        flags.count("min-severity")
            ? severity_from_string(flags["min-severity"])
            : analysis::Severity::kInfo;
    if (flags.count("fleet-scenario")) {
      // Serving-drill mode: lint a FleetScenario JSON (FS1-FS8 plus the
      // edge/fault rules on its base) and skip the model path entirely.
      const Json j = Json::parse(read_file(flags["fleet-scenario"]));
      const FleetScenario scenario = FleetScenario::from_json(j);
      const analysis::LintReport report = lint_fleet_scenario(scenario);
      const int code = emit(report, min_severity_early, json, "", Json());
      if (!json) {
        std::cerr << "(" << scenario.devices.size() << " devices, "
                  << scenario.tenants.size() << " tenants, "
                  << scenario.fleet_faults.domains.size() << " domains)\n";
      }
      return code;
    }

    if (flags.count("gen-spec")) {
      // Crash-safety mode: validate a generation spec's robustness knobs
      // against RG1-RG5 without building a model or training anything.
      LibraryGenSpec spec;
      if (flags.count("journal-dir")) spec.journal_dir = flags["journal-dir"];
      if (flags.count("max-point-retries")) {
        spec.max_point_retries = std::stoi(flags["max-point-retries"]);
      }
      if (flags.count("partial-policy")) {
        const std::string& p = flags["partial-policy"];
        if (p == "fail") {
          spec.partial_policy = PartialPolicy::kFail;
        } else if (p == "emit_partial") {
          spec.partial_policy = PartialPolicy::kEmitPartial;
        } else {
          throw ConfigError("unknown partial policy: " + p +
                            " (expected fail|emit_partial)");
        }
      }
      if (flags.count("checksum-mode")) {
        spec.checksum_mode = flags["checksum-mode"];
      }
      if (flags.count("eval-path")) spec.eval_path = flags["eval-path"];
      spec.verify_dataflow = flags.count("verify-dataflow") > 0;
      const analysis::LintReport report = lint_gen_spec(spec);
      const int code = emit(report, min_severity_early, json, "", Json());
      if (!json) {
        std::cerr << "(journal " << (spec.journal_dir.empty()
                                         ? std::string("disabled")
                                         : spec.journal_dir)
                  << ", retries " << spec.max_point_retries << ", policy "
                  << to_string(spec.partial_policy) << ", checksum "
                  << spec.checksum_mode << ", eval path " << spec.eval_path
                  << ")\n";
      }
      return code;
    }

    AcceleratorConfig config;
    if (flags.count("in-channels")) {
      config.in_channels = std::stoi(flags["in-channels"]);
    }
    if (flags.count("image-size")) {
      config.image_size = std::stoi(flags["image-size"]);
    }

    BranchyModel model;
    if (!model_path.empty()) {
      model = load_model(model_path);
    } else {
      const double scale =
          flags.count("scale") ? std::stod(flags["scale"]) : 0.25;
      const std::string exits =
          flags.count("exits") ? flags["exits"] : "paper";
      CnvConfig cnv = CnvConfig{}.scaled(scale);
      cnv.in_channels = config.in_channels;
      cnv.image_size = config.image_size;
      Rng rng(7);
      model = exits == "none"
                  ? build_cnv(cnv, rng)
                  : build_cnv_with_exits(cnv, paper_exits_config(false), rng);
      std::cerr << "no model given; linting a demo CNV (scale " << scale
                << ", exits " << exits << ")\n";
    }

    analysis::LintOptions options;
    if (flags.count("device")) {
      options.device = analysis::DeviceProfile::by_name(flags["device"]);
    }
    if (flags.count("fractions")) {
      options.exit_fractions = fractions_from_string(flags["fractions"]);
    }
    const analysis::Severity min_severity =
        flags.count("min-severity")
            ? severity_from_string(flags["min-severity"])
            : analysis::Severity::kInfo;

    // The folding under test: a user-supplied JSON (linted as R6 against
    // the walk-order sites before use) or a generated config.
    analysis::LintReport report;
    FoldingConfig folding;
    std::vector<LayerSite> sites;
    try {
      sites = walk_compute_layers(model, config.in_channels,
                                  config.image_size);
    } catch (const Error&) {
      // The strict walk rejects the model; rerun the lenient design rules
      // so the user sees every violation, not just the first.
      report = analysis::lint_design(model, FoldingConfig{}, config);
      return emit(report, min_severity, json, "", Json());
    }
    if (flags.count("folding")) {
      const Json j = Json::parse(read_file(flags["folding"]));
      report.merge(analysis::lint_folding_json(j, sites));
      if (report.has_errors()) {
        // The JSON is not well-formed enough to build a config from;
        // report what we have.
        return emit(report, min_severity, json, "", Json());
      }
      // R6 passed, so every site has a positive integral PE/SIMD. Build
      // the config directly instead of via from_json, whose first-check-wins
      // divisibility validation would hide all but one R1 violation.
      for (const auto& site : sites) {
        const Json& entry = j.at(site.name);
        folding.folds.push_back(
            LayerFold{static_cast<int>(entry.at("PE").as_number()),
                      static_cast<int>(entry.at("SIMD").as_number())});
      }
    } else {
      const std::string style =
          flags.count("folding-style") ? flags["folding-style"] : "styled";
      if (style == "styled") {
        folding = styled_folding(sites);
      } else if (style == "default") {
        folding = default_folding(sites);
      } else if (style == "reach") {
        // Reach-aware folds need the target exit regime (--fractions, or
        // uniform) and the device budget (--device). The fixed overhead is
        // taken from a compile of the styled baseline so the optimizer
        // prices pool/branch/FIFO fabric it does not directly control.
        ReachAwareOptions ra_opts;
        ra_opts.baseline = styled_folding(sites);
        for (std::size_t e = 0; e < model.num_exits(); ++e) {
          ra_opts.exit_after_block.push_back(model.exit(e).after_block);
        }
        const Accelerator styled_acc =
            compile_accelerator(model, ra_opts.baseline, config);
        ra_opts.cost = config.cost;
        ra_opts.fixed_overhead =
            styled_acc.total -
            folding_site_resources(sites, ra_opts.baseline, config.cost);
        std::vector<double> fractions = options.exit_fractions;
        if (fractions.empty()) {
          fractions.assign(model.num_outputs(),
                           1.0 / static_cast<double>(model.num_outputs()));
        }
        folding = reach_aware_folding(sites, fractions, options.device.caps,
                                      ra_opts);
      } else {
        throw ConfigError("unknown folding style: " + style);
      }
    }
    if (flags.count("emit-folding")) {
      write_file(flags["emit-folding"], folding.to_json(sites).dump(2) + "\n");
      std::cerr << "wrote folding to " << flags["emit-folding"] << "\n";
    }

    report.merge(analysis::lint(model, folding, config, options));

    // Agreement harness: only meaningful once the static rules accept the
    // design (a rejected design cannot be compiled, let alone simulated).
    Json verify_json;
    std::string context_key;
    if (flags.count("verify") && !report.has_errors()) {
      const Accelerator acc = compile_accelerator(model, folding, config);
      std::vector<double> fractions = options.exit_fractions;
      if (fractions.empty()) {
        fractions.assign(static_cast<std::size_t>(acc.num_exits) + 1,
                         1.0 / static_cast<double>(acc.num_exits + 1));
      }
      analysis::CrossValidateOptions cv_opts;
      cv_opts.dataflow.device = options.device;
      const analysis::CrossValidation cv =
          analysis::cross_validate(acc, fractions, cv_opts);
      report.merge(cv.lint);
      if (json) {
        context_key = "verify";
        verify_json = Json::object();
        verify_json["passed"] = cv.passed;
        verify_json["static_ii_cycles"] = cv.static_ii_cycles;
        verify_json["measured_ii_cycles"] = cv.measured_ii_cycles;
        verify_json["ii_rel_err"] = cv.ii_rel_err;
        verify_json["num_images"] = cv.num_images;
        Json links = Json::array();
        for (const auto& l : cv.links) {
          Json lj = Json::object();
          lj["producer"] = l.producer;
          lj["consumer"] = l.consumer;
          lj["high_water"] = l.measured_high_water;
          lj["lower"] = l.lower;
          lj["upper"] = l.upper;
          lj["ok"] = l.ok;
          links.push_back(std::move(lj));
        }
        verify_json["links"] = std::move(links);
      } else {
        std::cerr << cv.summary() << "\n";
      }
    }

    const int code =
        emit(report, min_severity, json, context_key, verify_json);
    if (!json) {
      std::cerr << "(" << sites.size() << " layers, device "
                << options.device.name << ")\n";
    }
    return code;
  } catch (const std::exception& e) {
    if (json) {
      Json root = Json::object();
      root["error"] = std::string(e.what());
      root["exit_code"] = 2;
      std::cout << root.dump(2) << "\n";
    } else {
      std::cerr << "error: " << e.what() << "\n";
    }
    return 2;
  }
}
