// Exit-confidence calibration analysis.
//
// The early-exit rule trusts the softmax confidence: an exit is taken when
// max-softmax clears the threshold (paper section II). That only works if
// confidence separates correct from incorrect predictions. This example
// trains the paper's early-exit CNV and reports, per exit:
//   - the reliability table (confidence bins vs empirical accuracy),
//   - the expected calibration error (ECE),
//   - the confidence separation between correct and incorrect samples,
//   - per-layer pruning sensitivity, showing which layers the dataflow-
//     aware pruning can cut cheaply.
//
//   ./build/examples/exit_calibration

#include <iostream>

#include "common/table.hpp"
#include "core/adapex.hpp"
#include "nn/metrics.hpp"
#include "pruning/sensitivity.hpp"

int main() {
  using namespace adapex;

  auto scale = ExperimentScale::tiny();
  SyntheticSpec dspec = cifar10_like_spec();
  dspec.train_size = scale.train_size;
  dspec.test_size = scale.test_size;
  SyntheticDataset data = make_synthetic(dspec);

  CnvConfig cfg = CnvConfig{}.scaled(scale.width_scale);
  cfg.num_classes = dspec.num_classes;
  Rng rng(19);
  BranchyModel model = build_cnv_with_exits(cfg, paper_exits_config(false), rng);
  TrainConfig tc;
  tc.epochs = scale.initial_epochs;
  tc.lr = scale.lr;
  tc.batch_size = scale.batch_size;
  std::cout << "Training early-exit CNV (" << tc.epochs << " epochs)...\n\n";
  train_model(model, data.train, dspec.flip_symmetry, tc);

  ExitEvaluation eval = evaluate_exits(model, data.test);
  const char* exit_names[] = {"exit 0 (after block 0)",
                              "exit 1 (after block 1)", "final exit"};
  for (std::size_t e = 0; e < eval.num_exits(); ++e) {
    auto report = calibration_report(eval, e, 10);
    std::cout << "== " << exit_names[e] << " ==\n";
    TextTable bins({"confidence bin", "samples", "mean conf", "accuracy"});
    for (const auto& b : report.bins) {
      if (b.count == 0) continue;
      bins.add_row({TextTable::num(b.lo, 1) + "-" + TextTable::num(b.hi, 1),
                    std::to_string(b.count), TextTable::num(b.mean_confidence, 3),
                    TextTable::num(b.accuracy, 3)});
    }
    bins.print(std::cout);
    std::cout << "ECE: " << TextTable::num(report.ece, 3)
              << " | mean confidence when correct: "
              << TextTable::num(report.mean_confidence_correct, 3)
              << ", when incorrect: "
              << TextTable::num(report.mean_confidence_incorrect, 3) << "\n\n";
  }

  // Confusion matrix of the final exit (compact per-class recall view).
  ConfusionMatrix cm =
      confusion_matrix(model, data.test, eval.num_exits() - 1);
  std::cout << "final-exit accuracy: " << TextTable::num(cm.accuracy(), 3)
            << "; per-class recall:";
  for (double r : cm.per_class_recall()) std::cout << " " << TextTable::num(r, 2);
  std::cout << "\n\n";

  // Per-layer pruning sensitivity (no retraining).
  std::cout << "Per-layer pruning sensitivity (final-exit accuracy, "
               "no retraining):\n";
  auto sites = walk_compute_layers(model, cfg.in_channels, cfg.image_size);
  SensitivityOptions opts;
  opts.rates_pct = {25, 50, 75};
  opts.folding = styled_folding(sites);
  auto points = prune_sensitivity(model, data.test, opts);
  TextTable sens({"layer", "rate 25%", "rate 50%", "rate 75%"});
  for (std::size_t i = 0; i < points.size(); i += 3) {
    sens.add_row({points[i].layer, TextTable::num(points[i].accuracy, 3),
                  TextTable::num(points[i + 1].accuracy, 3),
                  TextTable::num(points[i + 2].accuracy, 3)});
  }
  sens.print(std::cout);
  std::cout << "\nFlat rows tolerate pruning; steep rows are the layers the\n"
               "dataflow-aware pass should (and does) treat carefully.\n";
  return 0;
}
