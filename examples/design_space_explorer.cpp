// Design-space explorer: the low-level AdaPEx APIs, one step at a time.
//
// Trains an early-exit CNV, prunes it at a requested rate under a FINN
// folding config, and prints everything the design-time flow derives:
// the per-layer prune report (with the dataflow constraints' adjustments),
// the accelerator module inventory with cycle and resource estimates, the
// analytical vs simulated throughput, and the accuracy/IPS/energy of a
// confidence-threshold sweep.
//
//   ./build/examples/design_space_explorer [prune_rate_pct=50]

#include <cstdlib>
#include <iomanip>
#include <iostream>

#include "common/table.hpp"
#include "core/adapex.hpp"
#include "finn/report.hpp"

int main(int argc, char** argv) {
  using namespace adapex;
  const int rate_pct = argc > 1 ? std::atoi(argv[1]) : 50;
  std::cout << "Exploring pruning rate " << rate_pct << "%\n\n";

  // 1. Data + model + training.
  auto scale = ExperimentScale::tiny();
  SyntheticSpec dspec = cifar10_like_spec();
  dspec.train_size = scale.train_size;
  dspec.test_size = scale.test_size;
  SyntheticDataset data = make_synthetic(dspec);

  CnvConfig cfg = CnvConfig{}.scaled(scale.width_scale);
  cfg.num_classes = dspec.num_classes;
  Rng rng(7);
  BranchyModel model = build_cnv_with_exits(cfg, paper_exits_config(false), rng);

  TrainConfig tc;
  tc.epochs = scale.initial_epochs;
  tc.lr = scale.lr;
  tc.batch_size = scale.batch_size;
  std::cout << "Training early-exit CNV (" << tc.epochs << " epochs)...\n";
  auto history = train_model(model, data.train, dspec.flip_symmetry, tc);
  std::cout << "final joint loss " << history.back().joint_loss << "\n\n";

  // 2. Folding + pruning.
  auto sites = walk_compute_layers(model, cfg.in_channels, cfg.image_size);
  FoldingConfig folding = styled_folding(sites);
  std::cout << "FINN folding config (walk order):\n"
            << folding.to_json(sites).dump(1) << "\n\n";

  PruneOptions popts;
  popts.rate = rate_pct / 100.0;
  popts.folding = folding;
  PruneReport report = prune_model(model, popts);
  TextTable prune_table({"layer", "filters", "removed", "remaining",
                         "constrained"});
  for (const auto& l : report.layers) {
    prune_table.add_row({l.name, std::to_string(l.original_filters),
                         std::to_string(l.removed),
                         std::to_string(l.remaining),
                         l.constrained ? "yes" : ""});
  }
  prune_table.print(std::cout);
  std::cout << "requested " << report.requested_rate * 100 << "%, achieved "
            << report.achieved_rate * 100 << "% (dataflow constraints)\n\n";

  // 3. Retrain briefly, then synthesize.
  TrainConfig rt = tc;
  rt.epochs = scale.retrain_epochs;
  rt.lr = tc.lr * 0.5;
  train_model(model, data.train, dspec.flip_symmetry, rt);

  Accelerator acc = compile_accelerator(model, folding, AcceleratorConfig{});
  std::cout << synthesis_report(acc).text;
  std::cout << "exit overhead: " << acc.exit_overhead.bram << " BRAM, "
            << acc.exit_overhead.lut << " LUT\n\n";

  // 4. Analytical model vs the event-driven pipeline simulation.
  PowerModel power;
  ExitEvaluation eval = evaluate_exits(model, data.test);
  TextTable sweep({"conf_threshold_pct", "accuracy", "exit0_frac", "ips",
                   "sim_ips", "latency_ms", "mj_per_inf"});
  for (int ct : {0, 25, 50, 75, 100}) {
    auto stats = apply_threshold(eval, ct / 100.0);
    auto perf = estimate_performance(acc, stats.exit_fraction, power);
    // Cross-check with the simulator on a deterministic exit pattern.
    std::vector<int> exits;
    for (int i = 0; i < 300; ++i) {
      double u = (i % 100) / 100.0;
      int e = 0;
      double acc_frac = 0.0;
      for (std::size_t k = 0; k < stats.exit_fraction.size(); ++k) {
        acc_frac += stats.exit_fraction[k];
        if (u < acc_frac) {
          e = static_cast<int>(k);
          break;
        }
      }
      exits.push_back(e);
    }
    auto sim = simulate_pipeline(acc, exits);
    sweep.add_row({std::to_string(ct), TextTable::num(stats.accuracy, 3),
                   TextTable::num(stats.exit_fraction.front(), 2),
                   TextTable::num(perf.ips, 0),
                   TextTable::num(acc.fclk_hz() / sim.steady_ii_cycles, 0),
                   TextTable::num(perf.latency_ms, 4),
                   TextTable::num(perf.energy_per_inf_j * 1e3, 4)});
  }
  sweep.print(std::cout);
  return 0;
}
