// Custom exit configurations — the "Exits Configuration" knob of Figure 3.
//
// The paper's case study attaches CONV+MaxPool+FC+FC heads after blocks 0
// and 1, but AdaPEx lets the user place and shape exits freely (where to
// put exits is NAS territory; the framework just consumes the config).
// This example compares several configurations on accuracy per exit, exit
// usage, head resource overhead, and throughput at a fixed confidence
// threshold — the numbers a user would look at before committing to one.
//
//   ./build/examples/custom_exits

#include <iostream>

#include "common/table.hpp"
#include "core/adapex.hpp"

int main() {
  using namespace adapex;

  auto scale = ExperimentScale::tiny();
  SyntheticSpec dspec = cifar10_like_spec();
  dspec.train_size = scale.train_size;
  dspec.test_size = scale.test_size;
  // Soften the difficulty tail: this example compares *head architectures*,
  // which needs each candidate trained to a meaningful level in a couple of
  // minutes; the full-difficulty sweeps live in the benches.
  dspec.noise_max = 1.2;
  SyntheticDataset data = make_synthetic(dspec);

  CnvConfig cfg = CnvConfig{}.scaled(scale.width_scale);
  cfg.num_classes = dspec.num_classes;

  struct Candidate {
    const char* name;
    ExitsConfig exits;
  };
  std::vector<Candidate> candidates;
  candidates.push_back({"paper (conv heads @ b0,b1)", paper_exits_config(false)});
  {
    ExitsConfig cheap;
    cheap.exits = {ExitSpec{0, ExitOps::kPoolFc}, ExitSpec{1, ExitOps::kPoolFc}};
    candidates.push_back({"cheap (pool+fc heads)", cheap});
  }
  {
    ExitsConfig minimal;
    minimal.exits = {ExitSpec{1, ExitOps::kFc}};
    candidates.push_back({"minimal (1 global-pool fc @ b1)", minimal});
  }
  {
    ExitsConfig early_only;
    early_only.exits = {ExitSpec{0, ExitOps::kConvPoolFc}};
    candidates.push_back({"single early (conv head @ b0)", early_only});
  }

  // Round-trip one config through JSON to show the file format users edit.
  std::cout << "exits configuration JSON (paper case study):\n"
            << candidates[0].exits.to_json().dump(1) << "\n\n";

  TextTable table({"config", "exits", "acc@ct50", "exit_fracs", "final_acc",
                   "ips@ct50", "head_bram", "head_lut"});
  for (const auto& cand : candidates) {
    Rng rng(11);
    BranchyModel model = build_cnv_with_exits(cfg, cand.exits, rng);
    TrainConfig tc;
    tc.epochs = scale.initial_epochs + scale.initial_epochs / 2;
    tc.lr = scale.lr;
    tc.batch_size = scale.batch_size;
    train_model(model, data.train, dspec.flip_symmetry, tc);

    auto sites = walk_compute_layers(model, cfg.in_channels, cfg.image_size);
    Accelerator acc =
        compile_accelerator(model, styled_folding(sites), AcceleratorConfig{});
    ExitEvaluation eval = evaluate_exits(model, data.test);
    auto stats = apply_threshold(eval, 0.5);
    auto perf = estimate_performance(acc, stats.exit_fraction, PowerModel{});

    std::string fracs;
    for (double f : stats.exit_fraction) {
      if (!fracs.empty()) fracs += "/";
      fracs += TextTable::num(f, 2);
    }
    table.add_row({cand.name, std::to_string(cand.exits.exits.size()),
                   TextTable::num(stats.accuracy, 3), fracs,
                   TextTable::num(stats.per_exit_accuracy.back(), 3),
                   TextTable::num(perf.ips, 0),
                   std::to_string(acc.exit_overhead.bram),
                   std::to_string(acc.exit_overhead.lut)});
  }
  table.print(std::cout);
  std::cout << "\nRicher heads buy early-exit accuracy at a resource cost;\n"
               "the paper's CONV heads are the balanced default.\n";
  return 0;
}
