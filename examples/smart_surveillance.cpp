// Smart video surveillance at the edge — the paper's motivating scenario.
//
// Twenty cameras offload frames to an edge server. Over the day the
// workload swings: quiet periods, rush hours, and a flash crowd. This
// example walks one such timeline phase by phase, showing how the Runtime
// Manager trades pruning rate against confidence threshold, and compares
// the end-of-day totals across all four policies.
//
//   ./build/examples/smart_surveillance

#include <iomanip>
#include <iostream>

#include "core/adapex.hpp"

int main() {
  using namespace adapex;

  std::cout << "Generating the operating-point library (tiny scale)...\n";
  auto scale = ExperimentScale::tiny();
  SyntheticSpec dataset = cifar10_like_spec();
  dataset.noise_max = 1.2;  // demo-sized difficulty (see quickstart.cpp)
  auto spec = make_gen_spec(dataset, scale);
  spec.initial_train.epochs += scale.initial_epochs / 2;
  spec.prune_rates_pct = {0, 25, 50, 75};
  spec.conf_thresholds_pct = {0, 20, 40, 60, 80, 100};
  Library library = Framework::design(spec);

  struct Phase {
    const char* name;
    double load_ratio;  // vs static-FINN capacity
    double duration_s;
  };
  const Phase phases[] = {
      {"early morning (quiet)", 0.4, 10},
      {"rush hour", 1.1, 10},
      {"flash crowd", 1.7, 10},
      {"evening (calming down)", 0.8, 10},
  };

  std::cout << "\n== AdaPEx through the day ==\n";
  std::cout << std::fixed << std::setprecision(2);
  for (const Phase& phase : phases) {
    EdgeScenario sc = scale_to_library(EdgeScenario{}, library, phase.load_ratio);
    sc.duration_s = phase.duration_s;
    sc.seed = 21;
    EdgeMetrics m = Framework::serve(library, {AdaptPolicy::kAdaPEx, 0.10}, sc);
    // Most-used operating point in this phase (from the trace).
    int rate = 0, ct = 0;
    if (!m.trace.empty()) {
      rate = m.trace.back().prune_rate_pct;
      ct = m.trace.back().conf_threshold_pct;
    }
    std::cout << std::setw(26) << phase.name << ": offered "
              << std::setw(6) << m.offered << " served " << std::setw(6)
              << m.served << " | loss " << std::setw(5)
              << m.inference_loss_pct << "% | acc "
              << m.accuracy * 100 << "% | settled at P.R. " << rate
              << "% / C.T. " << ct << "%"
              << (m.reconfigurations ? " (reconfigured)" : "") << "\n";
  }

  std::cout << "\n== end-of-day comparison (rush-hour load, 20 runs) ==\n";
  EdgeScenario sc = scale_to_library(EdgeScenario{}, library, 1.3);
  sc.seed = 42;
  EdgeMetrics finn =
      Framework::serve(library, {AdaptPolicy::kStaticFinn, 0.10}, sc, 20);
  for (AdaptPolicy p : {AdaptPolicy::kAdaPEx, AdaptPolicy::kPrOnly,
                        AdaptPolicy::kCtOnly, AdaptPolicy::kStaticFinn}) {
    EdgeMetrics m = Framework::serve(library, {p, 0.10}, sc, 20);
    std::cout << std::setw(8) << to_string(p) << ": loss " << std::setw(6)
              << m.inference_loss_pct << "% | acc " << m.accuracy * 100
              << "% | QoE " << m.qoe * 100 << "% | EDP vs FINN "
              << (finn.edp > 0 ? m.edp / finn.edp : 0.0) << "x\n";
  }
  return 0;
}
